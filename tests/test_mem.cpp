#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hpp"
#include "mem/reuse.hpp"
#include "mem/trace.hpp"
#include "util/error.hpp"

namespace grads::mem {
namespace {

std::vector<std::uint64_t> distancesOf(const std::vector<std::uint64_t>& blocks) {
  // Reference implementation: naive O(n²) LRU stack distance.
  std::vector<std::uint64_t> out;
  std::vector<std::uint64_t> stack;  // front = most recent
  for (const auto b : blocks) {
    std::uint64_t d = kColdMiss;
    for (std::size_t i = 0; i < stack.size(); ++i) {
      if (stack[i] == b) {
        d = i;
        stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i));
        break;
      }
    }
    stack.insert(stack.begin(), b);
    out.push_back(d);
  }
  return out;
}

TEST(ReuseDistance, ColdMissesForDistinctBlocks) {
  ReuseDistanceAnalyzer a;
  for (std::uint64_t b = 0; b < 10; ++b) a.access(MemRef{b, 0, false});
  EXPECT_EQ(a.global().coldMisses(), 10u);
  EXPECT_EQ(a.distinctBlocks(), 10u);
}

TEST(ReuseDistance, ImmediateReuseHasDistanceZero) {
  ReuseDistanceAnalyzer a;
  a.access(MemRef{5, 0, false});
  a.access(MemRef{5, 0, false});
  EXPECT_EQ(a.global().coldMisses(), 1u);
  EXPECT_EQ(a.global().missesForCapacity(1), 1u);  // only the cold miss
}

TEST(ReuseDistance, KnownPattern) {
  // Access A B C A: A's reuse distance is 2 (B and C in between).
  ReuseDistanceAnalyzer a;
  for (std::uint64_t b : {0, 1, 2, 0}) a.access(MemRef{b, 0, false});
  // Capacity 2 cache: the second A misses (distance 2 >= 2).
  EXPECT_EQ(a.global().missesForCapacity(2), 4u);
  // Capacity 4: the second A hits... distance 2 < 4, bucketised upper edge
  // of bucket(2)=[2,4) is 3 < 4 → hit.
  EXPECT_EQ(a.global().missesForCapacity(4), 3u);
}

TEST(ReuseDistance, MatchesNaiveReferenceOnRandomTrace) {
  // Cross-check the Fenwick implementation against the O(n²) reference.
  std::vector<std::uint64_t> blocks;
  std::uint64_t state = 12345;
  for (int i = 0; i < 3000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    blocks.push_back((state >> 33) % 97);
  }
  const auto ref = distancesOf(blocks);

  ReuseDistanceAnalyzer a;
  for (const auto b : blocks) a.access(MemRef{b, 0, false});

  // Compare via histogram of misses at every power-of-two capacity.
  ReuseHistogram refHist;
  for (const auto d : ref) refHist.add(d);
  for (std::uint64_t cap = 1; cap <= 256; cap *= 2) {
    EXPECT_EQ(a.global().missesForCapacity(cap), refHist.missesForCapacity(cap))
        << "capacity " << cap;
  }
  EXPECT_EQ(a.global().coldMisses(), refHist.coldMisses());
}

TEST(ReuseDistance, FenwickGrowthPreservesCounts) {
  // Force several capacity doublings (initial capacity is 1024).
  ReuseDistanceAnalyzer a;
  for (std::uint64_t i = 0; i < 5000; ++i) a.access(MemRef{i % 3, 0, false});
  EXPECT_EQ(a.accesses(), 5000u);
  EXPECT_EQ(a.global().coldMisses(), 3u);
  // All reuses have distance 2 → hit for capacity 4, miss for capacity 2.
  EXPECT_EQ(a.global().missesForCapacity(4), 3u);
  EXPECT_EQ(a.global().missesForCapacity(2), 5000u);
}

TEST(ReuseDistance, PerSiteHistogramsSumToGlobal) {
  ReuseDistanceAnalyzer a;
  traceMatmul(12, 4, a.sink());
  std::uint64_t total = 0;
  for (const auto& [site, hist] : a.perSite()) total += hist.total();
  EXPECT_EQ(total, a.global().total());
  EXPECT_EQ(a.perSite().size(), 3u);  // A, B, C sites
}

TEST(ReuseHistogram, QuantileMonotone) {
  ReuseHistogram h;
  for (std::uint64_t d : {1, 2, 4, 8, 16, 32, 64, 128}) h.add(d);
  EXPECT_LE(h.quantile(0.25), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
}

TEST(ReuseHistogram, MergeAddsCounts) {
  ReuseHistogram a;
  ReuseHistogram b;
  a.add(4);
  a.add(kColdMiss);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.coldMisses(), 1u);
}

TEST(LruCache, HitsOnImmediateReuse) {
  LruCacheSim c(4, 4);
  EXPECT_FALSE(c.access(1));
  EXPECT_TRUE(c.access(1));
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCacheSim c(2, 2);  // fully associative, 2 lines
  c.access(1);
  c.access(2);
  c.access(3);  // evicts 1
  EXPECT_FALSE(c.access(1));
  EXPECT_TRUE(c.access(3));
}

TEST(LruCache, BadGeometryRejected) {
  EXPECT_THROW(LruCacheSim(0, 1), InvalidArgument);
  EXPECT_THROW(LruCacheSim(4, 3), InvalidArgument);
  EXPECT_THROW(LruCacheSim(4, 8), InvalidArgument);
}

TEST(LruCache, FullyAssociativeMatchesReuseDistancePrediction) {
  // The defining property the perf model relies on: in a fully-associative
  // LRU cache of C blocks, an access misses iff its reuse distance >= C.
  ReuseDistanceAnalyzer rd;
  std::vector<std::uint64_t> exactDistances;
  std::vector<std::uint64_t> blocks;
  std::uint64_t state = 777;
  for (int i = 0; i < 4000; ++i) {
    state = state * 2862933555777941757ULL + 3037000493ULL;
    blocks.push_back((state >> 30) % 61);
  }
  const auto dist = distancesOf(blocks);
  for (std::uint64_t cap : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    LruCacheSim cache(cap, cap);
    for (const auto b : blocks) cache.access(b);
    std::uint64_t predicted = 0;
    for (const auto d : dist) {
      if (d == kColdMiss || d >= cap) ++predicted;
    }
    EXPECT_EQ(cache.misses(), predicted) << "capacity " << cap;
  }
  (void)rd;
  (void)exactDistances;
}

TEST(Traces, MatmulAccessCountIsExact) {
  std::size_t count = 0;
  const std::size_t n = 8;
  traceMatmul(n, 1, [&](const MemRef&) { ++count; });
  EXPECT_EQ(count, 2 * n * n * n + n * n);
}

TEST(Traces, QrTouchesWholeMatrix) {
  ReuseDistanceAnalyzer a;
  const std::size_t n = 10;
  traceQr(n, 1, a.sink());
  EXPECT_EQ(a.distinctBlocks(), n * n);
}

TEST(Traces, StencilAlternatesArrays) {
  ReuseDistanceAnalyzer a;
  traceStencil(64, 2, 1, a.sink());
  // Two arrays of 64 blocks, interior points only → ~126 distinct.
  EXPECT_GT(a.distinctBlocks(), 120u);
  EXPECT_LE(a.distinctBlocks(), 128u);
}

TEST(Traces, NBodyQuadraticAccesses) {
  std::size_t count = 0;
  traceNBody(20, 1, [&](const MemRef&) { ++count; });
  EXPECT_EQ(count, 20u * (1 + 19 + 1));
}

TEST(Traces, FlopCountsPositiveAndOrdered) {
  EXPECT_GT(qrFlopCount(100), 0.0);
  EXPECT_GT(matmulFlopCount(200), matmulFlopCount(100));
  EXPECT_GT(nbodyFlopCount(100), nbodyFlopCount(50));
  EXPECT_GT(stencilFlopCount(100, 4), stencilFlopCount(100, 2));
}

TEST(Traces, LargerCacheNeverMoreMisses) {
  // Inclusion property through our whole pipeline on a real kernel trace.
  ReuseDistanceAnalyzer a;
  traceMatmul(16, 4, a.sink());
  std::uint64_t prev = a.global().total() + 1;
  for (std::uint64_t cap = 1; cap <= 1 << 12; cap *= 2) {
    const auto m = a.global().missesForCapacity(cap);
    EXPECT_LE(m, prev);
    prev = m;
  }
}

}  // namespace
}  // namespace grads::mem

#include <gtest/gtest.h>

#include "apps/qr.hpp"
#include "core/app_manager.hpp"
#include "grid/load.hpp"
#include "grid/testbeds.hpp"
#include "reschedule/governor.hpp"
#include "reschedule/journal.hpp"
#include "reschedule/rescheduler.hpp"
#include "services/gis.hpp"
#include "services/ibp.hpp"
#include "services/nws.hpp"
#include "util/error.hpp"

namespace grads::reschedule {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

// ---------------------------------------------------------------------------
// ActionJournal: the write-ahead log of rescheduling transactions.
// ---------------------------------------------------------------------------

TEST(Journal, OpenCommitLifecycle) {
  sim::Engine eng;
  ActionJournal j(eng);
  EXPECT_EQ(j.openAction("qr"), nullptr);
  EXPECT_LT(j.lastResolvedAt("qr"), 0.0);

  const int id = j.open("qr", ActionKind::kMigrate, {1, 2}, {});
  EXPECT_EQ(j.inFlight(), 1);
  ASSERT_NE(j.openAction("qr"), nullptr);
  EXPECT_EQ(j.openAction("qr")->id, id);
  EXPECT_EQ(j.record(id).state, ActionState::kPrepared);
  EXPECT_EQ(j.record(id).prior, (std::vector<grid::NodeId>{1, 2}));

  j.setTarget(id, {5, 6});
  EXPECT_EQ(j.record(id).target, (std::vector<grid::NodeId>{5, 6}));
  j.beginCommit(id);
  EXPECT_EQ(j.record(id).state, ActionState::kCommitting);
  j.commit(id, "all ranks restored");
  EXPECT_EQ(j.record(id).state, ActionState::kCommitted);
  EXPECT_GE(j.record(id).resolvedAt, 0.0);
  EXPECT_EQ(j.record(id).note, "all ranks restored");
  EXPECT_EQ(j.openAction("qr"), nullptr);
  EXPECT_EQ(j.inFlight(), 0);
  EXPECT_EQ(j.committed(), 1);
  EXPECT_EQ(j.committedFor("qr"), 1);
  EXPECT_EQ(j.rolledBack(), 0);
  EXPECT_GE(j.lastResolvedAt("qr"), 0.0);
}

TEST(Journal, RollbackResolvesFromEitherPhase) {
  sim::Engine eng;
  ActionJournal j(eng);
  // Rollback straight from kPrepared (fault during the reversible phase).
  const int a = j.open("qr", ActionKind::kMigrate, {1});
  j.rollback(a, "checkpoint incomplete");
  EXPECT_EQ(j.record(a).state, ActionState::kRolledBack);
  EXPECT_EQ(j.record(a).note, "checkpoint incomplete");
  // Rollback from kCommitting (fault inside the commit window).
  const int b = j.open("qr", ActionKind::kSwap, {2}, {3});
  j.beginCommit(b);
  j.rollback(b, "target died mid-transfer");
  EXPECT_EQ(j.record(b).state, ActionState::kRolledBack);
  EXPECT_EQ(j.rolledBack(), 2);
  EXPECT_EQ(j.rolledBackFor("qr"), 2);
  EXPECT_EQ(j.inFlight(), 0);
}

TEST(Journal, SecondOpenForSameAppThrows) {
  // At most one open action per app: the "doubly mapped" failure mode is
  // structurally excluded.
  sim::Engine eng;
  ActionJournal j(eng);
  j.open("qr", ActionKind::kMigrate, {1});
  EXPECT_THROW(j.open("qr", ActionKind::kSwap, {1}), InvalidArgument);
  // A different app is fine, and resolving reopens the slot.
  EXPECT_NO_THROW(j.open("other", ActionKind::kMigrate, {2}));
  j.rollback(j.openAction("qr")->id, "fault");
  EXPECT_NO_THROW(j.open("qr", ActionKind::kMigrate, {1}));
}

TEST(Journal, RecoveryScanFindsOnlyUnresolvedActions) {
  sim::Engine eng;
  ActionJournal j(eng);
  const int a = j.open("a", ActionKind::kMigrate, {1});
  j.open("b", ActionKind::kMigrate, {2});
  j.commit(a);
  EXPECT_EQ(j.openAction("a"), nullptr);
  ASSERT_NE(j.openAction("b"), nullptr);
  EXPECT_EQ(j.inFlight(), 1);
}

TEST(Journal, OnResolveFiresForCommitAndRollback) {
  sim::Engine eng;
  ActionJournal j(eng);
  int resolves = 0;
  ActionState last = ActionState::kPrepared;
  j.setOnResolve([&](const ActionRecord& r) {
    ++resolves;
    last = r.state;
  });
  j.commit(j.open("a", ActionKind::kMigrate, {1}));
  EXPECT_EQ(resolves, 1);
  EXPECT_EQ(last, ActionState::kCommitted);
  j.rollback(j.open("a", ActionKind::kMigrate, {1}), "fault");
  EXPECT_EQ(resolves, 2);
  EXPECT_EQ(last, ActionState::kRolledBack);
}

// ---------------------------------------------------------------------------
// ViolationGovernor: quorum, hysteresis, cooldown, concurrency.
// ---------------------------------------------------------------------------

autopilot::ViolationReport report(std::size_t phase, double avgRatio = 3.0,
                                  double upper = 1.5) {
  autopilot::ViolationReport r;
  r.app = "qr";
  r.phase = phase;
  r.ratio = avgRatio;
  r.avgRatio = avgRatio;
  r.upperTolerance = upper;
  return r;
}

TEST(Governor, QuorumRequiresKViolatingPhases) {
  sim::Engine eng;
  ActionJournal j(eng);
  GovernorOptions opts;
  opts.quorumK = 3;
  opts.quorumN = 5;
  opts.cooldownSec = 0.0;
  ViolationGovernor gov(eng, j, opts);
  EXPECT_EQ(gov.admit(report(1)), GovernorVerdict::kQuorumPending);
  EXPECT_EQ(gov.admit(report(2)), GovernorVerdict::kQuorumPending);
  EXPECT_EQ(gov.admit(report(3)), GovernorVerdict::kAdmit);
  EXPECT_EQ(gov.stats().admitted, 1);
  EXPECT_EQ(gov.stats().quorumPending, 2);
}

TEST(Governor, SamePhaseReRaiseDoesNotCountTwice) {
  // One slow phase re-confirmed by several windowed averages is a single
  // sensor reading, not a quorum.
  sim::Engine eng;
  ActionJournal j(eng);
  GovernorOptions opts;
  opts.quorumK = 2;
  opts.cooldownSec = 0.0;
  ViolationGovernor gov(eng, j, opts);
  EXPECT_EQ(gov.admit(report(1)), GovernorVerdict::kQuorumPending);
  EXPECT_EQ(gov.admit(report(1)), GovernorVerdict::kQuorumPending);
  EXPECT_EQ(gov.admit(report(1)), GovernorVerdict::kQuorumPending);
  EXPECT_EQ(gov.admit(report(2)), GovernorVerdict::kAdmit);
}

TEST(Governor, QuorumWindowPrunesOldPhases) {
  // Two violations quorumN phases apart never co-exist in the window.
  sim::Engine eng;
  ActionJournal j(eng);
  GovernorOptions opts;
  opts.quorumK = 2;
  opts.quorumN = 4;
  opts.cooldownSec = 0.0;
  ViolationGovernor gov(eng, j, opts);
  EXPECT_EQ(gov.admit(report(1)), GovernorVerdict::kQuorumPending);
  EXPECT_EQ(gov.admit(report(10)), GovernorVerdict::kQuorumPending);
  EXPECT_EQ(gov.admit(report(11)), GovernorVerdict::kAdmit);
}

TEST(Governor, HysteresisBandSuppressesMarginalRatios) {
  sim::Engine eng;
  ActionJournal j(eng);
  GovernorOptions opts;
  opts.quorumK = 2;
  opts.hysteresisBand = 0.1;  // threshold = 1.5 * 1.1 = 1.65
  opts.cooldownSec = 0.0;
  ViolationGovernor gov(eng, j, opts);
  EXPECT_EQ(gov.admit(report(1, 1.6)), GovernorVerdict::kQuorumPending);
  // Quorum reached, but the windowed ratio hovers inside the dead band.
  EXPECT_EQ(gov.admit(report(2, 1.6)), GovernorVerdict::kInsideHysteresis);
  EXPECT_EQ(gov.admit(report(3, 1.6)), GovernorVerdict::kInsideHysteresis);
  // A genuinely degraded ratio clears the band and goes through.
  EXPECT_EQ(gov.admit(report(4, 1.7)), GovernorVerdict::kAdmit);
}

TEST(Governor, CooldownAfterResolvedAction) {
  sim::Engine eng;
  ActionJournal j(eng);
  GovernorOptions opts;
  opts.quorumK = 2;
  opts.cooldownSec = 180.0;
  ViolationGovernor gov(eng, j, opts);
  // An action just resolved (commit at t=10).
  eng.runUntil(10.0);
  j.commit(j.open("qr", ActionKind::kMigrate, {1}));
  eng.runUntil(20.0);
  EXPECT_EQ(gov.admit(report(1)), GovernorVerdict::kQuorumPending);
  EXPECT_EQ(gov.admit(report(2)), GovernorVerdict::kCoolingDown);
  // Rollbacks anchor the cooldown too (a failed action must not be
  // immediately retried into the same fault).
  eng.runUntil(100.0);
  EXPECT_EQ(gov.admit(report(3)), GovernorVerdict::kCoolingDown);
  // Past the window, the same sustained signal goes through.
  eng.runUntil(10.0 + 180.0 + 1.0);
  EXPECT_EQ(gov.admit(report(4)), GovernorVerdict::kAdmit);
  EXPECT_EQ(gov.statsFor("qr").coolingDown, 2);
}

TEST(Governor, ConcurrencyLimitCountsOpenActions) {
  sim::Engine eng;
  ActionJournal j(eng);
  GovernorOptions opts;
  opts.quorumK = 2;
  opts.cooldownSec = 0.0;
  opts.maxConcurrentActions = 1;
  ViolationGovernor gov(eng, j, opts);
  // Another application holds an open (unresolved) action.
  const int other = j.open("other-app", ActionKind::kMigrate, {9});
  EXPECT_EQ(gov.admit(report(1)), GovernorVerdict::kQuorumPending);
  EXPECT_EQ(gov.admit(report(2)), GovernorVerdict::kConcurrencyLimited);
  // The slot frees when the action resolves.
  j.commit(other);
  EXPECT_EQ(gov.admit(report(3)), GovernorVerdict::kAdmit);
}

TEST(Governor, ResetAppClearsQuorumHistory) {
  // Phase numbering restarts after a migration; pre-restart violations must
  // not count toward a post-restart quorum.
  sim::Engine eng;
  ActionJournal j(eng);
  GovernorOptions opts;
  opts.quorumK = 2;
  opts.cooldownSec = 0.0;
  ViolationGovernor gov(eng, j, opts);
  EXPECT_EQ(gov.admit(report(3)), GovernorVerdict::kQuorumPending);
  gov.resetApp("qr");
  EXPECT_EQ(gov.admit(report(4)), GovernorVerdict::kQuorumPending);
  EXPECT_EQ(gov.admit(report(5)), GovernorVerdict::kAdmit);
}

// ---------------------------------------------------------------------------
// End-to-end anti-thrash scenario: antiphase flapping load on a symmetric
// two-cluster testbed. Ungoverned, the rescheduler chases the load
// (migrate → migrate-back, repeatedly); governed, the same signals produce
// at most the initial migration and zero oscillations.
// ---------------------------------------------------------------------------

struct FlapTestbed {
  grid::ClusterId east = grid::kNoId;
  grid::ClusterId west = grid::kNoId;
  std::vector<grid::NodeId> eastNodes;
  std::vector<grid::NodeId> westNodes;
};

FlapTestbed buildFlapTestbed(grid::Grid& g) {
  FlapTestbed tb;
  tb.east = g.addCluster(
      grid::ClusterSpec{"east", "East", grid::fastEthernetLan("east.lan", 4)});
  tb.west = g.addCluster(
      grid::ClusterSpec{"west", "West", grid::fastEthernetLan("west.lan", 4)});
  for (int i = 0; i < 4; ++i) {
    tb.eastNodes.push_back(g.addNode(tb.east, grid::utkQrNodeSpec(i)));
    tb.westNodes.push_back(g.addNode(tb.west, grid::utkQrNodeSpec(i + 4)));
  }
  g.connectClusters(tb.east, tb.west,
                    grid::internetWan("east-west.wan", 0.005, 12.0 * kMB));
  return tb;
}

grid::LoadTrace squareWave(double firstOnset, double period, double weight,
                           int cycles) {
  std::vector<grid::LoadPhase> phases;
  for (int c = 0; c < cycles; ++c) {
    const double on = firstOnset + 2.0 * period * c;
    phases.push_back({on, weight});
    phases.push_back({on + period, 0.0});
  }
  return grid::LoadTrace(phases);
}

int countOscillations(const std::vector<std::vector<grid::NodeId>>& maps) {
  int n = 0;
  for (std::size_t i = 2; i < maps.size(); ++i) {
    if (maps[i] == maps[i - 2] && maps[i] != maps[i - 1]) ++n;
  }
  return n;
}

struct FlapOutcome {
  int migrations = 0;
  int oscillations = 0;
  int suppressed = 0;
};

FlapOutcome runFlappingLoad(bool governed) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = buildFlapTestbed(g);
  services::Gis gis(g);
  gis.installEverywhere(services::software::kLocalBinder);
  gis.installEverywhere(services::software::kScalapack);
  gis.installEverywhere(services::software::kSrsLibrary);
  gis.installEverywhere(services::software::kAutopilotSensors);
  services::Nws nws(eng, g, 10.0, 0.02, 17);
  nws.start();
  services::Ibp ibp(g);
  autopilot::AutopilotManager autopilot(eng);

  const double period = 90.0;
  for (const auto n : tb.eastNodes) {
    grid::applyLoadTrace(eng, g.node(n), squareWave(period, period, 3.0, 10));
  }
  for (const auto n : tb.westNodes) {
    grid::applyLoadTrace(eng, g.node(n),
                         squareWave(2.0 * period, period, 3.0, 10));
  }

  apps::QrConfig cfg;
  cfg.n = 6000;
  const core::Cop cop = apps::makeQrCop(g, cfg);

  ActionJournal journal(eng);
  ReschedulerOptions ropts;
  ropts.worstCaseMigrationSec = 40.0;
  StopRestartRescheduler rescheduler(gis, &nws, ropts);
  rescheduler.setJournal(&journal);

  GovernorOptions gopts;
  gopts.cooldownSec = 600.0;
  ViolationGovernor governor(eng, journal, gopts);

  core::AppManager mgr(g, gis, &nws, ibp, autopilot);
  core::ManagerOptions mopts;
  mopts.journal = &journal;
  mopts.governor = governed ? &governor : nullptr;

  core::RunBreakdown bd;
  eng.spawn(mgr.run(cop, &rescheduler, mopts, &bd), "qr");
  eng.run();
  eng.rethrowIfFailed();
  EXPECT_GT(bd.totalSeconds, 0.0);
  FlapOutcome out;
  out.migrations = bd.incarnations > 0 ? bd.incarnations - 1 : 0;
  out.oscillations = countOscillations(bd.mappings);
  out.suppressed = bd.violationsSuppressed;
  return out;
}

TEST(Governor, FlappingLoadThrashesUngoverned) {
  const FlapOutcome raw = runFlappingLoad(false);
  EXPECT_GE(raw.migrations, 4);
  EXPECT_GE(raw.oscillations, 3);
  EXPECT_EQ(raw.suppressed, 0);
}

TEST(Governor, FlappingLoadGovernedDoesNotOscillate) {
  const FlapOutcome governed = runFlappingLoad(true);
  EXPECT_LE(governed.migrations, 1);
  EXPECT_EQ(governed.oscillations, 0);
  EXPECT_GT(governed.suppressed, 0);
}

}  // namespace
}  // namespace grads::reschedule

#include <gtest/gtest.h>

#include <sstream>

#include "autopilot/contract.hpp"
#include "autopilot/fuzzy.hpp"
#include "autopilot/sensor.hpp"
#include "autopilot/viewer.hpp"
#include "util/error.hpp"

namespace grads::autopilot {
namespace {

TEST(TriangularMf, GradesCorrectly) {
  TriangularMf mf{0.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(mf.grade(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(0.0), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(0.5), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(1.0), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(1.5), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(2.5), 0.0);
}

TEST(TriangularMf, ShoulderShapes) {
  // Left shoulder: a == b.
  TriangularMf left{0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(left.grade(0.0), 1.0);
  EXPECT_DOUBLE_EQ(left.grade(0.5), 0.5);
  // Right shoulder: b == c.
  TriangularMf right{1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(right.grade(2.0), 1.0);
  EXPECT_DOUBLE_EQ(right.grade(1.5), 0.5);
}

TEST(FuzzyEngine, ValidatesRules) {
  FuzzyVariable in{"x", 0.0, 1.0, {{"low", {0.0, 0.0, 1.0}}}};
  FuzzyVariable out{"y", 0.0, 1.0, {{"high", {0.0, 1.0, 1.0}}}};
  EXPECT_THROW(FuzzyEngine({in}, out, {{{"nope"}, "high"}}), InvalidArgument);
  EXPECT_THROW(FuzzyEngine({in}, out, {{{"low"}, "nope"}}), InvalidArgument);
  EXPECT_THROW(FuzzyEngine({in}, out, {{{"low", "low"}, "high"}}),
               InvalidArgument);
}

TEST(ContractFuzzy, NominalRatioMeansNoAction) {
  const auto fis = makeContractFuzzyEngine();
  EXPECT_LT(fis.infer({1.0, 0.0}), 0.5);
}

TEST(ContractFuzzy, VerySlowTriggersReschedule) {
  const auto fis = makeContractFuzzyEngine();
  EXPECT_GE(fis.infer({3.0, 0.0}), 0.5);
}

TEST(ContractFuzzy, SlowAndDegradingTriggers) {
  const auto fis = makeContractFuzzyEngine();
  EXPECT_GE(fis.infer({1.8, 0.5}), 0.5);
}

TEST(ContractFuzzy, SlowButImprovingWatches) {
  const auto fis = makeContractFuzzyEngine();
  const double improving = fis.infer({1.8, -0.8});
  const double degrading = fis.infer({1.8, 0.8});
  EXPECT_LT(improving, degrading);
  EXPECT_LT(improving, 0.55);
}

TEST(Autopilot, ReportReachesListeners) {
  sim::Engine eng;
  AutopilotManager mgr(eng);
  std::vector<double> seen;
  mgr.attach("ch", [&](const Reading& r) { seen.push_back(r.value); });
  mgr.report("ch", 1.0);
  mgr.report("other", 2.0);
  mgr.report("ch", 3.0);
  EXPECT_EQ(seen, (std::vector<double>{1.0, 3.0}));
  EXPECT_EQ(mgr.totalReadings(), 3u);
}

TEST(Autopilot, DetachStopsDelivery) {
  sim::Engine eng;
  AutopilotManager mgr(eng);
  int count = 0;
  const auto token = mgr.attach("ch", [&](const Reading&) { ++count; });
  mgr.report("ch", 1.0);
  mgr.detach(token);
  mgr.report("ch", 2.0);
  EXPECT_EQ(count, 1);
}

TEST(Autopilot, HistoryStampsVirtualTime) {
  sim::Engine eng;
  AutopilotManager mgr(eng);
  eng.schedule(42.0, [&] { mgr.report("ch", 7.0); });
  eng.run();
  const auto& h = mgr.history("ch");
  ASSERT_EQ(h.size(), 1u);
  EXPECT_DOUBLE_EQ(h[0].time, 42.0);
  EXPECT_TRUE(mgr.history("unknown").empty());
}

ContractMonitor makeMonitor(sim::Engine& eng, double predicted = 10.0,
                            ContractMonitor::Options opts = {}) {
  return ContractMonitor(
      eng, PerformanceContract("qr", [predicted](std::size_t) {
        return predicted;
      }),
      opts);
}

TEST(ContractMonitor, NoViolationWithinTolerance) {
  sim::Engine eng;
  auto mon = makeMonitor(eng);
  int requests = 0;
  mon.setRescheduleRequest([&](const ViolationReport&) {
    ++requests;
    return RescheduleOutcome::kMigrated;
  });
  for (int i = 0; i < 20; ++i) mon.onPhaseTime(11.0);  // ratio 1.1 < 1.5
  EXPECT_EQ(requests, 0);
  EXPECT_EQ(mon.violationsRaised(), 0u);
  EXPECT_EQ(mon.phasesSeen(), 20u);
}

TEST(ContractMonitor, SingleSpikeForgivenByAveraging) {
  sim::Engine eng;
  auto mon = makeMonitor(eng);
  int requests = 0;
  mon.setRescheduleRequest([&](const ViolationReport&) {
    ++requests;
    return RescheduleOutcome::kMigrated;
  });
  for (int i = 0; i < 4; ++i) mon.onPhaseTime(10.0);
  mon.onPhaseTime(30.0);  // ratio 3.0 but window avg = (4·1 + 3)/5 = 1.4 < 1.5
  EXPECT_EQ(requests, 0);
}

TEST(ContractMonitor, SustainedSlowdownRaisesViolation) {
  sim::Engine eng;
  auto mon = makeMonitor(eng);
  ViolationReport last;
  mon.setRescheduleRequest([&](const ViolationReport& r) {
    last = r;
    return RescheduleOutcome::kMigrated;
  });
  for (int i = 0; i < 5; ++i) mon.onPhaseTime(25.0);  // ratio 2.5 sustained
  EXPECT_GE(mon.violationsRaised(), 1u);
  EXPECT_EQ(last.app, "qr");
  EXPECT_NEAR(last.ratio, 2.5, 1e-9);
  EXPECT_GT(last.avgRatio, 1.5);
}

TEST(ContractMonitor, DeclineWidensUpperTolerance) {
  sim::Engine eng;
  auto mon = makeMonitor(eng);
  int requests = 0;
  mon.setRescheduleRequest([&](const ViolationReport&) {
    ++requests;
    return RescheduleOutcome::kDeclined;
  });
  for (int i = 0; i < 10; ++i) mon.onPhaseTime(25.0);
  EXPECT_GE(requests, 1);
  // After declines the tolerance must have widened enough to stop nagging.
  EXPECT_GT(mon.upperTolerance(), 2.5);
  const int before = requests;
  mon.onPhaseTime(25.0);
  EXPECT_EQ(requests, before);
}

TEST(ContractMonitor, FastPhasesTightenTolerances) {
  sim::Engine eng;
  auto mon = makeMonitor(eng);
  const double upBefore = mon.upperTolerance();
  const double loBefore = mon.lowerTolerance();
  for (int i = 0; i < 10; ++i) mon.onPhaseTime(3.0);  // ratio 0.3 < 0.6
  EXPECT_LT(mon.lowerTolerance(), loBefore);
  EXPECT_LT(mon.upperTolerance(), upBefore);
}

TEST(ContractMonitor, DisabledMonitorIgnoresReports) {
  sim::Engine eng;
  auto mon = makeMonitor(eng);
  mon.setEnabled(false);
  for (int i = 0; i < 10; ++i) mon.onPhaseTime(100.0);
  EXPECT_EQ(mon.violationsRaised(), 0u);
  EXPECT_EQ(mon.phasesSeen(), 0u);
}

TEST(ContractMonitor, FuzzyModeTriggersOnSustainedSlowdown) {
  sim::Engine eng;
  ContractMonitor::Options opts;
  opts.mode = DecisionMode::kFuzzy;
  auto mon = makeMonitor(eng, 10.0, opts);
  int requests = 0;
  mon.setRescheduleRequest([&](const ViolationReport&) {
    ++requests;
    return RescheduleOutcome::kMigrated;
  });
  for (int i = 0; i < 6; ++i) mon.onPhaseTime(28.0);
  EXPECT_GE(requests, 1);
}

TEST(ContractMonitor, AttachToManagerEndToEnd) {
  sim::Engine eng;
  AutopilotManager mgr(eng);
  auto mon = makeMonitor(eng);
  mon.attachTo(mgr, phaseTimeChannel("qr"));
  int requests = 0;
  mon.setRescheduleRequest([&](const ViolationReport&) {
    ++requests;
    return RescheduleOutcome::kMigrated;
  });
  for (int i = 0; i < 6; ++i) mgr.report(phaseTimeChannel("qr"), 30.0);
  EXPECT_GE(requests, 1);
}

TEST(ContractMonitor, UpdateTermsResetsExpectations) {
  sim::Engine eng;
  auto mon = makeMonitor(eng, 10.0);
  int requests = 0;
  mon.setRescheduleRequest([&](const ViolationReport&) {
    ++requests;
    return RescheduleOutcome::kMigrated;
  });
  // New terms say phases take 25 s — the same reports are now nominal.
  mon.contract().updateTerms([](std::size_t) { return 25.0; });
  for (int i = 0; i < 10; ++i) mon.onPhaseTime(25.0);
  EXPECT_EQ(requests, 0);
}

TEST(ContractMonitor, RejectsBadOptions) {
  sim::Engine eng;
  ContractMonitor::Options bad;
  bad.upperTolerance = 0.9;
  EXPECT_THROW(makeMonitor(eng, 10.0, bad), InvalidArgument);
  bad = {};
  bad.lowerTolerance = 1.2;
  EXPECT_THROW(makeMonitor(eng, 10.0, bad), InvalidArgument);
}

TEST(ContractViewer, RecordsPhasesAndViolations) {
  sim::Engine eng;
  ContractViewer viewer(eng);
  auto mon = makeMonitor(eng);
  mon.setViewer(&viewer);
  mon.setRescheduleRequest([](const ViolationReport&) {
    return RescheduleOutcome::kMigrated;
  });
  for (int i = 0; i < 3; ++i) mon.onPhaseTime(10.0);   // nominal
  for (int i = 0; i < 6; ++i) mon.onPhaseTime(30.0);   // sustained slowdown
  EXPECT_EQ(viewer.phases("qr").size(), 9u);
  EXPECT_GE(viewer.violations("qr").size(), 1u);
  EXPECT_TRUE(viewer.violations("qr")[0].migrated);
  EXPECT_NEAR(viewer.phases("qr")[0].ratio, 1.0, 1e-9);
  EXPECT_NEAR(viewer.phases("qr")[5].ratio, 3.0, 1e-9);
  EXPECT_EQ(viewer.apps(), std::vector<std::string>{"qr"});
}

TEST(ContractViewer, TimelineRendersBarsAndViolationMarks) {
  sim::Engine eng;
  ContractViewer viewer(eng);
  auto mon = makeMonitor(eng);
  mon.setViewer(&viewer);
  for (int i = 0; i < 4; ++i) mon.onPhaseTime(10.0);
  for (int i = 0; i < 6; ++i) mon.onPhaseTime(28.0);
  std::ostringstream os;
  viewer.renderTimeline(os, "qr");
  const auto text = os.str();
  EXPECT_NE(text.find("contract activity for qr"), std::string::npos);
  EXPECT_NE(text.find('#'), std::string::npos);   // ratio bars
  EXPECT_NE(text.find('|'), std::string::npos);   // tolerance marker
  EXPECT_NE(text.find('!'), std::string::npos);   // violation flag
}

TEST(ContractViewer, CsvExportHasHeaderAndRows) {
  sim::Engine eng;
  ContractViewer viewer(eng);
  auto mon = makeMonitor(eng);
  mon.setViewer(&viewer);
  mon.onPhaseTime(12.0);
  std::ostringstream os;
  viewer.writeCsv(os, "qr");
  const auto text = os.str();
  EXPECT_NE(text.find("time,phase,predicted,actual,ratio,upper,lower"),
            std::string::npos);
  EXPECT_NE(text.find("1.2"), std::string::npos);  // the 12/10 ratio
}

TEST(ContractViewer, EmptyAppRendersPlaceholder) {
  sim::Engine eng;
  ContractViewer viewer(eng);
  std::ostringstream os;
  viewer.renderTimeline(os, "nothing");
  EXPECT_NE(os.str().find("no contract activity"), std::string::npos);
}

}  // namespace
}  // namespace grads::autopilot

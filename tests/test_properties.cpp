// Cross-module property tests: invariants that must hold across randomized
// scenarios — determinism of the engine, conservation in processor sharing,
// schedule validity under random weights, and end-to-end repeatability of a
// full Grid experiment (the MicroGrid's raison d'être).

#include <gtest/gtest.h>

#include "apps/nbody.hpp"
#include "grid/load.hpp"
#include "grid/testbeds.hpp"
#include "microgrid/dml.hpp"
#include "reschedule/swap.hpp"
#include "services/gis.hpp"
#include "services/nws.hpp"
#include "sim/ps_resource.hpp"
#include "sim/sync.hpp"
#include "workflow/builders.hpp"
#include "workflow/scheduler.hpp"

namespace grads {
namespace {

TEST(Properties, EngineIsDeterministic) {
  // Two identical runs of a nontrivial random scenario produce identical
  // event counts and final times.
  auto runOnce = [] {
    sim::Engine eng;
    sim::PsResource cpu(eng, 100.0);
    Rng rng(99);
    sim::JoinSet js(eng);
    for (int i = 0; i < 50; ++i) {
      js.spawn([](sim::Engine& e, sim::PsResource& r, double delay,
                  double work) -> sim::Task {
        co_await sim::sleepFor(e, delay);
        co_await r.consume(work);
      }(eng, cpu, rng.uniform(0.0, 10.0), rng.uniform(1.0, 500.0)));
    }
    eng.spawn(js.join());
    eng.run();
    return std::pair{eng.now(), eng.processedEvents()};
  };
  const auto a = runOnce();
  const auto b = runOnce();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Properties, ProcessorSharingConservesWork) {
  // Whatever the arrival pattern, completed work equals submitted work and
  // total elapsed time is at least work/capacity.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    sim::Engine eng;
    sim::PsResource cpu(eng, 50.0);
    Rng rng(seed);
    double submitted = 0.0;
    sim::JoinSet js(eng);
    for (int i = 0; i < 40; ++i) {
      const double work = rng.uniform(1.0, 200.0);
      submitted += work;
      js.spawn([](sim::Engine& e, sim::PsResource& r, double d,
                  double w) -> sim::Task {
        co_await sim::sleepFor(e, d);
        co_await r.consume(w);
      }(eng, cpu, rng.uniform(0.0, 20.0), work));
    }
    eng.spawn(js.join());
    eng.run();
    EXPECT_NEAR(cpu.completedWork(), submitted, 1e-6 * submitted);
    EXPECT_GE(eng.now() + 1e-9, submitted / 50.0);
  }
}

TEST(Properties, SchedulesValidUnderRandomWeights) {
  sim::Engine eng;
  grid::Grid g(eng);
  grid::buildQrTestbed(g);
  services::Gis gis(g);
  workflow::GridEstimator truth(gis, nullptr);
  Rng rng(7);
  for (int trial = 0; trial < 6; ++trial) {
    const workflow::RankWeights w{rng.uniform(0.0, 3.0), rng.uniform(0.0, 3.0)};
    if (w.w1 == 0.0 && w.w2 == 0.0) continue;
    workflow::WorkflowScheduler ws(truth, g.allNodes(), w);
    const auto dag = workflow::makeRandomLayered(3, 4, rng);
    const auto s = ws.schedule(dag, workflow::Heuristic::kBestOfThree);
    EXPECT_EQ(s.assignments.size(), dag.size());
    for (const auto& e : dag.edges()) {
      EXPECT_GE(s.of(e.to).start, s.of(e.from).finish - 1e-9);
    }
  }
}

TEST(Properties, FullSwapExperimentIsExactlyRepeatable) {
  // The MicroGrid promise: "systematic, repeatable ... study of dynamic
  // Grid behavior". The entire Figure-4 pipeline must be bit-identical
  // across runs with the same seeds.
  auto runOnce = [] {
    sim::Engine eng;
    grid::Grid g(eng);
    microgrid::instantiate(g,
                           microgrid::parseDml(microgrid::swapExperimentDml()));
    services::Nws nws(eng, g, 10.0, 0.05, 123);  // noisy but seeded
    nws.start();
    const auto utk = g.clusterNodes(*g.findCluster("utk"));
    const auto uiuc = g.clusterNodes(*g.findCluster("uiuc"));
    grid::applyLoadTrace(eng, g.node(utk[0]),
                         grid::LoadTrace::stepAt(80.0, 2.0));
    apps::NBodyConfig cfg;
    cfg.particles = 6000;
    cfg.iterations = 50;
    vmpi::World world(g, {utk[0], utk[1], utk[2]});
    std::vector<grid::NodeId> pool = utk;
    pool.insert(pool.end(), uiuc.begin(), uiuc.end());
    reschedule::SwapConfig scfg;
    scfg.policy = reschedule::SwapPolicy::kModelBased;
    scfg.flopsPerRankPerIteration = apps::nbodyIterationFlopsPerRank(cfg, 3);
    reschedule::SwapManager swap(world, pool, &nws, scfg);
    swap.start();
    for (int r = 0; r < 3; ++r) {
      eng.spawn(apps::nbodyRank(world, &swap, cfg, r, nullptr, "nb", nullptr));
    }
    eng.run();
    return std::tuple{eng.now(), eng.processedEvents(), swap.history().size()};
  };
  const auto a = runOnce();
  const auto b = runOnce();
  EXPECT_EQ(a, b);
}

TEST(Properties, TransferTimeMonotoneInSize) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  double prev = -1.0;
  for (double mb = 1.0; mb <= 256.0; mb *= 2.0) {
    const double est = g.transferEstimate(tb.utkNodes[0], tb.uiucNodes[0],
                                          mb * 1024 * 1024);
    EXPECT_GT(est, prev);
    prev = est;
  }
}

TEST(Properties, MakespanMonotoneInResourcePool) {
  // Adding resources never hurts the best-of-three schedule (more columns
  // in the rank matrix can only add options).
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  services::Gis gis(g);
  workflow::GridEstimator truth(gis, nullptr);
  Rng rng(17);
  const auto dag = workflow::makeParameterSweep(24, rng);

  std::vector<grid::NodeId> small(tb.uiucNodes.begin(),
                                  tb.uiucNodes.begin() + 3);
  const double withSmall =
      workflow::WorkflowScheduler(truth, small)
          .schedule(dag, workflow::Heuristic::kBestOfThree)
          .makespan;
  const double withAll =
      workflow::WorkflowScheduler(truth, g.allNodes())
          .schedule(dag, workflow::Heuristic::kBestOfThree)
          .makespan;
  EXPECT_LE(withAll, withSmall + 1e-9);
}

TEST(Properties, LoadNeverSpeedsAnythingUp) {
  // Monotonicity: adding background load can only increase an app's time.
  auto timeWith = [](double loadWeight) {
    sim::Engine eng;
    grid::Grid g(eng);
    const auto tb = grid::buildQrTestbed(g);
    if (loadWeight > 0.0) g.node(tb.uiucNodes[0]).injectLoad(loadWeight);
    vmpi::World world(g, {tb.uiucNodes[0], tb.uiucNodes[1]});
    apps::NBodyConfig cfg;
    cfg.particles = 3000;
    cfg.iterations = 10;
    for (int r = 0; r < 2; ++r) {
      eng.spawn(apps::nbodyRank(world, nullptr, cfg, r, nullptr, "nb", nullptr));
    }
    eng.run();
    return eng.now();
  };
  double prev = 0.0;
  for (const double w : {0.0, 0.5, 1.0, 2.0, 4.0}) {
    const double t = timeWith(w);
    EXPECT_GE(t, prev - 1e-9) << "load " << w;
    prev = t;
  }
}

}  // namespace
}  // namespace grads

#include <gtest/gtest.h>

#include <vector>

#include "grid/testbeds.hpp"
#include "sim/sync.hpp"
#include "util/error.hpp"
#include "vmpi/world.hpp"

namespace grads::vmpi {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

struct Fixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::QrTestbed tb;
  std::unique_ptr<World> world;

  explicit Fixture(int ranks = 4) {
    tb = grid::buildQrTestbed(g);
    std::vector<grid::NodeId> mapping;
    for (int r = 0; r < ranks; ++r) {
      mapping.push_back(tb.uiucNodes[static_cast<std::size_t>(r)]);
    }
    world = std::make_unique<World>(g, mapping, "test");
  }
};

TEST(World, RejectsEmptyOrBadMapping) {
  sim::Engine eng;
  grid::Grid g(eng);
  grid::buildQrTestbed(g);
  EXPECT_THROW(World(g, {}), InvalidArgument);
  EXPECT_THROW(World(g, {9999}), InvalidArgument);
}

TEST(World, SendRecvDeliversPayload) {
  Fixture f(2);
  double got = 0.0;
  f.eng.spawn([](World& w, double* out) -> sim::Task {
    Message m;
    co_await w.recv(1, 0, 7, &m);
    *out = std::any_cast<double>(m.payload);
  }(*f.world, &got));
  f.eng.spawn([](World& w) -> sim::Task {
    co_await w.send(0, 1, 1024.0, 7, 3.25);
  }(*f.world));
  f.eng.run();
  EXPECT_DOUBLE_EQ(got, 3.25);
}

TEST(World, RecvMatchesOnTag) {
  Fixture f(2);
  std::vector<int> order;
  f.eng.spawn([](World& w, std::vector<int>* order) -> sim::Task {
    Message m;
    co_await w.recv(1, 0, /*tag=*/2, &m);
    order->push_back(2);
    co_await w.recv(1, 0, /*tag=*/1, &m);
    order->push_back(1);
  }(*f.world, &order));
  f.eng.spawn([](World& w) -> sim::Task {
    co_await w.send(0, 1, 8.0, /*tag=*/1);
    co_await w.send(0, 1, 8.0, /*tag=*/2);
  }(*f.world));
  f.eng.run();
  // Receiver waited on tag 2 first even though tag 1 arrived first.
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(World, AnySourceReceivesFromWhoeverArrives) {
  Fixture f(3);
  int src = -1;
  f.eng.spawn([](World& w, int* src) -> sim::Task {
    Message m;
    co_await w.recv(0, kAnySource, 0, &m);
    *src = m.src;
  }(*f.world, &src));
  f.eng.spawn([](World& w) -> sim::Task {
    co_await w.send(2, 0, 64.0, 0);
  }(*f.world));
  f.eng.run();
  EXPECT_EQ(src, 2);
}

TEST(World, IntraClusterTransferIsFast) {
  Fixture f(2);
  double doneAt = -1.0;
  f.eng.spawn([](World& w, double* t) -> sim::Task {
    co_await w.send(0, 1, 16.0 * kMB, 0);  // Myrinet: 160 MB/s
    *t = w.engine().now();
  }(*f.world, &doneAt));
  f.eng.spawn([](World& w) -> sim::Task {
    Message m;
    co_await w.recv(1, 0, 0, &m);
  }(*f.world));
  f.eng.run();
  EXPECT_GE(doneAt, 0.0);
  EXPECT_LT(f.eng.now(), 0.2);
}

TEST(World, CrossClusterSendPaysWan) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  World w(g, {tb.utkNodes[0], tb.uiucNodes[0]});
  eng.spawn([](World& w) -> sim::Task {
    co_await w.send(0, 1, 1.2 * kMB, 0);
  }(w));
  eng.spawn([](World& w) -> sim::Task {
    Message m;
    co_await w.recv(1, 0, 0, &m);
  }(w));
  eng.run();
  EXPECT_NEAR(eng.now(), 1.0, 0.1);  // 1.2 MB at 1.2 MB/s WAN
}

TEST(World, ComputeUsesMappedNode) {
  Fixture f(1);
  const double rate =
      f.g.node(f.world->nodeOf(0)).spec().effectiveFlopsPerCpu();
  f.eng.spawn([](World& w, double rate) -> sim::Task {
    co_await w.compute(0, 2.0 * rate);
  }(*f.world, rate));
  f.eng.run();
  EXPECT_NEAR(f.eng.now(), 2.0, 1e-9);
}

sim::Task barrierWorker(World& w, int rank, double preDelay,
                        std::vector<double>* exitTimes) {
  co_await sim::sleepFor(w.engine(), preDelay);
  co_await w.barrier(rank);
  (*exitTimes)[static_cast<std::size_t>(rank)] = w.engine().now();
}

TEST(World, BarrierReleasesAllTogether) {
  Fixture f(4);
  std::vector<double> exits(4, -1.0);
  for (int r = 0; r < 4; ++r) {
    f.eng.spawn(barrierWorker(*f.world, r, 1.0 * r, &exits));
  }
  f.eng.run();
  for (int r = 0; r < 4; ++r) EXPECT_NEAR(exits[static_cast<std::size_t>(r)], 3.0, 1e-9);
}

TEST(World, ConsecutiveBarriersDoNotCrosstalk) {
  Fixture f(2);
  std::vector<double> at;
  auto worker = [](World& w, int rank, std::vector<double>* at) -> sim::Task {
    for (int i = 0; i < 3; ++i) {
      co_await sim::sleepFor(w.engine(), rank == 0 ? 1.0 : 0.5);
      co_await w.barrier(rank);
      if (rank == 0) at->push_back(w.engine().now());
    }
  };
  f.eng.spawn(worker(*f.world, 0, &at));
  f.eng.spawn(worker(*f.world, 1, &at));
  f.eng.run();
  ASSERT_EQ(at.size(), 3u);
  EXPECT_NEAR(at[0], 1.0, 1e-9);
  EXPECT_NEAR(at[1], 2.0, 1e-9);
  EXPECT_NEAR(at[2], 3.0, 1e-9);
}

sim::Task collectiveDriver(World& w, int rank,
                           std::function<sim::Task(World&, int)> op,
                           std::vector<bool>* done) {
  co_await op(w, rank);
  (*done)[static_cast<std::size_t>(rank)] = true;
}

TEST(World, BcastCompletesOnAllRanks) {
  Fixture f(4);
  std::vector<bool> done(4, false);
  for (int r = 0; r < 4; ++r) {
    f.eng.spawn(collectiveDriver(
        *f.world, r,
        [](World& w, int rank) { return w.bcast(rank, 1, 4.0 * kMB); },
        &done));
  }
  f.eng.run();
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(done[static_cast<std::size_t>(r)]);
  EXPECT_GE(f.world->messagesSent(), 3u);
}

TEST(World, BcastNonPowerOfTwo) {
  Fixture f(5);
  std::vector<bool> done(5, false);
  for (int r = 0; r < 5; ++r) {
    f.eng.spawn(collectiveDriver(
        *f.world, r,
        [](World& w, int rank) { return w.bcast(rank, 2, 1024.0); }, &done));
  }
  f.eng.run();
  for (int r = 0; r < 5; ++r) EXPECT_TRUE(done[static_cast<std::size_t>(r)]);
}

TEST(World, AllreduceComputesMaxEverywhere) {
  Fixture f(4);
  std::vector<double> results(4, -1.0);
  for (int r = 0; r < 4; ++r) {
    f.eng.spawn([](World& w, int rank, std::vector<double>* out) -> sim::Task {
      double reduced = 0.0;
      co_await w.allreduce(rank, 64.0, 10.0 + rank, &reduced);
      (*out)[static_cast<std::size_t>(rank)] = reduced;
    }(*f.world, r, &results));
  }
  f.eng.run();
  for (int r = 0; r < 4; ++r) {
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)], 13.0);
  }
}

TEST(World, AllreduceOddRankCount) {
  Fixture f(3);
  std::vector<double> results(3, -1.0);
  for (int r = 0; r < 3; ++r) {
    f.eng.spawn([](World& w, int rank, std::vector<double>* out) -> sim::Task {
      double reduced = 0.0;
      co_await w.allreduce(rank, 64.0, static_cast<double>(100 - rank),
                           &reduced);
      (*out)[static_cast<std::size_t>(rank)] = reduced;
    }(*f.world, r, &results));
  }
  f.eng.run();
  for (int r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(r)], 100.0);
  }
}

TEST(World, GatherAndScatterComplete) {
  Fixture f(4);
  std::vector<bool> done(4, false);
  for (int r = 0; r < 4; ++r) {
    f.eng.spawn(collectiveDriver(
        *f.world, r,
        [](World& w, int rank) -> sim::Task {
          co_await w.gather(rank, 0, 1024.0);
          co_await w.scatter(rank, 0, 2048.0);
        },
        &done));
  }
  f.eng.run();
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(done[static_cast<std::size_t>(r)]);
}

TEST(World, AllgatherCompletesAndShipsRingTraffic) {
  Fixture f(4);
  std::vector<bool> done(4, false);
  for (int r = 0; r < 4; ++r) {
    f.eng.spawn(collectiveDriver(
        *f.world, r,
        [](World& w, int rank) { return w.allgather(rank, 1024.0); }, &done));
  }
  f.eng.run();
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(done[static_cast<std::size_t>(r)]);
  // Ring allgather: p(p−1) messages of bytesPerRank.
  EXPECT_EQ(f.world->messagesSent(), 12u);
  EXPECT_DOUBLE_EQ(f.world->bytesSent(), 12.0 * 1024.0);
}

TEST(World, AlltoallExchangesAllPairs) {
  Fixture f(4);
  std::vector<bool> done(4, false);
  for (int r = 0; r < 4; ++r) {
    f.eng.spawn(collectiveDriver(
        *f.world, r,
        [](World& w, int rank) { return w.alltoall(rank, 256.0); }, &done));
  }
  f.eng.run();
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(done[static_cast<std::size_t>(r)]);
  EXPECT_EQ(f.world->messagesSent(), 12u);  // p(p−1) personalized messages
}

TEST(World, ReduceScatterCompletes) {
  Fixture f(4);
  std::vector<bool> done(4, false);
  for (int r = 0; r < 4; ++r) {
    f.eng.spawn(collectiveDriver(
        *f.world, r,
        [](World& w, int rank) { return w.reduceScatter(rank, 512.0); },
        &done));
  }
  f.eng.run();
  for (int r = 0; r < 4; ++r) EXPECT_TRUE(done[static_cast<std::size_t>(r)]);
}

TEST(World, ConsecutiveAllgathersDoNotCrosstalk) {
  Fixture f(3);
  std::vector<bool> done(3, false);
  for (int r = 0; r < 3; ++r) {
    f.eng.spawn(collectiveDriver(
        *f.world, r,
        [](World& w, int rank) -> sim::Task {
          for (int i = 0; i < 5; ++i) co_await w.allgather(rank, 128.0);
        },
        &done));
  }
  f.eng.run();
  for (int r = 0; r < 3; ++r) EXPECT_TRUE(done[static_cast<std::size_t>(r)]);
}

sim::Task overlapDriver(World& w, double* elapsed) {
  // isend lets communication overlap computation: total ≈ max(comm, compute)
  // instead of their sum.
  const double t0 = w.engine().now();
  auto req = w.isend(0, 1, 16.0 * kMB, 9);  // ≈0.1 s on Myrinet
  co_await w.compute(0, 99e6);              // ≈1 s on uiuc0
  co_await w.wait(req);
  *elapsed = w.engine().now() - t0;
}

TEST(World, IsendOverlapsComputation) {
  Fixture f(2);
  double elapsed = -1.0;
  f.eng.spawn(overlapDriver(*f.world, &elapsed));
  f.eng.spawn([](World& w) -> sim::Task {
    Message m;
    co_await w.recv(1, 0, 9, &m);
  }(*f.world));
  f.eng.run();
  EXPECT_NEAR(elapsed, 1.0, 0.15);  // not 1.1: the send hid behind compute
}

TEST(World, IrecvCompletesWhenMessageArrives) {
  Fixture f(2);
  Message m;
  double completedAt = -1.0;
  f.eng.spawn([](World& w, Message* m, double* t) -> sim::Task {
    auto req = w.irecv(1, 0, 4, m);
    EXPECT_FALSE(req.complete());
    co_await w.wait(req);
    *t = w.engine().now();
  }(*f.world, &m, &completedAt));
  f.eng.schedule(5.0, [&f] {
    f.eng.spawn([](World& w) -> sim::Task {
      co_await w.send(0, 1, 128.0, 4, 2.5);
    }(*f.world));
  });
  f.eng.run();
  EXPECT_GE(completedAt, 5.0);
  EXPECT_DOUBLE_EQ(std::any_cast<double>(m.payload), 2.5);
}

TEST(World, WaitAllJoinsEverything) {
  Fixture f(4);
  int received = 0;
  f.eng.spawn([](World& w, int* received) -> sim::Task {
    std::vector<Message> msgs(3);
    std::vector<World::Request> reqs;
    for (int src = 1; src <= 3; ++src) {
      reqs.push_back(w.irecv(0, src, 6, &msgs[static_cast<std::size_t>(src - 1)]));
    }
    co_await w.waitAll(reqs);
    *received = 3;
  }(*f.world, &received));
  for (int src = 1; src <= 3; ++src) {
    f.eng.spawn([](World& w, int src) -> sim::Task {
      co_await sim::sleepFor(w.engine(), static_cast<double>(src));
      co_await w.send(src, 0, 64.0, 6);
    }(*f.world, src));
  }
  f.eng.run();
  EXPECT_EQ(received, 3);
}

TEST(World, WaitOnInvalidRequestThrows) {
  Fixture f(2);
  f.eng.spawn([](World& w) -> sim::Task {
    co_await w.wait(World::Request{});
  }(*f.world));
  EXPECT_THROW(f.eng.run(), InvalidArgument);
}

TEST(World, SetNodeOfRedirectsTraffic) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  World w(g, {tb.utkNodes[0], tb.utkNodes[1]});
  // Move rank 1 to UIUC: the next send crosses the WAN.
  w.setNodeOf(1, tb.uiucNodes[0]);
  eng.spawn([](World& w) -> sim::Task {
    co_await w.send(0, 1, 1.2 * kMB, 0);
  }(w));
  eng.spawn([](World& w) -> sim::Task {
    Message m;
    co_await w.recv(1, 0, 0, &m);
  }(w));
  eng.run();
  EXPECT_GT(eng.now(), 0.8);
}

class Recorder final : public CommProfiler {
 public:
  int sends = 0, recvs = 0, colls = 0, computes = 0;
  void onSend(int, int, double, double, double) override { ++sends; }
  void onRecv(int, int, double, double) override { ++recvs; }
  void onCollective(const std::string&, int, double, double, double) override {
    ++colls;
  }
  void onCompute(int, double, double, double) override { ++computes; }
};

TEST(World, ProfilerSeesAllEvents) {
  Fixture f(2);
  Recorder rec;
  f.world->setProfiler(&rec);
  f.eng.spawn([](World& w) -> sim::Task {
    co_await w.send(0, 1, 100.0, 0);
    co_await w.compute(0, 1e6);
    co_await w.barrier(0);
  }(*f.world));
  f.eng.spawn([](World& w) -> sim::Task {
    Message m;
    co_await w.recv(1, 0, 0, &m);
    co_await w.barrier(1);
  }(*f.world));
  f.eng.run();
  EXPECT_EQ(rec.sends, 1);
  EXPECT_EQ(rec.recvs, 1);
  EXPECT_EQ(rec.colls, 2);  // two barrier participants
  EXPECT_EQ(rec.computes, 1);
}

class RingSize : public ::testing::TestWithParam<int> {};

TEST_P(RingSize, TokenRingTerminates) {
  // Property: a token passed around any ring size comes back to rank 0.
  const int p = GetParam();
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  std::vector<grid::NodeId> mapping;
  for (int r = 0; r < p; ++r) {
    mapping.push_back(tb.uiucNodes[static_cast<std::size_t>(r % 8)]);
  }
  World w(g, mapping);
  int hops = 0;
  for (int r = 0; r < p; ++r) {
    eng.spawn([](World& w, int rank, int p, int* hops) -> sim::Task {
      if (rank == 0) {
        co_await w.send(0, 1 % p, 64.0, 5);
        Message m;
        co_await w.recv(0, (p - 1) % p, 5, &m);
        ++*hops;
      } else {
        Message m;
        co_await w.recv(rank, rank - 1, 5, &m);
        ++*hops;
        co_await w.send(rank, (rank + 1) % p, 64.0, 5);
      }
    }(w, r, p, &hops));
  }
  eng.run();
  EXPECT_EQ(hops, p);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RingSize, ::testing::Values(2, 3, 4, 6, 8));

}  // namespace
}  // namespace grads::vmpi

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/ps_resource.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "util/error.hpp"

namespace grads::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0.0);
  EXPECT_EQ(eng.pendingEvents(), 0u);
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule(3.0, [&] { order.push_back(3); });
  eng.schedule(1.0, [&] { order.push_back(1); });
  eng.schedule(2.0, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 3.0);
  EXPECT_EQ(eng.processedEvents(), 3u);
}

TEST(Engine, SameTimeEventsRunFifo) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    eng.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, CancelledEventDoesNotFire) {
  Engine eng;
  bool fired = false;
  auto h = eng.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, HandleNotPendingAfterFire) {
  Engine eng;
  auto h = eng.schedule(1.0, [] {});
  eng.run();
  EXPECT_FALSE(h.pending());
}

TEST(Engine, RunUntilAdvancesClockEvenWithoutEvents) {
  Engine eng;
  eng.runUntil(42.0);
  EXPECT_EQ(eng.now(), 42.0);
}

TEST(Engine, RunUntilStopsAtBoundary) {
  Engine eng;
  std::vector<double> times;
  eng.schedule(1.0, [&] { times.push_back(eng.now()); });
  eng.schedule(5.0, [&] { times.push_back(eng.now()); });
  eng.runUntil(3.0);
  EXPECT_EQ(times, (std::vector<double>{1.0}));
  EXPECT_EQ(eng.now(), 3.0);
  eng.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 5.0}));
}

TEST(Engine, NegativeDelayRejected) {
  Engine eng;
  EXPECT_THROW(eng.schedule(-1.0, [] {}), InvalidArgument);
}

TEST(Engine, SchedulingInPastRejected) {
  Engine eng;
  eng.schedule(2.0, [] {});
  eng.run();
  EXPECT_THROW(eng.scheduleAt(1.0, [] {}), InvalidArgument);
}

Task simpleSleeper(Engine& eng, double dt, double* wokeAt) {
  co_await sleepFor(eng, dt);
  *wokeAt = eng.now();
}

TEST(Coroutines, SleepAdvancesVirtualTime) {
  Engine eng;
  double wokeAt = -1.0;
  eng.spawn(simpleSleeper(eng, 7.5, &wokeAt), "sleeper");
  EXPECT_EQ(eng.liveProcesses(), 1u);
  eng.run();
  EXPECT_EQ(wokeAt, 7.5);
  EXPECT_EQ(eng.liveProcesses(), 0u);
}

Task nestedChild(Engine& eng, std::vector<int>* log) {
  log->push_back(1);
  co_await sleepFor(eng, 1.0);
  log->push_back(2);
}

Task nestedParent(Engine& eng, std::vector<int>* log) {
  log->push_back(0);
  co_await nestedChild(eng, log);
  log->push_back(3);
}

TEST(Coroutines, AwaitingChildTaskJoins) {
  Engine eng;
  std::vector<int> log;
  eng.spawn(nestedParent(eng, &log));
  eng.run();
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3}));
}

Task throwing(Engine& eng) {
  co_await sleepFor(eng, 1.0);
  throw Error("boom");
}

TEST(Coroutines, DetachedExceptionSurfacesFromRun) {
  Engine eng;
  eng.spawn(throwing(eng));
  EXPECT_THROW(eng.run(), Error);
}

Task rethrower(Engine& eng, bool* caught) {
  try {
    co_await throwing(eng);
  } catch (const Error&) {
    *caught = true;
  }
}

TEST(Coroutines, ChildExceptionPropagatesToParent) {
  Engine eng;
  bool caught = false;
  eng.spawn(rethrower(eng, &caught));
  eng.run();
  EXPECT_TRUE(caught);
}

Task waiterTask(Event& ev, Engine& eng, double* t) {
  co_await ev.wait();
  *t = eng.now();
}

TEST(Sync, EventWakesAllWaiters) {
  Engine eng;
  Event ev(eng);
  double t1 = -1.0;
  double t2 = -1.0;
  eng.spawn(waiterTask(ev, eng, &t1));
  eng.spawn(waiterTask(ev, eng, &t2));
  eng.schedule(4.0, [&] { ev.set(); });
  eng.run();
  EXPECT_EQ(t1, 4.0);
  EXPECT_EQ(t2, 4.0);
}

TEST(Sync, AlreadySetEventDoesNotBlock) {
  Engine eng;
  Event ev(eng);
  ev.set();
  double t = -1.0;
  eng.spawn(waiterTask(ev, eng, &t));
  eng.run();
  EXPECT_EQ(t, 0.0);
}

TEST(Sync, EventResetRequiresNoWaiters) {
  Engine eng;
  Event ev(eng);
  ev.set();
  ev.reset();
  EXPECT_FALSE(ev.isSet());
}

Task producer(Engine& eng, Channel<int>& ch, int n) {
  for (int i = 0; i < n; ++i) {
    co_await sleepFor(eng, 1.0);
    ch.send(i);
  }
}

Task consumer(Channel<int>& ch, int n, std::vector<int>* out) {
  for (int i = 0; i < n; ++i) {
    const int v = co_await ch.recv();
    out->push_back(v);
  }
}

TEST(Sync, ChannelDeliversInOrder) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> got;
  eng.spawn(consumer(ch, 5, &got));
  eng.spawn(producer(eng, ch, 5));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Sync, ChannelBuffersWhenNoReceiver) {
  Engine eng;
  Channel<int> ch(eng);
  ch.send(10);
  ch.send(11);
  EXPECT_EQ(ch.size(), 2u);
  EXPECT_EQ(ch.tryRecv(), std::optional<int>(10));
  std::vector<int> got;
  eng.spawn(consumer(ch, 1, &got));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{11}));
}

TEST(Sync, TryRecvOnEmptyReturnsNullopt) {
  Engine eng;
  Channel<int> ch(eng);
  EXPECT_EQ(ch.tryRecv(), std::nullopt);
}

Task gateWaiter(Gate& g, Engine& eng, double* t) {
  co_await g.wait();
  *t = eng.now();
}

TEST(Sync, GateBlocksUntilOpen) {
  Engine eng;
  Gate g(eng, /*open=*/false);
  double t = -1.0;
  eng.spawn(gateWaiter(g, eng, &t));
  eng.schedule(2.0, [&] { g.open(); });
  eng.run();
  EXPECT_EQ(t, 2.0);
}

TEST(Sync, OpenGatePassesThrough) {
  Engine eng;
  Gate g(eng, /*open=*/true);
  double t = -1.0;
  eng.spawn(gateWaiter(g, eng, &t));
  eng.run();
  EXPECT_EQ(t, 0.0);
}

Task joinSetDriver(Engine& eng, double* doneAt) {
  JoinSet js(eng);
  for (int i = 1; i <= 3; ++i) {
    js.spawn([](Engine& e, double dt) -> Task { co_await sleepFor(e, dt); }(
        eng, static_cast<double>(i)));
  }
  co_await js.join();
  *doneAt = eng.now();
}

TEST(Sync, JoinSetWaitsForSlowestChild) {
  Engine eng;
  double doneAt = -1.0;
  eng.spawn(joinSetDriver(eng, &doneAt));
  eng.run();
  EXPECT_EQ(doneAt, 3.0);
}

Task consumeTask(PsResource& r, double work, double* doneAt) {
  co_await r.consume(work);
  *doneAt = r.engine().now();
}

TEST(PsResource, SingleJobRunsAtFullRate) {
  Engine eng;
  PsResource cpu(eng, 100.0);  // 100 units/s
  double doneAt = -1.0;
  eng.spawn(consumeTask(cpu, 500.0, &doneAt));
  eng.run();
  EXPECT_DOUBLE_EQ(doneAt, 5.0);
  EXPECT_DOUBLE_EQ(cpu.completedWork(), 500.0);
}

TEST(PsResource, TwoJobsShareFairly) {
  Engine eng;
  PsResource cpu(eng, 100.0);
  double d1 = -1.0;
  double d2 = -1.0;
  eng.spawn(consumeTask(cpu, 100.0, &d1));
  eng.spawn(consumeTask(cpu, 100.0, &d2));
  eng.run();
  // Both share 50/s, so both finish at t=2.
  EXPECT_DOUBLE_EQ(d1, 2.0);
  EXPECT_DOUBLE_EQ(d2, 2.0);
}

TEST(PsResource, ShortJobLeavesMoreRateForLongJob) {
  Engine eng;
  PsResource cpu(eng, 100.0);
  double dShort = -1.0;
  double dLong = -1.0;
  eng.spawn(consumeTask(cpu, 50.0, &dShort));
  eng.spawn(consumeTask(cpu, 150.0, &dLong));
  eng.run();
  // Shared 50/s until t=1 (short done, long has 100 left), then 100/s → t=2.
  EXPECT_DOUBLE_EQ(dShort, 1.0);
  EXPECT_DOUBLE_EQ(dLong, 2.0);
}

TEST(PsResource, MaxRatePerUnitCapsSingleJob) {
  Engine eng;
  // Dual-processor node: 200 total but one process can use only one CPU.
  PsResource cpu(eng, 200.0, /*maxRatePerUnit=*/100.0);
  double d = -1.0;
  eng.spawn(consumeTask(cpu, 100.0, &d));
  eng.run();
  EXPECT_DOUBLE_EQ(d, 1.0);
}

TEST(PsResource, DualCpuRunsTwoJobsAtFullSpeed) {
  Engine eng;
  PsResource cpu(eng, 200.0, 100.0);
  double d1 = -1.0;
  double d2 = -1.0;
  eng.spawn(consumeTask(cpu, 100.0, &d1));
  eng.spawn(consumeTask(cpu, 100.0, &d2));
  eng.run();
  EXPECT_DOUBLE_EQ(d1, 1.0);
  EXPECT_DOUBLE_EQ(d2, 1.0);
}

TEST(PsResource, BackgroundLoadSlowsJob) {
  Engine eng;
  PsResource cpu(eng, 100.0);
  cpu.addLoad(1.0);  // one competing process → half share
  double d = -1.0;
  eng.spawn(consumeTask(cpu, 100.0, &d));
  eng.run();
  EXPECT_DOUBLE_EQ(d, 2.0);
}

TEST(PsResource, LoadArrivingMidJobReplans) {
  Engine eng;
  PsResource cpu(eng, 100.0);
  double d = -1.0;
  eng.spawn(consumeTask(cpu, 100.0, &d));
  // At t=0.5 (50 units done), add a competitor: remaining 50 at 50/s → +1 s.
  eng.schedule(0.5, [&] { cpu.addLoad(1.0); });
  eng.run();
  EXPECT_DOUBLE_EQ(d, 1.5);
}

TEST(PsResource, LoadRemovalSpeedsJobUp) {
  Engine eng;
  PsResource cpu(eng, 100.0);
  const auto id = cpu.addLoad(1.0);
  double d = -1.0;
  eng.spawn(consumeTask(cpu, 100.0, &d));
  eng.schedule(1.0, [&] { cpu.removeLoad(id); });  // 50 done, then 100/s
  eng.run();
  EXPECT_DOUBLE_EQ(d, 1.5);
}

TEST(PsResource, CapacityChangeMidJob) {
  Engine eng;
  PsResource link(eng, 10.0);
  double d = -1.0;
  eng.spawn(consumeTask(link, 20.0, &d));
  eng.schedule(1.0, [&] { link.setCapacity(5.0); });  // 10 left at 5/s
  eng.run();
  EXPECT_DOUBLE_EQ(d, 3.0);
}

TEST(PsResource, ZeroCapacityStallsUntilRestored) {
  Engine eng;
  PsResource link(eng, 10.0);
  double d = -1.0;
  eng.spawn(consumeTask(link, 10.0, &d));
  eng.schedule(0.5, [&] { link.setCapacity(0.0); });
  eng.schedule(2.5, [&] { link.setCapacity(10.0); });
  eng.run();
  // 5 done by 0.5, stalled 2 s, 5 more in 0.5 s.
  EXPECT_DOUBLE_EQ(d, 3.0);
}

TEST(PsResource, ZeroWorkCompletesImmediately) {
  Engine eng;
  PsResource cpu(eng, 100.0);
  double d = -1.0;
  eng.spawn(consumeTask(cpu, 0.0, &d));
  eng.run();
  EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(PsResource, WeightedJobGetsProportionalShare) {
  Engine eng;
  PsResource cpu(eng, 90.0);
  double dHeavy = -1.0;
  double dLight = -1.0;
  eng.spawn([](PsResource& r, double* t) -> Task {
    co_await r.consume(120.0, 2.0);
    *t = r.engine().now();
  }(cpu, &dHeavy));
  eng.spawn(consumeTask(cpu, 30.0, &dLight));
  eng.run();
  // Weights 2:1 on 90/s → heavy 60/s, light 30/s; both finish at t=1... then
  // heavy has 60 left? No: heavy work=120 at 60/s → t=2 after light leaves at
  // t=1 heavy rate = min(inf, 90/2)*2 = 90/s; remaining 60 → t = 1 + 60/90.
  EXPECT_DOUBLE_EQ(dLight, 1.0);
  EXPECT_NEAR(dHeavy, 1.0 + 60.0 / 90.0, 1e-12);
}

TEST(PsResource, RemoveUnknownLoadThrows) {
  Engine eng;
  PsResource cpu(eng, 1.0);
  EXPECT_THROW(cpu.removeLoad(1234), InvalidArgument);
}

TEST(PsResource, RatePerUnitReflectsContention) {
  Engine eng;
  PsResource cpu(eng, 100.0);
  EXPECT_DOUBLE_EQ(cpu.ratePerUnit(), 100.0);
  cpu.addLoad(3.0);
  // Rate per unit weight among *current* jobs: 100 / 3.
  EXPECT_DOUBLE_EQ(cpu.ratePerUnit(), 100.0 / 3.0);
  EXPECT_DOUBLE_EQ(cpu.backgroundWeight(), 3.0);
}

// Property-style sweep: for any (capacity, competing weight, work) the finish
// time matches the analytic PS formula work * (1 + w) / capacity.
struct PsCase {
  double capacity;
  double loadWeight;
  double work;
};

class PsResourceLaw : public ::testing::TestWithParam<PsCase> {};

TEST_P(PsResourceLaw, MatchesAnalyticSharing) {
  const auto c = GetParam();
  Engine eng;
  PsResource cpu(eng, c.capacity);
  if (c.loadWeight > 0.0) cpu.addLoad(c.loadWeight);
  double d = -1.0;
  eng.spawn(consumeTask(cpu, c.work, &d));
  eng.run();
  const double expected = c.work * (1.0 + c.loadWeight) / c.capacity;
  EXPECT_NEAR(d, expected, 1e-9 * (1.0 + expected));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PsResourceLaw,
    ::testing::Values(PsCase{1.0, 0.0, 1.0}, PsCase{10.0, 1.0, 5.0},
                      PsCase{933e6, 2.0, 1e9}, PsCase{0.5, 0.25, 7.0},
                      PsCase{1e9, 9.0, 3.2e8}, PsCase{128.0, 0.5, 1024.0}));

}  // namespace
}  // namespace grads::sim

#include <gtest/gtest.h>

#include "grid/load.hpp"
#include "grid/testbeds.hpp"
#include "services/gis.hpp"
#include "services/ibp.hpp"
#include "services/nws.hpp"
#include "util/error.hpp"

namespace grads::services {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

TEST(Forecasters, LastValueTracksInput) {
  auto f = makeLastValue();
  f->update(1.0);
  f->update(9.0);
  EXPECT_DOUBLE_EQ(f->forecast(), 9.0);
}

TEST(Forecasters, RunningMeanConverges) {
  auto f = makeRunningMean();
  for (int i = 0; i < 100; ++i) f->update(i % 2 == 0 ? 0.0 : 1.0);
  EXPECT_NEAR(f->forecast(), 0.5, 1e-9);
}

TEST(Forecasters, SlidingMedianIgnoresSpikes) {
  auto f = makeSlidingMedian(5);
  for (double v : {1.0, 1.0, 100.0, 1.0, 1.0}) f->update(v);
  EXPECT_DOUBLE_EQ(f->forecast(), 1.0);
}

TEST(Forecasters, ExpSmoothingWeighsRecent) {
  auto f = makeExpSmoothing(0.5);
  f->update(0.0);
  f->update(1.0);
  EXPECT_DOUBLE_EQ(f->forecast(), 0.5);
}

TEST(Forecasters, ExpSmoothingRejectsBadAlpha) {
  EXPECT_THROW(makeExpSmoothing(0.0)->forecast(), InvalidArgument);
  EXPECT_THROW(makeExpSmoothing(1.5)->forecast(), InvalidArgument);
}

TEST(Battery, PicksLowErrorForecasterOnNoisySeries) {
  // Noisy-but-stationary series: median/mean beat last-value.
  ForecasterBattery b;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    b.addMeasurement(0.5 + (rng.uniform() < 0.1 ? 0.4 : rng.normal(0.0, 0.02)));
  }
  EXPECT_NE(b.bestName(), "last-value");
  EXPECT_NEAR(b.forecast(), 0.5, 0.1);
}

TEST(Battery, TracksStepChange) {
  ForecasterBattery b;
  for (int i = 0; i < 50; ++i) b.addMeasurement(1.0);
  for (int i = 0; i < 50; ++i) b.addMeasurement(0.25);
  // After a sustained shift, the forecast must follow the new level.
  EXPECT_NEAR(b.forecast(), 0.25, 0.15);
}

TEST(Battery, ForecastBeforeDataThrows) {
  ForecasterBattery b;
  EXPECT_THROW(b.forecast(), InvalidArgument);
}

TEST(Nws, SensesIdleGridAsFullyAvailable) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  Nws nws(eng, g, 10.0, 0.0);  // noise-free
  nws.start();
  eng.runUntil(100.0);
  EXPECT_GE(nws.samplesTaken(), 10u);
  EXPECT_NEAR(nws.cpuAvailability(tb.utkNodes[0]), 1.0, 1e-9);
}

TEST(Nws, DetectsInjectedLoad) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  Nws nws(eng, g, 5.0, 0.0);
  nws.start();
  // uiuc0 is single-CPU: one competing process → availability 0.5.
  grid::applyLoadTrace(eng, g.node(tb.uiucNodes[0]),
                       grid::LoadTrace::stepAt(50.0, 1.0));
  eng.runUntil(300.0);
  EXPECT_NEAR(nws.cpuAvailability(tb.uiucNodes[0]), 0.5, 0.05);
  EXPECT_NEAR(nws.cpuAvailability(tb.uiucNodes[1]), 1.0, 1e-9);
}

TEST(Nws, TransferTimeMatchesGridEstimate) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  Nws nws(eng, g, 10.0, 0.0);
  nws.start();
  eng.runUntil(50.0);
  const double est = nws.transferTime(tb.utkNodes[0], tb.uiucNodes[0], 3 * kMB);
  EXPECT_NEAR(est, g.transferEstimate(tb.utkNodes[0], tb.uiucNodes[0], 3 * kMB),
              0.2);
}

TEST(Nws, DegradedTransferTimeClampsToPerFlowCap) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  // Never started: no measurements, so the degraded estimate falls back to
  // link specs. The LAN backplane (25 MB/s) exceeds the per-flow wire speed
  // (12.5 MB/s); quoting the backplane would undercut transferEstimate.
  Nws nws(eng, g, 10.0, 0.0);
  const grid::LinkSpec& lan = g.link(g.cluster(tb.utk).lan).spec();
  ASSERT_GT(lan.bandwidthBytesPerSec, lan.perFlowCapBytesPerSec);
  EXPECT_DOUBLE_EQ(
      nws.transferTimeDegraded(tb.utkNodes[0], tb.utkNodes[1], kMB),
      lan.latencySec + kMB / lan.perFlowCapBytesPerSec);
}

TEST(Nws, SamplesLinkUtilizationFromFlowRegistry) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  Nws nws(eng, g, 1.0, 0.0);  // noise-free: gauges report ground truth
  nws.start();
  const auto route = g.route(tb.utkNodes[0], tb.uiucNodes[0]);
  const grid::LinkId wan = route.links[1];
  // A long transfer saturates the WAN while the sensor sweeps keep firing.
  eng.spawn([](grid::Grid& grid, grid::NodeId a, grid::NodeId b) -> sim::Task {
    co_await grid.transfer(a, b, 12.0 * kMB);  // ~10 s at 1.2 MB/s
  }(g, tb.utkNodes[0], tb.uiucNodes[0]),
            "long-xfer");
  eng.runUntil(5.0);
  EXPECT_DOUBLE_EQ(nws.linkUtilization(wan), 1.0);
  ASSERT_TRUE(nws.tryLinkUtilization(wan).has_value());
  // Drained: subsequent sweeps see the link idle again.
  eng.runUntil(30.0);
  EXPECT_DOUBLE_EQ(nws.linkUtilization(wan), 0.0);
}

TEST(Nws, EffectiveRateScalesWithAvailability) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  Nws nws(eng, g, 5.0, 0.0);
  nws.start();
  g.node(tb.uiucNodes[0]).injectLoad(1.0);
  eng.runUntil(50.0);
  const auto& spec = g.node(tb.uiucNodes[0]).spec();
  EXPECT_NEAR(nws.effectiveRate(tb.uiucNodes[0]),
              0.5 * spec.effectiveFlopsPerCpu(), 1e3);
}

TEST(Gis, SoftwareDirectory) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  Gis gis(g);
  gis.installEverywhere(software::kLocalBinder);
  gis.installSoftware(tb.utkNodes[0], software::kScalapack, "/opt/scalapack");
  EXPECT_TRUE(gis.hasSoftware(tb.utkNodes[0], software::kScalapack));
  EXPECT_FALSE(gis.hasSoftware(tb.utkNodes[1], software::kScalapack));
  EXPECT_EQ(gis.softwareLocation(tb.utkNodes[0], software::kScalapack),
            std::optional<std::string>("/opt/scalapack"));
  EXPECT_EQ(gis.softwareLocation(tb.utkNodes[1], software::kScalapack),
            std::nullopt);
}

TEST(Gis, FindNodesFiltersByPackageAndArch) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildEmanTestbed(g);
  Gis gis(g);
  gis.installEverywhere("eman");
  const auto ia64 =
      gis.findNodes({"eman"}, std::optional<grid::Arch>(grid::Arch::kIA64));
  EXPECT_EQ(ia64.size(), g.clusterNodes(tb.ia64).size());
  const auto all = gis.findNodes({"eman"});
  EXPECT_EQ(all.size(), g.nodeCount());
  const auto none = gis.findNodes({"not-installed"});
  EXPECT_TRUE(none.empty());
}

TEST(Gis, DownNodesExcludedFromDiscovery) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  Gis gis(g);
  gis.installEverywhere("x");
  gis.setNodeUp(tb.utkNodes[0], false);
  EXPECT_FALSE(gis.isNodeUp(tb.utkNodes[0]));
  const auto found = gis.findNodes({"x"});
  EXPECT_EQ(found.size(), g.nodeCount() - 1);
  EXPECT_EQ(gis.availableNodes().size(), g.nodeCount() - 1);
}

TEST(Ibp, LocalPutIsDiskBound) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  Ibp ibp(g);
  double doneAt = -1.0;
  const double bytes = 30.0 * kMB;  // one second at 30 MB/s disk
  eng.spawn([](Ibp& s, double b, grid::NodeId n, double* t,
               sim::Engine& e) -> sim::Task {
    co_await s.put("ckpt", b, n);
    *t = e.now();
  }(ibp, bytes, tb.utkNodes[0], &doneAt, eng));
  eng.run();
  EXPECT_NEAR(doneAt, 1.0, 0.01);
  EXPECT_TRUE(ibp.exists("ckpt"));
  EXPECT_DOUBLE_EQ(ibp.sizeOf("ckpt"), bytes);
  EXPECT_EQ(ibp.locationOf("ckpt"), tb.utkNodes[0]);
}

TEST(Ibp, RemoteGetPaysWanTransfer) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  Ibp ibp(g);
  double doneAt = -1.0;
  eng.spawn([](Ibp& s, grid::NodeId from, grid::NodeId to, double* t,
               sim::Engine& e) -> sim::Task {
    co_await s.put("ckpt", 1.2 * kMB, from);
    co_await s.get("ckpt", to);
    *t = e.now();
  }(ibp, tb.utkNodes[0], tb.uiucNodes[0], &doneAt, eng));
  eng.run();
  // put: 1.2/30 s disk; get: 1.2/30 disk + ~1 s WAN at 1.2 MB/s.
  EXPECT_NEAR(doneAt, 0.04 + 0.04 + 1.0, 0.1);
}

TEST(Ibp, LocalReadSkipsNetwork) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  Ibp ibp(g);
  double doneAt = -1.0;
  eng.spawn([](Ibp& s, grid::NodeId n, double* t, sim::Engine& e) -> sim::Task {
    co_await s.put("k", 30.0 * kMB, n);
    co_await s.get("k", n);
    *t = e.now();
  }(ibp, tb.utkNodes[0], &doneAt, eng));
  eng.run();
  EXPECT_NEAR(doneAt, 2.0, 0.05);  // write 1 s + read 1 s, no WAN
}

TEST(Ibp, SliceValidation) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  Ibp ibp(g);
  eng.spawn([](Ibp& s, grid::NodeId n) -> sim::Task {
    co_await s.put("k", 100.0, n);
    co_await s.getSlice("k", 1000.0, n);  // larger than object
  }(ibp, tb.utkNodes[0]));
  EXPECT_THROW(eng.run(), InvalidArgument);
}

TEST(Ibp, UnknownKeyThrows) {
  sim::Engine eng;
  grid::Grid g(eng);
  grid::buildQrTestbed(g);
  Ibp ibp(g);
  EXPECT_THROW(ibp.sizeOf("nope"), InvalidArgument);
  EXPECT_THROW(ibp.remove("nope"), InvalidArgument);
}

TEST(Ibp, RemoveDeletesObject) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  Ibp ibp(g);
  eng.spawn([](Ibp& s, grid::NodeId n) -> sim::Task {
    co_await s.put("k", 10.0, n);
  }(ibp, tb.utkNodes[0]));
  eng.run();
  ibp.remove("k");
  EXPECT_FALSE(ibp.exists("k"));
  EXPECT_EQ(ibp.objectCount(), 0u);
}

}  // namespace
}  // namespace grads::services

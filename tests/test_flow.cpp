#include <gtest/gtest.h>

#include "core/snapshot.hpp"
#include "grid/grid.hpp"
#include "grid/testbeds.hpp"
#include "util/error.hpp"

namespace grads::grid {
namespace {

constexpr double kMB = 1024.0 * 1024.0;
constexpr double kWanBw = 1.2 * kMB;  // utk-uiuc.wan, one shared pipe

struct FlowFixture {
  sim::Engine eng;
  Grid g{eng};
  QrTestbed tb;

  FlowFixture() { tb = buildQrTestbed(g); }

  double wanRouteLatency() const {
    return g.route(tb.utkNodes[0], tb.uiucNodes[0]).latencySec;
  }
  LinkId wan() const {
    return g.route(tb.utkNodes[0], tb.uiucNodes[0]).links[1];
  }
};

sim::Task xfer(Grid* g, NodeId a, NodeId b, double bytes, TransferClass cls,
               double* doneAt) {
  co_await g->transfer(a, b, bytes, cls);
  *doneAt = g->engine().now();
}

// ---------------------------------------------------------------------------
// Single-flow backward compatibility: an uncontended transfer reproduces the
// legacy per-link streaming time bit-for-bit.
// ---------------------------------------------------------------------------

TEST(FlowModel, LoneWanFlowMatchesLegacyTimeExactly) {
  FlowFixture f;
  double doneAt = -1.0;
  f.eng.spawn(xfer(&f.g, f.tb.utkNodes[0], f.tb.uiucNodes[0], 2.4 * kMB,
                   TransferClass::kInteractive, &doneAt));
  f.eng.run();
  // latency + bytes/bottleneck, same doubles the old model produced.
  EXPECT_DOUBLE_EQ(doneAt, f.wanRouteLatency() + 2.4 * kMB / kWanBw);
}

TEST(FlowModel, LoneBulkFlowKeepsFullRateWhenUncontended) {
  FlowFixture f;
  ASSERT_TRUE(f.g.flows().pacingEnabled());
  double doneAt = -1.0;
  f.eng.spawn(xfer(&f.g, f.tb.utkNodes[0], f.tb.uiucNodes[0], 2.4 * kMB,
                   TransferClass::kBulk, &doneAt));
  f.eng.run();
  // Pacing weights are powers of two: w·(capacity/w) == capacity exactly,
  // so an uncontended bulk flow pays no pacing tax at all.
  EXPECT_DOUBLE_EQ(doneAt, f.wanRouteLatency() + 2.4 * kMB / kWanBw);
}

// ---------------------------------------------------------------------------
// Max-min fair sharing.
// ---------------------------------------------------------------------------

TEST(FlowModel, ConcurrentWanFlowsGetMaxMinShares) {
  FlowFixture f;
  double done[3] = {-1.0, -1.0, -1.0};
  for (int i = 0; i < 3; ++i) {
    f.eng.spawn(xfer(&f.g, f.tb.utkNodes[i], f.tb.uiucNodes[i], 1.2 * kMB,
                     TransferClass::kInteractive, &done[i]));
  }
  f.eng.run();
  // Three equal flows over the shared WAN pipe: each streams at cap/3 and
  // all finish at the analytic max-min time.
  const double want = f.wanRouteLatency() + 1.2 * kMB / (kWanBw / 3.0);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(done[i], want, 1e-9) << "flow " << i;
  }
  EXPECT_EQ(f.g.flows().peakConcurrentFlows(), 3u);
  EXPECT_EQ(f.g.flows().flowsCompleted(), 3u);
}

TEST(FlowModel, DepartureReturnsBandwidthToSurvivors) {
  FlowFixture f;
  double shortDone = -1.0;
  double longDone = -1.0;
  // Equal rates (cap/2); the short flow drains first and the survivor gets
  // the whole pipe back for its remainder.
  f.eng.spawn(xfer(&f.g, f.tb.utkNodes[0], f.tb.uiucNodes[0], 1.2 * kMB,
                   TransferClass::kInteractive, &shortDone));
  f.eng.spawn(xfer(&f.g, f.tb.utkNodes[1], f.tb.uiucNodes[1], 2.4 * kMB,
                   TransferClass::kInteractive, &longDone));
  f.eng.run();
  const double lat = f.wanRouteLatency();
  // Short: 1.2 MB at 0.6 MB/s = 2 s. Long: 1.2 MB at 0.6 (2 s), remaining
  // 1.2 MB alone at 1.2 (1 s) = 3 s total.
  EXPECT_NEAR(shortDone, lat + 2.0, 1e-9);
  EXPECT_NEAR(longDone, lat + 3.0, 1e-9);
}

TEST(FlowModel, MidTransferBandwidthScaleResharesTheFlow) {
  FlowFixture f;
  double doneAt = -1.0;
  f.eng.spawn(xfer(&f.g, f.tb.utkNodes[0], f.tb.uiucNodes[0], 2.4 * kMB,
                   TransferClass::kInteractive, &doneAt));
  const double lat = f.wanRouteLatency();
  const LinkId wan = f.wan();
  // Halfway through (1.2 MB delivered), the WAN degrades to half rate.
  f.eng.schedule(lat + 1.0, [&] { f.g.link(wan).setBandwidthScale(0.5); });
  f.eng.run();
  // 1 s at 1.2 MB/s, then 1.2 MB at 0.6 MB/s = 2 s more.
  EXPECT_NEAR(doneAt, lat + 3.0, 1e-9);
}

TEST(FlowModel, EstimateNowAgreesWithContendedActual) {
  FlowFixture f;
  double longDone = -1.0;
  double probeDone = -1.0;
  double estimate = -1.0;
  // A long flow owns the pipe; mid-flight we estimate and then launch a
  // second flow. The estimate must predict the contended (half-share)
  // completion, not the uncontended one.
  f.eng.spawn(xfer(&f.g, f.tb.utkNodes[0], f.tb.uiucNodes[0], 24.0 * kMB,
                   TransferClass::kInteractive, &longDone));
  f.eng.schedule(1.0, [&] {
    estimate =
        f.g.transferEstimateNow(f.tb.utkNodes[1], f.tb.uiucNodes[1], 1.2 * kMB);
    f.eng.spawn(xfer(&f.g, f.tb.utkNodes[1], f.tb.uiucNodes[1], 1.2 * kMB,
                     TransferClass::kInteractive, &probeDone));
  });
  f.eng.run();
  EXPECT_NEAR(estimate, f.wanRouteLatency() + 1.2 * kMB / (kWanBw / 2.0),
              1e-9);
  EXPECT_NEAR(probeDone - 1.0, estimate, 1e-9);
}

// ---------------------------------------------------------------------------
// Pacing: bulk flows yield to interactive traffic on contended links.
// ---------------------------------------------------------------------------

TEST(FlowModel, BulkYieldsToInteractiveWhenPaced) {
  FlowFixture f;
  double bulkDone = -1.0;
  double interDone = -1.0;
  f.eng.spawn(xfer(&f.g, f.tb.utkNodes[0], f.tb.uiucNodes[0], 1.2 * kMB,
                   TransferClass::kBulk, &bulkDone));
  f.eng.spawn(xfer(&f.g, f.tb.utkNodes[1], f.tb.uiucNodes[1], 1.2 * kMB,
                   TransferClass::kInteractive, &interDone));
  f.eng.run();
  const double lat = f.wanRouteLatency();
  // Weights 0.25 vs 1.0 → interactive streams at 0.96 MB/s (1.25 s), bulk
  // at 0.24; after the interactive flow drains, bulk's remaining 0.9 MB
  // runs alone (0.75 s) for 2 s total — work conservation.
  EXPECT_NEAR(interDone, lat + 1.2 / 0.96, 1e-9);
  EXPECT_NEAR(bulkDone, lat + 2.0, 1e-9);
}

TEST(FlowModel, PacingDisabledSharesEqually) {
  FlowFixture f;
  f.g.flows().setPacingEnabled(false);
  double bulkDone = -1.0;
  double interDone = -1.0;
  f.eng.spawn(xfer(&f.g, f.tb.utkNodes[0], f.tb.uiucNodes[0], 1.2 * kMB,
                   TransferClass::kBulk, &bulkDone));
  f.eng.spawn(xfer(&f.g, f.tb.utkNodes[1], f.tb.uiucNodes[1], 1.2 * kMB,
                   TransferClass::kInteractive, &interDone));
  f.eng.run();
  const double want = f.wanRouteLatency() + 1.2 * kMB / (kWanBw / 2.0);
  EXPECT_NEAR(interDone, want, 1e-9);
  EXPECT_NEAR(bulkDone, want, 1e-9);
}

TEST(FlowModel, BulkWeightMustBePowerOfTwo) {
  FlowFixture f;
  EXPECT_THROW(f.g.flows().setBulkWeight(0.3), InvalidArgument);
  EXPECT_THROW(f.g.flows().setBulkWeight(0.0), InvalidArgument);
  EXPECT_THROW(f.g.flows().setBulkWeight(2.0), InvalidArgument);
  f.g.flows().setBulkWeight(0.5);
  EXPECT_DOUBLE_EQ(f.g.flows().bulkWeight(), 0.5);
}

// ---------------------------------------------------------------------------
// Static (ablation) mode: contention is ignored entirely.
// ---------------------------------------------------------------------------

TEST(FlowModel, StaticModeOverlapsFlowsForFree) {
  FlowFixture f;
  f.g.flows().setSharingMode(FlowRegistry::SharingMode::kStatic);
  double done[2] = {-1.0, -1.0};
  for (int i = 0; i < 2; ++i) {
    f.eng.spawn(xfer(&f.g, f.tb.utkNodes[i], f.tb.uiucNodes[i], 1.2 * kMB,
                     TransferClass::kInteractive, &done[i]));
  }
  f.eng.run();
  // Both flows pretend the pipe is theirs alone — the physically impossible
  // baseline the flow model exists to correct.
  const double want = f.wanRouteLatency() + 1.2 * kMB / kWanBw;
  EXPECT_NEAR(done[0], want, 1e-9);
  EXPECT_NEAR(done[1], want, 1e-9);
}

// ---------------------------------------------------------------------------
// Congestion gauges.
// ---------------------------------------------------------------------------

TEST(FlowModel, GaugesReportContentionMidFlight) {
  FlowFixture f;
  double done[2] = {-1.0, -1.0};
  for (int i = 0; i < 2; ++i) {
    f.eng.spawn(xfer(&f.g, f.tb.utkNodes[i], f.tb.uiucNodes[i], 1.2 * kMB,
                     TransferClass::kInteractive, &done[i]));
  }
  const LinkId wan = f.wan();
  double util = -1.0;
  double pressure = -1.0;
  std::size_t active = 0;
  f.eng.schedule(1.0, [&] {
    util = f.g.flows().linkUtilization(wan);
    pressure = f.g.flows().linkQueuePressure(wan);
    active = f.g.flows().linkActiveFlows(wan);
  });
  f.eng.run();
  EXPECT_DOUBLE_EQ(util, 1.0);  // pipe fully allocated
  // Two flows that could each use the whole pipe offer 2x its capacity.
  EXPECT_DOUBLE_EQ(pressure, 1.0);
  EXPECT_EQ(active, 2u);
  // Drained: gauges return to idle.
  EXPECT_DOUBLE_EQ(f.g.flows().linkUtilization(wan), 0.0);
  EXPECT_EQ(f.g.flows().linkActiveFlows(wan), 0u);
  EXPECT_EQ(f.g.flows().activeFlows(), 0u);
}

// ---------------------------------------------------------------------------
// Snapshot round-trip.
// ---------------------------------------------------------------------------

TEST(FlowModel, RegistryStateRoundTripsThroughSnapshot) {
  FlowFixture f;
  f.g.flows().setPacingEnabled(false);
  f.g.flows().setBulkWeight(0.5);
  double doneAt = -1.0;
  f.eng.spawn(xfer(&f.g, f.tb.utkNodes[0], f.tb.utkNodes[1], kMB,
                   TransferClass::kInteractive, &doneAt));
  f.eng.run();

  core::SnapshotWriter w;
  f.g.flows().encodeState(w);

  FlowFixture g2;
  core::SnapshotReader r(w.words());
  g2.g.flows().decodeState(r);
  EXPECT_EQ(g2.g.flows().sharingMode(), FlowRegistry::SharingMode::kMaxMin);
  EXPECT_FALSE(g2.g.flows().pacingEnabled());
  EXPECT_DOUBLE_EQ(g2.g.flows().bulkWeight(), 0.5);
  EXPECT_EQ(g2.g.flows().flowsOpened(), f.g.flows().flowsOpened());
  EXPECT_EQ(g2.g.flows().flowsCompleted(), f.g.flows().flowsCompleted());
  EXPECT_DOUBLE_EQ(g2.g.flows().bytesCompleted(), kMB);
  EXPECT_EQ(g2.g.flows().solves(), f.g.flows().solves());
  EXPECT_EQ(g2.g.flows().peakConcurrentFlows(), 1u);
}

}  // namespace
}  // namespace grads::grid

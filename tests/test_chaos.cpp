#include <gtest/gtest.h>

#include "grid/testbeds.hpp"
#include "reschedule/chaos.hpp"
#include "reschedule/failure.hpp"
#include "reschedule/srs.hpp"
#include "services/gis.hpp"
#include "services/ibp.hpp"
#include "services/nws.hpp"
#include "util/retry.hpp"
#include "workflow/estimator.hpp"
#include "workflow/executor.hpp"

namespace grads::reschedule {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

// ---------------------------------------------------------------------------
// Bounded-retry policy.
// ---------------------------------------------------------------------------

TEST(RetryPolicy, BackoffGrowsExponentiallyAndCaps) {
  util::RetryPolicy p;
  p.baseDelaySec = 2.0;
  p.backoffFactor = 2.0;
  p.maxDelaySec = 10.0;
  p.jitterFrac = 0.0;
  EXPECT_DOUBLE_EQ(p.delaySec(0, nullptr), 2.0);
  EXPECT_DOUBLE_EQ(p.delaySec(1, nullptr), 4.0);
  EXPECT_DOUBLE_EQ(p.delaySec(2, nullptr), 8.0);
  EXPECT_DOUBLE_EQ(p.delaySec(3, nullptr), 10.0);  // capped
  EXPECT_DOUBLE_EQ(p.delaySec(9, nullptr), 10.0);
}

TEST(RetryPolicy, NonePolicyNeverGrantsARetry) {
  util::Retry retry(util::RetryPolicy::none());
  EXPECT_FALSE(retry.nextDelaySec().has_value());
  EXPECT_EQ(retry.attemptsUsed(), 0);
}

TEST(RetryPolicy, BudgetExhaustsAfterMaxAttempts) {
  util::RetryPolicy p;
  p.maxAttempts = 3;
  p.jitterFrac = 0.0;
  util::Retry retry(p);
  EXPECT_TRUE(retry.nextDelaySec().has_value());
  EXPECT_TRUE(retry.nextDelaySec().has_value());
  EXPECT_FALSE(retry.nextDelaySec().has_value());  // 3 attempts = 2 retries
  EXPECT_EQ(retry.attemptsUsed(), 2);
}

TEST(RetryPolicy, JitterIsBoundedAndDeterministicInSeed) {
  util::RetryPolicy p;
  p.baseDelaySec = 10.0;
  p.jitterFrac = 0.1;
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 5; ++i) {
    const double da = p.delaySec(i, &a);
    const double db = p.delaySec(i, &b);
    EXPECT_DOUBLE_EQ(da, db);  // same seed, same jitter
    const double nominal = p.delaySec(i, nullptr);
    EXPECT_GE(da, nominal * 0.9);
    EXPECT_LE(da, nominal * 1.1);
  }
}

// ---------------------------------------------------------------------------
// Campaign generation.
// ---------------------------------------------------------------------------

CampaignConfig smallCampaign() {
  CampaignConfig cc;
  cc.horizonSec = 500.0;
  cc.seed = 7;
  cc.nodeFailures = 3;
  cc.candidateNodes = {1, 2, 3};
  cc.linkPartitions = 2;
  cc.linkDegrades = 1;
  cc.candidateLinks = {10, 11};
  cc.nwsOutages = 2;
  cc.depotOutages = 1;
  cc.candidateDepots = {4};
  return cc;
}

TEST(Campaign, DeterministicInSeed) {
  const auto a = makeCampaign(smallCampaign());
  const auto b = makeCampaign(smallCampaign());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_DOUBLE_EQ(a[i].atSec, b[i].atSec);
    EXPECT_EQ(a[i].node, b[i].node);
    EXPECT_EQ(a[i].link, b[i].link);
  }
  auto cc = smallCampaign();
  cc.seed = 8;
  const auto c = makeCampaign(cc);
  bool differs = false;
  for (std::size_t i = 0; i < c.size(); ++i) {
    if (c[i].atSec != a[i].atSec || c[i].kind != a[i].kind) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Campaign, SortedAndDrawnFromCandidatePools) {
  const auto cc = smallCampaign();
  const auto events = makeCampaign(cc);
  ASSERT_EQ(events.size(), 9u);
  ChaosCounters want;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    if (i > 0) {
      EXPECT_GE(e.atSec, events[i - 1].atSec);
    }
    EXPECT_GE(e.atSec, 0.0);
    EXPECT_LT(e.atSec, cc.horizonSec);
    switch (e.kind) {
      case ChaosKind::kNodeFailure:
        ++want.nodeFailures;
        EXPECT_TRUE(e.node >= 1 && e.node <= 3);
        break;
      case ChaosKind::kLinkPartition:
        ++want.linkPartitions;
        EXPECT_TRUE(e.link == 10 || e.link == 11);
        break;
      case ChaosKind::kLinkDegrade:
        ++want.linkDegrades;
        EXPECT_TRUE(e.link == 10 || e.link == 11);
        break;
      case ChaosKind::kNwsOutage:
        ++want.nwsOutages;
        break;
      case ChaosKind::kDepotOutage:
        ++want.depotOutages;
        EXPECT_EQ(e.node, 4u);
        break;
      case ChaosKind::kBitFlip:
        ++want.bitFlips;
        break;
      case ChaosKind::kTornWrite:
        ++want.tornWrites;
        break;
      case ChaosKind::kStaleDelivery:
        ++want.staleDeliveries;
        break;
    }
  }
  EXPECT_EQ(want.nodeFailures, cc.nodeFailures);
  EXPECT_EQ(want.linkPartitions, cc.linkPartitions);
  EXPECT_EQ(want.linkDegrades, cc.linkDegrades);
  EXPECT_EQ(want.nwsOutages, cc.nwsOutages);
  EXPECT_EQ(want.depotOutages, cc.depotOutages);
}

// ---------------------------------------------------------------------------
// ChaosDriver semantics.
// ---------------------------------------------------------------------------

struct ChaosFixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::QrTestbed tb;
  std::unique_ptr<services::Gis> gis;
  std::unique_ptr<services::Nws> nws;
  std::unique_ptr<services::Ibp> ibp;
  std::unique_ptr<FailureInjector> injector;
  std::unique_ptr<ChaosDriver> chaos;

  ChaosFixture() {
    tb = grid::buildQrTestbed(g);
    gis = std::make_unique<services::Gis>(g);
    nws = std::make_unique<services::Nws>(eng, g, 10.0, 0.0, 7);
    nws->start();
    ibp = std::make_unique<services::Ibp>(g);
    injector = std::make_unique<FailureInjector>(eng, *gis);
    chaos = std::make_unique<ChaosDriver>(eng, g, *injector, nws.get(),
                                          ibp.get());
  }

  grid::LinkId wanLink() const {
    return g.route(tb.utkNodes[0], tb.uiucNodes[0]).links.front();
  }

  ChaosEvent event(ChaosKind kind, double at, double dur) const {
    ChaosEvent e;
    e.kind = kind;
    e.atSec = at;
    e.durationSec = dur;
    return e;
  }
};

TEST(ChaosDriver, LinkPartitionFailsFastAndHeals) {
  ChaosFixture f;
  auto e = f.event(ChaosKind::kLinkPartition, 30.0, 60.0);
  e.link = f.wanLink();
  f.chaos->arm(e);

  f.eng.runUntil(50.0);
  EXPECT_FALSE(f.g.link(e.link).isUp());
  EXPECT_FALSE(f.g.routeUp(f.tb.utkNodes[0], f.tb.uiucNodes[0]));

  // A transfer across the partition fails immediately — no bandwidth is
  // consumed, no time passes before the error surfaces.
  bool failedFast = false;
  double failedAt = -1.0;
  f.eng.spawn([](ChaosFixture& f, bool* flag, double* at) -> sim::Task {
    try {
      co_await f.g.transfer(f.tb.utkNodes[0], f.tb.uiucNodes[0], kMB);
    } catch (const grid::LinkDownError&) {
      *flag = true;
      *at = f.eng.now();
    }
  }(f, &failedFast, &failedAt),
              "xfer-down");
  f.eng.runUntil(55.0);
  EXPECT_TRUE(failedFast);
  EXPECT_DOUBLE_EQ(failedAt, 50.0);

  // After the window the partition heals and transfers flow again.
  f.eng.runUntil(100.0);
  EXPECT_TRUE(f.g.link(e.link).isUp());
  EXPECT_TRUE(f.g.routeUp(f.tb.utkNodes[0], f.tb.uiucNodes[0]));
  bool ok = false;
  f.eng.spawn([](ChaosFixture& f, bool* flag) -> sim::Task {
    co_await f.g.transfer(f.tb.utkNodes[0], f.tb.uiucNodes[0], kMB);
    *flag = true;
  }(f, &ok),
              "xfer-up");
  f.eng.run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(f.chaos->counters().linkPartitions, 1);
}

TEST(ChaosDriver, LinkDegradeScalesBandwidthAndRestores) {
  ChaosFixture f;
  auto e = f.event(ChaosKind::kLinkDegrade, 10.0, 100.0);
  e.link = f.wanLink();
  e.bandwidthScale = 0.25;
  f.chaos->arm(e);
  f.eng.runUntil(20.0);
  EXPECT_DOUBLE_EQ(f.g.link(e.link).bandwidthScale(), 0.25);
  f.eng.runUntil(150.0);
  EXPECT_DOUBLE_EQ(f.g.link(e.link).bandwidthScale(), 1.0);
  EXPECT_EQ(f.chaos->counters().linkDegrades, 1);
}

TEST(ChaosDriver, OverlappingDepotOutagesNest) {
  ChaosFixture f;
  const grid::NodeId depot = f.tb.uiucNodes[7];
  auto a = f.event(ChaosKind::kDepotOutage, 10.0, 100.0);  // ends at 110
  a.node = depot;
  auto b = f.event(ChaosKind::kDepotOutage, 50.0, 30.0);  // ends at 80
  b.node = depot;
  f.chaos->armAll({a, b});
  f.eng.runUntil(60.0);
  EXPECT_FALSE(f.ibp->isDepotUp(depot));
  // The inner window ended, but the outer one still holds the depot down.
  f.eng.runUntil(85.0);
  EXPECT_FALSE(f.ibp->isDepotUp(depot));
  f.eng.runUntil(120.0);
  EXPECT_TRUE(f.ibp->isDepotUp(depot));
  EXPECT_EQ(f.chaos->counters().depotOutages, 2);
}

TEST(ChaosDriver, OverlappingNwsOutagesNest) {
  ChaosFixture f;
  f.chaos->armAll({f.event(ChaosKind::kNwsOutage, 10.0, 100.0),
                   f.event(ChaosKind::kNwsOutage, 50.0, 30.0)});
  f.eng.runUntil(60.0);
  EXPECT_TRUE(f.nws->dark());
  f.eng.runUntil(85.0);
  EXPECT_TRUE(f.nws->dark());  // outer window still open
  f.eng.runUntil(120.0);
  EXPECT_FALSE(f.nws->dark());
  EXPECT_EQ(f.chaos->counters().nwsOutages, 2);
}

TEST(ChaosDriver, NodeFailureRoutesThroughInjectorWithStaleGisWindow) {
  ChaosFixture f;
  auto e = f.event(ChaosKind::kNodeFailure, 20.0, 100.0);
  e.node = f.tb.uiucNodes[0];
  e.detectionDelaySec = 5.0;
  e.gisLagSec = 30.0;
  f.chaos->arm(e);
  EXPECT_EQ(f.chaos->armed(), 1u);
  f.eng.runUntil(25.0);
  // Down in truth, still advertised by the stale directory.
  EXPECT_FALSE(f.gis->isNodeReachable(e.node));
  EXPECT_TRUE(f.gis->isNodeUp(e.node));
  f.eng.runUntil(60.0);
  EXPECT_FALSE(f.gis->isNodeUp(e.node));  // registration timed out
  f.eng.runUntil(130.0);
  EXPECT_TRUE(f.gis->isNodeReachable(e.node));
  EXPECT_TRUE(f.gis->isNodeUp(e.node));
  EXPECT_EQ(f.injector->failuresInjected(), 1u);
  EXPECT_EQ(f.chaos->counters().nodeFailures, 1);
  EXPECT_EQ(f.chaos->counters().nodeRecoveries, 1);
}

// ---------------------------------------------------------------------------
// NWS degradation ladder: live -> last-known -> static specs.
// ---------------------------------------------------------------------------

TEST(NwsDegradation, ServesLastKnownValuesWhenDark) {
  ChaosFixture f;
  f.eng.runUntil(100.0);  // plenty of samples
  f.nws->setDark(true);
  f.eng.runUntil(200.0);
  EXPECT_TRUE(f.nws->stale());
  const auto node = f.tb.utkNodes[0];
  // try* accessors keep serving the last-known measurements.
  EXPECT_TRUE(f.nws->tryCpuAvailability(node).has_value());
  EXPECT_TRUE(f.nws->tryEffectiveRate(node).has_value());
  // The workflow estimator stays usable (no throw, finite cost).
  workflow::Component c;
  c.flops = 1e9;
  workflow::GridEstimator est(*f.gis, f.nws.get());
  const double cost = est.ecost(c, node);
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, workflow::kInfeasible);
}

TEST(NwsDegradation, FallsBackToStaticSpecsWhenNeverMeasured) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  services::Gis gis(g);
  services::Nws nws(eng, g, 10.0, 0.0, 4);
  nws.setDark(true);  // dark from birth: no sweep ever lands
  nws.start();
  eng.runUntil(50.0);
  EXPECT_EQ(nws.samplesTaken(), 0u);
  const auto node = tb.utkNodes[0];
  EXPECT_FALSE(nws.tryCpuAvailability(node).has_value());
  workflow::Component c;
  c.flops = 1e9;
  workflow::GridEstimator est(gis, &nws);
  const double cost = est.ecost(c, node);  // static-spec fallback
  EXPECT_GT(cost, 0.0);
  EXPECT_LT(cost, workflow::kInfeasible);
  const double xfer =
      nws.transferTimeDegraded(tb.utkNodes[0], tb.uiucNodes[0], kMB);
  EXPECT_GT(xfer, 0.0);
}

// ---------------------------------------------------------------------------
// SRS degraded restores: replica fallback, bounded retry, generation walk.
// ---------------------------------------------------------------------------

struct SrsFixture : ChaosFixture {
  Rss rss{eng, "app"};

  void writeGeneration(Srs& srs, int ranks) {
    for (int r = 0; r < ranks; ++r) {
      eng.spawn([](Srs& s, int rank) -> sim::Task {
        co_await s.writeCheckpoint(rank);
      }(srs, r));
    }
    eng.run();
    rss.storeIteration(5 * static_cast<std::size_t>(rss.incarnation()));
  }
};

TEST(SrsDegraded, RestoreFallsBackToReplicaWhenPrimaryDark) {
  SrsFixture f;
  const grid::NodeId primary = f.tb.uiucNodes[7];
  const grid::NodeId replica = f.tb.uiucNodes[6];
  vmpi::World w(f.g, {f.tb.uiucNodes[0], f.tb.uiucNodes[1]});
  f.rss.beginIncarnation(2);
  Srs srs(*f.ibp, f.rss, w);
  srs.registerArray("A", 8.0 * kMB);
  srs.setStableDepot(primary);
  srs.setReplicaDepot(replica);
  f.writeGeneration(srs, 2);

  f.ibp->setDepotUp(primary, false);
  EXPECT_FALSE(f.ibp->readable(Srs::objectKey("app", "A", 0, 1)));
  EXPECT_TRUE(f.ibp->readable(Srs::objectKey("app", "A", 0, 1, true)));

  vmpi::World w2(f.g, {f.tb.uiucNodes[2], f.tb.uiucNodes[3]});
  f.rss.beginIncarnation(2);
  Srs srs2(*f.ibp, f.rss, w2);
  srs2.registerArray("A", 8.0 * kMB);
  for (int r = 0; r < 2; ++r) {
    f.eng.spawn([](Srs& s, int rank) -> sim::Task {
      co_await s.restoreCheckpoint(rank);
    }(srs2, r));
  }
  f.eng.run();  // no retry budget needed: the replica is readable right away
  EXPECT_TRUE(srs2.restoredThisIncarnation());
}

TEST(SrsDegraded, RestoreRetriesUntilDepotReturns) {
  SrsFixture f;
  const grid::NodeId depot = f.tb.uiucNodes[7];
  vmpi::World w(f.g, {f.tb.uiucNodes[0], f.tb.uiucNodes[1]});
  f.rss.beginIncarnation(2);
  Srs srs(*f.ibp, f.rss, w);
  srs.registerArray("A", 8.0 * kMB);
  srs.setStableDepot(depot);
  f.writeGeneration(srs, 2);

  f.ibp->setDepotUp(depot, false);
  const double t0 = f.eng.now();
  f.eng.scheduleDaemonAt(t0 + 40.0, [&f, depot] {
    f.ibp->setDepotUp(depot, true);
  });

  vmpi::World w2(f.g, {f.tb.uiucNodes[2], f.tb.uiucNodes[3]});
  f.rss.beginIncarnation(2);
  Srs srs2(*f.ibp, f.rss, w2);
  srs2.registerArray("A", 8.0 * kMB);
  util::RetryPolicy p;
  p.maxAttempts = 5;
  p.baseDelaySec = 30.0;
  srs2.setRetryPolicy(p, 0xfeedULL);
  for (int r = 0; r < 2; ++r) {
    f.eng.spawn([](Srs& s, int rank) -> sim::Task {
      co_await s.restoreCheckpoint(rank);
    }(srs2, r));
  }
  f.eng.run();
  EXPECT_TRUE(srs2.restoredThisIncarnation());
  EXPECT_GE(f.eng.now(), t0 + 40.0);  // the backoff outlasted the outage
}

TEST(SrsDegraded, RestoreThrowsWhenRetryBudgetExhausted) {
  SrsFixture f;
  const grid::NodeId depot = f.tb.uiucNodes[7];
  vmpi::World w(f.g, {f.tb.uiucNodes[0]});
  f.rss.beginIncarnation(1);
  Srs srs(*f.ibp, f.rss, w);
  srs.registerArray("A", kMB);
  srs.setStableDepot(depot);
  f.writeGeneration(srs, 1);

  f.ibp->setDepotUp(depot, false);  // and it never comes back
  vmpi::World w2(f.g, {f.tb.uiucNodes[1]});
  f.rss.beginIncarnation(1);
  Srs srs2(*f.ibp, f.rss, w2);
  srs2.registerArray("A", kMB);  // default policy: no retries
  f.eng.spawn([](Srs& s) -> sim::Task {
    co_await s.restoreCheckpoint(0);
  }(srs2));
  EXPECT_THROW(f.eng.run(), CheckpointUnavailableError);
}

TEST(SrsDegraded, FindRestorableGenerationWalksBackThenGivesUp) {
  SrsFixture f;
  vmpi::World w(f.g, {f.tb.uiucNodes[0], f.tb.uiucNodes[1]});
  f.rss.beginIncarnation(2);
  Srs gen1(*f.ibp, f.rss, w);
  gen1.registerArray("A", 4.0 * kMB);
  f.writeGeneration(gen1, 2);
  f.rss.beginIncarnation(2);
  Srs gen2(*f.ibp, f.rss, w);
  gen2.registerArray("A", 4.0 * kMB);
  f.writeGeneration(gen2, 2);

  const std::vector<std::string> arrays = {"A"};
  // Both generations intact: prefer the newest.
  EXPECT_EQ(findRestorableGeneration(*f.ibp, f.rss, arrays), 2);
  // Losing one object of generation 2 walks the restore back to 1.
  f.ibp->remove(Srs::objectKey("app", "A", 0, 2));
  EXPECT_EQ(findRestorableGeneration(*f.ibp, f.rss, arrays), 1);
  // Losing generation 1 too means scratch restart.
  f.ibp->remove(Srs::objectKey("app", "A", 0, 1));
  EXPECT_EQ(findRestorableGeneration(*f.ibp, f.rss, arrays), std::nullopt);
}

TEST(SrsDegraded, FindRestorableGenerationAcceptsReplicaCopies) {
  SrsFixture f;
  vmpi::World w(f.g, {f.tb.uiucNodes[0], f.tb.uiucNodes[1]});
  f.rss.beginIncarnation(2);
  Srs srs(*f.ibp, f.rss, w);
  srs.registerArray("A", 4.0 * kMB);
  srs.setStableDepot(f.tb.uiucNodes[7]);
  srs.setReplicaDepot(f.tb.uiucNodes[6]);
  f.writeGeneration(srs, 2);
  f.ibp->remove(Srs::objectKey("app", "A", 0, 1));
  f.ibp->remove(Srs::objectKey("app", "A", 1, 1));
  // Primaries gone, replicas intact: the generation still qualifies.
  EXPECT_EQ(findRestorableGeneration(*f.ibp, f.rss, {"A"}), 1);
}

// ---------------------------------------------------------------------------
// Workflow executor degraded mode.
// ---------------------------------------------------------------------------

struct ExecFixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::QrTestbed tb;
  std::unique_ptr<services::Gis> gis;
  std::unique_ptr<services::Nws> nws;

  ExecFixture() {
    tb = grid::buildQrTestbed(g);
    gis = std::make_unique<services::Gis>(g);
    nws = std::make_unique<services::Nws>(eng, g, 10.0, 0.0, 4);
    nws->start();
  }

  workflow::ExecutionResult run(const workflow::Dag& dag,
                                workflow::ExecutionOptions opts = {}) {
    workflow::WorkflowExecutor exec(g, *gis, nws.get());
    workflow::ExecutionResult result;
    eng.spawn(exec.execute(dag, opts, &result), "workflow");
    eng.run();
    eng.rethrowIfFailed();
    return result;
  }
};

workflow::Dag singleComponentDag(const std::string& tag) {
  workflow::Dag dag;
  workflow::Component c;
  c.name = "solo";
  c.flops = 1e9;
  c.requiredSoftware = {tag};
  dag.add(c);
  return dag;
}

TEST(ExecutorDegraded, RemapsStaleGisTargetAtLaunch) {
  // Pin the component to two eligible nodes; find which one the scheduler
  // picks, then kill exactly that one (GIS still advertising it) and demand
  // the fault-tolerant executor land on the other.
  const auto pinned = [](ExecFixture& f) {
    f.gis->installSoftware(f.tb.utkNodes[0], "tag");
    f.gis->installSoftware(f.tb.uiucNodes[0], "tag");
  };
  grid::NodeId chosen;
  {
    ExecFixture probe;
    pinned(probe);
    chosen = probe.run(singleComponentDag("tag")).runs[0].node;
  }
  ExecFixture f;
  pinned(f);
  const grid::NodeId other =
      chosen == f.tb.utkNodes[0] ? f.tb.uiucNodes[0] : f.tb.utkNodes[0];
  f.gis->setNodeReachable(chosen, false);  // dead, but the directory lags
  ASSERT_TRUE(f.gis->isNodeUp(chosen));
  workflow::ExecutionOptions opts;
  opts.faultTolerant = true;
  const auto res = f.run(singleComponentDag("tag"), opts);
  EXPECT_EQ(res.runs[0].node, other);
  EXPECT_TRUE(res.runs[0].remapped);
  EXPECT_GE(res.launchFailures, 1);
  EXPECT_GT(res.makespan, 0.0);
}

TEST(ExecutorDegraded, LaunchBacksOffUntilNodeRecovers) {
  // Only one eligible node and it is dead at launch: with no alternate the
  // executor must back off (bounded) and launch once the node returns.
  ExecFixture f;
  f.gis->installSoftware(f.tb.utkNodes[0], "tag");
  f.gis->setNodeReachable(f.tb.utkNodes[0], false);
  f.eng.scheduleDaemonAt(50.0, [&f] {
    f.gis->setNodeReachable(f.tb.utkNodes[0], true);
  });
  workflow::ExecutionOptions opts;
  opts.faultTolerant = true;
  opts.retry.maxAttempts = 6;
  opts.retry.baseDelaySec = 20.0;
  const auto res = f.run(singleComponentDag("tag"), opts);
  EXPECT_GE(res.launchFailures, 1);
  EXPECT_EQ(res.runs[0].node, f.tb.utkNodes[0]);
  EXPECT_GE(res.makespan, 50.0);
}

workflow::Dag wanCrossingDag() {
  workflow::Dag dag;
  workflow::Component a;
  a.name = "producer";
  a.flops = 1e6;
  a.requiredSoftware = {"src-only"};
  const auto ca = dag.add(a);
  workflow::Component b;
  b.name = "consumer";
  b.flops = 1e6;
  b.requiredSoftware = {"dst-only"};
  const auto cb = dag.add(b);
  dag.addEdge(ca, cb, 60.0 * kMB);
  return dag;
}

TEST(ExecutorDegraded, TransferRetriesOutlastPartition) {
  ExecFixture f;
  f.gis->installSoftware(f.tb.utkNodes[0], "src-only");
  f.gis->installSoftware(f.tb.uiucNodes[0], "dst-only");
  const grid::LinkId wan =
      f.g.route(f.tb.utkNodes[0], f.tb.uiucNodes[0]).links.front();
  f.g.link(wan).setUp(false);  // partitioned from the start...
  f.eng.scheduleDaemonAt(100.0, [&f, wan] { f.g.link(wan).setUp(true); });
  workflow::ExecutionOptions opts;
  opts.faultTolerant = true;
  opts.retry.maxAttempts = 8;
  opts.retry.baseDelaySec = 30.0;
  const auto res = f.run(wanCrossingDag(), opts);
  EXPECT_GE(res.transferRetries, 1);
  EXPECT_GT(res.makespan, 100.0);  // waited out the partition, then moved data
}

TEST(ExecutorDegraded, NoRetryBudgetLosesTheComponent) {
  ExecFixture f;
  f.gis->installSoftware(f.tb.utkNodes[0], "src-only");
  f.gis->installSoftware(f.tb.uiucNodes[0], "dst-only");
  const grid::LinkId wan =
      f.g.route(f.tb.utkNodes[0], f.tb.uiucNodes[0]).links.front();
  f.g.link(wan).setUp(false);  // permanent partition
  workflow::WorkflowExecutor exec(f.g, *f.gis, f.nws.get());
  workflow::ExecutionOptions opts;
  opts.faultTolerant = true;
  opts.retry = util::RetryPolicy::none();
  workflow::ExecutionResult res;
  const workflow::Dag dag = wanCrossingDag();
  f.eng.spawn(exec.execute(dag, opts, &res), "workflow");
  bool threw = false;
  try {
    f.eng.run();
    f.eng.rethrowIfFailed();
  } catch (const std::exception&) {
    threw = true;
  }
  // The consumer died on the partition: either the error surfaced, or the
  // workflow stalled with its makespan never set. It must not "complete".
  EXPECT_TRUE(threw || res.makespan == 0.0);
}

}  // namespace
}  // namespace grads::reschedule

#include <gtest/gtest.h>

#include "grid/testbeds.hpp"
#include "services/gis.hpp"
#include "util/error.hpp"
#include "workflow/annealing.hpp"
#include "workflow/builders.hpp"

namespace grads::workflow {
namespace {

struct Fixture {
  sim::Engine eng;
  grid::Grid g{eng};
  std::unique_ptr<services::Gis> gis;
  std::unique_ptr<GridEstimator> truth;

  Fixture() {
    grid::buildQrTestbed(g);
    gis = std::make_unique<services::Gis>(g);
    truth = std::make_unique<GridEstimator>(*gis, nullptr);
  }
};

TEST(Annealing, NeverWorseThanItsMinMinSeed) {
  Fixture f;
  Rng rng(31);
  for (int trial = 0; trial < 3; ++trial) {
    const auto dag = makeRandomLayered(3, 5, rng);
    WorkflowScheduler greedy(*f.truth, f.g.allNodes());
    const double seedMakespan =
        greedy.schedule(dag, Heuristic::kMinMin).makespan;
    AnnealingOptions opts;
    opts.iterations = 1500;
    opts.seed = static_cast<std::uint64_t>(trial);
    const auto annealed =
        scheduleSimulatedAnnealing(dag, *f.truth, f.g.allNodes(), opts);
    EXPECT_LE(annealed.makespan, seedMakespan + 1e-9) << "trial " << trial;
  }
}

TEST(Annealing, ImprovesOnGreedyForIndependentTaskBags) {
  // Bags of unequal independent tasks are exactly where greedy list
  // scheduling leaves makespan on the table.
  Fixture f;
  Rng rng(7);
  const auto dag = makeParameterSweep(40, rng);
  WorkflowScheduler greedy(*f.truth, f.g.allNodes());
  const double minmin = greedy.schedule(dag, Heuristic::kMinMin).makespan;
  AnnealingStats stats;
  AnnealingOptions opts;
  opts.iterations = 4000;
  const auto annealed =
      scheduleSimulatedAnnealing(dag, *f.truth, f.g.allNodes(), opts, &stats);
  EXPECT_LT(annealed.makespan, minmin);
  EXPECT_GT(stats.accepted, 0);
  EXPECT_DOUBLE_EQ(stats.finalMakespan, annealed.makespan);
  EXPECT_LE(stats.finalMakespan, stats.initialMakespan);
}

TEST(Annealing, ZeroIterationsReturnsSeed) {
  Fixture f;
  Rng rng(3);
  const auto dag = makeFanOutIn(6, 2e10, 1e6);
  WorkflowScheduler greedy(*f.truth, f.g.allNodes());
  const double seedMakespan = greedy.schedule(dag, Heuristic::kMinMin).makespan;
  AnnealingOptions opts;
  opts.iterations = 0;
  const auto s = scheduleSimulatedAnnealing(dag, *f.truth, f.g.allNodes(), opts);
  EXPECT_NEAR(s.makespan, seedMakespan, 1e-6 * seedMakespan);
}

TEST(Annealing, RespectsEligibilityConstraints) {
  Fixture f;
  const auto pin = f.g.allNodes()[3];
  f.gis->installSoftware(pin, "only-here");
  Dag dag;
  Component c;
  c.name = "pinned";
  c.flops = 1e9;
  c.requiredSoftware = {"only-here"};
  const auto pinned = dag.add(c);
  Component free;
  free.name = "free";
  free.flops = 2e10;
  dag.add(free);
  AnnealingOptions opts;
  opts.iterations = 500;
  const auto s = scheduleSimulatedAnnealing(dag, *f.truth, f.g.allNodes(), opts);
  EXPECT_EQ(s.of(pinned).node, pin);
}

TEST(Annealing, DeterministicForFixedSeed) {
  Fixture f;
  Rng rng(11);
  const auto dag = makeParameterSweep(20, rng);
  AnnealingOptions opts;
  opts.iterations = 1000;
  opts.seed = 99;
  const auto a = scheduleSimulatedAnnealing(dag, *f.truth, f.g.allNodes(), opts);
  const auto b = scheduleSimulatedAnnealing(dag, *f.truth, f.g.allNodes(), opts);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(Annealing, RejectsBadOptions) {
  Fixture f;
  Rng rng(1);
  const auto dag = makeParameterSweep(4, rng);
  AnnealingOptions opts;
  opts.coolingRate = 1.5;
  EXPECT_THROW(
      scheduleSimulatedAnnealing(dag, *f.truth, f.g.allNodes(), opts),
      InvalidArgument);
}

}  // namespace
}  // namespace grads::workflow

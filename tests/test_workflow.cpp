#include <gtest/gtest.h>

#include "grid/testbeds.hpp"
#include "services/gis.hpp"
#include "util/error.hpp"
#include "workflow/builders.hpp"
#include "workflow/scheduler.hpp"

namespace grads::workflow {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

struct Fixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::QrTestbed tb;
  std::unique_ptr<services::Gis> gis;
  std::unique_ptr<GridEstimator> truth;

  Fixture() {
    tb = grid::buildQrTestbed(g);
    gis = std::make_unique<services::Gis>(g);
    truth = std::make_unique<GridEstimator>(*gis, nullptr);
  }
  std::vector<grid::NodeId> allNodes() const { return g.allNodes(); }
};

TEST(Dag, TopologicalOrderRespectsEdges) {
  Dag dag = makeChain(5, 1e9, kMB);
  const auto order = dag.topologicalOrder();
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_LT(order[i], order[i + 1]);
  }
}

TEST(Dag, CycleDetected) {
  Dag dag;
  Component c;
  c.name = "a";
  c.flops = 1.0;
  const auto a = dag.add(c);
  c.name = "b";
  const auto b = dag.add(c);
  dag.addEdge(a, b, 0.0);
  dag.addEdge(b, a, 0.0);
  EXPECT_THROW(dag.topologicalOrder(), InvalidArgument);
}

TEST(Dag, SelfEdgeRejected) {
  Dag dag;
  Component c;
  c.name = "a";
  c.flops = 1.0;
  const auto a = dag.add(c);
  EXPECT_THROW(dag.addEdge(a, a, 0.0), InvalidArgument);
}

TEST(Dag, ParallelStageSplitsWorkAndVolume) {
  Dag dag;
  Component head;
  head.name = "head";
  head.flops = 1e9;
  head.outputBytes = 8 * kMB;
  const auto h = dag.add(head);
  Component stage;
  stage.name = "par";
  stage.flops = 4e9;
  stage.outputBytes = 4 * kMB;
  const auto ids = dag.addParallelStage(stage, 4, {h}, 8 * kMB);
  ASSERT_EQ(ids.size(), 4u);
  for (const auto id : ids) {
    EXPECT_DOUBLE_EQ(dag.component(id).flops, 1e9);
    const auto in = dag.inEdges(id);
    ASSERT_EQ(in.size(), 1u);
    EXPECT_DOUBLE_EQ(in[0].bytes, 2 * kMB);
  }
}

TEST(Estimator, InfeasibleWhenRequirementsUnmet) {
  Fixture f;
  Component c;
  c.name = "x";
  c.flops = 1e9;
  c.requiredSoftware = {"special-lib"};
  EXPECT_EQ(f.truth->ecost(c, f.tb.utkNodes[0]), kInfeasible);
  f.gis->installSoftware(f.tb.utkNodes[0], "special-lib");
  EXPECT_NE(f.truth->ecost(c, f.tb.utkNodes[0]), kInfeasible);
}

TEST(Estimator, ArchAndMemoryScreening) {
  Fixture f;
  Component c;
  c.name = "x";
  c.flops = 1e9;
  c.requiredArch = grid::Arch::kIA64;
  EXPECT_EQ(f.truth->ecost(c, f.tb.utkNodes[0]), kInfeasible);
  c.requiredArch.reset();
  c.minMemBytes = 1e15;
  EXPECT_EQ(f.truth->ecost(c, f.tb.utkNodes[0]), kInfeasible);
}

TEST(Estimator, EcostTracksNodeSpeed) {
  Fixture f;
  Component c;
  c.name = "x";
  c.flops = 1e9;
  // UTK 933 MHz vs UIUC 450 MHz.
  EXPECT_LT(f.truth->ecost(c, f.tb.utkNodes[0]),
            f.truth->ecost(c, f.tb.uiucNodes[0]));
}

TEST(Estimator, DownNodeInfeasible) {
  Fixture f;
  Component c;
  c.name = "x";
  c.flops = 1e9;
  f.gis->setNodeUp(f.tb.utkNodes[0], false);
  EXPECT_EQ(f.truth->ecost(c, f.tb.utkNodes[0]), kInfeasible);
}

TEST(Scheduler, SingleComponentGoesToFastestNode) {
  Fixture f;
  Dag dag = makeChain(1, 1e10, 0.0);
  WorkflowScheduler ws(*f.truth, f.allNodes());
  const auto s = ws.schedule(dag, Heuristic::kMinMin);
  ASSERT_EQ(s.assignments.size(), 1u);
  // Fastest single-CPU rate is a UTK node (933 MHz × 0.45).
  EXPECT_EQ(f.g.node(s.assignments[0].node).cluster(), f.tb.utk);
}

TEST(Scheduler, AllComponentsScheduledExactlyOnce) {
  Fixture f;
  Rng rng(7);
  Dag dag = makeRandomLayered(4, 5, rng);
  WorkflowScheduler ws(*f.truth, f.allNodes());
  for (const auto h : {Heuristic::kMinMin, Heuristic::kMaxMin,
                       Heuristic::kSufferage, Heuristic::kBestOfThree}) {
    const auto s = ws.schedule(dag, h);
    EXPECT_EQ(s.assignments.size(), dag.size()) << heuristicName(h);
    std::vector<bool> seen(dag.size(), false);
    for (const auto& a : s.assignments) {
      EXPECT_FALSE(seen[a.component]);
      seen[a.component] = true;
      EXPECT_LE(a.start, a.finish);
    }
    EXPECT_GT(s.makespan, 0.0);
  }
}

TEST(Scheduler, DependencesRespected) {
  Fixture f;
  Dag dag = makeChain(6, 5e9, 2 * kMB);
  WorkflowScheduler ws(*f.truth, f.allNodes());
  const auto s = ws.schedule(dag, Heuristic::kBestOfThree);
  for (const auto& e : dag.edges()) {
    EXPECT_GE(s.of(e.to).start, s.of(e.from).finish - 1e-9);
  }
}

TEST(Scheduler, BestOfThreeNeverWorseThanAnySingleHeuristic) {
  Fixture f;
  Rng rng(99);
  for (int trial = 0; trial < 5; ++trial) {
    Dag dag = makeRandomLayered(3, 4, rng);
    WorkflowScheduler ws(*f.truth, f.allNodes());
    const double best =
        ws.schedule(dag, Heuristic::kBestOfThree).makespan;
    for (const auto h : {Heuristic::kMinMin, Heuristic::kMaxMin,
                         Heuristic::kSufferage}) {
      EXPECT_LE(best, ws.schedule(dag, h).makespan + 1e-9);
    }
  }
}

TEST(Scheduler, ParallelStageUsesMultipleNodes) {
  Fixture f;
  Dag dag = makeFanOutIn(8, 2e10, kMB);
  WorkflowScheduler ws(*f.truth, f.allNodes());
  const auto s = ws.schedule(dag, Heuristic::kMinMin);
  std::set<grid::NodeId> used;
  for (const auto& a : s.assignments) used.insert(a.node);
  EXPECT_GT(used.size(), 3u);
}

TEST(Scheduler, SoftwareConstraintRoutesToInstalledNodes) {
  Fixture f;
  f.gis->installSoftware(f.tb.uiucNodes[2], "eman");
  Dag dag;
  Component c;
  c.name = "needs-eman";
  c.flops = 1e9;
  c.requiredSoftware = {"eman"};
  dag.add(c);
  WorkflowScheduler ws(*f.truth, f.allNodes());
  const auto s = ws.schedule(dag, Heuristic::kBestOfThree);
  EXPECT_EQ(s.assignments[0].node, f.tb.uiucNodes[2]);
}

TEST(Scheduler, NoFeasibleResourceThrows) {
  Fixture f;
  Dag dag;
  Component c;
  c.name = "impossible";
  c.flops = 1e9;
  c.requiredSoftware = {"nowhere"};
  dag.add(c);
  WorkflowScheduler ws(*f.truth, f.allNodes());
  EXPECT_THROW(ws.schedule(dag, Heuristic::kMinMin), InvalidArgument);
}

TEST(Scheduler, WeightsChangeDecisions) {
  Fixture f;
  // A component with heavy input data sitting on UIUC: with data-cost weight
  // high, it should stay near the data even though UTK is faster.
  Dag dag;
  Component src;
  src.name = "src";
  src.flops = 1e6;
  src.requiredSoftware = {"pin-uiuc"};
  const auto s0 = dag.add(src);
  Component heavy;
  heavy.name = "consumer";
  heavy.flops = 5e9;
  const auto s1 = dag.add(heavy);
  dag.addEdge(s0, s1, 400.0 * kMB);
  f.gis->installSoftware(f.tb.uiucNodes[0], "pin-uiuc");

  WorkflowScheduler computeBiased(*f.truth, f.allNodes(), RankWeights{1.0, 0.0});
  WorkflowScheduler dataBiased(*f.truth, f.allNodes(), RankWeights{0.0, 1.0});
  const auto sCompute = computeBiased.schedule(dag, Heuristic::kMinMin);
  const auto sData = dataBiased.schedule(dag, Heuristic::kMinMin);
  EXPECT_EQ(f.g.node(sCompute.of(s1).node).cluster(), f.tb.utk);
  EXPECT_EQ(f.g.node(sData.of(s1).node).cluster(), f.tb.uiuc);
}

TEST(Scheduler, MinMinBeatsBaselinesOnHeterogeneousSweep) {
  Fixture f;
  Rng rng(3);
  Dag dag = makeParameterSweep(24, rng);
  WorkflowScheduler ws(*f.truth, f.allNodes());
  const double grads = ws.schedule(dag, Heuristic::kBestOfThree).makespan;
  Rng rng2(4);
  const double random =
      scheduleRandom(dag, *f.truth, f.allNodes(), rng2).makespan;
  const double rr = scheduleRoundRobin(dag, *f.truth, f.allNodes()).makespan;
  EXPECT_LE(grads, random + 1e-9);
  EXPECT_LE(grads, rr + 1e-9);
}

TEST(Scheduler, DagmanBaselineIgnoresSpeed) {
  Fixture f;
  // One task: DAGMan takes the first idle machine (node order), which is a
  // UTK node only by list position; pin all-idle so it picks resources[0].
  Dag dag = makeChain(1, 1e10, 0.0);
  auto nodes = f.allNodes();
  std::reverse(nodes.begin(), nodes.end());  // put a slow UIUC node first
  const auto s = scheduleDagmanStyle(dag, *f.truth, nodes);
  EXPECT_EQ(s.assignments[0].node, nodes[0]);
}

TEST(Scheduler, EvaluateMappingReproducesScheduleCosts) {
  Fixture f;
  Dag dag = makeFanOutIn(4, 1e10, kMB);
  WorkflowScheduler ws(*f.truth, f.allNodes());
  const auto s = ws.schedule(dag, Heuristic::kMinMin);
  const auto replay = evaluateMapping(dag, *f.truth, s.assignments);
  EXPECT_NEAR(replay.makespan, s.makespan, 1e-6 * s.makespan);
}

TEST(Scheduler, RankMatrixMatchesDefinition) {
  Fixture f;
  Dag dag = makeChain(2, 1e9, 10 * kMB);
  WorkflowScheduler ws(*f.truth, f.allNodes(), RankWeights{2.0, 3.0});
  std::map<ComponentId, grid::NodeId> placed{{0, f.tb.utkNodes[0]}};
  const double r = ws.rank(dag, 1, f.tb.uiucNodes[0], placed);
  const double e = f.truth->ecost(dag.component(1), f.tb.uiucNodes[0]);
  const double d =
      f.truth->transferCost(f.tb.utkNodes[0], f.tb.uiucNodes[0], 10 * kMB);
  EXPECT_NEAR(r, 2.0 * e + 3.0 * d, 1e-9);
}

class HeuristicSweep : public ::testing::TestWithParam<int> {};

TEST_P(HeuristicSweep, SchedulesAreValidAcrossRandomDags) {
  Fixture f;
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Dag dag = makeRandomLayered(2 + GetParam() % 4, 3 + GetParam() % 5, rng);
  WorkflowScheduler ws(*f.truth, f.allNodes());
  for (const auto h :
       {Heuristic::kMinMin, Heuristic::kMaxMin, Heuristic::kSufferage}) {
    const auto s = ws.schedule(dag, h);
    EXPECT_EQ(s.assignments.size(), dag.size());
    for (const auto& e : dag.edges()) {
      EXPECT_GE(s.of(e.to).start, s.of(e.from).finish - 1e-9);
    }
    // No resource runs two components at once.
    std::map<grid::NodeId, std::vector<std::pair<double, double>>> spans;
    for (const auto& a : s.assignments) {
      spans[a.node].push_back({a.start, a.finish});
    }
    for (auto& [node, v] : spans) {
      std::sort(v.begin(), v.end());
      for (std::size_t i = 0; i + 1 < v.size(); ++i) {
        EXPECT_LE(v[i].second, v[i + 1].first + 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HeuristicSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace grads::workflow

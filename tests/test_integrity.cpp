#include <gtest/gtest.h>

#include "grid/testbeds.hpp"
#include "reschedule/chaos.hpp"
#include "services/gis.hpp"
#include "reschedule/scrubber.hpp"
#include "reschedule/srs.hpp"
#include "services/ibp.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"

namespace grads::reschedule {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

struct Fixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::QrTestbed tb;
  std::unique_ptr<services::Ibp> ibp;

  Fixture() {
    tb = grid::buildQrTestbed(g);
    ibp = std::make_unique<services::Ibp>(g);
  }

  void putNow(const std::string& key, double bytes, grid::NodeId node,
              services::PutOptions opts = {}) {
    eng.spawn([](services::Ibp& s, std::string k, double b, grid::NodeId n,
                 services::PutOptions o) -> sim::Task {
      co_await s.put(k, b, n, grid::kNoId, o);
    }(*ibp, key, bytes, node, opts));
    eng.run();
  }
};

// --- Ibp integrity primitives. -------------------------------------------

TEST(IbpIntegrity, DefaultAndExplicitDigests) {
  Fixture f;
  f.putNow("a", 10.0, f.tb.utkNodes[0]);
  // Default digest: deterministic in (key, size), never zero here.
  const auto derived = util::hashCombine(util::fnv1a64("a"), 10.0);
  EXPECT_EQ(f.ibp->observedDigest("a"), derived);
  services::PutOptions opts;
  opts.digest = 0xfeedULL;
  f.putNow("b", 10.0, f.tb.utkNodes[0], opts);
  EXPECT_EQ(f.ibp->observedDigest("b"), 0xfeedULL);
  EXPECT_DOUBLE_EQ(f.ibp->observedBytes("b"), 10.0);
}

TEST(IbpIntegrity, FaultsPerturbObservationDeterministically) {
  Fixture f;
  f.putNow("x", 100.0, f.tb.utkNodes[0]);
  const auto clean = f.ibp->observedDigest("x");

  f.ibp->injectBitFlip("x", 1ULL << 7);
  EXPECT_EQ(f.ibp->observedDigest("x"), clean ^ (1ULL << 7));
  EXPECT_DOUBLE_EQ(f.ibp->observedBytes("x"), 100.0);  // size intact

  f.putNow("y", 100.0, f.tb.utkNodes[0]);
  f.ibp->injectTornWrite("y", 0.25);
  EXPECT_DOUBLE_EQ(f.ibp->observedBytes("y"), 25.0);
  EXPECT_NE(f.ibp->observedDigest("y"), clean);

  f.putNow("z", 100.0, f.tb.utkNodes[0]);
  const auto zClean = f.ibp->observedDigest("z");
  f.ibp->injectStaleDelivery("z");
  EXPECT_NE(f.ibp->observedDigest("z"), zClean);
  EXPECT_DOUBLE_EQ(f.ibp->observedBytes("z"), 100.0);
}

TEST(IbpIntegrity, TornObjectDeliversSilentShortRead) {
  Fixture f;
  f.putNow("t", 100.0, f.tb.utkNodes[0]);
  f.ibp->injectTornWrite("t", 0.5);
  // Reading the original size from a torn object must NOT throw — the depot
  // happily serves what survived; detection is the verifier's job.
  f.eng.spawn([](services::Ibp& s, grid::NodeId n) -> sim::Task {
    co_await s.getSlice("t", 100.0, n);
  }(*f.ibp, f.tb.utkNodes[1]));
  f.eng.run();
  // An intact object still rejects oversized reads as a caller bug.
  EXPECT_EQ(f.ibp->keysOnDepot(f.tb.utkNodes[0]).size(), 1u);
}

TEST(IbpIntegrity, FenceRejectsStaleEpochBeforePayingCost) {
  Fixture f;
  f.ibp->setFence("app", 3);
  f.ibp->setFence("app", 2);  // lowering is a no-op
  EXPECT_EQ(f.ibp->fenceEpoch("app"), 3);

  services::PutOptions stale;
  stale.fenceDomain = "app";
  stale.epoch = 2;
  f.eng.spawn([](services::Ibp& s, grid::NodeId n,
                 services::PutOptions o) -> sim::Task {
    co_await s.put("k", 10.0, n, grid::kNoId, o);
  }(*f.ibp, f.tb.utkNodes[0], stale));
  EXPECT_THROW(f.eng.run(), services::StaleEpochError);
  EXPECT_EQ(f.ibp->staleEpochRejects(), 1u);
  EXPECT_FALSE(f.ibp->exists("k"));

  services::PutOptions live = stale;
  live.epoch = 3;  // at the fence = allowed
  f.putNow("k", 10.0, f.tb.utkNodes[0], live);
  EXPECT_TRUE(f.ibp->exists("k"));
}

// --- Rss manifests and epoch checks. -------------------------------------

TEST(RssManifest, TwoPhaseCompleteness) {
  sim::Engine eng;
  Rss rss(eng, "app");
  rss.beginIncarnation(2);
  Rss::SliceEntry e;
  e.bytes = 5.0;
  e.digest = 0x1;
  EXPECT_TRUE(rss.stageSlice(1, "A", 0, e, 1));
  EXPECT_FALSE(rss.manifestComplete(1));  // rank 1 missing, no publish
  EXPECT_TRUE(rss.stageSlice(1, "A", 1, e, 1));
  EXPECT_FALSE(rss.manifestComplete(1));  // phase 2 still missing
  EXPECT_TRUE(rss.storeIterationFor(1, 42));
  EXPECT_TRUE(rss.manifestComplete(1));
  ASSERT_NE(rss.manifest(1), nullptr);
  EXPECT_EQ(rss.manifest(1)->iteration, 42u);
  ASSERT_NE(rss.sliceEntry(1, "A", 1), nullptr);
  EXPECT_EQ(rss.sliceEntry(1, "A", 1)->digest, 0x1u);

  // The manifest digest covers slice contents: a different digest in any
  // entry yields a different checksum.
  const auto d1 = rss.manifestDigest(1);
  EXPECT_NE(d1, 0u);
  e.digest = 0x2;
  EXPECT_TRUE(rss.stageSlice(1, "A", 1, e, 1));
  EXPECT_NE(rss.manifestDigest(1), d1);
}

TEST(RssManifest, ZombieStageAndPublishDropped) {
  sim::Engine eng;
  Rss rss(eng, "app");
  rss.beginIncarnation(2);
  rss.storeIterationFor(1, 10);
  rss.beginIncarnation(2);  // live epoch is now 2
  Rss::SliceEntry e;
  e.bytes = 1.0;
  e.digest = 0x9;
  EXPECT_FALSE(rss.stageSlice(1, "A", 0, e, 1));  // zombie stage
  EXPECT_FALSE(rss.storeIterationFor(1, 99));     // zombie publish
  EXPECT_EQ(rss.staleEpochRejects(), 2u);
  EXPECT_EQ(rss.storedIteration(), 10u);          // untouched
  EXPECT_EQ(rss.manifest(1)->slices.size(), 0u);
}

TEST(Rss, FailureSignalForUnoccupiedNodeIgnored) {
  sim::Engine eng;
  Rss rss(eng, "app");
  rss.beginIncarnation(2);
  rss.setOccupiedNodes({4, 5});
  rss.markFailure(7);  // late detection for a node this app moved off
  EXPECT_FALSE(rss.failureSignaled());
  EXPECT_EQ(rss.ignoredFailureSignals(), 1u);
  rss.markFailure(5);
  EXPECT_TRUE(rss.failureSignaled());
  EXPECT_EQ(rss.failedNode(), 5u);
  // An empty occupancy set keeps the pre-occupancy accept-all behavior.
  rss.beginIncarnation(2);
  rss.markFailure(7);
  EXPECT_TRUE(rss.failureSignaled());
}

// --- Verified restores. ---------------------------------------------------

struct CkptFixture : Fixture {
  Rss rss{eng, "qr"};
  static constexpr double kTotal = 8.0 * kMB;

  /// Writes generation 1 from 2 UTK ranks to a stable depot + replica and
  /// publishes the manifest.
  void writeGeneration() {
    vmpi::World w(g, {tb.utkNodes[0], tb.utkNodes[1]});
    rss.beginIncarnation(2);
    Srs srs(*ibp, rss, w);
    srs.setStableDepot(tb.uiucNodes[7]);
    srs.setReplicaDepot(tb.uiucNodes[6]);
    srs.registerArray("A", kTotal);
    for (int r = 0; r < 2; ++r) {
      eng.spawn([](Srs& s, int rank) -> sim::Task {
        co_await s.writeCheckpoint(rank);
      }(srs, r));
    }
    eng.run();
    rss.storeIteration(7);
    ASSERT_TRUE(rss.manifestComplete(1));
  }

  /// Restores into 2 UIUC ranks; returns the restoring Srs's counters via
  /// the out-params. Throws what the restore throws.
  void restore(bool verify, int* corrupt, int* rejects) {
    vmpi::World w(g, {tb.uiucNodes[0], tb.uiucNodes[1]});
    rss.beginIncarnation(2);
    Srs srs(*ibp, rss, w);
    srs.setVerifyOnRestore(verify);
    srs.registerArray("A", kTotal);
    for (int r = 0; r < 2; ++r) {
      eng.spawn([](Srs& s, int rank) -> sim::Task {
        co_await s.restoreCheckpoint(rank);
      }(srs, r));
    }
    eng.run();
    if (corrupt != nullptr) *corrupt = srs.corruptSliceReads();
    if (rejects != nullptr) *rejects = srs.integrityRejects();
  }
};

TEST(SrsIntegrity, VerifiedRestoreFallsBackToReplicaOnCorruptPrimary) {
  CkptFixture f;
  f.writeGeneration();
  f.ibp->injectBitFlip("qr.ckpt.A.r0.i1", 1ULL << 3);
  int corrupt = -1;
  int rejects = -1;
  f.restore(/*verify=*/true, &corrupt, &rejects);
  EXPECT_EQ(corrupt, 0);   // the app never saw bad data
  EXPECT_GT(rejects, 0);   // the primary copy was rejected, replica used
}

TEST(SrsIntegrity, RawRestoreSilentlyDeliversCorruptData) {
  CkptFixture f;
  f.writeGeneration();
  f.ibp->injectBitFlip("qr.ckpt.A.r0.i1", 1ULL << 3);
  int corrupt = -1;
  int rejects = -1;
  f.restore(/*verify=*/false, &corrupt, &rejects);
  EXPECT_GT(corrupt, 0);   // ground truth: wrong bytes reached the app
  EXPECT_EQ(rejects, 0);   // nothing was rejected — that is the point
}

TEST(SrsIntegrity, BothCopiesCorruptThrowsUnavailable) {
  CkptFixture f;
  f.writeGeneration();
  f.ibp->injectBitFlip("qr.ckpt.A.r0.i1", 1ULL << 3);
  f.ibp->injectTornWrite("qr.ckpt.A.r0.i1.rep", 0.5);
  EXPECT_THROW(f.restore(/*verify=*/true, nullptr, nullptr),
               CheckpointUnavailableError);
}

TEST(SrsIntegrity, FindRestorableGenerationSkipsCorruptWithVerify) {
  CkptFixture f;
  f.writeGeneration();
  // Without corruption both modes agree.
  EXPECT_EQ(findRestorableGeneration(*f.ibp, f.rss, {"A"}, true),
            std::optional<int>(1));
  // Corrupt both copies of one slice: the unverified walk still nominates
  // generation 1 (objects are readable), the verified walk refuses it.
  f.ibp->injectBitFlip("qr.ckpt.A.r1.i1", 1ULL << 9);
  f.ibp->injectStaleDelivery("qr.ckpt.A.r1.i1.rep");
  EXPECT_EQ(findRestorableGeneration(*f.ibp, f.rss, {"A"}, false),
            std::optional<int>(1));
  EXPECT_EQ(findRestorableGeneration(*f.ibp, f.rss, {"A"}, true),
            std::nullopt);
}

// --- Zombie end-to-end (acceptance). --------------------------------------

TEST(SrsIntegrity, ZombieIncarnationCannotOverwriteOrPublish) {
  CkptFixture f;
  f.writeGeneration();  // generation 1, live epoch 1

  // The zombie: an Srs instance created during incarnation 1 that keeps
  // running after the manager declared it dead and started incarnation 2.
  vmpi::World wZombie(f.g, {f.tb.utkNodes[0], f.tb.utkNodes[1]});
  Srs zombie(*f.ibp, f.rss, wZombie);
  zombie.setStableDepot(f.tb.uiucNodes[7]);
  zombie.setReplicaDepot(f.tb.uiucNodes[6]);
  zombie.registerArray("A", CkptFixture::kTotal);
  ASSERT_EQ(zombie.epoch(), 1);

  // Incarnation 2 starts: fence raised, new generation written + published.
  f.rss.beginIncarnation(2);
  f.ibp->setFence("qr", f.rss.incarnation());
  vmpi::World w2(f.g, {f.tb.uiucNodes[0], f.tb.uiucNodes[1]});
  Srs live(*f.ibp, f.rss, w2);
  live.setStableDepot(f.tb.uiucNodes[7]);
  live.setReplicaDepot(f.tb.uiucNodes[6]);
  live.registerArray("A", CkptFixture::kTotal);
  for (int r = 0; r < 2; ++r) {
    f.eng.spawn([](Srs& s, int rank) -> sim::Task {
      co_await s.writeCheckpoint(rank);
    }(live, r));
  }
  f.eng.run();
  f.rss.storeIteration(20);
  ASSERT_TRUE(f.rss.manifestComplete(2));
  const auto gen2Digest = f.rss.manifestDigest(2);
  const auto gen1Digest = f.rss.manifestDigest(1);
  const auto objects = f.ibp->objectCount();
  const auto obj1Digest = f.ibp->observedDigest("qr.ckpt.A.r0.i1");

  // The zombie now tries to checkpoint and publish a stale iteration.
  for (int r = 0; r < 2; ++r) {
    f.eng.spawn([](Srs& s, int rank) -> sim::Task {
      co_await s.writeCheckpoint(rank);
    }(zombie, r));
  }
  f.eng.run();
  zombie.storeIteration(5);

  // Nothing the live incarnation owns moved: no object count change, no
  // overwrite of either generation's objects, no ledger/manifest change.
  EXPECT_GT(zombie.staleWriteRejects(), 0);
  EXPECT_GT(f.ibp->staleEpochRejects(), 0u);
  EXPECT_EQ(f.ibp->objectCount(), objects);
  EXPECT_EQ(f.ibp->observedDigest("qr.ckpt.A.r0.i1"), obj1Digest);
  EXPECT_EQ(f.rss.storedIteration(), 20u);
  EXPECT_EQ(f.rss.manifestDigest(2), gen2Digest);
  EXPECT_EQ(f.rss.manifestDigest(1), gen1Digest);
  EXPECT_GT(f.rss.staleEpochRejects(), 0u);
}

TEST(SrsIntegrity, ZombieEpochFencedAcrossCrashRestart) {
  // The fence must survive a control-plane crash-restart: a zombie writer
  // carrying a pre-crash incarnation epoch, staging or publishing *after*
  // the restore, is dropped by the restored ledger and depot exactly as it
  // would have been by the originals.
  CkptFixture f;
  f.writeGeneration();  // generation 1, live epoch 1
  f.rss.beginIncarnation(2);  // incarnation 2 takes over pre-crash
  f.ibp->setFence("qr", f.rss.incarnation());
  vmpi::World w2(f.g, {f.tb.uiucNodes[0], f.tb.uiucNodes[1]});
  Srs live(*f.ibp, f.rss, w2);
  live.setStableDepot(f.tb.uiucNodes[7]);
  live.setReplicaDepot(f.tb.uiucNodes[6]);
  live.registerArray("A", CkptFixture::kTotal);
  for (int r = 0; r < 2; ++r) {
    f.eng.spawn([](Srs& s, int rank) -> sim::Task {
      co_await s.writeCheckpoint(rank);
    }(live, r));
  }
  f.eng.run();
  f.rss.storeIteration(20);
  ASSERT_TRUE(f.rss.manifestComplete(2));

  // Snapshot the depot and ledger at a quiescent boundary, then "crash":
  // everything below runs against a freshly built control plane.
  core::SnapshotRegistry reg;
  reg.add(*f.ibp);
  const core::SnapshotImage img = reg.capture(f.eng.now());
  core::SnapshotWriter rssWords;
  f.rss.encodeState(rssWords);

  CkptFixture fresh;
  core::SnapshotRegistry reg2;
  reg2.add(*fresh.ibp);
  reg2.restore(img);
  core::SnapshotReader rd(rssWords.words());
  fresh.rss.decodeState(rd);
  ASSERT_TRUE(rd.done());
  ASSERT_EQ(fresh.ibp->fenceEpoch("qr"), 2);  // the fence round-tripped
  ASSERT_EQ(fresh.rss.incarnation(), 2);
  ASSERT_EQ(fresh.rss.storedIteration(), 20u);
  const auto gen2Digest = fresh.rss.manifestDigest(2);
  const auto objects = fresh.ibp->objectCount();

  // The zombie: a writer of the pre-crash incarnation (epoch 2), surviving
  // into the restored world where the relaunch starts incarnation 3.
  vmpi::World wZombie(fresh.g, {fresh.tb.uiucNodes[0], fresh.tb.uiucNodes[1]});
  Srs zombie(*fresh.ibp, fresh.rss, wZombie);
  zombie.setStableDepot(fresh.tb.uiucNodes[7]);
  zombie.setReplicaDepot(fresh.tb.uiucNodes[6]);
  zombie.registerArray("A", CkptFixture::kTotal);
  ASSERT_EQ(zombie.epoch(), 2);

  fresh.rss.beginIncarnation(2);  // incarnation 3: the post-restore relaunch
  fresh.ibp->setFence("qr", fresh.rss.incarnation());
  ASSERT_EQ(fresh.rss.incarnation(), 3);

  // Pre-crash zombie stage + publish after restore: all dropped.
  for (int r = 0; r < 2; ++r) {
    fresh.eng.spawn([](Srs& s, int rank) -> sim::Task {
      co_await s.writeCheckpoint(rank);
    }(zombie, r));
  }
  fresh.eng.run();
  zombie.storeIteration(5);
  EXPECT_GT(zombie.staleWriteRejects(), 0);
  EXPECT_GT(fresh.ibp->staleEpochRejects(), 0u);
  EXPECT_GT(fresh.rss.staleEpochRejects(), 0u);
  EXPECT_EQ(fresh.ibp->objectCount(), objects);
  EXPECT_EQ(fresh.rss.storedIteration(), 20u);
  EXPECT_EQ(fresh.rss.manifestDigest(2), gen2Digest);
}

// --- Depot scrubber. ------------------------------------------------------

TEST(Scrubber, RepairsCorruptCopyFromSurvivor) {
  CkptFixture f;
  f.writeGeneration();
  const auto want = f.rss.sliceEntry(1, "A", 0);
  ASSERT_NE(want, nullptr);
  f.ibp->injectBitFlip("qr.ckpt.A.r0.i1", 1ULL << 11);
  ASSERT_NE(f.ibp->observedDigest("qr.ckpt.A.r0.i1"), want->digest);

  DepotScrubber scrub(f.eng, *f.ibp, f.rss);
  f.eng.spawn(scrub.scanOnce());
  f.eng.run();
  EXPECT_EQ(scrub.stats().corruptFound, 1);
  EXPECT_EQ(scrub.stats().repaired, 1);
  EXPECT_EQ(scrub.stats().unrepairable, 0);
  EXPECT_EQ(f.ibp->observedDigest("qr.ckpt.A.r0.i1"), want->digest);

  // A second pass finds nothing left to do.
  f.eng.spawn(scrub.scanOnce());
  f.eng.run();
  EXPECT_EQ(scrub.stats().repaired, 1);
  EXPECT_EQ(scrub.stats().scans, 2);
}

TEST(Scrubber, ReportsUnrepairableWhenBothCopiesBad) {
  CkptFixture f;
  f.writeGeneration();
  f.ibp->injectBitFlip("qr.ckpt.A.r1.i1", 1ULL << 2);
  f.ibp->injectTornWrite("qr.ckpt.A.r1.i1.rep", 0.5);
  DepotScrubber scrub(f.eng, *f.ibp, f.rss);
  f.eng.spawn(scrub.scanOnce());
  f.eng.run();
  EXPECT_EQ(scrub.stats().repaired, 0);
  EXPECT_EQ(scrub.stats().unrepairable, 1);
}

TEST(Scrubber, PeriodicDaemonRepairsWhileAppRuns) {
  CkptFixture f;
  f.writeGeneration();
  const auto want = f.rss.sliceEntry(1, "A", 1);
  ASSERT_NE(want, nullptr);
  f.ibp->injectStaleDelivery("qr.ckpt.A.r1.i1");
  DepotScrubber scrub(f.eng, *f.ibp, f.rss);
  scrub.start(30.0);
  // Scrub ticks are daemons; some foreground work must keep time flowing.
  f.eng.spawn([](sim::Engine& e) -> sim::Task {
    co_await sim::sleepFor(e, 120.0);
  }(f.eng));
  f.eng.run();
  scrub.stop();
  EXPECT_GE(scrub.stats().scans, 2);
  EXPECT_EQ(scrub.stats().repaired, 1);
  EXPECT_EQ(f.ibp->observedDigest("qr.ckpt.A.r1.i1"), want->digest);
}

// --- Chaos integration. ---------------------------------------------------

TEST(ChaosIntegrity, CampaignGeneratesSeededIntegrityEvents) {
  CampaignConfig cc;
  cc.horizonSec = 100.0;
  cc.seed = 7;
  cc.bitFlips = 2;
  cc.tornWrites = 1;
  cc.staleDeliveries = 1;
  cc.tornKeepFrac = 0.3;
  cc.candidateDepots = {4, 5};
  const auto a = makeCampaign(cc);
  const auto b = makeCampaign(cc);
  ASSERT_EQ(a.size(), 4u);
  int flips = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].victimSeed, b[i].victimSeed);
    EXPECT_NE(a[i].victimSeed, 0u);
    EXPECT_DOUBLE_EQ(a[i].tornKeepFrac, 0.3);
    EXPECT_LE(a[i].durationSec, 0.0);  // corruption has no recovery event
    EXPECT_TRUE(a[i].node == 4 || a[i].node == 5);
    if (a[i].kind == ChaosKind::kBitFlip) ++flips;
  }
  EXPECT_EQ(flips, 2);
}

TEST(ChaosIntegrity, DriverCorruptsVictimOrCountsMiss) {
  Fixture f;
  services::Gis gis(f.g);
  FailureInjector fi(f.eng, gis);
  ChaosDriver driver(f.eng, f.g, fi, nullptr, f.ibp.get());

  ChaosEvent miss;
  miss.kind = ChaosKind::kBitFlip;
  miss.atSec = 1.0;
  miss.node = f.tb.utkNodes[0];  // depot still empty at t=1
  miss.victimSeed = 99;
  driver.arm(miss);

  ChaosEvent hit = miss;
  hit.atSec = 10.0;  // after the object exists
  driver.arm(hit);

  f.eng.spawn([](sim::Engine& e, services::Ibp& s,
                 grid::NodeId n) -> sim::Task {
    co_await sim::sleepFor(e, 5.0);
    co_await s.put("obj", 10.0, n);
    co_await sim::sleepFor(e, 20.0);
  }(f.eng, *f.ibp, f.tb.utkNodes[0]));
  const auto clean = util::hashCombine(util::fnv1a64("obj"), 10.0);
  f.eng.run();
  EXPECT_EQ(driver.counters().integrityMisses, 1);
  EXPECT_EQ(driver.counters().bitFlips, 1);
  EXPECT_NE(f.ibp->observedDigest("obj"), clean);
}

}  // namespace
}  // namespace grads::reschedule

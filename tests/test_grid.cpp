#include <gtest/gtest.h>

#include "grid/grid.hpp"
#include "grid/load.hpp"
#include "grid/testbeds.hpp"
#include "sim/sync.hpp"
#include "util/error.hpp"

namespace grads::grid {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

TEST(Node, SpecDerivedRates) {
  NodeSpec s = utkQrNodeSpec(0);
  EXPECT_DOUBLE_EQ(s.peakFlopsPerCpu(), 933e6);
  EXPECT_DOUBLE_EQ(s.peakFlops(), 2 * 933e6);
  EXPECT_DOUBLE_EQ(s.effectiveFlops(), 2 * 933e6 * 0.12);
}

TEST(Node, RejectsBadSpecs) {
  sim::Engine eng;
  NodeSpec bad = uiucQrNodeSpec(0);
  bad.cpus = 0;
  EXPECT_THROW(Node(eng, 0, bad), InvalidArgument);
  bad = uiucQrNodeSpec(0);
  bad.efficiency = 0.0;
  EXPECT_THROW(Node(eng, 0, bad), InvalidArgument);
}

TEST(Node, ComputeTakesExpectedTime) {
  sim::Engine eng;
  NodeSpec s = uiucQrNodeSpec(0);  // 450 MHz, eff 0.22 → 99 Mflop/s
  Node n(eng, 0, s);
  double doneAt = -1.0;
  eng.spawn([](Node& node, double* t) -> sim::Task {
    co_await node.compute(450e6 * 0.22);  // one effective second of work
    *t = node.cpu().engine().now();
  }(n, &doneAt));
  eng.run();
  EXPECT_NEAR(doneAt, 1.0, 1e-9);
}

TEST(Node, InjectedLoadHalvesRate) {
  sim::Engine eng;
  Node n(eng, 0, uiucQrNodeSpec(0));
  EXPECT_DOUBLE_EQ(n.cpuAvailability(), 1.0);
  n.injectLoad(1.0);
  EXPECT_DOUBLE_EQ(n.cpuAvailability(), 0.5);
}

TEST(Node, DualCpuAvailabilityStaysFullForOneLoad) {
  sim::Engine eng;
  Node n(eng, 0, utkQrNodeSpec(0));  // 2 CPUs
  n.injectLoad(1.0);
  // Second process still gets a whole CPU on a dual-processor node.
  EXPECT_DOUBLE_EQ(n.cpuAvailability(), 1.0);
}

TEST(Grid, TopologyBookkeeping) {
  sim::Engine eng;
  Grid g(eng);
  const auto tb = buildQrTestbed(g);
  EXPECT_EQ(g.nodeCount(), 12u);
  EXPECT_EQ(g.clusterCount(), 2u);
  EXPECT_EQ(g.clusterNodes(tb.utk).size(), 4u);
  EXPECT_EQ(g.clusterNodes(tb.uiuc).size(), 8u);
  EXPECT_EQ(g.findCluster("utk"), std::optional<ClusterId>(tb.utk));
  EXPECT_EQ(g.findCluster("nope"), std::nullopt);
  EXPECT_EQ(g.findNode("uiuc3"), std::optional<NodeId>(tb.uiucNodes[3]));
}

TEST(Grid, IntraClusterRouteUsesLanOnly) {
  sim::Engine eng;
  Grid g(eng);
  const auto tb = buildQrTestbed(g);
  const Route r = g.route(tb.utkNodes[0], tb.utkNodes[1]);
  ASSERT_EQ(r.links.size(), 1u);
  EXPECT_LT(r.latencySec, 1e-3);
}

TEST(Grid, InterClusterRouteCrossesWan) {
  sim::Engine eng;
  Grid g(eng);
  const auto tb = buildQrTestbed(g);
  const Route r = g.route(tb.utkNodes[0], tb.uiucNodes[0]);
  EXPECT_EQ(r.links.size(), 3u);  // lan, wan, lan
  EXPECT_GT(r.latencySec, 0.011);
}

TEST(Grid, SameNodeTransferIsFree) {
  sim::Engine eng;
  Grid g(eng);
  const auto tb = buildQrTestbed(g);
  EXPECT_DOUBLE_EQ(g.transferEstimate(tb.utkNodes[0], tb.utkNodes[0], 1e9),
                   0.0);
}

TEST(Grid, RouteNeverListsALinkTwice) {
  sim::Engine eng;
  Grid g(eng);
  const auto tb = buildQrTestbed(g);
  // The same-cluster route must collapse to one LAN hop (the double-LAN
  // bug paid the switch twice and let a flow contend with itself); every
  // other route must be duplicate-free too.
  for (NodeId a = 0; a < g.nodeCount(); ++a) {
    for (NodeId b = 0; b < g.nodeCount(); ++b) {
      const Route r = g.route(a, b);
      for (std::size_t i = 0; i < r.links.size(); ++i) {
        for (std::size_t j = i + 1; j < r.links.size(); ++j) {
          EXPECT_NE(r.links[i], r.links[j])
              << "route " << a << "->" << b << " repeats a link";
        }
      }
    }
  }
  (void)tb;
}

TEST(Grid, IntraClusterTransferPinnedToLatencyPlusBytesOverBw) {
  sim::Engine eng;
  Grid g(eng);
  const auto tb = buildQrTestbed(g);
  double doneAt = -1.0;
  eng.spawn([](Grid& grid, NodeId a, NodeId b, double* t) -> sim::Task {
    co_await grid.transfer(a, b, kMB);
    *t = grid.engine().now();
  }(g, tb.utkNodes[0], tb.utkNodes[1], &doneAt));
  eng.run();
  // Exactly one LAN hop at the per-flow wire speed: latency + bytes/bw,
  // bit-for-bit (the single-flow backward-compatibility guarantee).
  const LinkSpec& lan = g.link(g.cluster(tb.utk).lan).spec();
  EXPECT_DOUBLE_EQ(doneAt,
                   lan.latencySec + kMB / lan.perFlowCapBytesPerSec);
}

TEST(Grid, TransferEstimateNowClampsToPerFlowCap) {
  sim::Engine eng;
  Grid g(eng);
  const auto tb = buildQrTestbed(g);
  // The switched LAN backplane is 25 MB/s but any single flow is capped at
  // wire speed (12.5 MB/s); the estimate must quote the capped rate.
  const LinkSpec& lan = g.link(g.cluster(tb.utk).lan).spec();
  ASSERT_GT(lan.bandwidthBytesPerSec, lan.perFlowCapBytesPerSec);
  EXPECT_DOUBLE_EQ(g.transferEstimateNow(tb.utkNodes[0], tb.utkNodes[1], kMB),
                   lan.latencySec + kMB / lan.perFlowCapBytesPerSec);
  // On an idle route the live estimate agrees exactly with the static one.
  EXPECT_DOUBLE_EQ(
      g.transferEstimateNow(tb.utkNodes[0], tb.uiucNodes[0], kMB),
      g.transferEstimate(tb.utkNodes[0], tb.uiucNodes[0], kMB));
}

TEST(Grid, TransferEstimateUsesBottleneck) {
  sim::Engine eng;
  Grid g(eng);
  const auto tb = buildQrTestbed(g);
  const double est =
      g.transferEstimate(tb.utkNodes[0], tb.uiucNodes[0], 1.2 * kMB);
  // 1.2 MB over a 1.2 MB/s WAN ≈ 1 s (+ small latency).
  EXPECT_NEAR(est, 1.0, 0.05);
}

TEST(Grid, TransferTakesSimulatedTime) {
  sim::Engine eng;
  Grid g(eng);
  const auto tb = buildQrTestbed(g);
  double doneAt = -1.0;
  eng.spawn([](Grid& grid, NodeId a, NodeId b, double* t) -> sim::Task {
    co_await grid.transfer(a, b, 2.4 * kMB);
    *t = grid.engine().now();
  }(g, tb.utkNodes[0], tb.uiucNodes[0], &doneAt));
  eng.run();
  EXPECT_NEAR(doneAt, 2.0, 0.1);  // 2.4 MB at 1.2 MB/s
}

TEST(Grid, ConcurrentWanTransfersShareBandwidth) {
  sim::Engine eng;
  Grid g(eng);
  const auto tb = buildQrTestbed(g);
  double d1 = -1.0;
  double d2 = -1.0;
  auto xfer = [](Grid& grid, NodeId a, NodeId b, double* t) -> sim::Task {
    co_await grid.transfer(a, b, 1.2 * kMB);
    *t = grid.engine().now();
  };
  eng.spawn(xfer(g, tb.utkNodes[0], tb.uiucNodes[0], &d1));
  eng.spawn(xfer(g, tb.utkNodes[1], tb.uiucNodes[1], &d2));
  eng.run();
  // Two flows share the 1.2 MB/s pipe → each takes ~2 s instead of ~1 s.
  EXPECT_NEAR(d1, 2.0, 0.1);
  EXPECT_NEAR(d2, 2.0, 0.1);
}

TEST(Grid, RouteBetweenUnconnectedClustersThrows) {
  sim::Engine eng;
  Grid g(eng);
  const auto a = g.addCluster(ClusterSpec{"a", "A", gigabitLan("a.lan", 2)});
  const auto b = g.addCluster(ClusterSpec{"b", "B", gigabitLan("b.lan", 2)});
  const auto na = g.addNode(a, uiucQrNodeSpec(0));
  const auto nb = g.addNode(b, uiucQrNodeSpec(1));
  EXPECT_THROW(g.route(na, nb), InvalidArgument);
}

TEST(Grid, MultiHopRouting) {
  sim::Engine eng;
  Grid g(eng);
  const auto a = g.addCluster(ClusterSpec{"a", "A", gigabitLan("a.lan", 2)});
  const auto b = g.addCluster(ClusterSpec{"b", "B", gigabitLan("b.lan", 2)});
  const auto c = g.addCluster(ClusterSpec{"c", "C", gigabitLan("c.lan", 2)});
  const auto na = g.addNode(a, uiucQrNodeSpec(0));
  const auto nc = g.addNode(c, uiucQrNodeSpec(1));
  g.connectClusters(a, b, internetWan("ab", 0.010, kMB));
  g.connectClusters(b, c, internetWan("bc", 0.020, kMB));
  const Route r = g.route(na, nc);
  EXPECT_EQ(r.links.size(), 4u);  // lanA, ab, bc, lanC
  EXPECT_GT(r.latencySec, 0.030);
}

TEST(LoadTrace, WeightAtFollowsPhases) {
  const auto t = LoadTrace::pulse(10.0, 20.0, 2.0);
  EXPECT_DOUBLE_EQ(t.weightAt(5.0), 0.0);
  EXPECT_DOUBLE_EQ(t.weightAt(10.0), 2.0);
  EXPECT_DOUBLE_EQ(t.weightAt(19.9), 2.0);
  EXPECT_DOUBLE_EQ(t.weightAt(20.0), 0.0);
}

TEST(LoadTrace, RejectsNonMonotonicPhases) {
  EXPECT_THROW(LoadTrace({LoadPhase{5.0, 1.0}, LoadPhase{5.0, 0.0}}),
               InvalidArgument);
}

TEST(LoadTrace, StepAtMatchesPaperScenario) {
  const auto t = LoadTrace::stepAt(300.0, 2.0);
  EXPECT_DOUBLE_EQ(t.weightAt(299.0), 0.0);
  EXPECT_DOUBLE_EQ(t.weightAt(300.0), 2.0);
  EXPECT_DOUBLE_EQ(t.weightAt(1e9), 2.0);
}

TEST(LoadTrace, ApplyDrivesNodeAvailability) {
  sim::Engine eng;
  Node n(eng, 0, uiucQrNodeSpec(0));
  applyLoadTrace(eng, n, LoadTrace::pulse(10.0, 20.0, 1.0));
  eng.runUntil(5.0);
  EXPECT_DOUBLE_EQ(n.cpuAvailability(), 1.0);
  eng.runUntil(15.0);
  EXPECT_DOUBLE_EQ(n.cpuAvailability(), 0.5);
  eng.runUntil(25.0);
  EXPECT_DOUBLE_EQ(n.cpuAvailability(), 1.0);
}

TEST(LoadTrace, RandomOnOffAlternates) {
  Rng rng(17);
  const auto t = LoadTrace::randomOnOff(rng, 30.0, 10.0, 1.5, 1000.0);
  ASSERT_FALSE(t.empty());
  double prev = -1.0;
  bool on = true;
  for (const auto& p : t.phases()) {
    EXPECT_GT(p.start, prev);
    prev = p.start;
    EXPECT_DOUBLE_EQ(p.weight, on ? 1.5 : 0.0);
    on = !on;
  }
}

TEST(Testbeds, SwapTestbedMatchesPaperTopology) {
  sim::Engine eng;
  Grid g(eng);
  const auto tb = buildSwapTestbed(g);
  EXPECT_EQ(g.nodeCount(), 7u);
  // Latencies from §4.2.2: 30 ms UCSD↔UTK, 11 ms UTK↔UIUC.
  EXPECT_NEAR(g.route(tb.ucsdNode, tb.utkNodes[0]).latencySec, 0.030, 0.001);
  EXPECT_NEAR(g.route(tb.utkNodes[0], tb.uiucNodes[0]).latencySec, 0.011,
              0.001);
  // 550 MHz UTK vs 450 MHz UIUC: UTK nodes are faster.
  EXPECT_GT(g.node(tb.utkNodes[0]).spec().effectiveFlops(),
            g.node(tb.uiucNodes[0]).spec().effectiveFlops());
}

TEST(Testbeds, MacroGridHasPaperScale) {
  sim::Engine eng;
  Grid g(eng);
  const auto mg = buildMacroGrid(g);
  EXPECT_EQ(mg.clusters.size(), 6u);
  EXPECT_EQ(g.nodeCount(), 10u + 24u + 24u + 24u);
  // Every pair of clusters must be routable.
  for (ClusterId a : mg.clusters) {
    for (ClusterId b : mg.clusters) {
      if (a == b || g.clusterNodes(a).empty() || g.clusterNodes(b).empty())
        continue;
      EXPECT_NO_THROW(g.route(g.clusterNodes(a)[0], g.clusterNodes(b)[0]));
    }
  }
}

TEST(Testbeds, EmanTestbedIsHeterogeneous) {
  sim::Engine eng;
  Grid g(eng);
  const auto tb = buildEmanTestbed(g);
  bool sawIa32 = false;
  bool sawIa64 = false;
  for (NodeId id : g.allNodes()) {
    sawIa32 |= g.node(id).spec().arch == Arch::kIA32;
    sawIa64 |= g.node(id).spec().arch == Arch::kIA64;
  }
  EXPECT_TRUE(sawIa32);
  EXPECT_TRUE(sawIa64);
  EXPECT_EQ(g.clusterNodes(tb.ia64).size(), 8u);
}

}  // namespace
}  // namespace grads::grid

#include <gtest/gtest.h>

#include "apps/nbody.hpp"
#include "apps/qr.hpp"
#include "core/app_manager.hpp"
#include "grid/load.hpp"
#include "grid/testbeds.hpp"
#include "reschedule/failure.hpp"
#include "reschedule/journal.hpp"
#include "reschedule/rescheduler.hpp"
#include "reschedule/srs.hpp"
#include "reschedule/swap.hpp"
#include "services/gis.hpp"
#include "services/ibp.hpp"
#include "services/nws.hpp"
#include "sim/sync.hpp"
#include "util/error.hpp"

namespace grads::reschedule {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

struct Fixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::QrTestbed tb;
  std::unique_ptr<services::Ibp> ibp;

  Fixture() {
    tb = grid::buildQrTestbed(g);
    ibp = std::make_unique<services::Ibp>(g);
  }
};

TEST(Rss, StopFlagLifecycle) {
  sim::Engine eng;
  Rss rss(eng, "app");
  EXPECT_FALSE(rss.stopRequested());
  rss.requestStop();
  EXPECT_TRUE(rss.stopRequested());
  rss.beginIncarnation(4);
  EXPECT_FALSE(rss.stopRequested());  // cleared for the new incarnation
  EXPECT_EQ(rss.incarnation(), 1);
  EXPECT_EQ(rss.previousProcs(), 0);
  rss.beginIncarnation(8);
  EXPECT_EQ(rss.incarnation(), 2);
  EXPECT_EQ(rss.previousProcs(), 4);
}

TEST(Rss, IterationStore) {
  sim::Engine eng;
  Rss rss(eng, "app");
  rss.storeIteration(17);
  EXPECT_EQ(rss.storedIteration(), 17u);
}

TEST(Srs, RegisteredBytesAccumulate) {
  Fixture f;
  Rss rss(f.eng, "qr");
  vmpi::World w(f.g, {f.tb.utkNodes[0], f.tb.utkNodes[1]});
  rss.beginIncarnation(2);
  Srs srs(*f.ibp, rss, w);
  srs.registerArray("A", 100.0 * kMB);
  srs.registerArray("B", 1.0 * kMB);
  EXPECT_DOUBLE_EQ(srs.registeredBytes(), 101.0 * kMB);
}

TEST(Srs, CheckpointWritesPerRankShares) {
  Fixture f;
  Rss rss(f.eng, "qr");
  vmpi::World w(f.g, {f.tb.utkNodes[0], f.tb.utkNodes[1]});
  rss.beginIncarnation(2);
  Srs srs(*f.ibp, rss, w);
  srs.registerArray("A", 60.0 * kMB);
  for (int r = 0; r < 2; ++r) {
    f.eng.spawn([](Srs& s, int rank) -> sim::Task {
      co_await s.writeCheckpoint(rank);
    }(srs, r));
  }
  f.eng.run();
  EXPECT_TRUE(rss.hasCheckpoint());
  EXPECT_EQ(f.ibp->objectCount(), 2u);  // one object per rank
  EXPECT_DOUBLE_EQ(f.ibp->sizeOf("qr.ckpt.A.r0.i1"), 30.0 * kMB);
  // Writes go to local disks (30 MB/s): each rank writes 30 MB in parallel.
  EXPECT_NEAR(srs.writeSpanSeconds(), 1.0, 0.05);
}

TEST(Srs, CheckIfStopOnlyTriggersWhenRequested) {
  Fixture f;
  Rss rss(f.eng, "qr");
  vmpi::World w(f.g, {f.tb.utkNodes[0]});
  rss.beginIncarnation(1);
  Srs srs(*f.ibp, rss, w);
  srs.registerArray("A", 1.0 * kMB);
  bool stop1 = true;
  bool stop2 = false;
  f.eng.spawn([](Srs& s, Rss& rss, bool* s1, bool* s2) -> sim::Task {
    co_await s.checkIfStop(0, s1);
    rss.requestStop();
    co_await s.checkIfStop(0, s2);
  }(srs, rss, &stop1, &stop2));
  f.eng.run();
  EXPECT_FALSE(stop1);
  EXPECT_TRUE(stop2);
  EXPECT_TRUE(rss.hasCheckpoint());
}

TEST(Srs, RestoreRedistributesNtoM) {
  // Write a checkpoint from 2 UTK ranks, restore into 4 UIUC ranks: each
  // new rank reads totalBytes/(N*M) from each old depot across the WAN.
  Fixture f;
  Rss rss(f.eng, "qr");
  const double total = 24.0 * kMB;
  {
    vmpi::World wOld(f.g, {f.tb.utkNodes[0], f.tb.utkNodes[1]});
    rss.beginIncarnation(2);
    Srs srsOld(*f.ibp, rss, wOld);
    srsOld.registerArray("A", total);
    for (int r = 0; r < 2; ++r) {
      f.eng.spawn([](Srs& s, int rank) -> sim::Task {
        co_await s.writeCheckpoint(rank);
      }(srsOld, r));
    }
    f.eng.run();
  }
  vmpi::World wNew(f.g, {f.tb.uiucNodes[0], f.tb.uiucNodes[1],
                         f.tb.uiucNodes[2], f.tb.uiucNodes[3]});
  rss.beginIncarnation(4);
  Srs srsNew(*f.ibp, rss, wNew);
  srsNew.registerArray("A", total);
  for (int r = 0; r < 4; ++r) {
    f.eng.spawn([](Srs& s, int rank) -> sim::Task {
      co_await s.restoreCheckpoint(rank);
    }(srsNew, r));
  }
  f.eng.run();
  EXPECT_TRUE(srsNew.restoredThisIncarnation());
  // All 24 MB cross the 1.2 MB/s WAN (shared) → read span ≈ 20 s.
  EXPECT_NEAR(srsNew.readSpanSeconds(), 20.0, 3.0);
}

TEST(Srs, RestoreWithoutCheckpointThrows) {
  Fixture f;
  Rss rss(f.eng, "qr");
  vmpi::World w(f.g, {f.tb.utkNodes[0]});
  rss.beginIncarnation(1);
  Srs srs(*f.ibp, rss, w);
  srs.registerArray("A", kMB);
  f.eng.spawn([](Srs& s) -> sim::Task { co_await s.restoreCheckpoint(0); }(srs));
  EXPECT_THROW(f.eng.run(), InvalidArgument);
}

struct ReschedulerFixture : Fixture {
  std::unique_ptr<services::Gis> gis;
  std::unique_ptr<services::Nws> nws;
  core::Cop cop;

  explicit ReschedulerFixture(std::size_t n = 8000) {
    gis = std::make_unique<services::Gis>(g);
    gis->installEverywhere(services::software::kLocalBinder);
    gis->installEverywhere(services::software::kScalapack);
    gis->installEverywhere(services::software::kSrsLibrary);
    gis->installEverywhere(services::software::kAutopilotSensors);
    nws = std::make_unique<services::Nws>(eng, g, 10.0, 0.0, 1);
    nws->start();
    apps::QrConfig cfg;
    cfg.n = n;
    cop = apps::makeQrCop(g, cfg);
  }

  std::vector<grid::NodeId> utkMapping() const {
    std::vector<grid::NodeId> m;
    for (const auto id : tb.utkNodes) {
      m.push_back(id);
      m.push_back(id);
    }
    return m;
  }
};

TEST(Rescheduler, StaysOnUnloadedBestResources) {
  ReschedulerFixture f;
  f.eng.runUntil(30.0);  // give NWS a few samples
  StopRestartRescheduler r(*f.gis, f.nws.get(), ReschedulerOptions{});
  const auto d = r.evaluate(f.cop, f.utkMapping(), 10);
  EXPECT_FALSE(d.migrate);
  EXPECT_EQ(d.target, f.utkMapping());  // current UTK is still the best
}

TEST(Rescheduler, MigratesWhenBenefitExceedsWorstCase) {
  ReschedulerFixture f(12000);
  // Heavy persistent load on one UTK node early in the run.
  f.g.node(f.tb.utkNodes[0]).injectLoad(4.0);
  f.eng.runUntil(60.0);
  StopRestartRescheduler r(*f.gis, f.nws.get(), ReschedulerOptions{});
  const auto d = r.evaluate(f.cop, f.utkMapping(), 5);
  EXPECT_TRUE(d.migrate);
  EXPECT_GT(d.remainingOnCurrentSec,
            d.remainingOnTargetSec + d.assumedMigrationCostSec);
  // Target should be the UIUC cluster.
  EXPECT_EQ(f.g.node(d.target[0]).cluster(), f.tb.uiuc);
}

TEST(Rescheduler, WorstCaseCostSuppressesMarginalMigration) {
  ReschedulerFixture f(8000);
  // Emulate the running application's own occupancy (two ranks per dual
  // node) plus the paper's artificial load on one node.
  for (const auto id : f.tb.utkNodes) f.g.node(id).injectLoad(2.0);
  f.g.node(f.tb.utkNodes[0]).injectLoad(2.65);
  f.eng.runUntil(60.0);
  ReschedulerOptions opts;
  opts.worstCaseMigrationSec = 900.0;
  StopRestartRescheduler pessimistic(*f.gis, f.nws.get(), opts);
  opts.worstCaseMigrationSec = 430.0;
  StopRestartRescheduler realistic(*f.gis, f.nws.get(), opts);
  // Early-run remaining work at N=8000: the benefit sits between the
  // pessimistic (900 s) and realistic (~430 s) cost assumptions — the
  // paper's wrong-decision regime.
  EXPECT_FALSE(pessimistic.evaluate(f.cop, f.utkMapping(), 5).migrate);
  EXPECT_TRUE(realistic.evaluate(f.cop, f.utkMapping(), 5).migrate);
}

TEST(Rescheduler, ForcedModesOverrideCostModel) {
  ReschedulerFixture f;
  f.g.node(f.tb.utkNodes[0]).injectLoad(8.0);
  f.eng.runUntil(60.0);
  ReschedulerOptions opts;
  opts.mode = ReschedulerMode::kForcedStay;
  StopRestartRescheduler stay(*f.gis, f.nws.get(), opts);
  EXPECT_FALSE(stay.evaluate(f.cop, f.utkMapping(), 5).migrate);
  opts.mode = ReschedulerMode::kForcedMigrate;
  StopRestartRescheduler migrate(*f.gis, f.nws.get(), opts);
  EXPECT_TRUE(migrate.evaluate(f.cop, f.utkMapping(), 5).migrate);
}

TEST(Rescheduler, OnViolationRequestsStopThroughRss) {
  ReschedulerFixture f(12000);
  f.g.node(f.tb.utkNodes[0]).injectLoad(4.0);
  f.eng.runUntil(60.0);
  StopRestartRescheduler r(*f.gis, f.nws.get(), ReschedulerOptions{});
  Rss rss(f.eng, f.cop.name);
  rss.beginIncarnation(8);
  const auto outcome = r.onViolation(f.cop, rss, f.utkMapping(), 5);
  EXPECT_EQ(outcome, autopilot::RescheduleOutcome::kMigrated);
  EXPECT_TRUE(rss.stopRequested());
  EXPECT_EQ(r.decisions().size(), 1u);
}

TEST(Rescheduler, OpportunisticMigratesOnFreedResources) {
  ReschedulerFixture f(12000);
  // Another app occupies all UIUC nodes, so our app sits on loaded UTK.
  std::vector<sim::PsResource::LoadId> occupied;
  for (const auto id : f.tb.uiucNodes) {
    occupied.push_back(f.g.node(id).injectLoad(1.0));
  }
  f.g.node(f.tb.utkNodes[0]).injectLoad(4.0);
  f.eng.runUntil(60.0);

  ReschedulerOptions opts;
  opts.opportunistic = true;
  StopRestartRescheduler r(*f.gis, f.nws.get(), opts);
  Rss rss(f.eng, f.cop.name);
  rss.beginIncarnation(8);
  StopRestartRescheduler::RunningApp handle;
  handle.cop = &f.cop;
  handle.rss = &rss;
  handle.mapping = [&f] { return f.utkMapping(); };
  handle.phase = [] { return std::size_t{5}; };
  r.registerRunning(f.cop.name, handle);

  // UIUC busy → no migration even when the "other app finished" event fires.
  r.onAppCompleted();
  EXPECT_FALSE(rss.stopRequested());

  // Free the UIUC nodes (the other app completed) and give NWS time to see.
  for (std::size_t i = 0; i < occupied.size(); ++i) {
    f.g.node(f.tb.uiucNodes[i]).removeLoad(occupied[i]);
  }
  f.eng.runUntil(160.0);
  r.onAppCompleted();
  EXPECT_TRUE(rss.stopRequested());
}

TEST(Rescheduler, NotOpportunisticByDefault) {
  ReschedulerFixture f;
  StopRestartRescheduler r(*f.gis, f.nws.get(), ReschedulerOptions{});
  Rss rss(f.eng, f.cop.name);
  rss.beginIncarnation(8);
  StopRestartRescheduler::RunningApp handle;
  handle.cop = &f.cop;
  handle.rss = &rss;
  handle.mapping = [&f] { return f.utkMapping(); };
  handle.phase = [] { return std::size_t{0}; };
  r.registerRunning(f.cop.name, handle);
  r.onAppCompleted();
  EXPECT_FALSE(rss.stopRequested());
  EXPECT_TRUE(r.decisions().empty());
}

struct SwapFixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::SwapTestbed tb;
  std::unique_ptr<vmpi::World> world;
  std::vector<grid::NodeId> pool;

  SwapFixture() {
    tb = grid::buildSwapTestbed(g);
    world = std::make_unique<vmpi::World>(
        g, std::vector<grid::NodeId>{tb.utkNodes[0], tb.utkNodes[1],
                                     tb.utkNodes[2]},
        "nbody");
    pool = tb.utkNodes;
    pool.insert(pool.end(), tb.uiucNodes.begin(), tb.uiucNodes.end());
  }

  SwapConfig config(SwapPolicy p) const {
    SwapConfig c;
    c.policy = p;
    c.flopsPerRankPerIteration = 5e8;
    c.perProcessDataBytes = 4.0 * kMB;
    return c;
  }
};

TEST(Swap, RejectsActiveOutsidePool) {
  SwapFixture f;
  EXPECT_THROW(SwapManager(*f.world, {f.tb.uiucNodes[0], f.tb.uiucNodes[1],
                                      f.tb.uiucNodes[2]},
                           nullptr, f.config(SwapPolicy::kGreedy)),
               InvalidArgument);
}

TEST(Swap, NeverPolicyNeverSwaps) {
  SwapFixture f;
  SwapManager swap(*f.world, f.pool, nullptr, f.config(SwapPolicy::kNever));
  f.g.node(f.tb.utkNodes[0]).injectLoad(5.0);
  swap.evaluate();
  EXPECT_EQ(swap.pendingSwaps(), 0u);
}

TEST(Swap, GreedySwapsDegradedNode) {
  SwapFixture f;
  SwapManager swap(*f.world, f.pool, nullptr, f.config(SwapPolicy::kGreedy));
  swap.evaluate();
  EXPECT_EQ(swap.pendingSwaps(), 0u);  // nothing degraded yet
  f.g.node(f.tb.utkNodes[0]).injectLoad(3.0);
  swap.evaluate();
  EXPECT_EQ(swap.pendingSwaps(), 1u);  // only the loaded node is replaced
}

TEST(Swap, PendingSwapAppliedAtIterationBoundary) {
  SwapFixture f;
  SwapManager swap(*f.world, f.pool, nullptr, f.config(SwapPolicy::kGreedy));
  f.g.node(f.tb.utkNodes[0]).injectLoad(3.0);
  swap.evaluate();
  ASSERT_EQ(swap.pendingSwaps(), 1u);
  for (int r = 0; r < 3; ++r) {
    f.eng.spawn([](SwapManager& s, int rank) -> sim::Task {
      co_await s.atIterationBoundary(rank);
    }(swap, r));
  }
  f.eng.run();
  EXPECT_EQ(swap.pendingSwaps(), 0u);
  ASSERT_EQ(swap.history().size(), 1u);
  EXPECT_EQ(swap.history()[0].from, f.tb.utkNodes[0]);
  // Rank 0 now runs on a UIUC node (the only idle faster option).
  EXPECT_EQ(f.g.node(f.world->nodeOf(0)).cluster(), f.tb.uiuc);
}

TEST(Swap, ModelBasedMovesWholeSetAcrossClusters) {
  // The paper's Figure 4 behaviour: with one UTK node degraded, the policy
  // prefers the *whole* UIUC cluster over a mixed set that pays WAN latency
  // every iteration.
  SwapFixture f;
  auto cfg = f.config(SwapPolicy::kModelBased);
  cfg.messagesPerIteration = 50.0;  // make cross-cluster latency expensive
  SwapManager swap(*f.world, f.pool, nullptr, cfg);
  f.g.node(f.tb.utkNodes[0]).injectLoad(3.0);
  swap.evaluate();
  EXPECT_EQ(swap.pendingSwaps(), 3u);  // all three ranks move
}

TEST(Swap, ModelBasedStaysWhenCurrentIsBest) {
  SwapFixture f;
  SwapManager swap(*f.world, f.pool, nullptr,
                   f.config(SwapPolicy::kModelBased));
  swap.evaluate();
  EXPECT_EQ(swap.pendingSwaps(), 0u);
}

TEST(Swap, PredictIterationAccountsForLatency) {
  SwapFixture f;
  auto cfg = f.config(SwapPolicy::kModelBased);
  cfg.messagesPerIteration = 10.0;
  SwapManager swap(*f.world, f.pool, nullptr, cfg);
  const double utkOnly = swap.predictIterationSeconds(
      {f.tb.utkNodes[0], f.tb.utkNodes[1], f.tb.utkNodes[2]});
  const double mixed = swap.predictIterationSeconds(
      {f.tb.utkNodes[0], f.tb.utkNodes[1], f.tb.uiucNodes[0]});
  // The mixed set pays 10 × 11 ms WAN latency per iteration and is gated by
  // the slower UIUC node.
  EXPECT_GT(mixed, utkOnly + 0.1);
}

TEST(Swap, TargetDiesMidTransferRollsBack) {
  // A swap is a transaction: the target node dies while the process image
  // is in flight (between prepare and commit), so the staged retarget must
  // be aborted and the rank must stay exactly where it was.
  SwapFixture f;
  services::Gis gis(f.g);
  ActionJournal journal(f.eng);
  SwapManager swap(*f.world, f.pool, nullptr, f.config(SwapPolicy::kGreedy));
  swap.setGis(&gis);
  swap.setJournal(&journal);
  f.g.node(f.tb.utkNodes[0]).injectLoad(3.0);
  swap.evaluate();
  ASSERT_EQ(swap.pendingSwaps(), 1u);
  const grid::NodeId before = f.world->nodeOf(0);
  // The 4 MB image takes ~2 s across the 2 MB/s WAN; kill every candidate
  // target 1 s in, squarely mid-transfer.
  f.eng.scheduleDaemon(1.0, [&] {
    for (const auto id : f.tb.uiucNodes) gis.setNodeReachable(id, false);
  });
  for (int r = 0; r < 3; ++r) {
    f.eng.spawn([](SwapManager& s, int rank) -> sim::Task {
      co_await s.atIterationBoundary(rank);
    }(swap, r));
  }
  f.eng.run();
  EXPECT_EQ(f.world->nodeOf(0), before);  // prior active set restored
  EXPECT_TRUE(swap.history().empty());
  EXPECT_EQ(swap.committedSwaps(), 0);
  EXPECT_EQ(swap.rolledBackSwaps(), 1);
  EXPECT_EQ(f.world->retargetsAborted(), 1);
  EXPECT_EQ(f.world->retargetsCommitted(), 0);
  EXPECT_EQ(journal.rolledBack(), 1);
  EXPECT_EQ(journal.inFlight(), 0);
  ASSERT_EQ(journal.records().size(), 1u);
  EXPECT_EQ(journal.records()[0].state, ActionState::kRolledBack);
  EXPECT_EQ(journal.records()[0].prior, std::vector<grid::NodeId>{before});
}

TEST(Swap, SourceDiesMidTransferRollsBack) {
  // Same window, other endpoint: the rank's *current* node dies while its
  // image is being copied out. The commit-point re-validation must catch it
  // and abort rather than flip the mapping onto a half-moved process.
  SwapFixture f;
  services::Gis gis(f.g);
  ActionJournal journal(f.eng);
  SwapManager swap(*f.world, f.pool, nullptr, f.config(SwapPolicy::kGreedy));
  swap.setGis(&gis);
  swap.setJournal(&journal);
  f.g.node(f.tb.utkNodes[0]).injectLoad(3.0);
  swap.evaluate();
  ASSERT_EQ(swap.pendingSwaps(), 1u);
  const grid::NodeId before = f.world->nodeOf(0);
  f.eng.scheduleDaemon(
      1.0, [&] { gis.setNodeReachable(f.tb.utkNodes[0], false); });
  for (int r = 0; r < 3; ++r) {
    f.eng.spawn([](SwapManager& s, int rank) -> sim::Task {
      co_await s.atIterationBoundary(rank);
    }(swap, r));
  }
  f.eng.run();
  EXPECT_EQ(f.world->nodeOf(0), before);
  EXPECT_TRUE(swap.history().empty());
  EXPECT_EQ(swap.rolledBackSwaps(), 1);
  EXPECT_EQ(f.world->retargetsAborted(), 1);
  EXPECT_EQ(journal.rolledBack(), 1);
  EXPECT_EQ(journal.inFlight(), 0);
}

TEST(Swap, UnreachableTargetDroppedAtPrepare) {
  // The target died between policy evaluation and the iteration boundary:
  // prepare-time validation drops the command before anything is staged —
  // no journal record, no retarget, no rollback.
  SwapFixture f;
  services::Gis gis(f.g);
  ActionJournal journal(f.eng);
  SwapManager swap(*f.world, f.pool, nullptr, f.config(SwapPolicy::kGreedy));
  swap.setGis(&gis);
  swap.setJournal(&journal);
  f.g.node(f.tb.utkNodes[0]).injectLoad(3.0);
  swap.evaluate();
  ASSERT_EQ(swap.pendingSwaps(), 1u);
  for (const auto id : f.tb.uiucNodes) gis.setNodeReachable(id, false);
  const grid::NodeId before = f.world->nodeOf(0);
  for (int r = 0; r < 3; ++r) {
    f.eng.spawn([](SwapManager& s, int rank) -> sim::Task {
      co_await s.atIterationBoundary(rank);
    }(swap, r));
  }
  f.eng.run();
  EXPECT_EQ(f.world->nodeOf(0), before);
  EXPECT_EQ(swap.pendingSwaps(), 0u);
  EXPECT_EQ(swap.rolledBackSwaps(), 0);
  EXPECT_EQ(journal.opened(), 0);
  EXPECT_EQ(f.world->retargetsAborted(), 0);
}

TEST(Swap, UnreachableNodesExcludedFromReplacementPool) {
  // Policy evaluation itself must not propose a dead node as a target.
  SwapFixture f;
  services::Gis gis(f.g);
  SwapManager swap(*f.world, f.pool, nullptr, f.config(SwapPolicy::kGreedy));
  swap.setGis(&gis);
  for (const auto id : f.tb.uiucNodes) gis.setNodeReachable(id, false);
  f.g.node(f.tb.utkNodes[0]).injectLoad(3.0);
  swap.evaluate();
  EXPECT_EQ(swap.pendingSwaps(), 0u);  // only dead nodes would be faster
}

TEST(Swap, EndToEndNBodyRunSwapsUnderLoad) {
  SwapFixture f;
  services::Nws nws(f.eng, f.g, 5.0, 0.0, 3);
  nws.start();
  apps::NBodyConfig cfg;
  cfg.particles = 4000;
  cfg.iterations = 40;
  auto scfg = f.config(SwapPolicy::kModelBased);
  scfg.checkPeriodSec = 5.0;
  scfg.flopsPerRankPerIteration = apps::nbodyIterationFlopsPerRank(cfg, 3);
  SwapManager swap(*f.world, f.pool, &nws, scfg);
  swap.start();
  grid::applyLoadTrace(f.eng, f.g.node(f.tb.utkNodes[0]),
                       grid::LoadTrace::stepAt(4.0, 2.0));
  apps::NBodyProgress progress;
  for (int r = 0; r < 3; ++r) {
    f.eng.spawn(apps::nbodyRank(*f.world, &swap, cfg, r, nullptr, "nbody",
                                &progress));
  }
  f.eng.run();
  EXPECT_EQ(progress.samples.size(), 40u);
  EXPECT_GE(swap.history().size(), 3u);
  // Everyone ends on UIUC.
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(f.g.node(f.world->nodeOf(r)).cluster(), f.tb.uiuc);
  }
}

// ---------------------------------------------------------------------------
// Transactional migrations through the application manager: a node killed
// between the action's prepare (journal open) and commit (all ranks restored
// on the target) must resolve as a rollback, and the run must complete.
// ---------------------------------------------------------------------------

struct MidActionFaultRun {
  core::RunBreakdown bd;
  std::vector<ActionRecord> records;
  int inFlight = 0;
  bool killed = false;
};

MidActionFaultRun runMigrationWithMidActionKill(bool killTarget) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  services::Gis gis(g);
  gis.installEverywhere(services::software::kLocalBinder);
  gis.installEverywhere(services::software::kScalapack);
  gis.installEverywhere(services::software::kSrsLibrary);
  gis.installEverywhere(services::software::kAutopilotSensors);
  services::Nws nws(eng, g, 10.0, 0.0, 7);
  nws.start();
  services::Ibp ibp(g);
  autopilot::AutopilotManager autopilot(eng);
  FailureInjector injector(eng, gis);

  // Figure-3 setup: load lands on a UTK node, the rescheduler migrates.
  grid::applyLoadTrace(eng, g.node(tb.utkNodes[0]),
                       grid::LoadTrace::stepAt(300.0, 2.65));
  apps::QrConfig cfg;
  cfg.n = 9000;
  cfg.checkpointEveryPanels = 8;
  const core::Cop cop = apps::makeQrCop(g, cfg);

  ActionJournal journal(eng);
  StopRestartRescheduler rescheduler(gis, &nws, ReschedulerOptions{});
  rescheduler.setJournal(&journal);

  core::AppManager mgr(g, gis, &nws, ibp, autopilot);
  core::ManagerOptions mopts;
  mopts.journal = &journal;
  mopts.failures = &injector;
  mopts.launchRetry.maxAttempts = 5;
  mopts.launchRetry.baseDelaySec = 15.0;

  // The moment the migration opens, kill one endpoint 1 s later — inside
  // the prepare window (stop checkpoint still being written). The long
  // stale-GIS window makes the relaunch bind hit the corpse.
  auto killed = std::make_shared<bool>(false);
  auto poll = std::make_shared<std::function<void()>>();
  *poll = [&eng, &journal, &injector, killed, poll, killTarget,
           appName = cop.name] {
    if (*killed) return;
    if (const auto* rec = journal.openAction(appName)) {
      const auto& nodes = killTarget ? rec->target : rec->prior;
      if (!nodes.empty()) {
        *killed = true;
        const grid::NodeId victim = nodes.front();
        eng.scheduleDaemon(1.0, [&injector, victim] {
          injector.failNow(victim, 2.0, 120.0);
        });
        return;
      }
    }
    eng.scheduleDaemon(1.0, *poll);
  };
  eng.scheduleDaemon(1.0, *poll);

  MidActionFaultRun out;
  eng.spawn(mgr.run(cop, &rescheduler, mopts, &out.bd), "qr");
  eng.run();
  eng.rethrowIfFailed();
  out.records = journal.records();
  out.inFlight = journal.inFlight();
  out.killed = *killed;
  return out;
}

TEST(Journal, MigrationTargetDeathRollsBackToPriorMapping) {
  const auto out = runMigrationWithMidActionKill(/*killTarget=*/true);
  ASSERT_TRUE(out.killed);
  EXPECT_GT(out.bd.totalSeconds, 0.0);  // the run completed
  EXPECT_EQ(out.inFlight, 0);           // no stranded records
  EXPECT_GE(out.bd.actionsRolledBack, 1);
  // Find the rolled-back action and check the relaunch restored its exact
  // prior active set.
  const ActionRecord* rb = nullptr;
  for (const auto& r : out.records) {
    ASSERT_NE(r.state, ActionState::kPrepared);
    ASSERT_NE(r.state, ActionState::kCommitting);
    if (r.state == ActionState::kRolledBack && rb == nullptr) rb = &r;
  }
  ASSERT_NE(rb, nullptr);
  ASSERT_GE(out.bd.mappings.size(), 2u);
  EXPECT_EQ(out.bd.mappings[0], rb->prior);
  EXPECT_EQ(out.bd.mappings[1], rb->prior);  // resumed on the old nodes
}

TEST(Journal, RecoveryScanIsIdempotent) {
  // Crash-restart can run the recovery scan more than once (e.g. a restore
  // that itself crashes and is restored again). The second scan must be a
  // pure no-op: nothing re-resolved, no counter drift, records untouched.
  sim::Engine eng;
  ActionJournal journal(eng);
  const int a = journal.open("qr", ActionKind::kMigrate, {1, 2}, {3, 4});
  const int b = journal.open("nbody", ActionKind::kSwap, {5, 6});
  journal.beginCommit(a);
  ASSERT_EQ(journal.inFlight(), 2);

  EXPECT_EQ(journal.recover("control-plane restart"), 2);
  EXPECT_EQ(journal.inFlight(), 0);
  EXPECT_EQ(journal.recoveries(), 1);
  EXPECT_EQ(journal.record(a).state, ActionState::kRolledBack);
  EXPECT_EQ(journal.record(b).state, ActionState::kRolledBack);
  const auto firstScan = journal.records();
  const int rolledBack = journal.rolledBack();

  // Second scan over the already-recovered journal.
  EXPECT_EQ(journal.recover("control-plane restart"), 0);
  EXPECT_EQ(journal.recoveries(), 1);  // only scans that resolved count
  EXPECT_EQ(journal.rolledBack(), rolledBack);
  EXPECT_EQ(journal.inFlight(), 0);
  ASSERT_EQ(journal.records().size(), firstScan.size());
  for (std::size_t i = 0; i < firstScan.size(); ++i) {
    EXPECT_EQ(journal.records()[i].state, firstScan[i].state);
    EXPECT_EQ(journal.records()[i].resolvedAt, firstScan[i].resolvedAt);
    EXPECT_EQ(journal.records()[i].note, firstScan[i].note);
  }

  // A post-recovery action opened by the restored control plane is *not*
  // touched by a later stray scan wave until it is actually unresolved at
  // scan time — recover() resolves it (it is open), but exactly once.
  const int c = journal.open("qr", ActionKind::kMigrate, {3, 4});
  journal.commit(c, "normal resolution");
  EXPECT_EQ(journal.recover("late scan"), 0);
  EXPECT_EQ(journal.record(c).state, ActionState::kCommitted);
}

TEST(Journal, MigrationSourceDeathRollsBackAndRemaps) {
  // Killing a *source* node mid-prepare aborts the stop checkpoint; the
  // action rolls back, and since the prior mapping lost a node the manager
  // remaps from scratch — the run must still complete with nothing open.
  const auto out = runMigrationWithMidActionKill(/*killTarget=*/false);
  ASSERT_TRUE(out.killed);
  EXPECT_GT(out.bd.totalSeconds, 0.0);
  EXPECT_EQ(out.inFlight, 0);
  EXPECT_GE(out.bd.actionsRolledBack, 1);
  for (const auto& r : out.records) {
    EXPECT_GE(r.resolvedAt, 0.0);  // every action resolved
  }
}

}  // namespace
}  // namespace grads::reschedule

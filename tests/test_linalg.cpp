#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace grads::linalg {
namespace {

Matrix randomMatrix(Rng& rng, std::size_t m, std::size_t n) {
  Matrix a(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  return a;
}

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 7.0);
}

TEST(Matrix, InitializerListRejectsRagged) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(Matrix, MultiplyKnownValues) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(a * b, InvalidArgument);
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(3);
  const Matrix a = randomMatrix(rng, 4, 7);
  const Matrix att = a.transposed().transposed();
  EXPECT_DOUBLE_EQ(Matrix::maxAbsDiff(a, att), 0.0);
}

TEST(Matrix, IdentityIsMultiplicativeUnit) {
  Rng rng(4);
  const Matrix a = randomMatrix(rng, 5, 5);
  const Matrix i = Matrix::identity(5);
  EXPECT_LT(Matrix::maxAbsDiff(a * i, a), 1e-15);
  EXPECT_LT(Matrix::maxAbsDiff(i * a, a), 1e-15);
}

TEST(Qr, ReconstructsA) {
  Rng rng(11);
  const Matrix a = randomMatrix(rng, 8, 5);
  const auto qr = householderQr(a);
  EXPECT_LT(Matrix::maxAbsDiff(qr.q * qr.r, a), 1e-12);
}

TEST(Qr, QIsOrthogonal) {
  Rng rng(12);
  const Matrix a = randomMatrix(rng, 6, 6);
  const auto qr = householderQr(a);
  const Matrix qtq = qr.q.transposed() * qr.q;
  EXPECT_LT(Matrix::maxAbsDiff(qtq, Matrix::identity(6)), 1e-12);
}

TEST(Qr, RIsUpperTriangular) {
  Rng rng(13);
  const Matrix a = randomMatrix(rng, 7, 4);
  const auto qr = householderQr(a);
  for (std::size_t i = 1; i < qr.r.rows(); ++i) {
    for (std::size_t j = 0; j < std::min(i, qr.r.cols()); ++j) {
      EXPECT_DOUBLE_EQ(qr.r(i, j), 0.0);
    }
  }
}

TEST(Qr, WideMatrixRejected) {
  const Matrix a(2, 5);
  EXPECT_THROW(householderQr(a), InvalidArgument);
}

class QrSizes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrSizes, FactorizationInvariantsHold) {
  const auto [m, n] = GetParam();
  Rng rng(static_cast<std::uint64_t>(m * 100 + n));
  const Matrix a = randomMatrix(rng, static_cast<std::size_t>(m),
                                static_cast<std::size_t>(n));
  const auto qr = householderQr(a);
  EXPECT_LT(Matrix::maxAbsDiff(qr.q * qr.r, a), 1e-11);
  const Matrix qtq = qr.q.transposed() * qr.q;
  EXPECT_LT(Matrix::maxAbsDiff(qtq, Matrix::identity(qtq.rows())), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QrSizes,
                         ::testing::Values(std::pair{1, 1}, std::pair{3, 2},
                                           std::pair{10, 10}, std::pair{20, 7},
                                           std::pair{32, 32},
                                           std::pair{40, 17}));

TEST(LeastSquares, RecoversExactSolution) {
  // Overdetermined but consistent system.
  Rng rng(21);
  const Matrix a = randomMatrix(rng, 10, 3);
  const std::vector<double> xTrue{1.0, -2.0, 0.5};
  const auto b = a * xTrue;
  const auto x = leastSquares(a, b);
  ASSERT_EQ(x.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], xTrue[i], 1e-10);
}

TEST(LeastSquares, MinimizesResidualOnNoisyData) {
  Rng rng(22);
  const Matrix a = randomMatrix(rng, 50, 2);
  std::vector<double> b(50);
  for (std::size_t i = 0; i < 50; ++i) {
    b[i] = 3.0 * a(i, 0) - 1.0 * a(i, 1) + rng.normal(0.0, 0.01);
  }
  const auto x = leastSquares(a, b);
  EXPECT_NEAR(x[0], 3.0, 0.05);
  EXPECT_NEAR(x[1], -1.0, 0.05);
}

TEST(BackSubstitute, SolvesUpperTriangular) {
  const Matrix r{{2.0, 1.0}, {0.0, 4.0}};
  const std::vector<double> b{5.0, 8.0};
  const auto x = backSubstitute(r, b);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[0], 1.5);
}

TEST(BackSubstitute, SingularThrows) {
  const Matrix r{{1.0, 1.0}, {0.0, 0.0}};
  const std::vector<double> b{1.0, 1.0};
  EXPECT_THROW(backSubstitute(r, b), InvalidArgument);
}

TEST(FlopCounts, QrClosedForm) {
  // Square: 2n²(n − n/3) = (4/3)n³.
  EXPECT_NEAR(qrFlops(100, 100), 4.0 / 3.0 * 1e6, 1.0);
  // Tall-skinny dominated by 2mn².
  EXPECT_NEAR(qrFlops(1000, 10), 2.0 * 1000 * 100 - 2.0 * 1000 / 3.0, 100.0);
}

TEST(FlopCounts, Matmul) { EXPECT_DOUBLE_EQ(matmulFlops(10), 2000.0); }

}  // namespace
}  // namespace grads::linalg

// Tests for the pooled, allocation-free event engine: the golden firing
// order captured from the pre-pool queue, eager cancellation keepalive
// semantics, handle staleness across node recycling, live pending-event
// accounting, and high-volume pool churn (the ASan CI leg runs this file to
// catch node lifetime bugs).

#include <gtest/gtest.h>

#include <array>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/inline_fn.hpp"
#include "util/error.hpp"

using namespace grads;

namespace {

// ---------------------------------------------------------------------------
// Golden event order
// ---------------------------------------------------------------------------

// This sequence was recorded by running the workload below against the
// pre-rewrite engine (std::function + shared_ptr cancellation + std::
// priority_queue). The pooled engine must reproduce it exactly: (time, seq)
// FIFO order is a documented contract, not an implementation detail.
TEST(EnginePool, GoldenMixedWorkloadOrder) {
  std::vector<std::string> fired;
  sim::Engine eng;
  auto rec = [&fired, &eng](const char* tag) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s@%g", tag, eng.now());
    fired.emplace_back(buf);
  };

  // Same-timestamp FIFO batch at t=2, with one member cancelled up front.
  eng.schedule(2.0, [&] { rec("b0"); });
  eng.schedule(2.0, [&] { rec("b1"); });
  auto preCancelled = eng.schedule(2.0, [&] { rec("never-pre"); });
  eng.schedule(2.0, [&] { rec("b2"); });
  preCancelled.cancel();
  preCancelled.cancel();  // idempotent

  // Rearming daemon every 1.5s (like NWS sampling).
  auto tick = std::make_shared<std::function<void()>>();
  // Capture a non-owning pointer: capturing the shared_ptr inside the
  // function it owns would form a reference cycle (a leak under LSan).
  *tick = [&eng, &rec, t = tick.get()] {
    rec("daemon");
    eng.scheduleDaemon(1.5, *t);
  };
  eng.scheduleDaemon(1.5, *tick);

  // An event that schedules nested work: same-time (runs after everything
  // already queued at t=1) and future.
  eng.schedule(1.0, [&] {
    rec("n0");
    eng.scheduleAt(1.0, [&] { rec("n0-sametime"); });
    eng.schedule(2.5, [&] { rec("n0-later"); });
  });
  eng.schedule(1.0, [&] { rec("n1"); });

  // Mid-run cancellation: the event at t=4 kills the one at t=5.
  auto midVictim = eng.schedule(5.0, [&] { rec("never-mid"); });
  auto firedEarly = eng.schedule(0.5, [&] { rec("early"); });
  eng.schedule(4.0, [&] {
    rec("killer");
    midVictim.cancel();
    firedEarly.cancel();  // cancelling an already-fired event: no-op
  });

  // Daemon scheduled beyond the last real event must not fire.
  eng.scheduleDaemonAt(9.5, [&] { rec("never-late-daemon"); });
  eng.schedule(8.0, [&] { rec("end"); });

  eng.run();

  const std::vector<std::string> golden = {
      "early@0.5", "n0@1",        "n1@1",      "n0-sametime@1",
      "daemon@1.5", "b0@2",       "b1@2",      "b2@2",
      "daemon@3",   "n0-later@3.5", "killer@4", "daemon@4.5",
      "daemon@6",   "daemon@7.5", "end@8",
  };
  EXPECT_EQ(fired, golden);
  EXPECT_DOUBLE_EQ(eng.now(), 8.0);
  EXPECT_EQ(eng.processedEvents(), 15u);
}

// ---------------------------------------------------------------------------
// Cancellation keepalive (regression: eager nonDaemonPending_ decrement)
// ---------------------------------------------------------------------------

// A cancelled far-future timeout must not keep run() alive grinding through
// daemon events until the dead deadline pops. Before the fix, cancel() left
// nonDaemonPending_ untouched and this run would tick daemons to t=1e6.
TEST(EnginePool, CancelledFarFutureTimeoutDoesNotExtendRun) {
  sim::Engine eng;
  int daemonFires = 0;
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&eng, &daemonFires, t = tick.get()] {
    ++daemonFires;
    eng.scheduleDaemon(1.0, *t);
  };
  eng.scheduleDaemon(1.0, *tick);

  auto timeout =
      eng.schedule(1e6, [] { ADD_FAILURE() << "dead timeout fired"; });
  eng.schedule(5.0, [&] { timeout.cancel(); });

  eng.run();
  // The last real event is at t=5; the run must stop there, not at t=1e6.
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
  EXPECT_LE(daemonFires, 5);
}

TEST(EnginePool, CancelBeforeRunEndsImmediately) {
  sim::Engine eng;
  bool fired = false;
  auto h = eng.schedule(100.0, [&] { fired = true; });
  h.cancel();
  eng.run();
  EXPECT_FALSE(fired);
  // No live event was ever processed, so the clock never advanced.
  EXPECT_DOUBLE_EQ(eng.now(), 0.0);
  EXPECT_EQ(eng.processedEvents(), 0u);
}

// ---------------------------------------------------------------------------
// Live pending-event accounting
// ---------------------------------------------------------------------------

TEST(EnginePool, PendingEventsReportsLiveCount) {
  sim::Engine eng;
  auto a = eng.schedule(1.0, [] {});
  auto b = eng.schedule(2.0, [] {});
  auto c = eng.schedule(3.0, [] {});
  (void)a;
  (void)c;
  EXPECT_EQ(eng.pendingEvents(), 3u);
  EXPECT_EQ(eng.cancelledPending(), 0u);

  b.cancel();
  // The corpse still occupies a queue slot, but it is not a live event.
  EXPECT_EQ(eng.pendingEvents(), 2u);
  EXPECT_EQ(eng.cancelledPending(), 1u);
  EXPECT_FALSE(b.pending());
  EXPECT_TRUE(a.pending());

  eng.run();
  EXPECT_EQ(eng.pendingEvents(), 0u);
  EXPECT_EQ(eng.cancelledPending(), 0u);
  EXPECT_EQ(eng.processedEvents(), 2u);
}

// ---------------------------------------------------------------------------
// Caller names in precondition messages
// ---------------------------------------------------------------------------

TEST(EnginePool, ScheduleErrorsNameTheActualEntryPoint) {
  sim::Engine eng;
  eng.schedule(1.0, [] {});
  eng.runUntil(0.5);  // now() = 0.5 with an event still queued

  const auto messageOf = [](auto&& call) -> std::string {
    try {
      call();
    } catch (const InvalidArgument& e) {
      return e.what();
    }
    return "(no exception)";
  };

  EXPECT_NE(messageOf([&] { eng.scheduleAt(0.1, [] {}); })
                .find("Engine::scheduleAt"),
            std::string::npos);
  EXPECT_NE(messageOf([&] { eng.scheduleDaemonAt(0.1, [] {}); })
                .find("Engine::scheduleDaemonAt"),
            std::string::npos);
  EXPECT_NE(messageOf([&] {
              eng.schedule(sim::kInfTime, [] {});
            }).find("Engine::schedule"),
            std::string::npos);
  EXPECT_NE(messageOf([&] {
              eng.scheduleDaemon(sim::kInfTime, [] {});
            }).find("Engine::scheduleDaemon"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Handle staleness across recycling
// ---------------------------------------------------------------------------

// After an event fires, its pool node is recycled; a handle to the old event
// must go stale rather than cancel whatever reused the slot.
TEST(EnginePool, StaleHandleCannotCancelRecycledNode) {
  sim::Engine eng;
  bool firstFired = false;
  auto first = eng.schedule(1.0, [&] { firstFired = true; });
  eng.run();
  EXPECT_TRUE(firstFired);
  EXPECT_FALSE(first.pending());

  // This reuses the recycled node (single-slot pool).
  bool secondFired = false;
  eng.schedule(1.0, [&] { secondFired = true; });
  EXPECT_EQ(eng.poolSize(), 1u);

  first.cancel();  // stale: must not touch the reused slot
  EXPECT_EQ(eng.pendingEvents(), 1u);
  eng.run();
  EXPECT_TRUE(secondFired);
}

TEST(EnginePool, SelfCancelDuringCallbackIsANoOp) {
  sim::Engine eng;
  sim::Engine::EventHandle self;
  int runs = 0;
  self = eng.schedule(1.0, [&] {
    ++runs;
    self.cancel();  // already firing: handle is stale by now
  });
  eng.run();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(eng.pendingEvents(), 0u);
}

// ---------------------------------------------------------------------------
// Pool recycling and high-volume churn (run under ASan in CI)
// ---------------------------------------------------------------------------

TEST(EnginePool, NodesAreRecycledThroughTheFreeList) {
  sim::Engine eng;
  for (int wave = 0; wave < 4; ++wave) {
    for (int i = 0; i < 100; ++i) {
      eng.schedule(static_cast<double>(i % 7), [] {});
    }
    eng.run();
  }
  // Pool high-water mark is one wave, not four.
  EXPECT_LE(eng.poolSize(), 100u);
  EXPECT_EQ(eng.freePoolNodes(), eng.poolSize());
}

TEST(EnginePool, MillionEventChurn) {
  sim::Engine eng;
  std::size_t fired = 0;
  std::size_t cancelled = 0;
  std::vector<sim::Engine::EventHandle> handles;
  constexpr int kWaves = 100;
  constexpr int kPerWave = 10000;
  for (int wave = 0; wave < kWaves; ++wave) {
    handles.clear();
    const double base = eng.now();
    for (int i = 0; i < kPerWave; ++i) {
      // Mix of resources: a counter capture, varying times, some daemons.
      if (i % 17 == 0) {
        eng.scheduleDaemonAt(base + static_cast<double>(i % 89), [&fired] {
          ++fired;
        });
      } else {
        handles.push_back(eng.scheduleAt(base + static_cast<double>(i % 89),
                                         [&fired] { ++fired; }));
      }
    }
    // Cancel every third handle, some twice.
    for (std::size_t i = 0; i < handles.size(); i += 3) {
      handles[i].cancel();
      if (i % 6 == 0) handles[i].cancel();
      ++cancelled;
    }
    // Sentinel after every other event so daemons at the tail of the wave
    // are guaranteed to fire no matter which handles were cancelled.
    eng.scheduleAt(base + 100.0, [&fired] { ++fired; });
    eng.run();
  }
  EXPECT_EQ(fired + cancelled,
            static_cast<std::size_t>(kWaves) * (kPerWave + 1));
  EXPECT_EQ(eng.pendingEvents(), 0u);
  EXPECT_EQ(eng.freePoolNodes(), eng.poolSize());
  // Recycling keeps the pool bounded by one wave's high-water mark
  // (kPerWave events plus the sentinel).
  EXPECT_LE(eng.poolSize(), static_cast<std::size_t>(kPerWave) + 1);
}

// An InlineFn that owns heap state (shared_ptr capture) must be destroyed
// exactly once whether it fires, is cancelled, or dies with the engine.
TEST(EnginePool, CallbackResourcesReleasedOnEveryPath) {
  auto token = std::make_shared<int>(42);
  {
    sim::Engine eng;
    eng.schedule(1.0, [token] {});                      // fires
    eng.schedule(2.0, [token] {}).cancel();             // cancelled
    eng.schedule(3.0, [token] {});
    eng.stop();                                         // no-op before run
    eng.run();
    eng.schedule(4.0, [token] {});                      // dies with engine
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

// ---------------------------------------------------------------------------
// InlineFn unit tests
// ---------------------------------------------------------------------------

TEST(InlineFn, SmallCallablesStayInline) {
  int x = 0;
  sim::InlineFn f([&x] { x = 7; });
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f.isInline());
  f();
  EXPECT_EQ(x, 7);
}

TEST(InlineFn, LargeCallablesFallBackToHeap) {
  std::array<double, 16> payload{};  // 128 bytes > 48-byte buffer
  payload[3] = 1.5;
  double out = 0.0;
  sim::InlineFn f([payload, &out] { out = payload[3]; });
  EXPECT_FALSE(f.isInline());
  f();
  EXPECT_DOUBLE_EQ(out, 1.5);
}

TEST(InlineFn, MoveTransfersOwnership) {
  auto token = std::make_shared<int>(1);
  sim::InlineFn a([token] {});
  EXPECT_EQ(token.use_count(), 2);
  sim::InlineFn b(std::move(a));
  EXPECT_EQ(token.use_count(), 2);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(static_cast<bool>(b));
  a = std::move(b);
  EXPECT_EQ(token.use_count(), 2);
  a.reset();
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFn, ResetAndDestructorReleaseHeapCallables) {
  auto token = std::make_shared<int>(1);
  std::array<char, 100> pad{};
  {
    sim::InlineFn f([token, pad] { (void)pad; });
    EXPECT_FALSE(f.isInline());
    EXPECT_EQ(token.use_count(), 2);
    f.reset();
    EXPECT_EQ(token.use_count(), 1);
    EXPECT_FALSE(static_cast<bool>(f));
  }
  {
    sim::InlineFn g([token, pad] { (void)pad; });
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(InlineFn, AcceptsStdFunctionLvalues) {
  int calls = 0;
  std::function<void()> fn = [&calls] { ++calls; };
  sim::InlineFn f(fn);
  f();
  EXPECT_EQ(calls, 1);
}

}  // namespace

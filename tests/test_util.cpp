#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "util/error.hpp"
#include "util/retry.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace grads {
namespace {

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(7);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    sawLo |= v == 0;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng r(13);
  stats::Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng r(99);
  stats::Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(r.exponential(0.5));
  EXPECT_NEAR(acc.mean(), 2.0, 0.1);
}

TEST(Rng, PermutationIsPermutation) {
  Rng r(5);
  auto p = r.permutation(50);
  std::vector<bool> seen(50, false);
  for (auto i : p) {
    ASSERT_LT(i, 50u);
    EXPECT_FALSE(seen[i]);
    seen[i] = true;
  }
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng a(42);
  Rng c = a.split();
  EXPECT_NE(a.next(), c.next());
}

TEST(Stats, AccumulatorBasics) {
  stats::Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Stats, EmptyAccumulatorThrows) {
  stats::Accumulator acc;
  EXPECT_THROW(acc.mean(), InvalidArgument);
}

TEST(Stats, MedianOddEven) {
  std::vector<double> odd{3.0, 1.0, 2.0};
  std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(stats::median(odd), 2.0);
  EXPECT_DOUBLE_EQ(stats::median(even), 2.5);
}

TEST(Stats, QuantileEndpoints) {
  std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 5.0);
}

TEST(Stats, PolyFitRecoversExactQuadratic) {
  std::vector<double> xs, ys;
  for (double x = 0; x < 10; x += 1) {
    xs.push_back(x);
    ys.push_back(3.0 + 2.0 * x + 0.5 * x * x);
  }
  const auto fit = stats::polyFit(xs, ys, 2);
  ASSERT_EQ(fit.coeffs.size(), 3u);
  EXPECT_NEAR(fit.coeffs[0], 3.0, 1e-9);
  EXPECT_NEAR(fit.coeffs[1], 2.0, 1e-9);
  EXPECT_NEAR(fit.coeffs[2], 0.5, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, PolyFitCubicExtrapolates) {
  // Fit 4/3 n^3 on small sizes, predict a large one — the exact pattern the
  // performance modeler uses for flop counts.
  std::vector<double> xs, ys;
  for (double n : {100.0, 200.0, 300.0, 400.0, 500.0}) {
    xs.push_back(n);
    ys.push_back(4.0 / 3.0 * n * n * n);
  }
  const auto fit = stats::polyFit(xs, ys, 3);
  EXPECT_NEAR(fit.eval(8000.0), 4.0 / 3.0 * 8000.0 * 8000.0 * 8000.0,
              1e-3 * 4.0 / 3.0 * 8000.0 * 8000.0 * 8000.0);
}

TEST(Stats, PolyFitRejectsTooFewPoints) {
  std::vector<double> xs{1.0, 2.0};
  std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW(stats::polyFit(xs, ys, 3), InvalidArgument);
}

TEST(Stats, PowerFitRecoversExponent) {
  std::vector<double> xs, ys;
  for (double x : {2.0, 4.0, 8.0, 16.0}) {
    xs.push_back(x);
    ys.push_back(3.5 * std::pow(x, 1.7));
  }
  const auto fit = stats::powerFit(xs, ys);
  EXPECT_NEAR(fit.a, 3.5, 1e-9);
  EXPECT_NEAR(fit.b, 1.7, 1e-9);
}

TEST(Strings, SplitPreservesEmptyFields) {
  const auto parts = util::split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(util::trim("  hi \t\n"), "hi");
  EXPECT_EQ(util::trim(""), "");
  EXPECT_EQ(util::trim("   "), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(util::startsWith("cluster utk", "cluster"));
  EXPECT_FALSE(util::startsWith("cl", "cluster"));
}

TEST(Strings, FormatBytes) {
  EXPECT_EQ(util::formatBytes(512.0), "512.0 B");
  EXPECT_EQ(util::formatBytes(1024.0 * 1024.0), "1.0 MB");
}

TEST(Table, RowArityEnforced) {
  util::Table t({"a", "b"});
  EXPECT_THROW(t.addRow({std::string("x")}), InvalidArgument);
}

TEST(Table, CsvRoundTrip) {
  util::Table t({"size", "time"});
  t.addRow({static_cast<std::int64_t>(8000), 431.25});
  std::ostringstream os;
  t.writeCsv(os);
  EXPECT_EQ(os.str(), "size,time\n8000,431.25\n");
}

TEST(Table, PrintsAlignedHeader) {
  util::Table t({"name"});
  t.addRow({std::string("utk-cluster")});
  std::ostringstream os;
  t.print(os, "hdr");
  const auto s = os.str();
  EXPECT_NE(s.find("== hdr =="), std::string::npos);
  EXPECT_NE(s.find("utk-cluster"), std::string::npos);
}

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(GRADS_REQUIRE(false, "nope"), InvalidArgument);
}

TEST(Error, AssertThrowsInternalError) {
  EXPECT_THROW(GRADS_ASSERT(false, "bug"), InternalError);
}

TEST(Retry, SingleAttemptNeverGrantsARetry) {
  util::Retry retry(util::RetryPolicy::none());
  EXPECT_FALSE(retry.nextDelaySec().has_value());
  EXPECT_EQ(retry.attemptsUsed(), 0);
  // Repeated polling after exhaustion stays exhausted.
  EXPECT_FALSE(retry.nextDelaySec().has_value());
}

TEST(Retry, ZeroBaseDelayBacksOffToZero) {
  util::RetryPolicy p;
  p.maxAttempts = 3;
  p.baseDelaySec = 0.0;
  p.jitterFrac = 0.0;
  util::Retry retry(p);
  EXPECT_DOUBLE_EQ(*retry.nextDelaySec(), 0.0);
  EXPECT_DOUBLE_EQ(*retry.nextDelaySec(), 0.0);  // 0 × backoff stays 0
  EXPECT_FALSE(retry.nextDelaySec().has_value());
  EXPECT_EQ(retry.attemptsUsed(), 2);
}

TEST(Retry, JitterIsDeterministicAcrossIdenticalSeeds) {
  util::RetryPolicy p;
  p.maxAttempts = 5;
  p.jitterFrac = 0.25;
  Rng a(42);
  Rng b(42);
  util::Retry ra(p, &a);
  util::Retry rb(p, &b);
  for (int i = 0; i < 4; ++i) {
    const auto da = ra.nextDelaySec();
    const auto db = rb.nextDelaySec();
    ASSERT_TRUE(da.has_value());
    ASSERT_TRUE(db.has_value());
    EXPECT_DOUBLE_EQ(*da, *db);
    // Jitter stays within ±jitterFrac of the un-jittered delay.
    const double nominal = p.delaySec(i, nullptr);
    EXPECT_GE(*da, nominal * (1.0 - p.jitterFrac));
    EXPECT_LE(*da, nominal * (1.0 + p.jitterFrac));
  }
}

TEST(Retry, BackoffSaturatesAtCap) {
  util::RetryPolicy p;
  p.maxAttempts = 10;
  p.baseDelaySec = 2.0;
  p.backoffFactor = 10.0;
  p.maxDelaySec = 50.0;
  p.jitterFrac = 0.0;
  util::Retry retry(p);
  EXPECT_DOUBLE_EQ(*retry.nextDelaySec(), 2.0);
  EXPECT_DOUBLE_EQ(*retry.nextDelaySec(), 20.0);
  for (int i = 2; i < 9; ++i) {
    EXPECT_DOUBLE_EQ(*retry.nextDelaySec(), 50.0);  // 200, 2000... clamped
  }
  EXPECT_FALSE(retry.nextDelaySec().has_value());
}

TEST(Retry, NominalScheduleIsAPureFunctionOfAttemptIndex) {
  // delaySec(i, nullptr) is the un-jittered schedule the admission
  // frontend combines with retry-after hints: max(hint, delaySec(i)).
  // It must be stateless — same index, same answer, no draws consumed.
  util::RetryPolicy p;
  p.maxAttempts = 6;
  p.baseDelaySec = 3.0;
  p.backoffFactor = 2.0;
  p.maxDelaySec = 20.0;
  p.jitterFrac = 0.5;  // ignored without an RNG
  EXPECT_DOUBLE_EQ(p.delaySec(0, nullptr), 3.0);
  EXPECT_DOUBLE_EQ(p.delaySec(1, nullptr), 6.0);
  EXPECT_DOUBLE_EQ(p.delaySec(2, nullptr), 12.0);
  EXPECT_DOUBLE_EQ(p.delaySec(3, nullptr), 20.0);  // capped
  EXPECT_DOUBLE_EQ(p.delaySec(0, nullptr), 3.0);   // re-query: unchanged
}

TEST(Retry, JitteredScheduleReplaysFromSavedRngState) {
  // The metascheduler snapshots each tenant's RNG stream; after a
  // crash-restart the remaining jittered resubmit schedule must replay
  // bit-identically from the restored state.
  util::RetryPolicy p;
  p.maxAttempts = 8;
  p.baseDelaySec = 5.0;
  p.jitterFrac = 0.3;
  Rng rng(7);
  // Burn a prefix so the saved state is mid-stream, not the seed.
  for (int i = 0; i < 3; ++i) (void)p.delaySec(i, &rng);
  const RngState saved = rng.state();
  std::vector<double> first;
  for (int i = 0; i < 5; ++i) first.push_back(p.delaySec(i, &rng));
  rng.setState(saved);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(p.delaySec(i, &rng), first[static_cast<size_t>(i)]);
  }
}

TEST(Retry, ExhaustionIsPermanentAndCountsAttempts) {
  util::RetryPolicy p;
  p.maxAttempts = 4;  // first try + three retries
  p.jitterFrac = 0.0;
  util::Retry retry(p);
  int granted = 0;
  while (retry.nextDelaySec().has_value()) ++granted;
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(retry.attemptsUsed(), 3);
  // Polling past exhaustion neither grants nor counts.
  EXPECT_FALSE(retry.nextDelaySec().has_value());
  EXPECT_EQ(retry.attemptsUsed(), 3);
}

}  // namespace
}  // namespace grads

#include <gtest/gtest.h>

#include "reschedule/redistribution.hpp"
#include "util/error.hpp"

namespace grads::reschedule {
namespace {

// Brute-force reference: walk every block.
double refBytes(int n, int m, std::size_t elements, std::size_t block,
                double bpe, int from, int to) {
  double count = 0.0;
  for (std::size_t e = 0; e < elements; ++e) {
    const std::size_t j = e / block;
    if (static_cast<int>(j % static_cast<std::size_t>(n)) == from &&
        static_cast<int>(j % static_cast<std::size_t>(m)) == to) {
      count += 1.0;
    }
  }
  return count * bpe;
}

TEST(Redistribution, RejectsBadArguments) {
  EXPECT_THROW(RedistributionPlan(0, 4, 100, 8, 8.0), InvalidArgument);
  EXPECT_THROW(RedistributionPlan(4, 0, 100, 8, 8.0), InvalidArgument);
  EXPECT_THROW(RedistributionPlan(4, 4, 100, 0, 8.0), InvalidArgument);
  EXPECT_THROW(RedistributionPlan(4, 4, 100, 8, 0.0), InvalidArgument);
}

TEST(Redistribution, IdentityWhenRankCountsMatch) {
  const RedistributionPlan plan(4, 4, 1024, 16, 8.0);
  // Block j goes old j%4 → new j%4: everything stays put.
  EXPECT_DOUBLE_EQ(plan.residentBytes(), plan.totalBytes());
  for (int from = 0; from < 4; ++from) {
    for (int to = 0; to < 4; ++to) {
      if (from != to) {
        EXPECT_DOUBLE_EQ(plan.bytes(from, to), 0.0);
      }
    }
  }
}

TEST(Redistribution, TotalIsConserved) {
  const RedistributionPlan plan(3, 5, 10000, 7, 8.0);
  EXPECT_DOUBLE_EQ(plan.totalBytes(), 10000.0 * 8.0);
  double sumInto = 0.0;
  for (int to = 0; to < 5; ++to) sumInto += plan.bytesInto(to);
  EXPECT_DOUBLE_EQ(sumInto, plan.totalBytes());
  double sumFrom = 0.0;
  for (int from = 0; from < 3; ++from) sumFrom += plan.bytesFrom(from);
  EXPECT_DOUBLE_EQ(sumFrom, plan.totalBytes());
}

TEST(Redistribution, MatchesBruteForceIncludingPartialTail) {
  // elements not divisible by block, block pattern not divisible by lcm.
  const int n = 4;
  const int m = 6;
  const std::size_t elements = 12345;
  const std::size_t block = 7;
  const RedistributionPlan plan(n, m, elements, block, 8.0);
  for (int from = 0; from < n; ++from) {
    for (int to = 0; to < m; ++to) {
      EXPECT_DOUBLE_EQ(plan.bytes(from, to),
                       refBytes(n, m, elements, block, 8.0, from, to))
          << from << "->" << to;
    }
  }
}

TEST(Redistribution, CoprimeRanksSpreadUniformly) {
  // With gcd(N,M)=1 every (from,to) pair appears equally often per period.
  const RedistributionPlan plan(3, 4, 3 * 4 * 64 * 100, 64, 8.0);
  const double expected = plan.totalBytes() / 12.0;
  for (int from = 0; from < 3; ++from) {
    for (int to = 0; to < 4; ++to) {
      EXPECT_DOUBLE_EQ(plan.bytes(from, to), expected);
    }
  }
}

TEST(Redistribution, DoublingRanksSplitsEachSource) {
  // 2 → 4 ranks: old rank 0 (blocks 0,2,4,...) feeds exactly new ranks 0
  // and 2; old rank 1 feeds new ranks 1 and 3.
  const RedistributionPlan plan(2, 4, 4096, 8, 8.0);
  EXPECT_GT(plan.bytes(0, 0), 0.0);
  EXPECT_GT(plan.bytes(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(plan.bytes(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(plan.bytes(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(plan.bytes(1, 0), 0.0);
  EXPECT_DOUBLE_EQ(plan.bytes(1, 2), 0.0);
}

struct Shape {
  int n;
  int m;
  std::size_t elements;
  std::size_t block;
};

class RedistSweep : public ::testing::TestWithParam<Shape> {};

TEST_P(RedistSweep, ConservationAndReferenceAgreement) {
  const auto p = GetParam();
  const RedistributionPlan plan(p.n, p.m, p.elements, p.block, 8.0);
  EXPECT_NEAR(plan.totalBytes(), static_cast<double>(p.elements) * 8.0, 1e-6);
  // Spot-check a few pairs against the brute-force walk.
  for (int from = 0; from < p.n; from += std::max(1, p.n / 3)) {
    for (int to = 0; to < p.m; to += std::max(1, p.m / 3)) {
      EXPECT_DOUBLE_EQ(plan.bytes(from, to),
                       refBytes(p.n, p.m, p.elements, p.block, 8.0, from, to));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RedistSweep,
    ::testing::Values(Shape{1, 1, 100, 3}, Shape{8, 8, 65536, 64},
                      Shape{2, 3, 999, 5}, Shape{5, 2, 100000, 64},
                      Shape{8, 12, 123457, 32}, Shape{16, 4, 7, 64},
                      Shape{7, 11, 1000000, 13}));

}  // namespace
}  // namespace grads::reschedule

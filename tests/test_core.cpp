#include <gtest/gtest.h>

#include "apps/qr.hpp"
#include "core/app_manager.hpp"
#include "core/binder.hpp"
#include "grid/load.hpp"
#include "grid/testbeds.hpp"
#include "services/ibp.hpp"
#include "util/error.hpp"

namespace grads::core {
namespace {

struct Fixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::QrTestbed tb;
  std::unique_ptr<services::Gis> gis;
  std::unique_ptr<services::Nws> nws;
  std::unique_ptr<services::Ibp> ibp;
  std::unique_ptr<autopilot::AutopilotManager> autopilot;

  Fixture() {
    tb = grid::buildQrTestbed(g);
    gis = std::make_unique<services::Gis>(g);
    gis->installEverywhere(services::software::kLocalBinder);
    gis->installEverywhere(services::software::kScalapack);
    gis->installEverywhere(services::software::kSrsLibrary);
    gis->installEverywhere(services::software::kAutopilotSensors);
    nws = std::make_unique<services::Nws>(eng, g, 10.0, 0.0, 2);
    nws->start();
    ibp = std::make_unique<services::Ibp>(g);
    autopilot = std::make_unique<autopilot::AutopilotManager>(eng);
  }
};

TEST(Binder, BindsAllDistinctNodesInParallel) {
  Fixture f;
  apps::QrConfig cfg;
  cfg.n = 2000;
  const auto cop = apps::makeQrCop(f.g, cfg);
  Binder binder(f.eng, *f.gis);
  BindReport report;
  std::vector<grid::NodeId> mapping;
  for (const auto id : f.tb.utkNodes) {
    mapping.push_back(id);
    mapping.push_back(id);
  }
  f.eng.spawn(binder.bind(cop, mapping, &report));
  f.eng.run();
  EXPECT_EQ(report.nodesBound, 4);  // 8 ranks on 4 distinct nodes
  // Local binds run in parallel: wall time ≈ one local bind, not four.
  EXPECT_LT(report.seconds, 12.0);
  EXPECT_GT(report.seconds, 4.0);
}

TEST(Binder, MissingLibraryRaisesBindError) {
  Fixture f;
  apps::QrConfig cfg;
  cfg.n = 2000;
  auto cop = apps::makeQrCop(f.g, cfg);
  cop.requiredSoftware.push_back("libnowhere");
  Binder binder(f.eng, *f.gis);
  f.eng.spawn(binder.bind(cop, {f.tb.utkNodes[0]}, nullptr));
  EXPECT_THROW(f.eng.run(), BindError);
}

TEST(Binder, MissingLocalBinderRaises) {
  Fixture f;
  services::Gis bare(f.g);  // nothing installed
  apps::QrConfig cfg;
  const auto cop = apps::makeQrCop(f.g, cfg);
  Binder binder(f.eng, bare);
  f.eng.spawn(binder.bind(cop, {f.tb.utkNodes[0]}, nullptr));
  EXPECT_THROW(f.eng.run(), BindError);
}

TEST(Binder, Ia64CompilesSlower) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildEmanTestbed(g);
  services::Gis gis(g);
  gis.installEverywhere(services::software::kLocalBinder);
  Cop cop;
  cop.name = "x";
  cop.code = [](LaunchContext&, int) -> sim::Task { co_return; };
  Binder binder(eng, gis);
  BindReport ia32;
  BindReport ia64;
  const auto ia32Node = g.clusterNodes(tb.macro.clusters[1])[0];
  const auto ia64Node = g.clusterNodes(tb.ia64)[0];
  eng.spawn(binder.bind(cop, {ia32Node}, &ia32));
  eng.run();
  eng.spawn(binder.bind(cop, {ia64Node}, &ia64));
  eng.run();
  EXPECT_GT(ia64.seconds, ia32.seconds);
}

TEST(Mapper, PicksFasterClusterWhenIdle) {
  Fixture f;
  apps::QrConfig cfg;
  cfg.n = 4000;
  apps::QrPerfModel model(f.g, cfg);
  BestClusterMapper mapper(f.g, model);
  f.eng.runUntil(30.0);
  const auto mapping = mapper.chooseMapping(f.gis->availableNodes(),
                                            f.nws.get());
  ASSERT_EQ(mapping.size(), 8u);  // 4 dual-CPU UTK nodes → 8 ranks
  EXPECT_EQ(f.g.node(mapping[0]).cluster(), f.tb.utk);
}

TEST(Mapper, AvoidsLoadedCluster) {
  Fixture f;
  // Degrade a UTK node badly; the mapper should pick UIUC instead.
  f.g.node(f.tb.utkNodes[0]).injectLoad(6.0);
  f.eng.runUntil(30.0);
  apps::QrConfig cfg;
  cfg.n = 4000;
  apps::QrPerfModel model(f.g, cfg);
  BestClusterMapper mapper(f.g, model);
  const auto mapping = mapper.chooseMapping(f.gis->availableNodes(),
                                            f.nws.get());
  EXPECT_EQ(f.g.node(mapping[0]).cluster(), f.tb.uiuc);
}

TEST(AppManager, RunsQrToCompletionWithoutLoad) {
  Fixture f;
  apps::QrConfig cfg;
  cfg.n = 2000;
  const auto cop = apps::makeQrCop(f.g, cfg);
  AppManager mgr(f.g, *f.gis, f.nws.get(), *f.ibp, *f.autopilot);
  RunBreakdown bd;
  f.eng.spawn(mgr.run(cop, nullptr, ManagerOptions{}, &bd));
  f.eng.run();
  EXPECT_EQ(bd.incarnations, 1);
  ASSERT_EQ(bd.appDuration.size(), 1u);
  EXPECT_GT(bd.appDuration[0], 0.0);
  EXPECT_DOUBLE_EQ(bd.sumSegment(bd.checkpointWrite), 0.0);
  EXPECT_DOUBLE_EQ(bd.sumSegment(bd.checkpointRead), 0.0);
  EXPECT_GT(bd.totalSeconds, bd.appDuration[0]);
  // Fig-1 pipeline segments are all present.
  EXPECT_GT(bd.resourceSelection[0], 0.0);
  EXPECT_GT(bd.perfModeling[0], 0.0);
  EXPECT_GT(bd.gridOverhead[0], 0.0);
  EXPECT_GT(bd.appStart[0], 0.0);
}

TEST(AppManager, ContractPredictionsMatchActualUnloadedRun) {
  // Without load, phase times must stay within the contract tolerances —
  // no violations, no migrations.
  Fixture f;
  apps::QrConfig cfg;
  cfg.n = 3000;
  const auto cop = apps::makeQrCop(f.g, cfg);
  reschedule::StopRestartRescheduler rescheduler(
      *f.gis, f.nws.get(), reschedule::ReschedulerOptions{});
  AppManager mgr(f.g, *f.gis, f.nws.get(), *f.ibp, *f.autopilot);
  RunBreakdown bd;
  f.eng.spawn(mgr.run(cop, &rescheduler, ManagerOptions{}, &bd));
  f.eng.run();
  EXPECT_EQ(bd.incarnations, 1);
  EXPECT_TRUE(rescheduler.decisions().empty());
}

TEST(AppManager, MigratesUnderLoadAndCompletes) {
  // End-to-end §4.1 scenario at small scale: load → violation → stop →
  // checkpoint → restart on the other cluster → finish.
  Fixture f;
  apps::QrConfig cfg;
  cfg.n = 6000;
  const auto cop = apps::makeQrCop(f.g, cfg);
  grid::applyLoadTrace(f.eng, f.g.node(f.tb.utkNodes[0]),
                       grid::LoadTrace::stepAt(60.0, 4.0));
  reschedule::ReschedulerOptions ropts;
  ropts.mode = reschedule::ReschedulerMode::kForcedMigrate;
  reschedule::StopRestartRescheduler rescheduler(*f.gis, f.nws.get(), ropts);
  AppManager mgr(f.g, *f.gis, f.nws.get(), *f.ibp, *f.autopilot);
  RunBreakdown bd;
  f.eng.spawn(mgr.run(cop, &rescheduler, ManagerOptions{}, &bd));
  f.eng.run();
  EXPECT_EQ(bd.incarnations, 2);
  ASSERT_EQ(bd.mappings.size(), 2u);
  EXPECT_EQ(f.g.node(bd.mappings[0][0]).cluster(), f.tb.utk);
  EXPECT_EQ(f.g.node(bd.mappings[1][0]).cluster(), f.tb.uiuc);
  // Checkpoint write cheap, read (across the WAN) expensive.
  EXPECT_GT(bd.sumSegment(bd.checkpointRead),
            10.0 * bd.sumSegment(bd.checkpointWrite));
}

TEST(AppManager, ForcedStayNeverMigrates) {
  Fixture f;
  apps::QrConfig cfg;
  cfg.n = 6000;
  const auto cop = apps::makeQrCop(f.g, cfg);
  grid::applyLoadTrace(f.eng, f.g.node(f.tb.utkNodes[0]),
                       grid::LoadTrace::stepAt(60.0, 4.0));
  reschedule::ReschedulerOptions ropts;
  ropts.mode = reschedule::ReschedulerMode::kForcedStay;
  reschedule::StopRestartRescheduler rescheduler(*f.gis, f.nws.get(), ropts);
  AppManager mgr(f.g, *f.gis, f.nws.get(), *f.ibp, *f.autopilot);
  RunBreakdown bd;
  f.eng.spawn(mgr.run(cop, &rescheduler, ManagerOptions{}, &bd));
  f.eng.run();
  EXPECT_EQ(bd.incarnations, 1);
  EXPECT_GE(rescheduler.decisions().size(), 1u);  // violations were raised
}

TEST(AppManager, MigratedRunBeatsStayUnderHeavyLoad) {
  // The whole point of rescheduling: under heavy sustained load, the
  // migrated run finishes sooner.
  auto runWith = [](reschedule::ReschedulerMode mode) {
    Fixture f;
    apps::QrConfig cfg;
    cfg.n = 7000;
    const auto cop = apps::makeQrCop(f.g, cfg);
    grid::applyLoadTrace(f.eng, f.g.node(f.tb.utkNodes[0]),
                         grid::LoadTrace::stepAt(60.0, 6.0));
    reschedule::ReschedulerOptions ropts;
    ropts.mode = mode;
    reschedule::StopRestartRescheduler rescheduler(*f.gis, f.nws.get(), ropts);
    AppManager mgr(f.g, *f.gis, f.nws.get(), *f.ibp, *f.autopilot);
    RunBreakdown bd;
    f.eng.spawn(mgr.run(cop, &rescheduler, ManagerOptions{}, &bd));
    f.eng.run();
    return bd.totalSeconds;
  };
  const double stay = runWith(reschedule::ReschedulerMode::kForcedStay);
  const double migrate = runWith(reschedule::ReschedulerMode::kForcedMigrate);
  EXPECT_LT(migrate, stay);
}

TEST(AppManager, RejectsIncompleteCop) {
  Fixture f;
  Cop broken;
  broken.name = "broken";
  AppManager mgr(f.g, *f.gis, f.nws.get(), *f.ibp, *f.autopilot);
  f.eng.spawn(mgr.run(broken, nullptr, ManagerOptions{}, nullptr));
  EXPECT_THROW(f.eng.run(), InvalidArgument);
}

}  // namespace
}  // namespace grads::core

#include <gtest/gtest.h>

#include "grid/load.hpp"
#include "microgrid/dml.hpp"
#include "util/error.hpp"

namespace grads::microgrid {
namespace {

TEST(Dml, ParsesSwapExperimentConfig) {
  const auto spec = parseDml(swapExperimentDml());
  ASSERT_EQ(spec.clusters.size(), 3u);
  EXPECT_EQ(spec.clusters[0].name, "utk");
  EXPECT_EQ(spec.clusters[0].site, "UTK");
  EXPECT_EQ(spec.clusters[0].lanKind, "gigabit");
  ASSERT_EQ(spec.clusters[0].nodes.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.clusters[0].nodes[0].mhz, 550.0);
  EXPECT_EQ(spec.clusters[0].nodes[0].count, 3);
  EXPECT_EQ(spec.totalNodes(), 7u);
  ASSERT_EQ(spec.wans.size(), 3u);
  EXPECT_DOUBLE_EQ(spec.wans[0].latencySec, 0.011);
}

TEST(Dml, CommentsAndBlankLinesIgnored) {
  const auto spec = parseDml(
      "# header comment\n"
      "\n"
      "cluster a SITE gigabit  # trailing comment\n"
      "  node 500 1 1.0 0.4 x2\n"
      "end\n");
  ASSERT_EQ(spec.clusters.size(), 1u);
  EXPECT_EQ(spec.totalNodes(), 2u);
}

TEST(Dml, RejectsMalformedInput) {
  EXPECT_THROW(parseDml("bogus keyword\n"), InvalidArgument);
  EXPECT_THROW(parseDml("node 1 1 1 1 x1\n"), InvalidArgument);  // no cluster
  EXPECT_THROW(parseDml("cluster a S gigabit\nnode 1 1 1 1 x1\n"),
               InvalidArgument);  // unterminated
  EXPECT_THROW(parseDml("cluster a S token-ring\nnode 1 1 1 1 x1\nend\n"),
               InvalidArgument);  // unknown lan
  EXPECT_THROW(parseDml("cluster a S gigabit\nnode x 1 1 1 x1\nend\n"),
               InvalidArgument);  // bad number
  EXPECT_THROW(parseDml("cluster a S gigabit\nnode 1 1 1 1 3\nend\n"),
               InvalidArgument);  // count without x
  EXPECT_THROW(parseDml("cluster a S gigabit\nend\n"),
               InvalidArgument);  // empty cluster
  EXPECT_THROW(
      parseDml("cluster a S gigabit\nnode 1 1 1 1 x1\nend\nwan a b 0.01 1e6\n"),
      InvalidArgument);  // unknown wan endpoint
}

TEST(Dml, InstantiateBuildsMatchingGrid) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto spec = parseDml(swapExperimentDml());
  instantiate(g, spec);
  EXPECT_EQ(g.nodeCount(), 7u);
  EXPECT_EQ(g.clusterCount(), 3u);
  const auto utk = g.findCluster("utk");
  ASSERT_TRUE(utk.has_value());
  const auto nodes = g.clusterNodes(*utk);
  ASSERT_EQ(nodes.size(), 3u);
  EXPECT_DOUBLE_EQ(g.node(nodes[0]).spec().mhz, 550.0);
  // The §4.2.2 latencies are preserved.
  const auto uiuc = g.findCluster("uiuc");
  const auto ucsd = g.findCluster("ucsd");
  EXPECT_NEAR(g.route(nodes[0], g.clusterNodes(*uiuc)[0]).latencySec, 0.011,
              0.001);
  EXPECT_NEAR(g.route(g.clusterNodes(*ucsd)[0], nodes[0]).latencySec, 0.030,
              0.001);
}

TEST(Dml, LoadTracesParsedAndApplied) {
  const char* dml =
      "cluster a S gigabit\n"
      "  node 500 1 1.0 0.4 x2\n"
      "end\n"
      "load a0 step 10 2.0\n"
      "load a1 pulse 5 15 1.0\n";
  const auto spec = parseDml(dml);
  ASSERT_EQ(spec.loads.size(), 2u);
  EXPECT_EQ(spec.loads[0].node, "a0");
  EXPECT_DOUBLE_EQ(spec.loads[0].trace.weightAt(11.0), 2.0);
  EXPECT_DOUBLE_EQ(spec.loads[1].trace.weightAt(20.0), 0.0);

  sim::Engine eng;
  grid::Grid g(eng);
  instantiate(g, spec);
  eng.runUntil(12.0);
  EXPECT_NEAR(g.node(*g.findNode("a0")).cpuAvailability(), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(g.node(*g.findNode("a1")).cpuAvailability(), 0.5, 1e-9);
  eng.runUntil(20.0);
  EXPECT_NEAR(g.node(*g.findNode("a1")).cpuAvailability(), 1.0, 1e-9);
}

TEST(Dml, LoadErrorsRejected) {
  EXPECT_THROW(parseDml("cluster a S gigabit\nload x step 1 1\n"),
               InvalidArgument);  // load inside cluster
  EXPECT_THROW(parseDml("load a0 ramp 1 2\n"), InvalidArgument);
  EXPECT_THROW(parseDml("load a0 pulse 9 3 1\n"), InvalidArgument);
}

TEST(Dml, LoadOnUnknownNodeRejectedAtInstantiate) {
  const auto spec = parseDml(
      "cluster a S gigabit\n  node 500 1 1.0 0.4 x1\nend\n"
      "load nosuch step 1 1\n");
  sim::Engine eng;
  grid::Grid g(eng);
  EXPECT_THROW(instantiate(g, spec), InvalidArgument);
}

TEST(Dml, EmulationOverheadsSlowResources) {
  sim::Engine eng1;
  sim::Engine eng2;
  grid::Grid direct(eng1);
  grid::Grid emulated(eng2);
  const auto spec = parseDml(swapExperimentDml());
  instantiate(direct, spec);
  EmulationOptions emu;
  instantiate(emulated, spec, &emu);
  const auto n1 = direct.clusterNodes(*direct.findCluster("utk"))[0];
  const auto n2 = emulated.clusterNodes(*emulated.findCluster("utk"))[0];
  EXPECT_LT(emulated.node(n2).spec().effectiveFlops(),
            direct.node(n1).spec().effectiveFlops());
  // ~3% CPU overhead.
  EXPECT_NEAR(emulated.node(n2).spec().effectiveFlops() /
                  direct.node(n1).spec().effectiveFlops(),
              0.97, 1e-9);
  // Network: higher latency, lower bandwidth.
  const auto r1 = direct.route(n1, direct.clusterNodes(*direct.findCluster("uiuc"))[0]);
  const auto r2 = emulated.route(n2, emulated.clusterNodes(*emulated.findCluster("uiuc"))[0]);
  EXPECT_GT(r2.latencySec, r1.latencySec);
}

TEST(Dml, EmulatedRunTracksDirectRunClosely) {
  // MicroGrid fidelity in miniature: the same computation on the emulated
  // grid finishes within a few percent of the direct grid.
  auto runOn = [](bool emulated) {
    sim::Engine eng;
    grid::Grid g(eng);
    const auto spec = parseDml(swapExperimentDml());
    const EmulationOptions emu;
    instantiate(g, spec, emulated ? &emu : nullptr);
    const auto node = g.clusterNodes(*g.findCluster("utk"))[0];
    eng.spawn([](grid::Grid& g, grid::NodeId n) -> sim::Task {
      co_await g.node(n).compute(1e10);
    }(g, node));
    eng.run();
    return eng.now();
  };
  const double direct = runOn(false);
  const double emulated = runOn(true);
  EXPECT_GT(emulated, direct);
  EXPECT_LT(emulated, 1.06 * direct);
}

}  // namespace
}  // namespace grads::microgrid

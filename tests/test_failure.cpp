#include <gtest/gtest.h>

#include <algorithm>

#include "apps/qr.hpp"
#include "core/app_manager.hpp"
#include "grid/testbeds.hpp"
#include "reschedule/failure.hpp"
#include "reschedule/rescheduler.hpp"
#include "services/ibp.hpp"
#include "services/nws.hpp"

namespace grads::reschedule {
namespace {

struct Fixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::QrTestbed tb;
  std::unique_ptr<services::Gis> gis;
  std::unique_ptr<services::Nws> nws;
  std::unique_ptr<services::Ibp> ibp;
  std::unique_ptr<autopilot::AutopilotManager> autopilot;
  std::unique_ptr<FailureInjector> injector;

  Fixture() {
    tb = grid::buildQrTestbed(g);
    gis = std::make_unique<services::Gis>(g);
    gis->installEverywhere(services::software::kLocalBinder);
    gis->installEverywhere(services::software::kScalapack);
    gis->installEverywhere(services::software::kSrsLibrary);
    gis->installEverywhere(services::software::kAutopilotSensors);
    nws = std::make_unique<services::Nws>(eng, g, 10.0, 0.0, 3);
    nws->start();
    ibp = std::make_unique<services::Ibp>(g);
    autopilot = std::make_unique<autopilot::AutopilotManager>(eng);
    injector = std::make_unique<FailureInjector>(eng, *gis);
  }

  /// Confines the app to the UIUC cluster so checkpoints and restores stay
  /// on the fast Myrinet LAN (cross-WAN restores cost as much as full
  /// recompute on this testbed — see the fault_tolerance bench).
  void confineToUiuc() {
    for (const auto node : tb.utkNodes) gis->setNodeUp(node, false);
  }

  core::RunBreakdown runQr(std::size_t n, std::size_t ckptEvery) {
    apps::QrConfig cfg;
    cfg.n = n;
    cfg.checkpointEveryPanels = ckptEvery;
    const core::Cop cop = apps::makeQrCop(g, cfg);
    core::AppManager mgr(g, *gis, nws.get(), *ibp, *autopilot);
    core::ManagerOptions mopts;
    mopts.monitorContract = false;        // isolate the failure path
    mopts.stableDepot = tb.uiucNodes[7];  // a depot that never fails
    mopts.failures = injector.get();
    core::RunBreakdown bd;
    eng.spawn(mgr.run(cop, nullptr, mopts, &bd), "qr-manager");
    eng.run();
    return bd;
  }
};

TEST(FailureInjector, MarksNodeDownAndSignalsRss) {
  Fixture f;
  Rss rss(f.eng, "app");
  rss.beginIncarnation(4);
  f.injector->watch(rss);
  f.injector->scheduleNodeFailure(f.tb.utkNodes[1], 50.0, 5.0);
  f.eng.runUntil(51.0);
  EXPECT_FALSE(f.gis->isNodeUp(f.tb.utkNodes[1]));
  EXPECT_FALSE(rss.failureSignaled());  // heartbeat timeout not yet expired
  f.eng.runUntil(56.0);
  EXPECT_TRUE(rss.failureSignaled());
  EXPECT_EQ(rss.failedNode(), f.tb.utkNodes[1]);
  EXPECT_EQ(f.injector->failuresInjected(), 1u);
}

TEST(FailureInjector, RecoveryRestoresAvailability) {
  Fixture f;
  f.injector->scheduleNodeFailure(f.tb.utkNodes[0], 10.0);
  f.injector->scheduleNodeRecovery(f.tb.utkNodes[0], 100.0);
  f.eng.runUntil(50.0);
  EXPECT_FALSE(f.gis->isNodeUp(f.tb.utkNodes[0]));
  f.eng.runUntil(150.0);
  EXPECT_TRUE(f.gis->isNodeUp(f.tb.utkNodes[0]));
}

TEST(FailureInjector, BeginIncarnationClearsSignal) {
  sim::Engine eng;
  Rss rss(eng, "app");
  rss.beginIncarnation(2);
  rss.markFailure(3);
  EXPECT_TRUE(rss.failureSignaled());
  rss.beginIncarnation(2);
  EXPECT_FALSE(rss.failureSignaled());
}

TEST(FailureInjector, DoubleFailureIsIdempotent) {
  Fixture f;
  Rss rss(f.eng, "app");
  rss.beginIncarnation(4);
  f.injector->watch(rss);
  f.injector->failNow(f.tb.utkNodes[2], 5.0, 0.0);
  f.eng.runUntil(10.0);
  EXPECT_TRUE(rss.failureSignaled());
  EXPECT_EQ(f.injector->failuresInjected(), 1u);
  rss.beginIncarnation(4);  // restart clears the signal
  // Failing an already-down node is a no-op: no double count, no re-signal.
  f.injector->failNow(f.tb.utkNodes[2], 5.0, 0.0);
  f.eng.runUntil(20.0);
  EXPECT_FALSE(rss.failureSignaled());
  EXPECT_EQ(f.injector->failuresInjected(), 1u);
}

TEST(FailureInjector, RecoveringAnUpNodeIsANoOp) {
  Fixture f;
  // Administratively drained (directory-down) but reachable: the node never
  // failed, so recoverNow must not resurrect its directory entry.
  f.gis->setNodeUp(f.tb.utkNodes[3], false);
  f.injector->recoverNow(f.tb.utkNodes[3]);
  EXPECT_FALSE(f.gis->isNodeUp(f.tb.utkNodes[3]));
  EXPECT_TRUE(f.gis->isNodeReachable(f.tb.utkNodes[3]));
}

TEST(Recovery, RecoveredNodeRejoinsAvailablePool) {
  Fixture f;
  const auto node = f.tb.uiucNodes[2];
  f.injector->scheduleNodeFailure(node, 10.0, 5.0);
  f.injector->scheduleNodeRecovery(node, 80.0);
  f.eng.runUntil(40.0);
  auto avail = f.gis->availableNodes();
  EXPECT_EQ(std::count(avail.begin(), avail.end(), node), 0);
  f.eng.runUntil(100.0);
  avail = f.gis->availableNodes();
  EXPECT_EQ(std::count(avail.begin(), avail.end(), node), 1);
  EXPECT_TRUE(f.gis->isNodeReachable(node));
}

TEST(Recovery, SchedulerReselectsRecoveredCluster) {
  Fixture f;
  apps::QrConfig cfg;
  cfg.n = 12000;
  const core::Cop cop = apps::makeQrCop(f.g, cfg);
  std::vector<grid::NodeId> mapping;  // the app sits on loaded UTK
  for (const auto id : f.tb.utkNodes) {
    mapping.push_back(id);
    mapping.push_back(id);
  }
  f.g.node(f.tb.utkNodes[0]).injectLoad(4.0);
  // The whole UIUC cluster fails: the directory stops offering it.
  for (const auto id : f.tb.uiucNodes) {
    f.injector->scheduleNodeFailure(id, 5.0, 5.0);
  }
  f.eng.runUntil(60.0);
  StopRestartRescheduler r(*f.gis, f.nws.get(), ReschedulerOptions{});
  EXPECT_FALSE(r.evaluate(cop, mapping, 5).migrate);  // nowhere better to go
  // The cluster recovers; once NWS has fresh samples the scheduler selects
  // the recovered nodes again.
  for (const auto id : f.tb.uiucNodes) {
    f.injector->scheduleNodeRecovery(id, 70.0);
  }
  f.eng.runUntil(160.0);
  const auto d = r.evaluate(cop, mapping, 5);
  EXPECT_TRUE(d.migrate);
  EXPECT_EQ(f.g.node(d.target[0]).cluster(), f.tb.uiuc);
}

TEST(Recovery, OpportunisticReschedulingUsesRecoveredNodes) {
  Fixture f;
  apps::QrConfig cfg;
  cfg.n = 12000;
  const core::Cop cop = apps::makeQrCop(f.g, cfg);
  std::vector<grid::NodeId> mapping;
  for (const auto id : f.tb.utkNodes) {
    mapping.push_back(id);
    mapping.push_back(id);
  }
  f.g.node(f.tb.utkNodes[0]).injectLoad(4.0);
  for (const auto id : f.tb.uiucNodes) {
    f.injector->scheduleNodeFailure(id, 5.0, 5.0);
  }
  f.eng.runUntil(60.0);

  ReschedulerOptions opts;
  opts.opportunistic = true;
  StopRestartRescheduler r(*f.gis, f.nws.get(), opts);
  Rss rss(f.eng, cop.name);
  rss.beginIncarnation(8);
  StopRestartRescheduler::RunningApp handle;
  handle.cop = &cop;
  handle.rss = &rss;
  handle.mapping = [&mapping] { return mapping; };
  handle.phase = [] { return std::size_t{5}; };
  r.registerRunning(cop.name, handle);

  // UIUC dead → the completion event finds nothing worth migrating to.
  r.onAppCompleted();
  EXPECT_FALSE(rss.stopRequested());

  // The cluster recovers → the next completion event migrates onto it.
  for (const auto id : f.tb.uiucNodes) {
    f.injector->scheduleNodeRecovery(id, 70.0);
  }
  f.eng.runUntil(160.0);
  r.onAppCompleted();
  EXPECT_TRUE(rss.stopRequested());
}

TEST(FaultTolerance, QrSurvivesNodeFailureWithPeriodicCheckpoints) {
  Fixture f;
  f.confineToUiuc();
  // Fail a UIUC worker mid-run; checkpoints every 16 panels to uiuc7.
  f.injector->scheduleNodeFailure(f.tb.uiucNodes[1], 150.0, 5.0);
  const auto bd = f.runQr(6000, 16);
  EXPECT_EQ(bd.incarnations, 2);
  ASSERT_EQ(bd.mappings.size(), 2u);
  // The restart avoided the failed node: incarnation 2 must not use it.
  for (const auto node : bd.mappings[1]) {
    EXPECT_NE(node, f.tb.uiucNodes[1]);
  }
  EXPECT_GT(bd.totalSeconds, 150.0);
}

TEST(FaultTolerance, PeriodicCheckpointsBoundLostWork) {
  Fixture f;
  f.confineToUiuc();
  f.injector->scheduleNodeFailure(f.tb.uiucNodes[1], 200.0, 5.0);
  const auto withCkpt = f.runQr(6000, 12);

  Fixture f2;
  f2.confineToUiuc();
  f2.injector->scheduleNodeFailure(f2.tb.uiucNodes[1], 200.0, 5.0);
  const auto withoutCkpt = f2.runQr(6000, 0);

  EXPECT_EQ(withCkpt.incarnations, 2);
  EXPECT_EQ(withoutCkpt.incarnations, 2);
  // Without periodic checkpoints the app restarts from scratch and reads no
  // checkpoint; with them it resumes mid-stream.
  EXPECT_DOUBLE_EQ(withoutCkpt.sumSegment(withoutCkpt.checkpointRead), 0.0);
  EXPECT_GT(withCkpt.sumSegment(withCkpt.checkpointRead), 0.0);
  EXPECT_LT(withCkpt.totalSeconds, withoutCkpt.totalSeconds);
}

TEST(FaultTolerance, NoCheckpointRestartLosesEverything) {
  Fixture f;
  f.confineToUiuc();
  f.injector->scheduleNodeFailure(f.tb.uiucNodes[0], 100.0, 5.0);
  const auto bd = f.runQr(5000, 0);
  EXPECT_EQ(bd.incarnations, 2);
  // Incarnation 2 recomputed from phase 0: its duration is at least the
  // full uninterrupted runtime of the whole problem on UIUC.
  ASSERT_EQ(bd.appDuration.size(), 2u);
  EXPECT_GT(bd.appDuration[1], bd.appDuration[0]);
}

TEST(FaultTolerance, LaunchRetriesThroughStaleGisWindow) {
  Fixture f;
  f.confineToUiuc();
  // Fail a worker with a long stale-directory window: the restart maps off
  // the stale GIS, binds onto the corpse, and must retry on a corrected
  // mapping instead of dying with BindError.
  f.injector->scheduleNodeFailure(f.tb.uiucNodes[1], 150.0, 5.0, 60.0);
  const auto bd = f.runQr(6000, 16);
  EXPECT_GE(bd.launchFailures, 1);
  EXPECT_GT(bd.totalSeconds, 150.0);
  // The mapping that finally bound avoids the failed node.
  ASSERT_FALSE(bd.mappings.empty());
  for (const auto node : bd.mappings.back()) {
    EXPECT_NE(node, f.tb.uiucNodes[1]);
  }
}

TEST(FaultTolerance, DarkDepotFallsBackToScratchRestart) {
  Fixture f;
  f.confineToUiuc();
  f.injector->scheduleNodeFailure(f.tb.uiucNodes[1], 150.0, 5.0);
  // The checkpoint depot goes dark just after the failure and never returns:
  // the restore pre-flight finds no readable generation, and with no retry
  // budget the manager must restart from scratch rather than crash.
  f.eng.scheduleDaemonAt(151.0, [&f] {
    f.ibp->setDepotUp(f.tb.uiucNodes[7], false);
  });
  const auto bd = f.runQr(5000, 12);
  EXPECT_EQ(bd.incarnations, 2);
  // No checkpoint was read — incarnation 2 recomputed everything — yet the
  // run still finished.
  EXPECT_DOUBLE_EQ(bd.sumSegment(bd.checkpointRead), 0.0);
  EXPECT_GT(bd.totalSeconds, 150.0);

  // Control: same failure with the depot healthy restores mid-stream.
  Fixture f2;
  f2.confineToUiuc();
  f2.injector->scheduleNodeFailure(f2.tb.uiucNodes[1], 150.0, 5.0);
  const auto healthy = f2.runQr(5000, 12);
  EXPECT_GT(healthy.sumSegment(healthy.checkpointRead), 0.0);
}

TEST(FaultTolerance, CheckpointOverheadVisibleWithoutFailure) {
  Fixture f;
  f.confineToUiuc();
  const auto none = f.runQr(4000, 0);
  Fixture f2;
  f2.confineToUiuc();
  const auto frequent = f2.runQr(4000, 4);
  EXPECT_EQ(none.incarnations, 1);
  EXPECT_EQ(frequent.incarnations, 1);
  // Periodic checkpointing costs time even when nothing fails.
  EXPECT_GT(frequent.totalSeconds, none.totalSeconds);
  EXPECT_GT(frequent.sumSegment(frequent.checkpointWrite), 0.0);
}

}  // namespace
}  // namespace grads::reschedule

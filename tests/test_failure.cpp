#include <gtest/gtest.h>

#include "apps/qr.hpp"
#include "core/app_manager.hpp"
#include "grid/testbeds.hpp"
#include "reschedule/failure.hpp"
#include "services/ibp.hpp"
#include "services/nws.hpp"

namespace grads::reschedule {
namespace {

struct Fixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::QrTestbed tb;
  std::unique_ptr<services::Gis> gis;
  std::unique_ptr<services::Nws> nws;
  std::unique_ptr<services::Ibp> ibp;
  std::unique_ptr<autopilot::AutopilotManager> autopilot;
  std::unique_ptr<FailureInjector> injector;

  Fixture() {
    tb = grid::buildQrTestbed(g);
    gis = std::make_unique<services::Gis>(g);
    gis->installEverywhere(services::software::kLocalBinder);
    gis->installEverywhere(services::software::kScalapack);
    gis->installEverywhere(services::software::kSrsLibrary);
    gis->installEverywhere(services::software::kAutopilotSensors);
    nws = std::make_unique<services::Nws>(eng, g, 10.0, 0.0, 3);
    nws->start();
    ibp = std::make_unique<services::Ibp>(g);
    autopilot = std::make_unique<autopilot::AutopilotManager>(eng);
    injector = std::make_unique<FailureInjector>(eng, *gis);
  }

  /// Confines the app to the UIUC cluster so checkpoints and restores stay
  /// on the fast Myrinet LAN (cross-WAN restores cost as much as full
  /// recompute on this testbed — see the fault_tolerance bench).
  void confineToUiuc() {
    for (const auto node : tb.utkNodes) gis->setNodeUp(node, false);
  }

  core::RunBreakdown runQr(std::size_t n, std::size_t ckptEvery) {
    apps::QrConfig cfg;
    cfg.n = n;
    cfg.checkpointEveryPanels = ckptEvery;
    const core::Cop cop = apps::makeQrCop(g, cfg);
    core::AppManager mgr(g, *gis, nws.get(), *ibp, *autopilot);
    core::ManagerOptions mopts;
    mopts.monitorContract = false;        // isolate the failure path
    mopts.stableDepot = tb.uiucNodes[7];  // a depot that never fails
    mopts.failures = injector.get();
    core::RunBreakdown bd;
    eng.spawn(mgr.run(cop, nullptr, mopts, &bd), "qr-manager");
    eng.run();
    return bd;
  }
};

TEST(FailureInjector, MarksNodeDownAndSignalsRss) {
  Fixture f;
  Rss rss(f.eng, "app");
  rss.beginIncarnation(4);
  f.injector->watch(rss);
  f.injector->scheduleNodeFailure(f.tb.utkNodes[1], 50.0, 5.0);
  f.eng.runUntil(51.0);
  EXPECT_FALSE(f.gis->isNodeUp(f.tb.utkNodes[1]));
  EXPECT_FALSE(rss.failureSignaled());  // heartbeat timeout not yet expired
  f.eng.runUntil(56.0);
  EXPECT_TRUE(rss.failureSignaled());
  EXPECT_EQ(rss.failedNode(), f.tb.utkNodes[1]);
  EXPECT_EQ(f.injector->failuresInjected(), 1u);
}

TEST(FailureInjector, RecoveryRestoresAvailability) {
  Fixture f;
  f.injector->scheduleNodeFailure(f.tb.utkNodes[0], 10.0);
  f.injector->scheduleNodeRecovery(f.tb.utkNodes[0], 100.0);
  f.eng.runUntil(50.0);
  EXPECT_FALSE(f.gis->isNodeUp(f.tb.utkNodes[0]));
  f.eng.runUntil(150.0);
  EXPECT_TRUE(f.gis->isNodeUp(f.tb.utkNodes[0]));
}

TEST(FailureInjector, BeginIncarnationClearsSignal) {
  sim::Engine eng;
  Rss rss(eng, "app");
  rss.beginIncarnation(2);
  rss.markFailure(3);
  EXPECT_TRUE(rss.failureSignaled());
  rss.beginIncarnation(2);
  EXPECT_FALSE(rss.failureSignaled());
}

TEST(FaultTolerance, QrSurvivesNodeFailureWithPeriodicCheckpoints) {
  Fixture f;
  f.confineToUiuc();
  // Fail a UIUC worker mid-run; checkpoints every 16 panels to uiuc7.
  f.injector->scheduleNodeFailure(f.tb.uiucNodes[1], 150.0, 5.0);
  const auto bd = f.runQr(6000, 16);
  EXPECT_EQ(bd.incarnations, 2);
  ASSERT_EQ(bd.mappings.size(), 2u);
  // The restart avoided the failed node: incarnation 2 must not use it.
  for (const auto node : bd.mappings[1]) {
    EXPECT_NE(node, f.tb.uiucNodes[1]);
  }
  EXPECT_GT(bd.totalSeconds, 150.0);
}

TEST(FaultTolerance, PeriodicCheckpointsBoundLostWork) {
  Fixture f;
  f.confineToUiuc();
  f.injector->scheduleNodeFailure(f.tb.uiucNodes[1], 200.0, 5.0);
  const auto withCkpt = f.runQr(6000, 12);

  Fixture f2;
  f2.confineToUiuc();
  f2.injector->scheduleNodeFailure(f2.tb.uiucNodes[1], 200.0, 5.0);
  const auto withoutCkpt = f2.runQr(6000, 0);

  EXPECT_EQ(withCkpt.incarnations, 2);
  EXPECT_EQ(withoutCkpt.incarnations, 2);
  // Without periodic checkpoints the app restarts from scratch and reads no
  // checkpoint; with them it resumes mid-stream.
  EXPECT_DOUBLE_EQ(withoutCkpt.sumSegment(withoutCkpt.checkpointRead), 0.0);
  EXPECT_GT(withCkpt.sumSegment(withCkpt.checkpointRead), 0.0);
  EXPECT_LT(withCkpt.totalSeconds, withoutCkpt.totalSeconds);
}

TEST(FaultTolerance, NoCheckpointRestartLosesEverything) {
  Fixture f;
  f.confineToUiuc();
  f.injector->scheduleNodeFailure(f.tb.uiucNodes[0], 100.0, 5.0);
  const auto bd = f.runQr(5000, 0);
  EXPECT_EQ(bd.incarnations, 2);
  // Incarnation 2 recomputed from phase 0: its duration is at least the
  // full uninterrupted runtime of the whole problem on UIUC.
  ASSERT_EQ(bd.appDuration.size(), 2u);
  EXPECT_GT(bd.appDuration[1], bd.appDuration[0]);
}

TEST(FaultTolerance, CheckpointOverheadVisibleWithoutFailure) {
  Fixture f;
  f.confineToUiuc();
  const auto none = f.runQr(4000, 0);
  Fixture f2;
  f2.confineToUiuc();
  const auto frequent = f2.runQr(4000, 4);
  EXPECT_EQ(none.incarnations, 1);
  EXPECT_EQ(frequent.incarnations, 1);
  // Periodic checkpointing costs time even when nothing fails.
  EXPECT_GT(frequent.totalSeconds, none.totalSeconds);
  EXPECT_GT(frequent.sumSegment(frequent.checkpointWrite), 0.0);
}

}  // namespace
}  // namespace grads::reschedule

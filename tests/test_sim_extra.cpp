// Regression and edge-case tests for the simulation substrate, including
// the floating-point time-quantum hazard and the daemon-event semantics
// that periodic services rely on.

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/ps_resource.hpp"
#include "sim/sync.hpp"
#include "util/error.hpp"

namespace grads::sim {
namespace {

TEST(EngineDaemon, RunReturnsWhenOnlyDaemonEventsRemain) {
  Engine eng;
  int daemonTicks = 0;
  // A self-rearming daemon (like NWS sampling).
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [&eng, &daemonTicks, tick] {
    ++daemonTicks;
    eng.scheduleDaemon(10.0, *tick);
  };
  eng.scheduleDaemon(10.0, *tick);
  bool workDone = false;
  eng.schedule(35.0, [&workDone] { workDone = true; });
  eng.run();  // must terminate despite the endless daemon
  EXPECT_TRUE(workDone);
  EXPECT_EQ(eng.now(), 35.0);
  EXPECT_EQ(daemonTicks, 3);  // 10, 20, 30 fired before the last real event
}

TEST(EngineDaemon, DaemonOnlyQueueDoesNotRun) {
  Engine eng;
  int ticks = 0;
  eng.scheduleDaemon(1.0, [&ticks] { ++ticks; });
  eng.run();
  EXPECT_EQ(ticks, 0);
  EXPECT_EQ(eng.now(), 0.0);
}

TEST(EngineDaemon, RunUntilProcessesDaemons) {
  Engine eng;
  int ticks = 0;
  eng.scheduleDaemon(1.0, [&ticks] { ++ticks; });
  eng.scheduleDaemonAt(2.0, [&ticks] { ++ticks; });
  eng.runUntil(5.0);
  EXPECT_EQ(ticks, 2);  // runUntil drives the clock regardless
}

TEST(EngineDaemon, CancelledRealEventStillAllowsTermination) {
  Engine eng;
  auto h = eng.schedule(5.0, [] { FAIL() << "cancelled event fired"; });
  h.cancel();
  auto tick = std::make_shared<std::function<void()>>();
  int daemonTicks = 0;
  *tick = [&eng, &daemonTicks, tick] {
    ++daemonTicks;
    eng.scheduleDaemon(1.0, *tick);
  };
  eng.scheduleDaemon(1.0, *tick);
  eng.run();  // terminates once the cancelled slot at t=5 is drained
  EXPECT_LE(eng.now(), 5.0);
}

TEST(PsResourceRegression, TinyWorkOnFastResourceAtLargeTime) {
  // Regression for the time-quantum spin: at t≈5e2 the ulp of virtual time
  // times a 1.3e8 B/s rate exceeds the residual of a 64-byte job, which
  // once live-locked the engine. The quantum-aware completion must finish.
  Engine eng;
  PsResource link(eng, 131072000.0);  // ~125 MB/s
  double doneAt = -1.0;
  eng.schedule(535.0755, [&eng, &link, &doneAt] {
    eng.spawn([](PsResource& r, double* t) -> Task {
      for (int i = 0; i < 100; ++i) co_await r.consume(64.0);
      *t = r.engine().now();
    }(link, &doneAt));
  });
  eng.run();
  EXPECT_GT(doneAt, 535.0);
  EXPECT_LT(doneAt, 536.0);
}

TEST(PsResourceRegression, TinyWorkAtHugeVirtualTime) {
  Engine eng;
  eng.runUntil(1e9);  // a year-scale virtual clock
  PsResource cpu(eng, 1e9);
  bool done = false;
  eng.spawn([](PsResource& r, bool* done) -> Task {
    co_await r.consume(1.0);  // one flop
    *done = true;
  }(cpu, &done));
  eng.run();
  EXPECT_TRUE(done);
}

Task throwingChild(Engine& eng) {
  co_await sleepFor(eng, 1.0);
  throw Error("child boom");
}

Task joinSetRethrows(Engine& eng, bool* caught) {
  JoinSet js(eng);
  js.spawn(throwingChild(eng));
  js.spawn([](Engine& e) -> Task { co_await sleepFor(e, 2.0); }(eng));
  try {
    co_await js.join();
  } catch (const Error&) {
    *caught = true;
  }
}

TEST(JoinSetExtra, JoinRethrowsFirstChildException) {
  Engine eng;
  bool caught = false;
  eng.spawn(joinSetRethrows(eng, &caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(JoinSetExtra, CountsChildren) {
  Engine eng;
  JoinSet js(eng);
  for (int i = 0; i < 3; ++i) {
    js.spawn([](Engine& e) -> Task { co_await sleepFor(e, 1.0); }(eng));
  }
  EXPECT_EQ(js.totalSpawned(), 3u);
  EXPECT_EQ(js.liveChildren(), 3u);
  eng.spawn(js.join());
  eng.run();
  EXPECT_EQ(js.liveChildren(), 0u);
}

TEST(PsResourceExtra, CompletedWorkAccumulatesAcrossPhases) {
  Engine eng;
  PsResource cpu(eng, 10.0);
  eng.spawn([](PsResource& r) -> Task {
    co_await r.consume(30.0);
    co_await r.consume(20.0);
  }(cpu));
  eng.run();
  EXPECT_DOUBLE_EQ(cpu.completedWork(), 50.0);
  EXPECT_DOUBLE_EQ(eng.now(), 5.0);
}

TEST(PsResourceExtra, ManySimultaneousFinishers) {
  // 64 identical jobs started together must all complete at the same time
  // without ordering artifacts.
  Engine eng;
  PsResource cpu(eng, 64.0);
  int finished = 0;
  for (int i = 0; i < 64; ++i) {
    eng.spawn([](PsResource& r, int* n) -> Task {
      co_await r.consume(10.0);
      ++*n;
    }(cpu, &finished));
  }
  eng.run();
  EXPECT_EQ(finished, 64);
  EXPECT_DOUBLE_EQ(eng.now(), 640.0 / 64.0);
}

TEST(ChannelExtra, InterleavedSendersPreserveFifoPerChannel) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> got;
  eng.spawn([](Channel<int>& ch, std::vector<int>* got) -> Task {
    for (int i = 0; i < 6; ++i) got->push_back(co_await ch.recv());
  }(ch, &got));
  for (int i = 0; i < 6; ++i) {
    eng.schedule(static_cast<double>(6 - i) * 0.0,  // same time, spawn order
                 [&ch, i] { ch.send(i); });
  }
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace grads::sim

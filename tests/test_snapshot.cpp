// Unit tests for the whole-simulation snapshot/restore layer
// (core/snapshot): typed writer/reader framing, image serialize/parse with
// checksum rejection, registry all-or-nothing restore, component
// round-trips, and the arm-once / restore-once guards on the AppManager
// snapshot coordinator.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "autopilot/sensor.hpp"
#include "core/app_manager.hpp"
#include "core/snapshot.hpp"
#include "grid/testbeds.hpp"
#include "reschedule/journal.hpp"
#include "services/gis.hpp"
#include "services/ibp.hpp"
#include "services/nws.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace grads::core {
namespace {

// --- Writer/reader framing. ------------------------------------------------

TEST(SnapshotFraming, RoundTripsEveryFieldType) {
  SnapshotWriter w;
  w.putU64(0xfeedfacecafeULL);
  w.putI64(-12345);
  w.putF64(2.5e-3);
  w.putBool(true);
  w.putBool(false);
  w.putStr("grid.fabric");
  w.putStr("");  // empty strings must round-trip too

  SnapshotReader r(w.words());
  EXPECT_EQ(r.getU64(), 0xfeedfacecafeULL);
  EXPECT_EQ(r.getI64(), -12345);
  EXPECT_EQ(r.getF64(), 2.5e-3);
  EXPECT_TRUE(r.getBool());
  EXPECT_FALSE(r.getBool());
  EXPECT_EQ(r.getStr(), "grid.fabric");
  EXPECT_EQ(r.getStr(), "");
  EXPECT_TRUE(r.done());
}

TEST(SnapshotFraming, TypeTagMismatchThrows) {
  SnapshotWriter w;
  w.putF64(1.0);
  SnapshotReader r(w.words());
  EXPECT_THROW(r.getU64(), SnapshotError);  // wrong type, loud failure
}

TEST(SnapshotFraming, ExhaustionThrows) {
  SnapshotWriter w;
  w.putU64(1);
  SnapshotReader r(w.words());
  r.getU64();
  EXPECT_TRUE(r.done());
  EXPECT_THROW(r.getU64(), SnapshotError);
}

TEST(SnapshotFraming, NegativeZeroAndNanBitsPreserved) {
  SnapshotWriter w;
  w.putF64(-0.0);
  SnapshotReader r(w.words());
  const double v = r.getF64();
  EXPECT_EQ(v, 0.0);
  EXPECT_TRUE(std::signbit(v));  // bit-exact, not value-rounded
}

// --- Image serialize/parse. ------------------------------------------------

SnapshotImage makeImage() {
  SnapshotImage img;
  img.simTime = 123.5;
  SnapshotSection s;
  s.name = "test.alpha";
  s.version = 3;
  SnapshotWriter w;
  w.putU64(7);
  w.putStr("payload");
  s.words = w.words();
  img.addSection(std::move(s));
  SnapshotSection t;
  t.name = "test.beta";
  t.words = {1, 2, 3};
  img.addSection(std::move(t));
  return img;
}

TEST(SnapshotImage, SerializeParseRoundTrip) {
  const SnapshotImage img = makeImage();
  const auto bytes = img.serialize();
  const SnapshotImage back = SnapshotImage::parse(bytes);
  EXPECT_EQ(back.simTime, 123.5);
  ASSERT_EQ(back.sections().size(), 2u);
  const auto* alpha = back.findSection("test.alpha");
  ASSERT_NE(alpha, nullptr);
  EXPECT_EQ(alpha->version, 3u);
  SnapshotReader r(alpha->words);
  EXPECT_EQ(r.getU64(), 7u);
  EXPECT_EQ(r.getStr(), "payload");
  EXPECT_EQ(back.digest(), img.digest());
}

TEST(SnapshotImage, CorruptionAnywhereIsRejected) {
  const auto bytes = makeImage().serialize();
  // Flip one bit at every byte offset: magic, header, lengths, payload, and
  // checksum corruption must all fail parse — never a silent misread.
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto bad = bytes;
    bad[i] ^= 0x40;
    EXPECT_THROW(SnapshotImage::parse(bad), SnapshotError) << "offset " << i;
  }
}

TEST(SnapshotImage, TruncationIsRejected) {
  const auto bytes = makeImage().serialize();
  for (const std::size_t keep : {std::size_t{0}, std::size_t{4},
                                 bytes.size() / 2, bytes.size() - 1}) {
    auto bad = bytes;
    bad.resize(keep);
    EXPECT_THROW(SnapshotImage::parse(bad), SnapshotError) << "kept " << keep;
  }
}

// --- Registry semantics. ---------------------------------------------------

/// Test component: two fields, optional decode sabotage.
class Probe : public Snapshottable {
 public:
  explicit Probe(std::string section) : section_(std::move(section)) {}

  const char* snapshotSection() const override { return section_.c_str(); }
  void encodeState(SnapshotWriter& w) const override {
    w.putU64(a);
    w.putF64(b);
  }
  void decodeState(SnapshotReader& r) override {
    a = r.getU64();
    b = r.getF64();
    ++decodes;
  }

  std::string section_;
  std::uint64_t a = 0;
  double b = 0.0;
  int decodes = 0;
};

TEST(SnapshotRegistry, CaptureAndRestoreInRegistrationOrder) {
  Probe p1("probe.one");
  Probe p2("probe.two");
  p1.a = 11;
  p1.b = 0.5;
  p2.a = 22;
  p2.b = 1.5;
  SnapshotRegistry reg;
  reg.add(p1);
  reg.add(p2);
  const SnapshotImage img = reg.capture(42.0);
  EXPECT_EQ(img.simTime, 42.0);
  ASSERT_EQ(img.sections().size(), 2u);
  EXPECT_EQ(img.sections()[0].name, "probe.one");
  EXPECT_EQ(img.sections()[1].name, "probe.two");

  Probe q1("probe.one");
  Probe q2("probe.two");
  SnapshotRegistry reg2;
  reg2.add(q1);
  reg2.add(q2);
  reg2.restore(img);
  EXPECT_EQ(q1.a, 11u);
  EXPECT_EQ(q1.b, 0.5);
  EXPECT_EQ(q2.a, 22u);
  EXPECT_EQ(q2.b, 1.5);
}

TEST(SnapshotRegistry, MissingSectionFailsBeforeAnyDecode) {
  Probe p1("probe.one");
  SnapshotRegistry cap;
  cap.add(p1);
  const SnapshotImage img = cap.capture(0.0);

  Probe q1("probe.one");
  Probe q2("probe.absent");
  SnapshotRegistry reg;
  reg.add(q1);
  reg.add(q2);
  EXPECT_THROW(reg.restore(img), SnapshotError);
  // All-or-nothing: q1's section exists, but no component may decode when
  // any registered component's section is missing.
  EXPECT_EQ(q1.decodes, 0);
}

TEST(SnapshotRegistry, LeftoverWordsAreAnError) {
  Probe p("probe.one");
  SnapshotRegistry cap;
  cap.add(p);
  SnapshotImage img = cap.capture(0.0);
  // Grow the section beyond what the decoder consumes.
  SnapshotSection fat = img.sections()[0];
  SnapshotWriter w;
  w.putU64(1);
  fat.words.insert(fat.words.end(), w.words().begin(), w.words().end());
  SnapshotImage fatImg;
  fatImg.simTime = img.simTime;
  fatImg.addSection(std::move(fat));
  Probe q("probe.one");
  SnapshotRegistry reg;
  reg.add(q);
  EXPECT_THROW(reg.restore(fatImg), SnapshotError);
}

TEST(SnapshotRegistry, VersionSkewIsAVersionedError) {
  Probe p("probe.one");
  SnapshotRegistry cap;
  cap.add(p);
  SnapshotImage img = cap.capture(0.0);
  SnapshotSection old = img.sections()[0];
  old.version = 99;
  SnapshotImage oldImg;
  oldImg.addSection(std::move(old));
  Probe q("probe.one");
  SnapshotRegistry reg;
  reg.add(q);
  EXPECT_THROW(reg.restore(oldImg), SnapshotError);
}

// --- Component round-trips. ------------------------------------------------

TEST(SnapshotComponents, RngStreamPositionRoundTrips) {
  Rng rng(1234);
  (void)rng.uniform();
  (void)rng.uniform();
  const auto state = rng.state();
  Rng other(999);  // different seed, position overwritten by setState
  other.setState(state);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(rng.next(), other.next()) << "draw " << i;
  }
}

TEST(SnapshotComponents, GisAndServicesRoundTripThroughImageBytes) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  services::Gis gis(g);
  gis.installEverywhere(services::software::kScalapack);
  gis.setNodeUp(tb.utkNodes[0], false);
  services::Nws nws(eng, g, 10.0, 0.0, 7);
  services::Ibp ibp(g);
  ibp.setFence("qr", 4);
  autopilot::AutopilotManager pilot(eng);
  pilot.report("phase-time.qr", 1.25);
  reschedule::ActionJournal journal(eng);
  const int id = journal.open("qr", reschedule::ActionKind::kMigrate, {1, 2});
  journal.beginCommit(id);

  SnapshotRegistry reg;
  reg.add(g);
  reg.add(gis);
  reg.add(nws);
  reg.add(ibp);
  reg.add(pilot);
  reg.add(journal);
  const auto bytes = reg.capture(eng.now()).serialize();

  // Fresh control plane, restored from the parsed bytes.
  sim::Engine eng2;
  grid::Grid g2(eng2);
  const auto tb2 = grid::buildQrTestbed(g2);
  services::Gis gis2(g2);
  services::Nws nws2(eng2, g2, 10.0, 0.0, 1);
  services::Ibp ibp2(g2);
  autopilot::AutopilotManager pilot2(eng2);
  reschedule::ActionJournal journal2(eng2);
  SnapshotRegistry reg2;
  reg2.add(g2);
  reg2.add(gis2);
  reg2.add(nws2);
  reg2.add(ibp2);
  reg2.add(pilot2);
  reg2.add(journal2);
  reg2.restore(SnapshotImage::parse(bytes));

  EXPECT_FALSE(gis2.isNodeUp(tb2.utkNodes[0]));
  EXPECT_TRUE(gis2.hasSoftware(tb2.uiucNodes[0], services::software::kScalapack));
  EXPECT_EQ(ibp2.fenceEpoch("qr"), 4);
  ASSERT_EQ(pilot2.history("phase-time.qr").size(), 1u);
  EXPECT_EQ(pilot2.history("phase-time.qr")[0].value, 1.25);
  ASSERT_NE(journal2.openAction("qr"), nullptr);
  EXPECT_EQ(journal2.openAction("qr")->state,
            reschedule::ActionState::kCommitting);
  EXPECT_EQ(journal2.inFlight(), 1);

  // Identity: re-capturing the restored components yields the same bytes.
  EXPECT_EQ(reg2.capture(0.0).serialize(), bytes);
}

// --- AppManager coordinator guards. ---------------------------------------

struct ManagerFixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::QrTestbed tb;
  services::Gis gis{g};
  services::Nws nws{eng, g, 10.0, 0.0, 7};
  services::Ibp ibp{g};
  autopilot::AutopilotManager pilot{eng};
  core::AppManager mgr{g, gis, &nws, ibp, pilot};

  ManagerFixture() { tb = grid::buildQrTestbed(g); }
};

TEST(AppManagerSnapshots, SnapshotDaemonArmsExactlyOnce) {
  ManagerFixture f;
  int captures = 0;
  const auto sink = [&captures](SnapshotImage) { ++captures; };
  EXPECT_FALSE(f.mgr.snapshotDaemonArmed());
  EXPECT_TRUE(f.mgr.armSnapshotDaemon(10.0, sink));
  EXPECT_TRUE(f.mgr.snapshotDaemonArmed());
  EXPECT_FALSE(f.mgr.armSnapshotDaemon(10.0, sink));  // arm-once
  f.eng.runUntil(35.0);
  EXPECT_EQ(captures, 3);  // t=10,20,30 — single cadence, not doubled
  EXPECT_EQ(f.mgr.snapshotsTaken(), 3u);
}

TEST(AppManagerSnapshots, SnapshotAtCapturesAtTheRequestedBoundary) {
  ManagerFixture f;
  double capturedAt = -1.0;
  f.mgr.snapshotAt(25.0, [&capturedAt](SnapshotImage img) {
    capturedAt = img.simTime;
  });
  f.eng.runUntil(30.0);
  EXPECT_EQ(capturedAt, 25.0);
}

TEST(AppManagerSnapshots, SecondRestoreThrows) {
  ManagerFixture f;
  const SnapshotImage img = f.mgr.snapshotNow();
  ManagerFixture fresh;
  fresh.mgr.restoreFrom(img);
  // Restore-twice would fork live state from the image; the guard throws.
  EXPECT_THROW(fresh.mgr.restoreFrom(img), Error);
}

TEST(AppManagerSnapshots, SandboxRestoresRepeatFreely) {
  ManagerFixture f;
  const SnapshotImage img = f.mgr.snapshotNow();
  // Sandbox engines (what-if forks) replay the same image as often as the
  // speculation budget allows — the once-guard applies to live restores
  // only, and a history of sandbox restores must not weaken it.
  ManagerFixture fork;
  fork.mgr.restoreFrom(img, AppManager::RestoreKind::kSandbox);
  fork.mgr.restoreFrom(img, AppManager::RestoreKind::kSandbox);
  fork.mgr.restoreFrom(img, AppManager::RestoreKind::kLive);
  EXPECT_THROW(fork.mgr.restoreFrom(img, AppManager::RestoreKind::kLive),
               Error);
}

TEST(AppManagerSnapshots, CompletedAppsRoundTrip) {
  ManagerFixture f;
  SnapshotWriter w;
  f.mgr.encodeState(w);
  SnapshotReader r0(w.words());
  f.mgr.decodeState(r0);  // empty manager round-trips cleanly
  EXPECT_TRUE(r0.done());
  EXPECT_FALSE(f.mgr.isCompleted("qr"));
  EXPECT_FALSE(f.mgr.hasResumeState("qr"));
}

}  // namespace
}  // namespace grads::core

#include <gtest/gtest.h>

#include "apps/qr_numeric.hpp"
#include "grid/testbeds.hpp"
#include "util/rng.hpp"

namespace grads::apps {
namespace {

linalg::Matrix randomMatrix(Rng& rng, std::size_t n) {
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
  }
  return a;
}

linalg::Matrix runDistributed(const linalg::Matrix& a, int ranks) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  std::vector<grid::NodeId> mapping;
  for (int r = 0; r < ranks; ++r) {
    mapping.push_back(tb.uiucNodes[static_cast<std::size_t>(r % 8)]);
  }
  vmpi::World world(g, mapping, "numeric-qr");
  NumericDistributedQr qr(world, a);
  for (int r = 0; r < ranks; ++r) eng.spawn(qr.rankTask(r));
  eng.run();
  EXPECT_TRUE(qr.finished());
  return qr.result();
}

TEST(NumericQr, SingleRankMatchesSequentialReference) {
  Rng rng(5);
  const auto a = randomMatrix(rng, 12);
  const auto rDist = runDistributed(a, 1);
  const auto rRef = linalg::householderQr(a).r;
  EXPECT_LT(linalg::Matrix::maxAbsDiff(rDist, rRef), 1e-12);
}

TEST(NumericQr, FourRanksMatchSequentialReference) {
  // The same reflectors in the same order → identical R, regardless of the
  // column distribution. This is the structural-correctness check for the
  // whole vmpi + payload machinery.
  Rng rng(6);
  const auto a = randomMatrix(rng, 16);
  const auto rDist = runDistributed(a, 4);
  const auto rRef = linalg::householderQr(a).r;
  EXPECT_LT(linalg::Matrix::maxAbsDiff(rDist, rRef), 1e-11);
}

TEST(NumericQr, RIsUpperTriangular) {
  Rng rng(7);
  const auto a = randomMatrix(rng, 10);
  const auto r = runDistributed(a, 3);
  for (std::size_t i = 1; i < r.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(r(i, j), 0.0);
  }
}

TEST(NumericQr, PreservesColumnNorms) {
  // Q is orthogonal, so ‖R e_j‖ = ‖A e_j‖ ... only for the first column;
  // in general ‖R‖_F = ‖A‖_F. Check the Frobenius norm.
  Rng rng(8);
  const auto a = randomMatrix(rng, 14);
  const auto r = runDistributed(a, 2);
  EXPECT_NEAR(r.norm(), a.norm(), 1e-10);
}

TEST(NumericQr, FlopCountNearClosedForm) {
  Rng rng(9);
  const std::size_t n = 24;
  const auto a = randomMatrix(rng, n);
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  vmpi::World world(g, {tb.uiucNodes[0], tb.uiucNodes[1]}, "nqr");
  NumericDistributedQr qr(world, a);
  for (int r = 0; r < 2; ++r) eng.spawn(qr.rankTask(r));
  eng.run();
  // Update flops dominate; closed form is (4/3)n³ + lower-order terms.
  EXPECT_NEAR(qr.flopsPerformed(), 4.0 / 3.0 * n * n * n,
              0.35 * 4.0 / 3.0 * n * n * n);
}

class NumericQrSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, int>> {};

TEST_P(NumericQrSweep, MatchesReferenceAcrossSizesAndRankCounts) {
  const auto [n, ranks] = GetParam();
  Rng rng(n * 31 + static_cast<std::size_t>(ranks));
  const auto a = randomMatrix(rng, n);
  const auto rDist = runDistributed(a, ranks);
  const auto rRef = linalg::householderQr(a).r;
  EXPECT_LT(linalg::Matrix::maxAbsDiff(rDist, rRef), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NumericQrSweep,
    ::testing::Values(std::pair<std::size_t, int>{4, 2},
                      std::pair<std::size_t, int>{9, 3},
                      std::pair<std::size_t, int>{16, 2},
                      std::pair<std::size_t, int>{20, 5},
                      std::pair<std::size_t, int>{25, 4},
                      std::pair<std::size_t, int>{32, 8}));

}  // namespace
}  // namespace grads::apps

// Unit + integration tests for the what-if fork driver
// (reschedule/whatif): graceful degradation to model-only, budget trimming,
// minimax candidate selection with deterministic tie-breaks, shadow-mode
// purity, the mistrust ledger feeding the governor cooldown, snapshot
// round-trip, and — through the shared bench harness — bit-identical fork
// replay plus the zero-live-state-divergence oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "reschedule/whatif/fork_driver.hpp"
#include "sim/engine.hpp"
#include "whatif_world.hpp"

namespace grads::reschedule::whatif {
namespace {

/// Stub-runner fixture: a driver armed with a canned snapshot and a
/// per-candidate outcome table, so candidate selection is tested without
/// spinning up sandbox control planes.
struct DriverFixture {
  sim::Engine eng;
  DriverOptions opts;

  DriverFixture() {
    opts.budget.maxForks = 12;
    opts.budget.horizonSec = 200.0;
    opts.budget.pessimisticFutures = 1;
  }

  ForkDriver makeArmed(ForkOutcome (*score)(const ForkRequest&)) {
    ForkDriver drv(eng, opts);
    drv.setSnapshotSource([] { return std::vector<std::uint8_t>{1, 2, 3}; });
    drv.setRunner([score](const ForkRequest& rq) { return score(rq); });
    return drv;
  }

  static ForkDriver::DecisionInput migrateInput() {
    ForkDriver::DecisionInput in;
    in.app = "qr";
    in.current = {1, 2};
    in.modelWantedMigrate = true;
    in.modelTarget = {5, 6};
    return in;
  }
};

ForkOutcome cleanOutcome(const ForkRequest&) {
  ForkOutcome o;
  o.completed = true;
  o.makespanSec = 100.0;
  o.progressSec = 90.0;
  return o;
}

/// Migrating looks clean in every future; staying put realizes violations.
ForkOutcome migrateWins(const ForkRequest& rq) {
  ForkOutcome o = cleanOutcome(rq);
  if (rq.candidate.kind == CandidateKind::kSuppress) {
    o.violationRecurrences = 2;
  }
  return o;
}

/// The model's migration thrashes (recurrence + migrate-back) under every
/// future; suppressing rides it out.
ForkOutcome suppressWins(const ForkRequest& rq) {
  ForkOutcome o = cleanOutcome(rq);
  if (rq.candidate.kind == CandidateKind::kMigrate) {
    o.violationRecurrences = 1;
    o.migrateBacks = 1;
  }
  return o;
}

TEST(ForkDriver, UnarmedFallsBackToModelDecision) {
  DriverFixture f;
  ForkDriver drv(f.eng, f.opts);
  EXPECT_FALSE(drv.armed());
  const auto d = drv.decide(DriverFixture::migrateInput());
  EXPECT_FALSE(d.fromForks);
  EXPECT_EQ(d.kind, CandidateKind::kMigrate);
  EXPECT_EQ(d.target, std::vector<grid::NodeId>({5, 6}));
  EXPECT_EQ(drv.stats().fallbacks, 1);
  EXPECT_EQ(drv.stats().forksRun, 0);
  ASSERT_EQ(drv.decisions().size(), 1u);
  EXPECT_EQ(drv.decisions()[0].fallbackReason, "no sandbox runner");
}

TEST(ForkDriver, SingleCandidateFallsBack) {
  DriverFixture f;
  ForkDriver drv = f.makeArmed(&cleanOutcome);
  ForkDriver::DecisionInput in;
  in.app = "qr";
  in.current = {1, 2};
  in.modelWantedMigrate = false;  // only the suppress candidate exists
  const auto d = drv.decide(in);
  EXPECT_FALSE(d.fromForks);
  EXPECT_EQ(d.kind, CandidateKind::kSuppress);
  ASSERT_EQ(drv.decisions().size(), 1u);
  EXPECT_EQ(drv.decisions()[0].fallbackReason, "no competing candidates");
}

TEST(ForkDriver, BudgetShedsPessimisticFuturesBeforeGivingUp) {
  DriverFixture f;
  f.opts.budget.pessimisticFutures = 3;  // 2 candidates x 4 futures = 8 asks
  f.opts.budget.maxForks = 4;            // ...trimmed to 2 x 2 = 4 forks
  ForkDriver drv = f.makeArmed(&cleanOutcome);
  const auto d = drv.decide(DriverFixture::migrateInput());
  EXPECT_TRUE(d.fromForks);
  EXPECT_EQ(drv.stats().forksRun, 4);
  EXPECT_EQ(drv.stats().fallbacks, 0);
  ASSERT_EQ(drv.decisions().size(), 1u);
  // The nominal future survives the trim for every candidate.
  for (const auto& cs : drv.decisions()[0].scores) {
    ASSERT_FALSE(cs.futures.empty());
    EXPECT_EQ(cs.futures[0].perturbation.kind, PerturbationKind::kNone);
  }
}

TEST(ForkDriver, ExhaustedBudgetDegradesToModelOnly) {
  DriverFixture f;
  f.opts.budget.maxForks = 1;  // 2 candidates don't fit even one future each
  ForkDriver drv = f.makeArmed(&cleanOutcome);
  const auto d = drv.decide(DriverFixture::migrateInput());
  EXPECT_FALSE(d.fromForks);
  EXPECT_EQ(d.kind, CandidateKind::kMigrate);  // model decision passes through
  EXPECT_EQ(drv.stats().forksRun, 0);
  ASSERT_EQ(drv.decisions().size(), 1u);
  EXPECT_EQ(drv.decisions()[0].fallbackReason, "fork budget exhausted");
}

TEST(ForkDriver, MinimaxConfirmsTheModelWhenMigrationIsClean) {
  DriverFixture f;
  ForkDriver drv = f.makeArmed(&migrateWins);
  const auto d = drv.decide(DriverFixture::migrateInput());
  EXPECT_TRUE(d.fromForks);
  EXPECT_EQ(d.kind, CandidateKind::kMigrate);
  EXPECT_EQ(d.target, std::vector<grid::NodeId>({5, 6}));
  EXPECT_EQ(drv.stats().overrides, 0);
}

TEST(ForkDriver, MinimaxVetoesAThrashingMigration) {
  DriverFixture f;
  ForkDriver drv = f.makeArmed(&suppressWins);
  const auto d = drv.decide(DriverFixture::migrateInput());
  EXPECT_TRUE(d.fromForks);
  EXPECT_EQ(d.kind, CandidateKind::kSuppress);
  EXPECT_EQ(drv.stats().overrides, 1);
  EXPECT_EQ(drv.stats().suppressChosen, 1);
}

TEST(ForkDriver, ThreeCandidateRacePicksTheLeastWorstCase) {
  DriverFixture f;
  // Model target aborts its sandbox, suppress recurs, the alternate is
  // clean: the alternate must win the three-way race.
  ForkDriver drv = f.makeArmed(+[](const ForkRequest& rq) {
    ForkOutcome o = cleanOutcome(rq);
    if (rq.candidate.label == "model-target") o.aborted = true;
    if (rq.candidate.kind == CandidateKind::kSuppress) {
      o.violationRecurrences = 1;
    }
    return o;
  });
  ForkDriver::DecisionInput in = DriverFixture::migrateInput();
  in.alternateTarget = {7, 8};
  const auto d = drv.decide(in);
  EXPECT_TRUE(d.fromForks);
  EXPECT_EQ(d.kind, CandidateKind::kMigrate);
  EXPECT_EQ(d.target, std::vector<grid::NodeId>({7, 8}));
  EXPECT_EQ(drv.stats().overrides, 1);  // target differs from the model's
  EXPECT_EQ(drv.stats().forksRun, 6);   // 3 candidates x (nominal + 1)
}

TEST(ForkDriver, ExactTiesGoToTheConservativeArm) {
  DriverFixture f;
  ForkDriver drv = f.makeArmed(&cleanOutcome);  // all candidates identical
  const auto d = drv.decide(DriverFixture::migrateInput());
  EXPECT_TRUE(d.fromForks);
  EXPECT_EQ(d.kind, CandidateKind::kSuppress);  // suppress is candidate 0
}

TEST(ForkDriver, ShadowModeRecordsVerdictButCommitsModel) {
  DriverFixture f;
  f.opts.shadowOnly = true;
  ForkDriver drv = f.makeArmed(&suppressWins);
  const auto d = drv.decide(DriverFixture::migrateInput());
  // The verdict (suppress) is recorded; the model decision is returned.
  EXPECT_FALSE(d.fromForks);
  EXPECT_EQ(d.kind, CandidateKind::kMigrate);
  EXPECT_EQ(d.target, std::vector<grid::NodeId>({5, 6}));
  EXPECT_EQ(drv.stats().overrides, 1);
  ASSERT_EQ(drv.decisions().size(), 1u);
  EXPECT_TRUE(drv.decisions()[0].shadow);
  EXPECT_EQ(drv.decisions()[0].chosen, 0);
  // No pending prediction, no mistrust: a later violation must not mutate
  // the ledger (the parent trajectory stays bit-identical to driver-less).
  drv.noteViolation("qr", 10.0);
  EXPECT_EQ(drv.stats().divergences, 0);
  EXPECT_EQ(drv.cooldownExtraFor("qr"), 0.0);
}

TEST(ForkDriver, DivergenceBumpsMistrustAndExtendsCooldown) {
  DriverFixture f;
  ForkDriver drv = f.makeArmed(&migrateWins);  // predicts a clean migration
  const auto d = drv.decide(DriverFixture::migrateInput());
  ASSERT_TRUE(d.fromForks);
  ASSERT_EQ(d.kind, CandidateKind::kMigrate);
  EXPECT_EQ(drv.cooldownExtraFor("qr"), 0.0);  // trusted until proven wrong

  // A confirmed violation inside the prediction horizon: the clean forecast
  // diverged, so the chosen nodes pick up mistrust and the governor's
  // cooldown for this app stretches.
  drv.noteViolation("qr", 50.0);
  EXPECT_EQ(drv.stats().divergences, 1);
  EXPECT_EQ(drv.mistrustOf(5), f.opts.mistrustBump);
  EXPECT_EQ(drv.mistrustOf(6), f.opts.mistrustBump);
  EXPECT_DOUBLE_EQ(drv.cooldownExtraFor("qr"),
                   f.opts.mistrustCooldownSec * f.opts.mistrustBump);
  ASSERT_EQ(drv.decisions().size(), 1u);
  EXPECT_TRUE(drv.decisions()[0].settled);
  EXPECT_TRUE(drv.decisions()[0].diverged);
}

TEST(ForkDriver, CleanHorizonDecaysMistrust) {
  DriverFixture f;
  ForkDriver drv = f.makeArmed(&migrateWins);
  (void)drv.decide(DriverFixture::migrateInput());
  drv.noteViolation("qr", 50.0);  // diverge once: mistrust = bump
  const double bumped = drv.mistrustOf(5);
  ASSERT_GT(bumped, 0.0);

  // Second prediction expires clean (the violation arrives past the
  // horizon): the expiry settles first and decays the nodes' mistrust.
  f.eng.runUntil(100.0);
  (void)drv.decide(DriverFixture::migrateInput());
  drv.noteViolation("qr", 100.0 + f.opts.budget.horizonSec + 1.0);
  EXPECT_DOUBLE_EQ(drv.mistrustOf(5), bumped * f.opts.mistrustDecay);
  EXPECT_EQ(drv.stats().divergences, 1);  // no new divergence charged
}

TEST(ForkDriver, FutureEnsembleIsDeterministicInTheSeed) {
  DriverFixture f;
  f.opts.budget.pessimisticFutures = 3;
  std::vector<std::vector<Perturbation>> drawn(2);
  for (int run = 0; run < 2; ++run) {
    ForkDriver drv(f.eng, f.opts);
    drv.setSnapshotSource([] { return std::vector<std::uint8_t>{1}; });
    drv.setRunner([&drawn, run](const ForkRequest& rq) {
      if (rq.candidate.kind == CandidateKind::kSuppress) {
        drawn[static_cast<std::size_t>(run)].push_back(rq.perturbation);
      }
      return ForkOutcome{};
    });
    (void)drv.decide(DriverFixture::migrateInput());
  }
  ASSERT_EQ(drawn[0].size(), drawn[1].size());
  ASSERT_EQ(drawn[0].size(), 4u);  // nominal + 3 pessimistic
  for (std::size_t i = 0; i < drawn[0].size(); ++i) {
    EXPECT_EQ(drawn[0][i].kind, drawn[1][i].kind) << i;
    EXPECT_EQ(drawn[0][i].seed, drawn[1][i].seed) << i;
    EXPECT_EQ(drawn[0][i].severity, drawn[1][i].severity) << i;
  }
}

TEST(ForkDriver, StateRoundTripsThroughSnapshot) {
  DriverFixture f;
  ForkDriver drv = f.makeArmed(&suppressWins);
  (void)drv.decide(DriverFixture::migrateInput());
  ForkDriver::DecisionInput second = DriverFixture::migrateInput();
  second.alternateTarget = {7, 8};
  (void)drv.decide(second);
  drv.noteViolation("qr", 10.0);

  core::SnapshotWriter w;
  drv.encodeState(w);

  ForkDriver back(f.eng, f.opts);
  core::SnapshotReader r(w.words());
  back.decodeState(r);
  EXPECT_TRUE(r.done());

  EXPECT_EQ(back.decisions().size(), drv.decisions().size());
  EXPECT_EQ(back.stats().decisions, drv.stats().decisions);
  EXPECT_EQ(back.stats().forksRun, drv.stats().forksRun);
  EXPECT_EQ(back.stats().overrides, drv.stats().overrides);
  EXPECT_EQ(back.stats().divergences, drv.stats().divergences);
  EXPECT_EQ(back.mistrustOf(1), drv.mistrustOf(1));
  EXPECT_EQ(back.cooldownExtraFor("qr"), drv.cooldownExtraFor("qr"));

  // Encode/decode symmetry (grads-lint R6, proven at runtime): re-encoding
  // the decoded state reproduces the exact words.
  core::SnapshotWriter w2;
  back.encodeState(w2);
  EXPECT_EQ(w2.words(), w.words());
}

// --- Integration through the shared bench harness. -------------------------

TEST(WhatifForks, SameImageCandidateAndSeedReplayBitIdentically) {
  bench::WhatifConfig cfg;
  cfg.seed = 77;
  cfg.withDriver = false;
  bench::WhatifWorld w;
  bench::buildWhatifWorld(w, cfg, /*armDaemons=*/true);
  std::vector<std::uint8_t> bytes;
  w.mgr->snapshotAt(200.0, [&bytes](core::SnapshotImage img) {
    bytes = img.serialize();
  });
  w.eng.spawn(w.mgr->run(w.cop, &*w.rescheduler, w.mopts, &w.bd), w.cop.name);
  // The breakdown is flushed to `w.bd` only when the coroutine completes, so
  // run the scenario to the end; the snapshot sink still fires at t=200.
  w.eng.run();
  ASSERT_FALSE(bytes.empty());
  ASSERT_FALSE(w.bd.mappings.empty());

  ForkRequest rq;
  rq.image = &bytes;
  rq.app = w.cop.name;
  rq.current = w.bd.mappings.front();
  rq.candidate = {CandidateKind::kSuppress, {}, "suppress"};
  rq.perturbation = {PerturbationKind::kLinkDegrade, 9, 0.3};
  rq.horizonSec = 180.0;
  rq.maxEvents = 400000;

  const ForkOutcome a = bench::runWhatifFork(cfg, rq);
  const ForkOutcome b = bench::runWhatifFork(cfg, rq);
  EXPECT_EQ(a.forkDigest, b.forkDigest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.violationRecurrences, b.violationRecurrences);
  EXPECT_EQ(a.migrateBacks, b.migrateBacks);
  EXPECT_EQ(a.makespanSec, b.makespanSec);
  EXPECT_FALSE(a.aborted);
}

TEST(WhatifForks, ShadowSpeculationLeavesParentReplayUnchanged) {
  bench::WhatifConfig cfg;
  cfg.seed = 31;
  cfg.driver.budget.maxForks = 4;
  cfg.driver.budget.pessimisticFutures = 1;

  cfg.withDriver = false;
  const bench::WhatifRunResult plain = bench::runWhatifScenario(cfg);

  cfg.withDriver = true;
  cfg.driver.shadowOnly = true;
  const bench::WhatifRunResult shadow = bench::runWhatifScenario(cfg);

  ASSERT_TRUE(plain.completed);
  ASSERT_TRUE(shadow.completed);
  EXPECT_GT(shadow.driver.decisions, 0);  // speculation actually happened
  // The zero-live-state-divergence invariant: a speculating shadow parent
  // replays bit-identically to a driver-less parent.
  EXPECT_EQ(shadow.digest, plain.digest);
}

}  // namespace
}  // namespace grads::reschedule::whatif

#include <gtest/gtest.h>

#include <cmath>

#include "grid/testbeds.hpp"
#include "mem/cache.hpp"
#include "mem/reuse.hpp"
#include "perfmodel/kernel_model.hpp"
#include "util/error.hpp"

namespace grads::perfmodel {
namespace {

TEST(KernelModel, TrainRequiresEnoughSizes) {
  TrainingSet ts;
  ts.sizes = {8, 16};
  ts.flopFitDegree = 3;
  ts.tracer = [](std::size_t, mem::TraceSink) {};
  ts.flopCounter = [](std::size_t) { return 1.0; };
  EXPECT_THROW(KernelModel::train(ts), InvalidArgument);
}

TEST(KernelModel, FlopModelExtrapolatesMatmulExactly) {
  const auto m = trainMatmulModel();
  // 2n³ is a cubic: the degree-3 fit on small sizes must recover it.
  for (double n : {500.0, 1000.0, 4000.0}) {
    const double expected = 2.0 * n * n * n;
    EXPECT_NEAR(m.predictFlops(n), expected, 1e-4 * expected) << n;
  }
}

TEST(KernelModel, FlopModelExtrapolatesQrExactly) {
  const auto m = trainQrModel();
  for (double n : {1000.0, 8000.0}) {
    const double expected = 4.0 / 3.0 * n * n * n;
    // Householder trace-based counts differ from the closed form by lower
    // order terms; allow 1%.
    EXPECT_NEAR(m.predictFlops(n), expected, 0.01 * expected) << n;
  }
}

TEST(KernelModel, NBodyFlopModelIsQuadratic) {
  const auto m = trainNBodyModel();
  const double n = 10000.0;
  EXPECT_NEAR(m.predictFlops(n), 20.0 * n * (n - 1.0),
              0.01 * 20.0 * n * (n - 1.0));
}

TEST(KernelModel, AccessCountExtrapolates) {
  const auto m = trainMatmulModel();
  // traceMatmul issues 2n³ + n² references.
  const double n = 128.0;
  EXPECT_NEAR(m.predictAccesses(n), 2.0 * n * n * n + n * n,
              0.02 * (2.0 * n * n * n));
}

TEST(KernelModel, MissPredictionMatchesSimulationOnUnseenSize) {
  // Train on small sizes, validate against a direct fully-associative LRU
  // simulation at a larger, unseen size — the paper's §3.2 methodology.
  const auto m = trainMatmulModel({16, 24, 32, 40, 48});
  const std::size_t n = 96;

  grid::CacheGeometry cache;
  cache.sizeBytes = 32 * 1024;  // 512 blocks of 64 B
  cache.lineBytes = kModelBlockBytes;
  cache.associativity = 512 / 64;  // unused by prediction

  mem::ReuseDistanceAnalyzer rd;
  mem::traceMatmul(n, kModelElementsPerBlock, rd.sink());
  const auto actual = static_cast<double>(
      rd.global().missesForCapacity(cache.sizeBytes / cache.lineBytes));

  const double predicted = m.predictMisses(static_cast<double>(n), cache);
  // Quantile-bucketed scaling model: expect the right order of magnitude and
  // within ~35% of the simulated count.
  EXPECT_GT(predicted, 0.0);
  EXPECT_NEAR(predicted, actual, 0.35 * actual);
}

TEST(KernelModel, LargerCachePredictsFewerMisses) {
  const auto m = trainQrModel();
  grid::CacheGeometry small{16 * 1024, 64, 8};
  grid::CacheGeometry large{2 * 1024 * 1024, 64, 8};
  const double n = 512.0;
  EXPECT_GE(m.predictMisses(n, small), m.predictMisses(n, large));
}

TEST(KernelModel, MissRatioBetweenZeroAndOne) {
  const auto m = trainMatmulModel();
  grid::CacheGeometry c{256 * 1024, 64, 8};
  for (double n : {64.0, 128.0, 512.0}) {
    const double r = m.predictMissRatio(n, c);
    EXPECT_GE(r, 0.0);
    EXPECT_LE(r, 1.0);
  }
}

TEST(KernelModel, EcostScalesInverselyWithNodeSpeed) {
  const auto m = trainQrModel();
  const auto fast = grid::ucsdAthlonSpec(0);  // 1.7 GHz × 2 flops/cycle
  const auto slow = grid::uiucQrNodeSpec(0);  // 450 MHz
  const double n = 2000.0;
  EXPECT_LT(m.predictSeconds(n, fast), m.predictSeconds(n, slow));
  // With a cache large enough to hold the problem, the time ratio reduces to
  // the effective single-CPU rate ratio (compute-bound regime).
  auto fastBig = fast;
  auto slowBig = slow;
  fastBig.cache.sizeBytes = 1ULL << 30;
  slowBig.cache.sizeBytes = 1ULL << 30;
  const double ratio =
      m.predictSeconds(n, slowBig) / m.predictSeconds(n, fastBig);
  const double rateRatio =
      fast.effectiveFlopsPerCpu() / slow.effectiveFlopsPerCpu();
  EXPECT_NEAR(ratio, rateRatio, 0.1 * rateRatio);
}

TEST(KernelModel, StencilModelIsLinear) {
  const auto m = trainStencilModel();
  const double f1 = m.predictFlops(10000.0);
  const double f2 = m.predictFlops(20000.0);
  EXPECT_NEAR(f2 / f1, 2.0, 0.02);
}

class MissValidation
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(MissValidation, PredictionWithinFactorTwoOfSimulation) {
  // Sweep (problem size, cache KB): model must stay within 2x of the
  // fully-associative simulation it approximates.
  const auto [n, cacheKb] = GetParam();
  const auto m = trainMatmulModel({16, 24, 32, 40, 48});
  grid::CacheGeometry cache{cacheKb * 1024, kModelBlockBytes, 8};

  mem::ReuseDistanceAnalyzer rd;
  mem::traceMatmul(n, kModelElementsPerBlock, rd.sink());
  const auto actual = static_cast<double>(
      rd.global().missesForCapacity(cache.sizeBytes / cache.lineBytes));
  const double predicted = m.predictMisses(static_cast<double>(n), cache);
  if (actual > 1000.0) {  // ignore tiny-count regimes
    EXPECT_LT(predicted, 2.0 * actual);
    EXPECT_GT(predicted, 0.5 * actual);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MissValidation,
    ::testing::Values(std::pair<std::size_t, std::size_t>{64, 8},
                      std::pair<std::size_t, std::size_t>{64, 16},
                      std::pair<std::size_t, std::size_t>{96, 8},
                      std::pair<std::size_t, std::size_t>{96, 32},
                      std::pair<std::size_t, std::size_t>{128, 16}));

}  // namespace
}  // namespace grads::perfmodel

// Unit fixtures for grads-lint (rules R1–R6, suppressions, lexer traps) and
// digest-stability checks for the replay-divergence oracle's primitives.
//
// Every rule gets: a positive fixture (must flag), a negative fixture (must
// stay silent), a suppressed fixture (flag + inline waiver), and a
// string/comment trap (banned spelling inside a literal or comment must not
// flag). Fixture sources are raw strings, which doubles as a lexer test:
// grads-lint linting THIS file must see the fixtures as string literals and
// report nothing.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"
#include "sim/engine.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace {

using grads::lint::Finding;
using grads::lint::TreeReport;

TreeReport lintOne(const std::string& path, const std::string& src) {
  return grads::lint::lintSources({{path, src}});
}

int countRule(const TreeReport& r, const std::string& rule,
              bool suppressed = false) {
  return static_cast<int>(std::count_if(
      r.findings.begin(), r.findings.end(), [&](const Finding& f) {
        return f.rule == rule && f.suppressed == suppressed;
      }));
}

// ---------------------------------------------------------------------------
// R1 — wall-clock / ambient randomness.
// ---------------------------------------------------------------------------

TEST(LintR1, FlagsWallClockAndLibcRandomness) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void f() {
      auto t = std::chrono::system_clock::now();
      std::random_device rd;
      srand(42);
      int x = rand();
      long n = time(nullptr);
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R1"), 5);
}

TEST(LintR1, SilentOnRngAndMemberCalls) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    #include "util/rng.hpp"
    void f(grads::Rng& rng, Engine& eng) {
      double u = rng.uniform();
      double t = eng.time();      // member named time(): simulated, fine
      double s = clockModel.rand(); // member named rand(): fine
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R1"), 0);
}

TEST(LintR1, UtilRngItselfIsAllowed) {
  const auto r = lintOne("src/util/rng.cpp", R"cpp(
    #include <random>
    std::random_device seedSource;
  )cpp");
  EXPECT_EQ(countRule(r, "R1"), 0);
  EXPECT_EQ(countRule(r, "R5"), 0);
}

TEST(LintR1, BenchIsAllowlisted) {
  const auto r = lintOne("bench/perf_harness.cpp", R"cpp(
    #include <chrono>
    using Clock = std::chrono::steady_clock;
  )cpp");
  EXPECT_EQ(countRule(r, "R1"), 0);
  EXPECT_EQ(countRule(r, "R5"), 0);
}

TEST(LintR1, StringAndCommentTrap) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // system_clock and rand() only in a comment; time( too.
    const char* msg = "do not call rand() or srand() or system_clock";
    /* steady_clock random_device */
  )cpp");
  EXPECT_EQ(countRule(r, "R1"), 0);
}

TEST(LintR1, ForkTimeoutMustBeAnEventBudgetNotWallClock) {
  // The what-if fork driver's speculation bound: the classic wall-clock
  // fork timeout is banned in src/ — a fork that times out by wall clock
  // commits a different verdict on a loaded CI box than on a fast laptop.
  const auto bad = lintOne("src/reschedule/whatif/foo.cpp", R"cpp(
    bool forkExpired(const Fork& f) {
      const auto started = std::chrono::steady_clock::now();
      return waited(started) > kForkTimeoutMs;
    }
  )cpp");
  EXPECT_EQ(countRule(bad, "R1"), 1);
  // The virtual stand-in — a per-fork event cap — is deterministic and
  // stays silent.
  const auto good = lintOne("src/reschedule/whatif/foo.cpp", R"cpp(
    bool forkExpired(const ForkOutcome& o, std::uint64_t maxEvents) {
      return maxEvents != 0 && o.events >= maxEvents;
    }
  )cpp");
  EXPECT_EQ(countRule(good, "R1"), 0);
}

TEST(LintR1, Suppressed) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // grads-lint: allow(R1 calibration-only wall clock, never in decisions)
    auto t0 = std::chrono::steady_clock::now();
  )cpp");
  EXPECT_EQ(countRule(r, "R1", /*suppressed=*/false), 0);
  EXPECT_EQ(countRule(r, "R1", /*suppressed=*/true), 1);
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_TRUE(r.suppressions[0].used);
  EXPECT_EQ(r.suppressions[0].rule, "R1");
}

// ---------------------------------------------------------------------------
// R2 — address-order nondeterminism.
// ---------------------------------------------------------------------------

TEST(LintR2, FlagsPointerKeyedContainers) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    std::map<Task*, int> byTask;
    std::unordered_map<Node*, double> byNode;
    std::set<const Obj*> live;
  )cpp");
  EXPECT_EQ(countRule(r, "R2"), 3);
}

TEST(LintR2, SilentOnValueKeys) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    std::map<int, Task*> byId;           // pointer VALUES are fine
    std::unordered_map<std::string, int> byName;
    std::set<std::pair<int, int>> pairs;
    void g() { Set& set = sets_[0]; set.map.find(3); }  // vars named set/map
  )cpp");
  EXPECT_EQ(countRule(r, "R2"), 0);
}

TEST(LintR2, FlagsUnorderedIterationReachingDecisionApis) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    std::unordered_map<int, Item> pending_;
    void drain(Engine& eng) {
      for (auto& [id, item] : pending_) {
        eng.schedule(1.0, item.fn);   // hash order -> event order: bug
      }
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        emit(it->second);
      }
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R2"), 2);
}

TEST(LintR2, SilentOnDecisionFreeIterationAndOrderedContainers) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    std::unordered_map<int, int> counts_;
    std::map<int, Item> ordered_;
    void tally(Engine& eng) {
      int sum = 0;
      for (auto& [k, v] : counts_) sum += v;   // pure fold: fine
      for (auto& [k, v] : ordered_) eng.schedule(1.0, v);  // ordered: fine
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R2"), 0);
}

TEST(LintR2, FlagsPointerComparingPredicate) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void s(std::vector<Node*>& xs) {
      std::sort(xs.begin(), xs.end(),
                [](const Node* a, const Node* b) { return a < b; });
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R2"), 1);
}

TEST(LintR2, SilentOnFieldComparingPredicate) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void s(std::vector<Node*>& xs) {
      std::sort(xs.begin(), xs.end(),
                [](const Node* a, const Node* b) { return a->id < b->id; });
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R2"), 0);
}

TEST(LintR2, Suppressed) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // grads-lint: allow(R2 diagnostic dump, order reaches logs only)
    std::unordered_map<Tag*, int> debugCounts;
  )cpp");
  EXPECT_EQ(countRule(r, "R2", false), 0);
  EXPECT_EQ(countRule(r, "R2", true), 1);
}

// ---------------------------------------------------------------------------
// R3 — side effects inside check macros.
// ---------------------------------------------------------------------------

TEST(LintR3, FlagsMutationsInsideChecks) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void f(int n, std::vector<int>& v) {
      GRADS_REQUIRE(n++ > 0, "increment in check");
      GRADS_ASSERT(v.erase(v.begin()) != v.end(), "erase in check");
      assert(n = 3);
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R3"), 3);
}

TEST(LintR3, SilentOnPureChecksAndMessageExpressions) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void f(int n, const std::vector<int>& v, const char* caller) {
      GRADS_REQUIRE(n >= 0 && n <= 3, "comparisons are pure");
      GRADS_REQUIRE(!v.empty(), std::string(caller) + ": msg concat is fine");
      GRADS_ASSERT(v.size() == 4, "size() is const");
      static_assert(sizeof(int) == 4);
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R3"), 0);
}

TEST(LintR3, StringTrap) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    const char* doc = "GRADS_REQUIRE(x++, ...) would be a bug";
    // GRADS_ASSERT(v.pop(), "commented out")
  )cpp");
  EXPECT_EQ(countRule(r, "R3"), 0);
}

TEST(LintR3, Suppressed) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void f(Queue& q) {
      // grads-lint: allow(R3 checked in both build legs by test_sim)
      GRADS_ASSERT(q.pop() != nullptr, "fixture");
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R3", false), 0);
  EXPECT_EQ(countRule(r, "R3", true), 1);
}

// ---------------------------------------------------------------------------
// R4 — raw allocation / std::function on hot paths.
// ---------------------------------------------------------------------------

TEST(LintR4, FlagsRawNewDeleteOutsidePool) {
  const auto r = lintOne("src/grid/foo.cpp", R"cpp(
    void f() {
      int* p = new int(3);
      delete p;
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R4"), 2);
}

TEST(LintR4, PoolInternalsAreAllowed) {
  const auto r = lintOne("src/sim/engine.cpp", R"cpp(
    void grow() { chunks_.emplace_back(new Node[4096]); }
  )cpp");
  EXPECT_EQ(countRule(r, "R4"), 0);
}

TEST(LintR4, SilentOnDeletedFunctionsAndSmartPointers) {
  const auto r = lintOne("src/grid/foo.cpp", R"cpp(
    struct A {
      A(const A&) = delete;
      A& operator=(const A&) = delete;
    };
    auto p = std::make_unique<A>();
  )cpp");
  EXPECT_EQ(countRule(r, "R4"), 0);
}

TEST(LintR4, FlagsStdFunctionInSim) {
  const auto hot = lintOne("src/sim/foo.hpp", R"cpp(
    #pragma once
    struct Q { std::function<void()> cb; };
  )cpp");
  EXPECT_EQ(countRule(hot, "R4"), 1);
  // Outside src/sim, std::function is allowed (cold control paths).
  const auto cold = lintOne("src/core/foo.hpp", R"cpp(
    #pragma once
    struct Q { std::function<void()> cb; };
  )cpp");
  EXPECT_EQ(countRule(cold, "R4"), 0);
}

TEST(LintR4, Suppressed) {
  const auto r = lintOne("src/grid/foo.cpp", R"cpp(
    void f() {
      // grads-lint: allow(R4 interop with C API that takes ownership)
      auto* raw = new Blob();
      take(raw);
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R4", false), 0);
  EXPECT_EQ(countRule(r, "R4", true), 1);
}

// ---------------------------------------------------------------------------
// R5 — include hygiene.
// ---------------------------------------------------------------------------

TEST(LintR5, FlagsBannedHeadersInSrc) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    #include <chrono>
    #include <ctime>
    #include <thread>
    #include <random>
  )cpp");
  EXPECT_EQ(countRule(r, "R5"), 4);
}

TEST(LintR5, HeaderHygiene) {
  const auto r = lintOne("src/core/foo.hpp",
                         "#include \"../grid/node.hpp\"\n"
                         "using namespace std;\n");
  // Missing pragma once + parent-relative include + using-namespace.
  EXPECT_EQ(countRule(r, "R5"), 3);
}

TEST(LintR5, CleanHeaderPasses) {
  const auto r = lintOne("src/core/foo.hpp", R"cpp(#pragma once

#include <vector>

#include "grid/node.hpp"

namespace grads::core {
class Foo {};
}  // namespace grads::core
)cpp");
  EXPECT_EQ(countRule(r, "R5"), 0);
}

TEST(LintR5, LeadingCommentBeforePragmaIsFine) {
  const auto r = lintOne("src/core/foo.hpp",
                         "// License header comment.\n#pragma once\n");
  EXPECT_EQ(countRule(r, "R5"), 0);
}

// ---------------------------------------------------------------------------
// R6 — snapshot encode/decode field symmetry.
// ---------------------------------------------------------------------------

TEST(LintR6, FlagsAsymmetricEncodeDecode) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void Foo::encodeState(core::SnapshotWriter& w) const {
      w.putU64(a_);
      w.putF64(b_);
      w.putStr(name_);
    }
    void Foo::decodeState(core::SnapshotReader& r) {
      a_ = r.getU64();
      b_ = r.getF64();
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 1);
}

TEST(LintR6, SilentOnSymmetricPairsAndDelegation) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void Foo::encodeState(core::SnapshotWriter& w) const {
      w.putU64(items_.size());
      for (const auto& it : items_) w.putF64(it);
      inner_.encodeState(w);  // delegation: counted where it is defined
    }
    void Foo::decodeState(core::SnapshotReader& r) {
      const auto n = r.getU64();
      items_.clear();
      for (std::uint64_t i = 0; i < n; ++i) items_.push_back(r.getF64());
      inner_.decodeState(r);
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 0);
}

TEST(LintR6, AttributesInClassDefinitionsToTheRightType) {
  // Two inline definitions in one file (the nws.cpp forecaster shape): the
  // symmetric class must not mask or borrow from the asymmetric one.
  const auto r = lintOne("src/services/foo.cpp", R"cpp(
    class Good : public core::Snapshottable {
      void encodeState(core::SnapshotWriter& w) const override {
        w.putF64(x_);
      }
      void decodeState(core::SnapshotReader& r) override { x_ = r.getF64(); }
    };
    struct Bad : core::Snapshottable {
      void encodeState(core::SnapshotWriter& w) const override {
        w.putF64(x_);
        w.putBool(flag_);
      }
      void decodeState(core::SnapshotReader& r) override { x_ = r.getF64(); }
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 1);
}

TEST(LintR6, DeclarationsAndSplitDefinitionsAreSilent) {
  // A header declares both; only one side is defined in this file. Per-file
  // analysis cannot compare across files, so no finding.
  const auto r = lintOne("src/core/foo.hpp", R"cpp(#pragma once
    class Foo : public core::Snapshottable {
      void encodeState(core::SnapshotWriter& w) const override;
      void decodeState(core::SnapshotReader& r) override;
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 0);
  const auto half = lintOne("src/core/foo.cpp", R"cpp(
    void Foo::encodeState(core::SnapshotWriter& w) const { w.putU64(a_); }
  )cpp");
  EXPECT_EQ(countRule(half, "R6"), 0);
}

TEST(LintR6, TenantLedgerShapeWithVectorTailIsSymmetric) {
  // The metasched tenant-ledger shape: a run of scalar counters followed by
  // a length-prefixed vector. Encode writes size+loop, decode reads
  // size+resize+loop — call-site counts match per type, so R6 is silent.
  const auto r = lintOne("src/metasched/bar.cpp", R"cpp(
    void Ledger::encodeState(core::SnapshotWriter& w) const {
      w.putI64(submitted);
      w.putI64(admitted);
      w.putI64(shed);
      w.putU64(slowdowns.size());
      for (const double s : slowdowns) w.putF64(s);
    }
    void Ledger::decodeState(core::SnapshotReader& r) {
      submitted = r.getI64();
      admitted = r.getI64();
      shed = r.getI64();
      slowdowns.resize(r.getU64());
      for (double& s : slowdowns) s = r.getF64();
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 0);
}

TEST(LintR6, TenantLedgerDroppedCounterIsFlagged) {
  // Same shape, but decode forgets one scalar: every later field shifts one
  // word and the vector length is garbage. R6 catches the count mismatch.
  const auto r = lintOne("src/metasched/bar.cpp", R"cpp(
    void Ledger::encodeState(core::SnapshotWriter& w) const {
      w.putI64(submitted);
      w.putI64(admitted);
      w.putI64(shed);
      w.putU64(slowdowns.size());
      for (const double s : slowdowns) w.putF64(s);
    }
    void Ledger::decodeState(core::SnapshotReader& r) {
      submitted = r.getI64();
      admitted = r.getI64();
      slowdowns.resize(r.getU64());
      for (double& s : slowdowns) s = r.getF64();
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 1);
}

TEST(LintR6, ForkDriverNestedDecisionLogIsSymmetric) {
  // The fork-driver shape: a length-prefixed decision log with a nested
  // per-candidate loop, followed by scalar stats and an Rng-state tail.
  // Per-type call-site counts match, so R6 stays silent.
  const auto r = lintOne("src/reschedule/whatif/foo.cpp", R"cpp(
    void Driver::encodeState(core::SnapshotWriter& w) const {
      w.putU64(log_.size());
      for (const auto& rec : log_) {
        w.putStr(rec.app);
        w.putF64(rec.at);
        w.putU64(rec.scores.size());
        for (const auto& cs : rec.scores) {
          w.putU64(static_cast<std::uint64_t>(cs.kind));
          w.putF64(cs.worstHarm);
        }
        w.putBool(rec.diverged);
      }
      w.putI64(stats_.decisions);
      w.putU64(rngState_);
    }
    void Driver::decodeState(core::SnapshotReader& r) {
      log_.clear();
      const std::uint64_t n = r.getU64();
      for (std::uint64_t i = 0; i < n; ++i) {
        Record rec;
        rec.app = r.getStr();
        rec.at = r.getF64();
        const std::uint64_t m = r.getU64();
        for (std::uint64_t j = 0; j < m; ++j) {
          Score cs;
          cs.kind = static_cast<Kind>(r.getU64());
          cs.worstHarm = r.getF64();
          rec.scores.push_back(cs);
        }
        rec.diverged = r.getBool();
        log_.push_back(rec);
      }
      stats_.decisions = static_cast<int>(r.getI64());
      rngState_ = r.getU64();
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 0);
}

TEST(LintR6, ForkDriverDroppedDivergedFlagIsFlagged) {
  // Same shape, but decode forgets the per-record diverged bool: every
  // subsequent record's first word is misread. R6 catches the bool-count
  // mismatch before the determinism probe has to.
  const auto r = lintOne("src/reschedule/whatif/foo.cpp", R"cpp(
    void Driver::encodeState(core::SnapshotWriter& w) const {
      w.putU64(log_.size());
      for (const auto& rec : log_) {
        w.putStr(rec.app);
        w.putF64(rec.at);
        w.putBool(rec.diverged);
      }
    }
    void Driver::decodeState(core::SnapshotReader& r) {
      log_.clear();
      const std::uint64_t n = r.getU64();
      for (std::uint64_t i = 0; i < n; ++i) {
        Record rec;
        rec.app = r.getStr();
        rec.at = r.getF64();
        log_.push_back(rec);
      }
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 1);
}

TEST(LintR6, Suppressed) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void Foo::encodeState(core::SnapshotWriter& w) const { w.putU64(a_); }
    // grads-lint: allow(R6 decode intentionally versioned, reads one field)
    void Foo::decodeState(core::SnapshotReader& r) {
      a_ = r.getU64();
      b_ = r.getU64();
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6", /*suppressed=*/false), 0);
  EXPECT_EQ(countRule(r, "R6", /*suppressed=*/true), 1);
}

// ---------------------------------------------------------------------------
// Suppression machinery.
// ---------------------------------------------------------------------------

TEST(LintSuppressions, StaleWaiverIsReportedUnused) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // grads-lint: allow(R1 nothing here actually trips R1)
    int x = 3;
  )cpp");
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_FALSE(r.suppressions[0].used);
  EXPECT_EQ(r.unsuppressedCount(), 0);
}

TEST(LintSuppressions, WaiverForWrongRuleDoesNotSuppress) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // grads-lint: allow(R4 wrong rule id)
    srand(1);
  )cpp");
  EXPECT_EQ(countRule(r, "R1", false), 1);
  EXPECT_EQ(countRule(r, "R1", true), 0);
}

TEST(LintSuppressions, MultiRuleWaiver) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // grads-lint: allow(R1,R5 fixture exercising both)
    #include <ctime>
  )cpp");
  // The include is R5; R1 part of the waiver goes stale.
  EXPECT_EQ(countRule(r, "R5", true), 1);
  EXPECT_EQ(r.unsuppressedCount(), 0);
  const int stale = static_cast<int>(std::count_if(
      r.suppressions.begin(), r.suppressions.end(),
      [](const auto& s) { return !s.used; }));
  EXPECT_EQ(stale, 1);
}

// ---------------------------------------------------------------------------
// Lexer traps.
// ---------------------------------------------------------------------------

TEST(LintLexer, RawStringsAndDigitSeparators) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    const char* r = R"(srand(1); system_clock; new int;)";
    long big = 1'000'000;  // separator must not start a char literal
    char q = '"';          // quote in char literal must not open a string
    srand(big);
  )cpp");
  // Only the real srand() call — nothing from inside the raw string.
  EXPECT_EQ(countRule(r, "R1"), 1);
}

TEST(LintLexer, MacroDefinitionsAreNotCode) {
  const auto r = lintOne("src/core/foo.hpp",
                         "#pragma once\n"
                         "#define HELPER(x)   \\\n"
                         "  do { srand(x); } while (false)\n");
  // The macro BODY defines the banned call; expansion sites get flagged
  // instead. (GRADS_REQUIRE's own definition stays lintable for the same
  // reason.)
  EXPECT_EQ(countRule(r, "R1"), 0);
}

// ---------------------------------------------------------------------------
// Oracle digest primitives.
// ---------------------------------------------------------------------------

TEST(DigestStream, OrderSensitiveAndPrefixSafe) {
  grads::util::DigestStream a;
  grads::util::DigestStream b;
  a.put(std::uint64_t{1});
  a.put(std::uint64_t{2});
  b.put(std::uint64_t{2});
  b.put(std::uint64_t{1});
  EXPECT_NE(a.digest(), b.digest());  // order matters

  grads::util::DigestStream c;
  c.put(std::uint64_t{1});
  EXPECT_NE(a.digest(), c.digest());  // prefix cannot collide (count folded)
  EXPECT_EQ(a.count(), 2u);
}

TEST(DigestStream, DoubleBitsAreFolded) {
  grads::util::DigestStream a;
  grads::util::DigestStream b;
  a.put(0.0);
  b.put(-0.0);  // distinct bit patterns must yield distinct digests
  EXPECT_NE(a.digest(), b.digest());
}

/// The in-test twin of the determinism probe: the same seeded event churn
/// run twice against fresh engines must fold identical pop streams.
std::uint64_t churnDigest(std::uint64_t seed, int events) {
  grads::sim::Engine eng;
  grads::util::DigestStream ds;
  eng.setPopObserver(
      [](void* ctx, grads::sim::Time t, std::uint64_t key, bool daemon) {
        auto* s = static_cast<grads::util::DigestStream*>(ctx);
        s->put(t);
        s->put(key);
        s->put(static_cast<std::uint64_t>(daemon));
      },
      &ds);
  grads::Rng rng(seed);
  std::vector<grads::sim::Engine::EventHandle> handles;
  for (int i = 0; i < events; ++i) {
    handles.push_back(eng.schedule(rng.exponential(0.5), [] {}));
    if (i % 5 == 2) {
      handles[static_cast<std::size_t>(rng.uniformInt(
                  0, static_cast<std::int64_t>(handles.size() - 1)))]
          .cancel();
    }
  }
  eng.run();
  return ds.digest();
}

TEST(ReplayOracle, IdenticalRunsFoldIdenticalDigests) {
  EXPECT_EQ(churnDigest(42, 2000), churnDigest(42, 2000));
  EXPECT_EQ(churnDigest(7, 2000), churnDigest(7, 2000));
}

TEST(ReplayOracle, DifferentStreamsFoldDifferentDigests) {
  EXPECT_NE(churnDigest(42, 2000), churnDigest(43, 2000));
  EXPECT_NE(churnDigest(42, 2000), churnDigest(42, 2001));
}

TEST(ReplayOracle, ObserverSeesEveryLiveEventOnce) {
  grads::sim::Engine eng;
  struct Count {
    int pops = 0;
  } count;
  eng.setPopObserver(
      [](void* ctx, grads::sim::Time, std::uint64_t, bool) {
        ++static_cast<Count*>(ctx)->pops;
      },
      &count);
  for (int i = 0; i < 10; ++i) eng.schedule(0.1 * i, [] {});
  auto doomed = eng.schedule(0.05, [] {});
  doomed.cancel();  // cancelled corpse must NOT reach the observer
  eng.run();
  EXPECT_EQ(count.pops, 10);
  EXPECT_EQ(eng.processedEvents(), 10u);
}

}  // namespace

// Unit fixtures for grads-lint (rules R1–R6, suppressions, lexer traps) and
// digest-stability checks for the replay-divergence oracle's primitives.
//
// Every rule gets: a positive fixture (must flag), a negative fixture (must
// stay silent), a suppressed fixture (flag + inline waiver), and a
// string/comment trap (banned spelling inside a literal or comment must not
// flag). Fixture sources are raw strings, which doubles as a lexer test:
// grads-lint linting THIS file must see the fixtures as string literals and
// report nothing.

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.hpp"
#include "sarif.hpp"
#include "sim/engine.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace {

using grads::lint::AnalyzeOptions;
using grads::lint::Finding;
using grads::lint::TreeReport;

TreeReport lintOne(const std::string& path, const std::string& src,
                   const AnalyzeOptions& opts = {}) {
  return grads::lint::lintSources({{path, src}}, opts);
}

int countRule(const TreeReport& r, const std::string& rule,
              bool suppressed = false) {
  return static_cast<int>(std::count_if(
      r.findings.begin(), r.findings.end(), [&](const Finding& f) {
        return f.rule == rule && f.suppressed == suppressed;
      }));
}

bool ruleMessageContains(const TreeReport& r, const std::string& rule,
                         const std::string& needle) {
  return std::any_of(r.findings.begin(), r.findings.end(),
                     [&](const Finding& f) {
                       return f.rule == rule &&
                              f.message.find(needle) != std::string::npos;
                     });
}

// ---------------------------------------------------------------------------
// R1 — wall-clock / ambient randomness.
// ---------------------------------------------------------------------------

TEST(LintR1, FlagsWallClockAndLibcRandomness) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void f() {
      auto t = std::chrono::system_clock::now();
      std::random_device rd;
      srand(42);
      int x = rand();
      long n = time(nullptr);
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R1"), 5);
}

TEST(LintR1, SilentOnRngAndMemberCalls) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    #include "util/rng.hpp"
    void f(grads::Rng& rng, Engine& eng) {
      double u = rng.uniform();
      double t = eng.time();      // member named time(): simulated, fine
      double s = clockModel.rand(); // member named rand(): fine
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R1"), 0);
}

TEST(LintR1, UtilRngItselfIsAllowed) {
  const auto r = lintOne("src/util/rng.cpp", R"cpp(
    #include <random>
    std::random_device seedSource;
  )cpp");
  EXPECT_EQ(countRule(r, "R1"), 0);
  EXPECT_EQ(countRule(r, "R5"), 0);
}

TEST(LintR1, BenchIsAllowlisted) {
  const auto r = lintOne("bench/perf_harness.cpp", R"cpp(
    #include <chrono>
    using Clock = std::chrono::steady_clock;
  )cpp");
  EXPECT_EQ(countRule(r, "R1"), 0);
  EXPECT_EQ(countRule(r, "R5"), 0);
}

TEST(LintR1, StringAndCommentTrap) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // system_clock and rand() only in a comment; time( too.
    const char* msg = "do not call rand() or srand() or system_clock";
    /* steady_clock random_device */
  )cpp");
  EXPECT_EQ(countRule(r, "R1"), 0);
}

TEST(LintR1, ForkTimeoutMustBeAnEventBudgetNotWallClock) {
  // The what-if fork driver's speculation bound: the classic wall-clock
  // fork timeout is banned in src/ — a fork that times out by wall clock
  // commits a different verdict on a loaded CI box than on a fast laptop.
  const auto bad = lintOne("src/reschedule/whatif/foo.cpp", R"cpp(
    bool forkExpired(const Fork& f) {
      const auto started = std::chrono::steady_clock::now();
      return waited(started) > kForkTimeoutMs;
    }
  )cpp");
  EXPECT_EQ(countRule(bad, "R1"), 1);
  // The virtual stand-in — a per-fork event cap — is deterministic and
  // stays silent.
  const auto good = lintOne("src/reschedule/whatif/foo.cpp", R"cpp(
    bool forkExpired(const ForkOutcome& o, std::uint64_t maxEvents) {
      return maxEvents != 0 && o.events >= maxEvents;
    }
  )cpp");
  EXPECT_EQ(countRule(good, "R1"), 0);
}

TEST(LintR1, Suppressed) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // grads-lint: allow(R1 calibration-only wall clock, never in decisions)
    auto t0 = std::chrono::steady_clock::now();
  )cpp");
  EXPECT_EQ(countRule(r, "R1", /*suppressed=*/false), 0);
  EXPECT_EQ(countRule(r, "R1", /*suppressed=*/true), 1);
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_TRUE(r.suppressions[0].used);
  EXPECT_EQ(r.suppressions[0].rule, "R1");
}

// ---------------------------------------------------------------------------
// R2 — address-order nondeterminism.
// ---------------------------------------------------------------------------

TEST(LintR2, FlagsPointerKeyedContainers) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    std::map<Task*, int> byTask;
    std::unordered_map<Node*, double> byNode;
    std::set<const Obj*> live;
  )cpp");
  EXPECT_EQ(countRule(r, "R2"), 3);
}

TEST(LintR2, SilentOnValueKeys) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    std::map<int, Task*> byId;           // pointer VALUES are fine
    std::unordered_map<std::string, int> byName;
    std::set<std::pair<int, int>> pairs;
    void g() { Set& set = sets_[0]; set.map.find(3); }  // vars named set/map
  )cpp");
  EXPECT_EQ(countRule(r, "R2"), 0);
}

TEST(LintR2, FlagsUnorderedIterationReachingDecisionApis) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    std::unordered_map<int, Item> pending_;
    void drain(Engine& eng) {
      for (auto& [id, item] : pending_) {
        eng.schedule(1.0, item.fn);   // hash order -> event order: bug
      }
      for (auto it = pending_.begin(); it != pending_.end(); ++it) {
        emit(it->second);
      }
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R2"), 2);
}

TEST(LintR2, SilentOnDecisionFreeIterationAndOrderedContainers) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    std::unordered_map<int, int> counts_;
    std::map<int, Item> ordered_;
    void tally(Engine& eng) {
      int sum = 0;
      for (auto& [k, v] : counts_) sum += v;   // pure fold: fine
      for (auto& [k, v] : ordered_) eng.schedule(1.0, v);  // ordered: fine
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R2"), 0);
}

TEST(LintR2, FlagsPointerComparingPredicate) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void s(std::vector<Node*>& xs) {
      std::sort(xs.begin(), xs.end(),
                [](const Node* a, const Node* b) { return a < b; });
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R2"), 1);
}

TEST(LintR2, SilentOnFieldComparingPredicate) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void s(std::vector<Node*>& xs) {
      std::sort(xs.begin(), xs.end(),
                [](const Node* a, const Node* b) { return a->id < b->id; });
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R2"), 0);
}

TEST(LintR2, Suppressed) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // grads-lint: allow(R2 diagnostic dump, order reaches logs only)
    std::unordered_map<Tag*, int> debugCounts;
  )cpp");
  EXPECT_EQ(countRule(r, "R2", false), 0);
  EXPECT_EQ(countRule(r, "R2", true), 1);
}

// ---------------------------------------------------------------------------
// R3 — side effects inside check macros.
// ---------------------------------------------------------------------------

TEST(LintR3, FlagsMutationsInsideChecks) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void f(int n, std::vector<int>& v) {
      GRADS_REQUIRE(n++ > 0, "increment in check");
      GRADS_ASSERT(v.erase(v.begin()) != v.end(), "erase in check");
      assert(n = 3);
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R3"), 3);
}

TEST(LintR3, SilentOnPureChecksAndMessageExpressions) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void f(int n, const std::vector<int>& v, const char* caller) {
      GRADS_REQUIRE(n >= 0 && n <= 3, "comparisons are pure");
      GRADS_REQUIRE(!v.empty(), std::string(caller) + ": msg concat is fine");
      GRADS_ASSERT(v.size() == 4, "size() is const");
      static_assert(sizeof(int) == 4);
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R3"), 0);
}

TEST(LintR3, StringTrap) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    const char* doc = "GRADS_REQUIRE(x++, ...) would be a bug";
    // GRADS_ASSERT(v.pop(), "commented out")
  )cpp");
  EXPECT_EQ(countRule(r, "R3"), 0);
}

TEST(LintR3, Suppressed) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void f(Queue& q) {
      // grads-lint: allow(R3 checked in both build legs by test_sim)
      GRADS_ASSERT(q.pop() != nullptr, "fixture");
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R3", false), 0);
  EXPECT_EQ(countRule(r, "R3", true), 1);
}

// ---------------------------------------------------------------------------
// R4 — raw allocation / std::function on hot paths.
// ---------------------------------------------------------------------------

TEST(LintR4, FlagsRawNewDeleteOutsidePool) {
  const auto r = lintOne("src/grid/foo.cpp", R"cpp(
    void f() {
      int* p = new int(3);
      delete p;
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R4"), 2);
}

TEST(LintR4, PoolInternalsAreAllowed) {
  const auto r = lintOne("src/sim/engine.cpp", R"cpp(
    void grow() { chunks_.emplace_back(new Node[4096]); }
  )cpp");
  EXPECT_EQ(countRule(r, "R4"), 0);
}

TEST(LintR4, SilentOnDeletedFunctionsAndSmartPointers) {
  const auto r = lintOne("src/grid/foo.cpp", R"cpp(
    struct A {
      A(const A&) = delete;
      A& operator=(const A&) = delete;
    };
    auto p = std::make_unique<A>();
  )cpp");
  EXPECT_EQ(countRule(r, "R4"), 0);
}

TEST(LintR4, FlagsStdFunctionInSim) {
  const auto hot = lintOne("src/sim/foo.hpp", R"cpp(
    #pragma once
    struct Q { std::function<void()> cb; };
  )cpp");
  EXPECT_EQ(countRule(hot, "R4"), 1);
  // Outside src/sim, std::function is allowed (cold control paths).
  const auto cold = lintOne("src/core/foo.hpp", R"cpp(
    #pragma once
    struct Q { std::function<void()> cb; };
  )cpp");
  EXPECT_EQ(countRule(cold, "R4"), 0);
}

TEST(LintR4, Suppressed) {
  const auto r = lintOne("src/grid/foo.cpp", R"cpp(
    void f() {
      // grads-lint: allow(R4 interop with C API that takes ownership)
      auto* raw = new Blob();
      take(raw);
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R4", false), 0);
  EXPECT_EQ(countRule(r, "R4", true), 1);
}

// ---------------------------------------------------------------------------
// R5 — include hygiene.
// ---------------------------------------------------------------------------

TEST(LintR5, FlagsBannedHeadersInSrc) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    #include <chrono>
    #include <ctime>
    #include <thread>
    #include <random>
  )cpp");
  EXPECT_EQ(countRule(r, "R5"), 4);
}

TEST(LintR5, HeaderHygiene) {
  const auto r = lintOne("src/core/foo.hpp",
                         "#include \"../grid/node.hpp\"\n"
                         "using namespace std;\n");
  // Missing pragma once + parent-relative include + using-namespace.
  EXPECT_EQ(countRule(r, "R5"), 3);
}

TEST(LintR5, CleanHeaderPasses) {
  const auto r = lintOne("src/core/foo.hpp", R"cpp(#pragma once

#include <vector>

#include "grid/node.hpp"

namespace grads::core {
class Foo {};
}  // namespace grads::core
)cpp");
  EXPECT_EQ(countRule(r, "R5"), 0);
}

TEST(LintR5, LeadingCommentBeforePragmaIsFine) {
  const auto r = lintOne("src/core/foo.hpp",
                         "// License header comment.\n#pragma once\n");
  EXPECT_EQ(countRule(r, "R5"), 0);
}

// ---------------------------------------------------------------------------
// R6 — snapshot encode/decode field symmetry.
// ---------------------------------------------------------------------------

TEST(LintR6, FlagsAsymmetricEncodeDecode) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void Foo::encodeState(core::SnapshotWriter& w) const {
      w.putU64(a_);
      w.putF64(b_);
      w.putStr(name_);
    }
    void Foo::decodeState(core::SnapshotReader& r) {
      a_ = r.getU64();
      b_ = r.getF64();
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 1);
}

TEST(LintR6, SilentOnSymmetricPairsAndDelegation) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void Foo::encodeState(core::SnapshotWriter& w) const {
      w.putU64(items_.size());
      for (const auto& it : items_) w.putF64(it);
      inner_.encodeState(w);  // delegation: counted where it is defined
    }
    void Foo::decodeState(core::SnapshotReader& r) {
      const auto n = r.getU64();
      items_.clear();
      for (std::uint64_t i = 0; i < n; ++i) items_.push_back(r.getF64());
      inner_.decodeState(r);
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 0);
}

TEST(LintR6, AttributesInClassDefinitionsToTheRightType) {
  // Two inline definitions in one file (the nws.cpp forecaster shape): the
  // symmetric class must not mask or borrow from the asymmetric one.
  const auto r = lintOne("src/services/foo.cpp", R"cpp(
    class Good : public core::Snapshottable {
      void encodeState(core::SnapshotWriter& w) const override {
        w.putF64(x_);
      }
      void decodeState(core::SnapshotReader& r) override { x_ = r.getF64(); }
    };
    struct Bad : core::Snapshottable {
      void encodeState(core::SnapshotWriter& w) const override {
        w.putF64(x_);
        w.putBool(flag_);
      }
      void decodeState(core::SnapshotReader& r) override { x_ = r.getF64(); }
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 1);
}

TEST(LintR6, DeclarationsAndSplitDefinitionsAreSilent) {
  // A header declares both; only one side is defined in this file. Per-file
  // analysis cannot compare across files, so no finding.
  const auto r = lintOne("src/core/foo.hpp", R"cpp(#pragma once
    class Foo : public core::Snapshottable {
      void encodeState(core::SnapshotWriter& w) const override;
      void decodeState(core::SnapshotReader& r) override;
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 0);
  const auto half = lintOne("src/core/foo.cpp", R"cpp(
    void Foo::encodeState(core::SnapshotWriter& w) const { w.putU64(a_); }
  )cpp");
  EXPECT_EQ(countRule(half, "R6"), 0);
}

TEST(LintR6, TenantLedgerShapeWithVectorTailIsSymmetric) {
  // The metasched tenant-ledger shape: a run of scalar counters followed by
  // a length-prefixed vector. Encode writes size+loop, decode reads
  // size+resize+loop — call-site counts match per type, so R6 is silent.
  const auto r = lintOne("src/metasched/bar.cpp", R"cpp(
    void Ledger::encodeState(core::SnapshotWriter& w) const {
      w.putI64(submitted);
      w.putI64(admitted);
      w.putI64(shed);
      w.putU64(slowdowns.size());
      for (const double s : slowdowns) w.putF64(s);
    }
    void Ledger::decodeState(core::SnapshotReader& r) {
      submitted = r.getI64();
      admitted = r.getI64();
      shed = r.getI64();
      slowdowns.resize(r.getU64());
      for (double& s : slowdowns) s = r.getF64();
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 0);
}

TEST(LintR6, TenantLedgerDroppedCounterIsFlagged) {
  // Same shape, but decode forgets one scalar: every later field shifts one
  // word and the vector length is garbage. R6 catches the count mismatch.
  const auto r = lintOne("src/metasched/bar.cpp", R"cpp(
    void Ledger::encodeState(core::SnapshotWriter& w) const {
      w.putI64(submitted);
      w.putI64(admitted);
      w.putI64(shed);
      w.putU64(slowdowns.size());
      for (const double s : slowdowns) w.putF64(s);
    }
    void Ledger::decodeState(core::SnapshotReader& r) {
      submitted = r.getI64();
      admitted = r.getI64();
      slowdowns.resize(r.getU64());
      for (double& s : slowdowns) s = r.getF64();
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 1);
}

TEST(LintR6, ForkDriverNestedDecisionLogIsSymmetric) {
  // The fork-driver shape: a length-prefixed decision log with a nested
  // per-candidate loop, followed by scalar stats and an Rng-state tail.
  // Per-type call-site counts match, so R6 stays silent.
  const auto r = lintOne("src/reschedule/whatif/foo.cpp", R"cpp(
    void Driver::encodeState(core::SnapshotWriter& w) const {
      w.putU64(log_.size());
      for (const auto& rec : log_) {
        w.putStr(rec.app);
        w.putF64(rec.at);
        w.putU64(rec.scores.size());
        for (const auto& cs : rec.scores) {
          w.putU64(static_cast<std::uint64_t>(cs.kind));
          w.putF64(cs.worstHarm);
        }
        w.putBool(rec.diverged);
      }
      w.putI64(stats_.decisions);
      w.putU64(rngState_);
    }
    void Driver::decodeState(core::SnapshotReader& r) {
      log_.clear();
      const std::uint64_t n = r.getU64();
      for (std::uint64_t i = 0; i < n; ++i) {
        Record rec;
        rec.app = r.getStr();
        rec.at = r.getF64();
        const std::uint64_t m = r.getU64();
        for (std::uint64_t j = 0; j < m; ++j) {
          Score cs;
          cs.kind = static_cast<Kind>(r.getU64());
          cs.worstHarm = r.getF64();
          rec.scores.push_back(cs);
        }
        rec.diverged = r.getBool();
        log_.push_back(rec);
      }
      stats_.decisions = static_cast<int>(r.getI64());
      rngState_ = r.getU64();
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 0);
}

TEST(LintR6, ForkDriverDroppedDivergedFlagIsFlagged) {
  // Same shape, but decode forgets the per-record diverged bool: every
  // subsequent record's first word is misread. R6 catches the bool-count
  // mismatch before the determinism probe has to.
  const auto r = lintOne("src/reschedule/whatif/foo.cpp", R"cpp(
    void Driver::encodeState(core::SnapshotWriter& w) const {
      w.putU64(log_.size());
      for (const auto& rec : log_) {
        w.putStr(rec.app);
        w.putF64(rec.at);
        w.putBool(rec.diverged);
      }
    }
    void Driver::decodeState(core::SnapshotReader& r) {
      log_.clear();
      const std::uint64_t n = r.getU64();
      for (std::uint64_t i = 0; i < n; ++i) {
        Record rec;
        rec.app = r.getStr();
        rec.at = r.getF64();
        log_.push_back(rec);
      }
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6"), 1);
}

TEST(LintR6, Suppressed) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    void Foo::encodeState(core::SnapshotWriter& w) const { w.putU64(a_); }
    // grads-lint: allow(R6 decode intentionally versioned, reads one field)
    void Foo::decodeState(core::SnapshotReader& r) {
      a_ = r.getU64();
      b_ = r.getU64();
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R6", /*suppressed=*/false), 0);
  EXPECT_EQ(countRule(r, "R6", /*suppressed=*/true), 1);
}

// ---------------------------------------------------------------------------
// R7 — mutable static / thread_local state.
// ---------------------------------------------------------------------------

TEST(LintR7, FlagsMutableStaticsAtEveryScope) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    static int fileCounter = 0;
    thread_local int tlsSlot = 0;
    int nextTicket() {
      static int next = 0;
      return ++next;
    }
    struct Stats {
      static int hits_;
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R7"), 4);
  EXPECT_TRUE(ruleMessageContains(r, "R7", "file/namespace-scope static"));
  EXPECT_TRUE(ruleMessageContains(r, "R7", "function-local static"));
  EXPECT_TRUE(ruleMessageContains(r, "R7", "mutable static data member"));
  EXPECT_TRUE(ruleMessageContains(r, "R7", "thread_local"));
}

TEST(LintR7, ConstAndConstexprStaticsAreExempt) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    static const int kRetries = 3;
    static constexpr double kEpsilon = 1e-9;
    namespace detail {
    static constinit int kSlots = 8;
    }
    static int helper() { return kRetries; }
  )cpp");
  EXPECT_EQ(countRule(r, "R7"), 0);  // values are immutable; helper is a fn
}

TEST(LintR7, ThreadLocalIsFlaggedEvenWhenConst) {
  // Const-ness does not rescue thread_local: the value is per-thread, so the
  // first thread to initialise it pins behaviour invisibly.
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    thread_local const double kSlot = 1.0;
  )cpp");
  EXPECT_EQ(countRule(r, "R7"), 1);
}

TEST(LintR7, BenchIsOnlyInScopeUnderSelfcheck) {
  const std::string src = "static int scratch = 0;\n";
  EXPECT_EQ(countRule(lintOne("bench/foo.cpp", src), "R7"), 0);
  EXPECT_EQ(countRule(lintOne("bench/foo.cpp", src, AnalyzeOptions{true}),
                      "R7"),
            1);
  EXPECT_EQ(countRule(lintOne("tools/lint/foo.cpp", src, AnalyzeOptions{true}),
                      "R7"),
            1);
  // tests/ fixtures break rules on purpose — never in scope.
  EXPECT_EQ(countRule(lintOne("tests/foo.cpp", src, AnalyzeOptions{true}),
                      "R7"),
            0);
}

TEST(LintR7, Suppressed) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // grads-lint: allow(R7 documented singleton - fixture)
    static int registry = 0;
  )cpp");
  EXPECT_EQ(countRule(r, "R7", true), 1);
  EXPECT_EQ(countRule(r, "R7", false), 0);
}

// ---------------------------------------------------------------------------
// R8 — architecture layering DAG.
// ---------------------------------------------------------------------------

TEST(LintR8, UpwardIncludeInvertsTheDag) {
  const auto r = lintOne("src/grid/foo.cpp",
                         "#include \"reschedule/srs.hpp\"\n");
  EXPECT_EQ(countRule(r, "R8"), 1);
  EXPECT_TRUE(ruleMessageContains(r, "R8", "inverts the architecture DAG"));
}

TEST(LintR8, DownwardSameLayerAndSystemIncludesAreSilent) {
  const auto r = lintOne("src/reschedule/foo.cpp",
                         "#include <vector>\n"
                         "#include \"grid/node.hpp\"\n"
                         "#include \"reschedule/journal.hpp\"\n"
                         "#include \"util/log.hpp\"\n");
  EXPECT_EQ(countRule(r, "R8"), 0);
}

TEST(LintR8, CompositionRootOverridesOutrankTheirDirectory) {
  // core/app_manager sits above the rescheduler it drives, the rest of
  // core/ does not.
  const std::string inc = "#include \"reschedule/srs.hpp\"\n";
  EXPECT_EQ(countRule(lintOne("src/core/app_manager.cpp", inc), "R8"), 0);
  EXPECT_EQ(countRule(lintOne("src/core/binder.cpp", inc), "R8"), 0);
  EXPECT_EQ(countRule(lintOne("src/core/launch.cpp", inc), "R8"), 1);
}

TEST(LintR8, OnlySrcIsInScope) {
  // bench/tests/tools sit on top of the whole tree and may include anything.
  const auto r = lintOne("bench/foo.cpp",
                         "#include \"metasched/frontend.hpp\"\n",
                         AnalyzeOptions{true});
  EXPECT_EQ(countRule(r, "R8"), 0);
}

TEST(LintR8, Suppressed) {
  const auto r = lintOne("src/grid/foo.cpp",
                         "// grads-lint: allow(R8 transitional edge)\n"
                         "#include \"metasched/frontend.hpp\"\n");
  EXPECT_EQ(countRule(r, "R8", true), 1);
  EXPECT_EQ(countRule(r, "R8", false), 0);
}

// ---------------------------------------------------------------------------
// R9 — snapshot field coverage.
// ---------------------------------------------------------------------------

TEST(LintR9, SeededMissingFieldIsCaught) {
  // The acceptance fixture: one field escapes the snapshot.
  const auto r = lintOne("src/core/counter.hpp", R"cpp(
    #pragma once
    class Counter {
     public:
      void encodeState(core::Codec& c) const { c.put(count_); }
      void decodeState(core::Codec& c) { c.get(count_); }

     private:
      double count_ = 0.0;
      double missed_ = 0.0;
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R9"), 1);
  EXPECT_TRUE(ruleMessageContains(r, "R9", "missed_"));
  EXPECT_TRUE(ruleMessageContains(r, "R9", "Counter::encodeState"));
}

TEST(LintR9, FullyCoveredClassIsSilent) {
  const auto r = lintOne("src/core/counter.hpp", R"cpp(
    #pragma once
    class Counter {
     public:
      void encodeState(core::Codec& c) const {
        c.put(count_);
        c.put(missed_);
      }
      void decodeState(core::Codec& c) {
        c.get(count_);
        c.get(missed_);
      }

     private:
      double count_ = 0.0;
      double missed_ = 0.0;
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R9"), 0);
}

TEST(LintR9, TransientAnnotationSilencesButNeedsAReason) {
  const auto r = lintOne("src/core/widget.hpp", R"cpp(
    #pragma once
    class Widget {
     public:
      void encodeState(core::Codec& c) const { c.put(id_); }
      void decodeState(core::Codec& c) { c.get(id_); }

     private:
      int id_ = 0;
      sim::Engine* engine_ = nullptr;  // grads: transient(wiring pointer)
      // grads: transient()
      int scratch_ = 0;
    };
  )cpp");
  // engine_ is waived with a reason; scratch_'s empty annotation is itself
  // a finding (and suppresses the coverage complaint).
  EXPECT_EQ(countRule(r, "R9"), 1);
  EXPECT_TRUE(ruleMessageContains(r, "R9", "needs a reason"));
  EXPECT_FALSE(ruleMessageContains(r, "R9", "engine_"));
}

TEST(LintR9, OutOfLineDefinitionJoinsAcrossFiles) {
  const auto r = grads::lint::lintSources({
      {"src/core/widget.hpp",
       "#pragma once\n"
       "class Widget {\n"
       " public:\n"
       "  void encodeState(core::Codec& c) const;\n"
       "  void decodeState(core::Codec& c);\n"
       " private:\n"
       "  int kept_ = 0;\n"
       "  int lost_ = 0;\n"
       "};\n"},
      {"src/core/widget.cpp",
       "#include \"core/widget.hpp\"\n"
       "void Widget::encodeState(core::Codec& c) const { c.put(kept_); }\n"
       "void Widget::decodeState(core::Codec& c) { c.get(kept_); }\n"},
  });
  EXPECT_EQ(countRule(r, "R9"), 1);
  EXPECT_TRUE(ruleMessageContains(r, "R9", "lost_"));
  // The finding lands on the header's member, not the .cpp definition.
  const auto it = std::find_if(
      r.findings.begin(), r.findings.end(),
      [](const Finding& f) { return f.rule == "R9" && !f.suppressed; });
  ASSERT_NE(it, r.findings.end());
  EXPECT_EQ(it->file, "src/core/widget.hpp");
}

TEST(LintR9, DelegatedEncodeCountsAsCoverage) {
  const auto r = lintOne("src/core/outer.hpp", R"cpp(
    #pragma once
    class Outer {
     public:
      void encodeState(core::Codec& c) const { inner_.encodeState(c); }
      void decodeState(core::Codec& c) { inner_.decodeState(c); }

     private:
      Inner inner_;
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R9"), 0);
}

TEST(LintR9, TestFixturesAreOutOfScope) {
  const auto r = lintOne("tests/fixture.cpp", R"cpp(
    class Leaky {
     public:
      void encodeState(core::Codec& c) const { c.put(a_); }
     private:
      int a_ = 0;
      int b_ = 0;
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R9"), 0);
}

TEST(LintR9, Suppressed) {
  const auto r = lintOne("src/core/gauge.hpp", R"cpp(
    #pragma once
    class Gauge {
     public:
      void encodeState(core::Codec& c) const { c.put(total_); }
      void decodeState(core::Codec& c) { c.get(total_); }

     private:
      double total_ = 0.0;
      // grads-lint: allow(R9 rebuilt by the owner's decode pass)
      double cached_ = 0.0;
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R9", true), 1);
  EXPECT_EQ(countRule(r, "R9", false), 0);
}

// ---------------------------------------------------------------------------
// R10 — by-reference captures handed to the engine.
// ---------------------------------------------------------------------------

TEST(LintR10, FlagsDefaultRefAndExplicitRefCaptures) {
  const auto r = lintOne("src/grid/foo.cpp", R"cpp(
    void arm(sim::Engine& e, int x) {
      e.schedule(1.0, [&] { go(); });
      e.scheduleDaemon(2.0, [&x] { use(x); });
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R10"), 2);
  EXPECT_TRUE(ruleMessageContains(r, "R10", "Engine::schedule"));
  EXPECT_TRUE(ruleMessageContains(r, "R10", "'&x'"));
}

TEST(LintR10, ValueThisAndInitCapturesAreSilent) {
  const auto r = lintOne("src/grid/foo.cpp", R"cpp(
    class Timer {
     public:
      void arm() {
        engine_->schedule(1.0, [this, n = count_] { tick(n); });
        engine_->scheduleAt(2.0, [count = count_] { report(count); });
      }

     private:
      sim::Engine* engine_ = nullptr;
      int count_ = 0;
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R10"), 0);
}

TEST(LintR10, LambdaNestedInsideAnotherCallIsNotAScheduleArg) {
  // The [&] sits at paren depth 2 (argument of makeCb, not of schedule):
  // whatever makeCb does with it is its own contract.
  const auto r = lintOne("src/grid/foo.cpp", R"cpp(
    void arm(sim::Engine& e) {
      e.schedule(1.0, makeCb([&] { go(); }));
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R10"), 0);
}

TEST(LintR10, BenchDriversAreOutOfScope) {
  // bench mains own their frames and join before return — even --selfcheck
  // leaves R10 src-only.
  const auto r = lintOne("bench/foo.cpp", R"cpp(
    void drive(sim::Engine& e, int x) {
      e.schedule(1.0, [&x] { use(x); });
    }
  )cpp",
                         AnalyzeOptions{true});
  EXPECT_EQ(countRule(r, "R10"), 0);
}

TEST(LintR10, Suppressed) {
  const auto r = lintOne("src/grid/foo.cpp", R"cpp(
    void arm(sim::Engine& e) {
      // grads-lint: allow(R10 frame joined before return - fixture)
      e.schedule(0.0, [&] { go(); });
    }
  )cpp");
  EXPECT_EQ(countRule(r, "R10", true), 1);
  EXPECT_EQ(countRule(r, "R10", false), 0);
}

// ---------------------------------------------------------------------------
// R11 — engine-affinity.
// ---------------------------------------------------------------------------

TEST(LintR11, InternalLinkageFnTouchingAffineStateIsFlagged) {
  const auto r = lintOne("src/sim/clock.cpp", R"cpp(
    // grads: affinity(engine)
    class Clock {
     public:
      void tick();

     private:
      double now_ = 0.0;
    };

    namespace {
    void poke(Clock* c) { c->now_ += 1.0; }
    }  // namespace
  )cpp");
  EXPECT_EQ(countRule(r, "R11"), 1);
  EXPECT_TRUE(ruleMessageContains(r, "R11", "affinity(engine)"));
  EXPECT_TRUE(ruleMessageContains(r, "R11", "'poke'"));
}

TEST(LintR11, MethodCallsAndExternalLinkageFnsAreSilent) {
  const auto r = lintOne("src/sim/clock.cpp", R"cpp(
    // grads: affinity(engine)
    class Clock {
     public:
      void tick();

     private:
      double now_ = 0.0;
    };

    namespace {
    void pump(Clock* c) { c->tick(); }  // a method call, not a member poke
    }  // namespace

    void pokePublic(Clock* c) { c->now_ += 1.0; }  // external linkage
  )cpp");
  EXPECT_EQ(countRule(r, "R11"), 0);
}

TEST(LintR11, CrossAffinityClassAccessIsFlagged) {
  const auto r = lintOne("src/sim/clock.cpp", R"cpp(
    // grads: affinity(engine)
    class Clock {
     public:
      void tick();

     private:
      double now_ = 0.0;
    };

    // grads: affinity(metrics)
    class Probe {
     public:
      void sample(Clock* c) { last_ = c->now_; }

     private:
      double last_ = 0.0;
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R11"), 1);
  EXPECT_TRUE(ruleMessageContains(r, "R11", "cross-affinity"));
}

TEST(LintR11, SameTagAndOwnMemberShadowAreSilent) {
  const auto r = lintOne("src/sim/clock.cpp", R"cpp(
    // grads: affinity(engine)
    class Clock {
     private:
      double now_ = 0.0;
    };

    // grads: affinity(engine)
    class Reader {
     public:
      void sample(Clock* c) { last_ = c->now_; }  // same tag: fine

     private:
      double last_ = 0.0;
    };

    // grads: affinity(metrics)
    class Mirror {
     public:
      void sync(Mirror* peer) { peer->now_ = 0.0; }  // our own member

     private:
      double now_ = 0.0;
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R11"), 0);
}

TEST(LintR11, Suppressed) {
  const auto r = lintOne("src/sim/clock.cpp", R"cpp(
    // grads: affinity(engine)
    class Clock {
     private:
      double now_ = 0.0;
    };

    namespace {
    double read(const Clock* c) {
      // grads-lint: allow(R11 read-only probe - fixture)
      return c->now_;
    }
    }  // namespace
  )cpp");
  EXPECT_EQ(countRule(r, "R11", true), 1);
  EXPECT_EQ(countRule(r, "R11", false), 0);
}

// ---------------------------------------------------------------------------
// Suppression machinery.
// ---------------------------------------------------------------------------

TEST(LintSuppressions, StaleWaiverIsReportedUnused) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // grads-lint: allow(R1 nothing here actually trips R1)
    int x = 3;
  )cpp");
  ASSERT_EQ(r.suppressions.size(), 1u);
  EXPECT_FALSE(r.suppressions[0].used);
  EXPECT_EQ(r.unsuppressedCount(), 0);
}

TEST(LintSuppressions, WaiverForWrongRuleDoesNotSuppress) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // grads-lint: allow(R4 wrong rule id)
    srand(1);
  )cpp");
  EXPECT_EQ(countRule(r, "R1", false), 1);
  EXPECT_EQ(countRule(r, "R1", true), 0);
}

TEST(LintSuppressions, MultiRuleWaiver) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    // grads-lint: allow(R1,R5 fixture exercising both)
    #include <ctime>
  )cpp");
  // The include is R5; R1 part of the waiver goes stale.
  EXPECT_EQ(countRule(r, "R5", true), 1);
  EXPECT_EQ(r.unsuppressedCount(), 0);
  const int stale = static_cast<int>(std::count_if(
      r.suppressions.begin(), r.suppressions.end(),
      [](const auto& s) { return !s.used; }));
  EXPECT_EQ(stale, 1);
}

// ---------------------------------------------------------------------------
// Lexer traps.
// ---------------------------------------------------------------------------

TEST(LintLexer, RawStringsAndDigitSeparators) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    const char* r = R"(srand(1); system_clock; new int;)";
    long big = 1'000'000;  // separator must not start a char literal
    char q = '"';          // quote in char literal must not open a string
    srand(big);
  )cpp");
  // Only the real srand() call — nothing from inside the raw string.
  EXPECT_EQ(countRule(r, "R1"), 1);
}

TEST(LintLexer, MacroDefinitionsAreNotCode) {
  const auto r = lintOne("src/core/foo.hpp",
                         "#pragma once\n"
                         "#define HELPER(x)   \\\n"
                         "  do { srand(x); } while (false)\n");
  // The macro BODY defines the banned call; expansion sites get flagged
  // instead. (GRADS_REQUIRE's own definition stays lintable for the same
  // reason.)
  EXPECT_EQ(countRule(r, "R1"), 0);
}

TEST(LintLexer, UserDefinedLiterals) {
  const auto r = lintOne("src/core/foo.cpp", R"cpp(
    constexpr double kWork = 1'000'000.5;
    auto budget = 2'500_flops;       // UDL suffix glues to the pp-number
    auto label = "qr"_channel;       // string UDL
    srand(1);
  )cpp");
  EXPECT_EQ(countRule(r, "R1"), 1);  // only the real srand survives lexing
}

TEST(LintLexer, NestedTemplateAnglesInMemberDecls) {
  // The member parser must carry `slices_` (and only it) through the nested
  // angle brackets — R9's verdict proves the declarator was found.
  const auto r = lintOne("src/core/table.hpp", R"cpp(
    #pragma once
    class Table {
     public:
      void encodeState(core::Codec& c) const { c.put(names_); }
      void decodeState(core::Codec& c) { c.get(names_); }

     private:
      std::map<std::pair<std::string, int>, std::vector<double>> slices_;
      std::vector<std::string> names_;
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R9"), 1);
  EXPECT_TRUE(ruleMessageContains(r, "R9", "slices_"));
}

TEST(LintLexer, BracedDefaultMemberInitializers) {
  // `taps_{1, 2, 3}` must parse as a default member initializer, not a
  // function body — both members are covered, so R9 stays silent.
  const auto r = lintOne("src/core/buf.hpp", R"cpp(
    #pragma once
    class Buf {
     public:
      void encodeState(core::Codec& c) const {
        c.put(taps_);
        c.put(limit_);
      }
      void decodeState(core::Codec& c) {
        c.get(taps_);
        c.get(limit_);
      }

     private:
      std::vector<int> taps_{1, 2, 3};
      double limit_{0.5};
    };
  )cpp");
  EXPECT_EQ(countRule(r, "R9"), 0);
}

// ---------------------------------------------------------------------------
// SARIF emission.
// ---------------------------------------------------------------------------

TEST(Sarif, EmitsRulesResultsAndSuppressions) {
  TreeReport r;
  r.findings.push_back(Finding{"src/core/foo.cpp", 12, "R1", "error",
                               "ambient \"clock\" call", false, {}});
  r.findings.push_back(Finding{"src/util/log.cpp", 11, "R7", "error",
                               "static cfg", true, "logging singleton"});
  r.filesScanned = 2;

  std::ostringstream os;
  grads::lint::writeSarif(os, r);
  const std::string s = os.str();

  EXPECT_NE(s.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(s.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(s.find("\"name\": \"grads-lint\""), std::string::npos);
  // Every rule id is present in the driver metadata.
  for (int i = 1; i <= 11; ++i) {
    EXPECT_NE(s.find("{\"id\": \"R" + std::to_string(i) + "\""),
              std::string::npos)
        << "driver rule R" << i;
  }
  // The finding: id, location, line, and JSON-escaped message.
  EXPECT_NE(s.find("\"ruleId\": \"R1\""), std::string::npos);
  EXPECT_NE(s.find("\"uri\": \"src/core/foo.cpp\""), std::string::npos);
  EXPECT_NE(s.find("\"uriBaseId\": \"%SRCROOT%\""), std::string::npos);
  EXPECT_NE(s.find("\"startLine\": 12"), std::string::npos);
  EXPECT_NE(s.find("ambient \\\"clock\\\" call"), std::string::npos);
  // The waived finding carries an inSource suppression with the reason.
  EXPECT_NE(s.find("\"kind\": \"inSource\""), std::string::npos);
  EXPECT_NE(s.find("\"justification\": \"logging singleton\""),
            std::string::npos);
}

TEST(Sarif, EscapesControlCharactersAndBackslashes) {
  TreeReport r;
  r.findings.push_back(Finding{"src/core/foo.cpp", 0, "R5", "error",
                               "path\\with\nnewline\tand\x01" "ctl", false,
                               {}});
  std::ostringstream os;
  grads::lint::writeSarif(os, r);
  const std::string s = os.str();
  EXPECT_NE(s.find("path\\\\with\\nnewline\\tand\\u0001ctl"),
            std::string::npos);
  // Line 0 is clamped to 1 — SARIF regions are 1-based.
  EXPECT_NE(s.find("\"startLine\": 1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Oracle digest primitives.
// ---------------------------------------------------------------------------

TEST(DigestStream, OrderSensitiveAndPrefixSafe) {
  grads::util::DigestStream a;
  grads::util::DigestStream b;
  a.put(std::uint64_t{1});
  a.put(std::uint64_t{2});
  b.put(std::uint64_t{2});
  b.put(std::uint64_t{1});
  EXPECT_NE(a.digest(), b.digest());  // order matters

  grads::util::DigestStream c;
  c.put(std::uint64_t{1});
  EXPECT_NE(a.digest(), c.digest());  // prefix cannot collide (count folded)
  EXPECT_EQ(a.count(), 2u);
}

TEST(DigestStream, DoubleBitsAreFolded) {
  grads::util::DigestStream a;
  grads::util::DigestStream b;
  a.put(0.0);
  b.put(-0.0);  // distinct bit patterns must yield distinct digests
  EXPECT_NE(a.digest(), b.digest());
}

/// The in-test twin of the determinism probe: the same seeded event churn
/// run twice against fresh engines must fold identical pop streams.
std::uint64_t churnDigest(std::uint64_t seed, int events) {
  grads::sim::Engine eng;
  grads::util::DigestStream ds;
  eng.setPopObserver(
      [](void* ctx, grads::sim::Time t, std::uint64_t key, bool daemon) {
        auto* s = static_cast<grads::util::DigestStream*>(ctx);
        s->put(t);
        s->put(key);
        s->put(static_cast<std::uint64_t>(daemon));
      },
      &ds);
  grads::Rng rng(seed);
  std::vector<grads::sim::Engine::EventHandle> handles;
  for (int i = 0; i < events; ++i) {
    handles.push_back(eng.schedule(rng.exponential(0.5), [] {}));
    if (i % 5 == 2) {
      handles[static_cast<std::size_t>(rng.uniformInt(
                  0, static_cast<std::int64_t>(handles.size() - 1)))]
          .cancel();
    }
  }
  eng.run();
  return ds.digest();
}

TEST(ReplayOracle, IdenticalRunsFoldIdenticalDigests) {
  EXPECT_EQ(churnDigest(42, 2000), churnDigest(42, 2000));
  EXPECT_EQ(churnDigest(7, 2000), churnDigest(7, 2000));
}

TEST(ReplayOracle, DifferentStreamsFoldDifferentDigests) {
  EXPECT_NE(churnDigest(42, 2000), churnDigest(43, 2000));
  EXPECT_NE(churnDigest(42, 2000), churnDigest(42, 2001));
}

TEST(ReplayOracle, ObserverSeesEveryLiveEventOnce) {
  grads::sim::Engine eng;
  struct Count {
    int pops = 0;
  } count;
  eng.setPopObserver(
      [](void* ctx, grads::sim::Time, std::uint64_t, bool) {
        ++static_cast<Count*>(ctx)->pops;
      },
      &count);
  for (int i = 0; i < 10; ++i) eng.schedule(0.1 * i, [] {});
  auto doomed = eng.schedule(0.05, [] {});
  doomed.cancel();  // cancelled corpse must NOT reach the observer
  eng.run();
  EXPECT_EQ(count.pops, 10);
  EXPECT_EQ(eng.processedEvents(), 10u);
}

}  // namespace

// End-to-end reproduction guards: these tests pin the *shape* of the
// paper's headline results (Figure 3, Figure 4, MicroGrid fidelity,
// opportunistic rescheduling) so regressions in any subsystem surface here.

#include <gtest/gtest.h>

#include "apps/nbody.hpp"
#include "apps/qr.hpp"
#include "core/app_manager.hpp"
#include "grid/load.hpp"
#include "grid/testbeds.hpp"
#include "microgrid/dml.hpp"
#include "reschedule/rescheduler.hpp"
#include "reschedule/swap.hpp"
#include "services/gis.hpp"
#include "services/ibp.hpp"
#include "services/nws.hpp"
#include "sim/sync.hpp"

namespace grads {
namespace {

struct QrRun {
  core::RunBreakdown breakdown;
  bool migrated = false;
};

QrRun runQrScenario(std::size_t n, reschedule::ReschedulerMode mode) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  services::Gis gis(g);
  gis.installEverywhere(services::software::kLocalBinder);
  gis.installEverywhere(services::software::kScalapack);
  gis.installEverywhere(services::software::kSrsLibrary);
  gis.installEverywhere(services::software::kAutopilotSensors);
  services::Nws nws(eng, g, 10.0, 0.01, 42);
  nws.start();
  services::Ibp ibp(g);
  autopilot::AutopilotManager autopilot(eng);
  grid::applyLoadTrace(eng, g.node(tb.utkNodes[0]),
                       grid::LoadTrace::stepAt(300.0, 2.65));
  apps::QrConfig cfg;
  cfg.n = n;
  const core::Cop cop = apps::makeQrCop(g, cfg);
  reschedule::ReschedulerOptions ropts;
  ropts.mode = mode;
  ropts.worstCaseMigrationSec = 900.0;
  reschedule::StopRestartRescheduler rescheduler(gis, &nws, ropts);
  core::AppManager manager(g, gis, &nws, ibp, autopilot);
  QrRun run;
  eng.spawn(manager.run(cop, &rescheduler, core::ManagerOptions{},
                        &run.breakdown));
  eng.run();
  run.migrated = run.breakdown.incarnations > 1;
  return run;
}

TEST(Fig3, SmallProblemStaysAndThatIsCorrect) {
  const auto stay = runQrScenario(6000, reschedule::ReschedulerMode::kForcedStay);
  const auto mig =
      runQrScenario(6000, reschedule::ReschedulerMode::kForcedMigrate);
  const auto dflt = runQrScenario(6000, reschedule::ReschedulerMode::kDefault);
  EXPECT_LT(stay.breakdown.totalSeconds, mig.breakdown.totalSeconds);
  EXPECT_FALSE(dflt.migrated);
}

TEST(Fig3, WrongDecisionAtN8000) {
  // "for matrix size 8000, the rescheduler assumed an experimentally-
  // determined worst-case rescheduling cost of 900 seconds while the actual
  // rescheduling cost was about 420 seconds" → it stays although migration
  // actually wins.
  const auto stay = runQrScenario(8000, reschedule::ReschedulerMode::kForcedStay);
  const auto mig =
      runQrScenario(8000, reschedule::ReschedulerMode::kForcedMigrate);
  const auto dflt = runQrScenario(8000, reschedule::ReschedulerMode::kDefault);
  EXPECT_LT(mig.breakdown.totalSeconds, stay.breakdown.totalSeconds);
  EXPECT_FALSE(dflt.migrated) << "the pessimistic estimate must win";
  // Actual rescheduling cost ≈ 420 s, dominated by reading checkpoints.
  const double read = mig.breakdown.sumSegment(mig.breakdown.checkpointRead);
  const double write = mig.breakdown.sumSegment(mig.breakdown.checkpointWrite);
  EXPECT_NEAR(read, 420.0, 60.0);
  EXPECT_GT(read, 20.0 * write);
}

TEST(Fig3, LargeProblemMigratesAndBenefits) {
  const auto stay =
      runQrScenario(12000, reschedule::ReschedulerMode::kForcedStay);
  const auto mig =
      runQrScenario(12000, reschedule::ReschedulerMode::kForcedMigrate);
  const auto dflt = runQrScenario(12000, reschedule::ReschedulerMode::kDefault);
  EXPECT_TRUE(dflt.migrated);
  EXPECT_LT(mig.breakdown.totalSeconds, 0.75 * stay.breakdown.totalSeconds);
  // "the rescheduling benefits are greater for large problem sizes".
  EXPECT_LT(dflt.breakdown.totalSeconds, stay.breakdown.totalSeconds);
}

struct SwapRun {
  apps::NBodyProgress progress;
  std::vector<reschedule::SwapManager::SwapEvent> swaps;
  std::vector<grid::ClusterId> finalClusters;
  double finishedAt = 0.0;
};

SwapRun runSwapScenario(reschedule::SwapPolicy policy) {
  sim::Engine eng;
  grid::Grid g(eng);
  const microgrid::EmulationOptions emu;
  microgrid::instantiate(g, microgrid::parseDml(microgrid::swapExperimentDml()),
                         &emu);
  services::Nws nws(eng, g, 10.0, 0.01, 7);
  nws.start();
  const auto utk = g.clusterNodes(*g.findCluster("utk"));
  const auto uiuc = g.clusterNodes(*g.findCluster("uiuc"));
  grid::applyLoadTrace(eng, g.node(utk[0]), grid::LoadTrace::stepAt(80.0, 2.0));
  apps::NBodyConfig cfg;
  cfg.particles = 10000;
  cfg.iterations = 100;
  vmpi::World world(g, {utk[0], utk[1], utk[2]}, "nbody");
  std::vector<grid::NodeId> pool = utk;
  pool.insert(pool.end(), uiuc.begin(), uiuc.end());
  reschedule::SwapConfig scfg;
  scfg.policy = policy;
  scfg.flopsPerRankPerIteration = apps::nbodyIterationFlopsPerRank(cfg, 3);
  scfg.messagesPerIteration = 4.0;
  reschedule::SwapManager swap(world, pool, &nws, scfg);
  swap.start();
  SwapRun run;
  for (int r = 0; r < 3; ++r) {
    eng.spawn(apps::nbodyRank(world, &swap, cfg, r, nullptr, "nbody",
                              &run.progress));
  }
  eng.run();
  run.swaps = swap.history();
  run.finishedAt = eng.now();
  for (int r = 0; r < 3; ++r) {
    run.finalClusters.push_back(g.node(world.nodeOf(r)).cluster());
  }
  return run;
}

TEST(Fig4, AllWorkersSwapToUiucShortlyAfterLoad) {
  const auto run = runSwapScenario(reschedule::SwapPolicy::kModelBased);
  ASSERT_EQ(run.swaps.size(), 3u);
  for (const auto& e : run.swaps) {
    EXPECT_GT(e.time, 80.0);    // no swaps before the load appears
    EXPECT_LT(e.time, 150.0);   // "migrated ... by time 150 seconds"
  }
  // All three workers end on the same (UIUC) cluster.
  EXPECT_EQ(run.finalClusters[0], run.finalClusters[1]);
  EXPECT_EQ(run.finalClusters[1], run.finalClusters[2]);
}

TEST(Fig4, ProgressSlopeDipsAndRecovers) {
  const auto run = runSwapScenario(reschedule::SwapPolicy::kModelBased);
  const auto& s = run.progress.samples;
  ASSERT_GT(s.size(), 40u);
  // Per-iteration time before the load (samples 5..25 are safely pre-80 s).
  const double before = (s[25].first - s[5].first) / 20.0;
  // The worst single iteration (the loaded interval before the swap lands).
  double maxGap = 0.0;
  double maxGapAt = 0.0;
  for (std::size_t i = 1; i < s.size(); ++i) {
    const double gap = s[i].first - s[i - 1].first;
    if (gap > maxGap) {
      maxGap = gap;
      maxGapAt = s[i].first;
    }
  }
  // Per-iteration time over the final 20 iterations (post-swap, on UIUC).
  const double after =
      (s.back().first - s[s.size() - 21].first) / 20.0;

  EXPECT_GT(maxGap, 2.0 * before);          // the dip is pronounced...
  EXPECT_GE(maxGapAt, 80.0);                // ...and caused by the load
  EXPECT_LE(maxGapAt, 160.0);
  EXPECT_LT(after, 0.7 * maxGap);           // slope recovers after the swap
  // UIUC nodes are slower than unloaded UTK but far better than loaded UTK.
  EXPECT_LT(after, 1.5 * before);
}

TEST(Fig4, SwappingBeatsNoSwapping) {
  const auto swap = runSwapScenario(reschedule::SwapPolicy::kModelBased);
  const auto noSwap = runSwapScenario(reschedule::SwapPolicy::kNever);
  EXPECT_LT(swap.finishedAt, 0.7 * noSwap.finishedAt);
}

TEST(MicrogridFidelity, EmulationTracksDirectSimulation) {
  // Run the Fig-4 scenario once without emulation overheads by hand.
  auto runDirect = [] {
    sim::Engine eng;
    grid::Grid g(eng);
    microgrid::instantiate(
        g, microgrid::parseDml(microgrid::swapExperimentDml()));
    services::Nws nws(eng, g, 10.0, 0.01, 7);
    nws.start();
    const auto utk = g.clusterNodes(*g.findCluster("utk"));
    const auto uiuc = g.clusterNodes(*g.findCluster("uiuc"));
    grid::applyLoadTrace(eng, g.node(utk[0]),
                         grid::LoadTrace::stepAt(80.0, 2.0));
    apps::NBodyConfig cfg;
    cfg.particles = 10000;
    cfg.iterations = 100;
    vmpi::World world(g, {utk[0], utk[1], utk[2]}, "nbody");
    std::vector<grid::NodeId> pool = utk;
    pool.insert(pool.end(), uiuc.begin(), uiuc.end());
    reschedule::SwapConfig scfg;
    scfg.policy = reschedule::SwapPolicy::kModelBased;
    scfg.flopsPerRankPerIteration = apps::nbodyIterationFlopsPerRank(cfg, 3);
    reschedule::SwapManager swap(world, pool, &nws, scfg);
    swap.start();
    for (int r = 0; r < 3; ++r) {
      eng.spawn(apps::nbodyRank(world, &swap, cfg, r, nullptr, "nb", nullptr));
    }
    eng.run();
    return std::pair{eng.now(), swap.history().size()};
  };
  const auto [directTime, directSwaps] = runDirect();
  const auto emulated = runSwapScenario(reschedule::SwapPolicy::kModelBased);
  EXPECT_EQ(directSwaps, emulated.swaps.size());  // same decisions
  EXPECT_NEAR(emulated.finishedAt, directTime, 0.05 * directTime);
}

}  // namespace
}  // namespace grads

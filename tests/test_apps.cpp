#include <gtest/gtest.h>

#include <numeric>

#include "apps/eman.hpp"
#include "apps/nbody.hpp"
#include "apps/qr.hpp"
#include "grid/testbeds.hpp"
#include "services/gis.hpp"
#include "sim/sync.hpp"
#include "util/error.hpp"
#include "workflow/scheduler.hpp"

namespace grads::apps {
namespace {

TEST(QrMath, PanelFlopsSumToQrTotal) {
  QrConfig cfg;
  cfg.n = 4000;
  cfg.panel = 50;
  double total = 0.0;
  for (std::size_t k = 0; k < qrPanelCount(cfg); ++k) {
    total += qrPanelFlops(cfg, k);
  }
  const double expected = 4.0 / 3.0 * 4000.0 * 4000.0 * 4000.0;
  EXPECT_NEAR(total, expected, 0.05 * expected);
}

TEST(QrMath, PanelFlopsDecreaseMonotonically) {
  QrConfig cfg;
  for (std::size_t k = 1; k < qrPanelCount(cfg); ++k) {
    EXPECT_LT(qrPanelFlops(cfg, k), qrPanelFlops(cfg, k - 1));
  }
}

TEST(QrMath, CheckpointSizeIsMatrixPlusRhs) {
  QrConfig cfg;
  cfg.n = 8000;
  EXPECT_DOUBLE_EQ(qrCheckpointBytes(cfg), 8000.0 * 8000.0 * 8.0 + 8000.0 * 8.0);
  // N=8000 → 488 MB matrix, matching the paper's dominant checkpoint size.
  EXPECT_NEAR(qrCheckpointBytes(cfg) / (1024.0 * 1024.0), 488.3, 0.5);
}

TEST(QrMath, BadConfigRejected) {
  QrConfig cfg;
  cfg.n = 0;
  EXPECT_THROW(qrPanelCount(cfg), InvalidArgument);
}

TEST(QrPerfModel, PhaseSumTracksTotalComputeTime) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  QrConfig cfg;
  cfg.n = 6000;
  QrPerfModel model(g, cfg);
  std::vector<grid::NodeId> mapping;
  for (const auto id : tb.utkNodes) {
    mapping.push_back(id);
    mapping.push_back(id);
  }
  const double total = model.totalSeconds(mapping, nullptr);
  // Pure compute bound: 4/3 n³ / (8 ranks × 112 Mf/s) ≈ 321 s + bcast time.
  const double computeBound = 4.0 / 3.0 * 6000.0 * 6000.0 * 6000.0 /
                              (8.0 * 933e6 * 0.12);
  EXPECT_GT(total, computeBound);
  EXPECT_LT(total, 1.6 * computeBound);
}

TEST(QrPerfModel, SlowestRankGatesPrediction) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  services::Nws nws(eng, g, 5.0, 0.0, 1);
  nws.start();
  g.node(tb.utkNodes[0]).injectLoad(3.0);
  eng.runUntil(30.0);
  QrConfig cfg;
  cfg.n = 6000;
  QrPerfModel model(g, cfg);
  std::vector<grid::NodeId> mapping;
  for (const auto id : tb.utkNodes) {
    mapping.push_back(id);
    mapping.push_back(id);
  }
  const double loaded =
      model.phaseSeconds(mapping, 0, &nws, core::RateView::kIncumbent);
  const double dedicated = model.phaseSeconds(mapping, 0, nullptr);
  // One degraded node (incumbent share 2/3 CPU) slows every phase.
  EXPECT_GT(loaded, 1.4 * dedicated);
}

TEST(QrApp, ActualRunMatchesModelPrediction) {
  // The contract only works if the executable model predicts the actual
  // simulated execution; check end-to-end agreement within 15%.
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildQrTestbed(g);
  QrConfig cfg;
  cfg.n = 3000;
  std::vector<grid::NodeId> mapping;
  for (const auto id : tb.utkNodes) {
    mapping.push_back(id);
    mapping.push_back(id);
  }
  QrPerfModel model(g, cfg);
  const double predicted = model.totalSeconds(mapping, nullptr);

  vmpi::World world(g, mapping, "qr");
  const auto cop = makeQrCop(g, cfg);
  core::LaunchContext ctx;
  ctx.appName = "qr";
  ctx.world = &world;
  sim::JoinSet ranks(eng);
  for (int r = 0; r < world.size(); ++r) ranks.spawn(cop.code(ctx, r));
  eng.spawn([](sim::JoinSet& js) -> sim::Task { co_await js.join(); }(ranks));
  eng.run();
  EXPECT_FALSE(ctx.stopped);
  EXPECT_EQ(ctx.completedPhases, qrPanelCount(cfg));
  EXPECT_NEAR(eng.now(), predicted, 0.15 * predicted);
}

TEST(NBody, IterationFlopsSplitAcrossRanks) {
  NBodyConfig cfg;
  cfg.particles = 1000;
  EXPECT_DOUBLE_EQ(nbodyIterationFlopsPerRank(cfg, 4),
                   20.0 * 1000.0 * 999.0 / 4.0);
}

TEST(NBody, ProgressSamplesAreMonotone) {
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildSwapTestbed(g);
  vmpi::World world(g, {tb.utkNodes[0], tb.utkNodes[1], tb.utkNodes[2]});
  NBodyConfig cfg;
  cfg.particles = 2000;
  cfg.iterations = 10;
  NBodyProgress progress;
  for (int r = 0; r < 3; ++r) {
    eng.spawn(nbodyRank(world, nullptr, cfg, r, nullptr, "nb", &progress));
  }
  eng.run();
  ASSERT_EQ(progress.samples.size(), 10u);
  for (std::size_t i = 1; i < progress.samples.size(); ++i) {
    EXPECT_GT(progress.samples[i].first, progress.samples[i - 1].first);
    EXPECT_EQ(progress.samples[i].second, static_cast<int>(i) + 1);
  }
}

TEST(NBody, MoreRanksFinishFaster) {
  auto runWith = [](int ranks) {
    sim::Engine eng;
    grid::Grid g(eng);
    const auto tb = grid::buildSwapTestbed(g);
    std::vector<grid::NodeId> mapping(tb.utkNodes.begin(),
                                      tb.utkNodes.begin() + ranks);
    vmpi::World world(g, mapping);
    NBodyConfig cfg;
    cfg.particles = 3000;
    cfg.iterations = 5;
    for (int r = 0; r < ranks; ++r) {
      eng.spawn(nbodyRank(world, nullptr, cfg, r, nullptr, "nb", nullptr));
    }
    eng.run();
    return eng.now();
  };
  EXPECT_LT(runWith(3), runWith(1));
}

TEST(Eman, ClassesbymraDominates) {
  EmanConfig cfg;
  const double classes = emanClassesbymraFlops(cfg);
  EXPECT_GT(classes, 5.0 * emanProject3dFlops(cfg));
  EXPECT_GT(classes, 5.0 * emanClassalign2Flops(cfg));
  EXPECT_GT(classes, 5.0 * emanMake3dFlops(cfg));
  EXPECT_GT(classes, 5.0 * emanProc3dFlops(cfg));
}

TEST(Eman, DagShapeIsLinearWithParallelStages) {
  EmanConfig cfg;
  cfg.parallelism = 8;
  const auto dag = buildEmanRefinementDag(cfg);
  // proc3d + 3 parallel stages of 8 + make3d + eotest.
  EXPECT_EQ(dag.size(), 1u + 3u * 8u + 2u);
  // Must be acyclic with a unique source and sink.
  const auto order = dag.topologicalOrder();
  EXPECT_EQ(order.size(), dag.size());
  std::size_t sources = 0;
  std::size_t sinks = 0;
  for (workflow::ComponentId c = 0; c < dag.size(); ++c) {
    if (dag.predecessors(c).empty()) ++sources;
    if (dag.successors(c).empty()) ++sinks;
  }
  EXPECT_EQ(sources, 1u);
  EXPECT_EQ(sinks, 1u);
}

TEST(Eman, AllComponentsRequireEmanSoftware) {
  EmanConfig cfg;
  const auto dag = buildEmanRefinementDag(cfg);
  for (workflow::ComponentId c = 0; c < dag.size(); ++c) {
    const auto& sw = dag.component(c).requiredSoftware;
    EXPECT_NE(std::find(sw.begin(), sw.end(), "eman"), sw.end());
  }
}

TEST(Eman, Ia64ConstraintPropagatesToClassifiers) {
  EmanConfig cfg;
  cfg.classesOnIa64 = true;
  const auto dag = buildEmanRefinementDag(cfg);
  int constrained = 0;
  for (workflow::ComponentId c = 0; c < dag.size(); ++c) {
    if (dag.component(c).requiredArch == grid::Arch::kIA64) ++constrained;
  }
  EXPECT_EQ(constrained, cfg.parallelism);
}

TEST(Eman, SchedulesOntoHeterogeneousTestbed) {
  // §3.3: the workflow scheduler + binder heterogeneity let EMAN use both
  // IA-32 and IA-64 machines.
  sim::Engine eng;
  grid::Grid g(eng);
  const auto tb = grid::buildEmanTestbed(g);
  services::Gis gis(g);
  gis.installEverywhere("eman");
  workflow::GridEstimator truth(gis, nullptr);
  EmanConfig cfg;
  cfg.parallelism = 24;       // > the 8 IA-64 nodes: the heavy stage spills
  cfg.particles = 200000;     // compute-dominated regime
  const auto dag = buildEmanRefinementDag(cfg);
  workflow::WorkflowScheduler ws(truth, g.allNodes());
  const auto s = ws.schedule(dag, workflow::Heuristic::kBestOfThree);
  bool usedIa64 = false;
  bool usedIa32 = false;
  for (const auto& a : s.assignments) {
    if (g.node(a.node).spec().arch == grid::Arch::kIA64) usedIa64 = true;
    if (g.node(a.node).spec().arch == grid::Arch::kIA32) usedIa32 = true;
  }
  EXPECT_TRUE(usedIa64);
  EXPECT_TRUE(usedIa32);
  (void)tb;
}

TEST(Eman, Ia64ConstraintPinsClassifiersToIa64) {
  sim::Engine eng;
  grid::Grid g(eng);
  grid::buildEmanTestbed(g);
  services::Gis gis(g);
  gis.installEverywhere("eman");
  workflow::GridEstimator truth(gis, nullptr);
  EmanConfig cfg;
  cfg.classesOnIa64 = true;
  const auto dag = buildEmanRefinementDag(cfg);
  workflow::WorkflowScheduler ws(truth, g.allNodes());
  const auto s = ws.schedule(dag, workflow::Heuristic::kMinMin);
  for (workflow::ComponentId c = 0; c < dag.size(); ++c) {
    if (dag.component(c).requiredArch == grid::Arch::kIA64) {
      EXPECT_EQ(g.node(s.of(c).node).spec().arch, grid::Arch::kIA64);
    }
  }
}

TEST(Eman, StackBytesScaleWithParticles) {
  EmanConfig small;
  small.particles = 1000;
  EmanConfig large;
  large.particles = 4000;
  EXPECT_DOUBLE_EQ(emanStackBytes(large), 4.0 * emanStackBytes(small));
}

}  // namespace
}  // namespace grads::apps

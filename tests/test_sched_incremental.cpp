// Tests for the incremental batch-mode mapping loop: deterministic
// (bestCt, ComponentId) tie-breaking for sufferage (including the all-
// infinite-sufferage case), bit-identical agreement with the naive
// reference loop across heuristics and DAG shapes, and the Estimator
// row-caching contract.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "grid/testbeds.hpp"
#include "services/gis.hpp"
#include "util/rng.hpp"
#include "workflow/builders.hpp"
#include "workflow/scheduler.hpp"

using namespace grads;

namespace {

// Table-driven estimator: ecost indexed by component name, transfers at a
// flat per-byte cost between distinct nodes.
class TableEstimator : public workflow::Estimator {
 public:
  std::map<std::string, std::vector<double>> table;

  double ecost(const workflow::Component& c, grid::NodeId node) const override {
    ++ecostCalls;
    return table.at(c.name).at(node);
  }
  double transferCost(grid::NodeId from, grid::NodeId to,
                      double bytes) const override {
    return from == to ? 0.0 : bytes * 1e-3;
  }

  mutable std::size_t ecostCalls = 0;
};

workflow::Component comp(std::string name) {
  workflow::Component c;
  c.name = std::move(name);
  return c;
}

void expectIdentical(const workflow::Schedule& a, const workflow::Schedule& b) {
  ASSERT_EQ(a.assignments.size(), b.assignments.size());
  for (std::size_t i = 0; i < a.assignments.size(); ++i) {
    EXPECT_EQ(a.assignments[i].component, b.assignments[i].component)
        << "pick " << i;
    EXPECT_EQ(a.assignments[i].node, b.assignments[i].node) << "pick " << i;
    // Bit-identical, not approximately equal: the incremental loop must
    // replicate the reference's floating-point operations exactly.
    EXPECT_EQ(a.assignments[i].start, b.assignments[i].start) << "pick " << i;
    EXPECT_EQ(a.assignments[i].finish, b.assignments[i].finish) << "pick " << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
}

// ---------------------------------------------------------------------------
// Sufferage tie-breaking
// ---------------------------------------------------------------------------

// Two candidates with equal (finite) sufferage: the pick must go to the
// smaller bestCt, not to whichever happens to sit earlier in the batch.
TEST(SufferageTieBreak, EqualSufferagePicksSmallerBestCt) {
  workflow::Dag dag;
  const auto c0 = dag.add(comp("a"));
  const auto c1 = dag.add(comp("b"));

  TableEstimator est;
  est.table["a"] = {10.0, 12.0};  // sufferage 2, bestCt 10
  est.table["b"] = {4.0, 6.0};    // sufferage 2, bestCt 4
  workflow::WorkflowScheduler ws(est, {0, 1});
  ws.setCrossCheck(true);

  const auto s = ws.schedule(dag, workflow::Heuristic::kSufferage);
  ASSERT_EQ(s.assignments.size(), 2u);
  // "b" wins the tie on bestCt and takes node 0 at t=0.
  EXPECT_EQ(s.assignments[0].component, c1);
  EXPECT_EQ(s.assignments[0].node, 0u);
  EXPECT_DOUBLE_EQ(s.assignments[0].finish, 4.0);
  // With node 0 now busy until 4, "a" completes earlier on node 1.
  EXPECT_EQ(s.assignments[1].component, c0);
  EXPECT_EQ(s.assignments[1].node, 1u);
  EXPECT_DOUBLE_EQ(s.assignments[1].finish, 12.0);
  EXPECT_DOUBLE_EQ(s.makespan, 12.0);
}

// Several candidates each with a single feasible resource: all sufferages
// are kInfeasible (= infinity), which used to make the pick order-dependent.
// The deterministic rule falls back to (bestCt, ComponentId).
TEST(SufferageTieBreak, AllInfeasibleSufferagesFallBackToBestCt) {
  workflow::Dag dag;
  const auto c0 = dag.add(comp("a"));
  const auto c1 = dag.add(comp("b"));
  const auto c2 = dag.add(comp("c"));

  TableEstimator est;
  est.table["a"] = {9.0, workflow::kInfeasible};
  est.table["b"] = {3.0, workflow::kInfeasible};
  est.table["c"] = {workflow::kInfeasible, 7.0};
  workflow::WorkflowScheduler ws(est, {0, 1});
  ws.setCrossCheck(true);

  const auto s = ws.schedule(dag, workflow::Heuristic::kSufferage);
  ASSERT_EQ(s.assignments.size(), 3u);
  // bestCt order: b (3) < c (7) < a (3+9=12 after b occupies node 0).
  EXPECT_EQ(s.assignments[0].component, c1);
  EXPECT_EQ(s.assignments[1].component, c2);
  EXPECT_EQ(s.assignments[2].component, c0);
  EXPECT_DOUBLE_EQ(s.assignments[2].start, 3.0);
  EXPECT_DOUBLE_EQ(s.assignments[2].finish, 12.0);
  EXPECT_DOUBLE_EQ(s.makespan, 12.0);
}

// Identical candidates (same costs everywhere) must resolve by ComponentId.
TEST(SufferageTieBreak, FullTieFallsBackToComponentId) {
  workflow::Dag dag;
  const auto c0 = dag.add(comp("a"));
  const auto c1 = dag.add(comp("b"));

  TableEstimator est;
  est.table["a"] = {5.0, 5.0};
  est.table["b"] = {5.0, 5.0};
  workflow::WorkflowScheduler ws(est, {0, 1});
  ws.setCrossCheck(true);

  const auto s = ws.schedule(dag, workflow::Heuristic::kSufferage);
  EXPECT_EQ(s.assignments[0].component, c0);
  EXPECT_EQ(s.assignments[1].component, c1);
}

// ---------------------------------------------------------------------------
// Incremental loop == reference loop, across heuristics and DAG shapes
// ---------------------------------------------------------------------------

class IncrementalVsReference : public ::testing::Test {
 protected:
  IncrementalVsReference() : grid_(eng_) {
    grid::buildMacroGrid(grid_);
    gis_ = std::make_unique<services::Gis>(grid_);
    truth_ = std::make_unique<workflow::GridEstimator>(*gis_, nullptr);
  }

  void checkAll(const workflow::Dag& dag) {
    workflow::WorkflowScheduler ws(*truth_, grid_.allNodes());
    ws.setCrossCheck(false);  // compare explicitly below
    for (const auto h :
         {workflow::Heuristic::kMinMin, workflow::Heuristic::kMaxMin,
          workflow::Heuristic::kSufferage, workflow::Heuristic::kBestOfThree}) {
      SCOPED_TRACE(workflow::heuristicName(h));
      expectIdentical(ws.schedule(dag, h), ws.scheduleReference(dag, h));
    }
  }

  sim::Engine eng_;
  grid::Grid grid_;
  std::unique_ptr<services::Gis> gis_;
  std::unique_ptr<workflow::GridEstimator> truth_;
};

TEST_F(IncrementalVsReference, ParameterSweep) {
  Rng rng(11);
  checkAll(workflow::makeParameterSweep(40, rng));
}

TEST_F(IncrementalVsReference, RandomLayered) {
  Rng rng(12);
  checkAll(workflow::makeRandomLayered(6, 8, rng));
}

TEST_F(IncrementalVsReference, LigoLike) {
  Rng rng(13);
  checkAll(workflow::makeLigoLike(24, rng));
}

TEST_F(IncrementalVsReference, CrossCheckModeRunsInline) {
  Rng rng(14);
  const auto dag = workflow::makeParameterSweep(16, rng);
  workflow::WorkflowScheduler ws(*truth_, grid_.allNodes());
  ws.setCrossCheck(true);
  EXPECT_TRUE(ws.crossCheckEnabled());
  // The assertion mode re-derives every schedule with the reference loop
  // and throws on any divergence; a clean return is the assertion.
  EXPECT_NO_THROW(ws.schedule(dag, workflow::Heuristic::kBestOfThree));
}

// ---------------------------------------------------------------------------
// Estimator row caching
// ---------------------------------------------------------------------------

// The incremental loop must query ecost once per (component, node) within a
// schedule() call; the reference loop re-queries per pick (O(B²·R)).
TEST(EstimatorCaching, EcostQueriedOncePerComponentNode) {
  workflow::Dag dag;
  constexpr std::size_t kTasks = 32;
  TableEstimator est;
  for (std::size_t i = 0; i < kTasks; ++i) {
    const std::string name = "t" + std::to_string(i);
    dag.add(comp(name));
    est.table[name] = {1.0 + static_cast<double>(i), 2.0, 3.0};
  }
  workflow::WorkflowScheduler ws(est, {0, 1, 2});
  ws.setCrossCheck(false);

  est.ecostCalls = 0;
  (void)ws.schedule(dag, workflow::Heuristic::kMinMin);
  EXPECT_EQ(est.ecostCalls, kTasks * 3);  // one row per component

  est.ecostCalls = 0;
  (void)ws.scheduleReference(dag, workflow::Heuristic::kMinMin);
  // The naive loop rebuilds the whole rank matrix after every pick.
  EXPECT_GT(est.ecostCalls, kTasks * 3 * 4);
}

// ecost rows are shared across the three runs of best-of-three.
TEST(EstimatorCaching, RowsSharedAcrossBestOfThree) {
  workflow::Dag dag;
  constexpr std::size_t kTasks = 16;
  TableEstimator est;
  for (std::size_t i = 0; i < kTasks; ++i) {
    const std::string name = "t" + std::to_string(i);
    dag.add(comp(name));
    est.table[name] = {1.0 + static_cast<double>(i % 5), 2.0};
  }
  workflow::WorkflowScheduler ws(est, {0, 1});
  ws.setCrossCheck(false);

  est.ecostCalls = 0;
  (void)ws.schedule(dag, workflow::Heuristic::kBestOfThree);
  EXPECT_EQ(est.ecostCalls, kTasks * 2);  // not 3× that
}

}  // namespace

// Multi-tenant metascheduler: admission/backpressure, fair share, tiers,
// brownout ladder, journaled checkpoint-and-park preemption, and
// snapshot/restore of the whole frontend.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>
#include <set>
#include <vector>

#include "core/app_manager.hpp"
#include "core/snapshot.hpp"
#include "grid/testbeds.hpp"
#include "metasched/admission.hpp"
#include "metasched/frontend.hpp"
#include "metasched/types.hpp"
#include "reschedule/journal.hpp"
#include "services/gis.hpp"
#include "services/ibp.hpp"
#include "services/nws.hpp"
#include "sim/engine.hpp"
#include "util/hash.hpp"

namespace grads {
namespace {

// ---------------------------------------------------------------------------
// BrownoutController (pure hysteresis-ladder logic).
// ---------------------------------------------------------------------------

metasched::BrownoutOptions ladderOpts() {
  metasched::BrownoutOptions o;
  o.enterPressure[0] = 0.3;
  o.enterPressure[1] = 0.6;
  o.enterPressure[2] = 0.9;
  o.exitPressure[0] = 0.2;
  o.exitPressure[1] = 0.5;
  o.exitPressure[2] = 0.8;
  o.dwellSec = 10.0;
  return o;
}

TEST(Brownout, ClimbsOneRungPerUpdate) {
  metasched::BrownoutController c(ladderOpts());
  EXPECT_EQ(c.level(), metasched::BrownoutLevel::kFull);
  // Pressure far above every threshold still climbs one rung at a time.
  EXPECT_TRUE(c.update(5.0, 0.0));
  EXPECT_EQ(c.level(), metasched::BrownoutLevel::kDeferLow);
  EXPECT_TRUE(c.update(5.0, 10.0));
  EXPECT_EQ(c.level(), metasched::BrownoutLevel::kPark);
  EXPECT_TRUE(c.update(5.0, 20.0));
  EXPECT_EQ(c.level(), metasched::BrownoutLevel::kShed);
  EXPECT_FALSE(c.update(5.0, 30.0));  // top rung: nowhere to go
  EXPECT_EQ(c.escalations(), 3);
}

TEST(Brownout, DwellBlocksImmediateTransitions) {
  metasched::BrownoutController c(ladderOpts());
  EXPECT_TRUE(c.update(5.0, 0.0));
  EXPECT_FALSE(c.update(5.0, 5.0));  // inside the 10 s dwell
  EXPECT_EQ(c.level(), metasched::BrownoutLevel::kDeferLow);
  EXPECT_TRUE(c.update(5.0, 10.0));
}

TEST(Brownout, HysteresisBandHoldsTheRung) {
  metasched::BrownoutController c(ladderOpts());
  EXPECT_TRUE(c.update(0.4, 0.0));  // above enter[0]
  // Pressure between exit[0]=0.2 and enter[1]=0.6: neither direction moves.
  EXPECT_FALSE(c.update(0.25, 20.0));
  EXPECT_FALSE(c.update(0.55, 40.0));
  EXPECT_EQ(c.level(), metasched::BrownoutLevel::kDeferLow);
  EXPECT_TRUE(c.update(0.1, 60.0));  // below exit[0]: de-escalate
  EXPECT_EQ(c.level(), metasched::BrownoutLevel::kFull);
  EXPECT_EQ(c.deescalations(), 1);
}

TEST(Brownout, SnapshotRoundTrip) {
  metasched::BrownoutController a(ladderOpts());
  a.update(5.0, 0.0);
  a.update(5.0, 10.0);
  core::SnapshotWriter w;
  a.encodeState(w);
  metasched::BrownoutController b(ladderOpts());
  core::SnapshotReader r(w.words());
  b.decodeState(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(b.level(), metasched::BrownoutLevel::kPark);
  EXPECT_EQ(b.escalations(), 2);
  // Dwell anchor survives: an immediate post-restore update is still held.
  EXPECT_FALSE(b.update(5.0, 12.0));
  EXPECT_TRUE(b.update(5.0, 20.0));
}

TEST(TenantLedger, SnapshotRoundTrip) {
  metasched::TenantLedger a;
  a.submitted = 10;
  a.admitted = 7;
  a.shed = 3;
  a.completed = 5;
  a.slowdowns = {1.5, 2.25, 4.0};
  core::SnapshotWriter w;
  a.encodeState(w);
  metasched::TenantLedger b;
  core::SnapshotReader r(w.words());
  b.decodeState(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(b.submitted, 10);
  EXPECT_EQ(b.admitted, 7);
  EXPECT_EQ(b.shed, 3);
  EXPECT_EQ(b.completed, 5);
  EXPECT_EQ(b.slowdowns, a.slowdowns);
}

// ---------------------------------------------------------------------------
// AdmissionController decisions.
// ---------------------------------------------------------------------------

struct AdmissionRig {
  sim::Engine eng;
  grid::Grid g{eng};
  std::optional<services::Gis> gis;
  std::vector<grid::NodeId> slots;

  explicit AdmissionRig(int nSlots) {
    const auto site = g.addCluster(grid::ClusterSpec{
        "site", "Site", grid::fastEthernetLan("site.lan", nSlots)});
    for (int i = 0; i < nSlots; ++i) {
      slots.push_back(g.addNode(site, grid::utkQrNodeSpec(i)));
    }
    gis.emplace(g);
  }
};

TEST(Admission, DisabledAdmitsEverything) {
  AdmissionRig rig(2);
  metasched::AdmissionOptions o;
  o.enabled = false;
  metasched::AdmissionController c(rig.g, *rig.gis, nullptr, rig.slots, o);
  const auto d = c.decide(0, 1 << 20, 1 << 20, 1e9,
                          metasched::BrownoutLevel::kShed);
  EXPECT_TRUE(d.admit);
}

TEST(Admission, QueueAndBacklogBoundsShedWithHints) {
  AdmissionRig rig(2);
  metasched::AdmissionOptions o;
  o.maxQueuedPerTenant = 4;
  o.maxQueuedTotal = 10;
  o.maxBacklogSec = 100.0;
  o.retryAfterFactor = 0.5;
  o.retryAfterMinSec = 30.0;
  o.retryAfterMaxSec = 200.0;
  metasched::AdmissionController c(rig.g, *rig.gis, nullptr, rig.slots, o);

  EXPECT_TRUE(c.decide(0, 0, 0, 0.0, metasched::BrownoutLevel::kFull).admit);
  const auto tenantFull =
      c.decide(0, 4, 5, 10.0, metasched::BrownoutLevel::kFull);
  EXPECT_FALSE(tenantFull.admit);
  EXPECT_STREQ(tenantFull.reason, "tenant-queue-full");
  const auto globalFull =
      c.decide(0, 1, 10, 10.0, metasched::BrownoutLevel::kFull);
  EXPECT_FALSE(globalFull.admit);
  EXPECT_STREQ(globalFull.reason, "global-queue-full");
  const auto backlog =
      c.decide(0, 1, 1, 150.0, metasched::BrownoutLevel::kFull);
  EXPECT_FALSE(backlog.admit);
  EXPECT_STREQ(backlog.reason, "backlog");
  // Hint = clamp(factor * backlog, min, max).
  EXPECT_DOUBLE_EQ(backlog.retryAfterSec, 75.0);
  EXPECT_DOUBLE_EQ(tenantFull.retryAfterSec, 30.0);   // clamped up
  const auto huge = c.decide(0, 4, 5, 1e6, metasched::BrownoutLevel::kFull);
  EXPECT_DOUBLE_EQ(huge.retryAfterSec, 200.0);        // clamped down
}

TEST(Admission, ShedRungProtectsHighTier) {
  AdmissionRig rig(2);
  metasched::AdmissionOptions o;
  o.shedProtectTier = 2;
  metasched::AdmissionController c(rig.g, *rig.gis, nullptr, rig.slots, o);
  EXPECT_FALSE(c.decide(0, 0, 0, 0.0, metasched::BrownoutLevel::kShed).admit);
  EXPECT_FALSE(c.decide(1, 0, 0, 0.0, metasched::BrownoutLevel::kShed).admit);
  EXPECT_TRUE(c.decide(2, 0, 0, 0.0, metasched::BrownoutLevel::kShed).admit);
}

TEST(Admission, CapacitySkipsUnreachableNodes) {
  AdmissionRig rig(2);
  metasched::AdmissionOptions o;
  metasched::AdmissionController c(rig.g, *rig.gis, nullptr, rig.slots, o);
  const double full = c.capacityFlops();
  EXPECT_GT(full, 0.0);
  // Reachability is ground truth (a fail-stopped node drops out of the
  // capacity estimate immediately, before the GIS directory catches up).
  rig.gis->setNodeReachable(rig.slots[0], false);
  EXPECT_LT(c.capacityFlops(), full);
}

// ---------------------------------------------------------------------------
// Whole-frontend scenarios over a real control plane.
// ---------------------------------------------------------------------------

/// One whole control plane (engine first: destroyed last).
struct World {
  sim::Engine eng;
  grid::Grid g{eng};
  std::optional<services::Gis> gis;
  std::optional<services::Nws> nws;
  std::optional<services::Ibp> ibp;
  std::optional<autopilot::AutopilotManager> autopilot;
  std::optional<reschedule::ActionJournal> journal;
  std::optional<core::AppManager> mgr;
  std::optional<metasched::MetaScheduler> meta;
  std::vector<grid::NodeId> slots;
  double refRate = 0.0;
};

/// Builds a world with `nSlots` single-rank slots and the given frontend
/// tweak applied on top of test-friendly defaults. `armDaemons=false` for
/// restore arms (mirrors the crash sweep's protocol).
void buildWorld(World& w, int nSlots,
                const std::function<void(metasched::FrontendOptions&)>& tweak,
                bool armDaemons = true) {
  const auto site = w.g.addCluster(grid::ClusterSpec{
      "site", "Site", grid::fastEthernetLan("site.lan", nSlots)});
  for (int i = 0; i < nSlots; ++i) {
    w.slots.push_back(w.g.addNode(site, grid::utkQrNodeSpec(i)));
  }
  w.gis.emplace(w.g);
  w.gis->installEverywhere(services::software::kLocalBinder);
  w.gis->installEverywhere(services::software::kSrsLibrary);
  w.nws.emplace(w.eng, w.g, 60.0, 0.0, 9);
  w.ibp.emplace(w.g);
  w.autopilot.emplace(w.eng);
  w.journal.emplace(w.eng);
  w.mgr.emplace(w.g, *w.gis, &*w.nws, *w.ibp, *w.autopilot);
  w.refRate = w.g.node(w.slots.front()).spec().effectiveFlopsPerCpu();

  metasched::FrontendOptions fo;
  fo.slots = w.slots;
  fo.horizonSec = 1200.0;
  fo.hardDeadlineSec = 0.0;
  fo.controlPeriodSec = 30.0;
  fo.flopsPerPhase = w.refRate * 15.0;
  fo.refFlopsPerSec = w.refRate;
  fo.seed = 0x5eed;
  fo.jobOptions.resourceSelectionSec = 1.0;
  fo.jobOptions.perfModelingSec = 0.5;
  fo.jobOptions.appStartPerRankSec = 0.5;
  fo.jobOptions.monitorContract = false;
  tweak(fo);
  w.meta.emplace(*w.mgr, w.g, *w.gis, &*w.nws, &*w.journal, std::move(fo));

  auto& reg = w.mgr->snapshots();
  reg.add(w.g);
  reg.add(*w.gis);
  reg.add(*w.nws);
  reg.add(*w.ibp);
  reg.add(*w.autopilot);
  reg.add(*w.journal);
  reg.add(*w.meta);
  if (armDaemons) w.nws->start();
}

metasched::TenantSpec tenant(const char* name, int tier, double weight,
                             double rate, double xmSec, double refRate,
                             std::uint64_t seed) {
  metasched::TenantSpec t;
  t.name = name;
  t.tier = tier;
  t.weight = weight;
  t.baseRatePerSec = rate;
  t.paretoXmFlops = refRate * xmSec;
  t.paretoAlpha = 1.9;
  t.maxJobFlops = refRate * xmSec * 8.0;
  t.resubmit.maxAttempts = 3;
  t.resubmit.baseDelaySec = 20.0;
  t.resubmit.maxDelaySec = 200.0;
  t.resubmit.jitterFrac = 0.2;
  t.seed = seed;
  return t;
}

void auditTotals(const World& w) {
  const metasched::FrontendTotals t = w.meta->totals();
  EXPECT_TRUE(w.meta->drained());
  EXPECT_EQ(w.meta->jobsInSystem(), 0);
  // Every admitted job reached exactly one terminal state.
  EXPECT_EQ(t.admitted, t.completed + t.failed + t.unserved);
  EXPECT_EQ(t.submitted, t.admitted + t.shed);
  EXPECT_EQ(t.parks, t.unparked);
}

TEST(MetaScheduler, RetryAfterHintPacesResubmits) {
  World w;
  buildWorld(w, 1, [&w](metasched::FrontendOptions& fo) {
    fo.horizonSec = 1500.0;
    auto t = tenant("only", 0, 1.0, 1.0 / 120.0, 40.0, w.refRate, 5);
    t.resubmit.maxAttempts = 2;
    t.resubmit.baseDelaySec = 1.0;  // far below the hint
    t.resubmit.jitterFrac = 0.0;    // exact spacing
    fo.tenants = {t};
    fo.admission.maxQueuedTotal = 0;  // shed every submission
    fo.admission.retryAfterMinSec = 150.0;
    fo.brownout.enabled = false;
    fo.preempt.enabled = false;
  });
  std::vector<double> shedTimes;
  w.meta->setOnTransition([&w, &shedTimes](const char* kind) {
    if (std::string(kind) == "shed") shedTimes.push_back(w.eng.now());
  });
  w.meta->start();
  w.eng.run();
  w.eng.rethrowIfFailed();

  const metasched::TenantLedger& led = w.meta->ledgers()[0];
  EXPECT_EQ(led.admitted, 0);
  EXPECT_GT(led.shed, 0);
  EXPECT_GT(led.resubmits, 0);
  // Every job ends abandoned: either its retry budget ran out or its only
  // retry would have landed past the submission horizon.
  EXPECT_EQ(led.abandoned, led.submitted - led.resubmits);
  EXPECT_EQ(w.meta->jobsInSystem(), 0);
  // With backoff far below the retry-after hint and no jitter, every
  // resubmission is shed again exactly hint seconds after its first shed
  // (up to one ulp of virtual-time rounding).
  std::vector<double> sorted(shedTimes);
  std::sort(sorted.begin(), sorted.end());
  std::int64_t paced = 0;
  for (const double t : shedTimes) {
    const auto it = std::lower_bound(sorted.begin(), sorted.end(),
                                     t - 150.0 - 1e-6);
    if (it != sorted.end() && *it <= t - 150.0 + 1e-6) ++paced;
  }
  EXPECT_EQ(paced, led.resubmits);
}

TEST(MetaScheduler, BackoffExhaustionUnderSimulatedDeadline) {
  World w;
  buildWorld(w, 1, [&w](metasched::FrontendOptions& fo) {
    fo.horizonSec = 300.0;
    auto t = tenant("only", 0, 1.0, 1.0 / 60.0, 40.0, w.refRate, 5);
    t.resubmit.maxAttempts = 10;      // budget never exhausts...
    t.resubmit.baseDelaySec = 400.0;  // ...but every retry lands past the
    t.resubmit.jitterFrac = 0.0;      //    horizon (simulated-time deadline)
    fo.tenants = {t};
    fo.admission.maxQueuedTotal = 0;
    fo.brownout.enabled = false;
    fo.preempt.enabled = false;
  });
  w.meta->start();
  w.eng.run();
  w.eng.rethrowIfFailed();
  const metasched::TenantLedger& led = w.meta->ledgers()[0];
  EXPECT_GT(led.submitted, 0);
  EXPECT_EQ(led.resubmits, 0);  // no retry fit inside the horizon
  EXPECT_EQ(led.abandoned, led.submitted);
  EXPECT_EQ(w.meta->jobsInSystem(), 0);
}

TEST(MetaScheduler, FairShareHonorsWeightsWithinTier) {
  World w;
  buildWorld(w, 2, [&w](metasched::FrontendOptions& fo) {
    // Deadline == horizon: the asymmetric drain tail (the 3x tenant's queue
    // empties first, handing the slow tenant a solo run) is dropped as
    // unserved instead of diluting the dispatch ratio.
    fo.horizonSec = 6000.0;
    fo.hardDeadlineSec = 6000.0;
    // Both saturated far beyond two slots; queues stay non-empty.
    fo.tenants = {
        tenant("w3", 1, 3.0, 1.0 / 20.0, 60.0, w.refRate, 7),
        tenant("w1", 1, 1.0, 1.0 / 20.0, 60.0, w.refRate, 8),
    };
    fo.admission.maxQueuedPerTenant = 40;
    fo.admission.maxQueuedTotal = 80;
    fo.admission.maxBacklogSec = 1e9;  // only queue depth binds
    fo.brownout.enabled = false;
    fo.preempt.enabled = false;
  });
  w.meta->start();
  w.eng.run();
  w.eng.rethrowIfFailed();
  const auto& ledgers = w.meta->ledgers();
  ASSERT_GT(ledgers[1].dispatched, 0);
  const double ratio = static_cast<double>(ledgers[0].dispatched) /
                       static_cast<double>(ledgers[1].dispatched);
  // Stride scheduling under saturation tracks the 3:1 weight ratio.
  EXPECT_GT(ratio, 2.2);
  EXPECT_LT(ratio, 3.8);
  auditTotals(w);
}

TEST(MetaScheduler, StrictTierPriority) {
  World w;
  buildWorld(w, 1, [&w](metasched::FrontendOptions& fo) {
    fo.horizonSec = 3000.0;
    fo.hardDeadlineSec = 20000.0;
    fo.tenants = {
        tenant("hi", 2, 1.0, 1.0 / 60.0, 50.0, w.refRate, 7),
        tenant("lo", 0, 1.0, 1.0 / 60.0, 50.0, w.refRate, 8),
    };
    fo.admission.maxQueuedPerTenant = 30;
    fo.admission.maxQueuedTotal = 60;
    fo.admission.maxBacklogSec = 1e9;
    fo.brownout.enabled = false;
    fo.preempt.enabled = false;  // isolate queue-order priority
  });
  w.meta->start();
  w.eng.run();
  w.eng.rethrowIfFailed();
  const auto& ledgers = w.meta->ledgers();
  ASSERT_GT(ledgers[0].completed, 0);
  ASSERT_GT(ledgers[1].completed, 0);
  const auto meanSlowdown = [](const metasched::TenantLedger& led) {
    double s = 0.0;
    for (const double x : led.slowdowns) s += x;
    return s / static_cast<double>(led.slowdowns.size());
  };
  // One slot, both tenants saturated: high tier jumps every queue cycle,
  // so its waiting time collapses relative to the batch tenant.
  EXPECT_LT(meanSlowdown(ledgers[0]) * 2.0, meanSlowdown(ledgers[1]));
  auditTotals(w);
}

TEST(MetaScheduler, PreemptParksThroughJournalAndResumes) {
  World w;
  buildWorld(w, 1, [&w](metasched::FrontendOptions& fo) {
    fo.horizonSec = 900.0;
    fo.hardDeadlineSec = 0.0;
    // A batch tenant with long jobs occupies the slot; a rare high-tier
    // tenant arrives, starves past highTierMaxWaitSec, and preempts.
    auto batch = tenant("batch", 0, 1.0, 1.0 / 150.0, 400.0, w.refRate, 7);
    batch.maxJobFlops = w.refRate * 500.0;
    auto hi = tenant("hi", 2, 1.0, 1.0 / 300.0, 30.0, w.refRate, 8);
    hi.maxJobFlops = w.refRate * 60.0;
    fo.tenants = {batch, hi};
    fo.admission.maxQueuedPerTenant = 50;
    fo.admission.maxQueuedTotal = 100;
    fo.admission.maxBacklogSec = 1e9;
    fo.brownout.enabled = false;  // starvation alone must trigger the park
    fo.preempt.minRunSec = 20.0;
    fo.preempt.cooldownSec = 60.0;
    fo.preempt.highTierMaxWaitSec = 60.0;
  });
  std::vector<metasched::JobStats> stats;
  w.meta->setOnJobComplete(
      [&stats](const metasched::JobStats& s) { stats.push_back(s); });
  w.meta->start();
  w.eng.run();
  w.eng.rethrowIfFailed();

  const metasched::FrontendTotals t = w.meta->totals();
  EXPECT_GT(t.preempted, 0);
  EXPECT_GT(t.parks, 0);
  EXPECT_EQ(t.parks, t.unparked);
  EXPECT_EQ(t.failed, 0);
  // Each park rode the journal's prepare->commit path and resolved.
  EXPECT_GT(w.journal->opened(), 0);
  EXPECT_GT(w.journal->committed(), 0);
  EXPECT_EQ(w.journal->inFlight(), 0);
  // The victim's RunBreakdown surfaces the park (satellite: counters).
  bool sawPark = false;
  for (const auto& s : stats) {
    if (s.breakdown.preemptParks > 0) sawPark = true;
  }
  EXPECT_TRUE(sawPark);
  auditTotals(w);
}

/// Overload shape (2.2x offered load on 4 slots, all mitigations on)
/// applied on top of buildWorld's defaults — `fo.slots` stays intact.
void applyOverloadConfig(World& w, metasched::FrontendOptions& fo) {
  fo.horizonSec = 1200.0;
  fo.hardDeadlineSec = 2400.0;
  fo.controlPeriodSec = 30.0;
  fo.flopsPerPhase = w.refRate * 15.0;
  fo.refFlopsPerSec = w.refRate;
  fo.seed = 0x5eed;
  fo.jobOptions.resourceSelectionSec = 1.0;
  fo.jobOptions.perfModelingSec = 0.5;
  fo.jobOptions.appStartPerRankSec = 0.5;
  fo.jobOptions.monitorContract = false;
  fo.tenants = {
      tenant("hi", 2, 2.0, 0.018, 45.0, w.refRate, 17),
      tenant("norm", 1, 1.0, 0.026, 45.0, w.refRate, 34),
      tenant("batch", 0, 1.0, 0.044, 45.0, w.refRate, 51),
  };
  fo.admission.maxQueuedPerTenant = 10;
  fo.admission.maxQueuedTotal = 32;
  fo.admission.maxBacklogSec = 400.0;
  fo.admission.retryAfterMinSec = 15.0;
  fo.admission.retryAfterMaxSec = 240.0;
  fo.brownout.dwellSec = 60.0;
  fo.preempt.minRunSec = 20.0;
  fo.preempt.cooldownSec = 90.0;
  fo.preempt.highTierMaxWaitSec = 120.0;
}

std::uint64_t runOverloadDigest() {
  World w;
  buildWorld(w, 4, [&w](metasched::FrontendOptions& fo) {
    applyOverloadConfig(w, fo);
  });
  w.meta->start();
  w.eng.run();
  w.eng.rethrowIfFailed();
  util::DigestStream ds;
  w.meta->foldDigest(ds);
  return ds.digest();
}

TEST(MetaScheduler, OverloadReplaysBitIdentically) {
  // Jittered resubmit schedules, thinned Poisson arrivals, Pareto sizes:
  // all drawn from snapshotted per-tenant streams, so two fresh runs of
  // the same overload scenario must agree exactly.
  EXPECT_EQ(runOverloadDigest(), runOverloadDigest());
}

TEST(MetaScheduler, BreakdownSurfacesAdmissionCounters) {
  World w;
  buildWorld(w, 4, [&w](metasched::FrontendOptions& fo) {
    applyOverloadConfig(w, fo);
  });
  std::vector<metasched::JobStats> stats;
  w.meta->setOnJobComplete(
      [&stats](const metasched::JobStats& s) { stats.push_back(s); });
  w.meta->start();
  w.eng.run();
  w.eng.rethrowIfFailed();
  // Under 2x overload with tight admission, some completed job was shed at
  // least once before being admitted — and its breakdown says so.
  bool sawShedThenComplete = false;
  for (const auto& s : stats) {
    if (s.breakdown.admissionSheds > 0 &&
        s.breakdown.admissionRetries == s.breakdown.admissionSheds) {
      sawShedThenComplete = true;
    }
  }
  EXPECT_TRUE(sawShedThenComplete);
  const metasched::FrontendTotals t = w.meta->totals();
  EXPECT_GT(t.shed, 0);
  EXPECT_GT(t.brownoutEscalations, 0);
  auditTotals(w);
}

TEST(MetaScheduler, SnapshotRestoreResumesAndDrains) {
  // Run the overload scenario to mid-flight, capture a whole-simulation
  // snapshot, and restore it into two fresh control planes: both must
  // drain completely and agree bit-for-bit (restore is a pure function of
  // the image).
  World a;
  buildWorld(a, 4, [&a](metasched::FrontendOptions& fo) {
    applyOverloadConfig(a, fo);
  });
  a.meta->start();
  a.eng.runUntil(700.0);
  const core::SnapshotImage img = a.mgr->snapshotNow();
  const std::vector<std::uint8_t> bytes = img.serialize();

  const auto restoreAndDrain = [&bytes](World& w) {
    buildWorld(w, 4, [&w](metasched::FrontendOptions& fo) {
      applyOverloadConfig(w, fo);
    }, /*armDaemons=*/false);
    const core::SnapshotImage parsed = core::SnapshotImage::parse(bytes);
    w.eng.runUntil(parsed.simTime);
    w.mgr->restoreFrom(parsed);
    w.journal->recover("test restart");
    w.nws->start();
    w.meta->resumeAfterRestore();
    w.eng.run();
    w.eng.rethrowIfFailed();
    util::DigestStream ds;
    w.meta->foldDigest(ds);
    return ds.digest();
  };

  World b;
  const std::uint64_t db = restoreAndDrain(b);
  EXPECT_TRUE(b.meta->drained());
  EXPECT_EQ(b.meta->totals().failed, 0);
  auditTotals(b);

  World c;
  const std::uint64_t dc = restoreAndDrain(c);
  EXPECT_EQ(db, dc);
}

}  // namespace
}  // namespace grads

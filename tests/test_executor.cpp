#include <gtest/gtest.h>

#include "grid/load.hpp"
#include "grid/testbeds.hpp"
#include "services/gis.hpp"
#include "util/error.hpp"
#include "workflow/builders.hpp"
#include "workflow/executor.hpp"

namespace grads::workflow {
namespace {

constexpr double kMB = 1024.0 * 1024.0;

struct Fixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::QrTestbed tb;
  std::unique_ptr<services::Gis> gis;
  std::unique_ptr<services::Nws> nws;

  Fixture() {
    tb = grid::buildQrTestbed(g);
    gis = std::make_unique<services::Gis>(g);
    nws = std::make_unique<services::Nws>(eng, g, 10.0, 0.0, 4);
    nws->start();
  }

  ExecutionResult run(const Dag& dag, ExecutionOptions opts = {}) {
    WorkflowExecutor exec(g, *gis, nws.get());
    ExecutionResult result;
    eng.spawn(exec.execute(dag, opts, &result), "workflow");
    eng.run();
    return result;
  }
};

TEST(Executor, RunsChainInDependencyOrder) {
  Fixture f;
  const auto dag = makeChain(5, 5e9, 2 * kMB);
  const auto result = f.run(dag);
  ASSERT_EQ(result.runs.size(), 5u);
  for (ComponentId c = 0; c + 1 < dag.size(); ++c) {
    EXPECT_LE(result.runs[c].finish, result.runs[c + 1].start + 1e-9);
  }
  EXPECT_GT(result.makespan, 0.0);
}

TEST(Executor, FanRunsInParallel) {
  Fixture f;
  const auto dag = makeFanOutIn(6, 2e10, kMB);
  const auto result = f.run(dag);
  // The middle components overlap in time (true parallel execution).
  int overlaps = 0;
  for (ComponentId a = 1; a <= 6; ++a) {
    for (ComponentId b = a + 1; b <= 6; ++b) {
      const bool overlap = result.runs[a].start < result.runs[b].finish &&
                           result.runs[b].start < result.runs[a].finish;
      if (overlap) ++overlaps;
    }
  }
  EXPECT_GT(overlaps, 5);
  // Fan-out makespan beats any sequential execution of the middle stage.
  double sumMiddle = 0.0;
  for (ComponentId c = 1; c <= 6; ++c) {
    sumMiddle += result.runs[c].finish - result.runs[c].start;
  }
  EXPECT_LT(result.makespan, sumMiddle);
}

TEST(Executor, ExecutedMakespanTracksStaticEstimateOnIdleGrid) {
  Fixture f;
  const auto dag = makeFanOutIn(8, 3e10, 2 * kMB);
  const auto result = f.run(dag);
  // No contention, honest estimator → execution lands near the estimate.
  EXPECT_NEAR(result.makespan, result.staticEstimate,
              0.35 * result.staticEstimate);
}

TEST(Executor, TransfersChargeRealNetworkTime) {
  Fixture f;
  // Pin the producer on UTK and the consumer on UIUC via software tags: the
  // 60 MB edge must cross the 1.2 MB/s WAN (≈ 50 s).
  f.gis->installSoftware(f.tb.utkNodes[0], "src-only");
  f.gis->installSoftware(f.tb.uiucNodes[0], "dst-only");
  Dag dag;
  Component a;
  a.name = "producer";
  a.flops = 1e6;
  a.requiredSoftware = {"src-only"};
  const auto ca = dag.add(a);
  Component b;
  b.name = "consumer";
  b.flops = 1e6;
  b.requiredSoftware = {"dst-only"};
  const auto cb = dag.add(b);
  dag.addEdge(ca, cb, 60.0 * kMB);
  const auto result = f.run(dag);
  EXPECT_GT(result.runs[cb].finish - result.runs[cb].start, 40.0);
}

TEST(Executor, BackgroundLoadSlowsExecutionNotEstimate) {
  Fixture f;
  const auto dag = makeChain(4, 4e10, kMB);
  // Load every UTK node after scheduling has happened (NWS saw them idle).
  for (const auto id : f.tb.utkNodes) {
    grid::applyLoadTrace(f.eng, f.g.node(id), grid::LoadTrace::stepAt(1.0, 3.0));
  }
  const auto result = f.run(dag);
  // Execution on suddenly-loaded nodes takes far longer than the estimate
  // (that's what workflow rescheduling is for).
  EXPECT_GT(result.makespan, 1.5 * result.staticEstimate);
}

TEST(Executor, ReschedulingEscapesLoadedCluster) {
  auto runWith = [](bool reschedule) {
    Fixture f;
    // Long chain so there is plenty of unstarted work when the load lands.
    const auto dag = makeChain(10, 4e10, kMB);
    for (const auto id : f.tb.utkNodes) {
      grid::applyLoadTrace(f.eng, f.g.node(id),
                           grid::LoadTrace::stepAt(30.0, 4.0));
    }
    ExecutionOptions opts;
    opts.reschedule = reschedule;
    opts.rescheduleCheckSec = 20.0;
    return f.run(dag, opts);
  };
  const auto fixed = runWith(false);
  const auto adaptive = runWith(true);
  EXPECT_GT(adaptive.remappedComponents, 0);
  EXPECT_GT(adaptive.rescheduleRounds, 0);
  EXPECT_LT(adaptive.makespan, 0.8 * fixed.makespan);
}

TEST(Executor, NoReschedulingWhenNothingChanges) {
  Fixture f;
  const auto dag = makeChain(4, 2e10, kMB);
  ExecutionOptions opts;
  opts.reschedule = true;
  opts.rescheduleCheckSec = 5.0;
  const auto result = f.run(dag, opts);
  EXPECT_EQ(result.remappedComponents, 0);  // idle grid → keep the plan
}

TEST(Executor, SensorsReportComponentTimes) {
  Fixture f;
  autopilot::AutopilotManager autopilot(f.eng);
  WorkflowExecutor exec(f.g, *f.gis, f.nws.get(), &autopilot);
  const auto dag = makeChain(3, 1e10, kMB);
  ExecutionOptions opts;
  opts.sensorChannel = "wf.component-time";
  ExecutionResult result;
  f.eng.spawn(exec.execute(dag, opts, &result), "wf");
  f.eng.run();
  EXPECT_EQ(autopilot.history("wf.component-time").size(), 3u);
}

TEST(Executor, EmptyDagRejected) {
  Fixture f;
  Dag dag;
  WorkflowExecutor exec(f.g, *f.gis, f.nws.get());
  f.eng.spawn(exec.execute(dag, ExecutionOptions{}, nullptr));
  EXPECT_THROW(f.eng.run(), InvalidArgument);
}

}  // namespace
}  // namespace grads::workflow

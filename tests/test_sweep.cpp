#include <gtest/gtest.h>

#include "apps/sweep.hpp"
#include "core/app_manager.hpp"
#include "grid/load.hpp"
#include "grid/testbeds.hpp"
#include "services/ibp.hpp"
#include "services/nws.hpp"
#include "sim/sync.hpp"

namespace grads::apps {
namespace {

struct Fixture {
  sim::Engine eng;
  grid::Grid g{eng};
  grid::QrTestbed tb;
  std::unique_ptr<services::Gis> gis;
  std::unique_ptr<services::Nws> nws;
  std::unique_ptr<services::Ibp> ibp;
  std::unique_ptr<autopilot::AutopilotManager> autopilot;

  Fixture() {
    tb = grid::buildQrTestbed(g);
    gis = std::make_unique<services::Gis>(g);
    gis->installEverywhere(services::software::kLocalBinder);
    gis->installEverywhere(services::software::kSrsLibrary);
    gis->installEverywhere(services::software::kAutopilotSensors);
    nws = std::make_unique<services::Nws>(eng, g, 10.0, 0.0, 5);
    nws->start();
    ibp = std::make_unique<services::Ibp>(g);
    autopilot = std::make_unique<autopilot::AutopilotManager>(eng);
  }

  /// Runs the sweep on an explicit world (no AppManager), returns makespan.
  double runDirect(const SweepConfig& cfg, std::vector<grid::NodeId> mapping,
                   core::LaunchContext* outCtx = nullptr) {
    vmpi::World world(g, std::move(mapping), "sweep");
    const auto cop = makeSweepCop(g, cfg);
    core::LaunchContext ctx;
    ctx.appName = "sweep";
    ctx.world = &world;
    sim::JoinSet js(eng);
    for (int r = 0; r < world.size(); ++r) js.spawn(cop.code(ctx, r));
    eng.spawn([](sim::JoinSet& j) -> sim::Task { co_await j.join(); }(js));
    const double t0 = eng.now();
    eng.run();
    if (outCtx != nullptr) *outCtx = ctx;
    return eng.now() - t0;
  }
};

TEST(Sweep, DeterministicTaskFlops) {
  SweepConfig cfg;
  EXPECT_DOUBLE_EQ(sweepTaskFlops(cfg, 7), sweepTaskFlops(cfg, 7));
  EXPECT_NE(sweepTaskFlops(cfg, 7), sweepTaskFlops(cfg, 8));
  EXPECT_GE(sweepTaskFlops(cfg, 3), cfg.flopsMin);
  EXPECT_LT(sweepTaskFlops(cfg, 3), cfg.flopsMax);
}

TEST(Sweep, CompletesAllTasks) {
  Fixture f;
  SweepConfig cfg;
  cfg.tasks = 32;
  core::LaunchContext ctx;
  f.runDirect(cfg, {f.tb.uiucNodes[0], f.tb.uiucNodes[1], f.tb.uiucNodes[2]},
              &ctx);
  EXPECT_FALSE(ctx.stopped);
  EXPECT_EQ(ctx.completedPhases, sweepPhaseCount(cfg));
}

TEST(Sweep, MoreWorkersFinishFaster) {
  SweepConfig cfg;
  cfg.tasks = 48;
  Fixture f1;
  const double two =
      f1.runDirect(cfg, {f1.tb.uiucNodes[0], f1.tb.uiucNodes[1],
                         f1.tb.uiucNodes[2]});
  Fixture f2;
  const double six = f2.runDirect(
      cfg, {f2.tb.uiucNodes[0], f2.tb.uiucNodes[1], f2.tb.uiucNodes[2],
            f2.tb.uiucNodes[3], f2.tb.uiucNodes[4], f2.tb.uiucNodes[5],
            f2.tb.uiucNodes[6]});
  EXPECT_LT(six, 0.5 * two);
}

TEST(Sweep, SelfSchedulingBalancesHeterogeneousWorkers) {
  // A loaded worker should not gate completion the way it does for the
  // synchronous QR: tasks simply flow to the faster workers.
  SweepConfig cfg;
  cfg.tasks = 48;
  Fixture clean;
  const double base =
      clean.runDirect(cfg, {clean.tb.uiucNodes[0], clean.tb.uiucNodes[1],
                            clean.tb.uiucNodes[2], clean.tb.uiucNodes[3]});
  Fixture loaded;
  loaded.g.node(loaded.tb.uiucNodes[3]).injectLoad(4.0);  // one worker at 1/5
  const double degraded =
      loaded.runDirect(cfg, {loaded.tb.uiucNodes[0], loaded.tb.uiucNodes[1],
                             loaded.tb.uiucNodes[2], loaded.tb.uiucNodes[3]});
  // Aggregate rate drops from 3.0 to ~2.2 worker-equivalents → ≤ ~1.45×
  // slowdown (a synchronous app would slow ~5×).
  EXPECT_LT(degraded, 1.7 * base);
}

TEST(Sweep, PerfModelAggregatesWorkerRates) {
  Fixture f;
  SweepConfig cfg;
  cfg.tasks = 64;
  SweepPerfModel model(f.g, cfg);
  std::vector<grid::NodeId> small{f.tb.uiucNodes[0], f.tb.uiucNodes[1]};
  std::vector<grid::NodeId> large{f.tb.uiucNodes[0], f.tb.uiucNodes[1],
                                  f.tb.uiucNodes[2], f.tb.uiucNodes[3],
                                  f.tb.uiucNodes[4]};
  EXPECT_GT(model.totalSeconds(small, nullptr),
            2.0 * model.totalSeconds(large, nullptr));
}

TEST(Sweep, ModelPredictsDirectExecution) {
  Fixture f;
  SweepConfig cfg;
  cfg.tasks = 40;
  std::vector<grid::NodeId> mapping{f.tb.uiucNodes[0], f.tb.uiucNodes[1],
                                    f.tb.uiucNodes[2], f.tb.uiucNodes[3]};
  SweepPerfModel model(f.g, cfg);
  const double predicted = model.totalSeconds(mapping, nullptr);
  const double actual = f.runDirect(cfg, mapping);
  // Self-scheduling has tail effects (last tasks); allow 30%.
  EXPECT_NEAR(actual, predicted, 0.3 * predicted);
}

TEST(Sweep, MigratesThroughAppManagerUnderLoad) {
  Fixture f;
  SweepConfig cfg;
  cfg.tasks = 96;
  const auto cop = makeSweepCop(f.g, cfg);
  // Degrade the whole initially-chosen cluster so migration is attractive.
  for (const auto id : f.tb.utkNodes) {
    grid::applyLoadTrace(f.eng, f.g.node(id), grid::LoadTrace::stepAt(60.0, 4.0));
  }
  reschedule::ReschedulerOptions ropts;
  ropts.mode = reschedule::ReschedulerMode::kForcedMigrate;
  reschedule::StopRestartRescheduler rescheduler(*f.gis, f.nws.get(), ropts);
  core::AppManager mgr(f.g, *f.gis, f.nws.get(), *f.ibp, *f.autopilot);
  core::RunBreakdown bd;
  f.eng.spawn(mgr.run(cop, &rescheduler, core::ManagerOptions{}, &bd));
  f.eng.run();
  EXPECT_EQ(bd.incarnations, 2);
  // The master's checkpoint is small and cheap — unlike QR's matrix.
  EXPECT_LT(bd.sumSegment(bd.checkpointRead), 60.0);
}

class SweepScale : public ::testing::TestWithParam<int> {};

TEST_P(SweepScale, AllTasksAccountedFor) {
  Fixture f;
  SweepConfig cfg;
  cfg.tasks = static_cast<std::size_t>(GetParam());
  cfg.tasksPerPhase = 4;
  core::LaunchContext ctx;
  f.runDirect(cfg, {f.tb.uiucNodes[0], f.tb.uiucNodes[1], f.tb.uiucNodes[2],
                    f.tb.uiucNodes[3]},
              &ctx);
  EXPECT_EQ(ctx.completedPhases, sweepPhaseCount(cfg));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SweepScale, ::testing::Values(4, 7, 16, 33));

}  // namespace
}  // namespace grads::apps

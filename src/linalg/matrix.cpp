#include "linalg/matrix.hpp"

#include <cmath>

#include "util/error.hpp"

namespace grads::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    GRADS_REQUIRE(r.size() == cols_, "Matrix: ragged initializer");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  GRADS_ASSERT(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  GRADS_ASSERT(r < rows_ && c < cols_, "Matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<double> Matrix::row(std::size_t r) {
  GRADS_ASSERT(r < rows_, "Matrix row out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const double> Matrix::row(std::size_t r) const {
  GRADS_ASSERT(r < rows_, "Matrix row out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  GRADS_REQUIRE(cols_ == rhs.rows_, "Matrix multiply: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::operator*(std::span<const double> x) const {
  GRADS_REQUIRE(cols_ == x.size(), "Matrix-vector multiply: shape mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * x[j];
    y[i] = s;
  }
  return y;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  GRADS_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
                "Matrix subtract: shape mismatch");
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - rhs.data_[i];
  }
  return out;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::maxAbsDiff(const Matrix& a, const Matrix& b) {
  GRADS_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_,
                "maxAbsDiff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::fabs(a.data_[i] - b.data_[i]));
  }
  return m;
}

QrFactorization householderQr(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  GRADS_REQUIRE(m >= n, "householderQr: need rows >= cols");
  Matrix r = a;
  Matrix q = Matrix::identity(m);
  std::vector<double> v(m);

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k below the diagonal.
    double normx = 0.0;
    for (std::size_t i = k; i < m; ++i) normx += r(i, k) * r(i, k);
    normx = std::sqrt(normx);
    if (normx == 0.0) continue;
    const double alpha = r(k, k) >= 0.0 ? -normx : normx;
    double vnorm2 = 0.0;
    for (std::size_t i = k; i < m; ++i) {
      v[i] = r(i, k);
      if (i == k) v[i] -= alpha;
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 == 0.0) continue;

    // Apply H = I − 2 v vᵀ / (vᵀv) to R (columns k..n-1).
    for (std::size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i] * r(i, j);
      const double f = 2.0 * dot / vnorm2;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= f * v[i];
    }
    // Accumulate into Q (apply H on the right: Q ← Q H).
    for (std::size_t i = 0; i < m; ++i) {
      double dot = 0.0;
      for (std::size_t j = k; j < m; ++j) dot += q(i, j) * v[j];
      const double f = 2.0 * dot / vnorm2;
      for (std::size_t j = k; j < m; ++j) q(i, j) -= f * v[j];
    }
  }
  // Zero the strictly-lower part of R (numerically it is ~1e-16 noise).
  for (std::size_t i = 1; i < m; ++i) {
    for (std::size_t j = 0; j < std::min(i, n); ++j) r(i, j) = 0.0;
  }
  return QrFactorization{std::move(q), std::move(r)};
}

std::vector<double> backSubstitute(const Matrix& r, std::span<const double> b) {
  const std::size_t n = std::min(r.rows(), r.cols());
  GRADS_REQUIRE(b.size() >= n, "backSubstitute: rhs too short");
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= r(i, j) * x[j];
    GRADS_REQUIRE(std::fabs(r(i, i)) > 1e-300, "backSubstitute: singular R");
    x[i] = s / r(i, i);
  }
  return x;
}

std::vector<double> leastSquares(const Matrix& a, std::span<const double> b) {
  GRADS_REQUIRE(a.rows() == b.size(), "leastSquares: shape mismatch");
  const auto qr = householderQr(a);
  // x = R⁻¹ Qᵀ b (top n rows).
  const auto qtb = qr.q.transposed() * b;
  return backSubstitute(qr.r, qtb);
}

double qrFlops(std::size_t m, std::size_t n) {
  // Householder QR: sum over k of ~4(m−k)(n−k) flops for the update plus
  // vector construction; the standard closed form is 2n²(m − n/3).
  const double dm = static_cast<double>(m);
  const double dn = static_cast<double>(n);
  return 2.0 * dn * dn * (dm - dn / 3.0);
}

double matmulFlops(std::size_t n) {
  const double dn = static_cast<double>(n);
  return 2.0 * dn * dn * dn;
}

}  // namespace grads::linalg

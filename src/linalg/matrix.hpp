#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace grads::linalg {

/// Dense row-major matrix of doubles. Small and dependency-free: it backs
/// the performance modeler's least-squares fits and the numeric ground truth
/// for the ScaLAPACK-style QR application.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r);
  std::span<const double> row(std::size_t r) const;

  static Matrix identity(std::size_t n);

  Matrix transposed() const;
  Matrix operator*(const Matrix& rhs) const;
  std::vector<double> operator*(std::span<const double> x) const;
  Matrix operator-(const Matrix& rhs) const;

  /// Frobenius norm.
  double norm() const;
  /// max |a_ij - b_ij|.
  static double maxAbsDiff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Result of a Householder QR factorization A = Q R.
struct QrFactorization {
  Matrix q;  ///< rows × rows orthogonal
  Matrix r;  ///< rows × cols upper trapezoidal
};

/// Householder QR with explicit Q accumulation (for testing) — O(mn²).
QrFactorization householderQr(const Matrix& a);

/// Solves min ‖Ax − b‖₂ for full-column-rank A via Householder QR.
std::vector<double> leastSquares(const Matrix& a, std::span<const double> b);

/// Solves Rx = b for upper-triangular R (top-left n×n of r).
std::vector<double> backSubstitute(const Matrix& r, std::span<const double> b);

/// Exact flop count of a Householder QR factorization of an m×n matrix —
/// the ground truth the flop-model fitting must recover (≈ 2n²(m − n/3)).
double qrFlops(std::size_t m, std::size_t n);

/// Exact flop count of an n×n×n matrix multiply (2n³).
double matmulFlops(std::size_t n);

}  // namespace grads::linalg

#include "services/nws.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace grads::services {

namespace {

class LastValue final : public Forecaster {
 public:
  void update(double v) override { last_ = v; }
  double forecast() const override { return last_; }
  const char* name() const override { return "last-value"; }
  void encodeState(core::SnapshotWriter& w) const override {
    w.putF64(last_);
  }
  void decodeState(core::SnapshotReader& r) override { last_ = r.getF64(); }

 private:
  double last_ = 0.0;
};

class RunningMean final : public Forecaster {
 public:
  void update(double v) override {
    ++n_;
    mean_ += (v - mean_) / static_cast<double>(n_);
  }
  double forecast() const override { return mean_; }
  const char* name() const override { return "running-mean"; }
  void encodeState(core::SnapshotWriter& w) const override {
    w.putU64(n_);
    w.putF64(mean_);
  }
  void decodeState(core::SnapshotReader& r) override {
    n_ = r.getU64();
    mean_ = r.getF64();
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
};

class SlidingMedian final : public Forecaster {
 public:
  explicit SlidingMedian(std::size_t window) : window_(window) {
    GRADS_REQUIRE(window >= 1, "SlidingMedian: empty window");
  }
  void update(double v) override {
    values_.push_back(v);
    if (values_.size() > window_) values_.pop_front();
  }
  double forecast() const override {
    if (values_.empty()) return 0.0;
    std::vector<double> v(values_.begin(), values_.end());
    std::sort(v.begin(), v.end());
    const std::size_t mid = v.size() / 2;
    return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
  }
  const char* name() const override { return "sliding-median"; }
  void encodeState(core::SnapshotWriter& w) const override {
    w.putU64(values_.size());
    for (const double v : values_) w.putF64(v);
  }
  void decodeState(core::SnapshotReader& r) override {
    values_.clear();
    const std::uint64_t n = r.getU64();
    for (std::uint64_t i = 0; i < n; ++i) values_.push_back(r.getF64());
  }

 private:
  std::size_t window_;  // grads: transient(construction-time config)
  std::deque<double> values_;
};

class ExpSmoothing final : public Forecaster {
 public:
  explicit ExpSmoothing(double alpha) : alpha_(alpha) {
    GRADS_REQUIRE(alpha > 0.0 && alpha <= 1.0, "ExpSmoothing: bad alpha");
  }
  void update(double v) override {
    value_ = first_ ? v : alpha_ * v + (1.0 - alpha_) * value_;
    first_ = false;
  }
  double forecast() const override { return value_; }
  const char* name() const override { return "exp-smoothing"; }
  void encodeState(core::SnapshotWriter& w) const override {
    w.putF64(value_);
    w.putBool(first_);
  }
  void decodeState(core::SnapshotReader& r) override {
    value_ = r.getF64();
    first_ = r.getBool();
  }

 private:
  double alpha_;  // grads: transient(construction-time config)
  double value_ = 0.0;
  bool first_ = true;
};

class SlidingMean final : public Forecaster {
 public:
  explicit SlidingMean(std::size_t window) : window_(window) {
    GRADS_REQUIRE(window >= 1, "SlidingMean: empty window");
  }
  void update(double v) override {
    values_.push_back(v);
    sum_ += v;
    if (values_.size() > window_) {
      sum_ -= values_.front();
      values_.pop_front();
    }
  }
  double forecast() const override {
    return values_.empty() ? 0.0 : sum_ / static_cast<double>(values_.size());
  }
  const char* name() const override { return "sliding-mean"; }
  void encodeState(core::SnapshotWriter& w) const override {
    w.putU64(values_.size());
    for (const double v : values_) w.putF64(v);
  }
  void decodeState(core::SnapshotReader& r) override {
    values_.clear();
    sum_ = 0.0;
    const std::uint64_t n = r.getU64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const double v = r.getF64();
      values_.push_back(v);
      sum_ += v;
    }
  }

 private:
  std::size_t window_;  // grads: transient(construction-time config)
  std::deque<double> values_;
  double sum_ = 0.0;  // grads: transient(derived running sum, rebuilt from values_ on decode)
};

class Ar1 final : public Forecaster {
 public:
  void update(double v) override {
    if (n_ > 0) {
      // Accumulate sufficient statistics for x_{t+1} = a·x_t + b.
      ++pairs_;
      sx_ += prev_;
      sy_ += v;
      sxx_ += prev_ * prev_;
      sxy_ += prev_ * v;
    }
    prev_ = v;
    ++n_;
  }
  double forecast() const override {
    if (pairs_ < 3) return prev_;
    const double det = pairs_ * sxx_ - sx_ * sx_;
    if (std::abs(det) < 1e-12) return prev_;
    const double a = (pairs_ * sxy_ - sx_ * sy_) / det;
    const double b = (sy_ - a * sx_) / pairs_;
    return a * prev_ + b;
  }
  const char* name() const override { return "ar1"; }
  void encodeState(core::SnapshotWriter& w) const override {
    w.putF64(prev_);
    w.putU64(n_);
    w.putF64(pairs_);
    w.putF64(sx_);
    w.putF64(sy_);
    w.putF64(sxx_);
    w.putF64(sxy_);
  }
  void decodeState(core::SnapshotReader& r) override {
    prev_ = r.getF64();
    n_ = r.getU64();
    pairs_ = r.getF64();
    sx_ = r.getF64();
    sy_ = r.getF64();
    sxx_ = r.getF64();
    sxy_ = r.getF64();
  }

 private:
  double prev_ = 0.0;
  std::size_t n_ = 0;
  double pairs_ = 0.0;
  double sx_ = 0.0;
  double sy_ = 0.0;
  double sxx_ = 0.0;
  double sxy_ = 0.0;
};

}  // namespace

std::unique_ptr<Forecaster> makeSlidingMean(std::size_t window) {
  return std::make_unique<SlidingMean>(window);
}
std::unique_ptr<Forecaster> makeAr1() { return std::make_unique<Ar1>(); }

std::unique_ptr<Forecaster> makeLastValue() {
  return std::make_unique<LastValue>();
}
std::unique_ptr<Forecaster> makeRunningMean() {
  return std::make_unique<RunningMean>();
}
std::unique_ptr<Forecaster> makeSlidingMedian(std::size_t window) {
  return std::make_unique<SlidingMedian>(window);
}
std::unique_ptr<Forecaster> makeExpSmoothing(double alpha) {
  return std::make_unique<ExpSmoothing>(alpha);
}

ForecasterBattery::ForecasterBattery() {
  entries_.push_back(Entry{makeLastValue()});
  entries_.push_back(Entry{makeRunningMean()});
  entries_.push_back(Entry{makeSlidingMedian(5)});
  entries_.push_back(Entry{makeSlidingMedian(21)});
  entries_.push_back(Entry{makeExpSmoothing(0.2)});
  entries_.push_back(Entry{makeExpSmoothing(0.5)});
  entries_.push_back(Entry{makeSlidingMean(10)});
  entries_.push_back(Entry{makeAr1()});
}

void ForecasterBattery::addMeasurement(double value) {
  // Score each forecaster's *prior* prediction against this measurement,
  // then feed it the new observation — the NWS postcasting scheme.
  for (auto& e : entries_) {
    if (count_ > 0) {
      e.absErrorSum += std::abs(e.forecaster->forecast() - value);
      ++e.predictions;
    }
    e.forecaster->update(value);
  }
  last_ = value;
  ++count_;
}

std::size_t ForecasterBattery::bestIndex() const {
  std::size_t best = 0;
  double bestErr = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const auto& e = entries_[i];
    const double err = e.predictions == 0
                           ? std::numeric_limits<double>::infinity()
                           : e.absErrorSum / static_cast<double>(e.predictions);
    if (err < bestErr) {
      bestErr = err;
      best = i;
    }
  }
  return best;
}

double ForecasterBattery::forecast() const {
  GRADS_REQUIRE(count_ > 0, "ForecasterBattery: no measurements yet");
  return entries_[bestIndex()].forecaster->forecast();
}

std::string ForecasterBattery::bestName() const {
  return entries_[bestIndex()].forecaster->name();
}

double ForecasterBattery::bestError() const {
  const auto& e = entries_[bestIndex()];
  return e.predictions == 0 ? 0.0
                            : e.absErrorSum / static_cast<double>(e.predictions);
}

void ForecasterBattery::encodeState(core::SnapshotWriter& w) const {
  w.putU64(count_);
  w.putF64(last_);
  w.putU64(entries_.size());
  for (const auto& e : entries_) {
    w.putF64(e.absErrorSum);
    w.putU64(e.predictions);
    e.forecaster->encodeState(w);
  }
}

void ForecasterBattery::decodeState(core::SnapshotReader& r) {
  count_ = r.getU64();
  last_ = r.getF64();
  const std::uint64_t n = r.getU64();
  if (n != entries_.size()) {
    throw core::SnapshotError(
        "ForecasterBattery: snapshot battery shape does not match (the "
        "forecaster roster is configuration, not state)");
  }
  for (auto& e : entries_) {
    e.absErrorSum = r.getF64();
    e.predictions = r.getU64();
    e.forecaster->decodeState(r);
  }
}

Nws::Nws(sim::Engine& engine, grid::Grid& grid, double periodSec,
         double relativeNoise, std::uint64_t seed)
    : engine_(&engine),
      grid_(&grid),
      period_(periodSec),
      noise_(relativeNoise),
      rng_(seed),
      staleAfter_(3.0 * periodSec) {
  GRADS_REQUIRE(periodSec > 0.0, "Nws: period must be positive");
  GRADS_REQUIRE(relativeNoise >= 0.0, "Nws: negative noise");
}

void Nws::start() {
  if (running_) return;
  running_ = true;
  sampleAll();  // take an immediate reading, then rearm periodically
}

namespace {

void encodeSeriesMap(core::SnapshotWriter& w,
                     const std::map<grid::NodeId, ForecasterBattery>& m) {
  w.putU64(m.size());
  for (const auto& [key, battery] : m) {
    w.putU64(key);
    battery.encodeState(w);
  }
}

void decodeSeriesMap(core::SnapshotReader& r,
                     std::map<grid::NodeId, ForecasterBattery>& m) {
  m.clear();
  const std::uint64_t n = r.getU64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const auto key = static_cast<grid::NodeId>(r.getU64());
    m[key].decodeState(r);  // operator[] default-constructs the battery
  }
}

}  // namespace

void Nws::encodeState(core::SnapshotWriter& w) const {
  w.putF64(period_);
  w.putF64(noise_);
  const RngState rs = rng_.state();
  for (const std::uint64_t s : rs.s) w.putU64(s);
  w.putBool(rs.haveSpare);
  w.putF64(rs.spare);
  w.putBool(dark_);
  w.putF64(staleAfter_);
  w.putF64(lastSample_);
  w.putU64(samples_);
  encodeSeriesMap(w, cpu_);
  encodeSeriesMap(w, incumbent_);
  encodeSeriesMap(w, bw_);
  encodeSeriesMap(w, util_);
}

void Nws::decodeState(core::SnapshotReader& r) {
  const double period = r.getF64();
  const double noise = r.getF64();
  if (period != period_ || noise != noise_) {
    throw core::SnapshotError(
        "services.nws: snapshot sensing configuration (period/noise) does "
        "not match the rebuilt service");
  }
  RngState rs;
  for (std::uint64_t& s : rs.s) s = r.getU64();
  rs.haveSpare = r.getBool();
  rs.spare = r.getF64();
  rng_.setState(rs);
  dark_ = r.getBool();
  staleAfter_ = r.getF64();
  lastSample_ = r.getF64();
  samples_ = r.getU64();
  decodeSeriesMap(r, cpu_);
  decodeSeriesMap(r, incumbent_);
  decodeSeriesMap(r, bw_);
  decodeSeriesMap(r, util_);
  // The sampling daemon is never serialized: restore happens into a fresh
  // engine and the restore protocol re-arms exactly one sampler via
  // start(). Leaving running_ set here would make that start() a no-op and
  // silently kill monitoring after restore — the arm-once trap.
  running_ = false;
}

double Nws::lastSampleAgeSec() const {
  if (lastSample_ < 0.0) return std::numeric_limits<double>::infinity();
  return engine_->now() - lastSample_;
}

void Nws::sampleAll() {
  if (!running_) return;
  if (dark_) {
    // Outage: the sensor sweep produces nothing, but the daemon survives
    // and resumes measuring once the outage lifts.
    engine_->scheduleDaemon(period_, [this] { sampleAll(); });
    return;
  }
  for (grid::NodeId id = 0; id < grid_->nodeCount(); ++id) {
    const double truth = grid_->node(id).cpuAvailability();
    const double measured =
        std::clamp(truth * (1.0 + rng_.normal(0.0, noise_)), 0.0, 1.0);
    cpu_[id].addMeasurement(measured);
    const double incTruth = grid_->node(id).incumbentAvailability();
    const double incMeasured =
        std::clamp(incTruth * (1.0 + rng_.normal(0.0, noise_)), 0.0, 1.0);
    incumbent_[id].addMeasurement(incMeasured);
  }
  for (grid::LinkId lid = 0; lid < grid_->linkCount(); ++lid) {
    const double truth = grid_->link(lid).availableBandwidth();
    const double measured =
        std::max(0.0, truth * (1.0 + rng_.normal(0.0, noise_)));
    bw_[lid].addMeasurement(measured);
  }
  // Congestion gauges from the flow registry: the allocated fraction of
  // each link's capacity is a *real* measurement of transfer dynamics
  // (checkpoint pushes, redistribution, scrubbing), not a synthetic series.
  for (grid::LinkId lid = 0; lid < grid_->linkCount(); ++lid) {
    const double truth = grid_->flows().linkUtilization(lid);
    const double measured =
        std::clamp(truth * (1.0 + rng_.normal(0.0, noise_)), 0.0, 1.0);
    util_[lid].addMeasurement(measured);
  }
  ++samples_;
  lastSample_ = engine_->now();
  engine_->scheduleDaemon(period_, [this] { sampleAll(); });
}

std::optional<double> Nws::serve(
    const std::map<grid::NodeId, ForecasterBattery>& series,
    grid::NodeId key) const {
  const auto it = series.find(key);
  if (it == series.end() || it->second.measurements() == 0) {
    return std::nullopt;
  }
  // Fresh series: the battery's best forecast. Stale series (sensor dark
  // for a while): the battery's model fits are aging, so serve the raw
  // last-known measurement — the middle rung of the degradation ladder.
  return stale() ? it->second.lastValue() : it->second.forecast();
}

std::optional<double> Nws::tryCpuAvailability(grid::NodeId node) const {
  return serve(cpu_, node);
}

std::optional<double> Nws::tryIncumbentAvailability(grid::NodeId node) const {
  return serve(incumbent_, node);
}

std::optional<double> Nws::tryBandwidth(grid::LinkId link) const {
  return serve(bw_, link);
}

std::optional<double> Nws::tryLinkUtilization(grid::LinkId link) const {
  return serve(util_, link);
}

std::optional<double> Nws::tryEffectiveRate(grid::NodeId node) const {
  const auto avail = tryCpuAvailability(node);
  if (!avail) return std::nullopt;
  return *avail * grid_->node(node).spec().effectiveFlopsPerCpu();
}

std::optional<double> Nws::tryIncumbentRate(grid::NodeId node) const {
  const auto avail = tryIncumbentAvailability(node);
  if (!avail) return std::nullopt;
  return *avail * grid_->node(node).spec().effectiveFlopsPerCpu();
}

double Nws::transferTimeDegraded(grid::NodeId src, grid::NodeId dst,
                                 double bytes) const {
  const auto route = grid_->route(src, dst);
  if (route.links.empty()) return 0.0;
  double minBw = std::numeric_limits<double>::infinity();
  for (const auto lid : route.links) {
    // Noisy sensor readings can exceed what any single flow can achieve;
    // clamp both the measured and the static-spec fallback to the per-flow
    // cap so the degraded estimate never beats transferEstimate.
    const double cap = grid_->link(lid).spec().perFlowCapBytesPerSec;
    const auto measured = tryBandwidth(lid);
    const double b =
        measured ? std::min(*measured, cap)
                 : std::min(grid_->link(lid).spec().bandwidthBytesPerSec, cap);
    minBw = std::min(minBw, b);
  }
  if (minBw <= 0.0) return std::numeric_limits<double>::infinity();
  return route.latencySec + bytes / minBw;
}

double Nws::cpuAvailability(grid::NodeId node) const {
  const auto it = cpu_.find(node);
  GRADS_REQUIRE(it != cpu_.end() && it->second.measurements() > 0,
                "Nws: no CPU measurements for node");
  return it->second.forecast();
}

double Nws::bandwidth(grid::LinkId link) const {
  const auto it = bw_.find(link);
  GRADS_REQUIRE(it != bw_.end() && it->second.measurements() > 0,
                "Nws: no bandwidth measurements for link");
  return it->second.forecast();
}

double Nws::linkUtilization(grid::LinkId link) const {
  const auto it = util_.find(link);
  GRADS_REQUIRE(it != util_.end() && it->second.measurements() > 0,
                "Nws: no utilization measurements for link");
  return it->second.forecast();
}

double Nws::latency(grid::LinkId link) const {
  return grid_->link(link).latency();
}

double Nws::transferTime(grid::NodeId src, grid::NodeId dst,
                         double bytes) const {
  const auto route = grid_->route(src, dst);
  if (route.links.empty()) return 0.0;
  double minBw = std::numeric_limits<double>::infinity();
  for (const auto lid : route.links) {
    // Forecasts are clamped to the per-flow cap for the same reason as the
    // degraded path: no forecast can promise more than one flow can carry.
    minBw = std::min(minBw,
                     std::min(bandwidth(lid),
                              grid_->link(lid).spec().perFlowCapBytesPerSec));
  }
  if (minBw <= 0.0) return std::numeric_limits<double>::infinity();
  return route.latencySec + bytes / minBw;
}

double Nws::incumbentAvailability(grid::NodeId node) const {
  const auto it = incumbent_.find(node);
  GRADS_REQUIRE(it != incumbent_.end() && it->second.measurements() > 0,
                "Nws: no incumbent measurements for node");
  return it->second.forecast();
}

double Nws::effectiveRate(grid::NodeId node) const {
  return cpuAvailability(node) *
         grid_->node(node).spec().effectiveFlopsPerCpu();
}

double Nws::incumbentRate(grid::NodeId node) const {
  return incumbentAvailability(node) *
         grid_->node(node).spec().effectiveFlopsPerCpu();
}

const ForecasterBattery& Nws::cpuSeries(grid::NodeId node) const {
  const auto it = cpu_.find(node);
  GRADS_REQUIRE(it != cpu_.end(), "Nws: node not monitored");
  return it->second;
}

}  // namespace grads::services

#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "grid/grid.hpp"
#include "sim/ps_resource.hpp"
#include "sim/task.hpp"
#include "util/error.hpp"

namespace grads::services {

/// Raised when an IBP operation targets a depot that is down. Transient by
/// design: depots come back, so checkpoint readers retry with backoff and
/// then fall back to a replica or an older checkpoint generation.
class DepotDownError : public Error {
 public:
  explicit DepotDownError(const std::string& what) : Error(what) {}
};

/// Internet Backplane Protocol storage fabric: one depot per node, backed by
/// the node's local disk. SRS writes checkpoints to the *local* depot (fast,
/// disk-bandwidth bound) and restarted processes read them across the
/// network (slow) — the asymmetry that dominates Figure 3's rescheduling
/// cost ("the time for reading checkpoints dominated ... while the time for
/// writing checkpoints is insignificant").
class Ibp {
 public:
  explicit Ibp(grid::Grid& grid);
  Ibp(const Ibp&) = delete;
  Ibp& operator=(const Ibp&) = delete;

  /// Stores `bytes` under `key` in the depot co-located with `atNode`,
  /// written by a process running on `fromNode` (kNoId = atNode): a remote
  /// depot costs the network transfer plus the depot's disk time.
  sim::Task put(const std::string& key, double bytes, grid::NodeId atNode,
                grid::NodeId fromNode = grid::kNoId);

  /// Reads object `key` into a process on `toNode`: pays depot disk time
  /// plus (if remote) the network transfer from the depot's node.
  sim::Task get(const std::string& key, grid::NodeId toNode);

  /// Reads only a `bytes`-sized slice of object `key` to `toNode` (used for
  /// N-to-M redistribution where each reader pulls its own pieces).
  sim::Task getSlice(const std::string& key, double bytes,
                     grid::NodeId toNode);

  bool exists(const std::string& key) const;
  double sizeOf(const std::string& key) const;
  grid::NodeId locationOf(const std::string& key) const;
  void remove(const std::string& key);
  std::size_t objectCount() const { return objects_.size(); }

  /// Depot outage state: operations against a down depot throw
  /// DepotDownError. Objects survive the outage (the disk is intact; the
  /// service is unreachable) and are readable again after recovery.
  void setDepotUp(grid::NodeId node, bool up);
  bool isDepotUp(grid::NodeId node) const;
  /// exists(key) && the depot holding it is currently up.
  bool readable(const std::string& key) const;

 private:
  sim::PsResource& diskFor(grid::NodeId node);
  void requireDepotUp(grid::NodeId node, const char* op) const;

  struct Object {
    double bytes = 0.0;
    grid::NodeId node = grid::kNoId;
  };

  grid::Grid* grid_;
  std::map<grid::NodeId, std::unique_ptr<sim::PsResource>> disks_;
  std::map<std::string, Object> objects_;
  std::set<grid::NodeId> downDepots_;
};

}  // namespace grads::services

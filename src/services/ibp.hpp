#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "grid/grid.hpp"
#include "sim/ps_resource.hpp"
#include "sim/task.hpp"
#include "util/error.hpp"

namespace grads::services {

/// Raised when an IBP operation targets a depot that is down. Transient by
/// design: depots come back, so checkpoint readers retry with backoff and
/// then fall back to a replica or an older checkpoint generation.
class DepotDownError : public Error {
 public:
  explicit DepotDownError(const std::string& what) : Error(what) {}
};

/// Raised when a fenced write carries an incarnation epoch older than the
/// depot's fence for that domain. Permanent by design: the writer is a
/// zombie incarnation (suspected dead but still running) and must never be
/// allowed to shadow the live incarnation's data — callers drop the write,
/// they do not retry it.
class StaleEpochError : public Error {
 public:
  explicit StaleEpochError(const std::string& what) : Error(what) {}
};

/// Write-side metadata for Ibp::put.
struct PutOptions {
  /// Content digest of the object. 0 = derive deterministically from the
  /// key and size (fine for objects nobody cross-checks; checkpoint writers
  /// pass the real content digest so primary and replica copies of the same
  /// slice agree).
  std::uint64_t digest = 0;
  /// Fencing domain (typically the application name). Empty = unfenced.
  std::string fenceDomain;
  /// Writer's incarnation epoch; rejected with StaleEpochError when below
  /// the depot fence for `fenceDomain`.
  int epoch = 0;
  /// Pacing class of the network leg. Checkpoint pushes and scrubber
  /// re-replication are bulk: they yield bandwidth to interactive/contract
  /// traffic on contended links.
  grid::TransferClass transferClass = grid::TransferClass::kInteractive;
};

/// Internet Backplane Protocol storage fabric: one depot per node, backed by
/// the node's local disk. SRS writes checkpoints to the *local* depot (fast,
/// disk-bandwidth bound) and restarted processes read them across the
/// network (slow) — the asymmetry that dominates Figure 3's rescheduling
/// cost ("the time for reading checkpoints dominated ... while the time for
/// writing checkpoints is insignificant").
///
/// Integrity model: every object carries a content digest. The depot itself
/// never verifies it (matching real IBP: storage is dumb); readers compare
/// the observed digest against an out-of-band manifest. Integrity faults
/// (bit flips, torn writes, stale deliveries) perturb the observed digest
/// and/or size so an unverified read silently returns wrong content.
class Ibp : public core::Snapshottable {
 public:
  explicit Ibp(grid::Grid& grid);
  Ibp(const Ibp&) = delete;
  Ibp& operator=(const Ibp&) = delete;

  /// Snapshot participation: the full depot catalogue (objects with their
  /// observed sizes/digests/torn flags), depot outage set, epoch fences,
  /// and the stale-write-reject counter round-trip exactly — checkpoint
  /// manifests decoded by the SRS ledger stay consistent with the depot
  /// contents they describe. Disk PsResources are transient (lazily
  /// recreated) and in-flight transfers belong to coroutine frames, which
  /// restart from checkpoints instead of being serialized.
  const char* snapshotSection() const override { return "services.ibp"; }
  void encodeState(core::SnapshotWriter& w) const override;
  void decodeState(core::SnapshotReader& r) override;

  /// Stores `bytes` under `key` in the depot co-located with `atNode`,
  /// written by a process running on `fromNode` (kNoId = atNode): a remote
  /// depot costs the network transfer plus the depot's disk time.
  sim::Task put(const std::string& key, double bytes, grid::NodeId atNode,
                grid::NodeId fromNode, PutOptions opts);
  /// Unfenced put with a derived digest. (A separate overload, not a default
  /// argument: GCC's coroutine lowering double-frees defaulted parameters of
  /// class type.)
  sim::Task put(const std::string& key, double bytes, grid::NodeId atNode,
                grid::NodeId fromNode = grid::kNoId) {
    return put(key, bytes, atNode, fromNode, PutOptions{});
  }

  /// Reads object `key` into a process on `toNode`: pays depot disk time
  /// plus (if remote) the network transfer from the depot's node. The
  /// transfer class defaults to interactive; block-cyclic redistribution
  /// readers pass kBulk so restores pace themselves behind contract traffic.
  sim::Task get(const std::string& key, grid::NodeId toNode,
                grid::TransferClass cls = grid::TransferClass::kInteractive);

  /// Reads only a `bytes`-sized slice of object `key` to `toNode` (used for
  /// N-to-M redistribution where each reader pulls its own pieces). A torn
  /// (truncated) object delivers a silent short read — exactly what a real
  /// depot does — instead of erroring; intact objects still reject
  /// oversized slice requests as a caller bug.
  sim::Task getSlice(const std::string& key, double bytes, grid::NodeId toNode,
                     grid::TransferClass cls =
                         grid::TransferClass::kInteractive);

  bool exists(const std::string& key) const;
  double sizeOf(const std::string& key) const;
  grid::NodeId locationOf(const std::string& key) const;
  void remove(const std::string& key);
  std::size_t objectCount() const { return objects_.size(); }

  /// Content digest a reader would observe for `key` (the stored digest,
  /// after any injected corruption — not necessarily the written one).
  std::uint64_t observedDigest(const std::string& key) const;
  /// Size a reader would observe (post-truncation for torn objects).
  double observedBytes(const std::string& key) const;

  /// Keys of all objects whose depot is `node`, sorted (deterministic
  /// victim pools for fault injection and scrub walks).
  std::vector<std::string> keysOnDepot(grid::NodeId node) const;

  // --- Integrity fault injection (chaos-driver entry points). ---
  /// Bit-rot: the stored content changes, the size does not. `mask` xors
  /// into the observed digest (must be nonzero).
  void injectBitFlip(const std::string& key, std::uint64_t mask);
  /// Torn/truncated write: only `keepFrac` of the object survives; the
  /// observed digest changes too (the tail is gone).
  void injectTornWrite(const std::string& key, double keepFrac);
  /// Stale delivery: the depot serves outdated content for `key` (lost
  /// update / delayed replica sync). Size is right, digest is not.
  void injectStaleDelivery(const std::string& key);

  // --- Incarnation-epoch fencing. ---
  /// Raises the write fence for `domain` (monotonic: lowering is a no-op).
  /// Subsequent fenced puts with epoch < fence throw StaleEpochError.
  void setFence(const std::string& domain, int epoch);
  int fenceEpoch(const std::string& domain) const;
  /// Fenced writes rejected so far (zombie incarnations stopped).
  std::size_t staleEpochRejects() const { return staleEpochRejects_; }

  /// Depot outage state: operations against a down depot throw
  /// DepotDownError. Objects survive the outage (the disk is intact; the
  /// service is unreachable) and are readable again after recovery.
  void setDepotUp(grid::NodeId node, bool up);
  bool isDepotUp(grid::NodeId node) const;
  /// exists(key) && the depot holding it is currently up.
  bool readable(const std::string& key) const;

 private:
  sim::PsResource& diskFor(grid::NodeId node);
  void requireDepotUp(grid::NodeId node, const char* op) const;

  struct Object {
    double bytes = 0.0;
    grid::NodeId node = grid::kNoId;
    std::uint64_t digest = 0;
    bool torn = false;
  };

  const Object& require(const std::string& key, const char* op) const;

  grid::Grid* grid_;  // grads: transient(wiring, re-bound at construction)
  // grads: transient(per-depot disk resources rebuilt from topology - transfers re-enter after a quiescent restore)
  std::map<grid::NodeId, std::unique_ptr<sim::PsResource>> disks_;
  std::map<std::string, Object> objects_;
  std::set<grid::NodeId> downDepots_;
  std::map<std::string, int> fences_;
  std::size_t staleEpochRejects_ = 0;
};

}  // namespace grads::services

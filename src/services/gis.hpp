#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "grid/grid.hpp"

namespace grads::services {

/// Well-known software package names used across the framework.
namespace software {
inline constexpr const char* kLocalBinder = "grads-binder";
inline constexpr const char* kSrsLibrary = "libsrs";
inline constexpr const char* kAutopilotSensors = "libautopilot";
inline constexpr const char* kScalapack = "libscalapack";
inline constexpr const char* kCompiler = "cc";
}  // namespace software

/// The GrADS Information Service (MDS-style directory): which resources
/// exist, what software is installed where, and per-node attributes. The
/// distributed binder queries it to locate the local binder code and the
/// application-specific libraries on every scheduled node (paper §2).
class Gis : public core::Snapshottable {
 public:
  explicit Gis(const grid::Grid& grid);

  /// Snapshot participation: the full directory (software catalogue,
  /// reported up/down set, ground-truth reachability) is logical state and
  /// round-trips exactly.
  const char* snapshotSection() const override { return "services.gis"; }
  void encodeState(core::SnapshotWriter& w) const override;
  void decodeState(core::SnapshotReader& r) override;

  /// Registers a software package as installed on a node, at a path.
  void installSoftware(grid::NodeId node, const std::string& package,
                       const std::string& path = "/usr/grads/lib");
  /// Installs a package on every node of the grid.
  void installEverywhere(const std::string& package,
                         const std::string& path = "/usr/grads/lib");

  bool hasSoftware(grid::NodeId node, const std::string& package) const;
  /// Path of a package on a node, if installed.
  std::optional<std::string> softwareLocation(grid::NodeId node,
                                              const std::string& package) const;

  /// Nodes that have all of `packages` installed (and match arch if given).
  std::vector<grid::NodeId> findNodes(
      const std::vector<std::string>& packages,
      std::optional<grid::Arch> arch = std::nullopt) const;

  /// Marks a node up/down in the *directory*; down nodes are excluded from
  /// discovery. This is the reported state — what schedulers see.
  void setNodeUp(grid::NodeId node, bool up);
  bool isNodeUp(grid::NodeId node) const;

  /// Ground truth, which the directory may lag behind: a fail-stopped node
  /// is unreachable immediately, while the GIS keeps advertising it until
  /// its registration times out. Launching onto a reachable==false node
  /// fails (the stale-GIS failure mode).
  void setNodeReachable(grid::NodeId node, bool reachable);
  bool isNodeReachable(grid::NodeId node) const;

  /// All currently-available nodes ("determine which resources are
  /// available", paper §1) — per the directory, stale entries included.
  std::vector<grid::NodeId> availableNodes() const;

  const grid::Grid& grid() const { return *grid_; }

 private:
  const grid::Grid* grid_;  // grads: transient(wiring, re-bound at construction)
  std::map<grid::NodeId, std::map<std::string, std::string>> software_;
  std::set<grid::NodeId> down_;         ///< reported (directory) state
  std::set<grid::NodeId> unreachable_;  ///< actual state
};

}  // namespace grads::services

#include "services/gis.hpp"

#include "util/error.hpp"

namespace grads::services {

Gis::Gis(const grid::Grid& grid) : grid_(&grid) {}

void Gis::installSoftware(grid::NodeId node, const std::string& package,
                          const std::string& path) {
  GRADS_REQUIRE(node < grid_->nodeCount(), "Gis: unknown node");
  software_[node][package] = path;
}

void Gis::installEverywhere(const std::string& package,
                            const std::string& path) {
  for (grid::NodeId id = 0; id < grid_->nodeCount(); ++id) {
    software_[id][package] = path;
  }
}

bool Gis::hasSoftware(grid::NodeId node, const std::string& package) const {
  const auto it = software_.find(node);
  return it != software_.end() && it->second.count(package) > 0;
}

std::optional<std::string> Gis::softwareLocation(
    grid::NodeId node, const std::string& package) const {
  const auto it = software_.find(node);
  if (it == software_.end()) return std::nullopt;
  const auto jt = it->second.find(package);
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

std::vector<grid::NodeId> Gis::findNodes(
    const std::vector<std::string>& packages,
    std::optional<grid::Arch> arch) const {
  std::vector<grid::NodeId> out;
  for (grid::NodeId id = 0; id < grid_->nodeCount(); ++id) {
    if (down_.count(id) > 0) continue;
    if (arch && grid_->node(id).spec().arch != *arch) continue;
    bool ok = true;
    for (const auto& p : packages) {
      if (!hasSoftware(id, p)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(id);
  }
  return out;
}

void Gis::setNodeUp(grid::NodeId node, bool up) {
  GRADS_REQUIRE(node < grid_->nodeCount(), "Gis: unknown node");
  if (up) {
    down_.erase(node);
  } else {
    down_.insert(node);
  }
}

bool Gis::isNodeUp(grid::NodeId node) const { return down_.count(node) == 0; }

void Gis::setNodeReachable(grid::NodeId node, bool reachable) {
  GRADS_REQUIRE(node < grid_->nodeCount(), "Gis: unknown node");
  if (reachable) {
    unreachable_.erase(node);
  } else {
    unreachable_.insert(node);
  }
}

bool Gis::isNodeReachable(grid::NodeId node) const {
  return unreachable_.count(node) == 0;
}

std::vector<grid::NodeId> Gis::availableNodes() const {
  std::vector<grid::NodeId> out;
  for (grid::NodeId id = 0; id < grid_->nodeCount(); ++id) {
    if (down_.count(id) == 0) out.push_back(id);
  }
  return out;
}

void Gis::encodeState(core::SnapshotWriter& w) const {
  w.putU64(software_.size());
  for (const auto& [node, packages] : software_) {
    w.putU64(node);
    w.putU64(packages.size());
    for (const auto& [pkg, path] : packages) {
      w.putStr(pkg);
      w.putStr(path);
    }
  }
  w.putU64(down_.size());
  for (const grid::NodeId id : down_) w.putU64(id);
  w.putU64(unreachable_.size());
  for (const grid::NodeId id : unreachable_) w.putU64(id);
}

void Gis::decodeState(core::SnapshotReader& r) {
  software_.clear();
  const std::uint64_t nNodes = r.getU64();
  for (std::uint64_t i = 0; i < nNodes; ++i) {
    const auto node = static_cast<grid::NodeId>(r.getU64());
    auto& packages = software_[node];
    const std::uint64_t nPkgs = r.getU64();
    for (std::uint64_t j = 0; j < nPkgs; ++j) {
      const std::string pkg = r.getStr();
      packages[pkg] = r.getStr();
    }
  }
  down_.clear();
  const std::uint64_t nDown = r.getU64();
  for (std::uint64_t i = 0; i < nDown; ++i) {
    down_.insert(static_cast<grid::NodeId>(r.getU64()));
  }
  unreachable_.clear();
  const std::uint64_t nUnreachable = r.getU64();
  for (std::uint64_t i = 0; i < nUnreachable; ++i) {
    unreachable_.insert(static_cast<grid::NodeId>(r.getU64()));
  }
}

}  // namespace grads::services

#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "grid/grid.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace grads::services {

/// One forecasting strategy over a measurement series. The real Network
/// Weather Service [Wolski et al.] runs a battery of simple predictors and
/// dynamically selects whichever has the lowest error so far; we reproduce
/// that design.
///
/// encodeState/decodeState persist the predictor's *fitted* state (windows,
/// sufficient statistics) so a restored NWS forecasts exactly what the
/// pre-crash one would have; construction parameters (window sizes, alpha)
/// are configuration and are re-supplied by the battery constructor.
class Forecaster {
 public:
  virtual ~Forecaster() = default;
  virtual void update(double value) = 0;
  virtual double forecast() const = 0;
  virtual const char* name() const = 0;
  virtual void encodeState(core::SnapshotWriter& w) const = 0;
  virtual void decodeState(core::SnapshotReader& r) = 0;
};

std::unique_ptr<Forecaster> makeLastValue();
std::unique_ptr<Forecaster> makeRunningMean();
std::unique_ptr<Forecaster> makeSlidingMean(std::size_t window);
std::unique_ptr<Forecaster> makeSlidingMedian(std::size_t window);
std::unique_ptr<Forecaster> makeExpSmoothing(double alpha);
/// First-order autoregressive predictor with online least-squares fit of
/// x_{t+1} ≈ a·x_t + b (captures mean-reverting load dynamics).
std::unique_ptr<Forecaster> makeAr1();

/// Battery of forecasters with per-forecaster mean-absolute-error tracking;
/// forecast() delegates to the current best.
class ForecasterBattery {
 public:
  ForecasterBattery();  ///< the standard NWS-style battery

  void addMeasurement(double value);
  double forecast() const;
  /// Name of the forecaster currently selected as best.
  std::string bestName() const;
  /// Mean absolute forecast error of the best forecaster so far.
  double bestError() const;
  std::size_t measurements() const { return count_; }
  double lastValue() const { return last_; }

  /// Persists measurement count, last value, and every forecaster's fitted
  /// state + error score. decode requires the battery shape (entry count)
  /// to match — the battery roster is configuration, not state.
  void encodeState(core::SnapshotWriter& w) const;
  void decodeState(core::SnapshotReader& r);

 private:
  struct Entry {
    std::unique_ptr<Forecaster> forecaster;
    double absErrorSum = 0.0;
    std::size_t predictions = 0;
  };
  std::size_t bestIndex() const;

  std::vector<Entry> entries_;
  std::size_t count_ = 0;
  double last_ = 0.0;
};

/// The Network Weather Service: periodically senses node CPU availability
/// and link bandwidth/latency (ground truth + measurement noise) and serves
/// forecasts to schedulers and the rescheduler (paper §3.1, §4.1.1).
class Nws : public core::Snapshottable {
 public:
  Nws(sim::Engine& engine, grid::Grid& grid, double periodSec = 10.0,
      double relativeNoise = 0.03, std::uint64_t seed = 1234);

  /// Snapshot participation: measurement history, every forecaster's fitted
  /// state, the sensing Rng's stream position, and the dark/stale clocks
  /// all round-trip. The sampling daemon itself is NOT serialized — decode
  /// always leaves the service stopped, and the restore protocol re-arms it
  /// with one explicit start() (which is idempotent, so the sampler can
  /// never be armed twice).
  const char* snapshotSection() const override { return "services.nws"; }
  void encodeState(core::SnapshotWriter& w) const override;
  void decodeState(core::SnapshotReader& r) override;

  /// Begins periodic monitoring of every node and link in the grid.
  void start();
  void stop() { running_ = false; }

  /// Sensor outage: while dark the daemon keeps ticking but records
  /// nothing, so forecasts age and eventually go stale. Consumers that use
  /// the try* accessors degrade instead of failing.
  void setDark(bool dark) { dark_ = dark; }
  bool dark() const { return dark_; }

  /// Seconds since the last successful measurement sweep (infinity before
  /// the first one).
  double lastSampleAgeSec() const;
  /// Forecasts older than this are served as raw last-known values instead
  /// of battery forecasts (the middle rung of live -> last-known -> static).
  void setStaleAfterSec(double sec) { staleAfter_ = sec; }
  bool stale() const { return lastSampleAgeSec() > staleAfter_; }

  /// Forecast CPU availability (fraction of one CPU) for a *new* process.
  double cpuAvailability(grid::NodeId node) const;
  /// Forecast share (fraction of one CPU) an *incumbent* process keeps.
  double incumbentAvailability(grid::NodeId node) const;
  /// Forecast available bandwidth (bytes/s) on a link.
  double bandwidth(grid::LinkId link) const;
  /// Forecast link utilization (allocated fraction of capacity, [0, 1]) —
  /// a real congestion signal sampled from the flow registry, not a synthetic
  /// series: the forecasters finally see genuine transfer dynamics.
  double linkUtilization(grid::LinkId link) const;
  /// Measured latency of a link (assumed stable; sensed once).
  double latency(grid::LinkId link) const;

  /// Degraded-mode accessors: like the throwing variants, but serve raw
  /// last-known values once the series is stale and return nullopt when no
  /// measurement was ever taken (callers fall back to static node specs).
  std::optional<double> tryCpuAvailability(grid::NodeId node) const;
  std::optional<double> tryIncumbentAvailability(grid::NodeId node) const;
  std::optional<double> tryBandwidth(grid::LinkId link) const;
  std::optional<double> tryLinkUtilization(grid::LinkId link) const;
  /// Degraded effectiveRate()/incumbentRate(): nullopt when dark so long
  /// that nothing was ever measured for the node.
  std::optional<double> tryEffectiveRate(grid::NodeId node) const;
  std::optional<double> tryIncumbentRate(grid::NodeId node) const;
  /// Degraded transferTime(): falls back to link specs for unmeasured links.
  double transferTimeDegraded(grid::NodeId src, grid::NodeId dst,
                              double bytes) const;

  /// Forecast end-to-end transfer time for `bytes` between two nodes using
  /// current link forecasts (bottleneck model).
  double transferTime(grid::NodeId src, grid::NodeId dst, double bytes) const;
  /// Forecast flop rate a newly placed process would obtain on a node.
  double effectiveRate(grid::NodeId node) const;
  /// Forecast flop rate an already-running process keeps on a node.
  double incumbentRate(grid::NodeId node) const;

  std::size_t samplesTaken() const { return samples_; }
  const ForecasterBattery& cpuSeries(grid::NodeId node) const;

 private:
  void sampleAll();
  std::optional<double> serve(const std::map<grid::NodeId, ForecasterBattery>&
                                  series,
                              grid::NodeId key) const;

  sim::Engine* engine_;  // grads: transient(wiring, re-bound at construction)
  grid::Grid* grid_;     // grads: transient(wiring, re-bound at construction)
  double period_;
  double noise_;
  Rng rng_;
  bool running_ = false;  // grads: transient(arm-once daemon flag - restore re-arms explicitly)
  bool dark_ = false;
  double staleAfter_;
  double lastSample_ = -1.0;
  std::size_t samples_ = 0;
  std::map<grid::NodeId, ForecasterBattery> cpu_;
  std::map<grid::NodeId, ForecasterBattery> incumbent_;
  std::map<grid::LinkId, ForecasterBattery> bw_;
  std::map<grid::LinkId, ForecasterBattery> util_;
};

}  // namespace grads::services

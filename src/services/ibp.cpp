#include "services/ibp.hpp"

#include <algorithm>

#include "sim/sync.hpp"
#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace grads::services {

Ibp::Ibp(grid::Grid& grid) : grid_(&grid) {}

sim::PsResource& Ibp::diskFor(grid::NodeId node) {
  auto it = disks_.find(node);
  if (it == disks_.end()) {
    const auto& spec = grid_->node(node).spec();
    it = disks_
             .emplace(node, std::make_unique<sim::PsResource>(
                                grid_->engine(), spec.diskBandwidth,
                                sim::kInfTime, spec.name + ".disk"))
             .first;
  }
  return *it->second;
}

void Ibp::setDepotUp(grid::NodeId node, bool up) {
  GRADS_REQUIRE(node < grid_->nodeCount(), "Ibp::setDepotUp: unknown node");
  if (up) {
    downDepots_.erase(node);
  } else {
    downDepots_.insert(node);
  }
}

bool Ibp::isDepotUp(grid::NodeId node) const {
  return downDepots_.count(node) == 0;
}

bool Ibp::readable(const std::string& key) const {
  const auto it = objects_.find(key);
  return it != objects_.end() && isDepotUp(it->second.node);
}

void Ibp::requireDepotUp(grid::NodeId node, const char* op) const {
  if (!isDepotUp(node)) {
    throw DepotDownError(std::string("Ibp::") + op + ": depot on " +
                         grid_->node(node).name() + " is down");
  }
}

void Ibp::setFence(const std::string& domain, int epoch) {
  GRADS_REQUIRE(!domain.empty(), "Ibp::setFence: empty domain");
  int& fence = fences_[domain];
  if (epoch > fence) fence = epoch;
}

int Ibp::fenceEpoch(const std::string& domain) const {
  const auto it = fences_.find(domain);
  return it == fences_.end() ? 0 : it->second;
}

sim::Task Ibp::put(const std::string& key, double bytes, grid::NodeId atNode,
                   grid::NodeId fromNode, PutOptions opts) {
  GRADS_REQUIRE(bytes >= 0.0, "Ibp::put: negative size");
  GRADS_REQUIRE(atNode < grid_->nodeCount(), "Ibp::put: unknown node");
  // Fencing is checked before any cost is paid: the depot rejects the
  // request up front, like a version check on the write path.
  if (!opts.fenceDomain.empty() && opts.epoch < fenceEpoch(opts.fenceDomain)) {
    ++staleEpochRejects_;
    throw StaleEpochError("Ibp::put: epoch " + std::to_string(opts.epoch) +
                          " behind fence " +
                          std::to_string(fenceEpoch(opts.fenceDomain)) +
                          " for " + opts.fenceDomain + " (zombie writer)");
  }
  requireDepotUp(atNode, "put");
  if (fromNode != grid::kNoId && fromNode != atNode) {
    GRADS_REQUIRE(fromNode < grid_->nodeCount(), "Ibp::put: unknown source");
    co_await grid_->transfer(fromNode, atNode, bytes, opts.transferClass);
  }
  co_await diskFor(atNode).consume(bytes);
  const std::uint64_t digest =
      opts.digest != 0
          ? opts.digest
          : util::hashCombine(util::fnv1a64(key), bytes);
  objects_[key] = Object{bytes, atNode, digest, /*torn=*/false};
}

sim::Task Ibp::getSlice(const std::string& key, double bytes,
                        grid::NodeId toNode, grid::TransferClass cls) {
  const auto it = objects_.find(key);
  GRADS_REQUIRE(it != objects_.end(), "Ibp::get: unknown object " + key);
  GRADS_REQUIRE(it->second.torn || bytes <= it->second.bytes + 1e-6,
                "Ibp::getSlice: slice larger than object");
  // Torn object: deliver what survived (silent short read), never more.
  const double toRead = std::min(bytes, it->second.bytes);
  const grid::NodeId from = it->second.node;
  requireDepotUp(from, "get");
  // Disk read and network transfer overlap poorly at this scale; model them
  // as sequential stages (disk is rarely the bottleneck for remote reads).
  co_await diskFor(from).consume(toRead);
  if (from != toNode) co_await grid_->transfer(from, toNode, toRead, cls);
}

sim::Task Ibp::get(const std::string& key, grid::NodeId toNode,
                   grid::TransferClass cls) {
  const auto it = objects_.find(key);
  GRADS_REQUIRE(it != objects_.end(), "Ibp::get: unknown object " + key);
  co_await getSlice(key, it->second.bytes, toNode, cls);
}

bool Ibp::exists(const std::string& key) const {
  return objects_.count(key) > 0;
}

const Ibp::Object& Ibp::require(const std::string& key, const char* op) const {
  const auto it = objects_.find(key);
  GRADS_REQUIRE(it != objects_.end(),
                std::string("Ibp::") + op + ": unknown object " + key);
  return it->second;
}

double Ibp::sizeOf(const std::string& key) const {
  return require(key, "sizeOf").bytes;
}

grid::NodeId Ibp::locationOf(const std::string& key) const {
  return require(key, "locationOf").node;
}

std::uint64_t Ibp::observedDigest(const std::string& key) const {
  return require(key, "observedDigest").digest;
}

double Ibp::observedBytes(const std::string& key) const {
  return require(key, "observedBytes").bytes;
}

std::vector<std::string> Ibp::keysOnDepot(grid::NodeId node) const {
  std::vector<std::string> keys;
  for (const auto& [key, obj] : objects_) {
    if (obj.node == node) keys.push_back(key);
  }
  return keys;
}

void Ibp::injectBitFlip(const std::string& key, std::uint64_t mask) {
  GRADS_REQUIRE(mask != 0, "Ibp::injectBitFlip: zero mask is a no-op");
  auto it = objects_.find(key);
  GRADS_REQUIRE(it != objects_.end(),
                "Ibp::injectBitFlip: unknown object " + key);
  it->second.digest ^= mask;
  GRADS_WARN("ibp") << "bit-rot injected into " << key;
}

void Ibp::injectTornWrite(const std::string& key, double keepFrac) {
  GRADS_REQUIRE(keepFrac >= 0.0 && keepFrac < 1.0,
                "Ibp::injectTornWrite: keepFrac must be in [0, 1)");
  auto it = objects_.find(key);
  GRADS_REQUIRE(it != objects_.end(),
                "Ibp::injectTornWrite: unknown object " + key);
  it->second.bytes *= keepFrac;
  it->second.digest = util::hashCombine(it->second.digest, keepFrac);
  it->second.torn = true;
  GRADS_WARN("ibp") << "torn write injected into " << key << " (kept "
                    << keepFrac << ")";
}

void Ibp::injectStaleDelivery(const std::string& key) {
  auto it = objects_.find(key);
  GRADS_REQUIRE(it != objects_.end(),
                "Ibp::injectStaleDelivery: unknown object " + key);
  // Outdated content under the right key: size intact, digest of some
  // earlier version (derived deterministically so campaigns replay).
  it->second.digest =
      util::hashCombine(it->second.digest, std::uint64_t{0x57a1e});
  GRADS_WARN("ibp") << "stale delivery injected for " << key;
}

void Ibp::remove(const std::string& key) {
  const auto erased = objects_.erase(key);
  GRADS_REQUIRE(erased == 1, "Ibp::remove: unknown object " + key);
}

void Ibp::encodeState(core::SnapshotWriter& w) const {
  w.putU64(objects_.size());
  for (const auto& [key, obj] : objects_) {
    w.putStr(key);
    w.putF64(obj.bytes);
    w.putU64(obj.node);
    w.putU64(obj.digest);
    w.putBool(obj.torn);
  }
  w.putU64(downDepots_.size());
  for (const grid::NodeId id : downDepots_) w.putU64(id);
  w.putU64(fences_.size());
  for (const auto& [domain, epoch] : fences_) {
    w.putStr(domain);
    w.putI64(epoch);
  }
  w.putU64(staleEpochRejects_);
}

void Ibp::decodeState(core::SnapshotReader& r) {
  objects_.clear();
  const std::uint64_t nObjects = r.getU64();
  for (std::uint64_t i = 0; i < nObjects; ++i) {
    const std::string key = r.getStr();
    Object obj;
    obj.bytes = r.getF64();
    obj.node = static_cast<grid::NodeId>(r.getU64());
    obj.digest = r.getU64();
    obj.torn = r.getBool();
    objects_[key] = obj;
  }
  downDepots_.clear();
  const std::uint64_t nDown = r.getU64();
  for (std::uint64_t i = 0; i < nDown; ++i) {
    downDepots_.insert(static_cast<grid::NodeId>(r.getU64()));
  }
  fences_.clear();
  const std::uint64_t nFences = r.getU64();
  for (std::uint64_t i = 0; i < nFences; ++i) {
    const std::string domain = r.getStr();
    fences_[domain] = static_cast<int>(r.getI64());
  }
  staleEpochRejects_ = r.getU64();
}

}  // namespace grads::services

#include "services/ibp.hpp"

#include "sim/sync.hpp"
#include "util/error.hpp"

namespace grads::services {

Ibp::Ibp(grid::Grid& grid) : grid_(&grid) {}

sim::PsResource& Ibp::diskFor(grid::NodeId node) {
  auto it = disks_.find(node);
  if (it == disks_.end()) {
    const auto& spec = grid_->node(node).spec();
    it = disks_
             .emplace(node, std::make_unique<sim::PsResource>(
                                grid_->engine(), spec.diskBandwidth,
                                sim::kInfTime, spec.name + ".disk"))
             .first;
  }
  return *it->second;
}

void Ibp::setDepotUp(grid::NodeId node, bool up) {
  GRADS_REQUIRE(node < grid_->nodeCount(), "Ibp::setDepotUp: unknown node");
  if (up) {
    downDepots_.erase(node);
  } else {
    downDepots_.insert(node);
  }
}

bool Ibp::isDepotUp(grid::NodeId node) const {
  return downDepots_.count(node) == 0;
}

bool Ibp::readable(const std::string& key) const {
  const auto it = objects_.find(key);
  return it != objects_.end() && isDepotUp(it->second.node);
}

void Ibp::requireDepotUp(grid::NodeId node, const char* op) const {
  if (!isDepotUp(node)) {
    throw DepotDownError(std::string("Ibp::") + op + ": depot on " +
                         grid_->node(node).name() + " is down");
  }
}

sim::Task Ibp::put(const std::string& key, double bytes, grid::NodeId atNode,
                   grid::NodeId fromNode) {
  GRADS_REQUIRE(bytes >= 0.0, "Ibp::put: negative size");
  GRADS_REQUIRE(atNode < grid_->nodeCount(), "Ibp::put: unknown node");
  requireDepotUp(atNode, "put");
  if (fromNode != grid::kNoId && fromNode != atNode) {
    GRADS_REQUIRE(fromNode < grid_->nodeCount(), "Ibp::put: unknown source");
    co_await grid_->transfer(fromNode, atNode, bytes);
  }
  co_await diskFor(atNode).consume(bytes);
  objects_[key] = Object{bytes, atNode};
}

sim::Task Ibp::getSlice(const std::string& key, double bytes,
                        grid::NodeId toNode) {
  const auto it = objects_.find(key);
  GRADS_REQUIRE(it != objects_.end(), "Ibp::get: unknown object " + key);
  GRADS_REQUIRE(bytes <= it->second.bytes + 1e-6,
                "Ibp::getSlice: slice larger than object");
  const grid::NodeId from = it->second.node;
  requireDepotUp(from, "get");
  // Disk read and network transfer overlap poorly at this scale; model them
  // as sequential stages (disk is rarely the bottleneck for remote reads).
  co_await diskFor(from).consume(bytes);
  if (from != toNode) co_await grid_->transfer(from, toNode, bytes);
}

sim::Task Ibp::get(const std::string& key, grid::NodeId toNode) {
  const auto it = objects_.find(key);
  GRADS_REQUIRE(it != objects_.end(), "Ibp::get: unknown object " + key);
  co_await getSlice(key, it->second.bytes, toNode);
}

bool Ibp::exists(const std::string& key) const {
  return objects_.count(key) > 0;
}

double Ibp::sizeOf(const std::string& key) const {
  const auto it = objects_.find(key);
  GRADS_REQUIRE(it != objects_.end(), "Ibp::sizeOf: unknown object " + key);
  return it->second.bytes;
}

grid::NodeId Ibp::locationOf(const std::string& key) const {
  const auto it = objects_.find(key);
  GRADS_REQUIRE(it != objects_.end(), "Ibp::locationOf: unknown object " + key);
  return it->second.node;
}

void Ibp::remove(const std::string& key) {
  const auto erased = objects_.erase(key);
  GRADS_REQUIRE(erased == 1, "Ibp::remove: unknown object " + key);
}

}  // namespace grads::services

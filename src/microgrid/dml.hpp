#pragma once

#include <string>
#include <vector>

#include "grid/grid.hpp"
#include "grid/load.hpp"

namespace grads::microgrid {

/// A virtual-grid description in a small DML-inspired configuration
/// language ("These configurations are described for MicroGrid in standard
/// Domain Modeling Language (DML) and a simple resource description for the
/// processor nodes", paper §4.2.2).
///
/// Line-oriented grammar ('#' starts a comment):
///
///   cluster <name> <site> <lan>        lan ∈ {ethernet100, myrinet, gigabit}
///     node <mhz> <cpus> <flopsPerCycle> <efficiency> x<count>
///   end
///   wan <clusterA> <clusterB> <latency-seconds> <bandwidth-bytes/s>
///   load <node-name> step <at-seconds> <weight>
///   load <node-name> pulse <from> <until> <weight>
struct DmlNodeGroup {
  double mhz = 0.0;
  int cpus = 1;
  double flopsPerCycle = 1.0;
  double efficiency = 0.4;
  int count = 1;
};

struct DmlCluster {
  std::string name;
  std::string site;
  std::string lanKind;
  std::vector<DmlNodeGroup> nodes;
};

struct DmlWan {
  std::string a;
  std::string b;
  double latencySec = 0.0;
  double bandwidthBytesPerSec = 0.0;
};

struct DmlLoad {
  std::string node;
  grid::LoadTrace trace;
};

struct VirtualGridSpec {
  std::vector<DmlCluster> clusters;
  std::vector<DmlWan> wans;
  std::vector<DmlLoad> loads;

  std::size_t totalNodes() const;
};

/// Parses a DML document; throws InvalidArgument with line information on
/// malformed input.
VirtualGridSpec parseDml(const std::string& text);

/// MicroGrid virtualization overheads: emulated resources run slightly
/// slower than the hardware they model.
struct EmulationOptions {
  double cpuOverhead = 0.03;      ///< fraction of CPU lost to virtualization
  double latencyOverhead = 0.05;  ///< added fractional network latency
  double bandwidthLoss = 0.03;    ///< fraction of bandwidth lost
};

/// Builds the virtual grid into `grid` and schedules any declared
/// background-load traces on its engine. With `emulation` non-null, applies
/// MicroGrid virtualization overheads to every resource (the emulated grid);
/// with null, resources match the hardware description exactly (the
/// "MacroGrid" reference for fidelity comparisons).
void instantiate(grid::Grid& grid, const VirtualGridSpec& spec,
                 const EmulationOptions* emulation = nullptr);

/// The §4.2.2 virtual grid (UTK 3×550 MHz, UIUC 3×450 MHz, UCSD Athlon) as a
/// DML document — the MicroGrid configuration used for Figure 4.
std::string swapExperimentDml();

}  // namespace grads::microgrid

#include "microgrid/dml.hpp"

#include <sstream>

#include "grid/testbeds.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace grads::microgrid {

std::size_t VirtualGridSpec::totalNodes() const {
  std::size_t n = 0;
  for (const auto& c : clusters) {
    for (const auto& g : c.nodes) n += static_cast<std::size_t>(g.count);
  }
  return n;
}

namespace {

[[noreturn]] void parseError(int line, const std::string& msg) {
  throw InvalidArgument("DML parse error at line " + std::to_string(line) +
                        ": " + msg);
}

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::istringstream is{std::string(line)};
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;
    tokens.push_back(tok);
  }
  return tokens;
}

double parseNumber(const std::string& tok, int line) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(tok, &pos);
    if (pos != tok.size()) parseError(line, "trailing junk in number " + tok);
    return v;
  } catch (const std::exception&) {
    parseError(line, "expected a number, got '" + tok + "'");
  }
}

}  // namespace

VirtualGridSpec parseDml(const std::string& text) {
  VirtualGridSpec spec;
  DmlCluster* open = nullptr;
  int lineNo = 0;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& kw = tokens[0];

    if (kw == "cluster") {
      if (open != nullptr) parseError(lineNo, "nested cluster");
      if (tokens.size() != 4) {
        parseError(lineNo, "cluster needs: cluster <name> <site> <lan>");
      }
      if (tokens[3] != "ethernet100" && tokens[3] != "myrinet" &&
          tokens[3] != "gigabit") {
        parseError(lineNo, "unknown lan kind '" + tokens[3] + "'");
      }
      spec.clusters.push_back(DmlCluster{tokens[1], tokens[2], tokens[3], {}});
      open = &spec.clusters.back();
    } else if (kw == "node") {
      if (open == nullptr) parseError(lineNo, "node outside cluster");
      if (tokens.size() != 6) {
        parseError(lineNo,
                   "node needs: node <mhz> <cpus> <flops/cycle> <eff> x<n>");
      }
      DmlNodeGroup g;
      g.mhz = parseNumber(tokens[1], lineNo);
      g.cpus = static_cast<int>(parseNumber(tokens[2], lineNo));
      g.flopsPerCycle = parseNumber(tokens[3], lineNo);
      g.efficiency = parseNumber(tokens[4], lineNo);
      if (tokens[5].size() < 2 || tokens[5][0] != 'x') {
        parseError(lineNo, "count must look like x<N>");
      }
      g.count = static_cast<int>(parseNumber(tokens[5].substr(1), lineNo));
      if (g.count < 1) parseError(lineNo, "count must be >= 1");
      open->nodes.push_back(g);
    } else if (kw == "end") {
      if (open == nullptr) parseError(lineNo, "end without cluster");
      if (open->nodes.empty()) parseError(lineNo, "cluster has no nodes");
      open = nullptr;
    } else if (kw == "load") {
      if (open != nullptr) parseError(lineNo, "load inside cluster");
      if (tokens.size() < 5) {
        parseError(lineNo, "load needs: load <node> step|pulse <args...>");
      }
      DmlLoad l;
      l.node = tokens[1];
      if (tokens[2] == "step") {
        if (tokens.size() != 5) {
          parseError(lineNo, "load step needs: <at-seconds> <weight>");
        }
        l.trace = grid::LoadTrace::stepAt(parseNumber(tokens[3], lineNo),
                                          parseNumber(tokens[4], lineNo));
      } else if (tokens[2] == "pulse") {
        if (tokens.size() != 6) {
          parseError(lineNo, "load pulse needs: <from> <until> <weight>");
        }
        l.trace = grid::LoadTrace::pulse(parseNumber(tokens[3], lineNo),
                                         parseNumber(tokens[4], lineNo),
                                         parseNumber(tokens[5], lineNo));
      } else {
        parseError(lineNo, "unknown load kind '" + tokens[2] + "'");
      }
      spec.loads.push_back(std::move(l));
    } else if (kw == "wan") {
      if (open != nullptr) parseError(lineNo, "wan inside cluster");
      if (tokens.size() != 5) {
        parseError(lineNo, "wan needs: wan <a> <b> <latency-s> <bw-B/s>");
      }
      DmlWan w;
      w.a = tokens[1];
      w.b = tokens[2];
      w.latencySec = parseNumber(tokens[3], lineNo);
      w.bandwidthBytesPerSec = parseNumber(tokens[4], lineNo);
      spec.wans.push_back(w);
    } else {
      parseError(lineNo, "unknown keyword '" + kw + "'");
    }
  }
  if (open != nullptr) {
    parseError(lineNo, "unterminated cluster '" + open->name + "'");
  }
  // Validate WAN endpoints.
  for (const auto& w : spec.wans) {
    auto known = [&](const std::string& n) {
      for (const auto& c : spec.clusters) {
        if (c.name == n) return true;
      }
      return false;
    };
    if (!known(w.a) || !known(w.b)) {
      throw InvalidArgument("DML: wan references unknown cluster " + w.a +
                            " or " + w.b);
    }
  }
  return spec;
}

void instantiate(grid::Grid& grid, const VirtualGridSpec& spec,
                 const EmulationOptions* emulation) {
  GRADS_REQUIRE(!spec.clusters.empty(), "instantiate: empty spec");
  for (const auto& c : spec.clusters) {
    int lanNodes = 0;
    for (const auto& g : c.nodes) lanNodes += g.count;
    grid::LinkSpec lan;
    if (c.lanKind == "ethernet100") {
      lan = grid::fastEthernetLan(c.name + ".lan", lanNodes);
    } else if (c.lanKind == "myrinet") {
      lan = grid::myrinetLan(c.name + ".lan", lanNodes);
    } else {
      lan = grid::gigabitLan(c.name + ".lan", lanNodes);
    }
    if (emulation != nullptr) {
      lan.latencySec *= 1.0 + emulation->latencyOverhead;
      lan.bandwidthBytesPerSec *= 1.0 - emulation->bandwidthLoss;
      lan.perFlowCapBytesPerSec *= 1.0 - emulation->bandwidthLoss;
    }
    const auto cid = grid.addCluster(grid::ClusterSpec{c.name, c.site, lan});
    int index = 0;
    for (const auto& g : c.nodes) {
      for (int i = 0; i < g.count; ++i) {
        grid::NodeSpec ns;
        ns.name = c.name + std::to_string(index++);
        ns.mhz = g.mhz;
        ns.cpus = g.cpus;
        ns.flopsPerCycle = g.flopsPerCycle;
        ns.efficiency = g.efficiency;
        if (emulation != nullptr) {
          ns.efficiency *= 1.0 - emulation->cpuOverhead;
        }
        grid.addNode(cid, ns);
      }
    }
  }
  for (const auto& l : spec.loads) {
    const auto node = grid.findNode(l.node);
    GRADS_REQUIRE(node.has_value(),
                  "instantiate: load references unknown node " + l.node);
    grid::applyLoadTrace(grid.engine(), grid.node(*node), l.trace);
  }
  for (const auto& w : spec.wans) {
    const auto a = grid.findCluster(w.a);
    const auto b = grid.findCluster(w.b);
    GRADS_ASSERT(a && b, "instantiate: wan endpoints vanished");
    grid::LinkSpec wan = grid::internetWan(w.a + "-" + w.b + ".wan",
                                           w.latencySec,
                                           w.bandwidthBytesPerSec);
    if (emulation != nullptr) {
      wan.latencySec *= 1.0 + emulation->latencyOverhead;
      wan.bandwidthBytesPerSec *= 1.0 - emulation->bandwidthLoss;
      wan.perFlowCapBytesPerSec = wan.bandwidthBytesPerSec;
    }
    grid.connectClusters(*a, *b, wan);
  }
}

std::string swapExperimentDml() {
  return R"(# MicroGrid virtual grid for the process-swapping demonstration
# (paper section 4.2.2)
cluster utk UTK gigabit
  node 550 1 1.0 0.45 x3
end
cluster uiuc UIUC gigabit
  node 450 1 1.0 0.45 x3
end
cluster ucsd UCSD gigabit
  node 1700 1 2.0 0.40 x1
end
wan utk uiuc 0.011 2097152
wan ucsd utk 0.030 2097152
wan ucsd uiuc 0.030 2097152
)";
}

}  // namespace grads::microgrid

#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace grads::util {

/// Simple column-oriented table used by the benchmark harnesses to print the
/// rows/series the paper's figures and tables report, plus a CSV form for
/// post-processing.
class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit Table(std::vector<std::string> columns);

  /// Appends a row; must have exactly one cell per column.
  void addRow(std::vector<Cell> row);

  std::size_t rows() const { return rows_.size(); }
  std::size_t cols() const { return columns_.size(); }

  /// Pretty-prints an aligned ASCII table.
  void print(std::ostream& os, const std::string& title = "") const;
  /// Writes RFC-4180-ish CSV (no embedded quotes supported in our data).
  void writeCsv(std::ostream& os) const;
  /// Convenience: writes CSV to a file path, creating/truncating it.
  void saveCsv(const std::string& path) const;

 private:
  static std::string render(const Cell& c);

  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace grads::util

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace grads::stats {

/// Streaming mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const;
  double max() const;
  bool empty() const { return n_ == 0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

double mean(std::span<const double> xs);
double median(std::span<const double> xs);
/// Quantile with linear interpolation, q in [0,1].
double quantile(std::span<const double> xs, double q);

/// Result of an ordinary-least-squares polynomial fit.
struct PolyFit {
  std::vector<double> coeffs;  ///< coeffs[k] multiplies x^k
  double rss = 0.0;            ///< residual sum of squares
  double r2 = 0.0;             ///< coefficient of determination

  double eval(double x) const;
};

/// Fits y ≈ sum_k c_k x^k with degree `degree` by least squares.
/// Used by the performance modeler to fit flop counts against problem size
/// (paper §3.2: "least squares curve-fitting on the collected data").
PolyFit polyFit(std::span<const double> xs, std::span<const double> ys,
                int degree);

/// Fits y ≈ a * x^b (power law) by log-log least squares; returns {a, b}.
/// Used for memory-reuse-distance scaling models.
struct PowerFit {
  double a = 0.0;
  double b = 0.0;
  double eval(double x) const;
};
PowerFit powerFit(std::span<const double> xs, std::span<const double> ys);

}  // namespace grads::stats

#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace grads::stats {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
  GRADS_REQUIRE(n_ > 0, "mean of empty accumulator");
  return mean_;
}

double Accumulator::variance() const {
  GRADS_REQUIRE(n_ > 1, "variance needs at least two samples");
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  GRADS_REQUIRE(n_ > 0, "min of empty accumulator");
  return min_;
}

double Accumulator::max() const {
  GRADS_REQUIRE(n_ > 0, "max of empty accumulator");
  return max_;
}

double mean(std::span<const double> xs) {
  GRADS_REQUIRE(!xs.empty(), "mean of empty span");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double quantile(std::span<const double> xs, double q) {
  GRADS_REQUIRE(!xs.empty(), "quantile of empty span");
  GRADS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile q out of [0,1]");
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double PolyFit::eval(double x) const {
  double y = 0.0;
  for (std::size_t k = coeffs.size(); k-- > 0;) y = y * x + coeffs[k];
  return y;
}

namespace {
/// Solves the (small, dense, symmetric positive-definite) normal equations
/// with partial-pivoting Gaussian elimination. Kept local: util must not
/// depend on linalg.
std::vector<double> solveDense(std::vector<std::vector<double>> a,
                               std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(a[r][col]) > std::fabs(a[pivot][col])) pivot = r;
    }
    GRADS_REQUIRE(std::fabs(a[pivot][col]) > 1e-300,
                  "polyFit: singular normal equations (too few points?)");
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r][col] / a[col][col];
      for (std::size_t c = col; c < n; ++c) a[r][c] -= f * a[col][c];
      b[r] -= f * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a[i][c] * x[c];
    x[i] = s / a[i][i];
  }
  return x;
}
}  // namespace

PolyFit polyFit(std::span<const double> xs, std::span<const double> ys,
                int degree) {
  GRADS_REQUIRE(degree >= 0, "polyFit: negative degree");
  GRADS_REQUIRE(xs.size() == ys.size(), "polyFit: size mismatch");
  const auto m = static_cast<std::size_t>(degree) + 1;
  GRADS_REQUIRE(xs.size() >= m, "polyFit: need at least degree+1 points");

  // Build normal equations (X^T X) c = X^T y.
  std::vector<std::vector<double>> ata(m, std::vector<double>(m, 0.0));
  std::vector<double> aty(m, 0.0);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::vector<double> row(m);
    double p = 1.0;
    for (std::size_t k = 0; k < m; ++k) {
      row[k] = p;
      p *= xs[i];
    }
    for (std::size_t r = 0; r < m; ++r) {
      aty[r] += row[r] * ys[i];
      for (std::size_t c = 0; c < m; ++c) ata[r][c] += row[r] * row[c];
    }
  }

  PolyFit fit;
  fit.coeffs = solveDense(std::move(ata), std::move(aty));

  const double ybar = mean(ys);
  double tss = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double r = ys[i] - fit.eval(xs[i]);
    fit.rss += r * r;
    const double d = ys[i] - ybar;
    tss += d * d;
  }
  fit.r2 = tss > 0.0 ? 1.0 - fit.rss / tss : 1.0;
  return fit;
}

double PowerFit::eval(double x) const { return a * std::pow(x, b); }

PowerFit powerFit(std::span<const double> xs, std::span<const double> ys) {
  GRADS_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
                "powerFit: need >= 2 matched points");
  std::vector<double> lx, ly;
  lx.reserve(xs.size());
  ly.reserve(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    GRADS_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0,
                  "powerFit: values must be positive");
    lx.push_back(std::log(xs[i]));
    ly.push_back(std::log(ys[i]));
  }
  const PolyFit line = polyFit(lx, ly, 1);
  return PowerFit{std::exp(line.coeffs[0]), line.coeffs[1]};
}

}  // namespace grads::stats

#pragma once

#include <optional>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace grads::util {

/// Bounded-retry policy with exponential backoff and jitter.
///
/// Every Grid-facing operation in a degraded-mode run (launching on a node
/// the GIS may be wrong about, pulling a checkpoint slice from a depot that
/// may be dark, moving data over a link that may be partitioned) retries
/// under one of these policies instead of failing on first error. Delays are
/// simulated time (callers sleep on the sim::Engine), and jitter draws from
/// an explicitly seeded Rng, so campaigns stay exactly repeatable.
struct RetryPolicy {
  int maxAttempts = 4;          ///< total tries, including the first
  double baseDelaySec = 2.0;    ///< delay before the second attempt
  double backoffFactor = 2.0;   ///< multiplier per further attempt
  double maxDelaySec = 120.0;   ///< backoff ceiling
  double jitterFrac = 0.1;      ///< uniform ±fraction of the delay

  /// Backoff delay after failed attempt `attempt` (0-based). `rng` may be
  /// null for jitter-free delays.
  double delaySec(int attempt, Rng* rng) const;

  /// A policy that never retries (the mitigation-off ablation).
  static RetryPolicy none() {
    RetryPolicy p;
    p.maxAttempts = 1;
    return p;
  }
};

/// Per-operation retry state:
///
///   util::Retry retry(policy, &rng);
///   while (true) {
///     try { co_await op(); break; }
///     catch (const SomeTransientError&) {
///       const auto delay = retry.nextDelaySec();
///       if (!delay) throw;                    // attempts exhausted
///       co_await sim::sleepFor(eng, *delay);
///     }
///   }
class Retry {
 public:
  explicit Retry(const RetryPolicy& policy, Rng* rng = nullptr)
      : policy_(policy), rng_(rng) {
    GRADS_REQUIRE(policy.maxAttempts >= 1, "RetryPolicy: need >= 1 attempt");
  }

  /// Called after a failed attempt: the backoff delay before the next try,
  /// or nullopt when the attempt budget is exhausted.
  std::optional<double> nextDelaySec() {
    if (attempt_ + 1 >= policy_.maxAttempts) return std::nullopt;
    return policy_.delaySec(attempt_++, rng_);
  }

  /// Failed attempts recorded so far (== nextDelaySec() calls that granted
  /// a retry).
  int attemptsUsed() const { return attempt_; }

 private:
  RetryPolicy policy_;
  Rng* rng_;
  int attempt_ = 0;
};

inline double RetryPolicy::delaySec(int attempt, Rng* rng) const {
  double d = baseDelaySec;
  for (int i = 0; i < attempt; ++i) d *= backoffFactor;
  if (d > maxDelaySec) d = maxDelaySec;
  if (rng != nullptr && jitterFrac > 0.0) {
    d *= 1.0 + rng->uniform(-jitterFrac, jitterFrac);
  }
  return d < 0.0 ? 0.0 : d;
}

}  // namespace grads::util

#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace grads::util {

/// Splits on a single delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

bool startsWith(std::string_view s, std::string_view prefix);

/// Human-readable byte count, e.g. "512.0 MB".
std::string formatBytes(double bytes);

/// Human-readable duration, e.g. "2m 05s" or "431.2 s".
std::string formatSeconds(double seconds);

}  // namespace grads::util

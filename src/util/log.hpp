#pragma once

#include <functional>
#include <iosfwd>
#include <sstream>
#include <string>

namespace grads::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration. The simulator installs a clock callback so
/// messages are stamped with virtual (simulated) time rather than wall time.
struct Config {
  Level level = Level::kWarn;
  std::ostream* sink = nullptr;                  ///< defaults to std::cerr
  std::function<double()> clock;                 ///< virtual-time source (s)
};

Config& config();

bool enabled(Level level);
void write(Level level, const std::string& component, const std::string& msg);

const char* levelName(Level level);

/// Parses "trace" | "debug" | "info" | "warn" | "error" | "off".
Level parseLevel(const std::string& name);

/// Uniform attribution prefix for trace lines: "qr@t=123.4s: ". Campaign
/// logs interleave many apps across thousands of virtual seconds; every
/// rescheduling-path message leads with this so a grep for one app (or one
/// time window) reconstructs its action history.
std::string appAt(const std::string& app, double tSec);

namespace detail {
class LineBuilder {
 public:
  LineBuilder(Level level, std::string component)
      : level_(level), component_(std::move(component)) {}
  ~LineBuilder() { write(level_, component_, os_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::string component_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace grads::log

#define GRADS_LOG(level, component)                        \
  if (!::grads::log::enabled(level)) {                     \
  } else                                                   \
    ::grads::log::detail::LineBuilder(level, (component))

#define GRADS_TRACE(component) GRADS_LOG(::grads::log::Level::kTrace, component)
#define GRADS_DEBUG(component) GRADS_LOG(::grads::log::Level::kDebug, component)
#define GRADS_INFO(component) GRADS_LOG(::grads::log::Level::kInfo, component)
#define GRADS_WARN(component) GRADS_LOG(::grads::log::Level::kWarn, component)
#define GRADS_ERROR(component) GRADS_LOG(::grads::log::Level::kError, component)

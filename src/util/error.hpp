#pragma once

#include <stdexcept>
#include <string>

namespace grads {

/// Base class for all errors raised by the GrADS library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a precondition on a public API is violated.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Raised when an internal invariant does not hold (a library bug).
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throwCheckFailure(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& msg);
}  // namespace detail

}  // namespace grads

/// Precondition check on public API arguments; throws grads::InvalidArgument.
#define GRADS_REQUIRE(expr, msg)                                            \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::grads::detail::throwCheckFailure("precondition", #expr, __FILE__,   \
                                         __LINE__, (msg));                  \
    }                                                                       \
  } while (false)

/// Internal invariant check; throws grads::InternalError.
#define GRADS_ASSERT(expr, msg)                                             \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::grads::detail::throwCheckFailure("invariant", #expr, __FILE__,      \
                                         __LINE__, (msg));                  \
    }                                                                       \
  } while (false)

#include "util/log.hpp"

#include <cstdio>
#include <iostream>

#include "util/error.hpp"

namespace grads::log {

Config& config() {
  // grads-lint: allow(R7 logging singleton - diagnostic sink/level only, never feeds simulation decisions)
  static Config cfg;
  return cfg;
}

bool enabled(Level level) { return level >= config().level; }

const char* levelName(Level level) {
  switch (level) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF";
  }
  return "?";
}

Level parseLevel(const std::string& name) {
  if (name == "trace") return Level::kTrace;
  if (name == "debug") return Level::kDebug;
  if (name == "info") return Level::kInfo;
  if (name == "warn") return Level::kWarn;
  if (name == "error") return Level::kError;
  if (name == "off") return Level::kOff;
  throw InvalidArgument("unknown log level: " + name);
}

std::string appAt(const std::string& app, double tSec) {
  char t[32];
  std::snprintf(t, sizeof t, "%.1f", tSec);
  return app + "@t=" + t + "s: ";
}

void write(Level level, const std::string& component, const std::string& msg) {
  if (!enabled(level)) return;
  auto& cfg = config();
  std::ostream& out = cfg.sink != nullptr ? *cfg.sink : std::cerr;
  char stamp[32];
  if (cfg.clock) {
    std::snprintf(stamp, sizeof stamp, "%12.4f", cfg.clock());
  } else {
    std::snprintf(stamp, sizeof stamp, "%12s", "-");
  }
  out << '[' << stamp << "] " << levelName(level) << ' ' << component << ": "
      << msg << '\n';
}

}  // namespace grads::log

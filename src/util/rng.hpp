#pragma once

#include <cstdint>
#include <vector>

namespace grads {

/// Complete position of an Rng stream: the xoshiro256** words plus the
/// Box–Muller spare. Capturing and re-applying it resumes the stream
/// mid-flight — the snapshot/restore layer persists exactly this.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool haveSpare = false;
  double spare = 0.0;
};

/// Deterministic pseudo-random source (xoshiro256**). All stochastic behaviour
/// in the library flows through an explicitly seeded Rng so experiments are
/// exactly repeatable — a requirement the paper motivates for the MicroGrid.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Stream position accessors (see RngState). setState fully overwrites the
  /// generator; the next draw after setState(state()) repeats exactly.
  RngState state() const;
  void setState(const RngState& st);

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box–Muller.
  double normal();
  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);
  /// Exponential with given rate (1/mean).
  double exponential(double rate);
  /// Pareto-distributed heavy-tail sample with scale xm and shape alpha.
  double pareto(double xm, double alpha);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent stream (for per-component randomness).
  Rng split();

 private:
  std::uint64_t s_[4];
  bool haveSpare_ = false;
  double spare_ = 0.0;
};

}  // namespace grads

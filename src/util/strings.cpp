#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace grads::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string formatBytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f %s", bytes, units[u]);
  return buf;
}

std::string formatSeconds(double seconds) {
  char buf[48];
  if (seconds >= 120.0) {
    const int m = static_cast<int>(seconds / 60.0);
    std::snprintf(buf, sizeof buf, "%dm %04.1fs", m, seconds - 60.0 * m);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f s", seconds);
  }
  return buf;
}

}  // namespace grads::util

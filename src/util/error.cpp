#include "util/error.hpp"

#include <sstream>

namespace grads::detail {

[[noreturn]] void throwCheckFailure(const char* kind, const char* expr,
                                    const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "precondition") throw InvalidArgument(os.str());
  throw InternalError(os.str());
}

}  // namespace grads::detail

#include "util/table.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "util/error.hpp"

namespace grads::util {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
  GRADS_REQUIRE(!columns_.empty(), "Table: need at least one column");
}

void Table::addRow(std::vector<Cell> row) {
  GRADS_REQUIRE(row.size() == columns_.size(),
                "Table::addRow: wrong number of cells");
  rows_.push_back(std::move(row));
}

std::string Table::render(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&c)) return std::to_string(*i);
  const double d = std::get<double>(c);
  char buf[64];
  if (std::fabs(d) >= 1e6 || (d != 0.0 && std::fabs(d) < 1e-3)) {
    std::snprintf(buf, sizeof buf, "%.4g", d);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", d);
  }
  return buf;
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "== " << title << " ==\n";
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(render(row[c]));
      width[c] = std::max(width[c], r.back().size());
    }
    cells.push_back(std::move(r));
  }
  auto pad = [&](const std::string& s, std::size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << pad(columns_[c], width[c]) << (c + 1 < columns_.size() ? "  " : "\n");
  }
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << std::string(width[c], '-') << (c + 1 < columns_.size() ? "  " : "\n");
  }
  for (const auto& row : cells) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << pad(row[c], width[c]) << (c + 1 < row.size() ? "  " : "\n");
    }
  }
}

void Table::writeCsv(std::ostream& os) const {
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << columns_[c] << (c + 1 < columns_.size() ? "," : "\n");
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << render(row[c]) << (c + 1 < row.size() ? "," : "\n");
    }
  }
}

void Table::saveCsv(const std::string& path) const {
  std::ofstream f(path);
  GRADS_REQUIRE(f.good(), "Table::saveCsv: cannot open " + path);
  writeCsv(f);
}

}  // namespace grads::util

#pragma once

#include <cstdint>
#include <cstring>
#include <string>

namespace grads::util {

/// FNV-1a 64-bit — the deterministic content-digest primitive behind the
/// checkpoint-integrity layer. Not cryptographic: it detects bit-rot, torn
/// writes, and stale deliveries, not adversaries, which matches what real
/// depot scrubbers (and IBP's own end-to-end checksums) defend against.
inline std::uint64_t fnv1a64(const void* data, std::size_t len,
                             std::uint64_t seed = 0xcbf29ce484222325ULL) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline std::uint64_t fnv1a64(const std::string& s,
                             std::uint64_t seed = 0xcbf29ce484222325ULL) {
  return fnv1a64(s.data(), s.size(), seed);
}

/// Order-sensitive digest combinator (boost::hash_combine-style mixing).
inline std::uint64_t hashCombine(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

inline std::uint64_t hashCombine(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return hashCombine(h, bits);
}

/// Order-sensitive stream digest over an FNV-1a/hash-combine fold — the
/// replay-divergence oracle's accumulator. Two runs of the same scenario
/// must fold the same values in the same order to produce the same digest;
/// any address-order or wall-clock leak shows up as a digest mismatch.
/// The element count is folded into digest() so a truncated stream cannot
/// collide with its own prefix.
class DigestStream {
 public:
  void put(std::uint64_t v) {
    h_ = hashCombine(h_, v);
    ++count_;
  }
  void put(double v) {
    h_ = hashCombine(h_, v);
    ++count_;
  }
  void put(const std::string& s) {
    h_ = hashCombine(h_, fnv1a64(s));
    ++count_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t digest() const { return hashCombine(h_, count_); }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
  std::uint64_t count_ = 0;
};

}  // namespace grads::util

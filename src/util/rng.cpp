#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace grads {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits → double in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  GRADS_REQUIRE(lo <= hi, "uniform: lo > hi");
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  GRADS_REQUIRE(lo <= hi, "uniformInt: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full range
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::normal() {
  if (haveSpare_) {
    haveSpare_ = false;
    return spare_;
  }
  double u1 = 0.0;
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  spare_ = r * std::sin(theta);
  haveSpare_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  GRADS_REQUIRE(stddev >= 0.0, "normal: negative stddev");
  return mean + stddev * normal();
}

double Rng::exponential(double rate) {
  GRADS_REQUIRE(rate > 0.0, "exponential: rate must be positive");
  double u = 0.0;
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

double Rng::pareto(double xm, double alpha) {
  GRADS_REQUIRE(xm > 0.0 && alpha > 0.0, "pareto: xm and alpha must be > 0");
  double u = 0.0;
  while (u <= 1e-300) u = uniform();
  return xm / std::pow(u, 1.0 / alpha);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j =
        static_cast<std::size_t>(uniformInt(0, static_cast<std::int64_t>(i) - 1));
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

Rng Rng::split() { return Rng(next()); }

RngState Rng::state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.haveSpare = haveSpare_;
  st.spare = spare_;
  return st;
}

void Rng::setState(const RngState& st) {
  for (int i = 0; i < 4; ++i) s_[i] = st.s[i];
  haveSpare_ = st.haveSpare;
  spare_ = st.spare;
}

}  // namespace grads

#include "grid/node.hpp"

#include "util/error.hpp"

namespace grads::grid {

const char* archName(Arch a) {
  switch (a) {
    case Arch::kIA32: return "ia32";
    case Arch::kIA64: return "ia64";
    case Arch::kOther: return "other";
  }
  return "?";
}

Node::Node(sim::Engine& engine, NodeId id, NodeSpec spec)
    : id_(id), spec_(std::move(spec)) {
  GRADS_REQUIRE(spec_.cpus >= 1, "Node: need at least one CPU");
  GRADS_REQUIRE(spec_.mhz > 0.0, "Node: clock must be positive");
  GRADS_REQUIRE(spec_.efficiency > 0.0 && spec_.efficiency <= 1.0,
                "Node: efficiency must be in (0,1]");
  cpu_ = std::make_unique<sim::PsResource>(
      engine, spec_.effectiveFlops(), spec_.effectiveFlopsPerCpu(),
      spec_.name + ".cpu");
}

sim::PsResource::LoadId Node::injectLoad(double weight) {
  return cpu_->addLoad(weight);
}

void Node::removeLoad(sim::PsResource::LoadId id) { cpu_->removeLoad(id); }

double Node::cpuAvailability() const {
  // Share a newly arriving unit-weight process would receive, as a fraction
  // of one (effective) CPU — what an NWS CPU-availability sensor reports.
  const double perCpu = spec_.effectiveFlopsPerCpu();
  const double rate =
      std::min(perCpu, cpu_->capacity() / (cpu_->totalWeight() + 1.0));
  return rate / perCpu;
}

double Node::incumbentAvailability() const {
  const double perCpu = spec_.effectiveFlopsPerCpu();
  const double w = std::max(1.0, cpu_->totalWeight());
  return std::min(perCpu, cpu_->capacity() / w) / perCpu;
}

}  // namespace grads::grid

#pragma once

#include <vector>

#include "grid/grid.hpp"

namespace grads::grid {

/// Node archetypes matching the hardware the paper reports.
NodeSpec utkQrNodeSpec(int index);    ///< 933 MHz dual-processor Pentium III
NodeSpec uiucQrNodeSpec(int index);   ///< 450 MHz single-processor Pentium II
NodeSpec utkSwapNodeSpec(int index);  ///< 550 MHz Pentium II (MicroGrid, §4.2)
NodeSpec uiucSwapNodeSpec(int index); ///< 450 MHz Pentium II (MicroGrid, §4.2)
NodeSpec ucsdAthlonSpec(int index);   ///< 1.7 GHz Athlon (MicroGrid, §4.2)
NodeSpec ia64NodeSpec(int index);     ///< IA-64 node for the EMAN testbed

/// LAN archetypes.
LinkSpec fastEthernetLan(const std::string& name, int nodes);  ///< 100 Mb switched
LinkSpec myrinetLan(const std::string& name, int nodes);       ///< 1.28 Gb/s full duplex
LinkSpec gigabitLan(const std::string& name, int nodes);       ///< Gigabit Ethernet
/// Shared Internet path between campuses.
LinkSpec internetWan(const std::string& name, double latencySec,
                     double bandwidthBytesPerSec);

/// §4.1.2 testbed: 4 UTK machines (dual 933 MHz P-III, 100 Mb switched
/// Ethernet) + 8 UIUC machines (450 MHz P-II, Myrinet), clusters connected
/// via the Internet.
struct QrTestbed {
  ClusterId utk = kNoId;
  ClusterId uiuc = kNoId;
  std::vector<NodeId> utkNodes;
  std::vector<NodeId> uiucNodes;
};
QrTestbed buildQrTestbed(Grid& grid);

/// §4.2.2 virtual grid: UTK 3×550 MHz P-II, UIUC 3×450 MHz P-II, both on
/// Gigabit Ethernet internally; one UCSD 1.7 GHz Athlon; 30 ms UCSD↔others,
/// 11 ms UTK↔UIUC.
struct SwapTestbed {
  ClusterId utk = kNoId;
  ClusterId uiuc = kNoId;
  ClusterId ucsd = kNoId;
  std::vector<NodeId> utkNodes;
  std::vector<NodeId> uiucNodes;
  NodeId ucsdNode = kNoId;
};
SwapTestbed buildSwapTestbed(Grid& grid);

/// §1 MacroGrid: UCSD (10 machines), UTK (two clusters, 24 machines total),
/// UIUC (two clusters, 24), UH (24).
struct MacroGrid {
  std::vector<ClusterId> clusters;  ///< ucsd, utk-a, utk-b, uiuc-a, uiuc-b, uh
};
MacroGrid buildMacroGrid(Grid& grid);

/// §3.3 heterogeneous testbed: MacroGrid IA-32 clusters plus an IA-64
/// cluster, used to schedule the EMAN refinement workflow.
struct EmanTestbed {
  MacroGrid macro;
  ClusterId ia64 = kNoId;
};
EmanTestbed buildEmanTestbed(Grid& grid);

}  // namespace grads::grid

#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/engine.hpp"
#include "sim/ps_resource.hpp"
#include "sim/task.hpp"

namespace grads::grid {

using NodeId = std::size_t;
using ClusterId = std::size_t;
using LinkId = std::size_t;

inline constexpr std::size_t kNoId = static_cast<std::size_t>(-1);

/// Processor architecture tag; the binder uses this to pick per-architecture
/// compilation packages (the paper's IA-32 / IA-64 heterogeneity story).
enum class Arch { kIA32, kIA64, kOther };

const char* archName(Arch a);

/// Cache geometry used by the memory-reuse-distance performance model.
struct CacheGeometry {
  std::size_t sizeBytes = 512 * 1024;
  std::size_t lineBytes = 32;
  std::size_t associativity = 8;

  std::size_t lines() const { return sizeBytes / lineBytes; }
};

/// Static description of a compute node.
struct NodeSpec {
  std::string name;
  double mhz = 500.0;
  double flopsPerCycle = 1.0;
  int cpus = 1;
  /// Fraction of peak a well-tuned dense kernel achieves on this node; the
  /// CPU resource is provisioned at this *effective* rate.
  double efficiency = 0.35;
  double memBytes = 512.0 * 1024 * 1024;
  CacheGeometry cache;
  double cacheMissPenaltySec = 120e-9;
  Arch arch = Arch::kIA32;
  /// Local disk bandwidth (IBP depots write checkpoints here).
  double diskBandwidth = 30.0 * 1024 * 1024;

  double peakFlopsPerCpu() const { return mhz * 1e6 * flopsPerCycle; }
  double effectiveFlopsPerCpu() const { return peakFlopsPerCpu() * efficiency; }
  double peakFlops() const { return peakFlopsPerCpu() * cpus; }
  double effectiveFlops() const { return effectiveFlopsPerCpu() * cpus; }
};

/// A simulated Grid compute node: a processor-sharing CPU plus metadata.
/// Background ("artificial") load is injected as competing CPU jobs, exactly
/// the mechanism the paper used to trigger contract violations.
class Node {
 public:
  Node(sim::Engine& engine, NodeId id, NodeSpec spec);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  const NodeSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  ClusterId cluster() const { return cluster_; }
  void setCluster(ClusterId c) { cluster_ = c; }

  /// Burns `flops` floating-point operations on this node's CPU, sharing it
  /// fairly with all other processes/loads currently on the node.
  sim::Task compute(double flops) { return cpu_->consume(flops); }

  sim::PsResource& cpu() { return *cpu_; }
  const sim::PsResource& cpu() const { return *cpu_; }

  /// Adds `weight` perpetual competing processes (external load).
  sim::PsResource::LoadId injectLoad(double weight);
  void removeLoad(sim::PsResource::LoadId id);

  /// Fraction of one CPU a new process would receive right now — what an
  /// NWS CPU sensor measures.
  double cpuAvailability() const;

  /// Fraction of one CPU an *already running* process receives right now
  /// (its own weight is part of the divisor). This is what a performance
  /// model needs to predict the remaining time of an executing application.
  double incumbentAvailability() const;

  /// Effective flop rate a single new process would get right now.
  double currentRatePerProcess() const { return cpu_->ratePerUnit(); }

 private:
  NodeId id_;
  NodeSpec spec_;
  ClusterId cluster_ = kNoId;
  std::unique_ptr<sim::PsResource> cpu_;
};

}  // namespace grads::grid

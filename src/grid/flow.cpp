#include "grid/flow.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace grads::grid {

namespace {
// A flow is complete once its residual drops below this fraction of its
// original size (floating-point residue guard, same constant PsResource
// uses for finite jobs).
constexpr double kRelativeEps = 1e-9;
}  // namespace

FlowRegistry::FlowRegistry(sim::Engine& engine)
    : engine_(&engine), lastUpdate_(engine.now()) {}

FlowRegistry::~FlowRegistry() { pendingFinish_.cancel(); }

LinkId FlowRegistry::addLink(double capacityBytesPerSec,
                             double perFlowCapBytesPerSec) {
  GRADS_REQUIRE(capacityBytesPerSec > 0.0,
                "FlowRegistry::addLink: capacity must be > 0");
  GRADS_REQUIRE(perFlowCapBytesPerSec > 0.0,
                "FlowRegistry::addLink: per-flow cap must be > 0");
  const LinkId id = links_.size();
  links_.push_back(LinkState{capacityBytesPerSec, perFlowCapBytesPerSec});
  return id;
}

void FlowRegistry::setLinkCapacity(LinkId link, double capacityBytesPerSec) {
  GRADS_REQUIRE(link < links_.size(),
                "FlowRegistry::setLinkCapacity: unknown link");
  GRADS_REQUIRE(capacityBytesPerSec > 0.0,
                "FlowRegistry::setLinkCapacity: capacity must be > 0");
  advance();
  links_[link].capacity = capacityBytesPerSec;
  solve();
  replan();
}

double FlowRegistry::effectiveWeight(TransferClass cls) const {
  return (pacing_ && cls == TransferClass::kBulk) ? bulkWeight_ : 1.0;
}

double FlowRegistry::soloRate(const std::vector<LinkId>& links) const {
  double rate = sim::kInfTime;
  for (const LinkId l : links) {
    rate = std::min(rate, std::min(links_[l].perFlowCap, links_[l].capacity));
  }
  return rate;
}

void FlowRegistry::computeShares(std::vector<Demand>& demands) const {
  if (demands.empty()) return;
  if (mode_ == SharingMode::kStatic) {
    // Ablation baseline: every flow streams at its uncontended solo rate,
    // links carry unbounded aggregate load ("overlapping free time").
    for (auto& d : demands) d.rate = std::min(d.soloCap, soloRate(*d.links));
    return;
  }
  // Progressive water-filling. The water level (rate per unit weight) rises
  // until a link saturates or a flow hits its per-flow cap; the flows that
  // bind there freeze at their share and their weight leaves the pool, so
  // capacity a capped flow cannot use flows on to the rest. Iteration is in
  // flow submission order everywhere — no address-dependent tie-breaks.
  std::vector<double> residual(links_.size());
  std::vector<double> weight(links_.size(), 0.0);
  for (std::size_t l = 0; l < links_.size(); ++l) {
    residual[l] = links_[l].capacity;
  }
  for (const auto& d : demands) {
    for (const LinkId l : *d.links) weight[l] += d.weight;
  }
  std::size_t unfrozen = demands.size();
  while (unfrozen > 0) {
    double level = sim::kInfTime;
    for (const auto& d : demands) {
      if (d.frozen) continue;
      level = std::min(level, d.soloCap / d.weight);
      for (const LinkId l : *d.links) {
        if (weight[l] > 0.0) level = std::min(level, residual[l] / weight[l]);
      }
    }
    bool froze = false;
    for (auto& d : demands) {
      if (d.frozen) continue;
      const bool capHit = d.soloCap / d.weight <= level;
      bool linkHit = false;
      if (!capHit) {
        for (const LinkId l : *d.links) {
          if (weight[l] > 0.0 && residual[l] / weight[l] <= level) {
            linkHit = true;
            break;
          }
        }
      }
      if (!capHit && !linkHit) continue;
      // A lone flow takes min(soloCap, capacity) *exactly*: capHit yields
      // soloCap verbatim, and linkHit yields w·(capacity/w), exact because
      // pacing weights are powers of two. This is the single-flow
      // backward-compat guarantee.
      d.rate = capHit ? d.soloCap : d.weight * level;
      d.frozen = true;
      froze = true;
      --unfrozen;
      for (const LinkId l : *d.links) {
        residual[l] = std::max(0.0, residual[l] - d.rate);
        weight[l] = std::max(0.0, weight[l] - d.weight);
      }
    }
    GRADS_REQUIRE(froze, "FlowRegistry: water-fill did not converge");
  }
}

void FlowRegistry::advance() {
  const sim::Time now = engine_->now();
  const double dt = now - lastUpdate_;
  lastUpdate_ = now;
  if (dt <= 0.0 || flows_.empty()) return;
  for (auto& f : flows_) f.remaining -= f.rate * dt;
}

void FlowRegistry::solve() {
  ++solves_;
  std::vector<Demand> demands;
  demands.reserve(flows_.size());
  for (const auto& f : flows_) {
    Demand d;
    d.links = &f.links;
    d.weight = effectiveWeight(f.cls);
    double cap = sim::kInfTime;
    for (const LinkId l : f.links) cap = std::min(cap, links_[l].perFlowCap);
    d.soloCap = cap;
    demands.push_back(d);
  }
  computeShares(demands);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    flows_[i].rate = demands[i].rate;
  }
}

void FlowRegistry::replan() {
  pendingFinish_.cancel();
  sim::Time dt = sim::kInfTime;
  for (const auto& f : flows_) {
    if (f.rate <= 0.0) continue;
    dt = std::min(dt, std::max(0.0, f.remaining) / f.rate);
  }
  if (dt == sim::kInfTime) return;
  pendingFinish_ = engine_->schedule(dt, [this] {
    advance();
    const sim::Time now = engine_->now();
    const sim::Time timeQuantum = std::nextafter(now, sim::kInfTime) - now;
    // Stable in-place compaction; finishers are signalled in submission
    // order (Event::set only queues resumes, so nothing reenters flows_
    // mid-sweep).
    std::size_t keep = 0;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      Flow& f = flows_[i];
      const bool relDone = f.remaining <= kRelativeEps * f.bytes;
      const bool quantumDone =
          f.rate > 0.0 && f.remaining <= f.rate * timeQuantum;
      if (relDone || quantumDone) {
        ++flowsCompleted_;
        bytesCompleted_ += f.bytes;
        f.done->set();
      } else {
        if (keep != i) flows_[keep] = std::move(f);
        ++keep;
      }
    }
    flows_.resize(keep);
    solve();
    replan();
  });
}

sim::Task FlowRegistry::transfer(std::vector<LinkId> links, double bytes,
                                 TransferClass cls) {
  GRADS_REQUIRE(bytes >= 0.0, "FlowRegistry::transfer: negative size");
  for (const LinkId l : links) {
    GRADS_REQUIRE(l < links_.size(), "FlowRegistry::transfer: unknown link");
  }
  if (links.empty() || bytes == 0.0) co_return;
  advance();
  flows_.push_back(Flow{std::move(links), bytes, bytes, cls, 0.0,
                        std::make_unique<sim::Event>(*engine_)});
  ++flowsOpened_;
  peakConcurrent_ =
      std::max(peakConcurrent_, static_cast<std::uint64_t>(flows_.size()));
  sim::Event& done = *flows_.back().done;
  solve();
  replan();
  co_await done.wait();
}

double FlowRegistry::probeShare(const std::vector<LinkId>& links,
                                double weight) const {
  GRADS_REQUIRE(!links.empty(), "FlowRegistry::probeShare: empty route");
  GRADS_REQUIRE(weight > 0.0, "FlowRegistry::probeShare: weight must be > 0");
  for (const LinkId l : links) {
    GRADS_REQUIRE(l < links_.size(), "FlowRegistry::probeShare: unknown link");
  }
  if (mode_ == SharingMode::kStatic || flows_.empty()) {
    return soloRate(links);
  }
  std::vector<Demand> demands;
  demands.reserve(flows_.size() + 1);
  for (const auto& f : flows_) {
    Demand d;
    d.links = &f.links;
    d.weight = effectiveWeight(f.cls);
    double cap = sim::kInfTime;
    for (const LinkId l : f.links) cap = std::min(cap, links_[l].perFlowCap);
    d.soloCap = cap;
    demands.push_back(d);
  }
  Demand phantom;
  phantom.links = &links;
  phantom.weight = weight;
  double cap = sim::kInfTime;
  for (const LinkId l : links) cap = std::min(cap, links_[l].perFlowCap);
  phantom.soloCap = cap;
  demands.push_back(phantom);
  computeShares(demands);
  return demands.back().rate;
}

double FlowRegistry::linkUtilization(LinkId link) const {
  GRADS_REQUIRE(link < links_.size(),
                "FlowRegistry::linkUtilization: unknown link");
  const double cap = links_[link].capacity;
  if (cap <= 0.0) return 0.0;
  double allocated = 0.0;
  for (const auto& f : flows_) {
    if (std::find(f.links.begin(), f.links.end(), link) != f.links.end()) {
      allocated += f.rate;
    }
  }
  return std::clamp(allocated / cap, 0.0, 1.0);
}

double FlowRegistry::linkQueuePressure(LinkId link) const {
  GRADS_REQUIRE(link < links_.size(),
                "FlowRegistry::linkQueuePressure: unknown link");
  const double cap = links_[link].capacity;
  if (cap <= 0.0) return 0.0;
  double offered = 0.0;
  for (const auto& f : flows_) {
    if (std::find(f.links.begin(), f.links.end(), link) != f.links.end()) {
      offered += std::min(soloRate(f.links), cap);
    }
  }
  return std::max(0.0, (offered - cap) / cap);
}

std::size_t FlowRegistry::linkActiveFlows(LinkId link) const {
  GRADS_REQUIRE(link < links_.size(),
                "FlowRegistry::linkActiveFlows: unknown link");
  std::size_t n = 0;
  for (const auto& f : flows_) {
    if (std::find(f.links.begin(), f.links.end(), link) != f.links.end()) {
      ++n;
    }
  }
  return n;
}

void FlowRegistry::setSharingMode(SharingMode mode) {
  if (mode == mode_) return;
  advance();
  mode_ = mode;
  solve();
  replan();
}

void FlowRegistry::setPacingEnabled(bool enabled) {
  if (enabled == pacing_) return;
  advance();
  pacing_ = enabled;
  solve();
  replan();
}

void FlowRegistry::setBulkWeight(double weight) {
  int exp = 0;
  GRADS_REQUIRE(weight > 0.0 && weight <= 1.0 &&
                    std::frexp(weight, &exp) == 0.5,
                "FlowRegistry::setBulkWeight: weight must be a power of two "
                "in (0, 1] (keeps uncontended bulk rates bit-exact)");
  if (weight == bulkWeight_) return;
  advance();
  bulkWeight_ = weight;
  solve();
  replan();
}

void FlowRegistry::encodeState(core::SnapshotWriter& w) const {
  w.putU64(static_cast<std::uint64_t>(mode_));
  w.putBool(pacing_);
  w.putF64(bulkWeight_);
  w.putU64(flowsOpened_);
  w.putU64(flowsCompleted_);
  w.putF64(bytesCompleted_);
  w.putU64(solves_);
  w.putU64(peakConcurrent_);
}

void FlowRegistry::decodeState(core::SnapshotReader& r) {
  mode_ = static_cast<SharingMode>(r.getU64());
  pacing_ = r.getBool();
  bulkWeight_ = r.getF64();
  flowsOpened_ = r.getU64();
  flowsCompleted_ = r.getU64();
  bytesCompleted_ = r.getF64();
  solves_ = r.getU64();
  peakConcurrent_ = r.getU64();
}

}  // namespace grads::grid

#include "grid/load.hpp"

#include <memory>

#include "util/error.hpp"

namespace grads::grid {

LoadTrace::LoadTrace(std::vector<LoadPhase> phases)
    : phases_(std::move(phases)) {
  for (std::size_t i = 1; i < phases_.size(); ++i) {
    GRADS_REQUIRE(phases_[i].start > phases_[i - 1].start,
                  "LoadTrace: phases must be strictly increasing in time");
  }
  for (const auto& p : phases_) {
    GRADS_REQUIRE(p.weight >= 0.0, "LoadTrace: negative weight");
    GRADS_REQUIRE(p.start >= 0.0, "LoadTrace: negative start time");
  }
}

double LoadTrace::weightAt(sim::Time t) const {
  double w = 0.0;
  for (const auto& p : phases_) {
    if (p.start <= t) {
      w = p.weight;
    } else {
      break;
    }
  }
  return w;
}

LoadTrace LoadTrace::stepAt(sim::Time at, double weight) {
  return LoadTrace({LoadPhase{at, weight}});
}

LoadTrace LoadTrace::pulse(sim::Time from, sim::Time until, double weight) {
  GRADS_REQUIRE(until > from, "LoadTrace::pulse: empty interval");
  return LoadTrace({LoadPhase{from, weight}, LoadPhase{until, 0.0}});
}

LoadTrace LoadTrace::randomOnOff(Rng& rng, double meanOffSec, double meanOnSec,
                                 double weight, sim::Time horizon) {
  GRADS_REQUIRE(meanOffSec > 0.0 && meanOnSec > 0.0,
                "LoadTrace::randomOnOff: means must be positive");
  std::vector<LoadPhase> phases;
  sim::Time t = rng.exponential(1.0 / meanOffSec);
  while (t < horizon) {
    phases.push_back(LoadPhase{t, weight});
    t += rng.exponential(1.0 / meanOnSec);
    if (t >= horizon) break;
    phases.push_back(LoadPhase{t, 0.0});
    t += rng.exponential(1.0 / meanOffSec);
  }
  return LoadTrace(std::move(phases));
}

namespace {

using CurrentLoad = std::shared_ptr<std::optional<sim::PsResource::LoadId>>;

void armPhase(sim::Engine& engine, Node& node, const CurrentLoad& current,
              sim::Time at, double weight) {
  // Daemon events: background load must not keep the simulation alive
  // after the foreground work completes. The node outlives every armed
  // phase (it is grid-owned), so capture an explicit handle rather than a
  // reference bound to this frame's parameter (lint rule R10).
  sim::PsResource* cpu = &node.cpu();
  engine.scheduleDaemonAt(at, [cpu, current, weight] {
    if (current->has_value()) {
      cpu->removeLoad(current->value());
      current->reset();
    }
    if (weight > 0.0) *current = cpu->addLoad(weight);
  });
}

}  // namespace

void applyLoadTrace(sim::Engine& engine, Node& node, const LoadTrace& trace) {
  // Shared slot holding the currently injected load id (if any).
  auto current = std::make_shared<std::optional<sim::PsResource::LoadId>>();
  for (const auto& phase : trace.phases()) {
    armPhase(engine, node, current, phase.start, phase.weight);
  }
}

void applyLoadTraceFrom(sim::Engine& engine, Node& node, const LoadTrace& trace,
                        sim::Time fromTime) {
  auto current = std::make_shared<std::optional<sim::PsResource::LoadId>>();
  // The phase active at fromTime is injected directly — the snapshot never
  // serializes PsResource job lists, so the restored node starts bare.
  const double now = trace.weightAt(fromTime);
  if (now > 0.0) *current = node.injectLoad(now);
  for (const auto& phase : trace.phases()) {
    if (phase.start > fromTime) {
      armPhase(engine, node, current, phase.start, phase.weight);
    }
  }
}

}  // namespace grads::grid

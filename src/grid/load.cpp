#include "grid/load.hpp"

#include <memory>

#include "util/error.hpp"

namespace grads::grid {

LoadTrace::LoadTrace(std::vector<LoadPhase> phases)
    : phases_(std::move(phases)) {
  for (std::size_t i = 1; i < phases_.size(); ++i) {
    GRADS_REQUIRE(phases_[i].start > phases_[i - 1].start,
                  "LoadTrace: phases must be strictly increasing in time");
  }
  for (const auto& p : phases_) {
    GRADS_REQUIRE(p.weight >= 0.0, "LoadTrace: negative weight");
    GRADS_REQUIRE(p.start >= 0.0, "LoadTrace: negative start time");
  }
}

double LoadTrace::weightAt(sim::Time t) const {
  double w = 0.0;
  for (const auto& p : phases_) {
    if (p.start <= t) {
      w = p.weight;
    } else {
      break;
    }
  }
  return w;
}

LoadTrace LoadTrace::stepAt(sim::Time at, double weight) {
  return LoadTrace({LoadPhase{at, weight}});
}

LoadTrace LoadTrace::pulse(sim::Time from, sim::Time until, double weight) {
  GRADS_REQUIRE(until > from, "LoadTrace::pulse: empty interval");
  return LoadTrace({LoadPhase{from, weight}, LoadPhase{until, 0.0}});
}

LoadTrace LoadTrace::randomOnOff(Rng& rng, double meanOffSec, double meanOnSec,
                                 double weight, sim::Time horizon) {
  GRADS_REQUIRE(meanOffSec > 0.0 && meanOnSec > 0.0,
                "LoadTrace::randomOnOff: means must be positive");
  std::vector<LoadPhase> phases;
  sim::Time t = rng.exponential(1.0 / meanOffSec);
  while (t < horizon) {
    phases.push_back(LoadPhase{t, weight});
    t += rng.exponential(1.0 / meanOnSec);
    if (t >= horizon) break;
    phases.push_back(LoadPhase{t, 0.0});
    t += rng.exponential(1.0 / meanOffSec);
  }
  return LoadTrace(std::move(phases));
}

void applyLoadTrace(sim::Engine& engine, Node& node, const LoadTrace& trace) {
  // Shared slot holding the currently injected load id (if any).
  auto current = std::make_shared<std::optional<sim::PsResource::LoadId>>();
  for (const auto& phase : trace.phases()) {
    // Daemon events: background load must not keep the simulation alive
    // after the foreground work completes.
    engine.scheduleDaemonAt(phase.start, [&node, current, weight = phase.weight] {
      if (current->has_value()) {
        node.removeLoad(current->value());
        current->reset();
      }
      if (weight > 0.0) *current = node.injectLoad(weight);
    });
  }
}

}  // namespace grads::grid

#include "grid/grid.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace grads::grid {

Link::Link(FlowRegistry& flows, LinkId id, LinkSpec spec)
    : id_(id), spec_(std::move(spec)), flows_(&flows) {
  GRADS_REQUIRE(spec_.latencySec >= 0.0, "Link: negative latency");
  GRADS_REQUIRE(spec_.bandwidthBytesPerSec > 0.0, "Link: bandwidth must be > 0");
  const LinkId registered =
      flows_->addLink(spec_.bandwidthBytesPerSec, spec_.perFlowCapBytesPerSec);
  GRADS_REQUIRE(registered == id_,
                "Link: registry link id out of step with grid link id");
}

double Link::availableBandwidth() const {
  if (!up_) return 0.0;
  return flows_->probeShare({id_}, 1.0);
}

void Link::setBandwidthScale(double scale) {
  GRADS_REQUIRE(scale > 0.0 && scale <= 1.0,
                "Link::setBandwidthScale: scale must be in (0, 1]");
  scale_ = scale;
  flows_->setLinkCapacity(id_, spec_.bandwidthBytesPerSec * scale);
}

Grid::Grid(sim::Engine& engine)
    : engine_(&engine), flows_(std::make_unique<FlowRegistry>(engine)) {}

ClusterId Grid::addCluster(ClusterSpec spec) {
  const ClusterId id = clusters_.size();
  const LinkId lan = links_.size();
  links_.push_back(std::make_unique<Link>(*flows_, lan, spec.lan));
  clusters_.push_back(Cluster{id, spec.name, spec.site, lan, {}});
  return id;
}

NodeId Grid::addNode(ClusterId cluster, NodeSpec spec) {
  GRADS_REQUIRE(cluster < clusters_.size(), "addNode: unknown cluster");
  const NodeId id = nodes_.size();
  nodes_.push_back(std::make_unique<Node>(*engine_, id, std::move(spec)));
  nodes_.back()->setCluster(cluster);
  clusters_[cluster].nodes.push_back(id);
  return id;
}

LinkId Grid::connectClusters(ClusterId a, ClusterId b, LinkSpec spec) {
  GRADS_REQUIRE(a < clusters_.size() && b < clusters_.size(),
                "connectClusters: unknown cluster");
  GRADS_REQUIRE(a != b, "connectClusters: cannot connect a cluster to itself");
  const LinkId id = links_.size();
  links_.push_back(std::make_unique<Link>(*flows_, id, std::move(spec)));
  wan_[{std::min(a, b), std::max(a, b)}] = id;
  return id;
}

Node& Grid::node(NodeId id) {
  GRADS_REQUIRE(id < nodes_.size(), "unknown node id");
  return *nodes_[id];
}
const Node& Grid::node(NodeId id) const {
  GRADS_REQUIRE(id < nodes_.size(), "unknown node id");
  return *nodes_[id];
}
Link& Grid::link(LinkId id) {
  GRADS_REQUIRE(id < links_.size(), "unknown link id");
  return *links_[id];
}
const Link& Grid::link(LinkId id) const {
  GRADS_REQUIRE(id < links_.size(), "unknown link id");
  return *links_[id];
}
const Cluster& Grid::cluster(ClusterId id) const {
  GRADS_REQUIRE(id < clusters_.size(), "unknown cluster id");
  return clusters_[id];
}
const std::vector<NodeId>& Grid::clusterNodes(ClusterId id) const {
  return cluster(id).nodes;
}

std::optional<ClusterId> Grid::findCluster(const std::string& name) const {
  for (const auto& c : clusters_) {
    if (c.name == name) return c.id;
  }
  return std::nullopt;
}

std::optional<NodeId> Grid::findNode(const std::string& name) const {
  for (const auto& n : nodes_) {
    if (n->name() == name) return n->id();
  }
  return std::nullopt;
}

std::vector<NodeId> Grid::allNodes() const {
  std::vector<NodeId> ids(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) ids[i] = i;
  return ids;
}

Route Grid::route(NodeId src, NodeId dst) const {
  GRADS_REQUIRE(src < nodes_.size() && dst < nodes_.size(),
                "route: unknown node");
  Route r;
  if (src == dst) return r;
  const ClusterId cs = nodes_[src]->cluster();
  const ClusterId cd = nodes_[dst]->cluster();
  if (cs == cd) {
    r.links.push_back(clusters_[cs].lan);
    r.latencySec = links_[clusters_[cs].lan]->latency();
    return r;
  }
  // BFS over the cluster graph to find the WAN hop sequence.
  std::vector<ClusterId> prev(clusters_.size(), kNoId);
  std::vector<bool> seen(clusters_.size(), false);
  std::deque<ClusterId> q{cs};
  seen[cs] = true;
  while (!q.empty()) {
    const ClusterId c = q.front();
    q.pop_front();
    if (c == cd) break;
    for (const auto& [key, link] : wan_) {
      (void)link;
      ClusterId other = kNoId;
      if (key.first == c) other = key.second;
      if (key.second == c) other = key.first;
      if (other != kNoId && !seen[other]) {
        seen[other] = true;
        prev[other] = c;
        q.push_back(other);
      }
    }
  }
  GRADS_REQUIRE(seen[cd], "route: clusters are not connected");

  std::vector<ClusterId> hops{cd};
  while (hops.back() != cs) hops.push_back(prev[hops.back()]);
  std::reverse(hops.begin(), hops.end());

  r.links.push_back(clusters_[cs].lan);
  for (std::size_t i = 0; i + 1 < hops.size(); ++i) {
    const auto key = std::make_pair(std::min(hops[i], hops[i + 1]),
                                    std::max(hops[i], hops[i + 1]));
    r.links.push_back(wan_.at(key));
  }
  r.links.push_back(clusters_[cd].lan);
  // A route must never list the same link twice: its latency would be paid
  // twice and the flow would contend with itself on the shared segment,
  // halving effective bandwidth (the intra-cluster double-LAN bug). Dedupe
  // preserving hop order before summing latency.
  std::vector<LinkId> unique;
  unique.reserve(r.links.size());
  for (const LinkId l : r.links) {
    if (std::find(unique.begin(), unique.end(), l) == unique.end()) {
      unique.push_back(l);
    }
  }
  r.links = std::move(unique);
  for (const LinkId l : r.links) r.latencySec += links_[l]->latency();
  return r;
}

bool Grid::routeUp(NodeId src, NodeId dst) const {
  const Route r = route(src, dst);
  for (const LinkId l : r.links) {
    if (!links_[l]->isUp()) return false;
  }
  return true;
}

sim::Task Grid::transfer(NodeId src, NodeId dst, double bytes,
                         TransferClass cls) {
  GRADS_REQUIRE(bytes >= 0.0, "transfer: negative size");
  const Route r = route(src, dst);
  // Fail fast on a partitioned path: connection setup does not complete, so
  // no bandwidth is consumed. Flows already in flight keep streaming.
  for (const LinkId l : r.links) {
    if (!links_[l]->isUp()) {
      throw LinkDownError("transfer " + nodes_[src]->name() + " -> " +
                          nodes_[dst]->name() + ": link " +
                          links_[l]->spec().name + " is down");
    }
  }
  if (r.latencySec > 0.0) co_await sim::sleepFor(*engine_, r.latencySec);
  if (r.links.empty() || bytes == 0.0) co_return;
  // One flow over the whole route: the registry streams it at its max-min
  // bottleneck share (cut-through rather than store-and-forward) and
  // re-shares it as competing flows arrive and depart.
  co_await flows_->transfer(r.links, bytes, cls);
}

double Grid::transferEstimate(NodeId src, NodeId dst, double bytes) const {
  const Route r = route(src, dst);
  if (r.links.empty()) return 0.0;
  double bw = sim::kInfTime;
  for (const LinkId l : r.links) {
    bw = std::min(bw, std::min(links_[l]->spec().bandwidthBytesPerSec,
                               links_[l]->spec().perFlowCapBytesPerSec));
  }
  return r.latencySec + bytes / bw;
}

double Grid::transferEstimateNow(NodeId src, NodeId dst, double bytes) const {
  const Route r = route(src, dst);
  if (r.links.empty()) return 0.0;
  for (const LinkId l : r.links) {
    if (!links_[l]->isUp()) return sim::kInfTime;
  }
  // Route-level probe, not a per-link minimum: the share a new flow would
  // actually be allocated, clamped by every link's per-flow cap — on an
  // idle route this agrees exactly with transferEstimate.
  const double bw = flows_->probeShare(r.links, 1.0);
  return r.latencySec + bytes / bw;
}

void Grid::encodeState(core::SnapshotWriter& w) const {
  w.putU64(nodes_.size());
  w.putU64(links_.size());
  w.putU64(clusters_.size());
  for (const auto& link : links_) {
    w.putBool(link->isUp());
    w.putF64(link->bandwidthScale());
  }
  flows_->encodeState(w);
}

void Grid::decodeState(core::SnapshotReader& r) {
  const std::uint64_t nNodes = r.getU64();
  const std::uint64_t nLinks = r.getU64();
  const std::uint64_t nClusters = r.getU64();
  if (nNodes != nodes_.size() || nLinks != links_.size() ||
      nClusters != clusters_.size()) {
    throw core::SnapshotError(
        "grid.fabric: snapshot topology does not match the rebuilt grid "
        "(was the testbed builder changed?)");
  }
  for (const auto& link : links_) {
    link->setUp(r.getBool());
    link->setBandwidthScale(r.getF64());
  }
  flows_->decodeState(r);
}

}  // namespace grads::grid

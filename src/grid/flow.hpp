#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/snapshot.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace grads::grid {

using LinkId = std::size_t;

/// Scheduling class of a network transfer. Interactive covers everything on
/// an application's critical path (messages, stage-ins, contract traffic);
/// bulk covers background movers — checkpoint pushes, block-cyclic
/// redistribution, scrubber re-replication — which yield bandwidth to
/// interactive flows when a link is contended (pacing).
enum class TransferClass : std::uint8_t { kInteractive = 0, kBulk = 1 };

/// Flow-level network model: every active transfer is a *flow* over its
/// route, and each link's bandwidth is divided among the flows crossing it
/// by weighted max-min fairness (progressive water-filling). The allocation
/// is re-solved whenever a flow arrives or departs and whenever a link's
/// deliverable capacity changes (bandwidthScale), so a multi-hop flow always
/// streams at its current bottleneck share instead of consuming `bytes` on
/// every link concurrently.
///
/// Invariants (DESIGN.md §11):
///  - a lone flow runs at min over its links of min(perFlowCap, capacity) —
///    numerically identical to the legacy per-link streaming model, so
///    single-flow transfer times reproduce bit-for-bit;
///  - pacing weights are powers of two, so an *uncontended* bulk flow also
///    keeps the legacy rate exactly (w · capacity/w == capacity);
///  - capacity a capped flow cannot use is redistributed to the others
///    (max-min), which the old processor-sharing model left idle;
///  - link up/down never changes the allocation — a downed link refuses new
///    flows (Grid::transfer throws LinkDownError) while flows already
///    streaming keep draining, matching the old PsResource semantics.
///
/// kStatic mode disables sharing entirely (every flow streams at its solo
/// rate regardless of contention) — the ablation baseline benchmarked by
/// netsim_campaign, not a mode production scenarios use.
class FlowRegistry {
 public:
  enum class SharingMode : std::uint8_t { kStatic = 0, kMaxMin = 1 };

  explicit FlowRegistry(sim::Engine& engine);
  ~FlowRegistry();
  FlowRegistry(const FlowRegistry&) = delete;
  FlowRegistry& operator=(const FlowRegistry&) = delete;

  /// Registers a link; ids are dense and assigned in call order so they
  /// coincide with Grid's LinkIds (Grid creates links in id order).
  LinkId addLink(double capacityBytesPerSec, double perFlowCapBytesPerSec);
  /// Deliverable capacity change (Link::setBandwidthScale): re-solves the
  /// allocation for every flow sharing the link.
  void setLinkCapacity(LinkId link, double capacityBytesPerSec);

  std::size_t linkCount() const { return links_.size(); }

  /// Streams `bytes` across `links` as one flow; completes when the
  /// integral of the flow's (re-solved) bottleneck share reaches `bytes`.
  sim::Task transfer(std::vector<LinkId> links, double bytes,
                     TransferClass cls);

  /// Rate a phantom flow of `weight` over `links` would be allocated right
  /// now, without admitting it — what transferEstimateNow and the NWS
  /// bandwidth sensor read. On an idle route this is exactly
  /// min(perFlowCap, capacity) over the links.
  double probeShare(const std::vector<LinkId>& links, double weight) const;

  // --- Congestion gauges (NWS measurement inputs). ---
  /// Fraction of the link's capacity currently allocated to flows [0, 1].
  double linkUtilization(LinkId link) const;
  /// Offered-load excess: how much more the flows crossing the link could
  /// use than it can carry, as a fraction of capacity (0 = uncontended;
  /// n-1 when n unconstrained flows share the link).
  double linkQueuePressure(LinkId link) const;
  /// Number of flows currently crossing the link.
  std::size_t linkActiveFlows(LinkId link) const;

  // --- Pacing / sharing configuration. ---
  void setSharingMode(SharingMode mode);
  SharingMode sharingMode() const { return mode_; }
  /// Pacing on: bulk flows weigh `bulkWeight` against 1.0 for interactive
  /// flows in the max-min solve. Off: every flow weighs 1.0.
  void setPacingEnabled(bool enabled);
  bool pacingEnabled() const { return pacing_; }
  /// Must be a (possibly negative) power of two in (0, 1] so that a lone
  /// bulk flow's rate stays bit-identical to an interactive one's.
  void setBulkWeight(double weight);
  double bulkWeight() const { return bulkWeight_; }

  // --- Introspection / stats (benches, snapshot). ---
  std::size_t activeFlows() const { return flows_.size(); }
  std::uint64_t flowsOpened() const { return flowsOpened_; }
  std::uint64_t flowsCompleted() const { return flowsCompleted_; }
  double bytesCompleted() const { return bytesCompleted_; }
  std::uint64_t solves() const { return solves_; }
  std::uint64_t peakConcurrentFlows() const { return peakConcurrent_; }

  /// Snapshot participation (embedded in Grid's "grid.fabric" section).
  /// Link roster/capacities are topology, rebuilt by the testbed builder and
  /// re-scaled by Grid's link decode; active flows live in coroutine frames
  /// and restart from checkpoints, exactly like PsResource jobs. What
  /// round-trips here is the sharing configuration and the counters.
  void encodeState(core::SnapshotWriter& w) const;
  void decodeState(core::SnapshotReader& r);

 private:
  struct LinkState {
    double capacity = 0.0;
    double perFlowCap = 0.0;
  };
  struct Flow {
    std::vector<LinkId> links;
    double remaining = 0.0;
    double bytes = 0.0;
    TransferClass cls = TransferClass::kInteractive;
    double rate = 0.0;  ///< current allocated share (bytes/s)
    // Owned out-of-line so waiter addresses survive flows_ reallocation.
    std::unique_ptr<sim::Event> done;
  };
  /// Solver workspace entry: one row per flow (plus an optional phantom).
  struct Demand {
    const std::vector<LinkId>* links;
    double weight;       ///< effective (pacing-adjusted) weight
    double soloCap;      ///< min perFlowCap over the flow's links
    double rate = 0.0;
    bool frozen = false;
  };

  double effectiveWeight(TransferClass cls) const;
  double soloRate(const std::vector<LinkId>& links) const;
  /// Weighted max-min water-fill over `demands`; writes each row's rate.
  void computeShares(std::vector<Demand>& demands) const;
  void advance();
  void solve();
  void replan();

  sim::Engine* engine_;  // grads: transient(wiring, re-bound at construction)
  // grads: transient(per-link table rebuilt from the grid topology - dynamic link state is Grid's snapshot section)
  std::vector<LinkState> links_;
  // Contiguous for the same reason PsResource keeps its jobs flat: every
  // solve and finish sweep walks all flows.
  // grads: transient(live flow table - snapshots cut at quiescent boundaries and replayed transfers re-open their flows)
  std::vector<Flow> flows_;
  sim::Time lastUpdate_ = 0.0;  // grads: transient(solver bookkeeping, re-anchored on first post-restore event)
  sim::Engine::EventHandle pendingFinish_;  // grads: transient(pending event handle, re-armed when flows re-open)

  SharingMode mode_ = SharingMode::kMaxMin;
  bool pacing_ = true;
  double bulkWeight_ = 0.25;

  std::uint64_t flowsOpened_ = 0;
  std::uint64_t flowsCompleted_ = 0;
  double bytesCompleted_ = 0.0;
  std::uint64_t solves_ = 0;
  std::uint64_t peakConcurrent_ = 0;
};

}  // namespace grads::grid

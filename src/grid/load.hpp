#pragma once

#include <vector>

#include "grid/node.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace grads::grid {

/// Piecewise-constant background-load trace: `weight` competing processes
/// are present from `start` until the next phase begins (the final phase
/// lasts forever). weight == 0 means the node is otherwise idle.
struct LoadPhase {
  sim::Time start = 0.0;
  double weight = 0.0;
};

class LoadTrace {
 public:
  LoadTrace() = default;
  explicit LoadTrace(std::vector<LoadPhase> phases);

  const std::vector<LoadPhase>& phases() const { return phases_; }
  double weightAt(sim::Time t) const;
  bool empty() const { return phases_.empty(); }

  /// A single step: idle until `at`, then `weight` competitors forever.
  /// This is the paper's "artificial load introduced five minutes after the
  /// start of the application".
  static LoadTrace stepAt(sim::Time at, double weight);

  /// Load present only during [from, until).
  static LoadTrace pulse(sim::Time from, sim::Time until, double weight);

  /// Random on/off process (exponential on/off durations) up to `horizon`.
  static LoadTrace randomOnOff(Rng& rng, double meanOffSec, double meanOnSec,
                               double weight, sim::Time horizon);

 private:
  std::vector<LoadPhase> phases_;
};

/// Schedules the trace's add/remove load events against a node's CPU.
/// Must be called before the engine reaches the first phase boundary.
void applyLoadTrace(sim::Engine& engine, Node& node, const LoadTrace& trace);

/// Restore-time variant: re-arms a trace on a freshly rebuilt node from an
/// arbitrary point in simulated time. Injects the trace's weight as of
/// `fromTime` immediately (the phase that was active when the snapshot was
/// taken) and schedules only the phase boundaries strictly after `fromTime`.
/// applyLoadTrace(e, n, t) ≡ applyLoadTraceFrom(e, n, t, before first phase).
void applyLoadTraceFrom(sim::Engine& engine, Node& node, const LoadTrace& trace,
                        sim::Time fromTime);

}  // namespace grads::grid

#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "grid/node.hpp"
#include "sim/engine.hpp"
#include "sim/ps_resource.hpp"
#include "sim/task.hpp"
#include "util/error.hpp"

namespace grads::grid {

/// Raised when a transfer is attempted across a link that is down (network
/// partition). Callers with a degraded-mode path catch this and retry with
/// backoff — partitions heal — instead of dying on first contact.
class LinkDownError : public Error {
 public:
  explicit LinkDownError(const std::string& what) : Error(what) {}
};

/// A network link (WAN pipe or cluster switch). Bandwidth is a shared
/// processor-sharing resource: concurrent flows divide it fairly;
/// perFlowCap bounds any single flow (a switched LAN gives each pair its own
/// wire speed even though the backplane is larger).
struct LinkSpec {
  std::string name;
  double latencySec = 0.0;
  double bandwidthBytesPerSec = 1e6;
  double perFlowCapBytesPerSec = sim::kInfTime;
};

class Link {
 public:
  Link(sim::Engine& engine, LinkId id, LinkSpec spec);
  LinkId id() const { return id_; }
  const LinkSpec& spec() const { return spec_; }
  double latency() const { return spec_.latencySec; }
  sim::PsResource& bandwidth() { return *bw_; }
  const sim::PsResource& bandwidth() const { return *bw_; }
  /// Bandwidth a new flow would get right now (bytes/s); 0 while down.
  double availableBandwidth() const;

  /// Partition state: a down link refuses new transfers (LinkDownError);
  /// flows already streaming keep draining at the degraded rate.
  void setUp(bool up) { up_ = up; }
  bool isUp() const { return up_; }

  /// Scales deliverable bandwidth to `scale`·nominal (0 < scale <= 1) —
  /// a congested or flapping WAN path. 1.0 restores the full spec rate.
  void setBandwidthScale(double scale);
  double bandwidthScale() const { return scale_; }

 private:
  LinkId id_;
  LinkSpec spec_;
  bool up_ = true;
  double scale_ = 1.0;
  std::unique_ptr<sim::PsResource> bw_;
};

/// Cluster of nodes sharing a LAN switch.
struct ClusterSpec {
  std::string name;
  std::string site;  ///< e.g. "UTK", "UIUC", "UCSD", "UH"
  LinkSpec lan;
};

struct Cluster {
  ClusterId id = kNoId;
  std::string name;
  std::string site;
  LinkId lan = kNoId;
  std::vector<NodeId> nodes;
};

/// Resolved route between two nodes.
struct Route {
  std::vector<LinkId> links;  ///< in order; empty for same-node transfers
  double latencySec = 0.0;
};

/// The Grid resource fabric: nodes grouped into clusters, clusters joined by
/// WAN links, with BFS routing across the cluster graph. This plays the role
/// of the paper's MacroGrid testbed (and, wrapped by grads::microgrid, of the
/// MicroGrid's virtual resource infrastructure).
class Grid : public core::Snapshottable {
 public:
  explicit Grid(sim::Engine& engine);
  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  /// Snapshot participation. Topology (clusters, nodes, links, specs) is
  /// *configuration*, rebuilt by re-running the scenario's testbed builder;
  /// the snapshot carries only mutable fabric state (link up/scale) plus
  /// the topology counts, which decode validates against the rebuilt grid.
  /// Background CPU load is deliberately excluded: PsResource job lists are
  /// coroutine-held and are re-armed from their LoadTrace (see
  /// applyLoadTraceFrom) at restore.
  const char* snapshotSection() const override { return "grid.fabric"; }
  void encodeState(core::SnapshotWriter& w) const override;
  void decodeState(core::SnapshotReader& r) override;

  sim::Engine& engine() const { return *engine_; }

  ClusterId addCluster(ClusterSpec spec);
  NodeId addNode(ClusterId cluster, NodeSpec spec);
  /// Adds a WAN link and records it as the route between the two clusters.
  LinkId connectClusters(ClusterId a, ClusterId b, LinkSpec spec);

  std::size_t nodeCount() const { return nodes_.size(); }
  std::size_t linkCount() const { return links_.size(); }
  std::size_t clusterCount() const { return clusters_.size(); }
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  Link& link(LinkId id);
  const Link& link(LinkId id) const;
  const Cluster& cluster(ClusterId id) const;
  const std::vector<NodeId>& clusterNodes(ClusterId id) const;
  std::optional<ClusterId> findCluster(const std::string& name) const;
  std::optional<NodeId> findNode(const std::string& name) const;
  std::vector<NodeId> allNodes() const;

  /// Resolves the route between two nodes (BFS over the cluster graph).
  Route route(NodeId src, NodeId dst) const;

  /// True when every link on the route between the two nodes is up.
  bool routeUp(NodeId src, NodeId dst) const;

  /// Moves `bytes` from src to dst: pays route latency once, then streams
  /// through every shared link on the path concurrently (the slowest —
  /// normally the WAN bottleneck — dominates).
  sim::Task transfer(NodeId src, NodeId dst, double bytes);

  /// Uncontended estimate of transfer(src,dst,bytes) in seconds; what a
  /// scheduler computes from NWS forecasts of latency and bandwidth.
  double transferEstimate(NodeId src, NodeId dst, double bytes) const;

  /// Estimate using *currently available* (contended) bandwidth.
  double transferEstimateNow(NodeId src, NodeId dst, double bytes) const;

 private:
  sim::Engine* engine_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Cluster> clusters_;
  std::map<std::pair<ClusterId, ClusterId>, LinkId> wan_;
};

}  // namespace grads::grid

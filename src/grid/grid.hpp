#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "grid/flow.hpp"
#include "grid/node.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "util/error.hpp"

namespace grads::grid {

/// Raised when a transfer is attempted across a link that is down (network
/// partition). Callers with a degraded-mode path catch this and retry with
/// backoff — partitions heal — instead of dying on first contact.
class LinkDownError : public Error {
 public:
  explicit LinkDownError(const std::string& what) : Error(what) {}
};

/// A network link (WAN pipe or cluster switch). Bandwidth is divided among
/// the flows crossing the link by the grid's FlowRegistry (weighted max-min
/// fair shares); perFlowCap bounds any single flow (a switched LAN gives
/// each pair its own wire speed even though the backplane is larger).
struct LinkSpec {
  std::string name;
  double latencySec = 0.0;
  double bandwidthBytesPerSec = 1e6;
  double perFlowCapBytesPerSec = sim::kInfTime;
};

class Link {
 public:
  Link(FlowRegistry& flows, LinkId id, LinkSpec spec);
  LinkId id() const { return id_; }
  const LinkSpec& spec() const { return spec_; }
  double latency() const { return spec_.latencySec; }
  /// Bandwidth a new flow would get right now (bytes/s); 0 while down.
  double availableBandwidth() const;

  /// Partition state: a down link refuses new transfers (LinkDownError);
  /// flows already streaming keep draining at the degraded rate.
  void setUp(bool up) { up_ = up; }
  bool isUp() const { return up_; }

  /// Scales deliverable bandwidth to `scale`·nominal (0 < scale <= 1) —
  /// a congested or flapping WAN path; every flow sharing the link is
  /// re-shared at the new capacity. 1.0 restores the full spec rate.
  void setBandwidthScale(double scale);
  double bandwidthScale() const { return scale_; }

 private:
  LinkId id_;
  LinkSpec spec_;
  bool up_ = true;
  double scale_ = 1.0;
  FlowRegistry* flows_;
};

/// Cluster of nodes sharing a LAN switch.
struct ClusterSpec {
  std::string name;
  std::string site;  ///< e.g. "UTK", "UIUC", "UCSD", "UH"
  LinkSpec lan;
};

struct Cluster {
  ClusterId id = kNoId;
  std::string name;
  std::string site;
  LinkId lan = kNoId;
  std::vector<NodeId> nodes;
};

/// Resolved route between two nodes.
struct Route {
  std::vector<LinkId> links;  ///< in order; empty for same-node transfers
  double latencySec = 0.0;
};

/// The Grid resource fabric: nodes grouped into clusters, clusters joined by
/// WAN links, with BFS routing across the cluster graph. This plays the role
/// of the paper's MacroGrid testbed (and, wrapped by grads::microgrid, of the
/// MicroGrid's virtual resource infrastructure).
class Grid : public core::Snapshottable {
 public:
  explicit Grid(sim::Engine& engine);
  Grid(const Grid&) = delete;
  Grid& operator=(const Grid&) = delete;

  /// Snapshot participation. Topology (clusters, nodes, links, specs) is
  /// *configuration*, rebuilt by re-running the scenario's testbed builder;
  /// the snapshot carries only mutable fabric state (link up/scale, flow-
  /// registry configuration and counters) plus the topology counts, which
  /// decode validates against the rebuilt grid. Background CPU load is
  /// deliberately excluded: PsResource job lists are coroutine-held and are
  /// re-armed from their LoadTrace (see applyLoadTraceFrom) at restore;
  /// active network flows likewise live in coroutine frames and restart
  /// from checkpoints.
  const char* snapshotSection() const override { return "grid.fabric"; }
  void encodeState(core::SnapshotWriter& w) const override;
  void decodeState(core::SnapshotReader& r) override;

  sim::Engine& engine() const { return *engine_; }

  ClusterId addCluster(ClusterSpec spec);
  NodeId addNode(ClusterId cluster, NodeSpec spec);
  /// Adds a WAN link and records it as the route between the two clusters.
  LinkId connectClusters(ClusterId a, ClusterId b, LinkSpec spec);

  std::size_t nodeCount() const { return nodes_.size(); }
  std::size_t linkCount() const { return links_.size(); }
  std::size_t clusterCount() const { return clusters_.size(); }
  Node& node(NodeId id);
  const Node& node(NodeId id) const;
  Link& link(LinkId id);
  const Link& link(LinkId id) const;
  const Cluster& cluster(ClusterId id) const;
  const std::vector<NodeId>& clusterNodes(ClusterId id) const;
  std::optional<ClusterId> findCluster(const std::string& name) const;
  std::optional<NodeId> findNode(const std::string& name) const;
  std::vector<NodeId> allNodes() const;

  /// Resolves the route between two nodes (BFS over the cluster graph).
  Route route(NodeId src, NodeId dst) const;

  /// True when every link on the route between the two nodes is up.
  bool routeUp(NodeId src, NodeId dst) const;

  /// Moves `bytes` from src to dst: pays route latency once, then streams
  /// as one flow at the route's max-min bottleneck share, re-solved as
  /// competing flows come and go. Bulk-class transfers yield bandwidth to
  /// interactive ones on contended links (FlowRegistry pacing).
  sim::Task transfer(NodeId src, NodeId dst, double bytes,
                     TransferClass cls = TransferClass::kInteractive);

  /// Uncontended estimate of transfer(src,dst,bytes) in seconds; what a
  /// scheduler computes from NWS forecasts of latency and bandwidth.
  double transferEstimate(NodeId src, NodeId dst, double bytes) const;

  /// Estimate using the share the flow registry would actually allocate a
  /// new flow over the route right now (contended bandwidth, clamped by
  /// every link's per-flow cap). Infinite when the route is partitioned.
  double transferEstimateNow(NodeId src, NodeId dst, double bytes) const;

  /// The flow-level network model behind transfer(): congestion gauges,
  /// pacing configuration, ablation modes.
  FlowRegistry& flows() { return *flows_; }
  const FlowRegistry& flows() const { return *flows_; }

 private:
  sim::Engine* engine_;  // grads: transient(wiring, re-bound at construction)
  // Declared before links_: every Link holds a pointer into the registry.
  std::unique_ptr<FlowRegistry> flows_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<Cluster> clusters_;
  // grads: transient(route index rebuilt by the testbed builder - only dynamic link state is decoded)
  std::map<std::pair<ClusterId, ClusterId>, LinkId> wan_;
};

}  // namespace grads::grid

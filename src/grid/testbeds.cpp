#include "grid/testbeds.hpp"

namespace grads::grid {

namespace {
constexpr double kMB = 1024.0 * 1024.0;

NodeSpec baseSpec(std::string name, double mhz, int cpus, double flopsPerCycle,
                  double efficiency, Arch arch = Arch::kIA32) {
  NodeSpec s;
  s.name = std::move(name);
  s.mhz = mhz;
  s.cpus = cpus;
  s.flopsPerCycle = flopsPerCycle;
  s.efficiency = efficiency;
  s.arch = arch;
  return s;
}
}  // namespace

NodeSpec utkQrNodeSpec(int index) {
  // 933 MHz dual P-III. Sustained ScaLAPACK efficiency on 100 Mb switched
  // Ethernet in the 2003 testbed era was low (~12% of peak) — calibrated so
  // Figure 3's run times land in the paper's range.
  auto s = baseSpec("utk" + std::to_string(index), 933.0, 2, 1.0, 0.12);
  s.memBytes = 1024.0 * kMB;
  s.cache = CacheGeometry{256 * 1024, 32, 8};  // P-III Coppermine L2
  return s;
}

NodeSpec uiucQrNodeSpec(int index) {
  // 450 MHz P-II on Myrinet: slower CPU but much better network lets the
  // library sustain a larger fraction of peak (~22%).
  auto s = baseSpec("uiuc" + std::to_string(index), 450.0, 1, 1.0, 0.22);
  s.memBytes = 512.0 * kMB;
  s.cache = CacheGeometry{512 * 1024, 32, 4};  // P-II Deschutes L2
  return s;
}

NodeSpec utkSwapNodeSpec(int index) {
  auto s = baseSpec("utk" + std::to_string(index), 550.0, 1, 1.0, 0.45);
  s.cache = CacheGeometry{512 * 1024, 32, 4};
  return s;
}

NodeSpec uiucSwapNodeSpec(int index) {
  auto s = baseSpec("uiuc" + std::to_string(index), 450.0, 1, 1.0, 0.45);
  s.cache = CacheGeometry{512 * 1024, 32, 4};
  return s;
}

NodeSpec ucsdAthlonSpec(int index) {
  auto s = baseSpec("ucsd" + std::to_string(index), 1700.0, 1, 2.0, 0.40);
  s.cache = CacheGeometry{256 * 1024, 64, 16};
  return s;
}

NodeSpec ia64NodeSpec(int index) {
  // Itanium 2 class: 900 MHz, 4 flops/cycle FMA pipes, large L3.
  auto s = baseSpec("ia64-" + std::to_string(index), 900.0, 1, 4.0, 0.55,
                    Arch::kIA64);
  s.memBytes = 2048.0 * kMB;
  s.cache = CacheGeometry{3 * 1024 * 1024, 128, 12};
  return s;
}

LinkSpec fastEthernetLan(const std::string& name, int nodes) {
  LinkSpec l;
  l.name = name;
  l.latencySec = 100e-6;
  l.perFlowCapBytesPerSec = 12.5 * kMB;                    // 100 Mb/s
  l.bandwidthBytesPerSec = 12.5 * kMB * std::max(1, nodes / 2);
  return l;
}

LinkSpec myrinetLan(const std::string& name, int nodes) {
  LinkSpec l;
  l.name = name;
  l.latencySec = 10e-6;
  l.perFlowCapBytesPerSec = 160.0 * kMB;                   // 1.28 Gb/s
  l.bandwidthBytesPerSec = 160.0 * kMB * std::max(1, nodes / 2);
  return l;
}

LinkSpec gigabitLan(const std::string& name, int nodes) {
  LinkSpec l;
  l.name = name;
  l.latencySec = 50e-6;
  l.perFlowCapBytesPerSec = 125.0 * kMB;                   // 1 Gb/s
  l.bandwidthBytesPerSec = 125.0 * kMB * std::max(1, nodes / 2);
  return l;
}

LinkSpec internetWan(const std::string& name, double latencySec,
                     double bandwidthBytesPerSec) {
  LinkSpec l;
  l.name = name;
  l.latencySec = latencySec;
  l.bandwidthBytesPerSec = bandwidthBytesPerSec;
  l.perFlowCapBytesPerSec = bandwidthBytesPerSec;  // one shared pipe
  return l;
}

QrTestbed buildQrTestbed(Grid& grid) {
  QrTestbed tb;
  tb.utk = grid.addCluster(
      ClusterSpec{"utk", "UTK", fastEthernetLan("utk.lan", 4)});
  tb.uiuc =
      grid.addCluster(ClusterSpec{"uiuc", "UIUC", myrinetLan("uiuc.lan", 8)});
  for (int i = 0; i < 4; ++i) {
    tb.utkNodes.push_back(grid.addNode(tb.utk, utkQrNodeSpec(i)));
  }
  for (int i = 0; i < 8; ++i) {
    tb.uiucNodes.push_back(grid.addNode(tb.uiuc, uiucQrNodeSpec(i)));
  }
  // Abilene-era campus-to-campus Internet path: ~11 ms, ~1.2 MB/s sustained
  // (calibrated so the N=8000 actual rescheduling cost lands near the
  // paper's ~420 s).
  grid.connectClusters(tb.utk, tb.uiuc,
                       internetWan("utk-uiuc.wan", 0.011, 1.2 * kMB));
  return tb;
}

SwapTestbed buildSwapTestbed(Grid& grid) {
  SwapTestbed tb;
  tb.utk =
      grid.addCluster(ClusterSpec{"utk", "UTK", gigabitLan("utk.lan", 3)});
  tb.uiuc =
      grid.addCluster(ClusterSpec{"uiuc", "UIUC", gigabitLan("uiuc.lan", 3)});
  tb.ucsd =
      grid.addCluster(ClusterSpec{"ucsd", "UCSD", gigabitLan("ucsd.lan", 1)});
  for (int i = 0; i < 3; ++i) {
    tb.utkNodes.push_back(grid.addNode(tb.utk, utkSwapNodeSpec(i)));
    tb.uiucNodes.push_back(grid.addNode(tb.uiuc, uiucSwapNodeSpec(i)));
  }
  tb.ucsdNode = grid.addNode(tb.ucsd, ucsdAthlonSpec(0));
  grid.connectClusters(tb.utk, tb.uiuc,
                       internetWan("utk-uiuc.wan", 0.011, 2.0 * kMB));
  grid.connectClusters(tb.ucsd, tb.utk,
                       internetWan("ucsd-utk.wan", 0.030, 2.0 * kMB));
  grid.connectClusters(tb.ucsd, tb.uiuc,
                       internetWan("ucsd-uiuc.wan", 0.030, 2.0 * kMB));
  return tb;
}

MacroGrid buildMacroGrid(Grid& grid) {
  MacroGrid mg;
  const ClusterId ucsd = grid.addCluster(
      ClusterSpec{"ucsd", "UCSD", fastEthernetLan("ucsd.lan", 10)});
  for (int i = 0; i < 10; ++i) grid.addNode(ucsd, ucsdAthlonSpec(i));

  const ClusterId utkA = grid.addCluster(
      ClusterSpec{"utk-a", "UTK", fastEthernetLan("utk-a.lan", 12)});
  const ClusterId utkB = grid.addCluster(
      ClusterSpec{"utk-b", "UTK", fastEthernetLan("utk-b.lan", 12)});
  for (int i = 0; i < 12; ++i) {
    grid.addNode(utkA, utkQrNodeSpec(i));
    grid.addNode(utkB, utkQrNodeSpec(12 + i));
  }

  const ClusterId uiucA = grid.addCluster(
      ClusterSpec{"uiuc-a", "UIUC", myrinetLan("uiuc-a.lan", 12)});
  const ClusterId uiucB = grid.addCluster(
      ClusterSpec{"uiuc-b", "UIUC", myrinetLan("uiuc-b.lan", 12)});
  for (int i = 0; i < 12; ++i) {
    grid.addNode(uiucA, uiucQrNodeSpec(i));
    grid.addNode(uiucB, uiucQrNodeSpec(12 + i));
  }

  const ClusterId uh = grid.addCluster(
      ClusterSpec{"uh", "UH", fastEthernetLan("uh.lan", 24)});
  for (int i = 0; i < 24; ++i) {
    auto s = baseSpec("uh" + std::to_string(i), 700.0, 1, 1.0, 0.45);
    grid.addNode(uh, s);
  }

  mg.clusters = {ucsd, utkA, utkB, uiucA, uiucB, uh};
  // Campus mesh over the Internet; latencies from the paper where given
  // (UTK↔UIUC 11 ms, UCSD↔others 30 ms), typical values elsewhere.
  auto wan = [&](ClusterId a, ClusterId b, const std::string& n, double lat,
                 double bw) { grid.connectClusters(a, b, internetWan(n, lat, bw)); };
  const double kBw = 1.8 * kMB;
  wan(ucsd, utkA, "ucsd-utk.wan", 0.030, kBw);
  wan(ucsd, uiucA, "ucsd-uiuc.wan", 0.030, kBw);
  wan(ucsd, uh, "ucsd-uh.wan", 0.025, kBw);
  wan(utkA, utkB, "utk-ab.wan", 0.001, 12.0 * kMB);  // same campus
  wan(utkA, uiucA, "utk-uiuc.wan", 0.011, kBw);
  wan(utkA, uh, "utk-uh.wan", 0.018, kBw);
  wan(uiucA, uiucB, "uiuc-ab.wan", 0.001, 12.0 * kMB);
  wan(uiucA, uh, "uiuc-uh.wan", 0.020, kBw);
  return mg;
}

EmanTestbed buildEmanTestbed(Grid& grid) {
  EmanTestbed tb;
  tb.macro = buildMacroGrid(grid);
  tb.ia64 = grid.addCluster(
      ClusterSpec{"ia64", "UH", gigabitLan("ia64.lan", 8)});
  for (int i = 0; i < 8; ++i) grid.addNode(tb.ia64, ia64NodeSpec(i));
  grid.connectClusters(tb.ia64, tb.macro.clusters[5],
                       internetWan("ia64-uh.wan", 0.001, 12.0 * kMB));
  return tb;
}

}  // namespace grads::grid

#include "core/cop.hpp"

#include <map>

#include "util/error.hpp"

namespace grads::core {

double AppPerfModel::totalSeconds(const std::vector<grid::NodeId>& mapping,
                                  const services::Nws* nws,
                                  RateView view) const {
  return remainingSeconds(mapping, 0, nws, view);
}

double AppPerfModel::remainingSeconds(const std::vector<grid::NodeId>& mapping,
                                      std::size_t fromPhase,
                                      const services::Nws* nws,
                                      RateView view) const {
  double total = 0.0;
  for (std::size_t p = fromPhase; p < totalPhases(); ++p) {
    total += phaseSeconds(mapping, p, nws, view);
  }
  return total;
}

BestClusterMapper::BestClusterMapper(const grid::Grid& grid,
                                     const AppPerfModel& model,
                                     std::size_t phaseHorizon)
    : grid_(&grid), model_(&model), horizon_(phaseHorizon) {}

std::vector<grid::NodeId> BestClusterMapper::chooseMapping(
    const std::vector<grid::NodeId>& available,
    const services::Nws* nws) const {
  GRADS_REQUIRE(!available.empty(), "BestClusterMapper: no resources");
  // Group available nodes by cluster; one rank per CPU.
  std::map<grid::ClusterId, std::vector<grid::NodeId>> byCluster;
  for (const auto id : available) {
    auto& ranks = byCluster[grid_->node(id).cluster()];
    for (int cpu = 0; cpu < grid_->node(id).spec().cpus; ++cpu) {
      ranks.push_back(id);
    }
  }
  double bestTime = 0.0;
  const std::vector<grid::NodeId>* best = nullptr;
  for (const auto& [cluster, mapping] : byCluster) {
    (void)cluster;
    double t = 0.0;
    if (horizon_ > 0) {
      for (std::size_t p = 0; p < std::min(horizon_, model_->totalPhases());
           ++p) {
        t += model_->phaseSeconds(mapping, p, nws, RateView::kNewProcess);
      }
    } else {
      t = model_->totalSeconds(mapping, nws, RateView::kNewProcess);
    }
    if (best == nullptr || t < bestTime) {
      bestTime = t;
      best = &mapping;
    }
  }
  GRADS_ASSERT(best != nullptr, "BestClusterMapper: no candidate mapping");
  return *best;
}

}  // namespace grads::core

#pragma once

#include "core/cop.hpp"
#include "services/gis.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace grads::core {

/// Raised when a scheduled node lacks required software.
class BindError : public Error {
 public:
  explicit BindError(const std::string& what) : Error(what) {}
};

struct BinderOptions {
  double gisQuerySec = 0.4;      ///< one GIS lookup round-trip
  double instrumentSec = 0.8;    ///< Autopilot sensor insertion per node
  double configureSec = 1.0;     ///< per-node configure step
  double compileSecIa32 = 4.0;   ///< compile the IR on an IA-32 node
  double compileSecIa64 = 6.5;   ///< IA-64 compiles are slower
};

struct BindReport {
  double seconds = 0.0;   ///< wall time of the whole distributed bind
  int nodesBound = 0;
};

/// The distributed GrADS binder (paper §2). The global binder queries the
/// GIS for the local binder and library locations on every scheduled node,
/// then runs a local binder process per node — in parallel — which
/// instruments the code with Autopilot sensors and configures/compiles the
/// intermediate representation *on the target machine*, which is what makes
/// heterogeneous (IA-32 + IA-64) resource sets work.
class Binder {
 public:
  Binder(sim::Engine& engine, const services::Gis& gis);
  Binder(sim::Engine& engine, const services::Gis& gis, BinderOptions options);

  /// Binds the COP onto the mapping; throws BindError if any node lacks the
  /// local binder or a required library. Fills `report` if non-null.
  sim::Task bind(const Cop& cop, std::vector<grid::NodeId> mapping,
                 BindReport* report);

 private:
  sim::Task localBind(grid::NodeId node, std::size_t libraries);

  sim::Engine* engine_;
  const services::Gis* gis_;
  BinderOptions opts_;
};

}  // namespace grads::core

#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "autopilot/contract.hpp"
#include "core/binder.hpp"
#include "core/cop.hpp"
#include "core/snapshot.hpp"
#include "reschedule/failure.hpp"
#include "reschedule/governor.hpp"
#include "reschedule/journal.hpp"
#include "reschedule/rescheduler.hpp"
#include "reschedule/scrubber.hpp"
#include "services/ibp.hpp"
#include "util/retry.hpp"

namespace grads::core {

struct ManagerOptions {
  /// Modeled service times of the Grid-side steps — the left-hand stacked
  /// segments of Figure 3.
  double resourceSelectionSec = 4.0;  ///< GIS queries + candidate filtering
  double perfModelingSec = 6.0;       ///< evaluating the COP model/mapper
  double appStartPerRankSec = 0.4;    ///< spawn + MPI global sync per rank

  bool monitorContract = true;
  autopilot::ContractMonitor::Options contract;
  /// Mark this app's nodes unavailable in the GIS while it runs, so other
  /// application managers do not co-schedule onto them (exclusive
  /// space-sharing; needed for opportunistic-rescheduling scenarios).
  bool reserveNodes = false;
  /// Stable storage node for SRS checkpoints (kNoId = each rank's local
  /// depot). Required when fail-stop fault tolerance is exercised.
  grid::NodeId stableDepot = grid::kNoId;
  /// Failure injector to register this app's RSS daemon with (fail-stop
  /// notifications reach the app through it); may be null.
  reschedule::FailureInjector* failures = nullptr;
  /// Contract-Viewer recorder for this app's contract activity; may be null.
  autopilot::ContractViewer* viewer = nullptr;

  // --- Degraded-mode mitigations. ---
  /// Launch retry: how often the manager re-runs resource selection +
  /// binding when the candidate set is empty or a mapped node turns out to
  /// be unreachable (stale GIS entry). The budget resets after every
  /// successful launch. `RetryPolicy::none()` restores fail-fast behavior.
  util::RetryPolicy launchRetry;
  /// Depot retry for SRS checkpoint reads during restore (backoff between
  /// attempts while a depot is dark). Default: no retries.
  util::RetryPolicy depotRetry = util::RetryPolicy::none();
  /// Seed for the retry-jitter Rng (campaigns stay deterministic).
  std::uint64_t retrySeed = 0x9e3779b9ULL;
  /// Second depot every checkpoint object is mirrored to (kNoId = no
  /// replica): a single depot outage then cannot strand the application.
  grid::NodeId replicaDepot = grid::kNoId;
  /// Consecutive failed restores tolerated before the manager abandons the
  /// checkpoint and restarts from scratch.
  int maxRestoreFailures = 2;

  // --- Checkpoint integrity. ---
  /// Verify restored slices (and restore pre-flights) against the RSS
  /// manifest. Off = the raw ablation: restores trust whatever the depot
  /// serves and corrupt reads are only counted, never avoided.
  bool verifyCheckpoints = true;
  /// Raise the depot write fence to the new incarnation's epoch at each
  /// launch, so a zombie of an earlier incarnation cannot overwrite
  /// checkpoint objects. Off = raw ablation.
  bool fenceWrites = true;
  /// Period of the background depot scrubber re-replicating corrupt or
  /// missing checkpoint copies; 0 = no scrubbing.
  double scrubPeriodSec = 0.0;

  // --- Transactional rescheduling. ---
  /// Action journal for two-phase migrations. When set (and also handed to
  /// the rescheduler via setJournal), every migrate runs prepare → commit →
  /// finalize: the manager validates the stop checkpoint, stages the target
  /// mapping, commits when the last rank restores on the new nodes, and on
  /// any fault before that point rolls back and relaunches on the journaled
  /// prior mapping. May be null (untracked migrations, the seed behavior).
  reschedule::ActionJournal* journal = nullptr;
  /// Anti-thrash governor consulted before a confirmed violation reaches
  /// the rescheduler; a non-admit verdict returns kSuppressed (tolerances
  /// unchanged). May be null: violations pass straight through.
  reschedule::ViolationGovernor* governor = nullptr;

  // --- Metascheduler coordination. ---
  /// Awaited at the top of every launch iteration (initial and relaunch).
  /// A frontend closes this gate to park a checkpointed app off its nodes
  /// and opens it to resume; null = launch immediately (seed behavior).
  std::function<sim::Task(const std::string&)> relaunchGate;
};

/// Per-run accounting matching Figure 3's stacked bars; one entry per
/// incarnation (index 0 = initial execution, 1 = after first migration...).
struct RunBreakdown {
  std::vector<double> resourceSelection;
  std::vector<double> perfModeling;
  std::vector<double> gridOverhead;   ///< distributed binder
  std::vector<double> appStart;
  std::vector<double> appDuration;    ///< pure application execution
  std::vector<double> checkpointWrite;
  std::vector<double> checkpointRead;
  std::vector<std::vector<grid::NodeId>> mappings;
  double totalSeconds = 0.0;
  int incarnations = 0;
  int launchFailures = 0;   ///< empty candidate sets + stale-GIS bind failures
  int restoreFailures = 0;  ///< incarnations aborted on unreadable checkpoint
  int corruptRestores = 0;     ///< incarnations restored from corrupt data
  int corruptSliceReads = 0;   ///< slices delivered that defy the manifest
  int integrityRejects = 0;    ///< copies rejected by restore verification
  int staleWriteRejects = 0;   ///< zombie checkpoint writes fenced out
  int scrubRepairs = 0;        ///< scrubber re-replications
  int scrubUnrepairable = 0;   ///< slices the scrubber found no good copy for
  int actionsOpened = 0;       ///< journaled rescheduling actions this run
  int actionsCommitted = 0;    ///< actions that reached their commit point
  int actionsRolledBack = 0;   ///< actions resolved back to the prior mapping
  int violationsSuppressed = 0;///< confirmed violations the governor held
  int admissionRetries = 0;    ///< frontend resubmits after a shed (retry-after)
  int admissionSheds = 0;      ///< admission-controller rejections of this app
  int preemptParks = 0;        ///< checkpoint-and-park cycles forced on this app
  int brownoutDeferrals = 0;   ///< dispatch opportunities lost to brownout
  // --- What-if forked rescheduling (driver-wide totals at run end; the
  // --- driver is shared across apps, so these are control-plane gauges).
  int whatifDecisions = 0;     ///< governed violations routed through forks
  int whatifForks = 0;         ///< sandboxed futures executed
  int whatifFallbacks = 0;     ///< decisions degraded to the model-only path
  int whatifOverrides = 0;     ///< fork verdicts contradicting the model
  int whatifDivergences = 0;   ///< realized outcomes defying the prediction
  /// Background daemons re-armed for this app after a control-plane restart
  /// (scrubber tick chain, contract-monitor listener). Each re-arms exactly
  /// once per restore — the arm-once guards make a double restore protocol
  /// visible here instead of silently doubling daemon cadence.
  int daemonRearms = 0;

  double sumSegment(const std::vector<double>& v) const;
};

/// The GrADS application manager: drives the iterative runtime process of
/// Figure 1 — resource selection, performance modeling, binding, launching,
/// contract monitoring, and (via the rescheduler + RSS/SRS) stop/migrate/
/// restart cycles until the application completes.
///
/// It is also the snapshot coordinator for control-plane crash-restart
/// (DESIGN.md, snapshot/restore invariants): it owns the component registry,
/// contributes its own "core.apps" section (the completed-apps set plus each
/// live run's RSS ledger, contract-monitor band, and scrubber totals), and
/// hands decoded per-app resume records to the next run() of each app.
/// Coroutine frames are never serialized — a restored app relaunches from
/// its SRS checkpoint ledger at a quiescent boundary, and every background
/// daemon is re-armed exactly once by that relaunch.
class AppManager : public core::Snapshottable {
 public:
  AppManager(grid::Grid& grid, services::Gis& gis, const services::Nws* nws,
             services::Ibp& ibp, autopilot::AutopilotManager& autopilot);

  /// Runs the COP to completion. `rescheduler` may be null (no rescheduling:
  /// contract violations are logged but nothing migrates).
  sim::Task run(const Cop& cop,
                reschedule::StopRestartRescheduler* rescheduler,
                ManagerOptions options, RunBreakdown* out);

  /// Requests a checkpoint-and-stop of a live run (the metascheduler's
  /// preemption path rides the same RSS stop protocol the rescheduler
  /// uses). Returns false when the app has no live incarnation — the
  /// caller must not assume the stop was delivered.
  bool requestStop(const std::string& app);

  // --- Whole-simulation snapshot/restore. ---

  /// Component registry for whole-simulation snapshots. The harness
  /// registers every Snapshottable control-plane component here (grid
  /// fabric, GIS, NWS, IBP, journal, governor, Autopilot); the manager
  /// registers itself at construction.
  core::SnapshotRegistry& snapshots() { return registry_; }

  /// Captures every registered component right now (a quiescent boundary:
  /// the engine is between events whenever user code runs).
  core::SnapshotImage snapshotNow();

  using SnapshotSink = std::function<void(core::SnapshotImage)>;
  /// One-shot capture at absolute time `t` (a daemon event — it never keeps
  /// the simulation alive).
  void snapshotAt(double t, SnapshotSink sink);
  /// Periodic capture every `periodSec`. Arm-once guarded like the depot
  /// scrubber: a second call is a no-op returning false, so a sloppy
  /// restore protocol cannot double the snapshot cadence.
  bool armSnapshotDaemon(double periodSec, SnapshotSink sink);
  bool snapshotDaemonArmed() const { return snapshotArmed_; }
  std::size_t snapshotsTaken() const { return snapshotsTaken_; }

  /// Who a restore is for. The live control plane restores exactly once — a
  /// second restore would silently fork live state from the image. Sandbox
  /// control planes (the what-if fork driver's ephemeral futures) restore
  /// the *same* image onto many fresh worlds; each sandbox manager is still
  /// a new object, but the kind documents intent and lets one manager host
  /// repeated speculative restores without loosening the live guard.
  enum class RestoreKind { kLive, kSandbox };

  /// Restores every registered component from the image. Must run on a
  /// freshly rebuilt control plane, at the image's simulation time, before
  /// any application is (re)launched: decoding leaves per-app resume
  /// records that the next run() of each app adopts. Guarded for kLive: a
  /// second live restore on the same manager throws (live state would
  /// silently fork from the image); kSandbox restores repeat freely.
  void restoreFrom(const core::SnapshotImage& image,
                   RestoreKind kind = RestoreKind::kLive);

  /// True if a decoded resume record is waiting for this app's relaunch.
  bool hasResumeState(const std::string& app) const;
  /// True if the restored image recorded this app as completed (the
  /// restore protocol must not respawn it).
  bool isCompleted(const std::string& app) const;

  const char* snapshotSection() const override { return "core.apps"; }
  void encodeState(core::SnapshotWriter& w) const override;
  void decodeState(core::SnapshotReader& r) override;

 private:
  /// Live-run state registered by a run() frame for the snapshot encoder.
  struct AppRuntime {
    reschedule::Rss* rss = nullptr;
    const std::unique_ptr<autopilot::ContractMonitor>* monitor = nullptr;
    const reschedule::DepotScrubber* scrubber = nullptr;
  };
  /// Shared with run() frames' registration guards (same pattern as
  /// DepotScrubber::State): a frame torn down during engine destruction —
  /// when the manager itself may already be gone — still erases its entry
  /// from a map that outlives the manager.
  using LiveMap = std::map<std::string, AppRuntime>;

  /// Decoded per-app state waiting for the app's relaunch.
  struct ResumeRecord {
    reschedule::Rss rss;
    bool hasMonitor = false;
    double monUpper = 0.0;
    double monLower = 0.0;
    std::size_t monPhase = 0;
    std::size_t monViolations = 0;
    double monLastRatio = 1.0;
    std::deque<double> monRatios;
    reschedule::DepotScrubber::Stats scrubStats;
  };

  void scheduleSnapshotTick(double periodSec);
  std::optional<ResumeRecord> takeResume(const std::string& app);

  grid::Grid* grid_;         // grads: transient(wiring, re-bound at construction)
  services::Gis* gis_;       // grads: transient(wiring, re-bound at construction)
  const services::Nws* nws_; // grads: transient(wiring, re-bound at construction)
  services::Ibp* ibp_;       // grads: transient(wiring, re-bound at construction)
  autopilot::AutopilotManager* autopilot_;  // grads: transient(wiring, re-bound at construction)

  // grads: transient(section registry, rebuilt as services re-register at construction)
  core::SnapshotRegistry registry_;
  std::shared_ptr<LiveMap> live_ = std::make_shared<LiveMap>();
  std::set<std::string> completed_;
  std::map<std::string, ResumeRecord> resume_;
  SnapshotSink snapshotSink_;  // grads: transient(sink callback, re-registered by the driver)
  bool snapshotArmed_ = false; // grads: transient(arm-once daemon flag - restore re-arms explicitly)
  bool restoredOnce_ = false;  // grads: transient(runtime restore marker, meaningful only within one process life)
  std::size_t snapshotsTaken_ = 0;  // grads: transient(diagnostic counter, not logical state)
};

}  // namespace grads::core

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "autopilot/sensor.hpp"
#include "grid/grid.hpp"
#include "services/nws.hpp"
#include "sim/task.hpp"
#include "vmpi/world.hpp"

// The launch context only carries a pointer to the stop/restart service;
// including reschedule/srs.hpp here would invert the layering DAG (the
// rescheduler sits above the launch pipeline it drives — lint rule R8).
namespace grads::reschedule {
class Srs;
}

namespace grads::core {

/// Per-incarnation execution context handed to the application code by the
/// launcher. Outputs (`stopped`, `completedPhases`) are written by the app.
struct LaunchContext {
  std::string appName;
  vmpi::World* world = nullptr;
  reschedule::Srs* srs = nullptr;                 ///< null if no checkpointing
  autopilot::AutopilotManager* autopilot = nullptr;
  std::size_t startPhase = 0;   ///< resume point after a restart
  bool restored = false;        ///< read the checkpoint before computing

  bool stopped = false;         ///< set by the app when SRS stopped it
  std::size_t completedPhases = 0;
  /// Set with `stopped` when the incarnation aborted because its checkpoint
  /// could not be read (depot dark past the retry budget). The manager
  /// falls back to an older generation or restarts from scratch.
  bool restoreFailed = false;
};

/// The application body: one coroutine per MPI rank.
using AppCode = std::function<sim::Task(LaunchContext&, int rank)>;

/// How node rates are sampled when predicting on a mapping: an application
/// already *running* there keeps its incumbent CPU share, whereas a mapping
/// we would *migrate to* only gets what a newly arriving process would.
enum class RateView { kIncumbent, kNewProcess };

/// Executable performance model of a whole application on a candidate
/// resource set — one of the three pieces of a configurable object program
/// ("an executable performance model that estimates the application's
/// performance on a set of resources", paper §1).
class AppPerfModel {
 public:
  virtual ~AppPerfModel() = default;

  virtual std::size_t totalPhases() const = 0;

  /// Predicted duration of phase `phase` on `mapping`. When `nws` is given,
  /// the prediction accounts for current load (forecast effective rates,
  /// sampled per `view`); otherwise it assumes dedicated resources.
  virtual double phaseSeconds(const std::vector<grid::NodeId>& mapping,
                              std::size_t phase, const services::Nws* nws,
                              RateView view = RateView::kIncumbent) const = 0;

  virtual double totalSeconds(const std::vector<grid::NodeId>& mapping,
                              const services::Nws* nws,
                              RateView view = RateView::kIncumbent) const;

  /// Remaining time from (and including) `fromPhase`.
  virtual double remainingSeconds(const std::vector<grid::NodeId>& mapping,
                                  std::size_t fromPhase,
                                  const services::Nws* nws,
                                  RateView view = RateView::kIncumbent) const;
};

/// The COP's mapper: "determines how to map an application's tasks to a set
/// of resources". Returns one entry per MPI rank (a dual-CPU node may
/// appear twice).
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual std::vector<grid::NodeId> chooseMapping(
      const std::vector<grid::NodeId>& available,
      const services::Nws* nws) const = 0;
};

/// A configurable object program: application code + mapper + performance
/// model (paper §1), plus the binder's software requirements and the data
/// the SRS library checkpoints.
struct Cop {
  std::string name;
  AppCode code;
  std::shared_ptr<AppPerfModel> perfModel;
  std::shared_ptr<Mapper> mapper;
  std::vector<std::string> requiredSoftware;
  /// Registered checkpoint payload (e.g. the QR matrix A and rhs B).
  std::vector<std::pair<std::string, double>> checkpointArrays;
  bool isMpi = true;  ///< MPI apps need the launch-time global sync (§2)
};

/// Cluster-affine mapper: evaluates each cluster as a candidate (all its
/// CPUs as ranks) with the COP performance model and picks the fastest —
/// how the GrADS scheduler chose the UTK cluster initially in §4.1.2.
class BestClusterMapper final : public Mapper {
 public:
  BestClusterMapper(const grid::Grid& grid, const AppPerfModel& model,
                    std::size_t phaseHorizon = 0);

  std::vector<grid::NodeId> chooseMapping(
      const std::vector<grid::NodeId>& available,
      const services::Nws* nws) const override;

 private:
  const grid::Grid* grid_;
  const AppPerfModel* model_;
  std::size_t horizon_;
};

}  // namespace grads::core

#include "core/app_manager.hpp"

#include <exception>
#include <numeric>
#include <set>

#include "reschedule/scrubber.hpp"
#include "reschedule/whatif/fork_driver.hpp"
#include "sim/sync.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::core {

double RunBreakdown::sumSegment(const std::vector<double>& v) const {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

AppManager::AppManager(grid::Grid& grid, services::Gis& gis,
                       const services::Nws* nws, services::Ibp& ibp,
                       autopilot::AutopilotManager& autopilot)
    : grid_(&grid), gis_(&gis), nws_(nws), ibp_(&ibp), autopilot_(&autopilot) {
  registry_.add(*this);
}

core::SnapshotImage AppManager::snapshotNow() {
  ++snapshotsTaken_;
  return registry_.capture(gis_->grid().engine().now());
}

void AppManager::snapshotAt(double t, SnapshotSink sink) {
  GRADS_REQUIRE(static_cast<bool>(sink), "AppManager::snapshotAt: empty sink");
  sim::Engine& eng = gis_->grid().engine();
  GRADS_REQUIRE(t >= eng.now(), "AppManager::snapshotAt: time in the past");
  eng.scheduleDaemonAt(t, [this, sink = std::move(sink)] {
    sink(snapshotNow());
  });
}

bool AppManager::armSnapshotDaemon(double periodSec, SnapshotSink sink) {
  GRADS_REQUIRE(periodSec > 0.0,
                "AppManager::armSnapshotDaemon: period must be > 0");
  GRADS_REQUIRE(static_cast<bool>(sink),
                "AppManager::armSnapshotDaemon: empty sink");
  if (snapshotArmed_) return false;  // arm-once: one capture chain, ever
  snapshotArmed_ = true;
  snapshotSink_ = std::move(sink);
  scheduleSnapshotTick(periodSec);
  return true;
}

void AppManager::scheduleSnapshotTick(double periodSec) {
  gis_->grid().engine().scheduleDaemon(periodSec, [this, periodSec] {
    snapshotSink_(snapshotNow());
    scheduleSnapshotTick(periodSec);
  });
}

void AppManager::restoreFrom(const core::SnapshotImage& image,
                             RestoreKind kind) {
  GRADS_REQUIRE(kind == RestoreKind::kSandbox || !restoredOnce_,
                "AppManager::restoreFrom: this manager already restored "
                "once; a second restore would fork live state from the image");
  registry_.restore(image);
  if (kind == RestoreKind::kLive) restoredOnce_ = true;
}

bool AppManager::hasResumeState(const std::string& app) const {
  return resume_.count(app) > 0;
}

bool AppManager::isCompleted(const std::string& app) const {
  return completed_.count(app) > 0;
}

bool AppManager::requestStop(const std::string& app) {
  const auto it = live_->find(app);
  if (it == live_->end() || it->second.rss == nullptr) return false;
  it->second.rss->requestStop();
  return true;
}

std::optional<AppManager::ResumeRecord> AppManager::takeResume(
    const std::string& app) {
  const auto it = resume_.find(app);
  if (it == resume_.end()) return std::nullopt;
  std::optional<ResumeRecord> rec(std::move(it->second));
  resume_.erase(it);
  return rec;
}

void AppManager::encodeState(core::SnapshotWriter& w) const {
  const auto putMonitor = [&w](bool present, double upper, double lower,
                               std::size_t phase, std::size_t violations,
                               double lastRatio,
                               const std::deque<double>& ratios) {
    w.putBool(present);
    if (!present) return;
    w.putF64(upper);
    w.putF64(lower);
    w.putU64(phase);
    w.putU64(violations);
    w.putF64(lastRatio);
    w.putU64(ratios.size());
    for (const double ratio : ratios) w.putF64(ratio);
  };
  const auto putScrub = [&w](const reschedule::DepotScrubber::Stats& s) {
    w.putI64(s.scans);
    w.putI64(s.slicesChecked);
    w.putI64(s.corruptFound);
    w.putI64(s.missingFound);
    w.putI64(s.repaired);
    w.putI64(s.unrepairable);
    w.putI64(s.deferred);
  };
  // One encoder for both live runs and still-unadopted resume records, so
  // a snapshot taken in the gap between restore and relaunch loses nothing.
  const auto putApp = [&](const std::string& name,
                          const reschedule::Rss& rss, bool monPresent,
                          double upper, double lower, std::size_t phase,
                          std::size_t violations, double lastRatio,
                          const std::deque<double>& ratios,
                          const reschedule::DepotScrubber::Stats& scrub) {
    w.putStr(name);
    rss.encodeState(w);
    putMonitor(monPresent, upper, lower, phase, violations, lastRatio,
               ratios);
    putScrub(scrub);
  };

  w.putU64(completed_.size());
  for (const auto& name : completed_) w.putStr(name);
  w.putU64(live_->size() + resume_.size());
  static const std::deque<double> kNoRatios;
  for (const auto& [name, rt] : *live_) {
    const autopilot::ContractMonitor* mon = rt.monitor->get();
    if (mon != nullptr) {
      putApp(name, *rt.rss, true, mon->upperTolerance(),
             mon->lowerTolerance(), mon->phasesSeen(),
             mon->violationsRaised(), mon->lastRatio(), mon->ratioWindow(),
             rt.scrubber->stats());
    } else {
      putApp(name, *rt.rss, false, 0.0, 0.0, 0, 0, 1.0, kNoRatios,
             rt.scrubber->stats());
    }
  }
  for (const auto& [name, rec] : resume_) {
    putApp(name, rec.rss, rec.hasMonitor, rec.monUpper, rec.monLower,
           rec.monPhase, rec.monViolations, rec.monLastRatio, rec.monRatios,
           rec.scrubStats);
  }
}

void AppManager::decodeState(core::SnapshotReader& r) {
  sim::Engine& eng = gis_->grid().engine();
  completed_.clear();
  resume_.clear();
  const auto nCompleted = r.getU64();
  for (std::uint64_t i = 0; i < nCompleted; ++i) completed_.insert(r.getStr());
  const auto nApps = r.getU64();
  for (std::uint64_t i = 0; i < nApps; ++i) {
    const auto name = r.getStr();
    ResumeRecord rec{reschedule::Rss(eng, name), false, 0.0, 0.0,
                     0,  0,    1.0, {}, {}};
    rec.rss.decodeState(r);
    rec.hasMonitor = r.getBool();
    if (rec.hasMonitor) {
      rec.monUpper = r.getF64();
      rec.monLower = r.getF64();
      rec.monPhase = static_cast<std::size_t>(r.getU64());
      rec.monViolations = static_cast<std::size_t>(r.getU64());
      rec.monLastRatio = r.getF64();
      const auto nRatios = r.getU64();
      for (std::uint64_t j = 0; j < nRatios; ++j) {
        rec.monRatios.push_back(r.getF64());
      }
    }
    rec.scrubStats.scans = static_cast<int>(r.getI64());
    rec.scrubStats.slicesChecked = static_cast<int>(r.getI64());
    rec.scrubStats.corruptFound = static_cast<int>(r.getI64());
    rec.scrubStats.missingFound = static_cast<int>(r.getI64());
    rec.scrubStats.repaired = static_cast<int>(r.getI64());
    rec.scrubStats.unrepairable = static_cast<int>(r.getI64());
    rec.scrubStats.deferred = static_cast<int>(r.getI64());
    resume_.emplace(name, std::move(rec));
  }
}

sim::Task AppManager::run(const Cop& cop,
                          reschedule::StopRestartRescheduler* rescheduler,
                          ManagerOptions options, RunBreakdown* out) {
  GRADS_REQUIRE(cop.code && cop.perfModel && cop.mapper,
                "AppManager::run: incomplete COP");
  sim::Engine& eng = gis_->grid().engine();
  const double runStart = eng.now();

  RunBreakdown breakdown;
  reschedule::Rss rss(eng, cop.name);
  std::size_t resumePhase = 0;
  bool restored = false;
  // Control-plane restart: adopt the resume record decoded from the
  // snapshot (if one waits for this app) before anything observes the RSS.
  // The relaunch itself then re-arms every per-app background daemon
  // exactly once — counted in breakdown.daemonRearms.
  auto resumeRec = takeResume(cop.name);
  const bool resumedFromSnapshot = resumeRec.has_value();
  if (resumedFromSnapshot) {
    rss = std::move(resumeRec->rss);
    restored = rss.hasCheckpoint();
    resumePhase = restored ? rss.storedIteration() : 0;
    GRADS_INFO("app-manager")
        << log::appAt(cop.name, eng.now())
        << "resuming from snapshot (incarnation " << rss.incarnation()
        << ", checkpoint iteration " << resumePhase << ")";
  }
  if (options.failures != nullptr) options.failures->watch(rss);
  int consecutiveRestoreFailures = 0;

  // Transactional rescheduling state. `priorMapping` is the journaled
  // rollback target of an aborted action; `rollbackToPrior` asks the next
  // launch to relaunch there instead of re-running the mapper.
  reschedule::ActionJournal* journal = options.journal;
  const int baseCommitted =
      journal != nullptr ? journal->committedFor(cop.name) : 0;
  const int baseRolledBack =
      journal != nullptr ? journal->rolledBackFor(cop.name) : 0;
  std::vector<grid::NodeId> priorMapping;
  bool rollbackToPrior = false;

  // The contract monitor persists across incarnations (its terms are
  // updated after each migration).
  std::unique_ptr<autopilot::ContractMonitor> monitor;

  // The depot scrubber also spans incarnations: corruption mostly bites
  // while the checkpoint sits idle between a stop and the restart.
  reschedule::DepotScrubber scrubber(eng, *ibp_, rss);
  if (resumedFromSnapshot) scrubber.adoptStats(resumeRec->scrubStats);
  if (options.scrubPeriodSec > 0.0 && scrubber.start(options.scrubPeriodSec) &&
      resumedFromSnapshot) {
    ++breakdown.daemonRearms;
  }

  // Register this run's live state for whole-simulation snapshots. The
  // guard shares the map, so a frame destroyed during engine teardown —
  // possibly after the manager itself is gone — still erases its entry
  // from storage that outlives both.
  struct LiveRegistration {
    std::shared_ptr<LiveMap> map;
    std::string name;
    ~LiveRegistration() { map->erase(name); }
  };
  live_->insert_or_assign(cop.name, AppRuntime{&rss, &monitor, &scrubber});
  LiveRegistration liveGuard{live_, cop.name};

  std::vector<std::string> arrayNames;
  for (const auto& [array, bytes] : cop.checkpointArrays) {
    (void)bytes;
    arrayNames.push_back(array);
  }

  // Launch retry budget: spans resource selection + binding of one launch
  // attempt chain, and is refilled after every successful launch.
  Rng launchRng(options.retrySeed ^ 0xa71aa71aULL);
  util::Retry launchRetry(options.launchRetry, &launchRng);

  while (true) {
    // --- Metascheduler gate (park latch). ---
    // A frontend holds parked apps here between checkpoint-and-stop and the
    // re-dispatch that reopens the gate; until then the app occupies no node
    // and consumes no Grid-side service time.
    if (options.relaunchGate) co_await options.relaunchGate(cop.name);

    // --- Resource selection (scheduler queries GIS/NWS). ---
    double t0 = eng.now();
    co_await sim::sleepFor(eng, options.resourceSelectionSec);
    const auto available = gis_->availableNodes();
    if (available.empty()) {
      // Degraded mode: every known node is down or reserved. Back off and
      // re-query the directory instead of aborting the run.
      ++breakdown.launchFailures;
      const auto delay = launchRetry.nextDelaySec();
      GRADS_REQUIRE(delay.has_value(),
                    "AppManager: no available resources (retries exhausted)");
      GRADS_WARN("app-manager") << cop.name
                                << ": no available resources, retrying in "
                                << *delay << " s";
      co_await sim::sleepFor(eng, *delay);
      continue;
    }
    breakdown.resourceSelection.push_back(eng.now() - t0);

    // --- Performance modeling + mapping. ---
    t0 = eng.now();
    co_await sim::sleepFor(eng, options.perfModelingSec);
    std::vector<grid::NodeId> mapping;
    if (rollbackToPrior && !priorMapping.empty()) {
      // A journaled action rolled back: resume on the pre-action nodes, not
      // on whatever the mapper likes today — that choice is what just
      // failed. Only if a prior node died too do we fall through.
      bool priorUp = true;
      for (const auto n : priorMapping) {
        priorUp = priorUp && gis_->isNodeReachable(n);
      }
      if (priorUp) {
        mapping = priorMapping;
        GRADS_INFO("app-manager")
            << log::appAt(cop.name, eng.now())
            << "rolled-back action: relaunching on prior mapping ("
            << mapping.size() << " ranks)";
      } else {
        GRADS_WARN("app-manager")
            << log::appAt(cop.name, eng.now())
            << "rollback target lost a node; remapping from scratch";
      }
    }
    rollbackToPrior = false;
    if (mapping.empty() && journal != nullptr) {
      if (const auto* rec = journal->openAction(cop.name);
          rec != nullptr && rec->pinned && !rec->target.empty()) {
        // A validated decision (what-if fork verdict or sandbox candidate
        // injection) pinned this action's target: launch exactly what the
        // forks validated instead of re-running selection — unless a pinned
        // node has since gone dark, in which case the pin is void and the
        // mapper chooses fresh.
        bool pinnedUp = true;
        for (const auto n : rec->target) {
          pinnedUp = pinnedUp && gis_->isNodeReachable(n);
        }
        if (pinnedUp) {
          mapping = rec->target;
          GRADS_INFO("app-manager")
              << log::appAt(cop.name, eng.now())
              << "pinned action #" << rec->id << ": launching on validated "
              << "target (" << mapping.size() << " ranks)";
        } else {
          GRADS_WARN("app-manager")
              << log::appAt(cop.name, eng.now()) << "pinned action #"
              << rec->id << " target lost a node; remapping from scratch";
        }
      }
    }
    if (mapping.empty()) mapping = cop.mapper->chooseMapping(available, nws_);
    GRADS_REQUIRE(!mapping.empty(), "AppManager: empty mapping");
    breakdown.perfModeling.push_back(eng.now() - t0);
    breakdown.mappings.push_back(mapping);
    GRADS_INFO("app-manager") << cop.name << ": incarnation "
                              << breakdown.mappings.size() << " on "
                              << mapping.size() << " ranks (first node "
                              << gis_->grid().node(mapping[0]).name() << ")";

    if (journal != nullptr) {
      if (const auto* rec = journal->openAction(cop.name)) {
        // Commit-phase selection may revise the prepare-time candidate once
        // fresh NWS data is in; the journal records what actually launches.
        journal->setTarget(rec->id, mapping);
      }
    }

    std::set<grid::NodeId> reserved;
    if (options.reserveNodes) {
      reserved.insert(mapping.begin(), mapping.end());
      for (const auto node : reserved) gis_->setNodeUp(node, false);
    }

    // --- Grid overhead: the distributed binder. ---
    BindReport bindReport;
    Binder binder(eng, *gis_);
    std::exception_ptr bindError;
    try {
      co_await binder.bind(cop, mapping, &bindReport);
    } catch (const BindError& e) {
      bindError = std::current_exception();
      GRADS_WARN("app-manager") << cop.name << ": launch failed ("
                                << e.what() << ")";
    }
    if (bindError) {
      // Launch failed — typically a stale GIS entry (a mapped node is in
      // truth unreachable). Push the truth into the directory so the next
      // selection avoids it, release the reservation, drop this attempt's
      // breakdown entries, and retry on a fresh mapping.
      for (const auto node : mapping) {
        if (!gis_->isNodeReachable(node)) gis_->setNodeUp(node, false);
      }
      for (const auto node : reserved) {
        if (gis_->isNodeReachable(node)) gis_->setNodeUp(node, true);
      }
      breakdown.resourceSelection.pop_back();
      breakdown.perfModeling.pop_back();
      breakdown.mappings.pop_back();
      ++breakdown.launchFailures;
      if (journal != nullptr) {
        if (const auto* rec = journal->openAction(cop.name)) {
          // The target mapping is unusable (a node died between selection
          // and bind): abort the migration and relaunch on the old nodes.
          priorMapping = rec->prior;
          rollbackToPrior = true;
          journal->rollback(rec->id, "bind failed on target mapping");
        }
      }
      const auto delay = launchRetry.nextDelaySec();
      if (!delay) std::rethrow_exception(bindError);
      co_await sim::sleepFor(eng, *delay);
      continue;
    }
    breakdown.gridOverhead.push_back(bindReport.seconds);
    launchRetry = util::Retry(options.launchRetry, &launchRng);

    // --- Application start (launch + MPI global synchronization, §2). ---
    t0 = eng.now();
    co_await sim::sleepFor(
        eng, options.appStartPerRankSec * static_cast<double>(mapping.size()));
    breakdown.appStart.push_back(eng.now() - t0);

    // --- Execute this incarnation. ---
    vmpi::World world(*grid_, mapping, cop.name);
    rss.beginIncarnation(static_cast<int>(mapping.size()));
    rss.setOccupiedNodes(mapping);
    if (options.fenceWrites) {
      // Epoch fencing: once the fence is at this incarnation, a zombie of
      // any earlier incarnation gets StaleEpochError instead of a write.
      ibp_->setFence(cop.name, rss.incarnation());
    }
    reschedule::Srs srs(*ibp_, rss, world);
    srs.setVerifyOnRestore(options.verifyCheckpoints);
    if (options.stableDepot != grid::kNoId) {
      srs.setStableDepot(options.stableDepot);
    }
    if (options.replicaDepot != grid::kNoId) {
      srs.setReplicaDepot(options.replicaDepot);
    }
    srs.setRetryPolicy(options.depotRetry, options.retrySeed ^ 0xdeb07ULL);
    for (const auto& [array, bytes] : cop.checkpointArrays) {
      srs.registerArray(array, bytes);
    }

    if (restored) {
      // Pre-flight: pick the newest generation whose every object is
      // readable right now (primary or replica). The newest ledger entry
      // may be gone — its depot dark or its objects lost with a dead node.
      const auto gen = reschedule::findRestorableGeneration(
          *ibp_, rss, arrayNames, options.verifyCheckpoints);
      if (gen) {
        srs.setRestoreGeneration(*gen);
        resumePhase = rss.checkpointRecord(*gen)->iteration;
        if (*gen != rss.incarnation() - 1) {
          GRADS_WARN("app-manager")
              << cop.name << ": newest checkpoint unreadable, falling back "
              << "to generation " << *gen << " (iteration " << resumePhase
              << ")";
        }
      } else {
        GRADS_WARN("app-manager") << cop.name
                                  << ": no readable checkpoint generation, "
                                  << "restarting from scratch";
        restored = false;
        resumePhase = 0;
      }
    }

    if (journal != nullptr) {
      if (const auto* rec = journal->openAction(cop.name)) {
        if (!restored) {
          // The stop checkpoint validated when the action was prepared, but
          // no generation is readable any more (depot dark, objects lost).
          // There is nothing to move, so the migration-as-transaction fails
          // — this incarnation proceeds from scratch instead.
          journal->rollback(rec->id, "checkpoint unreadable at restart");
        } else {
          // Commit phase: the restore onto the target mapping begins. The
          // action commits the instant the last rank holds its share.
          journal->beginCommit(rec->id);
          srs.setOnAllRestored([journal, id = rec->id] {
            journal->commit(id, "all ranks restored on target mapping");
          });
        }
      }
    }

    LaunchContext ctx;
    ctx.appName = cop.name;
    ctx.world = &world;
    ctx.srs = &srs;
    ctx.autopilot = autopilot_;
    ctx.startPhase = resumePhase;
    ctx.restored = restored;

    // Contract: predictions for this mapping on dedicated resources.
    auto predictor = [model = cop.perfModel, mapping](std::size_t phase) {
      return model->phaseSeconds(mapping, phase, nullptr);
    };
    if (options.monitorContract) {
      if (!monitor) {
        monitor = std::make_unique<autopilot::ContractMonitor>(
            eng, autopilot::PerformanceContract(cop.name, predictor),
            options.contract);
        monitor->attachTo(*autopilot_,
                          autopilot::phaseTimeChannel(cop.name));
        monitor->setViewer(options.viewer);
        if (resumedFromSnapshot && resumeRec->hasMonitor) {
          // Re-adopt the pre-crash adaptive band and confirmation window;
          // the attachTo above is this monitor's single listener re-arm.
          monitor->restoreRuntimeState(
              resumeRec->monUpper, resumeRec->monLower, resumeRec->monPhase,
              resumeRec->monViolations, resumeRec->monLastRatio,
              std::move(resumeRec->monRatios));
          ++breakdown.daemonRearms;
        }
      } else {
        // "the rescheduler may contact the contract monitor to update the
        // terms of the contract."
        monitor->contract().updateTerms(predictor);
        monitor->resetPhase(resumePhase);
        monitor->setEnabled(true);
        // Phase numbering restarted: the governor's quorum window would
        // otherwise misread post-restart phases as duplicates.
        if (options.governor != nullptr) options.governor->resetApp(cop.name);
      }
      if (rescheduler != nullptr) {
        monitor->setRescheduleRequest(
            [rescheduler, governor = options.governor, &breakdown, &cop,
             &rss, mapping](const autopilot::ViolationReport& r) {
              if (governor != nullptr &&
                  governor->admit(r) != reschedule::GovernorVerdict::kAdmit) {
                ++breakdown.violationsSuppressed;
                return autopilot::RescheduleOutcome::kSuppressed;
              }
              return rescheduler->onViolation(cop, rss, mapping, r.phase);
            });
      } else {
        monitor->setRescheduleRequest(nullptr);
      }
    }
    if (rescheduler != nullptr) {
      reschedule::StopRestartRescheduler::RunningApp handle;
      handle.cop = &cop;
      handle.rss = &rss;
      handle.mapping = [mapping] { return mapping; };
      handle.phase = [m = monitor.get(), resumePhase] {
        return m != nullptr ? m->phasesSeen() : resumePhase;
      };
      rescheduler->registerRunning(cop.name, handle);
    }

    const double execStart = eng.now();
    sim::JoinSet ranks(eng);
    for (int r = 0; r < world.size(); ++r) {
      ranks.spawn(cop.code(ctx, r));
    }
    co_await ranks.join();
    const double execEnd = eng.now();

    if (monitor) monitor->setEnabled(false);
    if (rescheduler != nullptr) rescheduler->unregisterRunning(cop.name);
    for (const auto node : reserved) gis_->setNodeUp(node, true);

    breakdown.checkpointWrite.push_back(srs.writeSpanSeconds());
    breakdown.checkpointRead.push_back(srs.readSpanSeconds());
    breakdown.corruptSliceReads += srs.corruptSliceReads();
    if (srs.restoredThisIncarnation() && srs.corruptSliceReads() > 0) {
      // Ground truth for the raw ablation: the application resumed from
      // data that did not match the manifest — a silent wrong restore.
      ++breakdown.corruptRestores;
    }
    breakdown.integrityRejects += srs.integrityRejects();
    breakdown.staleWriteRejects += srs.staleWriteRejects();
    breakdown.appDuration.push_back(execEnd - execStart -
                                    srs.writeSpanSeconds() -
                                    srs.readSpanSeconds());
    ++breakdown.incarnations;

    if (!ctx.stopped) {
      if (journal != nullptr) {
        if (const auto* rec = journal->openAction(cop.name)) {
          // Defensive close: the run finished on the target, so the action
          // is a success even if the commit callback never fired (e.g. a
          // 1-rank restore path that bypassed restoreCheckpoint).
          journal->commit(rec->id, "run completed on target mapping");
        }
      }
      // Completed. Record it for snapshots (a restore protocol must not
      // respawn a finished app); opportunistic rescheduling may now help
      // someone else.
      completed_.insert(cop.name);
      if (rescheduler != nullptr) rescheduler->onAppCompleted();
      break;
    }
    if (ctx.restoreFailed) {
      if (journal != nullptr) {
        if (const auto* rec = journal->openAction(cop.name)) {
          // Fault in the commit phase before the commit point: the restore
          // onto the target died. Roll back and relaunch on the old nodes.
          priorMapping = rec->prior;
          rollbackToPrior = true;
          journal->rollback(rec->id, "restore failed on target mapping");
        }
      }
      // The incarnation aborted because its checkpoint turned unreadable
      // between the pre-flight and the read (depot flapping). Retry the
      // restore a bounded number of times, then cut losses and restart
      // from scratch rather than loop forever.
      ++breakdown.restoreFailures;
      ++consecutiveRestoreFailures;
      if (consecutiveRestoreFailures > options.maxRestoreFailures) {
        GRADS_WARN("app-manager")
            << cop.name << ": " << consecutiveRestoreFailures
            << " consecutive failed restores, abandoning checkpoint";
        restored = false;
        resumePhase = 0;
        consecutiveRestoreFailures = 0;
      } else {
        restored = rss.hasCheckpoint();
        resumePhase = restored ? rss.storedIteration() : 0;
      }
      continue;
    }
    consecutiveRestoreFailures = 0;
    GRADS_INFO("app-manager") << log::appAt(cop.name, eng.now())
                              << "stopped at phase " << ctx.completedPhases
                              << "; restarting";
    // A rescheduler-driven stop leaves a fresh checkpoint; a failure leaves
    // only the last *periodic* one (possibly none — restart from scratch).
    restored = rss.hasCheckpoint();
    resumePhase = restored ? rss.storedIteration() : 0;
    if (journal != nullptr) {
      if (const auto* rec = journal->openAction(cop.name)) {
        // Prepare validation: the action may enter its commit phase only if
        // this incarnation left a complete, published stop checkpoint and
        // no fault hit while it was being taken.
        const bool checkpointGood =
            rss.hasCheckpoint() &&
            (!options.verifyCheckpoints ||
             rss.manifestComplete(rss.incarnation()));
        if (rss.failureSignaled()) {
          priorMapping = rec->prior;
          rollbackToPrior = true;
          journal->rollback(rec->id, "node failure during action");
        } else if (!checkpointGood) {
          priorMapping = rec->prior;
          rollbackToPrior = true;
          journal->rollback(rec->id, "stop checkpoint incomplete");
        }
      }
    }
  }

  scrubber.stop();
  // Drain an in-flight scan: it walks the Rss owned by this frame.
  while (scrubber.scanning()) co_await sim::sleepFor(eng, 1.0);
  breakdown.scrubRepairs = scrubber.stats().repaired;
  breakdown.scrubUnrepairable = scrubber.stats().unrepairable;
  if (journal != nullptr) {
    breakdown.actionsCommitted =
        journal->committedFor(cop.name) - baseCommitted;
    breakdown.actionsRolledBack =
        journal->rolledBackFor(cop.name) - baseRolledBack;
    breakdown.actionsOpened =
        breakdown.actionsCommitted + breakdown.actionsRolledBack;
  }
  if (rescheduler != nullptr && rescheduler->forkDriver() != nullptr) {
    const auto& ws = rescheduler->forkDriver()->stats();
    breakdown.whatifDecisions = ws.decisions;
    breakdown.whatifForks = ws.forksRun;
    breakdown.whatifFallbacks = ws.fallbacks;
    breakdown.whatifOverrides = ws.overrides;
    breakdown.whatifDivergences = ws.divergences;
  }
  breakdown.totalSeconds = eng.now() - runStart;
  if (out != nullptr) *out = std::move(breakdown);
}

}  // namespace grads::core

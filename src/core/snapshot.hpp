#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace grads::core {

/// Raised on any snapshot encode/decode failure: truncated images, checksum
/// mismatches, type-tag mismatches, unknown format versions, or a component
/// whose section is missing from the image being restored.
class SnapshotError : public Error {
 public:
  explicit SnapshotError(const std::string& what) : Error(what) {}
};

/// Typed append-only field sink. Every field is written as a type-tag word
/// followed by its payload words, so a reader that drifts out of sync with
/// the writer fails loudly on the next field instead of silently
/// reinterpreting bytes. grads-lint rule R6 counts the put*/get* call sites
/// in paired encodeState/decodeState bodies to catch asymmetric revisions
/// at review time; the tags catch them at run time.
class SnapshotWriter {
 public:
  void putU64(std::uint64_t v);
  void putI64(std::int64_t v);
  void putF64(double v);
  void putBool(bool v);
  void putStr(const std::string& s);

  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::vector<std::uint64_t> words_;
};

/// Typed field source over one section's words. Each get* verifies the type
/// tag written by the matching put* and throws SnapshotError on mismatch or
/// exhaustion. `done()` lets decoders assert they consumed the whole
/// section (catching an encoder that grew a field the decoder ignores).
class SnapshotReader {
 public:
  explicit SnapshotReader(const std::vector<std::uint64_t>& words)
      : words_(&words) {}

  std::uint64_t getU64();
  std::int64_t getI64();
  double getF64();
  bool getBool();
  std::string getStr();

  bool done() const { return pos_ == words_->size(); }
  std::size_t remaining() const { return words_->size() - pos_; }

 private:
  std::uint64_t take(const char* what);

  const std::vector<std::uint64_t>* words_;
  std::size_t pos_ = 0;
};

/// Interface a component implements to participate in whole-simulation
/// snapshots. encodeState/decodeState must write/read the *same field
/// sequence*; snapshotVersion() is stored per section and verified on
/// restore so stale images fail with a versioned error instead of a tag
/// mismatch deep inside decode.
///
/// Contract: decodeState fully overwrites the component's logical state but
/// must NOT schedule engine events — restore happens at a quiescent boundary
/// and daemons are re-armed explicitly afterwards (see DESIGN.md §8).
class Snapshottable {
 public:
  virtual ~Snapshottable() = default;
  virtual const char* snapshotSection() const = 0;
  virtual std::uint32_t snapshotVersion() const { return 1; }
  virtual void encodeState(SnapshotWriter& w) const = 0;
  virtual void decodeState(SnapshotReader& r) = 0;
};

/// One named, versioned, checksummed section of a snapshot image.
struct SnapshotSection {
  std::string name;
  std::uint32_t version = 1;
  std::vector<std::uint64_t> words;

  /// FNV-1a over name, version, and payload words.
  std::uint64_t checksum() const;
};

/// A whole-simulation snapshot: the simulation clock plus every registered
/// component's section. serialize()/parse() round-trip through a flat byte
/// buffer with per-section checksums and a whole-image checksum, so a
/// corrupt or truncated image is rejected before any component decodes.
class SnapshotImage {
 public:
  static constexpr std::uint64_t kMagic = 0x31504e5344524722ULL;  // "\"GRDSNP1"
  static constexpr std::uint64_t kFormatVersion = 1;

  double simTime = 0.0;

  void addSection(SnapshotSection section);
  const SnapshotSection* findSection(const std::string& name) const;
  const std::vector<SnapshotSection>& sections() const { return sections_; }

  std::vector<std::uint8_t> serialize() const;
  static SnapshotImage parse(const std::vector<std::uint8_t>& bytes);

  /// FNV-1a over the serialized bytes — the image's identity. The crash
  /// sweep caches its uncrashed reference arm per image digest.
  std::uint64_t digest() const;

 private:
  std::vector<SnapshotSection> sections_;
};

/// Ordered set of components that make up one snapshot domain. Registration
/// order is capture order; restore decodes every registered component from
/// its named section (missing section, version skew, or leftover words are
/// all errors — partial restores are forbidden).
class SnapshotRegistry {
 public:
  void add(Snapshottable& component);

  SnapshotImage capture(double simTime) const;
  void restore(const SnapshotImage& image);

  std::size_t size() const { return components_.size(); }

 private:
  std::vector<Snapshottable*> components_;
};

}  // namespace grads::core

#include "core/binder.hpp"

#include <algorithm>
#include <set>

#include "sim/sync.hpp"
#include "util/log.hpp"

namespace grads::core {

Binder::Binder(sim::Engine& engine, const services::Gis& gis)
    : Binder(engine, gis, BinderOptions{}) {}

Binder::Binder(sim::Engine& engine, const services::Gis& gis,
               BinderOptions options)
    : engine_(&engine), gis_(&gis), opts_(options) {}

sim::Task Binder::localBind(grid::NodeId node, std::size_t libraries) {
  // GIS lookups for each application library, then instrument + configure +
  // target-side compile.
  co_await sim::sleepFor(*engine_,
                         opts_.gisQuerySec * static_cast<double>(libraries));
  co_await sim::sleepFor(*engine_, opts_.instrumentSec);
  co_await sim::sleepFor(*engine_, opts_.configureSec);
  const auto arch = gis_->grid().node(node).spec().arch;
  co_await sim::sleepFor(*engine_, arch == grid::Arch::kIA64
                                       ? opts_.compileSecIa64
                                       : opts_.compileSecIa32);
}

sim::Task Binder::bind(const Cop& cop, std::vector<grid::NodeId> mapping,
                       BindReport* report) {
  GRADS_REQUIRE(!mapping.empty(), "Binder::bind: empty mapping");
  const double start = engine_->now();

  // Global binder: locate the local binder code on every scheduled node.
  std::set<grid::NodeId> distinct(mapping.begin(), mapping.end());
  co_await sim::sleepFor(*engine_, opts_.gisQuerySec);  // locate binder itself
  for (const auto node : distinct) {
    // A node the directory still lists as up may in truth be unreachable
    // (GIS staleness window): the launch attempt fails here, and the caller
    // retries on a fresh mapping instead of hanging on a dead node.
    if (!gis_->isNodeReachable(node)) {
      throw BindError("node " + gis_->grid().node(node).name() +
                      " unreachable (stale GIS entry)");
    }
    if (!gis_->hasSoftware(node, services::software::kLocalBinder)) {
      throw BindError("no local binder installed on " +
                      gis_->grid().node(node).name());
    }
    for (const auto& lib : cop.requiredSoftware) {
      if (!gis_->hasSoftware(node, lib)) {
        throw BindError("library '" + lib + "' missing on " +
                        gis_->grid().node(node).name());
      }
    }
  }

  // Local binders run in parallel on each distinct node.
  sim::JoinSet js(*engine_);
  for (const auto node : distinct) {
    js.spawn(localBind(node, cop.requiredSoftware.size() + 1));
  }
  co_await js.join();

  GRADS_DEBUG("binder") << cop.name << ": bound on " << distinct.size()
                        << " nodes in " << engine_->now() - start << " s";
  if (report != nullptr) {
    report->seconds = engine_->now() - start;
    report->nodesBound = static_cast<int>(distinct.size());
  }
}

}  // namespace grads::core

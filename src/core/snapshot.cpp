#include "core/snapshot.hpp"

#include <algorithm>
#include <cstring>

#include "util/hash.hpp"

namespace grads::core {

namespace {

// Field type tags. Values are part of the on-disk format; never reorder.
enum Tag : std::uint64_t {
  kTagU64 = 1,
  kTagI64 = 2,
  kTagF64 = 3,
  kTagBool = 4,
  kTagStr = 5,
};

const char* tagName(std::uint64_t tag) {
  switch (tag) {
    case kTagU64: return "u64";
    case kTagI64: return "i64";
    case kTagF64: return "f64";
    case kTagBool: return "bool";
    case kTagStr: return "str";
    default: return "?";
  }
}

std::uint64_t f64Bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

double bitsF64(std::uint64_t bits) {
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotWriter / SnapshotReader

void SnapshotWriter::putU64(std::uint64_t v) {
  words_.push_back(kTagU64);
  words_.push_back(v);
}

void SnapshotWriter::putI64(std::int64_t v) {
  words_.push_back(kTagI64);
  words_.push_back(static_cast<std::uint64_t>(v));
}

void SnapshotWriter::putF64(double v) {
  words_.push_back(kTagF64);
  words_.push_back(f64Bits(v));
}

void SnapshotWriter::putBool(bool v) {
  words_.push_back(kTagBool);
  words_.push_back(v ? 1 : 0);
}

void SnapshotWriter::putStr(const std::string& s) {
  words_.push_back(kTagStr);
  words_.push_back(s.size());
  const std::size_t nWords = (s.size() + 7) / 8;
  for (std::size_t i = 0; i < nWords; ++i) {
    std::uint64_t w = 0;
    const std::size_t n = std::min<std::size_t>(8, s.size() - i * 8);
    std::memcpy(&w, s.data() + i * 8, n);
    words_.push_back(w);
  }
}

std::uint64_t SnapshotReader::take(const char* what) {
  if (pos_ >= words_->size()) {
    throw SnapshotError(std::string("snapshot section exhausted reading ") +
                        what);
  }
  return (*words_)[pos_++];
}

namespace {
void checkTag(std::uint64_t got, std::uint64_t want) {
  if (got != want) {
    throw SnapshotError(std::string("snapshot field type mismatch: expected ") +
                        tagName(want) + ", found " + tagName(got));
  }
}
}  // namespace

std::uint64_t SnapshotReader::getU64() {
  checkTag(take("u64 tag"), kTagU64);
  return take("u64 value");
}

std::int64_t SnapshotReader::getI64() {
  checkTag(take("i64 tag"), kTagI64);
  return static_cast<std::int64_t>(take("i64 value"));
}

double SnapshotReader::getF64() {
  checkTag(take("f64 tag"), kTagF64);
  return bitsF64(take("f64 value"));
}

bool SnapshotReader::getBool() {
  checkTag(take("bool tag"), kTagBool);
  return take("bool value") != 0;
}

std::string SnapshotReader::getStr() {
  checkTag(take("str tag"), kTagStr);
  const std::uint64_t len = take("str length");
  const std::size_t nWords = (len + 7) / 8;
  std::string s(len, '\0');
  for (std::size_t i = 0; i < nWords; ++i) {
    const std::uint64_t w = take("str payload");
    const std::size_t n = std::min<std::size_t>(8, len - i * 8);
    std::memcpy(s.data() + i * 8, &w, n);
  }
  return s;
}

// ---------------------------------------------------------------------------
// SnapshotSection / SnapshotImage

std::uint64_t SnapshotSection::checksum() const {
  std::uint64_t h = util::fnv1a64(name);
  h = util::hashCombine(h, static_cast<std::uint64_t>(version));
  for (std::uint64_t w : words) h = util::hashCombine(h, w);
  return h;
}

void SnapshotImage::addSection(SnapshotSection section) {
  if (findSection(section.name) != nullptr) {
    throw SnapshotError("duplicate snapshot section '" + section.name + "'");
  }
  sections_.push_back(std::move(section));
}

const SnapshotSection* SnapshotImage::findSection(
    const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

namespace {

void appendWord(std::vector<std::uint8_t>& out, std::uint64_t w) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((w >> (8 * i)) & 0xff));
  }
}

class WordCursor {
 public:
  explicit WordCursor(const std::vector<std::uint8_t>& bytes) : bytes_(&bytes) {
    if (bytes.size() % 8 != 0) {
      throw SnapshotError("snapshot image is not word-aligned");
    }
  }

  std::uint64_t next(const char* what) {
    if (pos_ + 8 > bytes_->size()) {
      throw SnapshotError(std::string("snapshot image truncated reading ") +
                          what);
    }
    std::uint64_t w = 0;
    for (int i = 0; i < 8; ++i) {
      w |= static_cast<std::uint64_t>((*bytes_)[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return w;
  }

  bool done() const { return pos_ == bytes_->size(); }

 private:
  const std::vector<std::uint8_t>* bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> SnapshotImage::serialize() const {
  std::vector<std::uint8_t> out;
  appendWord(out, kMagic);
  appendWord(out, kFormatVersion);
  appendWord(out, f64Bits(simTime));
  appendWord(out, sections_.size());
  for (const auto& s : sections_) {
    appendWord(out, s.name.size());
    const std::size_t nameWords = (s.name.size() + 7) / 8;
    for (std::size_t i = 0; i < nameWords; ++i) {
      std::uint64_t w = 0;
      const std::size_t n = std::min<std::size_t>(8, s.name.size() - i * 8);
      std::memcpy(&w, s.name.data() + i * 8, n);
      appendWord(out, w);
    }
    appendWord(out, s.version);
    appendWord(out, s.words.size());
    for (std::uint64_t w : s.words) appendWord(out, w);
    appendWord(out, s.checksum());
  }
  appendWord(out, util::fnv1a64(out.data(), out.size()));
  return out;
}

SnapshotImage SnapshotImage::parse(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 8) throw SnapshotError("snapshot image too short");
  // Whole-image checksum covers everything before the trailing word.
  const std::uint64_t stored = [&] {
    std::uint64_t w = 0;
    for (int i = 0; i < 8; ++i) {
      w |= static_cast<std::uint64_t>(bytes[bytes.size() - 8 + i]) << (8 * i);
    }
    return w;
  }();
  if (util::fnv1a64(bytes.data(), bytes.size() - 8) != stored) {
    throw SnapshotError("snapshot image checksum mismatch (corrupt image)");
  }

  WordCursor cur(bytes);
  if (cur.next("magic") != kMagic) {
    throw SnapshotError("snapshot image has wrong magic (not a snapshot?)");
  }
  const std::uint64_t fmt = cur.next("format version");
  if (fmt != kFormatVersion) {
    throw SnapshotError("unsupported snapshot format version " +
                        std::to_string(fmt));
  }
  SnapshotImage img;
  img.simTime = bitsF64(cur.next("sim time"));
  const std::uint64_t nSections = cur.next("section count");
  for (std::uint64_t i = 0; i < nSections; ++i) {
    SnapshotSection sec;
    const std::uint64_t nameLen = cur.next("section name length");
    const std::size_t nameWords = (nameLen + 7) / 8;
    sec.name.resize(nameLen);
    for (std::size_t j = 0; j < nameWords; ++j) {
      const std::uint64_t w = cur.next("section name");
      const std::size_t n = std::min<std::size_t>(8, nameLen - j * 8);
      std::memcpy(sec.name.data() + j * 8, &w, n);
    }
    sec.version = static_cast<std::uint32_t>(cur.next("section version"));
    const std::uint64_t nWords = cur.next("section word count");
    sec.words.reserve(nWords);
    for (std::uint64_t j = 0; j < nWords; ++j) {
      sec.words.push_back(cur.next("section payload"));
    }
    const std::uint64_t sum = cur.next("section checksum");
    if (sec.checksum() != sum) {
      throw SnapshotError("checksum mismatch in snapshot section '" +
                          sec.name + "'");
    }
    img.addSection(std::move(sec));
  }
  cur.next("image checksum");  // already verified above; consume it
  if (!cur.done()) throw SnapshotError("trailing bytes after snapshot image");
  return img;
}

std::uint64_t SnapshotImage::digest() const {
  const auto bytes = serialize();
  return util::fnv1a64(bytes.data(), bytes.size());
}

// ---------------------------------------------------------------------------
// SnapshotRegistry

void SnapshotRegistry::add(Snapshottable& component) {
  for (const auto* c : components_) {
    if (std::string(c->snapshotSection()) == component.snapshotSection()) {
      throw SnapshotError(std::string("duplicate snapshot component '") +
                          component.snapshotSection() + "'");
    }
  }
  components_.push_back(&component);
}

SnapshotImage SnapshotRegistry::capture(double simTime) const {
  SnapshotImage img;
  img.simTime = simTime;
  for (const auto* c : components_) {
    SnapshotWriter w;
    c->encodeState(w);
    SnapshotSection sec;
    sec.name = c->snapshotSection();
    sec.version = c->snapshotVersion();
    sec.words = w.words();
    img.addSection(std::move(sec));
  }
  return img;
}

void SnapshotRegistry::restore(const SnapshotImage& image) {
  // Validate every section before mutating anything: restore is all-or-
  // nothing at the registry level.
  for (auto* c : components_) {
    const auto* sec = image.findSection(c->snapshotSection());
    if (sec == nullptr) {
      throw SnapshotError(std::string("snapshot image is missing section '") +
                          c->snapshotSection() + "'");
    }
    if (sec->version != c->snapshotVersion()) {
      throw SnapshotError(std::string("snapshot section '") +
                          c->snapshotSection() + "' version " +
                          std::to_string(sec->version) +
                          " does not match component version " +
                          std::to_string(c->snapshotVersion()));
    }
  }
  for (auto* c : components_) {
    const auto* sec = image.findSection(c->snapshotSection());
    SnapshotReader r(sec->words);
    c->decodeState(r);
    if (!r.done()) {
      throw SnapshotError(std::string("snapshot section '") +
                          c->snapshotSection() + "' has " +
                          std::to_string(r.remaining()) +
                          " unread words after decode");
    }
  }
}

}  // namespace grads::core

#include "vmpi/world.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::vmpi {

World::World(grid::Grid& grid, std::vector<grid::NodeId> ranks,
             std::string name)
    : grid_(&grid), nodes_(std::move(ranks)), name_(std::move(name)) {
  GRADS_REQUIRE(!nodes_.empty(), "World: need at least one rank");
  for (const auto n : nodes_) {
    GRADS_REQUIRE(n < grid_->nodeCount(), "World: unknown node in mapping");
  }
}

grid::NodeId World::nodeOf(int rank) const {
  GRADS_REQUIRE(rank >= 0 && rank < size(), "World::nodeOf: bad rank");
  return nodes_[static_cast<std::size_t>(rank)];
}

void World::setNodeOf(int rank, grid::NodeId node) {
  GRADS_REQUIRE(rank >= 0 && rank < size(), "World::setNodeOf: bad rank");
  GRADS_REQUIRE(node < grid_->nodeCount(), "World::setNodeOf: unknown node");
  GRADS_REQUIRE(stagedRetargets_.count(rank) == 0,
                "World::setNodeOf: rank has an open retarget; commit or "
                "abort it first");
  nodes_[static_cast<std::size_t>(rank)] = node;
}

void World::beginRetarget(int rank, grid::NodeId to) {
  GRADS_REQUIRE(rank >= 0 && rank < size(), "World::beginRetarget: bad rank");
  GRADS_REQUIRE(to < grid_->nodeCount(), "World::beginRetarget: unknown node");
  GRADS_REQUIRE(stagedRetargets_.count(rank) == 0,
                "World::beginRetarget: rank already has an open retarget");
  stagedRetargets_[rank] = to;
}

bool World::retargetPending(int rank) const {
  return stagedRetargets_.count(rank) > 0;
}

grid::NodeId World::stagedTarget(int rank) const {
  const auto it = stagedRetargets_.find(rank);
  return it == stagedRetargets_.end() ? grid::kNoId : it->second;
}

void World::commitRetarget(int rank) {
  const auto it = stagedRetargets_.find(rank);
  GRADS_REQUIRE(it != stagedRetargets_.end(),
                "World::commitRetarget: no open retarget for rank");
  nodes_[static_cast<std::size_t>(rank)] = it->second;
  stagedRetargets_.erase(it);
  ++retargetsCommitted_;
}

void World::abortRetarget(int rank) {
  const auto it = stagedRetargets_.find(rank);
  GRADS_REQUIRE(it != stagedRetargets_.end(),
                "World::abortRetarget: no open retarget for rank");
  stagedRetargets_.erase(it);
  ++retargetsAborted_;
}

void World::encodeState(core::SnapshotWriter& w) const {
  w.putU64(nodes_.size());
  for (const auto n : nodes_) w.putU64(n);
  w.putU64(stagedRetargets_.size());
  for (const auto& [rank, to] : stagedRetargets_) {
    w.putI64(rank);
    w.putU64(to);
  }
  w.putU64(retargetsCommitted_);
  w.putU64(retargetsAborted_);
  w.putF64(bytesSent_);
  w.putU64(messagesSent_);
}

void World::decodeState(core::SnapshotReader& r) {
  const auto rankCount = r.getU64();
  if (rankCount != nodes_.size()) {
    throw core::SnapshotError(
        "vmpi.world: snapshot rank count does not match this communicator");
  }
  for (auto& n : nodes_) {
    n = static_cast<grid::NodeId>(r.getU64());
    GRADS_REQUIRE(n < grid_->nodeCount(),
                  "World::decodeState: unknown node in mapping");
  }
  stagedRetargets_.clear();
  const auto staged = r.getU64();
  for (std::uint64_t i = 0; i < staged; ++i) {
    const auto rank = static_cast<int>(r.getI64());
    stagedRetargets_[rank] = static_cast<grid::NodeId>(r.getU64());
  }
  retargetsCommitted_ = static_cast<std::size_t>(r.getU64());
  retargetsAborted_ = static_cast<std::size_t>(r.getU64());
  bytesSent_ = r.getF64();
  messagesSent_ = static_cast<std::size_t>(r.getU64());
}

World::Mailbox& World::mailbox(int dst, int tag) {
  return boxes_[MailboxKey{dst, tag}];
}

void World::deliver(int dst, Message msg) {
  Mailbox& box = mailbox(dst, msg.tag);
  for (auto it = box.waiters.begin(); it != box.waiters.end(); ++it) {
    if (it->src == kAnySource || it->src == msg.src) {
      *it->slot = std::move(msg);
      auto h = it->handle;
      box.waiters.erase(it);
      engine().scheduleResume(0.0, h);
      return;
    }
  }
  box.pending.push_back(std::move(msg));
}

namespace {
struct RecvAwaiterImpl {
  World::Mailbox* box;
  int src;
  Message* out;

  bool await_ready() {
    for (auto it = box->pending.begin(); it != box->pending.end(); ++it) {
      if (src == kAnySource || it->src == src) {
        *out = std::move(*it);
        box->pending.erase(it);
        return true;
      }
    }
    return false;
  }
  void await_suspend(std::coroutine_handle<> h) {
    box->waiters.push_back(World::Waiter{src, out, h});
  }
  void await_resume() const noexcept {}
};
}  // namespace

sim::Task World::send(int from, int to, double bytes, int tag,
                      std::any payload) {
  GRADS_REQUIRE(from >= 0 && from < size(), "World::send: bad source rank");
  GRADS_REQUIRE(to >= 0 && to < size(), "World::send: bad dest rank");
  GRADS_REQUIRE(bytes >= 0.0, "World::send: negative size");
  const double start = engine().now();
  co_await grid_->transfer(nodeOf(from), nodeOf(to), bytes);
  bytesSent_ += bytes;
  ++messagesSent_;
  if (profiler_ != nullptr) {
    profiler_->onSend(from, to, bytes, start, engine().now());
  }
  deliver(to, Message{from, tag, bytes, std::move(payload)});
}

sim::Task World::recv(int rank, int src, int tag, Message* out) {
  GRADS_REQUIRE(rank >= 0 && rank < size(), "World::recv: bad rank");
  GRADS_REQUIRE(out != nullptr, "World::recv: null output");
  Mailbox& box = mailbox(rank, tag);
  co_await RecvAwaiterImpl{&box, src, out};
  if (profiler_ != nullptr) {
    profiler_->onRecv(rank, out->src, out->bytes, engine().now());
  }
}

World::Request World::isend(int from, int to, double bytes, int tag,
                            std::any payload) {
  Request req;
  req.done_ = std::make_shared<sim::Event>(engine());
  engine().spawn(
      [](World* w, int from, int to, double bytes, int tag, std::any payload,
         std::shared_ptr<sim::Event> done) -> sim::Task {
        co_await w->send(from, to, bytes, tag, std::move(payload));
        done->set();
      }(this, from, to, bytes, tag, std::move(payload), req.done_),
      "isend");
  return req;
}

World::Request World::irecv(int rank, int src, int tag, Message* out) {
  GRADS_REQUIRE(out != nullptr, "World::irecv: null output");
  Request req;
  req.done_ = std::make_shared<sim::Event>(engine());
  engine().spawn(
      [](World* w, int rank, int src, int tag, Message* out,
         std::shared_ptr<sim::Event> done) -> sim::Task {
        co_await w->recv(rank, src, tag, out);
        done->set();
      }(this, rank, src, tag, out, req.done_),
      "irecv");
  return req;
}

sim::Task World::wait(Request request) {
  GRADS_REQUIRE(request.valid(), "World::wait: invalid request");
  co_await request.done_->wait();
}

sim::Task World::waitAll(std::vector<Request> requests) {
  for (auto& r : requests) co_await wait(r);
}

sim::Task World::compute(int rank, double flops) {
  const double start = engine().now();
  co_await grid_->node(nodeOf(rank)).compute(flops);
  if (profiler_ != nullptr) {
    profiler_->onCompute(rank, flops, start, engine().now());
  }
}

sim::Task World::barrier(int rank) {
  GRADS_REQUIRE(rank >= 0 && rank < size(), "World::barrier: bad rank");
  const double start = engine().now();
  const std::uint64_t gen = barrierGeneration_;
  auto it = barrierEvents_.find(gen);
  if (it == barrierEvents_.end()) {
    it = barrierEvents_
             .emplace(gen, std::make_shared<sim::Event>(engine()))
             .first;
  }
  auto ev = it->second;
  if (++barrierArrived_ == size()) {
    barrierArrived_ = 0;
    ++barrierGeneration_;
    ev->set();
    barrierEvents_.erase(gen);
  } else {
    co_await ev->wait();
  }
  if (profiler_ != nullptr) {
    profiler_->onCollective("barrier", rank, 0.0, start, engine().now());
  }
}

sim::Task World::bcast(int rank, int root, double bytes) {
  const double start = engine().now();
  const int p = size();
  const int vr = vrank(rank, root);
  // MPICH-style binomial tree.
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      Message m;
      const int src = (vr - mask + root) % p;
      co_await recv(rank, src, tags::kBcast, &m);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) {
      const int dst = (vr + mask + root) % p;
      co_await send(rank, dst, bytes, tags::kBcast);
    }
    mask >>= 1;
  }
  if (profiler_ != nullptr) {
    profiler_->onCollective("bcast", rank, bytes, start, engine().now());
  }
}

sim::Task World::allreduce(int rank, double bytes, double contribution,
                           double* reduced) {
  const double start = engine().now();
  const int p = size();
  double value = contribution;
  // Binomial reduce to rank 0 (max-combine), then binomial bcast back.
  int mask = 1;
  while (mask < p) {
    if ((rank & mask) == 0) {
      const int src = rank | mask;
      if (src < p) {
        Message m;
        co_await recv(rank, src, tags::kReduce, &m);
        value = std::max(value, std::any_cast<double>(m.payload));
      }
    } else {
      const int dst = rank & ~mask;
      co_await send(rank, dst, bytes, tags::kReduce, value);
      break;
    }
    mask <<= 1;
  }
  // Broadcast the combined value.
  const int vr = rank;
  mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      Message m;
      co_await recv(rank, vr - mask, tags::kAllreduceBase, &m);
      value = std::any_cast<double>(m.payload);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p) {
      co_await send(rank, vr + mask, bytes, tags::kAllreduceBase, value);
    }
    mask >>= 1;
  }
  if (reduced != nullptr) *reduced = value;
  if (profiler_ != nullptr) {
    profiler_->onCollective("allreduce", rank, bytes, start, engine().now());
  }
}

sim::Task World::gather(int rank, int root, double bytesPerRank) {
  const double start = engine().now();
  if (rank == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      Message m;
      co_await recv(rank, r, tags::kGather, &m);
    }
  } else {
    co_await send(rank, root, bytesPerRank, tags::kGather);
  }
  if (profiler_ != nullptr) {
    profiler_->onCollective("gather", rank, bytesPerRank, start,
                            engine().now());
  }
}

sim::Task World::allgather(int rank, double bytesPerRank) {
  const double start = engine().now();
  const int p = size();
  // Ring: in step s every rank forwards the block it received in step s−1
  // to its right neighbour; after p−1 steps everyone holds every block.
  const int right = (rank + 1) % p;
  const int left = (rank - 1 + p) % p;
  for (int step = 0; step + 1 < p; ++step) {
    co_await send(rank, right, bytesPerRank, tags::kAllgather);
    Message m;
    co_await recv(rank, left, tags::kAllgather, &m);
  }
  if (profiler_ != nullptr) {
    profiler_->onCollective("allgather", rank, bytesPerRank, start,
                            engine().now());
  }
}

sim::Task World::alltoall(int rank, double bytesPerPair) {
  const double start = engine().now();
  const int p = size();
  // Linear personalized exchange; sends are buffered in mailboxes, so the
  // send-all-then-receive-all order cannot deadlock here.
  for (int offset = 1; offset < p; ++offset) {
    const int dst = (rank + offset) % p;
    co_await send(rank, dst, bytesPerPair, tags::kAlltoall);
  }
  for (int offset = 1; offset < p; ++offset) {
    const int src = (rank - offset + p) % p;
    Message m;
    co_await recv(rank, src, tags::kAlltoall, &m);
  }
  if (profiler_ != nullptr) {
    profiler_->onCollective("alltoall", rank, bytesPerPair, start,
                            engine().now());
  }
}

sim::Task World::reduceScatter(int rank, double bytesPerRank) {
  const double start = engine().now();
  // Reduce the whole vector to rank 0, then scatter the per-rank pieces.
  co_await allreduce(rank, bytesPerRank * static_cast<double>(size()));
  co_await scatter(rank, 0, bytesPerRank);
  if (profiler_ != nullptr) {
    profiler_->onCollective("reduce-scatter", rank, bytesPerRank, start,
                            engine().now());
  }
}

sim::Task World::scatter(int rank, int root, double bytesPerRank) {
  const double start = engine().now();
  if (rank == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      co_await send(rank, r, bytesPerRank, tags::kScatter);
    }
  } else {
    Message m;
    co_await recv(rank, root, tags::kScatter, &m);
  }
  if (profiler_ != nullptr) {
    profiler_->onCollective("scatter", rank, bytesPerRank, start,
                            engine().now());
  }
}

}  // namespace grads::vmpi

#pragma once

#include <any>
#include <coroutine>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "grid/grid.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace grads::vmpi {

inline constexpr int kAnySource = -1;

/// A received message: metadata plus an optional small payload (std::any)
/// for control information. Bulk data is represented by its size only — the
/// simulator charges transfer time, not storage.
struct Message {
  int src = -1;
  int tag = 0;
  double bytes = 0.0;
  std::any payload;
};

/// PMPI-style profiling seam: the Autopilot binder inserts sensors here
/// ("captured via PAPI and the MPI profiling interface with automatically-
/// inserted sensors", paper §5).
class CommProfiler {
 public:
  virtual ~CommProfiler() = default;
  virtual void onSend(int from, int to, double bytes, double start,
                      double end) = 0;
  virtual void onRecv(int rank, int src, double bytes, double time) = 0;
  virtual void onCollective(const std::string& op, int rank, double bytes,
                            double start, double end) = 0;
  virtual void onCompute(int rank, double flops, double start, double end) = 0;
};

/// Virtual MPI communicator: a set of ranks mapped onto grid nodes.
///
/// The rank→node mapping is *mutable* (setNodeOf): the process-swapping
/// runtime exploits this to retarget ranks at communication points, exactly
/// like the paper's hijacked MPI_Comm_World (§4.2.1).
class World {
 public:
  World(grid::Grid& grid, std::vector<grid::NodeId> ranks,
        std::string name = "world");
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return static_cast<int>(nodes_.size()); }
  const std::string& name() const { return name_; }
  grid::Grid& grid() const { return *grid_; }
  sim::Engine& engine() const { return grid_->engine(); }

  grid::NodeId nodeOf(int rank) const;
  void setNodeOf(int rank, grid::NodeId node);
  const std::vector<grid::NodeId>& mapping() const { return nodes_; }

  /// Abortable retarget protocol (the two-phase half of a transactional
  /// process swap): beginRetarget stages a new node for the rank without
  /// touching the live mapping — mid-transfer the rank still communicates
  /// from its old node — then commitRetarget flips the mapping atomically,
  /// or abortRetarget discards the staged target and the swap never
  /// happened. setNodeOf refuses to bypass an open retarget, so a staged
  /// rank cannot be doubly mapped.
  void beginRetarget(int rank, grid::NodeId to);
  bool retargetPending(int rank) const;
  /// Staged target of an open retarget (kNoId when none).
  grid::NodeId stagedTarget(int rank) const;
  void commitRetarget(int rank);
  void abortRetarget(int rank);
  std::size_t retargetsCommitted() const { return retargetsCommitted_; }
  std::size_t retargetsAborted() const { return retargetsAborted_; }

  void setProfiler(CommProfiler* profiler) { profiler_ = profiler; }

  /// Point-to-point send: pays the network cost, then delivers.
  sim::Task send(int from, int to, double bytes, int tag = 0,
                 std::any payload = {});
  /// Blocks until a message from `src` (or kAnySource) with `tag` arrives.
  sim::Task recv(int rank, int src, int tag, Message* out);

  /// Non-blocking completion handle (MPI_Request); await with wait().
  class Request {
   public:
    Request() = default;
    bool valid() const { return static_cast<bool>(done_); }
    bool complete() const { return done_ && done_->isSet(); }

   private:
    friend class World;
    std::shared_ptr<sim::Event> done_;
  };

  /// Starts a send in the background; the caller keeps computing.
  Request isend(int from, int to, double bytes, int tag = 0,
                std::any payload = {});
  /// Posts a receive in the background into *out (out must stay alive).
  Request irecv(int rank, int src, int tag, Message* out);
  /// Suspends until the request completes (MPI_Wait).
  sim::Task wait(Request request);
  /// Suspends until every request completes (MPI_Waitall).
  sim::Task waitAll(std::vector<Request> requests);

  /// Runs `flops` of computation on the rank's current node.
  sim::Task compute(int rank, double flops);

  /// Collectives (every rank must call with identical arguments).
  sim::Task barrier(int rank);
  sim::Task bcast(int rank, int root, double bytes);
  /// Recursive-doubling allreduce of a `bytes`-sized buffer; optionally
  /// combines a per-rank double contribution with max().
  sim::Task allreduce(int rank, double bytes, double contribution = 0.0,
                      double* reduced = nullptr);
  sim::Task gather(int rank, int root, double bytesPerRank);
  sim::Task scatter(int rank, int root, double bytesPerRank);
  /// Ring allgather: p−1 steps, each shipping one rank's block around.
  sim::Task allgather(int rank, double bytesPerRank);
  /// Linear all-to-all personalized exchange (`bytesPerPair` to each peer).
  sim::Task alltoall(int rank, double bytesPerPair);
  /// Reduce-scatter built from the binomial reduce plus a scatter.
  sim::Task reduceScatter(int rank, double bytesPerRank);

  /// Totals for tests/sensors.
  double bytesSent() const { return bytesSent_; }
  std::size_t messagesSent() const { return messagesSent_; }

  /// Snapshot support (DESIGN.md, snapshot/restore invariants): encodes the
  /// *logical* communicator state — the rank→node mapping, any staged
  /// retargets, the retarget tallies, and the traffic totals. Mailboxes,
  /// in-flight requests, and barrier bookkeeping are deliberately excluded:
  /// snapshots are taken at quiescent boundaries where no message is in
  /// flight, and a restored application rebuilds its World at relaunch and
  /// adopts this state onto it.
  void encodeState(core::SnapshotWriter& w) const;
  void decodeState(core::SnapshotReader& r);

  /// Internal mailbox machinery; public only for the recv awaiter.
  struct Waiter {
    int src;
    Message* slot;
    std::coroutine_handle<> handle;
  };
  struct Mailbox {
    std::deque<Message> pending;
    std::deque<Waiter> waiters;
  };

 private:
  struct MailboxKey {
    int dst;
    int tag;
    bool operator<(const MailboxKey& o) const {
      return dst != o.dst ? dst < o.dst : tag < o.tag;
    }
  };

  Mailbox& mailbox(int dst, int tag);
  void deliver(int dst, Message msg);
  int vrank(int rank, int root) const {  // rank relative to root
    return (rank - root + size()) % size();
  }

  grid::Grid* grid_;
  std::vector<grid::NodeId> nodes_;
  std::string name_;
  CommProfiler* profiler_ = nullptr;
  std::map<MailboxKey, Mailbox> boxes_;
  std::map<int, grid::NodeId> stagedRetargets_;
  std::size_t retargetsCommitted_ = 0;
  std::size_t retargetsAborted_ = 0;

  // Barrier state.
  int barrierArrived_ = 0;
  std::uint64_t barrierGeneration_ = 0;
  std::map<std::uint64_t, std::shared_ptr<sim::Event>> barrierEvents_;

  double bytesSent_ = 0.0;
  std::size_t messagesSent_ = 0;
};

/// Internal tags reserved by collectives; applications should use tags < 1e6.
namespace tags {
inline constexpr int kBcast = 1000000;
inline constexpr int kReduce = 1000001;
inline constexpr int kGather = 1000002;
inline constexpr int kScatter = 1000003;
inline constexpr int kAllgather = 1000004;
inline constexpr int kAlltoall = 1000005;
inline constexpr int kAllreduceBase = 2000000;  // + round number
}  // namespace tags

}  // namespace grads::vmpi

#include "mem/cache.hpp"

#include "util/error.hpp"

namespace grads::mem {

LruCacheSim::LruCacheSim(std::size_t lines, std::size_t associativity)
    : lines_(lines), assoc_(associativity) {
  GRADS_REQUIRE(lines > 0, "LruCacheSim: zero lines");
  GRADS_REQUIRE(associativity > 0 && associativity <= lines,
                "LruCacheSim: bad associativity");
  GRADS_REQUIRE(lines % associativity == 0,
                "LruCacheSim: lines must be a multiple of associativity");
  sets_.resize(lines / associativity);
}

bool LruCacheSim::access(std::uint64_t block) {
  Set& set = sets_[block % sets_.size()];
  auto it = set.map.find(block);
  if (it != set.map.end()) {
    set.lru.splice(set.lru.begin(), set.lru, it->second);
    ++hits_;
    return true;
  }
  ++misses_;
  if (set.lru.size() == assoc_) {
    set.map.erase(set.lru.back());
    set.lru.pop_back();
  }
  set.lru.push_front(block);
  set.map[block] = set.lru.begin();
  return false;
}

TraceSink LruCacheSim::sink() {
  return [this](const MemRef& r) { access(r.block); };
}

double LruCacheSim::missRatio() const {
  const auto n = accesses();
  return n == 0 ? 0.0 : static_cast<double>(misses_) / static_cast<double>(n);
}

LruCacheSim LruCacheSim::forGeometry(const grid::CacheGeometry& g) {
  return LruCacheSim(g.lines(), g.associativity);
}

LruCacheSim LruCacheSim::fullyAssociative(const grid::CacheGeometry& g) {
  return LruCacheSim(g.lines(), g.lines());
}

}  // namespace grads::mem

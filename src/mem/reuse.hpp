#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

#include "mem/trace.hpp"

namespace grads::mem {

inline constexpr std::uint64_t kColdMiss =
    std::numeric_limits<std::uint64_t>::max();

/// Histogram of memory-reuse distances with log2 bucketing. Distance d means
/// d distinct blocks were touched between two accesses to the same block;
/// kColdMiss marks first-ever accesses.
class ReuseHistogram {
 public:
  void add(std::uint64_t distance);

  std::uint64_t total() const { return total_; }
  std::uint64_t coldMisses() const { return cold_; }

  /// Number of accesses whose reuse distance is >= `capacityBlocks` (these
  /// miss in a fully-associative LRU cache of that many blocks), including
  /// cold misses.
  std::uint64_t missesForCapacity(std::uint64_t capacityBlocks) const;

  /// Distance below which fraction `q` of *finite*-distance accesses fall
  /// (upper edge of the containing log2 bucket).
  std::uint64_t quantile(double q) const;

  /// Merges another histogram into this one.
  void merge(const ReuseHistogram& other);

 private:
  static int bucketOf(std::uint64_t d);
  static std::uint64_t bucketUpperEdge(int b);

  std::vector<std::uint64_t> buckets_;  // buckets_[b] counts d in [2^(b-1), 2^b)
  std::uint64_t cold_ = 0;
  std::uint64_t total_ = 0;
};

/// Online LRU stack-distance (memory reuse distance) computation — Olken's
/// algorithm implemented with a Fenwick tree over access timestamps:
/// O(log T) per access. Collects a global histogram and one per site.
class ReuseDistanceAnalyzer {
 public:
  ReuseDistanceAnalyzer();

  void access(const MemRef& ref);
  /// Convenience sink adapter.
  TraceSink sink();

  const ReuseHistogram& global() const { return global_; }
  const std::map<std::uint32_t, ReuseHistogram>& perSite() const {
    return perSite_;
  }
  std::uint64_t accesses() const { return time_; }
  std::uint64_t distinctBlocks() const { return lastAccess_.size(); }

 private:
  void fenwickAdd(std::size_t pos, std::int64_t delta);
  std::int64_t fenwickPrefix(std::size_t pos) const;  // sum of [0, pos]
  void ensureCapacity(std::size_t needed);

  std::vector<std::int64_t> fenwick_;
  std::vector<std::uint8_t> active_;
  // Determinism audit (grads-lint R2): lookup-only — find/emplace by block
  // id, never iterated. Distances come from the Fenwick tree and histograms
  // from ordered buckets, so hash order never reaches any reported number.
  std::unordered_map<std::uint64_t, std::uint64_t> lastAccess_;
  std::uint64_t time_ = 0;
  ReuseHistogram global_;
  std::map<std::uint32_t, ReuseHistogram> perSite_;
};

}  // namespace grads::mem

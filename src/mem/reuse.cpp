#include "mem/reuse.hpp"

#include <bit>

#include "util/error.hpp"

namespace grads::mem {

int ReuseHistogram::bucketOf(std::uint64_t d) {
  // Bucket 0: d == 0; bucket b >= 1: d in [2^(b-1), 2^b).
  if (d == 0) return 0;
  return std::bit_width(d);
}

std::uint64_t ReuseHistogram::bucketUpperEdge(int b) {
  if (b == 0) return 0;
  return (1ULL << b) - 1;
}

void ReuseHistogram::add(std::uint64_t distance) {
  ++total_;
  if (distance == kColdMiss) {
    ++cold_;
    return;
  }
  const int b = bucketOf(distance);
  if (static_cast<std::size_t>(b) >= buckets_.size()) {
    buckets_.resize(static_cast<std::size_t>(b) + 1, 0);
  }
  ++buckets_[static_cast<std::size_t>(b)];
}

std::uint64_t ReuseHistogram::missesForCapacity(
    std::uint64_t capacityBlocks) const {
  // An access with reuse distance d hits in a fully-associative LRU cache of
  // C blocks iff d < C. We count conservatively at bucket granularity using
  // the bucket's upper edge.
  std::uint64_t misses = cold_;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (bucketUpperEdge(static_cast<int>(b)) >= capacityBlocks) {
      misses += buckets_[b];
    }
  }
  return misses;
}

std::uint64_t ReuseHistogram::quantile(double q) const {
  GRADS_REQUIRE(q >= 0.0 && q <= 1.0, "ReuseHistogram::quantile: bad q");
  std::uint64_t finite = total_ - cold_;
  if (finite == 0) return 0;
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(finite));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    cum += buckets_[b];
    if (cum > target) return bucketUpperEdge(static_cast<int>(b));
  }
  return buckets_.empty() ? 0 : bucketUpperEdge(static_cast<int>(buckets_.size()) - 1);
}

void ReuseHistogram::merge(const ReuseHistogram& other) {
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t b = 0; b < other.buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  cold_ += other.cold_;
  total_ += other.total_;
}

ReuseDistanceAnalyzer::ReuseDistanceAnalyzer() = default;

void ReuseDistanceAnalyzer::fenwickAdd(std::size_t pos, std::int64_t delta) {
  for (std::size_t i = pos + 1; i <= fenwick_.size(); i += i & (~i + 1)) {
    fenwick_[i - 1] += delta;
  }
}

std::int64_t ReuseDistanceAnalyzer::fenwickPrefix(std::size_t pos) const {
  std::int64_t s = 0;
  for (std::size_t i = pos + 1; i > 0; i -= i & (~i + 1)) s += fenwick_[i - 1];
  return s;
}

void ReuseDistanceAnalyzer::ensureCapacity(std::size_t needed) {
  if (fenwick_.size() >= needed) return;
  // A Fenwick tree cannot simply be zero-extended (new nodes cover ranges
  // that include old positions), so rebuild from the active-marker bitmap.
  std::size_t cap = std::max<std::size_t>(1024, fenwick_.size());
  while (cap < needed) cap *= 2;
  active_.resize(cap, 0);
  fenwick_.assign(cap, 0);
  for (std::size_t p = 0; p < active_.size(); ++p) {
    if (active_[p] != 0) fenwickAdd(p, +1);
  }
}

void ReuseDistanceAnalyzer::access(const MemRef& ref) {
  const std::uint64_t t = time_++;
  ensureCapacity(time_);

  std::uint64_t distance = kColdMiss;
  auto it = lastAccess_.find(ref.block);
  if (it != lastAccess_.end()) {
    const std::uint64_t t0 = it->second;
    // Distinct blocks touched strictly between t0 and t = active markers in
    // (t0, t); the marker for this block itself sits at t0 and is excluded.
    const std::int64_t between = fenwickPrefix(static_cast<std::size_t>(t - 1)) -
                                 fenwickPrefix(static_cast<std::size_t>(t0));
    distance = static_cast<std::uint64_t>(between);
    fenwickAdd(static_cast<std::size_t>(t0), -1);
    active_[static_cast<std::size_t>(t0)] = 0;
    it->second = t;
  } else {
    lastAccess_.emplace(ref.block, t);
  }
  fenwickAdd(static_cast<std::size_t>(t), +1);
  active_[static_cast<std::size_t>(t)] = 1;

  global_.add(distance);
  perSite_[ref.site].add(distance);
}

TraceSink ReuseDistanceAnalyzer::sink() {
  return [this](const MemRef& r) { access(r); };
}

}  // namespace grads::mem

#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "grid/node.hpp"
#include "mem/trace.hpp"

namespace grads::mem {

/// Set-associative LRU cache simulator operating on block addresses.
/// With associativity == number of lines it degenerates to fully-associative
/// LRU — the model the reuse-distance analysis predicts exactly.
class LruCacheSim {
 public:
  /// `lines` total cache lines, split into lines/associativity sets.
  LruCacheSim(std::size_t lines, std::size_t associativity);

  /// Returns true on hit.
  bool access(std::uint64_t block);
  TraceSink sink();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t accesses() const { return hits_ + misses_; }
  double missRatio() const;

  std::size_t lines() const { return lines_; }
  std::size_t sets() const { return sets_.size(); }

  static LruCacheSim forGeometry(const grid::CacheGeometry& g);
  /// Fully-associative variant with the same capacity.
  static LruCacheSim fullyAssociative(const grid::CacheGeometry& g);

 private:
  // Determinism audit (grads-lint R2): eviction picks the LRU list's back,
  // never a map iteration — `map` is a lookup-only index from block id to
  // list position, so hash order cannot influence which line is evicted.
  struct Set {
    std::list<std::uint64_t> lru;  // front = most recent
    std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> map;
  };

  std::size_t lines_;
  std::size_t assoc_;
  std::vector<Set> sets_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace grads::mem

#pragma once

#include <cstdint>
#include <functional>

namespace grads::mem {

/// One memory reference, in units of cache blocks. `site` identifies the
/// static load/store instruction ("reference site") that issued it — the
/// paper's MRD models are built per memory instruction (§3.2, [11]).
struct MemRef {
  std::uint64_t block = 0;
  std::uint32_t site = 0;
  bool isWrite = false;
};

using TraceSink = std::function<void(const MemRef&)>;

/// Converts an element index within a named array into a distinct block
/// address space (arrays are placed 1 GiB apart so they never alias).
std::uint64_t arrayBlock(std::uint32_t arrayId, std::uint64_t elementIndex,
                         std::uint64_t elementsPerBlock);

/// Reference-site ids used by the kernel generators (stable across runs so
/// per-site models can be trained on one size and evaluated on another).
namespace sites {
inline constexpr std::uint32_t kMatmulA = 0;
inline constexpr std::uint32_t kMatmulB = 1;
inline constexpr std::uint32_t kMatmulC = 2;
inline constexpr std::uint32_t kQrPanel = 10;
inline constexpr std::uint32_t kQrTrailing = 11;
inline constexpr std::uint32_t kStencilRead = 20;
inline constexpr std::uint32_t kStencilWrite = 21;
inline constexpr std::uint32_t kNBodyPosI = 30;
inline constexpr std::uint32_t kNBodyPosJ = 31;
inline constexpr std::uint32_t kNBodyAcc = 32;
}  // namespace sites

/// ijk dense matrix multiply C = A·B on n×n doubles.
void traceMatmul(std::size_t n, std::size_t elementsPerBlock, TraceSink sink);

/// Right-looking unblocked Householder QR on an n×n matrix: per step k a
/// panel sweep (column k) and a trailing-matrix update.
void traceQr(std::size_t n, std::size_t elementsPerBlock, TraceSink sink);

/// 1-D 3-point Jacobi stencil, `iters` sweeps over n points.
void traceStencil(std::size_t n, std::size_t iters,
                  std::size_t elementsPerBlock, TraceSink sink);

/// One O(n²) N-body force sweep over n particles.
void traceNBody(std::size_t n, std::size_t elementsPerBlock, TraceSink sink);

/// Exact floating point operation counts of the traced kernels — the
/// "hardware counter" values the performance modeler trains on.
double matmulFlopCount(std::size_t n);
double qrFlopCount(std::size_t n);
double stencilFlopCount(std::size_t n, std::size_t iters);
double nbodyFlopCount(std::size_t n);

}  // namespace grads::mem

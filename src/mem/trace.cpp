#include "mem/trace.hpp"

#include "linalg/matrix.hpp"
#include "util/error.hpp"

namespace grads::mem {

std::uint64_t arrayBlock(std::uint32_t arrayId, std::uint64_t elementIndex,
                         std::uint64_t elementsPerBlock) {
  GRADS_REQUIRE(elementsPerBlock > 0, "arrayBlock: elementsPerBlock == 0");
  constexpr std::uint64_t kArrayStride = 1ULL << 30;  // 1 GiB apart
  return arrayId * kArrayStride + elementIndex / elementsPerBlock;
}

void traceMatmul(std::size_t n, std::size_t epb, TraceSink sink) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        sink(MemRef{arrayBlock(0, i * n + k, epb), sites::kMatmulA, false});
        sink(MemRef{arrayBlock(1, k * n + j, epb), sites::kMatmulB, false});
      }
      sink(MemRef{arrayBlock(2, i * n + j, epb), sites::kMatmulC, true});
    }
  }
}

void traceQr(std::size_t n, std::size_t epb, TraceSink sink) {
  // Right-looking Householder: for each step k, read column k (panel), then
  // update the trailing matrix A[k:, k+1:].
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = k; i < n; ++i) {
      sink(MemRef{arrayBlock(0, i * n + k, epb), sites::kQrPanel, true});
    }
    for (std::size_t j = k + 1; j < n; ++j) {
      for (std::size_t i = k; i < n; ++i) {
        sink(MemRef{arrayBlock(0, i * n + j, epb), sites::kQrTrailing, true});
      }
    }
  }
}

void traceStencil(std::size_t n, std::size_t iters, std::size_t epb,
                  TraceSink sink) {
  GRADS_REQUIRE(n >= 3, "traceStencil: need n >= 3");
  for (std::size_t it = 0; it < iters; ++it) {
    const std::uint32_t src = it % 2 == 0 ? 0 : 1;
    const std::uint32_t dst = 1 - src;
    for (std::size_t i = 1; i + 1 < n; ++i) {
      sink(MemRef{arrayBlock(src, i - 1, epb), sites::kStencilRead, false});
      sink(MemRef{arrayBlock(src, i, epb), sites::kStencilRead, false});
      sink(MemRef{arrayBlock(src, i + 1, epb), sites::kStencilRead, false});
      sink(MemRef{arrayBlock(dst, i, epb), sites::kStencilWrite, true});
    }
  }
}

void traceNBody(std::size_t n, std::size_t epb, TraceSink sink) {
  // pos: array 0 (3 doubles/particle); acc: array 1.
  for (std::size_t i = 0; i < n; ++i) {
    sink(MemRef{arrayBlock(0, 3 * i, epb), sites::kNBodyPosI, false});
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      sink(MemRef{arrayBlock(0, 3 * j, epb), sites::kNBodyPosJ, false});
    }
    sink(MemRef{arrayBlock(1, 3 * i, epb), sites::kNBodyAcc, true});
  }
}

double matmulFlopCount(std::size_t n) { return linalg::matmulFlops(n); }

double qrFlopCount(std::size_t n) { return linalg::qrFlops(n, n); }

double stencilFlopCount(std::size_t n, std::size_t iters) {
  // 3 adds + 1 multiply per interior point per sweep.
  return 4.0 * static_cast<double>(n - 2) * static_cast<double>(iters);
}

double nbodyFlopCount(std::size_t n) {
  // ~20 flops per pairwise interaction (distance, inverse-cube, accumulate).
  const double dn = static_cast<double>(n);
  return 20.0 * dn * (dn - 1.0);
}

}  // namespace grads::mem

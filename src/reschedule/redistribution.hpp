#pragma once

#include <cstddef>
#include <vector>

namespace grads::reschedule {

/// Exact data-movement volumes for a 1-D block-cyclic N-to-M processor
/// redistribution — the operation SRS performs when a checkpoint written by
/// N processes is restored by M processes ("SRS can transparently handle
/// the redistribution of certain data distributions (e.g., block cyclic)
/// between different numbers of processors", paper §4.1.1).
///
/// Elements are grouped into blocks of `blockElements`; block j belongs to
/// old rank (j mod N) and new rank (j mod M). The ownership pattern repeats
/// every lcm(N, M) blocks, so volumes are computed from one period plus the
/// remainder — O(lcm(N,M) + N·M), independent of the array size.
class RedistributionPlan {
 public:
  RedistributionPlan(int oldRanks, int newRanks, std::size_t totalElements,
                     std::size_t blockElements, double bytesPerElement);

  int oldRanks() const { return n_; }
  int newRanks() const { return m_; }

  /// Bytes new rank `to` must fetch from old rank `from`'s checkpoint.
  double bytes(int from, int to) const;

  /// Total bytes new rank `to` reads (its whole new share).
  double bytesInto(int to) const;
  /// Total bytes old rank `from` serves.
  double bytesFrom(int from) const;
  /// Bytes that do not move between ranks (from == to).
  double residentBytes() const;
  /// Total array size in bytes.
  double totalBytes() const;

 private:
  int n_;
  int m_;
  double bytesPerElement_;
  std::vector<double> volume_;  // n_ × m_, element counts
};

}  // namespace grads::reschedule

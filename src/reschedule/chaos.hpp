#pragma once

#include <map>
#include <vector>

#include "grid/grid.hpp"
#include "reschedule/failure.hpp"
#include "services/ibp.hpp"
#include "services/nws.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace grads::reschedule {

/// One scheduled fault in a chaos campaign. Which fields matter depends on
/// `kind`; `durationSec <= 0` makes the fault permanent (no recovery event).
enum class ChaosKind {
  kNodeFailure,    ///< fail-stop `node`; GIS stays stale for gisLagSec
  kLinkPartition,  ///< `link` refuses transfers (LinkDownError) while down
  kLinkDegrade,    ///< `link` delivers bandwidthScale × nominal bandwidth
  kNwsOutage,      ///< the sensor battery goes dark (forecasts age out)
  kDepotOutage,    ///< IBP depot on `node` refuses puts/gets while down
  kBitFlip,        ///< bit-rot in one object on depot `node` (silent)
  kTornWrite,      ///< truncates one object on depot `node` to tornKeepFrac
  kStaleDelivery,  ///< depot `node` serves outdated content for one object
};

const char* chaosKindName(ChaosKind kind);

struct ChaosEvent {
  ChaosKind kind = ChaosKind::kNodeFailure;
  double atSec = 0.0;        ///< absolute injection time
  double durationSec = 0.0;  ///< outage length; <= 0 means no recovery
  grid::NodeId node = grid::kNoId;  ///< kNodeFailure / kDepotOutage
  grid::LinkId link = grid::kNoId;  ///< kLinkPartition / kLinkDegrade
  double bandwidthScale = 0.25;     ///< kLinkDegrade
  double detectionDelaySec = 5.0;   ///< kNodeFailure heartbeat timeout
  double gisLagSec = 0.0;           ///< kNodeFailure stale-directory window
  /// Integrity kinds: seed for the victim draw at fire time (the depot's
  /// object population is unknown when the campaign is generated).
  std::uint64_t victimSeed = 0;
  double tornKeepFrac = 0.5;        ///< kTornWrite surviving fraction
};

/// Tallies of faults actually applied (recoveries counted separately).
struct ChaosCounters {
  int nodeFailures = 0;
  int nodeRecoveries = 0;
  int linkPartitions = 0;
  int linkDegrades = 0;
  int nwsOutages = 0;
  int depotOutages = 0;
  int bitFlips = 0;
  int tornWrites = 0;
  int staleDeliveries = 0;
  /// Integrity events that fired against a depot holding no objects yet
  /// (nothing to corrupt — the draw came up empty, not an error).
  int integrityMisses = 0;
  int total() const {
    return nodeFailures + linkPartitions + linkDegrades + nwsOutages +
           depotOutages + bitFlips + tornWrites + staleDeliveries;
  }
};

/// Parameters for the seeded random campaign generator. Counts are events of
/// each kind, drawn uniformly over the horizon and over the candidate
/// node/link/depot pools.
struct CampaignConfig {
  double horizonSec = 1800.0;  ///< injection times drawn in [0, horizon)
  std::uint64_t seed = 1;

  int nodeFailures = 0;
  double nodeOutageSec = 300.0;     ///< failure -> recovery
  double detectionDelaySec = 5.0;
  double gisLagSec = 30.0;          ///< stale-GIS window per failure
  std::vector<grid::NodeId> candidateNodes;

  int linkPartitions = 0;
  double linkOutageSec = 60.0;
  int linkDegrades = 0;
  double degradeScale = 0.25;
  double degradeDurationSec = 300.0;
  std::vector<grid::LinkId> candidateLinks;

  int nwsOutages = 0;
  double nwsOutageSec = 240.0;

  int depotOutages = 0;
  double depotOutageSec = 180.0;
  std::vector<grid::NodeId> candidateDepots;

  int bitFlips = 0;
  int tornWrites = 0;
  int staleDeliveries = 0;
  double tornKeepFrac = 0.5;
  /// Depots whose objects integrity faults may hit; empty = use
  /// candidateDepots (the same pool as outages).
  std::vector<grid::NodeId> integrityDepots;
};

/// Draws a fault schedule from the config: deterministic in `config.seed`,
/// sorted by injection time.
std::vector<ChaosEvent> makeCampaign(const CampaignConfig& config);

/// Seeded deterministic fault-campaign driver: arms a schedule of
/// ChaosEvents against the simulation via engine daemons. Node events route
/// through the FailureInjector (heartbeat detection, stale-GIS windows, RSS
/// signaling); link, NWS, and depot events flip the respective degraded-mode
/// switches and schedule their recoveries.
///
/// `nws` / `ibp` may be null when the campaign has no events of those kinds.
class ChaosDriver {
 public:
  ChaosDriver(sim::Engine& engine, grid::Grid& grid, FailureInjector& failures,
              services::Nws* nws = nullptr, services::Ibp* ibp = nullptr);

  /// Arms one event (its injection and, if durationSec > 0, its recovery).
  void arm(const ChaosEvent& event);
  /// Arms a whole schedule.
  void armAll(const std::vector<ChaosEvent>& events);

  /// Restore-path arming: re-arms a campaign against a simulation restored
  /// from a snapshot taken at `t0`. The chaos driver's own daemons are not
  /// serialized (snapshots capture component *state*, never event-queue
  /// callbacks — see DESIGN.md on snapshot/restore invariants), so the
  /// harness re-derives them from the original schedule:
  ///   - events with atSec >= t0 are armed normally;
  ///   - events already over by t0 are skipped outright — their effects
  ///     (and recoveries, and any permanent corruption) live in the decoded
  ///     component state;
  ///   - events in flight at t0 (atSec < t0 < atSec + durationSec) re-arm
  ///     only their *pending* daemons: the recovery, plus — for node
  ///     failures — any stale-GIS / heartbeat-detection tail still due. The
  ///     injection itself is NOT re-applied (the decoded GIS/link/depot/NWS
  ///     state already reflects it), but the nesting depth bookkeeping is
  ///     rebuilt so overlapping windows heal in the right order.
  /// Counters are not rebuilt: both a restored run and its uncrashed
  /// reference start from the same decoded state, so post-restore tallies
  /// compare like for like.
  void armFrom(const std::vector<ChaosEvent>& events, double t0);

  const ChaosCounters& counters() const { return counters_; }
  std::size_t armed() const { return armed_; }

 private:
  void apply(const ChaosEvent& event);
  void applyIntegrity(const ChaosEvent& event);
  void revert(const ChaosEvent& event);

  sim::Engine* engine_;
  grid::Grid* grid_;
  FailureInjector* failures_;
  services::Nws* nws_;
  services::Ibp* ibp_;
  ChaosCounters counters_;
  std::size_t armed_ = 0;
  /// Nested NWS outages: the battery relights only when the last one ends.
  int nwsDarkDepth_ = 0;
  /// Per-link partition nesting (overlapping windows must not re-light
  /// a link another event still holds down). Same for depots.
  std::map<grid::LinkId, int> linkDownDepth_;
  std::map<grid::NodeId, int> depotDownDepth_;
};

}  // namespace grads::reschedule

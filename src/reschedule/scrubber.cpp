#include "reschedule/scrubber.hpp"

#include <utility>

#include "util/log.hpp"

namespace grads::reschedule {

struct DepotScrubber::State {
  sim::Engine* engine;
  services::Ibp* ibp;
  const Rss* rss;
  sim::Engine::EventHandle tick;
  double periodSec = 0.0;
  bool running = false;
  bool scanning = false;
  Stats stats;
};

namespace {

void armTick(const std::shared_ptr<DepotScrubber::State>& s);

sim::Task repairCopy(std::shared_ptr<DepotScrubber::State> s, std::string key,
                     Rss::SliceEntry want, grid::NodeId to,
                     grid::NodeId from) {
  // Depot-to-depot copy of the surviving good bytes; the rewritten object
  // carries the manifest digest again. Unfenced: the scrubber acts for the
  // ledger, not for any incarnation.
  services::PutOptions opts;
  opts.digest = want.digest;
  // Re-replication is the canonical bandwidth thief; bulk pacing keeps it
  // from crowding out application transfers on a contended link.
  opts.transferClass = grid::TransferClass::kBulk;
  try {
    co_await s->ibp->put(key, want.bytes, to, from, opts);
    ++s->stats.repaired;
    GRADS_INFO("scrub") << log::appAt(s->rss->appName(), s->engine->now())
                        << "re-replicated " << key;
  } catch (const services::DepotDownError&) {
    ++s->stats.deferred;
    GRADS_INFO("scrub") << log::appAt(s->rss->appName(), s->engine->now())
                        << "repair of " << key << " deferred (depot dark)";
  }
}

sim::Task scanTask(std::shared_ptr<DepotScrubber::State> s) {
  s->scanning = true;
  for (const int gen : s->rss->manifestGenerations()) {
    // Only published generations: an incomplete manifest describes a torn
    // checkpoint that restores already refuse — repairing it wastes IO.
    if (!s->rss->manifestComplete(gen)) continue;
    const Rss::Manifest* m = s->rss->manifest(gen);
    for (const auto& [id, want] : m->slices) {
      const auto& [array, rank] = id;
      struct Copy {
        std::string key;
        grid::NodeId node;
        bool good = false;
        bool present = false;
      };
      Copy primary{Srs::objectKey(s->rss->appName(), array, rank, gen),
                   want.primaryNode};
      Copy replica{Srs::objectKey(s->rss->appName(), array, rank, gen,
                                  /*replica=*/true),
                   want.replicaNode};
      for (Copy* c : {&primary, &replica}) {
        if (c->node == grid::kNoId) continue;
        ++s->stats.slicesChecked;
        c->present = s->ibp->exists(c->key);
        c->good = sliceCopyVerifies(*s->ibp, c->key, want);
        if (c->present && !c->good && s->ibp->isDepotUp(c->node)) {
          ++s->stats.corruptFound;
        } else if (!c->present) {
          ++s->stats.missingFound;
        }
      }
      const Copy* good =
          primary.good ? &primary : (replica.good ? &replica : nullptr);
      if (good == nullptr) {
        // Both copies gone or rotted: nothing on the grid can rebuild this
        // slice — restores will walk back past this generation.
        if (primary.node != grid::kNoId || replica.node != grid::kNoId) {
          ++s->stats.unrepairable;
          GRADS_WARN("scrub") << log::appAt(s->rss->appName(), s->engine->now())
                              << "slice " << primary.key
                              << " has no intact copy left";
        }
        continue;
      }
      for (const Copy* c : {&primary, &replica}) {
        if (c == good || c->node == grid::kNoId || c->good) continue;
        co_await repairCopy(s, c->key, want, c->node, good->node);
      }
    }
  }
  ++s->stats.scans;
  s->scanning = false;
}

void armTick(const std::shared_ptr<DepotScrubber::State>& s) {
  s->tick = s->engine->scheduleDaemon(s->periodSec, [s] {
    if (!s->running) return;
    // One scan at a time: a slow repair (dark depot retried next period)
    // must not pile overlapping walks onto the same manifests.
    if (!s->scanning) {
      s->engine->spawn(scanTask(s), s->rss->appName() + ".scrub");
    }
    armTick(s);
  });
}

}  // namespace

DepotScrubber::DepotScrubber(sim::Engine& engine, services::Ibp& ibp,
                             const Rss& rss)
    : state_(std::make_shared<State>()) {
  state_->engine = &engine;
  state_->ibp = &ibp;
  state_->rss = &rss;
}

DepotScrubber::~DepotScrubber() { stop(); }

bool DepotScrubber::start(double periodSec) {
  GRADS_REQUIRE(periodSec > 0.0, "DepotScrubber::start: period must be > 0");
  if (state_->running) return false;  // arm-once: one tick chain, ever
  state_->periodSec = periodSec;
  state_->running = true;
  armTick(state_);
  return true;
}

bool DepotScrubber::started() const { return state_->running; }

void DepotScrubber::adoptStats(const Stats& stats) { state_->stats = stats; }

void DepotScrubber::stop() {
  state_->running = false;
  state_->tick.cancel();
}

sim::Task DepotScrubber::scanOnce() { return scanTask(state_); }

bool DepotScrubber::scanning() const { return state_->scanning; }

const DepotScrubber::Stats& DepotScrubber::stats() const {
  return state_->stats;
}

}  // namespace grads::reschedule

#include "reschedule/governor.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::reschedule {

const char* governorVerdictName(GovernorVerdict verdict) {
  switch (verdict) {
    case GovernorVerdict::kAdmit: return "admit";
    case GovernorVerdict::kQuorumPending: return "quorum-pending";
    case GovernorVerdict::kInsideHysteresis: return "inside-hysteresis";
    case GovernorVerdict::kCoolingDown: return "cooling-down";
    case GovernorVerdict::kConcurrencyLimited: return "concurrency-limited";
  }
  return "?";
}

ViolationGovernor::ViolationGovernor(sim::Engine& engine,
                                     ActionJournal& journal,
                                     GovernorOptions options)
    : engine_(&engine), journal_(&journal), opts_(options) {
  GRADS_REQUIRE(opts_.quorumK >= 1 && opts_.quorumN >= opts_.quorumK,
                "ViolationGovernor: need 1 <= k <= n");
  GRADS_REQUIRE(opts_.hysteresisBand >= 0.0,
                "ViolationGovernor: negative hysteresis band");
  GRADS_REQUIRE(opts_.cooldownSec >= 0.0,
                "ViolationGovernor: negative cooldown");
  GRADS_REQUIRE(opts_.maxConcurrentActions >= 1,
                "ViolationGovernor: need at least one concurrent action");
}

void ViolationGovernor::count(Stats& s, GovernorVerdict verdict) const {
  switch (verdict) {
    case GovernorVerdict::kAdmit: ++s.admitted; break;
    case GovernorVerdict::kQuorumPending: ++s.quorumPending; break;
    case GovernorVerdict::kInsideHysteresis: ++s.insideHysteresis; break;
    case GovernorVerdict::kCoolingDown: ++s.coolingDown; break;
    case GovernorVerdict::kConcurrencyLimited: ++s.concurrencyLimited; break;
  }
}

GovernorVerdict ViolationGovernor::admit(
    const autopilot::ViolationReport& report) {
  // Every violating phase feeds the quorum window, even when the verdict
  // below suppresses for another reason: quorum counts *evidence*, and the
  // evidence is real regardless of cooldown or concurrency state.
  auto& phases = violatingPhases_[report.app];
  if (!phases.empty() && phases.back() == report.phase) {
    // One report per phase: a re-raise at the same phase is not new
    // evidence.
  } else {
    phases.push_back(report.phase);
  }
  while (!phases.empty() &&
         phases.front() + static_cast<std::size_t>(opts_.quorumN) <=
             report.phase + 1) {
    phases.pop_front();
  }

  GovernorVerdict verdict = GovernorVerdict::kAdmit;
  const double cooldownAnchor = journal_->lastResolvedAt(report.app);
  const double extraCooldown =
      cooldownExtra_ ? cooldownExtra_(report.app) : 0.0;
  bool mistrustHold = false;
  if (static_cast<int>(phases.size()) < opts_.quorumK) {
    verdict = GovernorVerdict::kQuorumPending;
  } else if (report.upperTolerance > 0.0 &&
             report.avgRatio <
                 report.upperTolerance * (1.0 + opts_.hysteresisBand)) {
    verdict = GovernorVerdict::kInsideHysteresis;
  } else if (cooldownAnchor >= 0.0 &&
             engine_->now() - cooldownAnchor <
                 opts_.cooldownSec + extraCooldown) {
    verdict = GovernorVerdict::kCoolingDown;
    mistrustHold = engine_->now() - cooldownAnchor >= opts_.cooldownSec;
  } else if (journal_->inFlight() >= opts_.maxConcurrentActions) {
    verdict = GovernorVerdict::kConcurrencyLimited;
  }

  count(total_, verdict);
  count(perApp_[report.app], verdict);
  if (mistrustHold) {
    ++total_.mistrustHolds;
    ++perApp_[report.app].mistrustHolds;
  }
  if (verdict == GovernorVerdict::kAdmit) {
    GRADS_INFO("governor") << log::appAt(report.app, engine_->now())
                           << "violation at phase " << report.phase
                           << " admitted (avg ratio " << report.avgRatio
                           << ", " << phases.size() << "/" << opts_.quorumN
                           << " violating phases)";
  } else {
    GRADS_INFO("governor") << log::appAt(report.app, engine_->now())
                           << "violation at phase " << report.phase
                           << " suppressed: " << governorVerdictName(verdict)
                           << " (avg ratio " << report.avgRatio << ")";
  }
  return verdict;
}

void ViolationGovernor::resetApp(const std::string& app) {
  violatingPhases_.erase(app);
}

ViolationGovernor::Stats ViolationGovernor::statsFor(
    const std::string& app) const {
  const auto it = perApp_.find(app);
  return it == perApp_.end() ? Stats{} : it->second;
}

namespace {

void encodeStats(core::SnapshotWriter& w,
                 const ViolationGovernor::Stats& s) {
  w.putI64(s.admitted);
  w.putI64(s.quorumPending);
  w.putI64(s.insideHysteresis);
  w.putI64(s.coolingDown);
  w.putI64(s.concurrencyLimited);
  w.putI64(s.mistrustHolds);
}

ViolationGovernor::Stats decodeStats(core::SnapshotReader& r) {
  ViolationGovernor::Stats s;
  s.admitted = static_cast<int>(r.getI64());
  s.quorumPending = static_cast<int>(r.getI64());
  s.insideHysteresis = static_cast<int>(r.getI64());
  s.coolingDown = static_cast<int>(r.getI64());
  s.concurrencyLimited = static_cast<int>(r.getI64());
  s.mistrustHolds = static_cast<int>(r.getI64());
  return s;
}

}  // namespace

void ViolationGovernor::encodeState(core::SnapshotWriter& w) const {
  w.putU64(violatingPhases_.size());
  for (const auto& [app, phases] : violatingPhases_) {
    w.putStr(app);
    w.putU64(phases.size());
    for (const std::size_t phase : phases) w.putU64(phase);
  }
  encodeStats(w, total_);
  w.putU64(perApp_.size());
  for (const auto& [app, stats] : perApp_) {
    w.putStr(app);
    encodeStats(w, stats);
  }
}

void ViolationGovernor::decodeState(core::SnapshotReader& r) {
  violatingPhases_.clear();
  const std::uint64_t nApps = r.getU64();
  for (std::uint64_t i = 0; i < nApps; ++i) {
    const std::string app = r.getStr();
    auto& phases = violatingPhases_[app];
    const std::uint64_t nPhases = r.getU64();
    for (std::uint64_t j = 0; j < nPhases; ++j) {
      phases.push_back(static_cast<std::size_t>(r.getU64()));
    }
  }
  total_ = decodeStats(r);
  perApp_.clear();
  const std::uint64_t nPerApp = r.getU64();
  for (std::uint64_t i = 0; i < nPerApp; ++i) {
    const std::string app = r.getStr();
    perApp_[app] = decodeStats(r);
  }
}

}  // namespace grads::reschedule

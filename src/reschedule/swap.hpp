#pragma once

#include <vector>

#include "reschedule/journal.hpp"
#include "services/gis.hpp"
#include "services/nws.hpp"
#include "sim/task.hpp"
#include "vmpi/world.hpp"

namespace grads::reschedule {

/// Swap policies evaluated in [14] ("We have designed and evaluated several
/// policies"), plus kNever as the no-rescheduling control.
enum class SwapPolicy {
  kNever,         ///< control: never swap
  kGreedy,        ///< swap a degraded active node for the best idle one
  kPeriodicBest,  ///< keep the k individually-fastest pool nodes active
  kModelBased     ///< minimize predicted iteration time incl. communication
};

const char* swapPolicyName(SwapPolicy p);

struct SwapConfig {
  SwapPolicy policy = SwapPolicy::kGreedy;
  double checkPeriodSec = 10.0;
  /// Active node is "slow" when its availability drops below this.
  double degradeThreshold = 0.75;
  /// A candidate must beat the slow node's rate by this factor.
  double improveMargin = 1.15;
  /// Per-process working-set size moved on a swap (the data allocation
  /// itself cannot be modified, §4.2.1 — only relocated).
  double perProcessDataBytes = 8.0 * 1024 * 1024;
  /// Per-iteration flops per process (for the model-based policy).
  double flopsPerRankPerIteration = 0.0;
  /// Per-iteration synchronizing messages (for the latency penalty).
  double messagesPerIteration = 2.0;
};

/// MPI process swapping (paper §4.2): the application is launched with more
/// machines than it uses; ranks in the World form the *active set*, the
/// remaining pool nodes are *inactive*. The swap rescheduler watches node
/// performance and, at the application's communication points, retargets
/// slow ranks onto faster idle machines — communication calls are hijacked
/// via the World's mutable rank→node mapping, so the application never
/// notices.
class SwapManager {
 public:
  SwapManager(vmpi::World& world, std::vector<grid::NodeId> pool,
              const services::Nws* nws, SwapConfig config);

  /// Begins periodic policy evaluation on the engine.
  void start();
  void stop() { running_ = false; }

  /// Wires ground-truth reachability: candidates that fail-stopped are
  /// skipped at evaluation, and a node that dies between prepare (enqueue)
  /// and commit (iteration boundary) aborts its swap instead of committing
  /// a rank onto a corpse. Null = every pool node is assumed alive.
  void setGis(const services::Gis* gis) { gis_ = gis; }
  /// Journals every swap as a prepare/commit/rollback transaction.
  void setJournal(ActionJournal* journal) { journal_ = journal; }

  /// Application hook, called by every rank at each iteration boundary
  /// (after the iteration's closing collective). Rank 0 applies pending
  /// swap commands — paying the data-movement cost — then everyone
  /// resynchronizes.
  sim::Task atIterationBoundary(int rank);

  /// Effective flop rate of a node right now (NWS forecast when available,
  /// ground truth otherwise).
  double nodeRate(grid::NodeId node) const;

  /// Predicted duration of one iteration on a candidate active set
  /// (model-based policy; also used by benches).
  double predictIterationSeconds(const std::vector<grid::NodeId>& active) const;

  struct SwapEvent {
    double time = 0.0;
    int rank = -1;
    grid::NodeId from = grid::kNoId;
    grid::NodeId to = grid::kNoId;
  };
  const std::vector<SwapEvent>& history() const { return history_; }
  std::size_t pendingSwaps() const { return pending_.size(); }
  /// Swaps that reached the commit point and flipped the mapping.
  std::size_t committedSwaps() const { return history_.size(); }
  /// Swaps rolled back between prepare and commit (node died, transfer
  /// failed): the rank stayed on its prior node.
  std::size_t rolledBackSwaps() const { return rolledBack_; }
  const std::vector<grid::NodeId>& pool() const { return pool_; }

  /// Runs one policy evaluation immediately (normally driven by start()).
  void evaluate();

 private:
  std::vector<grid::NodeId> inactiveNodes() const;
  void enqueue(int rank, grid::NodeId to);
  bool reachable(grid::NodeId node) const;

  vmpi::World* world_;
  std::vector<grid::NodeId> pool_;
  const services::Nws* nws_;
  const services::Gis* gis_ = nullptr;
  ActionJournal* journal_ = nullptr;
  SwapConfig cfg_;
  bool running_ = false;
  struct Command {
    int rank;
    grid::NodeId to;
  };
  std::vector<Command> pending_;
  std::vector<SwapEvent> history_;
  std::size_t rolledBack_ = 0;
};

}  // namespace grads::reschedule

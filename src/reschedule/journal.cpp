#include "reschedule/journal.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::reschedule {

const char* actionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kMigrate: return "migrate";
    case ActionKind::kSwap: return "swap";
  }
  return "?";
}

const char* actionStateName(ActionState state) {
  switch (state) {
    case ActionState::kPrepared: return "prepared";
    case ActionState::kCommitting: return "committing";
    case ActionState::kCommitted: return "committed";
    case ActionState::kRolledBack: return "rolled-back";
  }
  return "?";
}

ActionJournal::ActionJournal(sim::Engine& engine) : engine_(&engine) {}

int ActionJournal::open(const std::string& app, ActionKind kind,
                        std::vector<grid::NodeId> prior,
                        std::vector<grid::NodeId> target) {
  GRADS_REQUIRE(openByApp_.count(app) == 0,
                "ActionJournal::open: app already has an action in flight");
  ActionRecord r;
  r.id = static_cast<int>(records_.size()) + 1;
  r.app = app;
  r.kind = kind;
  r.state = ActionState::kPrepared;
  r.openedAt = engine_->now();
  r.prior = std::move(prior);
  r.target = std::move(target);
  records_.push_back(std::move(r));
  openByApp_[app] = records_.back().id;
  ++inFlight_;
  ++opened_;
  GRADS_INFO("journal") << log::appAt(app, engine_->now()) << "action #"
                        << records_.back().id << " ("
                        << actionKindName(kind) << ") prepared";
  return records_.back().id;
}

ActionRecord& ActionJournal::mutableRecord(int id) {
  GRADS_REQUIRE(id >= 1 && id <= static_cast<int>(records_.size()),
                "ActionJournal: unknown record id");
  return records_[static_cast<std::size_t>(id) - 1];
}

const ActionRecord& ActionJournal::record(int id) const {
  return const_cast<ActionJournal*>(this)->mutableRecord(id);
}

void ActionJournal::setTarget(int id, std::vector<grid::NodeId> target) {
  ActionRecord& r = mutableRecord(id);
  GRADS_REQUIRE(r.resolvedAt < 0.0, "ActionJournal::setTarget: resolved");
  r.target = std::move(target);
}

void ActionJournal::beginCommit(int id) {
  ActionRecord& r = mutableRecord(id);
  GRADS_REQUIRE(r.state == ActionState::kPrepared,
                "ActionJournal::beginCommit: not in prepared state");
  r.state = ActionState::kCommitting;
  GRADS_INFO("journal") << log::appAt(r.app, engine_->now()) << "action #"
                        << r.id << " committing";
}

void ActionJournal::resolve(ActionRecord& r, ActionState state,
                            const std::string& note) {
  GRADS_REQUIRE(r.state == ActionState::kPrepared ||
                    r.state == ActionState::kCommitting,
                "ActionJournal: action already resolved");
  r.state = state;
  r.resolvedAt = engine_->now();
  r.note = note;
  openByApp_.erase(r.app);
  lastResolved_[r.app] = r.resolvedAt;
  --inFlight_;
  if (state == ActionState::kCommitted) {
    ++committed_;
  } else {
    ++rolledBack_;
  }
  GRADS_INFO("journal") << log::appAt(r.app, engine_->now()) << "action #"
                        << r.id << " " << actionStateName(state)
                        << (note.empty() ? "" : " (" + note + ")");
  if (onResolve_) onResolve_(r);
}

void ActionJournal::commit(int id, const std::string& note) {
  resolve(mutableRecord(id), ActionState::kCommitted, note);
}

void ActionJournal::rollback(int id, const std::string& note) {
  resolve(mutableRecord(id), ActionState::kRolledBack, note);
}

const ActionRecord* ActionJournal::openAction(const std::string& app) const {
  const auto it = openByApp_.find(app);
  if (it == openByApp_.end()) return nullptr;
  return &record(it->second);
}

double ActionJournal::lastResolvedAt(const std::string& app) const {
  const auto it = lastResolved_.find(app);
  return it == lastResolved_.end() ? -1.0 : it->second;
}

int ActionJournal::committedFor(const std::string& app) const {
  int n = 0;
  for (const auto& r : records_) {
    if (r.app == app && r.state == ActionState::kCommitted) ++n;
  }
  return n;
}

int ActionJournal::rolledBackFor(const std::string& app) const {
  int n = 0;
  for (const auto& r : records_) {
    if (r.app == app && r.state == ActionState::kRolledBack) ++n;
  }
  return n;
}

}  // namespace grads::reschedule

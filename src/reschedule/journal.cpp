#include "reschedule/journal.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::reschedule {

const char* actionKindName(ActionKind kind) {
  switch (kind) {
    case ActionKind::kMigrate: return "migrate";
    case ActionKind::kSwap: return "swap";
    case ActionKind::kPreempt: return "preempt";
  }
  return "?";
}

const char* actionStateName(ActionState state) {
  switch (state) {
    case ActionState::kPrepared: return "prepared";
    case ActionState::kCommitting: return "committing";
    case ActionState::kCommitted: return "committed";
    case ActionState::kRolledBack: return "rolled-back";
  }
  return "?";
}

ActionJournal::ActionJournal(sim::Engine& engine) : engine_(&engine) {}

int ActionJournal::open(const std::string& app, ActionKind kind,
                        std::vector<grid::NodeId> prior,
                        std::vector<grid::NodeId> target, bool pinned,
                        const std::string& note) {
  GRADS_REQUIRE(openByApp_.count(app) == 0,
                "ActionJournal::open: app already has an action in flight");
  GRADS_REQUIRE(!pinned || !target.empty(),
                "ActionJournal::open: pinned action needs a target");
  ActionRecord r;
  r.id = static_cast<int>(records_.size()) + 1;
  r.app = app;
  r.kind = kind;
  r.state = ActionState::kPrepared;
  r.openedAt = engine_->now();
  r.prior = std::move(prior);
  r.target = std::move(target);
  r.pinned = pinned;
  r.note = note;
  records_.push_back(std::move(r));
  openByApp_[app] = records_.back().id;
  ++inFlight_;
  ++opened_;
  GRADS_INFO("journal") << log::appAt(app, engine_->now()) << "action #"
                        << records_.back().id << " ("
                        << actionKindName(kind) << ") prepared";
  const int id = records_.back().id;
  if (onTransition_) onTransition_(records_.back());
  return id;
}

ActionRecord& ActionJournal::mutableRecord(int id) {
  GRADS_REQUIRE(id >= 1 && id <= static_cast<int>(records_.size()),
                "ActionJournal: unknown record id");
  return records_[static_cast<std::size_t>(id) - 1];
}

const ActionRecord& ActionJournal::record(int id) const {
  return const_cast<ActionJournal*>(this)->mutableRecord(id);
}

void ActionJournal::setTarget(int id, std::vector<grid::NodeId> target) {
  ActionRecord& r = mutableRecord(id);
  GRADS_REQUIRE(r.resolvedAt < 0.0, "ActionJournal::setTarget: resolved");
  r.target = std::move(target);
}

void ActionJournal::beginCommit(int id) {
  ActionRecord& r = mutableRecord(id);
  GRADS_REQUIRE(r.state == ActionState::kPrepared,
                "ActionJournal::beginCommit: not in prepared state");
  r.state = ActionState::kCommitting;
  GRADS_INFO("journal") << log::appAt(r.app, engine_->now()) << "action #"
                        << r.id << " committing";
  if (onTransition_) onTransition_(r);
}

void ActionJournal::resolve(ActionRecord& r, ActionState state,
                            const std::string& note) {
  GRADS_REQUIRE(r.state == ActionState::kPrepared ||
                    r.state == ActionState::kCommitting,
                "ActionJournal: action already resolved");
  r.state = state;
  r.resolvedAt = engine_->now();
  // A prepare-time note (the what-if decision summary) survives a noteless
  // resolve; an explicit resolve note still wins.
  if (!note.empty()) r.note = note;
  openByApp_.erase(r.app);
  lastResolved_[r.app] = r.resolvedAt;
  --inFlight_;
  if (state == ActionState::kCommitted) {
    ++committed_;
  } else {
    ++rolledBack_;
  }
  GRADS_INFO("journal") << log::appAt(r.app, engine_->now()) << "action #"
                        << r.id << " " << actionStateName(state)
                        << (note.empty() ? "" : " (" + note + ")");
  if (onResolve_) onResolve_(r);
  if (onTransition_) onTransition_(r);
}

void ActionJournal::commit(int id, const std::string& note) {
  resolve(mutableRecord(id), ActionState::kCommitted, note);
}

void ActionJournal::rollback(int id, const std::string& note) {
  resolve(mutableRecord(id), ActionState::kRolledBack, note);
}

const ActionRecord* ActionJournal::openAction(const std::string& app) const {
  const auto it = openByApp_.find(app);
  if (it == openByApp_.end()) return nullptr;
  return &record(it->second);
}

double ActionJournal::lastResolvedAt(const std::string& app) const {
  const auto it = lastResolved_.find(app);
  return it == lastResolved_.end() ? -1.0 : it->second;
}

int ActionJournal::committedFor(const std::string& app) const {
  int n = 0;
  for (const auto& r : records_) {
    if (r.app == app && r.state == ActionState::kCommitted) ++n;
  }
  return n;
}

int ActionJournal::rolledBackFor(const std::string& app) const {
  int n = 0;
  for (const auto& r : records_) {
    if (r.app == app && r.state == ActionState::kRolledBack) ++n;
  }
  return n;
}

int ActionJournal::recover(const std::string& note) {
  // Collect first, then resolve: resolve() mutates openByApp_, and walking
  // records_ by state directly would re-resolve records a concurrent
  // observer already closed. Only unresolved records qualify — this is what
  // makes a second scan a structural no-op rather than a double rollback.
  std::vector<int> unresolved;
  for (const auto& r : records_) {
    if (r.state == ActionState::kPrepared ||
        r.state == ActionState::kCommitting) {
      unresolved.push_back(r.id);
    }
  }
  for (const int id : unresolved) rollback(id, note);
  if (!unresolved.empty()) {
    ++recoveries_;
    GRADS_WARN("journal") << "recovery scan rolled back " << unresolved.size()
                          << " in-flight action(s) at t=" << engine_->now();
  }
  return static_cast<int>(unresolved.size());
}

void ActionJournal::encodeState(core::SnapshotWriter& w) const {
  w.putU64(records_.size());
  for (const auto& rec : records_) {
    w.putStr(rec.app);
    w.putU64(static_cast<std::uint64_t>(rec.kind));
    w.putU64(static_cast<std::uint64_t>(rec.state));
    w.putF64(rec.openedAt);
    w.putF64(rec.resolvedAt);
    w.putU64(rec.prior.size());
    for (const grid::NodeId id : rec.prior) w.putU64(id);
    w.putU64(rec.target.size());
    for (const grid::NodeId id : rec.target) w.putU64(id);
    w.putStr(rec.note);
    w.putBool(rec.pinned);
  }
  w.putI64(recoveries_);
}

void ActionJournal::decodeState(core::SnapshotReader& r) {
  records_.clear();
  openByApp_.clear();
  lastResolved_.clear();
  inFlight_ = 0;
  committed_ = 0;
  rolledBack_ = 0;
  const std::uint64_t nRecords = r.getU64();
  for (std::uint64_t i = 0; i < nRecords; ++i) {
    ActionRecord rec;
    rec.id = static_cast<int>(i) + 1;
    rec.app = r.getStr();
    rec.kind = static_cast<ActionKind>(r.getU64());
    rec.state = static_cast<ActionState>(r.getU64());
    rec.openedAt = r.getF64();
    rec.resolvedAt = r.getF64();
    const std::uint64_t nPrior = r.getU64();
    for (std::uint64_t j = 0; j < nPrior; ++j) {
      rec.prior.push_back(static_cast<grid::NodeId>(r.getU64()));
    }
    const std::uint64_t nTarget = r.getU64();
    for (std::uint64_t j = 0; j < nTarget; ++j) {
      rec.target.push_back(static_cast<grid::NodeId>(r.getU64()));
    }
    rec.note = r.getStr();
    rec.pinned = r.getBool();
    // Rebuild the derived indexes from the log itself.
    if (rec.state == ActionState::kPrepared ||
        rec.state == ActionState::kCommitting) {
      openByApp_[rec.app] = rec.id;
      ++inFlight_;
    } else {
      auto& anchor = lastResolved_[rec.app];
      anchor = std::max(anchor, rec.resolvedAt);
      if (rec.state == ActionState::kCommitted) {
        ++committed_;
      } else {
        ++rolledBack_;
      }
    }
    records_.push_back(std::move(rec));
  }
  opened_ = static_cast<int>(records_.size());
  recoveries_ = static_cast<int>(r.getI64());
}

}  // namespace grads::reschedule

#pragma once

#include "reschedule/srs.hpp"
#include "services/gis.hpp"
#include "sim/engine.hpp"

namespace grads::reschedule {

/// Fail-stop fault injection with heartbeat-style detection — the fault-
/// tolerance direction the paper's conclusions point at ("new capabilities,
/// such as fault tolerance", §5, carried into VGrADS).
///
/// At `failAt` the node becomes unreachable (launches onto it fail).
/// `gisLagSec` later the GIS registration times out and the directory stops
/// advertising the node — in the window between the two, schedulers see a
/// stale entry and must survive the failed launch. `detectionDelaySec`
/// after the failure — the heartbeat timeout — every registered RSS daemon
/// whose application might run there is signaled; applications observe the
/// signal at their next collective point, abandon the incarnation *without*
/// writing a checkpoint (the failed node's memory is gone), and the
/// application manager restarts them from the last periodic checkpoint on
/// the surviving resources.
///
/// Granularity note: the simulated fail-stop is observed at application
/// iteration boundaries (our apps are cooperative coroutines), so at most
/// one in-flight iteration of compute is charged beyond the failure
/// instant; the *data* loss — everything since the last checkpoint — is
/// modeled exactly.
///
/// Injection is idempotent: failing an already-down node neither
/// double-counts failuresInjected() nor re-signals the RSS daemons, and
/// recovering an up node is a no-op.
class FailureInjector {
 public:
  FailureInjector(sim::Engine& engine, services::Gis& gis)
      : engine_(&engine), gis_(&gis) {}

  /// Registers an application's RSS daemon for failure notifications.
  void watch(Rss& rss) { watched_.push_back(&rss); }

  /// Schedules a fail-stop of `node` at time `failAt` (absolute), detected
  /// `detectionDelaySec` later. `gisLagSec` is how long the GIS keeps
  /// advertising the dead node (0 = directory learns instantly, the
  /// pre-degraded-mode behavior).
  void scheduleNodeFailure(grid::NodeId node, sim::Time failAt,
                           sim::Time detectionDelaySec = 5.0,
                           sim::Time gisLagSec = 0.0);

  /// Schedules the node's recovery (it rejoins the available pool).
  void scheduleNodeRecovery(grid::NodeId node, sim::Time at);

  /// Immediate-effect entry points (used by the chaos driver, which does
  /// its own event scheduling). Both are idempotent.
  void failNow(grid::NodeId node, sim::Time detectionDelaySec,
               sim::Time gisLagSec);
  void recoverNow(grid::NodeId node);

  /// Restore-path re-arm: a node fail-stopped *before* a snapshot whose
  /// stale-GIS timeout and/or heartbeat detection had not yet fired at
  /// snapshot time. The failure itself is already in the decoded GIS state;
  /// this schedules only the pending tail daemons, at their original
  /// absolute times (times at or before now are skipped — they fired before
  /// the snapshot and their effects are in the image).
  void rearmFailureTail(grid::NodeId node, sim::Time detectAt,
                        sim::Time gisDownAt);

  std::size_t failuresInjected() const { return failures_; }

 private:
  sim::Engine* engine_;
  services::Gis* gis_;
  std::vector<Rss*> watched_;
  std::size_t failures_ = 0;
};

}  // namespace grads::reschedule

#pragma once

#include <map>
#include <string>
#include <vector>

#include "reschedule/redistribution.hpp"
#include "services/ibp.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "vmpi/world.hpp"

namespace grads::reschedule {

/// The Runtime Support System daemon (paper §4.1.1): lives for the whole
/// application execution, spans migrations, and mediates between external
/// actors (the rescheduler) and the SRS library inside the application —
/// carrying the stop flag, the restored iteration counter, and the previous
/// incarnation's process count.
class Rss {
 public:
  explicit Rss(sim::Engine& engine, std::string appName);

  const std::string& appName() const { return app_; }

  /// Rescheduler-side: ask the running application to checkpoint and stop.
  void requestStop();
  bool stopRequested() const { return stopRequested_; }

  /// Failure-detector-side: a node running this application fail-stopped.
  /// The application must abandon the incarnation *without* checkpointing
  /// (the dead node's data is gone) and restart from the last periodic
  /// checkpoint, if any.
  void markFailure(grid::NodeId node);
  bool failureSignaled() const { return failureSignaled_; }
  grid::NodeId failedNode() const { return failedNode_; }

  /// Application-manager-side bookkeeping across incarnations.
  void beginIncarnation(int nProcs);
  int incarnation() const { return incarnation_; }
  int previousProcs() const { return previousProcs_; }

  void storeIteration(std::size_t it) { storedIteration_ = it; }
  std::size_t storedIteration() const { return storedIteration_; }

  bool hasCheckpoint() const { return hasCheckpoint_; }
  void markCheckpoint() { hasCheckpoint_ = true; }

 private:
  sim::Engine* engine_;
  std::string app_;
  bool stopRequested_ = false;
  bool failureSignaled_ = false;
  grid::NodeId failedNode_ = grid::kNoId;
  int incarnation_ = 0;
  int previousProcs_ = 0;
  int currentProcs_ = 0;
  std::size_t storedIteration_ = 0;
  bool hasCheckpoint_ = false;
};

/// SRS — Stop Restart Software [22]: user-level checkpointing atop MPI.
/// Applications register their distributed data once; at any stop point they
/// ask SRS whether the rescheduler wants them gone, checkpoint their share
/// to the *local* IBP depot, and exit. A restarted incarnation (possibly on
/// a different number of processors) reads the checkpoint back with an
/// N-to-M block-cyclic redistribution.
class Srs {
 public:
  Srs(services::Ibp& ibp, Rss& rss, vmpi::World& world);

  /// Registers a block-cyclic distributed array of `totalBytes`, with the
  /// given distribution block size in elements (ScaLAPACK nb).
  void registerArray(const std::string& name, double totalBytes,
                     std::size_t blockElements = 64,
                     double bytesPerElement = 8.0);

  /// Directs checkpoints to a *stable* depot instead of each rank's local
  /// disk. Required for fault tolerance: a fail-stopped node takes its
  /// local depot with it, whereas migration-only checkpoints (the paper's
  /// §4.1 usage) can stay local and cheap.
  void setStableDepot(grid::NodeId node) { stableDepot_ = node; }
  double registeredBytes() const;

  /// Stop-point poll: if the rescheduler requested a stop, writes this
  /// rank's checkpoint and sets *shouldStop. All ranks must call it at the
  /// same iteration boundary.
  sim::Task checkIfStop(int rank, bool* shouldStop);

  /// Writes this rank's share of every registered array to its local depot.
  /// "The time for writing checkpoints is insignificant since the
  /// checkpoints are written to IBP storage on local disks."
  sim::Task writeCheckpoint(int rank);

  /// Reads this rank's (new) share from the previous incarnation's depots:
  /// an N-to-M redistribution crossing the network — the dominant cost of
  /// migration in Figure 3.
  sim::Task restoreCheckpoint(int rank);

  bool restoredThisIncarnation() const { return restored_; }

  /// Side-effect-free poll of the RSS stop flag (for apps that make the
  /// stop decision collectively before checkpointing).
  bool stopRequested() const { return rss_->stopRequested(); }
  /// Side-effect-free poll of the fail-stop signal.
  bool failureSignaled() const { return rss_->failureSignaled(); }
  /// Records the iteration the restarted incarnation must resume from.
  void storeIteration(std::size_t it) { rss_->storeIteration(it); }

  /// Wall-clock spans (first start → last end across all ranks) of the
  /// checkpoint write/read of this incarnation — Figure 3's "Checkpoint
  /// writing" / "Checkpoint reading" segments.
  double writeSpanSeconds() const;
  double readSpanSeconds() const;

 private:
  static std::string objectKey(const std::string& app,
                               const std::string& array, int rank,
                               int incarnation);

  struct ArrayInfo {
    double totalBytes = 0.0;
    std::size_t blockElements = 64;
    double bytesPerElement = 8.0;
  };

  services::Ibp* ibp_;
  Rss* rss_;
  vmpi::World* world_;
  std::map<std::string, ArrayInfo> arrays_;
  grid::NodeId stableDepot_ = grid::kNoId;
  bool restored_ = false;
  double writeStart_ = -1.0;
  double writeEnd_ = -1.0;
  double readStart_ = -1.0;
  double readEnd_ = -1.0;
};

}  // namespace grads::reschedule

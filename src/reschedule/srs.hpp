#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "reschedule/redistribution.hpp"
#include "services/ibp.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "util/retry.hpp"
#include "vmpi/world.hpp"

namespace grads::reschedule {

/// Raised by Srs::restoreCheckpoint when a checkpoint slice cannot be read
/// even after bounded retries and the replica fallback. The application
/// manager treats the incarnation as lost and restarts from an older
/// generation or from scratch — it must not crash the run.
class CheckpointUnavailableError : public Error {
 public:
  explicit CheckpointUnavailableError(const std::string& what) : Error(what) {}
};

/// The Runtime Support System daemon (paper §4.1.1): lives for the whole
/// application execution, spans migrations, and mediates between external
/// actors (the rescheduler) and the SRS library inside the application —
/// carrying the stop flag, the restored iteration counter, and the previous
/// incarnation's process count.
class Rss {
 public:
  explicit Rss(sim::Engine& engine, std::string appName);

  const std::string& appName() const { return app_; }

  /// Rescheduler-side: ask the running application to checkpoint and stop.
  void requestStop();
  bool stopRequested() const { return stopRequested_; }

  /// Failure-detector-side: a node running this application fail-stopped.
  /// The application must abandon the incarnation *without* checkpointing
  /// (the dead node's data is gone) and restart from the last periodic
  /// checkpoint, if any.
  void markFailure(grid::NodeId node);
  bool failureSignaled() const { return failureSignaled_; }
  grid::NodeId failedNode() const { return failedNode_; }

  /// Application-manager-side bookkeeping across incarnations.
  void beginIncarnation(int nProcs);
  int incarnation() const { return incarnation_; }
  int previousProcs() const { return previousProcs_; }

  void storeIteration(std::size_t it);
  std::size_t storedIteration() const { return storedIteration_; }

  bool hasCheckpoint() const { return hasCheckpoint_; }
  void markCheckpoint() { hasCheckpoint_ = true; }

  /// Per-generation checkpoint ledger (generation == the incarnation that
  /// wrote it). Restores that find the newest generation unreadable (depot
  /// dark, object lost) walk back to an older one — so the resume iteration
  /// and rank count must be recorded per generation, not just "latest".
  struct CheckpointRecord {
    std::size_t iteration = 0;
    int procs = 0;
  };
  std::optional<CheckpointRecord> checkpointRecord(int generation) const;
  int currentProcs() const { return currentProcs_; }

 private:
  sim::Engine* engine_;
  std::string app_;
  bool stopRequested_ = false;
  bool failureSignaled_ = false;
  grid::NodeId failedNode_ = grid::kNoId;
  int incarnation_ = 0;
  int previousProcs_ = 0;
  int currentProcs_ = 0;
  std::size_t storedIteration_ = 0;
  bool hasCheckpoint_ = false;
  std::map<int, CheckpointRecord> checkpoints_;
};

/// SRS — Stop Restart Software [22]: user-level checkpointing atop MPI.
/// Applications register their distributed data once; at any stop point they
/// ask SRS whether the rescheduler wants them gone, checkpoint their share
/// to the *local* IBP depot, and exit. A restarted incarnation (possibly on
/// a different number of processors) reads the checkpoint back with an
/// N-to-M block-cyclic redistribution.
class Srs {
 public:
  Srs(services::Ibp& ibp, Rss& rss, vmpi::World& world);

  /// Registers a block-cyclic distributed array of `totalBytes`, with the
  /// given distribution block size in elements (ScaLAPACK nb).
  void registerArray(const std::string& name, double totalBytes,
                     std::size_t blockElements = 64,
                     double bytesPerElement = 8.0);

  /// Directs checkpoints to a *stable* depot instead of each rank's local
  /// disk. Required for fault tolerance: a fail-stopped node takes its
  /// local depot with it, whereas migration-only checkpoints (the paper's
  /// §4.1 usage) can stay local and cheap.
  void setStableDepot(grid::NodeId node) { stableDepot_ = node; }
  /// Mirrors every checkpoint object to a second (remote) depot so a single
  /// depot outage cannot strand the application: restores fall back to the
  /// replica when the primary is dark.
  void setReplicaDepot(grid::NodeId node) { replicaDepot_ = node; }
  /// Retry policy + jitter source for depot reads/writes during restore.
  void setRetryPolicy(util::RetryPolicy policy, std::uint64_t jitterSeed) {
    retry_ = policy;
    retryRng_ = Rng(jitterSeed);
  }
  /// Pins the generation restoreCheckpoint() reads (normally the previous
  /// incarnation). The application manager sets this after pre-flighting
  /// which generations are currently readable.
  void setRestoreGeneration(int generation) { restoreGen_ = generation; }
  double registeredBytes() const;

  /// Stop-point poll: if the rescheduler requested a stop, writes this
  /// rank's checkpoint and sets *shouldStop. All ranks must call it at the
  /// same iteration boundary.
  sim::Task checkIfStop(int rank, bool* shouldStop);

  /// Writes this rank's share of every registered array to its local depot.
  /// "The time for writing checkpoints is insignificant since the
  /// checkpoints are written to IBP storage on local disks."
  sim::Task writeCheckpoint(int rank);

  /// Reads this rank's (new) share from the previous incarnation's depots:
  /// an N-to-M redistribution crossing the network — the dominant cost of
  /// migration in Figure 3.
  sim::Task restoreCheckpoint(int rank);

  bool restoredThisIncarnation() const { return restored_; }

  /// Side-effect-free poll of the RSS stop flag (for apps that make the
  /// stop decision collectively before checkpointing).
  bool stopRequested() const { return rss_->stopRequested(); }
  /// Side-effect-free poll of the fail-stop signal.
  bool failureSignaled() const { return rss_->failureSignaled(); }
  /// Records the iteration the restarted incarnation must resume from.
  void storeIteration(std::size_t it) { rss_->storeIteration(it); }

  /// Wall-clock spans (first start → last end across all ranks) of the
  /// checkpoint write/read of this incarnation — Figure 3's "Checkpoint
  /// writing" / "Checkpoint reading" segments.
  double writeSpanSeconds() const;
  double readSpanSeconds() const;

  /// Canonical IBP key of a checkpoint object; `replica` selects the
  /// mirrored copy.
  static std::string objectKey(const std::string& app,
                               const std::string& array, int rank,
                               int incarnation, bool replica = false);

 private:
  sim::Task readSlice(const std::string& array, int sourceRank, int gen,
                      double bytes, grid::NodeId toNode);

  struct ArrayInfo {
    double totalBytes = 0.0;
    std::size_t blockElements = 64;
    double bytesPerElement = 8.0;
  };

  services::Ibp* ibp_;
  Rss* rss_;
  vmpi::World* world_;
  std::map<std::string, ArrayInfo> arrays_;
  grid::NodeId stableDepot_ = grid::kNoId;
  grid::NodeId replicaDepot_ = grid::kNoId;
  util::RetryPolicy retry_ = util::RetryPolicy::none();
  Rng retryRng_{0x5c5eedULL};
  int restoreGen_ = 0;  ///< 0 = previous incarnation
  bool restored_ = false;
  double writeStart_ = -1.0;
  double writeEnd_ = -1.0;
  double readStart_ = -1.0;
  double readEnd_ = -1.0;
};

/// Pre-flight for a restart: the newest checkpoint generation recorded in
/// the RSS ledger whose every object (for all ranks and arrays of that
/// generation) is currently readable — on its primary depot or, failing
/// that, its replica. Returns nullopt when no generation qualifies (restart
/// from scratch). `arrays` are the registered checkpoint array names.
std::optional<int> findRestorableGeneration(
    const services::Ibp& ibp, const Rss& rss,
    const std::vector<std::string>& arrays);

}  // namespace grads::reschedule

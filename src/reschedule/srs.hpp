#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "reschedule/redistribution.hpp"
#include "services/ibp.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "util/retry.hpp"
#include "vmpi/world.hpp"

namespace grads::reschedule {

/// Raised by Srs::restoreCheckpoint when a checkpoint slice cannot be read
/// even after bounded retries and the replica fallback. The application
/// manager treats the incarnation as lost and restarts from an older
/// generation or from scratch — it must not crash the run.
class CheckpointUnavailableError : public Error {
 public:
  explicit CheckpointUnavailableError(const std::string& what) : Error(what) {}
};

/// The Runtime Support System daemon (paper §4.1.1): lives for the whole
/// application execution, spans migrations, and mediates between external
/// actors (the rescheduler) and the SRS library inside the application —
/// carrying the stop flag, the restored iteration counter, and the previous
/// incarnation's process count.
///
/// It is also the authority on checkpoint *integrity* metadata: per
/// generation it holds a manifest of every slice's size and content digest,
/// published in two phases (slices staged as ranks write; the manifest only
/// becomes complete once every expected slice is staged AND the iteration
/// was recorded). Restores verify what they read against the manifest, so a
/// torn multi-rank checkpoint or a bit-rotted depot object is detected
/// instead of silently restored. All manifest mutations carry the writer's
/// incarnation epoch: a zombie incarnation (falsely suspected dead, still
/// running) can neither stage slices nor publish iterations past the live
/// incarnation.
class Rss {
 public:
  explicit Rss(sim::Engine& engine, std::string appName);

  const std::string& appName() const { return app_; }

  /// Rescheduler-side: ask the running application to checkpoint and stop.
  void requestStop();
  bool stopRequested() const { return stopRequested_; }

  /// Failure-detector-side: a node running this application fail-stopped.
  /// The application must abandon the incarnation *without* checkpointing
  /// (the dead node's data is gone) and restart from the last periodic
  /// checkpoint, if any. A signal for a node the current incarnation does
  /// not occupy (late detection after a migration moved the app off it) is
  /// ignored — it must not abort a healthy incarnation.
  void markFailure(grid::NodeId node);
  bool failureSignaled() const { return failureSignaled_; }
  grid::NodeId failedNode() const { return failedNode_; }

  /// Application-manager-side bookkeeping across incarnations.
  void beginIncarnation(int nProcs);
  int incarnation() const { return incarnation_; }
  int previousProcs() const { return previousProcs_; }

  /// Nodes the current incarnation runs on; used to filter stale failure
  /// signals. An empty set (never told) accepts every signal — the
  /// pre-occupancy behavior.
  void setOccupiedNodes(const std::vector<grid::NodeId>& nodes);
  bool occupiesNode(grid::NodeId node) const;
  /// Failure signals dropped because the node was not occupied.
  std::size_t ignoredFailureSignals() const { return ignoredFailures_; }

  void storeIteration(std::size_t it);
  /// Epoch-checked variant: a writer whose incarnation epoch is not the
  /// live one is a zombie — its publish is dropped (returns false) so a
  /// late writer can never shadow a newer generation's record.
  bool storeIterationFor(int epoch, std::size_t it);
  std::size_t storedIteration() const { return storedIteration_; }

  bool hasCheckpoint() const { return hasCheckpoint_; }
  void markCheckpoint() { hasCheckpoint_ = true; }

  /// Per-generation checkpoint ledger (generation == the incarnation that
  /// wrote it). Restores that find the newest generation unreadable (depot
  /// dark, object lost) walk back to an older one — so the resume iteration
  /// and rank count must be recorded per generation, not just "latest".
  struct CheckpointRecord {
    std::size_t iteration = 0;
    int procs = 0;
  };
  std::optional<CheckpointRecord> checkpointRecord(int generation) const;
  int currentProcs() const { return currentProcs_; }

  // --- Checkpoint manifests (two-phase commit, epoch-fenced). ---

  /// One checkpoint slice's integrity record: size, content digest, and
  /// where the copies were directed (the scrubber repairs to these).
  struct SliceEntry {
    double bytes = 0.0;
    std::uint64_t digest = 0;
    grid::NodeId primaryNode = grid::kNoId;
    grid::NodeId replicaNode = grid::kNoId;
  };

  struct Manifest {
    std::size_t iteration = 0;
    bool iterationStored = false;  ///< phase 2 (publish) happened
    int arraysPerRank = 0;         ///< slices each rank must stage
    std::map<std::pair<std::string, int>, SliceEntry> slices;
  };

  /// Phase 1: record a slice the writer just made durable. Rejected (false)
  /// when `epoch` is not the live incarnation.
  bool stageSlice(int epoch, const std::string& array, int rank,
                  SliceEntry entry, int arraysPerRank);

  const Manifest* manifest(int generation) const;
  const SliceEntry* sliceEntry(int generation, const std::string& array,
                               int rank) const;
  /// True when the generation's manifest was published (iteration stored)
  /// and every expected slice (record procs × arrays) is staged — the
  /// crash-consistency gate: a checkpoint torn mid-write never qualifies.
  bool manifestComplete(int generation) const;
  /// Deterministic checksum over the manifest's contents (iteration, rank
  /// count, every slice's identity/size/digest). Readers recompute it to
  /// detect a corrupted ledger entry.
  std::uint64_t manifestDigest(int generation) const;
  std::vector<int> manifestGenerations() const;

  /// Zombie activity dropped so far (stage + publish attempts).
  std::size_t staleEpochRejects() const { return staleEpochRejects_; }

  /// Snapshot participation (embedded in the AppManager's per-app section,
  /// not a registry component of its own): the whole cross-incarnation
  /// ledger — incarnation counter, per-generation checkpoint records and
  /// manifests, stop/failure flags, occupancy, reject counters — round-
  /// trips. A restored manager relaunches the app from exactly this ledger;
  /// the incarnation bump at relaunch is what fences pre-crash zombies out.
  void encodeState(core::SnapshotWriter& w) const;
  void decodeState(core::SnapshotReader& r);

 private:
  sim::Engine* engine_;  // grads: transient(wiring, re-bound at construction)
  std::string app_;
  bool stopRequested_ = false;
  bool failureSignaled_ = false;
  grid::NodeId failedNode_ = grid::kNoId;
  int incarnation_ = 0;
  int previousProcs_ = 0;
  int currentProcs_ = 0;
  std::size_t storedIteration_ = 0;
  bool hasCheckpoint_ = false;
  std::map<int, CheckpointRecord> checkpoints_;
  std::map<int, Manifest> manifests_;
  std::set<grid::NodeId> occupied_;
  std::size_t ignoredFailures_ = 0;
  std::size_t staleEpochRejects_ = 0;
};

/// SRS — Stop Restart Software [22]: user-level checkpointing atop MPI.
/// Applications register their distributed data once; at any stop point they
/// ask SRS whether the rescheduler wants them gone, checkpoint their share
/// to the *local* IBP depot, and exit. A restarted incarnation (possibly on
/// a different number of processors) reads the checkpoint back with an
/// N-to-M block-cyclic redistribution.
///
/// Integrity: every slice write carries a deterministic content digest and
/// the incarnation epoch captured at construction (so a zombie instance
/// keeps writing under its own stale epoch and is fenced out at the depot).
/// Restores verify each slice against the RSS manifest and treat any
/// mismatch exactly like a dark depot: retry, replica, and finally
/// CheckpointUnavailableError — corrupt data is never handed back to the
/// application while verification is on.
class Srs {
 public:
  Srs(services::Ibp& ibp, Rss& rss, vmpi::World& world);

  /// Registers a block-cyclic distributed array of `totalBytes`, with the
  /// given distribution block size in elements (ScaLAPACK nb).
  void registerArray(const std::string& name, double totalBytes,
                     std::size_t blockElements = 64,
                     double bytesPerElement = 8.0);

  /// Directs checkpoints to a *stable* depot instead of each rank's local
  /// disk. Required for fault tolerance: a fail-stopped node takes its
  /// local depot with it, whereas migration-only checkpoints (the paper's
  /// §4.1 usage) can stay local and cheap.
  void setStableDepot(grid::NodeId node) { stableDepot_ = node; }
  /// Mirrors every checkpoint object to a second (remote) depot so a single
  /// depot outage cannot strand the application: restores fall back to the
  /// replica when the primary is dark.
  void setReplicaDepot(grid::NodeId node) { replicaDepot_ = node; }
  /// Retry policy + jitter source for depot reads/writes during restore.
  void setRetryPolicy(util::RetryPolicy policy, std::uint64_t jitterSeed) {
    retry_ = policy;
    retryRng_ = Rng(jitterSeed);
  }
  /// Pins the generation restoreCheckpoint() reads (normally the previous
  /// incarnation). The application manager sets this after pre-flighting
  /// which generations are currently readable.
  void setRestoreGeneration(int generation) { restoreGen_ = generation; }
  /// Manifest verification of restored slices (default on). Off = the raw
  /// ablation: reads trust whatever the depot serves, and mismatches are
  /// only *counted* (ground truth for experiments), never acted on.
  void setVerifyOnRestore(bool verify) { verify_ = verify; }
  double registeredBytes() const;

  /// Incarnation epoch this instance writes under (captured when the
  /// instance was created, deliberately NOT re-read from the RSS: a zombie
  /// must keep its stale epoch).
  int epoch() const { return epoch_; }

  /// Stop-point poll: if the rescheduler requested a stop, writes this
  /// rank's checkpoint and sets *shouldStop. All ranks must call it at the
  /// same iteration boundary.
  sim::Task checkIfStop(int rank, bool* shouldStop);

  /// Writes this rank's share of every registered array to its local depot.
  /// "The time for writing checkpoints is insignificant since the
  /// checkpoints are written to IBP storage on local disks."
  sim::Task writeCheckpoint(int rank);

  /// Reads this rank's (new) share from the previous incarnation's depots:
  /// an N-to-M redistribution crossing the network — the dominant cost of
  /// migration in Figure 3.
  sim::Task restoreCheckpoint(int rank);

  bool restoredThisIncarnation() const { return restored_; }

  /// Ranks that completed restoreCheckpoint() this incarnation.
  int ranksRestored() const { return ranksRestored_; }
  /// Fires once, when the last rank finishes restoring — the commit point of
  /// a journaled migration: every rank is live on the new mapping, so the
  /// action can no longer be rolled back.
  void setOnAllRestored(std::function<void()> fn) {
    onAllRestored_ = std::move(fn);
  }

  /// Ground truth: slices delivered to the application whose content did
  /// not match the manifest (only possible with verification off).
  int corruptSliceReads() const { return corruptSliceReads_; }
  /// Copies that failed manifest verification and were skipped in favor of
  /// the replica / retry / older generation (verification on).
  int integrityRejects() const { return integrityRejects_; }
  /// Writes this instance dropped because the depot fence or the RSS ledger
  /// identified it as a zombie.
  int staleWriteRejects() const { return staleWriteRejects_; }

  /// Side-effect-free poll of the RSS stop flag (for apps that make the
  /// stop decision collectively before checkpointing).
  bool stopRequested() const { return rss_->stopRequested(); }
  /// Side-effect-free poll of the fail-stop signal.
  bool failureSignaled() const { return rss_->failureSignaled(); }
  /// Records the iteration the restarted incarnation must resume from
  /// (epoch-checked: a zombie's publish is dropped).
  void storeIteration(std::size_t it) { rss_->storeIterationFor(epoch_, it); }

  /// Wall-clock spans (first start → last end across all ranks) of the
  /// checkpoint write/read of this incarnation — Figure 3's "Checkpoint
  /// writing" / "Checkpoint reading" segments.
  double writeSpanSeconds() const;
  double readSpanSeconds() const;

  /// Canonical IBP key of a checkpoint object; `replica` selects the
  /// mirrored copy.
  static std::string objectKey(const std::string& app,
                               const std::string& array, int rank,
                               int incarnation, bool replica = false);

  /// Deterministic content digest of a checkpoint slice (what the writer
  /// stamps on both copies and stages into the manifest). Never zero.
  static std::uint64_t contentDigest(const std::string& app,
                                     const std::string& array, int rank,
                                     int generation, double bytes);

 private:
  sim::Task readSlice(const std::string& array, int sourceRank, int gen,
                      double bytes, grid::NodeId toNode);
  /// readable() && (if verifying and the manifest knows this slice) the
  /// observed digest and size match the manifest.
  bool copyUsable(const std::string& key, const Rss::SliceEntry* want);

  struct ArrayInfo {
    double totalBytes = 0.0;
    std::size_t blockElements = 64;
    double bytesPerElement = 8.0;
  };

  services::Ibp* ibp_;
  Rss* rss_;
  vmpi::World* world_;
  std::map<std::string, ArrayInfo> arrays_;
  grid::NodeId stableDepot_ = grid::kNoId;
  grid::NodeId replicaDepot_ = grid::kNoId;
  util::RetryPolicy retry_ = util::RetryPolicy::none();
  Rng retryRng_{0x5c5eedULL};
  int restoreGen_ = 0;  ///< 0 = previous incarnation
  int epoch_ = 0;       ///< incarnation captured at construction
  bool verify_ = true;
  bool restored_ = false;
  int ranksRestored_ = 0;
  std::function<void()> onAllRestored_;
  int corruptSliceReads_ = 0;
  int integrityRejects_ = 0;
  int staleWriteRejects_ = 0;
  double writeStart_ = -1.0;
  double writeEnd_ = -1.0;
  double readStart_ = -1.0;
  double readEnd_ = -1.0;
};

/// One copy of a checkpoint slice verifies: it is readable right now and
/// (size, digest) match the manifest entry.
bool sliceCopyVerifies(const services::Ibp& ibp, const std::string& key,
                       const Rss::SliceEntry& want);

/// Pre-flight for a restart: the newest checkpoint generation recorded in
/// the RSS ledger whose every object (for all ranks and arrays of that
/// generation) is currently readable — on its primary depot or, failing
/// that, its replica. With `verifyIntegrity` the bar is higher: the
/// generation's manifest must be complete (two-phase publish finished) and
/// every slice must have at least one copy whose size and digest match it.
/// Returns nullopt when no generation qualifies (restart from scratch).
/// `arrays` are the registered checkpoint array names.
std::optional<int> findRestorableGeneration(
    const services::Ibp& ibp, const Rss& rss,
    const std::vector<std::string>& arrays, bool verifyIntegrity = false);

}  // namespace grads::reschedule

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "autopilot/contract.hpp"
#include "core/cop.hpp"
#include "reschedule/journal.hpp"
#include "reschedule/srs.hpp"
#include "services/gis.hpp"
#include "services/nws.hpp"

namespace grads::reschedule {

namespace whatif {
class ForkDriver;
}

/// Operating modes (paper §4.1.2): default lets the cost model decide;
/// forced modes pin the choice so both scenarios can be measured ("the
/// rescheduler was operated in two modes — default and forced").
enum class ReschedulerMode { kDefault, kForcedMigrate, kForcedStay };

const char* reschedulerModeName(ReschedulerMode m);

struct ReschedulerOptions {
  ReschedulerMode mode = ReschedulerMode::kDefault;
  /// "the rescheduler assumed an experimentally-determined worst-case
  /// rescheduling cost of 900 seconds" — the pessimistic constant that
  /// produces the wrong decision at N=8000 in Figure 3.
  double worstCaseMigrationSec = 900.0;
  /// Required predicted benefit margin before migrating.
  double minBenefitSec = 0.0;
  /// Enables opportunistic rescheduling on app-completion events (§4.1.1).
  bool opportunistic = false;
};

/// Outcome of one cost/benefit evaluation (kept for the benches).
struct MigrationDecision {
  bool migrate = false;
  std::vector<grid::NodeId> target;
  double remainingOnCurrentSec = 0.0;
  double remainingOnTargetSec = 0.0;   ///< excludes migration cost
  double assumedMigrationCostSec = 0.0;
  double time = 0.0;
  std::string reason;
};

/// The stop/migrate/restart rescheduler (paper §4.1): evaluates whether
/// migration is profitable using the COP's performance model, NWS resource
/// information, and a (pessimistic) migration-cost estimate; if profitable,
/// it signals the RSS daemon so the application checkpoints and exits at
/// its next SRS poll point.
class StopRestartRescheduler {
 public:
  StopRestartRescheduler(const services::Gis& gis, const services::Nws* nws,
                         ReschedulerOptions options);

  /// Pure evaluation (no side effects).
  MigrationDecision evaluate(const core::Cop& cop,
                             const std::vector<grid::NodeId>& current,
                             std::size_t phase) const;

  /// Migration-on-request entry point, called on a contract violation.
  /// If the decision is to migrate, requests the stop through RSS.
  autopilot::RescheduleOutcome onViolation(
      const core::Cop& cop, Rss& rss,
      const std::vector<grid::NodeId>& current, std::size_t phase);

  /// Bookkeeping for opportunistic rescheduling.
  struct RunningApp {
    const core::Cop* cop = nullptr;
    Rss* rss = nullptr;
    std::function<std::vector<grid::NodeId>()> mapping;
    std::function<std::size_t()> phase;
  };
  void registerRunning(const std::string& name, RunningApp app);
  void unregisterRunning(const std::string& name);
  /// "the rescheduler periodically checks for a GrADS application that has
  /// recently completed. If it finds one, [it] determines if another
  /// application can obtain performance benefits if it is migrated to the
  /// newly freed resources."
  void onAppCompleted();

  const std::vector<MigrationDecision>& decisions() const {
    return decisions_;
  }
  ReschedulerOptions& options() { return opts_; }

  /// When set, every migrate decision opens a journaled transaction
  /// (prepare phase) before the stop is requested; the application manager
  /// drives it through commit or rollback.
  void setJournal(ActionJournal* journal) { journal_ = journal; }
  ActionJournal* journal() const { return journal_; }

  /// When set, every governed violation is routed through the what-if fork
  /// driver: the model decision becomes one candidate among several, each
  /// validated in sandboxed futures before anything is committed. The fork
  /// verdict commits through the journal as a *pinned* action; a driver
  /// fallback (budget, no runner) degrades to the model-only path below.
  void setForkDriver(whatif::ForkDriver* driver) { forkDriver_ = driver; }
  whatif::ForkDriver* forkDriver() const { return forkDriver_; }

 private:
  /// Second-best migrate destination, distinct from `primary`: re-runs the
  /// COP's mapper over the available pool minus primary's nodes. Empty when
  /// no distinct alternative exists — the fork driver then races only
  /// model-target vs suppress.
  std::vector<grid::NodeId> alternateTarget(
      const core::Cop& cop, const std::vector<grid::NodeId>& current,
      const std::vector<grid::NodeId>& primary) const;

  const services::Gis* gis_;
  const services::Nws* nws_;
  ActionJournal* journal_ = nullptr;
  whatif::ForkDriver* forkDriver_ = nullptr;
  ReschedulerOptions opts_;
  std::map<std::string, RunningApp> running_;
  std::vector<MigrationDecision> decisions_;
};

}  // namespace grads::reschedule

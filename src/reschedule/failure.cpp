#include "reschedule/failure.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::reschedule {

void FailureInjector::failNow(grid::NodeId node, sim::Time detectionDelaySec,
                              sim::Time gisLagSec) {
  if (!gis_->isNodeReachable(node)) return;  // already down: idempotent
  GRADS_WARN("failure") << "node " << gis_->grid().node(node).name()
                        << " fail-stopped at t=" << engine_->now();
  gis_->setNodeReachable(node, false);
  ++failures_;
  if (gisLagSec <= 0.0) {
    gis_->setNodeUp(node, false);
  } else {
    // Stale-GIS window: the directory keeps advertising the dead node until
    // its registration times out. Skip the update if the node already
    // recovered (or was re-failed — that injection owns the directory).
    engine_->scheduleDaemon(gisLagSec, [this, node] {
      if (!gis_->isNodeReachable(node)) gis_->setNodeUp(node, false);
    });
  }
  engine_->scheduleDaemon(detectionDelaySec, [this, node] {
    if (gis_->isNodeReachable(node)) return;  // recovered before detection
    for (Rss* rss : watched_) rss->markFailure(node);
  });
}

void FailureInjector::rearmFailureTail(grid::NodeId node, sim::Time detectAt,
                                       sim::Time gisDownAt) {
  if (gisDownAt > engine_->now()) {
    engine_->scheduleDaemonAt(gisDownAt, [this, node] {
      if (!gis_->isNodeReachable(node)) gis_->setNodeUp(node, false);
    });
  }
  if (detectAt > engine_->now()) {
    engine_->scheduleDaemonAt(detectAt, [this, node] {
      if (gis_->isNodeReachable(node)) return;  // recovered before detection
      for (Rss* rss : watched_) rss->markFailure(node);
    });
  }
}

void FailureInjector::recoverNow(grid::NodeId node) {
  // No-op unless the node actually failed: a node that is merely marked
  // down in the directory (reserved by a manager, or administratively
  // drained) is not ours to resurrect.
  if (gis_->isNodeReachable(node)) return;
  GRADS_INFO("failure") << "node " << gis_->grid().node(node).name()
                        << " recovered at t=" << engine_->now();
  gis_->setNodeReachable(node, true);
  gis_->setNodeUp(node, true);
}

void FailureInjector::scheduleNodeFailure(grid::NodeId node, sim::Time failAt,
                                          sim::Time detectionDelaySec,
                                          sim::Time gisLagSec) {
  GRADS_REQUIRE(detectionDelaySec >= 0.0,
                "FailureInjector: negative detection delay");
  GRADS_REQUIRE(gisLagSec >= 0.0, "FailureInjector: negative GIS lag");
  engine_->scheduleDaemonAt(failAt, [this, node, detectionDelaySec,
                                     gisLagSec] {
    failNow(node, detectionDelaySec, gisLagSec);
  });
}

void FailureInjector::scheduleNodeRecovery(grid::NodeId node, sim::Time at) {
  engine_->scheduleDaemonAt(at, [this, node] { recoverNow(node); });
}

}  // namespace grads::reschedule

#include "reschedule/failure.hpp"

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::reschedule {

void FailureInjector::scheduleNodeFailure(grid::NodeId node, sim::Time failAt,
                                          sim::Time detectionDelaySec) {
  GRADS_REQUIRE(detectionDelaySec >= 0.0,
                "FailureInjector: negative detection delay");
  engine_->scheduleDaemonAt(failAt, [this, node] {
    GRADS_WARN("failure") << "node " << gis_->grid().node(node).name()
                          << " fail-stopped";
    gis_->setNodeUp(node, false);
    ++failures_;
  });
  engine_->scheduleDaemonAt(failAt + detectionDelaySec, [this, node] {
    for (Rss* rss : watched_) rss->markFailure(node);
  });
}

void FailureInjector::scheduleNodeRecovery(grid::NodeId node, sim::Time at) {
  engine_->scheduleDaemonAt(at, [this, node] {
    GRADS_INFO("failure") << "node " << gis_->grid().node(node).name()
                          << " recovered";
    gis_->setNodeUp(node, true);
  });
}

}  // namespace grads::reschedule

#include "reschedule/swap.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::reschedule {

const char* swapPolicyName(SwapPolicy p) {
  switch (p) {
    case SwapPolicy::kNever: return "never";
    case SwapPolicy::kGreedy: return "greedy";
    case SwapPolicy::kPeriodicBest: return "periodic-best";
    case SwapPolicy::kModelBased: return "model-based";
  }
  return "?";
}

SwapManager::SwapManager(vmpi::World& world, std::vector<grid::NodeId> pool,
                         const services::Nws* nws, SwapConfig config)
    : world_(&world), pool_(std::move(pool)), nws_(nws), cfg_(config) {
  GRADS_REQUIRE(!pool_.empty(), "SwapManager: empty pool");
  // Every active node must belong to the pool.
  for (const auto n : world_->mapping()) {
    GRADS_REQUIRE(std::find(pool_.begin(), pool_.end(), n) != pool_.end(),
                  "SwapManager: active node not in pool");
  }
  GRADS_REQUIRE(static_cast<int>(pool_.size()) >= world_->size(),
                "SwapManager: pool smaller than active set");
}

double SwapManager::nodeRate(grid::NodeId node) const {
  // A node we already occupy must be rated by the share our process *keeps*
  // (incumbent view); an idle candidate by what a new process would get —
  // otherwise the policy penalizes its own active set and flip-flops.
  const auto& m = world_->mapping();
  const bool active = std::find(m.begin(), m.end(), node) != m.end();
  if (nws_ != nullptr) {
    // Dark-sensor fallback: rate the node from its static spec (full
    // availability) rather than failing the swap evaluation.
    const auto measured =
        active ? nws_->tryIncumbentRate(node) : nws_->tryEffectiveRate(node);
    if (measured) return *measured;
    const auto& n = world_->grid().node(node);
    return n.spec().effectiveFlopsPerCpu();
  }
  const auto& n = world_->grid().node(node);
  const double avail =
      active ? n.incumbentAvailability() : n.cpuAvailability();
  return avail * n.spec().effectiveFlopsPerCpu();
}

bool SwapManager::reachable(grid::NodeId node) const {
  return gis_ == nullptr || gis_->isNodeReachable(node);
}

std::vector<grid::NodeId> SwapManager::inactiveNodes() const {
  std::set<grid::NodeId> active(world_->mapping().begin(),
                                world_->mapping().end());
  // Nodes already targeted by pending commands count as claimed.
  for (const auto& c : pending_) active.insert(c.to);
  std::vector<grid::NodeId> out;
  for (const auto n : pool_) {
    if (active.count(n) == 0 && reachable(n)) out.push_back(n);
  }
  return out;
}

double SwapManager::predictIterationSeconds(
    const std::vector<grid::NodeId>& active) const {
  GRADS_REQUIRE(!active.empty(), "predictIterationSeconds: empty set");
  double compute = 0.0;
  for (const auto n : active) {
    compute = std::max(compute, cfg_.flopsPerRankPerIteration / nodeRate(n));
  }
  // Synchronous iteration: every collective crosses the widest link in the
  // active set.
  double maxLatency = 0.0;
  const auto& g = world_->grid();
  for (std::size_t i = 0; i < active.size(); ++i) {
    for (std::size_t j = i + 1; j < active.size(); ++j) {
      maxLatency = std::max(maxLatency, g.route(active[i], active[j]).latencySec);
    }
  }
  return compute + cfg_.messagesPerIteration * maxLatency;
}

void SwapManager::enqueue(int rank, grid::NodeId to) {
  for (const auto& c : pending_) {
    if (c.rank == rank) return;  // one pending command per rank
  }
  pending_.push_back(Command{rank, to});
}

void SwapManager::evaluate() {
  if (cfg_.policy == SwapPolicy::kNever) return;
  const auto& mapping = world_->mapping();

  switch (cfg_.policy) {
    case SwapPolicy::kNever:
      return;
    case SwapPolicy::kGreedy: {
      // Swap any degraded active node for the fastest idle one.
      auto idle = inactiveNodes();
      for (int r = 0; r < world_->size(); ++r) {
        const grid::NodeId cur = mapping[static_cast<std::size_t>(r)];
        const auto& node = world_->grid().node(cur);
        const double avail =
            nws_ != nullptr
                ? nws_->tryIncumbentAvailability(cur).value_or(
                      node.incumbentAvailability())
                : node.incumbentAvailability();
        if (avail >= cfg_.degradeThreshold) continue;
        grid::NodeId best = grid::kNoId;
        double bestRate = nodeRate(cur) * cfg_.improveMargin;
        for (const auto cand : idle) {
          if (nodeRate(cand) > bestRate) {
            bestRate = nodeRate(cand);
            best = cand;
          }
        }
        if (best != grid::kNoId) {
          enqueue(r, best);
          idle.erase(std::find(idle.begin(), idle.end(), best));
        }
      }
      break;
    }
    case SwapPolicy::kPeriodicBest: {
      // Keep the k individually-fastest pool nodes active, ignoring
      // communication structure (the classic strawman).
      std::vector<grid::NodeId> sorted;
      for (const auto n : pool_) {
        if (reachable(n)) sorted.push_back(n);
      }
      if (sorted.size() < static_cast<std::size_t>(world_->size())) break;
      std::sort(sorted.begin(), sorted.end(),
                [this](grid::NodeId a, grid::NodeId b) {
                  return nodeRate(a) > nodeRate(b);
                });
      sorted.resize(static_cast<std::size_t>(world_->size()));
      std::set<grid::NodeId> want(sorted.begin(), sorted.end());
      std::vector<grid::NodeId> spare;
      for (const auto n : sorted) {
        if (std::find(mapping.begin(), mapping.end(), n) == mapping.end()) {
          spare.push_back(n);
        }
      }
      for (int r = 0; r < world_->size() && !spare.empty(); ++r) {
        const grid::NodeId cur = mapping[static_cast<std::size_t>(r)];
        if (want.count(cur) == 0) {
          enqueue(r, spare.back());
          spare.pop_back();
        }
      }
      break;
    }
    case SwapPolicy::kModelBased: {
      // Consider candidate active sets: the current one, and for each
      // cluster, the fastest k nodes within that cluster (cluster-affine
      // sets avoid paying WAN latency every iteration). Pick the best.
      GRADS_REQUIRE(cfg_.flopsPerRankPerIteration > 0.0,
                    "model-based swap policy needs flopsPerRankPerIteration");
      const auto& g = world_->grid();
      const std::size_t k = static_cast<std::size_t>(world_->size());
      std::vector<std::vector<grid::NodeId>> candidates{mapping};
      std::map<grid::ClusterId, std::vector<grid::NodeId>> byCluster;
      for (const auto n : pool_) {
        if (reachable(n)) byCluster[g.node(n).cluster()].push_back(n);
      }
      for (auto& [cluster, nodes] : byCluster) {
        (void)cluster;
        if (nodes.size() < k) continue;
        std::sort(nodes.begin(), nodes.end(),
                  [this](grid::NodeId a, grid::NodeId b) {
                    return nodeRate(a) > nodeRate(b);
                  });
        candidates.emplace_back(nodes.begin(),
                                nodes.begin() + static_cast<std::ptrdiff_t>(k));
      }
      double bestTime = predictIterationSeconds(mapping) / cfg_.improveMargin;
      const std::vector<grid::NodeId>* best = nullptr;
      for (std::size_t i = 1; i < candidates.size(); ++i) {
        const double t = predictIterationSeconds(candidates[i]);
        if (t < bestTime) {
          bestTime = t;
          best = &candidates[i];
        }
      }
      if (best != nullptr) {
        for (int r = 0; r < world_->size(); ++r) {
          const grid::NodeId target = (*best)[static_cast<std::size_t>(r)];
          if (mapping[static_cast<std::size_t>(r)] != target) {
            enqueue(r, target);
          }
        }
      }
      break;
    }
  }
}

void SwapManager::start() {
  if (running_) return;
  running_ = true;
  sim::Engine& eng = world_->engine();
  auto tick = std::make_shared<std::function<void()>>();
  *tick = [this, &eng, tick] {
    if (!running_) return;
    evaluate();
    eng.scheduleDaemon(cfg_.checkPeriodSec, *tick);
  };
  eng.scheduleDaemon(cfg_.checkPeriodSec, *tick);
}

sim::Task SwapManager::atIterationBoundary(int rank) {
  // The hijacked communication point: rank 0 applies pending swaps, paying
  // the process-image transfer for each; everyone then resynchronizes. Each
  // swap is a transaction: prepare stages the retarget (the live mapping is
  // untouched, so the rank keeps communicating from its old node), commit
  // moves the process image and flips the mapping, and any fault in between
  // — transfer failure, either endpoint dying under us — aborts the staged
  // retarget and the rank stays exactly where it was.
  if (rank == 0 && !pending_.empty()) {
    std::vector<Command> cmds = std::move(pending_);
    pending_.clear();
    for (const auto& c : cmds) {
      const grid::NodeId from = world_->nodeOf(c.rank);
      if (from == c.to) continue;
      if (!reachable(from) || !reachable(c.to)) {
        // Prepare-time validation: the node died between policy evaluation
        // (enqueue) and this boundary. Nothing was staged, nothing to undo.
        GRADS_INFO("swap") << log::appAt(world_->name(),
                                         world_->engine().now())
                           << "rank " << c.rank << " swap to "
                           << world_->grid().node(c.to).name()
                           << " dropped at prepare: "
                           << (reachable(from) ? "target" : "source")
                           << " node unreachable";
        continue;
      }
      world_->beginRetarget(c.rank, c.to);
      int txn = -1;
      if (journal_ != nullptr) {
        txn = journal_->open(world_->name(), ActionKind::kSwap, {from},
                             {c.to});
        journal_->beginCommit(txn);
      }
      std::exception_ptr failure;
      try {
        co_await world_->grid().transfer(from, c.to,
                                         cfg_.perProcessDataBytes);
      } catch (const std::exception&) {
        failure = std::current_exception();
      }
      // The transfer took simulated time; re-validate both endpoints at the
      // commit point before flipping the mapping.
      if (failure == nullptr && reachable(c.to) && reachable(from)) {
        world_->commitRetarget(c.rank);
        if (txn >= 0) journal_->commit(txn);
        history_.push_back(
            SwapEvent{world_->engine().now(), c.rank, from, c.to});
        GRADS_INFO("swap") << log::appAt(world_->name(),
                                         world_->engine().now())
                           << "rank " << c.rank << " swapped "
                           << world_->grid().node(from).name() << " -> "
                           << world_->grid().node(c.to).name();
      } else {
        world_->abortRetarget(c.rank);
        ++rolledBack_;
        const char* why = failure != nullptr ? "transfer failed"
                          : !reachable(c.to) ? "target died mid-transfer"
                                             : "source died mid-transfer";
        if (txn >= 0) journal_->rollback(txn, why);
        GRADS_INFO("swap") << log::appAt(world_->name(),
                                         world_->engine().now())
                           << "rank " << c.rank << " swap to "
                           << world_->grid().node(c.to).name()
                           << " rolled back: " << why;
      }
    }
  }
  co_await world_->barrier(rank);
}

}  // namespace grads::reschedule

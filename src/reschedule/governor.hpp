#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>

#include "autopilot/contract.hpp"
#include "reschedule/journal.hpp"
#include "sim/engine.hpp"

namespace grads::reschedule {

struct GovernorOptions {
  /// Quorum confirmation: a violation reaches the rescheduler only after
  /// `quorumK` violating phases inside the most recent `quorumN` phases —
  /// each phase ratio is an independent sensor reading, so a single noisy
  /// NWS sample (or one slow phase) can never trigger a migration.
  int quorumK = 2;
  int quorumN = 4;
  /// Hysteresis band around the contract's upper tolerance: the windowed
  /// ratio must clear upper*(1+band), not merely upper, before an action is
  /// considered. Readings that hover at the threshold stay inside the band
  /// and are suppressed — the classic anti-flap dead zone.
  double hysteresisBand = 0.1;
  /// Per-app cooldown after *any* resolved action (commit or rollback):
  /// violations inside the window are suppressed so the contract terms and
  /// the NWS forecasts can re-converge before the next decision.
  double cooldownSec = 180.0;
  /// Global cap on unresolved actions across all apps (the journal's
  /// in-flight count): a Grid-wide load spike cannot stampede every
  /// application into simultaneous migration.
  int maxConcurrentActions = 1;
};

/// Why the governor passed or suppressed a violation report.
enum class GovernorVerdict {
  kAdmit,
  kQuorumPending,       ///< fewer than k violating phases in the window
  kInsideHysteresis,    ///< ratio above tolerance but inside the dead band
  kCoolingDown,         ///< app resolved an action too recently
  kConcurrencyLimited,  ///< global in-flight action cap reached
};

const char* governorVerdictName(GovernorVerdict verdict);

/// The violation governor — the layer between the contract monitor and the
/// rescheduler that turns a raw "phase ran slow" signal into a *governed*
/// decision. PR 1's chaos campaigns showed the failure mode: flapping NWS
/// load readings trip the contract, the rescheduler migrates, the load
/// flips, and the application oscillates migrate → migrate-back, paying the
/// full checkpoint-restore cost each way. The governor suppresses exactly
/// those triggers (quorum, hysteresis, cooldown, concurrency) while letting
/// sustained genuine degradation through.
class ViolationGovernor : public core::Snapshottable {
 public:
  ViolationGovernor(sim::Engine& engine, ActionJournal& journal,
                    GovernorOptions options);

  /// Snapshot participation: quorum histories and suppression statistics
  /// round-trip, so a restored governor keeps holding position (cooldown
  /// anchors live in the journal, which snapshots alongside). Options are
  /// configuration — re-supplied at construction, not serialized.
  const char* snapshotSection() const override {
    return "reschedule.governor";
  }
  std::uint32_t snapshotVersion() const override { return 2; }  // + holds
  void encodeState(core::SnapshotWriter& w) const override;
  void decodeState(core::SnapshotReader& r) override;

  /// Gate for one confirmed contract violation. kAdmit means the report may
  /// reach the rescheduler; anything else means suppress (and the contract
  /// monitor must NOT widen its tolerances — the governor is deliberately
  /// holding position, not declining).
  GovernorVerdict admit(const autopilot::ViolationReport& report);

  /// Clears an app's quorum history. Call when phase numbering resets
  /// (restart on new resources) — pre-restart violations must not count
  /// toward a post-restart quorum.
  void resetApp(const std::string& app);

  struct Stats {
    int admitted = 0;
    int quorumPending = 0;
    int insideHysteresis = 0;
    int coolingDown = 0;
    int concurrencyLimited = 0;
    /// Suppressions where the base cooldown had already lapsed but the
    /// mistrust-extended window (setCooldownExtra) still held the app. A
    /// subset of coolingDown, not an extra verdict — suppressed() is
    /// unchanged.
    int mistrustHolds = 0;
    int suppressed() const {
      return quorumPending + insideHysteresis + coolingDown +
             concurrencyLimited;
    }
  };
  const Stats& stats() const { return total_; }
  Stats statsFor(const std::string& app) const;

  const GovernorOptions& options() const { return opts_; }

  /// Per-app cooldown extension hook (seconds on top of cooldownSec). The
  /// what-if fork driver wires its prediction-divergence mistrust ledger in
  /// here, so resources that defied validated predictions earn longer holds.
  /// Must be a pure function of app identity and caller state — it is
  /// consulted, not snapshotted.
  void setCooldownExtra(std::function<double(const std::string&)> fn) {
    cooldownExtra_ = std::move(fn);
  }

 private:
  void count(Stats& s, GovernorVerdict verdict) const;

  sim::Engine* engine_;    // grads: transient(wiring, re-bound at construction)
  ActionJournal* journal_; // grads: transient(wiring, re-bound at construction)
  GovernorOptions opts_;   // grads: transient(construction-time config)
  /// Per-app phases that violated, newest last (pruned to the quorum
  /// window).
  std::map<std::string, std::deque<std::size_t>> violatingPhases_;
  Stats total_;
  std::map<std::string, Stats> perApp_;
  // grads: transient(policy hook, re-installed by the owner after construction)
  std::function<double(const std::string&)> cooldownExtra_;
};

}  // namespace grads::reschedule

#include "reschedule/srs.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace grads::reschedule {

Rss::Rss(sim::Engine& engine, std::string appName)
    : engine_(&engine), app_(std::move(appName)) {}

void Rss::requestStop() {
  if (!stopRequested_) {
    GRADS_INFO("rss") << log::appAt(app_, engine_->now())
                      << "stop requested";
  }
  stopRequested_ = true;
}

void Rss::beginIncarnation(int nProcs) {
  GRADS_REQUIRE(nProcs > 0, "Rss::beginIncarnation: need processes");
  previousProcs_ = currentProcs_;
  currentProcs_ = nProcs;
  ++incarnation_;
  stopRequested_ = false;
  failureSignaled_ = false;
  failedNode_ = grid::kNoId;
  occupied_.clear();
}

void Rss::setOccupiedNodes(const std::vector<grid::NodeId>& nodes) {
  occupied_.clear();
  occupied_.insert(nodes.begin(), nodes.end());
}

bool Rss::occupiesNode(grid::NodeId node) const {
  return occupied_.empty() || occupied_.count(node) > 0;
}

void Rss::markFailure(grid::NodeId node) {
  if (!occupiesNode(node)) {
    // Late detection: the heartbeat timeout fired for a node this app
    // migrated off (or never mapped). The incarnation is healthy — aborting
    // it would turn a stale signal into a real outage.
    ++ignoredFailures_;
    GRADS_INFO("rss") << log::appAt(app_, engine_->now())
                      << "ignoring failure of unoccupied node";
    return;
  }
  if (!failureSignaled_) {
    GRADS_WARN("rss") << log::appAt(app_, engine_->now())
                      << "node failure signaled";
  }
  failureSignaled_ = true;
  failedNode_ = node;
}

void Rss::storeIteration(std::size_t it) { storeIterationFor(incarnation_, it); }

bool Rss::storeIterationFor(int epoch, std::size_t it) {
  if (epoch != incarnation_) {
    ++staleEpochRejects_;
    GRADS_WARN("rss") << log::appAt(app_, engine_->now())
                      << "zombie publish (epoch " << epoch
                      << " vs live " << incarnation_ << ") dropped";
    return false;
  }
  storedIteration_ = it;
  // The ledger is optimistic: a generation is recorded even if some rank's
  // depot write failed — restorability is re-checked object-by-object at
  // restart time (findRestorableGeneration). Manifest *completeness* is the
  // stricter two-phase gate used when integrity verification is on.
  checkpoints_[incarnation_] = CheckpointRecord{it, currentProcs_};
  Manifest& m = manifests_[incarnation_];
  m.iteration = it;
  m.iterationStored = true;
  return true;
}

bool Rss::stageSlice(int epoch, const std::string& array, int rank,
                     SliceEntry entry, int arraysPerRank) {
  if (epoch != incarnation_) {
    ++staleEpochRejects_;
    GRADS_WARN("rss") << log::appAt(app_, engine_->now())
                      << "zombie slice stage (epoch " << epoch
                      << " vs live " << incarnation_ << ") dropped";
    return false;
  }
  Manifest& m = manifests_[epoch];
  m.arraysPerRank = arraysPerRank;
  m.slices[{array, rank}] = entry;
  return true;
}

const Rss::Manifest* Rss::manifest(int generation) const {
  const auto it = manifests_.find(generation);
  return it == manifests_.end() ? nullptr : &it->second;
}

const Rss::SliceEntry* Rss::sliceEntry(int generation,
                                       const std::string& array,
                                       int rank) const {
  const Manifest* m = manifest(generation);
  if (m == nullptr) return nullptr;
  const auto it = m->slices.find({array, rank});
  return it == m->slices.end() ? nullptr : &it->second;
}

bool Rss::manifestComplete(int generation) const {
  const Manifest* m = manifest(generation);
  const auto record = checkpointRecord(generation);
  if (m == nullptr || !record || !m->iterationStored || m->arraysPerRank <= 0) {
    return false;
  }
  const auto expected = static_cast<std::size_t>(record->procs) *
                        static_cast<std::size_t>(m->arraysPerRank);
  return m->slices.size() == expected;
}

std::uint64_t Rss::manifestDigest(int generation) const {
  const Manifest* m = manifest(generation);
  if (m == nullptr) return 0;
  std::uint64_t h = util::fnv1a64(app_);
  h = util::hashCombine(h, static_cast<std::uint64_t>(generation));
  h = util::hashCombine(h, static_cast<std::uint64_t>(m->iteration));
  const auto record = checkpointRecord(generation);
  h = util::hashCombine(
      h, static_cast<std::uint64_t>(record ? record->procs : 0));
  for (const auto& [id, entry] : m->slices) {
    h = util::hashCombine(h, util::fnv1a64(id.first));
    h = util::hashCombine(h, static_cast<std::uint64_t>(id.second));
    h = util::hashCombine(h, entry.bytes);
    h = util::hashCombine(h, entry.digest);
  }
  return h;
}

std::vector<int> Rss::manifestGenerations() const {
  std::vector<int> gens;
  gens.reserve(manifests_.size());
  for (const auto& [gen, m] : manifests_) {
    (void)m;
    gens.push_back(gen);
  }
  return gens;
}

std::optional<Rss::CheckpointRecord> Rss::checkpointRecord(
    int generation) const {
  const auto it = checkpoints_.find(generation);
  if (it == checkpoints_.end()) return std::nullopt;
  return it->second;
}

void Rss::encodeState(core::SnapshotWriter& w) const {
  w.putStr(app_);
  w.putBool(stopRequested_);
  w.putBool(failureSignaled_);
  w.putU64(failedNode_);
  w.putI64(incarnation_);
  w.putI64(previousProcs_);
  w.putI64(currentProcs_);
  w.putU64(storedIteration_);
  w.putBool(hasCheckpoint_);
  w.putU64(checkpoints_.size());
  for (const auto& [gen, rec] : checkpoints_) {
    w.putI64(gen);
    w.putU64(rec.iteration);
    w.putI64(rec.procs);
  }
  w.putU64(manifests_.size());
  for (const auto& [gen, m] : manifests_) {
    w.putI64(gen);
    w.putU64(m.iteration);
    w.putBool(m.iterationStored);
    w.putI64(m.arraysPerRank);
    w.putU64(m.slices.size());
    for (const auto& [key, slice] : m.slices) {
      w.putStr(key.first);
      w.putI64(key.second);
      w.putF64(slice.bytes);
      w.putU64(slice.digest);
      w.putU64(slice.primaryNode);
      w.putU64(slice.replicaNode);
    }
  }
  w.putU64(occupied_.size());
  for (const grid::NodeId id : occupied_) w.putU64(id);
  w.putU64(ignoredFailures_);
  w.putU64(staleEpochRejects_);
}

void Rss::decodeState(core::SnapshotReader& r) {
  const std::string app = r.getStr();
  GRADS_REQUIRE(app == app_,
                "Rss::decodeState: snapshot is for a different application");
  stopRequested_ = r.getBool();
  failureSignaled_ = r.getBool();
  failedNode_ = static_cast<grid::NodeId>(r.getU64());
  incarnation_ = static_cast<int>(r.getI64());
  previousProcs_ = static_cast<int>(r.getI64());
  currentProcs_ = static_cast<int>(r.getI64());
  storedIteration_ = static_cast<std::size_t>(r.getU64());
  hasCheckpoint_ = r.getBool();
  checkpoints_.clear();
  const std::uint64_t nCheckpoints = r.getU64();
  for (std::uint64_t i = 0; i < nCheckpoints; ++i) {
    const int gen = static_cast<int>(r.getI64());
    CheckpointRecord rec;
    rec.iteration = static_cast<std::size_t>(r.getU64());
    rec.procs = static_cast<int>(r.getI64());
    checkpoints_[gen] = rec;
  }
  manifests_.clear();
  const std::uint64_t nManifests = r.getU64();
  for (std::uint64_t i = 0; i < nManifests; ++i) {
    const int gen = static_cast<int>(r.getI64());
    Manifest& m = manifests_[gen];
    m.iteration = static_cast<std::size_t>(r.getU64());
    m.iterationStored = r.getBool();
    m.arraysPerRank = static_cast<int>(r.getI64());
    const std::uint64_t nSlices = r.getU64();
    for (std::uint64_t j = 0; j < nSlices; ++j) {
      const std::string array = r.getStr();
      const int rank = static_cast<int>(r.getI64());
      SliceEntry slice;
      slice.bytes = r.getF64();
      slice.digest = r.getU64();
      slice.primaryNode = static_cast<grid::NodeId>(r.getU64());
      slice.replicaNode = static_cast<grid::NodeId>(r.getU64());
      m.slices[{array, rank}] = slice;
    }
  }
  occupied_.clear();
  const std::uint64_t nOccupied = r.getU64();
  for (std::uint64_t i = 0; i < nOccupied; ++i) {
    occupied_.insert(static_cast<grid::NodeId>(r.getU64()));
  }
  ignoredFailures_ = static_cast<std::size_t>(r.getU64());
  staleEpochRejects_ = static_cast<std::size_t>(r.getU64());
}

Srs::Srs(services::Ibp& ibp, Rss& rss, vmpi::World& world)
    : ibp_(&ibp), rss_(&rss), world_(&world), epoch_(rss.incarnation()) {}

void Srs::registerArray(const std::string& name, double totalBytes,
                        std::size_t blockElements, double bytesPerElement) {
  GRADS_REQUIRE(totalBytes >= 0.0, "Srs::registerArray: negative size");
  arrays_[name] = ArrayInfo{totalBytes, blockElements, bytesPerElement};
}

double Srs::registeredBytes() const {
  double total = 0.0;
  for (const auto& [name, info] : arrays_) {
    (void)name;
    total += info.totalBytes;
  }
  return total;
}

std::string Srs::objectKey(const std::string& app, const std::string& array,
                           int rank, int incarnation, bool replica) {
  return app + ".ckpt." + array + ".r" + std::to_string(rank) + ".i" +
         std::to_string(incarnation) + (replica ? ".rep" : "");
}

std::uint64_t Srs::contentDigest(const std::string& app,
                                 const std::string& array, int rank,
                                 int generation, double bytes) {
  std::uint64_t h = util::fnv1a64(objectKey(app, array, rank, generation));
  h = util::hashCombine(h, bytes);
  return h == 0 ? 1 : h;  // 0 means "derive" to Ibp::put; never emit it
}

sim::Task Srs::checkIfStop(int rank, bool* shouldStop) {
  GRADS_REQUIRE(shouldStop != nullptr, "Srs::checkIfStop: null output");
  // Poll the RSS daemon; the real SRS exchanges a small control message.
  *shouldStop = rss_->stopRequested();
  if (*shouldStop) {
    co_await writeCheckpoint(rank);
  }
}

double Srs::writeSpanSeconds() const {
  return writeEnd_ < 0.0 ? 0.0 : writeEnd_ - writeStart_;
}

double Srs::readSpanSeconds() const {
  return readEnd_ < 0.0 ? 0.0 : readEnd_ - readStart_;
}

sim::Task Srs::writeCheckpoint(int rank) {
  const int p = world_->size();
  const grid::NodeId node = world_->nodeOf(rank);
  const double t0 = world_->engine().now();
  if (writeStart_ < 0.0 || t0 < writeStart_) writeStart_ = t0;
  const grid::NodeId depot = stableDepot_ != grid::kNoId ? stableDepot_ : node;
  // Writes are keyed and fenced by the epoch captured at construction: a
  // zombie instance keeps stamping its own stale generation and epoch, so
  // it can neither collide with the live incarnation's keys nor get past a
  // raised depot fence.
  services::PutOptions fence;
  fence.fenceDomain = rss_->appName();
  fence.epoch = epoch_;
  // Checkpoint pushes are background movers: pace them behind the
  // application's interactive traffic instead of stealing its bandwidth.
  fence.transferClass = grid::TransferClass::kBulk;
  bool allWritten = true;
  for (const auto& [array, info] : arrays_) {
    // This rank's exact block-cyclic share (block counts are generally not
    // divisible by p, so shares are unequal by up to one block).
    const auto elements = static_cast<std::size_t>(
        info.totalBytes / info.bytesPerElement + 0.5);
    const RedistributionPlan owned(p, 1, elements, info.blockElements,
                                   info.bytesPerElement);
    const double bytes = owned.bytes(rank, 0);
    const std::uint64_t digest =
        contentDigest(rss_->appName(), array, rank, epoch_, bytes);
    fence.digest = digest;
    // A dark depot must not kill the application mid-checkpoint: the write
    // is skipped (this generation simply won't qualify at restore time) and
    // the replica, if configured, still gets its copy. A *fenced-out* write
    // is different — the whole instance is a zombie; drop and move on.
    bool primaryOk = false;
    try {
      co_await ibp_->put(objectKey(rss_->appName(), array, rank, epoch_),
                         bytes, depot, node, fence);
      primaryOk = true;
    } catch (const services::DepotDownError&) {
      GRADS_WARN("srs") << log::appAt(rss_->appName(), world_->engine().now())
                        << "rank " << rank
                        << ": primary depot dark, checkpoint copy skipped";
    } catch (const services::StaleEpochError&) {
      ++staleWriteRejects_;
      GRADS_WARN("srs") << log::appAt(rss_->appName(), world_->engine().now())
                        << "rank " << rank
                        << ": primary write fenced out (stale epoch "
                        << epoch_ << ")";
    }
    bool replicaOk = false;
    if (replicaDepot_ != grid::kNoId && replicaDepot_ != depot) {
      try {
        co_await ibp_->put(objectKey(rss_->appName(), array, rank, epoch_,
                                     /*replica=*/true),
                           bytes, replicaDepot_, node, fence);
        replicaOk = true;
      } catch (const services::DepotDownError&) {
        GRADS_WARN("srs") << log::appAt(rss_->appName(), world_->engine().now())
                          << "rank " << rank
                          << ": replica depot dark, mirror copy skipped";
      } catch (const services::StaleEpochError&) {
        ++staleWriteRejects_;
        GRADS_WARN("srs") << log::appAt(rss_->appName(), world_->engine().now())
                          << "rank " << rank
                          << ": replica write fenced out (stale epoch "
                          << epoch_ << ")";
      }
    }
    allWritten = allWritten && (primaryOk || replicaOk);
    // Stage the manifest entry even when a copy was skipped: the digest
    // describes the *content*, and restore verifies whichever copy it can
    // reach. A zombie's stage is rejected inside the RSS.
    Rss::SliceEntry entry;
    entry.bytes = bytes;
    entry.digest = digest;
    entry.primaryNode = depot;
    entry.replicaNode =
        (replicaDepot_ != grid::kNoId && replicaDepot_ != depot)
            ? replicaDepot_
            : grid::kNoId;
    if (!rss_->stageSlice(epoch_, array, rank, entry,
                          static_cast<int>(arrays_.size()))) {
      allWritten = false;  // zombie: never mark a checkpoint
    }
  }
  if (allWritten && epoch_ == rss_->incarnation()) rss_->markCheckpoint();
  writeEnd_ = std::max(writeEnd_, world_->engine().now());
  GRADS_DEBUG("srs") << log::appAt(rss_->appName(), world_->engine().now())
                     << "rank " << rank << ": checkpoint written";
}

bool sliceCopyVerifies(const services::Ibp& ibp, const std::string& key,
                       const Rss::SliceEntry& want) {
  return ibp.readable(key) && ibp.observedDigest(key) == want.digest &&
         std::abs(ibp.observedBytes(key) - want.bytes) < 0.5;
}

bool Srs::copyUsable(const std::string& key, const Rss::SliceEntry* want) {
  if (!ibp_->readable(key)) return false;
  if (!verify_ || want == nullptr) return true;
  if (sliceCopyVerifies(*ibp_, key, *want)) return true;
  ++integrityRejects_;
  GRADS_WARN("srs") << log::appAt(rss_->appName(), world_->engine().now())
                    << "integrity check failed for "
                    << key << ", copy rejected";
  return false;
}

sim::Task Srs::readSlice(const std::string& array, int sourceRank, int gen,
                         double bytes, grid::NodeId toNode) {
  const std::string primary =
      objectKey(rss_->appName(), array, sourceRank, gen);
  const std::string replica =
      objectKey(rss_->appName(), array, sourceRank, gen, /*replica=*/true);
  const Rss::SliceEntry* want = rss_->sliceEntry(gen, array, sourceRank);
  util::Retry retry(retry_, &retryRng_);
  while (true) {
    // Prefer whichever copy is readable — and, when verifying, whose
    // content matches the manifest — right now (primary first: it is
    // usually the closer depot). A corrupt copy is treated exactly like a
    // dark depot: replica, then backoff, then the caller's generation walk.
    const std::string* key = nullptr;
    if (copyUsable(primary, want)) {
      key = &primary;
    } else if (copyUsable(replica, want)) {
      key = &replica;
    }
    if (key != nullptr) {
      // Block-cyclic redistribution reads are bulk: N restarted ranks
      // pulling slices at once would otherwise starve whatever contract
      // traffic shares the WAN (incast on migration).
      co_await ibp_->getSlice(*key, bytes, toNode,
                              grid::TransferClass::kBulk);
      if (want != nullptr && !sliceCopyVerifies(*ibp_, *key, *want)) {
        // Only reachable with verification off: ground-truth accounting of
        // a silent wrong restore (the app now holds corrupt data).
        ++corruptSliceReads_;
      }
      co_return;
    }
    const auto delay = retry.nextDelaySec();
    if (!delay) {
      throw CheckpointUnavailableError(
          "checkpoint slice " + primary + " unreadable after " +
          std::to_string(retry.attemptsUsed() + 1) + " attempts");
    }
    GRADS_DEBUG("srs") << rss_->appName() << ": slice " << primary
                       << " unreadable, retrying in " << *delay << " s";
    co_await sim::sleepFor(world_->engine(), *delay);
  }
}

sim::Task Srs::restoreCheckpoint(int rank) {
  GRADS_REQUIRE(rss_->hasCheckpoint(), "Srs::restoreCheckpoint: no checkpoint");
  const int gen = restoreGen_ > 0 ? restoreGen_ : rss_->incarnation() - 1;
  // The generation's own rank count (an older generation may have been
  // written by a different incarnation width than the previous one).
  const auto record = rss_->checkpointRecord(gen);
  const int oldP = record ? record->procs : rss_->previousProcs();
  GRADS_REQUIRE(oldP > 0, "Srs::restoreCheckpoint: no previous incarnation");
  const int newP = world_->size();
  const grid::NodeId node = world_->nodeOf(rank);
  const double t0 = world_->engine().now();
  if (readStart_ < 0.0 || t0 < readStart_) readStart_ = t0;
  // Block-cyclic N-to-M redistribution: the exact per-pair volumes come
  // from the block-ownership intersection (RedistributionPlan); this rank
  // pulls its slices from every old depot holding part of its new share
  // (mostly across the WAN). Each slice read retries with backoff and falls
  // back to the replica copy; only when both copies stay unreadable past
  // the retry budget does CheckpointUnavailableError escape to the manager.
  for (const auto& [array, info] : arrays_) {
    const auto elements = static_cast<std::size_t>(
        info.totalBytes / info.bytesPerElement + 0.5);
    const RedistributionPlan plan(oldP, newP, elements, info.blockElements,
                                  info.bytesPerElement);
    for (int o = 0; o < oldP; ++o) {
      const double slice = plan.bytes(o, rank);
      if (slice <= 0.0) continue;
      co_await readSlice(array, o, gen, slice, node);
    }
  }
  restored_ = true;
  ++ranksRestored_;
  readEnd_ = std::max(readEnd_, world_->engine().now());
  GRADS_DEBUG("srs") << log::appAt(rss_->appName(), world_->engine().now())
                     << "rank " << rank << ": checkpoint restored (gen "
                     << gen << ", " << oldP << " -> " << newP << " procs)";
  if (ranksRestored_ == world_->size() && onAllRestored_) {
    // Every rank of the new incarnation holds its share: the migration's
    // point of no return. Notify before returning control to the app.
    auto fn = std::move(onAllRestored_);
    onAllRestored_ = nullptr;
    fn();
  }
}

std::optional<int> findRestorableGeneration(
    const services::Ibp& ibp, const Rss& rss,
    const std::vector<std::string>& arrays, bool verifyIntegrity) {
  for (int gen = rss.incarnation(); gen >= 1; --gen) {
    const auto record = rss.checkpointRecord(gen);
    if (!record) continue;
    // Crash-consistency gate: a generation whose two-phase publish never
    // finished (a rank died mid-checkpoint, or the iteration was never
    // recorded) is not a checkpoint — skip it without touching the depot.
    if (verifyIntegrity && !rss.manifestComplete(gen)) continue;
    bool complete = true;
    for (const auto& array : arrays) {
      for (int r = 0; r < record->procs && complete; ++r) {
        const std::string primary = Srs::objectKey(rss.appName(), array, r, gen);
        const std::string replica =
            Srs::objectKey(rss.appName(), array, r, gen, /*replica=*/true);
        if (verifyIntegrity) {
          const Rss::SliceEntry* want = rss.sliceEntry(gen, array, r);
          complete = want != nullptr &&
                     (sliceCopyVerifies(ibp, primary, *want) ||
                      sliceCopyVerifies(ibp, replica, *want));
        } else {
          complete = ibp.readable(primary) || ibp.readable(replica);
        }
      }
      if (!complete) break;
    }
    if (complete) return gen;
  }
  return std::nullopt;
}

}  // namespace grads::reschedule

#include "reschedule/srs.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::reschedule {

Rss::Rss(sim::Engine& engine, std::string appName)
    : engine_(&engine), app_(std::move(appName)) {}

void Rss::requestStop() {
  if (!stopRequested_) {
    GRADS_INFO("rss") << app_ << ": stop requested at t="
                      << engine_->now();
  }
  stopRequested_ = true;
}

void Rss::beginIncarnation(int nProcs) {
  GRADS_REQUIRE(nProcs > 0, "Rss::beginIncarnation: need processes");
  previousProcs_ = currentProcs_;
  currentProcs_ = nProcs;
  ++incarnation_;
  stopRequested_ = false;
  failureSignaled_ = false;
  failedNode_ = grid::kNoId;
}

void Rss::markFailure(grid::NodeId node) {
  if (!failureSignaled_) {
    GRADS_WARN("rss") << app_ << ": node failure signaled at t="
                      << engine_->now();
  }
  failureSignaled_ = true;
  failedNode_ = node;
}

void Rss::storeIteration(std::size_t it) {
  storedIteration_ = it;
  // The ledger is optimistic: a generation is recorded even if some rank's
  // depot write failed — restorability is re-checked object-by-object at
  // restart time (findRestorableGeneration).
  checkpoints_[incarnation_] = CheckpointRecord{it, currentProcs_};
}

std::optional<Rss::CheckpointRecord> Rss::checkpointRecord(
    int generation) const {
  const auto it = checkpoints_.find(generation);
  if (it == checkpoints_.end()) return std::nullopt;
  return it->second;
}

Srs::Srs(services::Ibp& ibp, Rss& rss, vmpi::World& world)
    : ibp_(&ibp), rss_(&rss), world_(&world) {}

void Srs::registerArray(const std::string& name, double totalBytes,
                        std::size_t blockElements, double bytesPerElement) {
  GRADS_REQUIRE(totalBytes >= 0.0, "Srs::registerArray: negative size");
  arrays_[name] = ArrayInfo{totalBytes, blockElements, bytesPerElement};
}

double Srs::registeredBytes() const {
  double total = 0.0;
  for (const auto& [name, info] : arrays_) {
    (void)name;
    total += info.totalBytes;
  }
  return total;
}

std::string Srs::objectKey(const std::string& app, const std::string& array,
                           int rank, int incarnation, bool replica) {
  return app + ".ckpt." + array + ".r" + std::to_string(rank) + ".i" +
         std::to_string(incarnation) + (replica ? ".rep" : "");
}

sim::Task Srs::checkIfStop(int rank, bool* shouldStop) {
  GRADS_REQUIRE(shouldStop != nullptr, "Srs::checkIfStop: null output");
  // Poll the RSS daemon; the real SRS exchanges a small control message.
  *shouldStop = rss_->stopRequested();
  if (*shouldStop) {
    co_await writeCheckpoint(rank);
  }
}

double Srs::writeSpanSeconds() const {
  return writeEnd_ < 0.0 ? 0.0 : writeEnd_ - writeStart_;
}

double Srs::readSpanSeconds() const {
  return readEnd_ < 0.0 ? 0.0 : readEnd_ - readStart_;
}

sim::Task Srs::writeCheckpoint(int rank) {
  const int p = world_->size();
  const grid::NodeId node = world_->nodeOf(rank);
  const double t0 = world_->engine().now();
  if (writeStart_ < 0.0 || t0 < writeStart_) writeStart_ = t0;
  const grid::NodeId depot = stableDepot_ != grid::kNoId ? stableDepot_ : node;
  bool allWritten = true;
  for (const auto& [array, info] : arrays_) {
    // This rank's exact block-cyclic share (block counts are generally not
    // divisible by p, so shares are unequal by up to one block).
    const auto elements = static_cast<std::size_t>(
        info.totalBytes / info.bytesPerElement + 0.5);
    const RedistributionPlan owned(p, 1, elements, info.blockElements,
                                   info.bytesPerElement);
    const double bytes = owned.bytes(rank, 0);
    // A dark depot must not kill the application mid-checkpoint: the write
    // is skipped (this generation simply won't qualify at restore time) and
    // the replica, if configured, still gets its copy.
    bool primaryOk = false;
    try {
      co_await ibp_->put(
          objectKey(rss_->appName(), array, rank, rss_->incarnation()), bytes,
          depot, node);
      primaryOk = true;
    } catch (const services::DepotDownError&) {
      GRADS_WARN("srs") << rss_->appName() << " rank " << rank
                        << ": primary depot dark, checkpoint copy skipped";
    }
    bool replicaOk = false;
    if (replicaDepot_ != grid::kNoId && replicaDepot_ != depot) {
      try {
        co_await ibp_->put(objectKey(rss_->appName(), array, rank,
                                     rss_->incarnation(), /*replica=*/true),
                           bytes, replicaDepot_, node);
        replicaOk = true;
      } catch (const services::DepotDownError&) {
        GRADS_WARN("srs") << rss_->appName() << " rank " << rank
                          << ": replica depot dark, mirror copy skipped";
      }
    }
    allWritten = allWritten && (primaryOk || replicaOk);
  }
  if (allWritten) rss_->markCheckpoint();
  writeEnd_ = std::max(writeEnd_, world_->engine().now());
  GRADS_DEBUG("srs") << rss_->appName() << " rank " << rank
                     << ": checkpoint written";
}

sim::Task Srs::readSlice(const std::string& array, int sourceRank, int gen,
                         double bytes, grid::NodeId toNode) {
  const std::string primary =
      objectKey(rss_->appName(), array, sourceRank, gen);
  const std::string replica =
      objectKey(rss_->appName(), array, sourceRank, gen, /*replica=*/true);
  util::Retry retry(retry_, &retryRng_);
  while (true) {
    // Prefer whichever copy is readable right now (primary first: it is
    // usually the closer depot).
    const std::string* key = nullptr;
    if (ibp_->readable(primary)) {
      key = &primary;
    } else if (ibp_->readable(replica)) {
      key = &replica;
    }
    if (key != nullptr) {
      co_await ibp_->getSlice(*key, bytes, toNode);
      co_return;
    }
    const auto delay = retry.nextDelaySec();
    if (!delay) {
      throw CheckpointUnavailableError(
          "checkpoint slice " + primary + " unreadable after " +
          std::to_string(retry.attemptsUsed() + 1) + " attempts");
    }
    GRADS_DEBUG("srs") << rss_->appName() << ": slice " << primary
                       << " unreadable, retrying in " << *delay << " s";
    co_await sim::sleepFor(world_->engine(), *delay);
  }
}

sim::Task Srs::restoreCheckpoint(int rank) {
  GRADS_REQUIRE(rss_->hasCheckpoint(), "Srs::restoreCheckpoint: no checkpoint");
  const int gen = restoreGen_ > 0 ? restoreGen_ : rss_->incarnation() - 1;
  // The generation's own rank count (an older generation may have been
  // written by a different incarnation width than the previous one).
  const auto record = rss_->checkpointRecord(gen);
  const int oldP = record ? record->procs : rss_->previousProcs();
  GRADS_REQUIRE(oldP > 0, "Srs::restoreCheckpoint: no previous incarnation");
  const int newP = world_->size();
  const grid::NodeId node = world_->nodeOf(rank);
  const double t0 = world_->engine().now();
  if (readStart_ < 0.0 || t0 < readStart_) readStart_ = t0;
  // Block-cyclic N-to-M redistribution: the exact per-pair volumes come
  // from the block-ownership intersection (RedistributionPlan); this rank
  // pulls its slices from every old depot holding part of its new share
  // (mostly across the WAN). Each slice read retries with backoff and falls
  // back to the replica copy; only when both copies stay unreadable past
  // the retry budget does CheckpointUnavailableError escape to the manager.
  for (const auto& [array, info] : arrays_) {
    const auto elements = static_cast<std::size_t>(
        info.totalBytes / info.bytesPerElement + 0.5);
    const RedistributionPlan plan(oldP, newP, elements, info.blockElements,
                                  info.bytesPerElement);
    for (int o = 0; o < oldP; ++o) {
      const double slice = plan.bytes(o, rank);
      if (slice <= 0.0) continue;
      co_await readSlice(array, o, gen, slice, node);
    }
  }
  restored_ = true;
  readEnd_ = std::max(readEnd_, world_->engine().now());
  GRADS_DEBUG("srs") << rss_->appName() << " rank " << rank
                     << ": checkpoint restored (gen " << gen << ", " << oldP
                     << " -> " << newP << " procs)";
}

std::optional<int> findRestorableGeneration(
    const services::Ibp& ibp, const Rss& rss,
    const std::vector<std::string>& arrays) {
  for (int gen = rss.incarnation(); gen >= 1; --gen) {
    const auto record = rss.checkpointRecord(gen);
    if (!record) continue;
    bool complete = true;
    for (const auto& array : arrays) {
      for (int r = 0; r < record->procs && complete; ++r) {
        complete =
            ibp.readable(Srs::objectKey(rss.appName(), array, r, gen)) ||
            ibp.readable(
                Srs::objectKey(rss.appName(), array, r, gen, /*replica=*/true));
      }
      if (!complete) break;
    }
    if (complete) return gen;
  }
  return std::nullopt;
}

}  // namespace grads::reschedule

#include "reschedule/srs.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::reschedule {

Rss::Rss(sim::Engine& engine, std::string appName)
    : engine_(&engine), app_(std::move(appName)) {}

void Rss::requestStop() {
  if (!stopRequested_) {
    GRADS_INFO("rss") << app_ << ": stop requested at t="
                      << engine_->now();
  }
  stopRequested_ = true;
}

void Rss::beginIncarnation(int nProcs) {
  GRADS_REQUIRE(nProcs > 0, "Rss::beginIncarnation: need processes");
  previousProcs_ = currentProcs_;
  currentProcs_ = nProcs;
  ++incarnation_;
  stopRequested_ = false;
  failureSignaled_ = false;
  failedNode_ = grid::kNoId;
}

void Rss::markFailure(grid::NodeId node) {
  if (!failureSignaled_) {
    GRADS_WARN("rss") << app_ << ": node failure signaled at t="
                      << engine_->now();
  }
  failureSignaled_ = true;
  failedNode_ = node;
}

Srs::Srs(services::Ibp& ibp, Rss& rss, vmpi::World& world)
    : ibp_(&ibp), rss_(&rss), world_(&world) {}

void Srs::registerArray(const std::string& name, double totalBytes,
                        std::size_t blockElements, double bytesPerElement) {
  GRADS_REQUIRE(totalBytes >= 0.0, "Srs::registerArray: negative size");
  arrays_[name] = ArrayInfo{totalBytes, blockElements, bytesPerElement};
}

double Srs::registeredBytes() const {
  double total = 0.0;
  for (const auto& [name, info] : arrays_) {
    (void)name;
    total += info.totalBytes;
  }
  return total;
}

std::string Srs::objectKey(const std::string& app, const std::string& array,
                           int rank, int incarnation) {
  return app + ".ckpt." + array + ".r" + std::to_string(rank) + ".i" +
         std::to_string(incarnation);
}

sim::Task Srs::checkIfStop(int rank, bool* shouldStop) {
  GRADS_REQUIRE(shouldStop != nullptr, "Srs::checkIfStop: null output");
  // Poll the RSS daemon; the real SRS exchanges a small control message.
  *shouldStop = rss_->stopRequested();
  if (*shouldStop) {
    co_await writeCheckpoint(rank);
  }
}

double Srs::writeSpanSeconds() const {
  return writeEnd_ < 0.0 ? 0.0 : writeEnd_ - writeStart_;
}

double Srs::readSpanSeconds() const {
  return readEnd_ < 0.0 ? 0.0 : readEnd_ - readStart_;
}

sim::Task Srs::writeCheckpoint(int rank) {
  const int p = world_->size();
  const grid::NodeId node = world_->nodeOf(rank);
  const double t0 = world_->engine().now();
  if (writeStart_ < 0.0 || t0 < writeStart_) writeStart_ = t0;
  const grid::NodeId depot = stableDepot_ != grid::kNoId ? stableDepot_ : node;
  for (const auto& [array, info] : arrays_) {
    // This rank's exact block-cyclic share (block counts are generally not
    // divisible by p, so shares are unequal by up to one block).
    const auto elements = static_cast<std::size_t>(
        info.totalBytes / info.bytesPerElement + 0.5);
    const RedistributionPlan owned(p, 1, elements, info.blockElements,
                                   info.bytesPerElement);
    co_await ibp_->put(objectKey(rss_->appName(), array, rank,
                                 rss_->incarnation()),
                       owned.bytes(rank, 0), depot, node);
  }
  rss_->markCheckpoint();
  writeEnd_ = std::max(writeEnd_, world_->engine().now());
  GRADS_DEBUG("srs") << rss_->appName() << " rank " << rank
                     << ": checkpoint written";
}

sim::Task Srs::restoreCheckpoint(int rank) {
  GRADS_REQUIRE(rss_->hasCheckpoint(), "Srs::restoreCheckpoint: no checkpoint");
  const int oldP = rss_->previousProcs();
  GRADS_REQUIRE(oldP > 0, "Srs::restoreCheckpoint: no previous incarnation");
  const int newP = world_->size();
  const grid::NodeId node = world_->nodeOf(rank);
  const double t0 = world_->engine().now();
  if (readStart_ < 0.0 || t0 < readStart_) readStart_ = t0;
  // Block-cyclic N-to-M redistribution: the exact per-pair volumes come
  // from the block-ownership intersection (RedistributionPlan); this rank
  // pulls its slices from every old depot holding part of its new share
  // (mostly across the WAN).
  for (const auto& [array, info] : arrays_) {
    const auto elements = static_cast<std::size_t>(
        info.totalBytes / info.bytesPerElement + 0.5);
    const RedistributionPlan plan(oldP, newP, elements, info.blockElements,
                                  info.bytesPerElement);
    for (int o = 0; o < oldP; ++o) {
      const double slice = plan.bytes(o, rank);
      if (slice <= 0.0) continue;
      co_await ibp_->getSlice(
          objectKey(rss_->appName(), array, o, rss_->incarnation() - 1), slice,
          node);
    }
  }
  restored_ = true;
  readEnd_ = std::max(readEnd_, world_->engine().now());
  GRADS_DEBUG("srs") << rss_->appName() << " rank " << rank
                     << ": checkpoint restored (" << oldP << " -> " << newP
                     << " procs)";
}

}  // namespace grads::reschedule

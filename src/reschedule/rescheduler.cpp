#include "reschedule/rescheduler.hpp"

#include <algorithm>

#include "reschedule/whatif/fork_driver.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::reschedule {

const char* reschedulerModeName(ReschedulerMode m) {
  switch (m) {
    case ReschedulerMode::kDefault: return "default";
    case ReschedulerMode::kForcedMigrate: return "forced-migrate";
    case ReschedulerMode::kForcedStay: return "forced-stay";
  }
  return "?";
}

StopRestartRescheduler::StopRestartRescheduler(const services::Gis& gis,
                                               const services::Nws* nws,
                                               ReschedulerOptions options)
    : gis_(&gis), nws_(nws), opts_(options) {
  GRADS_REQUIRE(opts_.worstCaseMigrationSec >= 0.0,
                "Rescheduler: negative migration cost");
}

MigrationDecision StopRestartRescheduler::evaluate(
    const core::Cop& cop, const std::vector<grid::NodeId>& current,
    std::size_t phase) const {
  GRADS_REQUIRE(cop.perfModel && cop.mapper,
                "Rescheduler: COP lacks model or mapper");
  MigrationDecision d;
  d.time = gis_->grid().engine().now();
  d.assumedMigrationCostSec = opts_.worstCaseMigrationSec;

  // Updated Grid resource information from NWS, then the COP's mapper picks
  // the best candidate resource set.
  d.target = cop.mapper->chooseMapping(gis_->availableNodes(), nws_);
  d.remainingOnCurrentSec = cop.perfModel->remainingSeconds(
      current, phase, nws_, core::RateView::kIncumbent);
  d.remainingOnTargetSec = cop.perfModel->remainingSeconds(
      d.target, phase, nws_, core::RateView::kNewProcess);

  const bool sameResources = d.target == current;
  const double benefit = d.remainingOnCurrentSec -
                         (d.remainingOnTargetSec + d.assumedMigrationCostSec);
  switch (opts_.mode) {
    case ReschedulerMode::kDefault:
      d.migrate = !sameResources && benefit > opts_.minBenefitSec;
      d.reason = d.migrate
                     ? "predicted benefit " + std::to_string(benefit) + " s"
                     : (sameResources ? "best resources are current ones"
                                      : "predicted benefit " +
                                            std::to_string(benefit) +
                                            " s too small");
      break;
    case ReschedulerMode::kForcedMigrate:
      d.migrate = !sameResources;
      d.reason = "forced migrate";
      break;
    case ReschedulerMode::kForcedStay:
      d.migrate = false;
      d.reason = "forced stay";
      break;
  }
  return d;
}

autopilot::RescheduleOutcome StopRestartRescheduler::onViolation(
    const core::Cop& cop, Rss& rss, const std::vector<grid::NodeId>& current,
    std::size_t phase) {
  if (rss.stopRequested()) {
    // A stop is already in flight (and, with a journal, an open action
    // record exists); re-raising would double-open the transaction.
    return autopilot::RescheduleOutcome::kMigrated;
  }
  MigrationDecision d = evaluate(cop, current, phase);
  const double now = gis_->grid().engine().now();
  GRADS_INFO("rescheduler")
      << log::appAt(cop.name, now) << "violation at phase " << phase << " -> "
      << (d.migrate ? "migrate" : "stay") << " (" << d.reason
      << "; cur=" << d.remainingOnCurrentSec
      << "s new=" << d.remainingOnTargetSec << "s +"
      << d.assumedMigrationCostSec << "s)";
  decisions_.push_back(d);
  if (forkDriver_ != nullptr) {
    // Realized-outcome feedback first: this confirmed violation settles any
    // pending prediction for the app (a promised-clean horizon that still
    // violated is a divergence and feeds the mistrust ledger).
    forkDriver_->noteViolation(cop.name, now);
    whatif::ForkDriver::DecisionInput in;
    in.app = cop.name;
    in.current = current;
    in.phase = phase;
    in.modelWantedMigrate = d.migrate;
    in.modelTarget = d.target;
    in.alternateTarget = alternateTarget(cop, current, d.target);
    const whatif::ForkDriver::Decision verdict = forkDriver_->decide(in);
    if (verdict.fromForks) {
      if (verdict.kind == whatif::CandidateKind::kSuppress ||
          verdict.target == current) {
        // Validated stay: the fork ensemble showed staying put dominates, so
        // decline (which widens tolerances) exactly as a model "stay" would.
        return autopilot::RescheduleOutcome::kDeclined;
      }
      if (journal_ != nullptr) {
        journal_->open(cop.name, ActionKind::kMigrate, current, verdict.target,
                       /*pinned=*/true, verdict.summary);
      }
      rss.requestStop();
      return autopilot::RescheduleOutcome::kMigrated;
    }
    // Driver fell back (budget / not armed): the model decision below
    // commits unvalidated, exactly as without a driver.
  }
  if (!d.migrate) return autopilot::RescheduleOutcome::kDeclined;
  if (journal_ != nullptr) {
    // Prepare phase: journal the intent (with the rollback mapping) before
    // any state changes. The stop/checkpoint/restart sequence that follows
    // is owned by the application manager, which resolves this record.
    journal_->open(cop.name, ActionKind::kMigrate, current, d.target);
  }
  rss.requestStop();
  return autopilot::RescheduleOutcome::kMigrated;
}

std::vector<grid::NodeId> StopRestartRescheduler::alternateTarget(
    const core::Cop& cop, const std::vector<grid::NodeId>& current,
    const std::vector<grid::NodeId>& primary) const {
  const std::vector<grid::NodeId>& exclude =
      primary.empty() ? current : primary;
  std::vector<grid::NodeId> pool;
  for (const grid::NodeId n : gis_->availableNodes()) {
    if (std::find(exclude.begin(), exclude.end(), n) == exclude.end()) {
      pool.push_back(n);
    }
  }
  if (pool.empty()) return {};
  return cop.mapper->chooseMapping(pool, nws_);
}

void StopRestartRescheduler::registerRunning(const std::string& name,
                                             RunningApp app) {
  GRADS_REQUIRE(app.cop != nullptr && app.rss != nullptr && app.mapping &&
                    app.phase,
                "Rescheduler::registerRunning: incomplete handle");
  running_[name] = std::move(app);
}

void StopRestartRescheduler::unregisterRunning(const std::string& name) {
  running_.erase(name);
}

void StopRestartRescheduler::onAppCompleted() {
  if (!opts_.opportunistic) return;
  for (auto& [name, app] : running_) {
    if (app.rss->stopRequested()) continue;  // already migrating
    if (journal_ != nullptr && journal_->openAction(name) != nullptr) {
      continue;  // an action is still resolving; don't stack another
    }
    const std::vector<grid::NodeId> current = app.mapping();
    MigrationDecision d = evaluate(*app.cop, current, app.phase());
    decisions_.push_back(d);
    if (d.migrate) {
      GRADS_INFO("rescheduler")
          << log::appAt(name, gis_->grid().engine().now())
          << "opportunistic migration to freed resources (" << d.reason
          << ")";
      if (journal_ != nullptr) {
        journal_->open(name, ActionKind::kMigrate, current, d.target);
      }
      app.rss->requestStop();
    }
  }
}

}  // namespace grads::reschedule

#include "reschedule/chaos.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::reschedule {

const char* chaosKindName(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kNodeFailure: return "node-failure";
    case ChaosKind::kLinkPartition: return "link-partition";
    case ChaosKind::kLinkDegrade: return "link-degrade";
    case ChaosKind::kNwsOutage: return "nws-outage";
    case ChaosKind::kDepotOutage: return "depot-outage";
    case ChaosKind::kBitFlip: return "bit-flip";
    case ChaosKind::kTornWrite: return "torn-write";
    case ChaosKind::kStaleDelivery: return "stale-delivery";
  }
  return "?";
}

ChaosDriver::ChaosDriver(sim::Engine& engine, grid::Grid& grid,
                         FailureInjector& failures, services::Nws* nws,
                         services::Ibp* ibp)
    : engine_(&engine), grid_(&grid), failures_(&failures), nws_(nws),
      ibp_(ibp) {}

void ChaosDriver::arm(const ChaosEvent& event) {
  GRADS_REQUIRE(event.atSec >= engine_->now(),
                "ChaosDriver: event in the past");
  switch (event.kind) {
    case ChaosKind::kNodeFailure:
      GRADS_REQUIRE(event.node != grid::kNoId, "ChaosDriver: no node");
      break;
    case ChaosKind::kLinkPartition:
    case ChaosKind::kLinkDegrade:
      GRADS_REQUIRE(event.link != grid::kNoId, "ChaosDriver: no link");
      break;
    case ChaosKind::kNwsOutage:
      GRADS_REQUIRE(nws_ != nullptr, "ChaosDriver: no NWS wired");
      break;
    case ChaosKind::kDepotOutage:
      GRADS_REQUIRE(ibp_ != nullptr, "ChaosDriver: no IBP wired");
      GRADS_REQUIRE(event.node != grid::kNoId, "ChaosDriver: no depot node");
      break;
    case ChaosKind::kBitFlip:
    case ChaosKind::kTornWrite:
    case ChaosKind::kStaleDelivery:
      GRADS_REQUIRE(ibp_ != nullptr, "ChaosDriver: no IBP wired");
      GRADS_REQUIRE(event.node != grid::kNoId, "ChaosDriver: no depot node");
      break;
  }
  engine_->scheduleDaemonAt(event.atSec, [this, event] { apply(event); });
  if (event.durationSec > 0.0) {
    engine_->scheduleDaemonAt(event.atSec + event.durationSec,
                              [this, event] { revert(event); });
  }
  ++armed_;
}

void ChaosDriver::armAll(const std::vector<ChaosEvent>& events) {
  for (const auto& e : events) arm(e);
}

void ChaosDriver::armFrom(const std::vector<ChaosEvent>& events, double t0) {
  GRADS_REQUIRE(engine_->now() >= t0,
                "ChaosDriver::armFrom: engine clock behind the snapshot time");
  for (const auto& e : events) {
    if (e.atSec >= t0) {
      arm(e);
      continue;
    }
    const bool inFlight = e.durationSec > 0.0 && e.atSec + e.durationSec > t0;
    if (e.kind == ChaosKind::kNodeFailure && e.atSec < t0) {
      // The failure fired pre-snapshot; its stale-GIS and heartbeat tails
      // may still be due (rearmFailureTail skips any at or before now).
      failures_->rearmFailureTail(e.node, e.atSec + e.detectionDelaySec,
                                  e.gisLagSec > 0.0 ? e.atSec + e.gisLagSec
                                                    : 0.0);
    }
    if (!inFlight) continue;  // fully over by t0: state is in the image
    // In-flight window: rebuild the depth the pre-crash apply() created
    // (the decoded component state already holds the effect) and re-arm
    // just the recovery.
    switch (e.kind) {
      case ChaosKind::kLinkPartition:
        ++linkDownDepth_[e.link];
        break;
      case ChaosKind::kNwsOutage:
        ++nwsDarkDepth_;
        break;
      case ChaosKind::kDepotOutage:
        ++depotDownDepth_[e.node];
        break;
      default:
        break;  // node failure / degrade revert unconditionally
    }
    engine_->scheduleDaemonAt(e.atSec + e.durationSec,
                              [this, e] { revert(e); });
    ++armed_;
  }
}

void ChaosDriver::apply(const ChaosEvent& event) {
  switch (event.kind) {
    case ChaosKind::kNodeFailure:
      failures_->failNow(event.node, event.detectionDelaySec,
                         event.gisLagSec);
      ++counters_.nodeFailures;
      break;
    case ChaosKind::kLinkPartition:
      if (linkDownDepth_[event.link]++ == 0) {
        GRADS_WARN("chaos") << "link "
                            << grid_->link(event.link).spec().name
                            << " partitioned at t=" << engine_->now();
        grid_->link(event.link).setUp(false);
      }
      ++counters_.linkPartitions;
      break;
    case ChaosKind::kLinkDegrade:
      GRADS_WARN("chaos") << "link " << grid_->link(event.link).spec().name
                          << " degraded to " << event.bandwidthScale
                          << "x bandwidth at t=" << engine_->now();
      grid_->link(event.link).setBandwidthScale(event.bandwidthScale);
      ++counters_.linkDegrades;
      break;
    case ChaosKind::kNwsOutage:
      if (nwsDarkDepth_++ == 0) {
        GRADS_WARN("chaos") << "NWS sensors dark at t=" << engine_->now();
        nws_->setDark(true);
      }
      ++counters_.nwsOutages;
      break;
    case ChaosKind::kDepotOutage:
      if (depotDownDepth_[event.node]++ == 0) {
        GRADS_WARN("chaos") << "IBP depot on "
                            << grid_->node(event.node).name() << " down at t="
                            << engine_->now();
        ibp_->setDepotUp(event.node, false);
      }
      ++counters_.depotOutages;
      break;
    case ChaosKind::kBitFlip:
    case ChaosKind::kTornWrite:
    case ChaosKind::kStaleDelivery:
      applyIntegrity(event);
      break;
  }
}

void ChaosDriver::applyIntegrity(const ChaosEvent& event) {
  // The victim is drawn at fire time: the campaign was generated before the
  // application wrote anything, so the object population only exists now.
  // The per-event seed keeps the draw deterministic regardless of how many
  // objects other events have already touched.
  const auto keys = ibp_->keysOnDepot(event.node);
  if (keys.empty()) {
    ++counters_.integrityMisses;
    GRADS_DEBUG("chaos") << chaosKindName(event.kind) << " fired on empty "
                         << "depot " << grid_->node(event.node).name();
    return;
  }
  Rng rng(event.victimSeed != 0 ? event.victimSeed : 0xb17f11bULL);
  const auto& key = keys[static_cast<std::size_t>(
      rng.uniformInt(0, static_cast<std::int64_t>(keys.size()) - 1))];
  switch (event.kind) {
    case ChaosKind::kBitFlip: {
      const auto bit = static_cast<std::uint64_t>(rng.uniformInt(0, 63));
      ibp_->injectBitFlip(key, std::uint64_t{1} << bit);
      ++counters_.bitFlips;
      break;
    }
    case ChaosKind::kTornWrite:
      ibp_->injectTornWrite(key, event.tornKeepFrac);
      ++counters_.tornWrites;
      break;
    case ChaosKind::kStaleDelivery:
      ibp_->injectStaleDelivery(key);
      ++counters_.staleDeliveries;
      break;
    default:
      break;
  }
}

void ChaosDriver::revert(const ChaosEvent& event) {
  switch (event.kind) {
    case ChaosKind::kNodeFailure:
      failures_->recoverNow(event.node);
      ++counters_.nodeRecoveries;
      break;
    case ChaosKind::kLinkPartition:
      if (--linkDownDepth_[event.link] == 0) {
        GRADS_INFO("chaos") << "link "
                            << grid_->link(event.link).spec().name
                            << " partition healed at t=" << engine_->now();
        grid_->link(event.link).setUp(true);
      }
      break;
    case ChaosKind::kLinkDegrade:
      GRADS_INFO("chaos") << "link " << grid_->link(event.link).spec().name
                          << " bandwidth restored at t=" << engine_->now();
      grid_->link(event.link).setBandwidthScale(1.0);
      break;
    case ChaosKind::kNwsOutage:
      if (--nwsDarkDepth_ == 0) {
        GRADS_INFO("chaos") << "NWS sensors back at t=" << engine_->now();
        nws_->setDark(false);
      }
      break;
    case ChaosKind::kDepotOutage:
      if (--depotDownDepth_[event.node] == 0) {
        GRADS_INFO("chaos") << "IBP depot on "
                            << grid_->node(event.node).name() << " back at t="
                            << engine_->now();
        ibp_->setDepotUp(event.node, true);
      }
      break;
    case ChaosKind::kBitFlip:
    case ChaosKind::kTornWrite:
    case ChaosKind::kStaleDelivery:
      // Corruption does not heal itself; only a scrub repair undoes it.
      break;
  }
}

namespace {

template <typename T>
T pick(const std::vector<T>& pool, Rng& rng) {
  GRADS_REQUIRE(!pool.empty(), "makeCampaign: empty candidate pool");
  return pool[static_cast<std::size_t>(
      rng.uniformInt(0, static_cast<std::int64_t>(pool.size()) - 1))];
}

}  // namespace

std::vector<ChaosEvent> makeCampaign(const CampaignConfig& config) {
  GRADS_REQUIRE(config.horizonSec > 0.0, "makeCampaign: bad horizon");
  Rng rng(config.seed);
  std::vector<ChaosEvent> events;

  for (int i = 0; i < config.nodeFailures; ++i) {
    ChaosEvent e;
    e.kind = ChaosKind::kNodeFailure;
    e.atSec = rng.uniform(0.0, config.horizonSec);
    e.durationSec = config.nodeOutageSec;
    e.node = pick(config.candidateNodes, rng);
    e.detectionDelaySec = config.detectionDelaySec;
    e.gisLagSec = config.gisLagSec;
    events.push_back(e);
  }
  for (int i = 0; i < config.linkPartitions; ++i) {
    ChaosEvent e;
    e.kind = ChaosKind::kLinkPartition;
    e.atSec = rng.uniform(0.0, config.horizonSec);
    e.durationSec = config.linkOutageSec;
    e.link = pick(config.candidateLinks, rng);
    events.push_back(e);
  }
  for (int i = 0; i < config.linkDegrades; ++i) {
    ChaosEvent e;
    e.kind = ChaosKind::kLinkDegrade;
    e.atSec = rng.uniform(0.0, config.horizonSec);
    e.durationSec = config.degradeDurationSec;
    e.link = pick(config.candidateLinks, rng);
    e.bandwidthScale = config.degradeScale;
    events.push_back(e);
  }
  for (int i = 0; i < config.nwsOutages; ++i) {
    ChaosEvent e;
    e.kind = ChaosKind::kNwsOutage;
    e.atSec = rng.uniform(0.0, config.horizonSec);
    e.durationSec = config.nwsOutageSec;
    events.push_back(e);
  }
  for (int i = 0; i < config.depotOutages; ++i) {
    ChaosEvent e;
    e.kind = ChaosKind::kDepotOutage;
    e.atSec = rng.uniform(0.0, config.horizonSec);
    e.durationSec = config.depotOutageSec;
    e.node = pick(config.candidateDepots, rng);
    events.push_back(e);
  }
  const auto& integrityPool = config.integrityDepots.empty()
                                  ? config.candidateDepots
                                  : config.integrityDepots;
  const auto addIntegrity = [&](ChaosKind kind, int count) {
    for (int i = 0; i < count; ++i) {
      ChaosEvent e;
      e.kind = kind;
      e.atSec = rng.uniform(0.0, config.horizonSec);
      e.durationSec = 0.0;  // corruption is permanent until scrubbed
      e.node = pick(integrityPool, rng);
      e.victimSeed = rng.next();
      e.tornKeepFrac = config.tornKeepFrac;
      events.push_back(e);
    }
  };
  addIntegrity(ChaosKind::kBitFlip, config.bitFlips);
  addIntegrity(ChaosKind::kTornWrite, config.tornWrites);
  addIntegrity(ChaosKind::kStaleDelivery, config.staleDeliveries);

  std::sort(events.begin(), events.end(),
            [](const ChaosEvent& a, const ChaosEvent& b) {
              return a.atSec < b.atSec;
            });
  return events;
}

}  // namespace grads::reschedule

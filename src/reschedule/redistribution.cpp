#include "reschedule/redistribution.hpp"

#include <numeric>

#include "util/error.hpp"

namespace grads::reschedule {

RedistributionPlan::RedistributionPlan(int oldRanks, int newRanks,
                                       std::size_t totalElements,
                                       std::size_t blockElements,
                                       double bytesPerElement)
    : n_(oldRanks), m_(newRanks), bytesPerElement_(bytesPerElement) {
  GRADS_REQUIRE(oldRanks > 0 && newRanks > 0,
                "RedistributionPlan: rank counts must be positive");
  GRADS_REQUIRE(blockElements > 0, "RedistributionPlan: zero block size");
  GRADS_REQUIRE(bytesPerElement > 0.0,
                "RedistributionPlan: bytes/element must be positive");
  volume_.assign(static_cast<std::size_t>(n_) * static_cast<std::size_t>(m_),
                 0.0);

  const std::size_t fullBlocks = totalElements / blockElements;
  const std::size_t tailElements = totalElements % blockElements;

  // One period of the ownership pattern: lcm(N, M) blocks.
  const auto period = static_cast<std::size_t>(
      std::lcm(static_cast<long long>(n_), static_cast<long long>(m_)));
  std::vector<double> periodCount(volume_.size(), 0.0);
  for (std::size_t j = 0; j < period; ++j) {
    const auto from = static_cast<int>(j % static_cast<std::size_t>(n_));
    const auto to = static_cast<int>(j % static_cast<std::size_t>(m_));
    periodCount[static_cast<std::size_t>(from) *
                    static_cast<std::size_t>(m_) +
                static_cast<std::size_t>(to)] += 1.0;
  }
  const std::size_t periods = fullBlocks / period;
  for (std::size_t i = 0; i < volume_.size(); ++i) {
    volume_[i] = periodCount[i] * static_cast<double>(periods) *
                 static_cast<double>(blockElements);
  }
  // Remainder blocks, then the final partial block.
  for (std::size_t j = periods * period; j < fullBlocks; ++j) {
    const auto from = static_cast<int>(j % static_cast<std::size_t>(n_));
    const auto to = static_cast<int>(j % static_cast<std::size_t>(m_));
    volume_[static_cast<std::size_t>(from) * static_cast<std::size_t>(m_) +
            static_cast<std::size_t>(to)] +=
        static_cast<double>(blockElements);
  }
  if (tailElements > 0) {
    const std::size_t j = fullBlocks;
    const auto from = static_cast<int>(j % static_cast<std::size_t>(n_));
    const auto to = static_cast<int>(j % static_cast<std::size_t>(m_));
    volume_[static_cast<std::size_t>(from) * static_cast<std::size_t>(m_) +
            static_cast<std::size_t>(to)] += static_cast<double>(tailElements);
  }
}

double RedistributionPlan::bytes(int from, int to) const {
  GRADS_REQUIRE(from >= 0 && from < n_ && to >= 0 && to < m_,
                "RedistributionPlan::bytes: rank out of range");
  return volume_[static_cast<std::size_t>(from) * static_cast<std::size_t>(m_) +
                 static_cast<std::size_t>(to)] *
         bytesPerElement_;
}

double RedistributionPlan::bytesInto(int to) const {
  double total = 0.0;
  for (int from = 0; from < n_; ++from) total += bytes(from, to);
  return total;
}

double RedistributionPlan::bytesFrom(int from) const {
  double total = 0.0;
  for (int to = 0; to < m_; ++to) total += bytes(from, to);
  return total;
}

double RedistributionPlan::residentBytes() const {
  double total = 0.0;
  for (int r = 0; r < std::min(n_, m_); ++r) total += bytes(r, r);
  return total;
}

double RedistributionPlan::totalBytes() const {
  double total = 0.0;
  for (int from = 0; from < n_; ++from) total += bytesFrom(from);
  return total;
}

}  // namespace grads::reschedule

#pragma once

#include <memory>
#include <string>

#include "reschedule/srs.hpp"
#include "services/ibp.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace grads::reschedule {

/// Background depot scrubber: a sim-scheduled daemon that periodically
/// walks an application's checkpoint manifests, verifies every slice copy
/// (existence, size, content digest) against the manifest, and re-replicates
/// a corrupt or missing copy from the surviving one. This is what turns the
/// replica from "luck" into a repair loop: without scrubbing, bit-rot eats
/// copies one by one until a restore finds none left.
///
/// Scrub ticks are daemon events (they never keep the simulation alive);
/// an actual repair pays full IBP cost (depot-to-depot transfer + disk) in
/// a spawned coroutine. Only manifests whose two-phase publish completed
/// are walked — an unpublished generation is garbage, not a repair target.
///
/// The scrubber's state is shared with any in-flight scan coroutine, so the
/// scrubber object itself may be destroyed (e.g. with the application
/// manager's frame) while a final scan drains.
class DepotScrubber {
 public:
  struct Stats {
    int scans = 0;            ///< completed scan passes
    int slicesChecked = 0;    ///< slice copies examined across all scans
    int corruptFound = 0;     ///< copies present but failing verification
    int missingFound = 0;     ///< recorded copies absent from the depot
    int repaired = 0;         ///< copies rewritten from the surviving copy
    int unrepairable = 0;     ///< slices with no good copy left (per scan)
    int deferred = 0;         ///< repairs skipped because a depot was dark
  };

  DepotScrubber(sim::Engine& engine, services::Ibp& ibp, const Rss& rss);
  ~DepotScrubber();
  DepotScrubber(const DepotScrubber&) = delete;
  DepotScrubber& operator=(const DepotScrubber&) = delete;

  /// Starts periodic scanning every `periodSec` simulated seconds. Arm-once
  /// guarded: calling start() on an already-running scrubber is a no-op that
  /// returns false (a second call would otherwise arm a *second* tick chain
  /// — the double-daemon bug the crash-restore protocol must not hit).
  bool start(double periodSec);
  /// True between start() and stop() — the tick chain is armed.
  bool started() const;
  /// Cancels the periodic tick (an in-flight scan finishes on its own).
  void stop();

  /// Carries scrub statistics across a control-plane restart: the resumed
  /// application's fresh scrubber adopts the pre-crash totals decoded from
  /// the snapshot so RunBreakdown keeps reporting cumulative repairs.
  void adoptStats(const Stats& stats);

  /// One full manifest walk + repairs; also usable directly (tests, or a
  /// final scrub before an important restore).
  sim::Task scanOnce();

  /// True while a scan coroutine is in flight. After stop(), owners of the
  /// Rss/Ibp this scrubber walks should drain (await) until this clears
  /// before tearing those down.
  bool scanning() const;

  const Stats& stats() const;

  /// Shared between the scrubber handle and in-flight scan coroutines
  /// (opaque; defined in the .cpp).
  struct State;

 private:
  std::shared_ptr<State> state_;
};

}  // namespace grads::reschedule

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "grid/grid.hpp"
#include "sim/engine.hpp"

namespace grads::reschedule {

/// What a journaled rescheduling action does to the application's mapping.
enum class ActionKind {
  kMigrate,  ///< stop/migrate/restart through the application manager
  kSwap,     ///< single-rank process swap through the SwapManager
  kPreempt,  ///< checkpoint-and-park a victim for the metascheduler
};

/// Transaction state machine of one rescheduling action:
///
///   kPrepared ──► kCommitting ──► kCommitted
///       │              │
///       └──────────────┴────────► kRolledBack
///
/// Prepare covers everything reversible (decision taken, stop requested,
/// checkpoint written, target staged); commit is the irreversible handover
/// (restore on the target / data moved to the new node); finalize closes the
/// record. A fault in any phase before the commit point resolves the action
/// as kRolledBack and the application resumes on its prior mapping.
enum class ActionState { kPrepared, kCommitting, kCommitted, kRolledBack };

const char* actionKindName(ActionKind kind);
const char* actionStateName(ActionState state);

/// One journaled action. `prior` is the pre-action mapping — the rollback
/// target; `target` the intended post-action mapping (filled in when the
/// commit-phase selection fixes it, for migrations).
struct ActionRecord {
  int id = 0;
  std::string app;
  ActionKind kind = ActionKind::kMigrate;
  ActionState state = ActionState::kPrepared;
  double openedAt = 0.0;
  double resolvedAt = -1.0;  ///< < 0 while the action is still in flight
  std::vector<grid::NodeId> prior;
  std::vector<grid::NodeId> target;
  std::string note;  ///< commit/rollback reason, for post-mortems
  /// A pinned target was fixed by a validated decision (what-if fork verdict
  /// or a sandbox candidate injection): the relaunch honors `target` verbatim
  /// instead of re-running mapper selection, as long as it stays reachable.
  bool pinned = false;
};

/// Persisted journal of rescheduling actions. "Persisted" in the simulation
/// means the journal outlives any single incarnation and any single manager
/// loop: a restarted application manager scans it (openAction) to learn it
/// died holding an unresolved migration and must either commit or roll back
/// before choosing fresh resources — the recovery scan of a write-ahead log.
///
/// Invariant: at most one open action per application (enforced at open()),
/// so a rolled-back migration and a committing one can never both point at
/// live application state — the "doubly mapped" failure mode is structurally
/// excluded.
class ActionJournal : public core::Snapshottable {
 public:
  explicit ActionJournal(sim::Engine& engine);

  /// Snapshot participation: the full record log round-trips; the derived
  /// indexes (open-action map, in-flight count, counters, cooldown anchors)
  /// are rebuilt from it on decode, so the image cannot carry an index that
  /// disagrees with its own log.
  const char* snapshotSection() const override { return "reschedule.journal"; }
  std::uint32_t snapshotVersion() const override { return 2; }  // + pinned
  void encodeState(core::SnapshotWriter& w) const override;
  void decodeState(core::SnapshotReader& r) override;

  /// Crash-recovery scan (presumed abort): every unresolved action — still
  /// kPrepared, or caught mid-kCommitting by the crash — is resolved as
  /// kRolledBack with `note`; the application relaunches from its journaled
  /// checkpoints on whatever mapping the fresh selection picks. Returns the
  /// number of actions resolved. Idempotent: a second scan over an
  /// already-recovered journal finds nothing unresolved and is a no-op (it
  /// must never double-resolve — resolve() rejects resolved records).
  int recover(const std::string& note);
  /// Recovery scans that actually resolved at least one action.
  int recoveries() const { return recoveries_; }

  /// Opens a record in kPrepared. Throws if the app already has one open.
  /// `pinned` marks `target` as a validated-decision pin (see ActionRecord);
  /// `note` seeds the audit note at prepare time (e.g. the what-if decision
  /// summary) and survives a commit that passes no note of its own.
  int open(const std::string& app, ActionKind kind,
           std::vector<grid::NodeId> prior,
           std::vector<grid::NodeId> target = {}, bool pinned = false,
           const std::string& note = "");

  /// Updates the intended post-action mapping (commit-phase selection may
  /// revise the prepare-time candidate once fresh NWS data is in).
  void setTarget(int id, std::vector<grid::NodeId> target);

  /// kPrepared -> kCommitting: the irreversible phase begins.
  void beginCommit(int id);
  /// Resolves the action as committed (finalize).
  void commit(int id, const std::string& note = "");
  /// Resolves the action as rolled back; the app resumes on record.prior.
  void rollback(int id, const std::string& note);

  const ActionRecord& record(int id) const;
  const std::vector<ActionRecord>& records() const { return records_; }

  /// The app's unresolved action, if any (the recovery scan). Null when the
  /// app has no action in flight.
  const ActionRecord* openAction(const std::string& app) const;

  /// Unresolved actions across all apps (the governor's global
  /// concurrent-action limit reads this).
  int inFlight() const { return inFlight_; }

  /// Virtual time the app's most recent action resolved (committed *or*
  /// rolled back); negative if it never had one. Cooldown anchor.
  double lastResolvedAt(const std::string& app) const;

  int opened() const { return opened_; }
  int committed() const { return committed_; }
  int rolledBack() const { return rolledBack_; }
  int committedFor(const std::string& app) const;
  int rolledBackFor(const std::string& app) const;

  /// Called on every resolve (commit or rollback) with the final record —
  /// fault-campaign drivers watch this to time mid-action injections.
  void setOnResolve(std::function<void(const ActionRecord&)> fn) {
    onResolve_ = std::move(fn);
  }

  /// Called on *every* state transition (open, beginCommit, commit,
  /// rollback) with the record as it stands after the transition. The
  /// crash-point sweep uses this to kill the control plane at each journal
  /// transition; unlike setOnResolve it also sees opens and commit-begins.
  void setOnTransition(std::function<void(const ActionRecord&)> fn) {
    onTransition_ = std::move(fn);
  }

 private:
  ActionRecord& mutableRecord(int id);
  void resolve(ActionRecord& r, ActionState state, const std::string& note);

  sim::Engine* engine_;  // grads: transient(wiring, re-bound at construction)
  std::vector<ActionRecord> records_;
  /// app -> open record id
  std::map<std::string, int> openByApp_;  // grads: transient(derived index, rebuilt from records_ on decode)
  std::map<std::string, double> lastResolved_;  // grads: transient(derived index, rebuilt from records_ on decode)
  int inFlight_ = 0;    // grads: transient(derived counter, rebuilt from records_ on decode)
  int opened_ = 0;      // grads: transient(derived counter, rebuilt from records_ on decode)
  int committed_ = 0;   // grads: transient(derived counter, rebuilt from records_ on decode)
  int rolledBack_ = 0;  // grads: transient(derived counter, rebuilt from records_ on decode)
  int recoveries_ = 0;
  std::function<void(const ActionRecord&)> onResolve_;     // grads: transient(observer callback, re-registered by the owner)
  std::function<void(const ActionRecord&)> onTransition_;  // grads: transient(observer callback, re-registered by the owner)
};

}  // namespace grads::reschedule

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "grid/grid.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace grads::reschedule::whatif {

/// A candidate action the fork driver can validate in a sandboxed future.
enum class CandidateKind {
  kSuppress,  ///< stay on the current mapping (validated decline)
  kMigrate,   ///< stop/migrate/restart to `target`
  kSwap,      ///< single-rank process swap (recorded; no QR-path synthesis)
};

const char* candidateKindName(CandidateKind kind);

struct Candidate {
  CandidateKind kind = CandidateKind::kSuppress;
  std::vector<grid::NodeId> target;  ///< kMigrate / kSwap destination
  std::string label;                 ///< "model-target", "alternate", ...
};

/// Seeded pessimistic fault future a candidate is additionally scored
/// under. The driver draws kind/seed/severity; the sandbox harness maps the
/// kind onto a concrete perturbation of the restored snapshot (an extra load
/// trace on the candidate's destination nodes, a chaos link degrade, a depot
/// outage). Severity units are kind-specific: competitor load weight for
/// kTargetSlowdown, surviving bandwidth fraction for kLinkDegrade, outage
/// seconds for kDepotOutage.
enum class PerturbationKind {
  kNone,            ///< the nominal (point-forecast) future
  kTargetSlowdown,
  kLinkDegrade,
  kDepotOutage,
};

const char* perturbationKindName(PerturbationKind kind);

struct Perturbation {
  PerturbationKind kind = PerturbationKind::kNone;
  std::uint64_t seed = 0;
  double severity = 0.0;
};

/// One sandboxed future to run: restore `image` onto a fresh control plane,
/// inject `candidate` through the journal prepare path (pinned target),
/// apply `perturbation`, and advance `horizonSec` of virtual time (or until
/// `maxEvents` sandbox events, whichever comes first).
struct ForkRequest {
  const std::vector<std::uint8_t>* image = nullptr;
  std::string app;
  std::vector<grid::NodeId> current;
  Candidate candidate;
  Perturbation perturbation;
  double horizonSec = 0.0;
  std::uint64_t maxEvents = 0;  ///< 0 = no event cap
};

/// Realized outcome of one fork, as observed by the sandbox harness.
struct ForkOutcome {
  bool aborted = false;    ///< sandbox failed or tripped its event budget
  bool completed = false;  ///< the app finished inside the horizon
  double makespanSec = 0.0;       ///< virtual seconds spent (horizon if open)
  double progressSec = 0.0;       ///< pure app-execution seconds achieved
  double checkpointCostSec = 0.0; ///< checkpoint write + restore spans
  int violationRecurrences = 0;   ///< confirmed violations after injection
  int migrateBacks = 0;           ///< oscillations realized inside the fork
  std::uint64_t events = 0;
  std::uint64_t forkDigest = 0;   ///< pop-stream digest (replay oracle)
};

using SandboxRunner = std::function<ForkOutcome(const ForkRequest&)>;
using SnapshotSource = std::function<std::vector<std::uint8_t>()>;

/// Hard speculation budget. All three knobs are virtual / deterministic —
/// grads-lint R1 bans wall-clock in src, so the wall-clock timeout of the
/// classic what-if literature is stood in for by the per-fork event cap
/// (events are the unit the engine actually spends).
struct ForkBudget {
  int maxForks = 12;          ///< per decision, across candidates x futures
  double horizonSec = 240.0;  ///< virtual look-ahead per fork
  std::uint64_t maxEventsPerFork = 400000;
  int pessimisticFutures = 2; ///< per candidate, beyond the nominal future
};

struct DriverOptions {
  ForkBudget budget;
  /// Shadow mode: speculate and record the verdict, but always commit the
  /// model-only decision and never touch mistrust. The parent trajectory is
  /// then bit-identical to a driver-less run — the zero-live-state-
  /// divergence oracle compares exactly this.
  bool shadowOnly = false;
  double slowdownSeverityMin = 1.5;
  double slowdownSeverityMax = 3.0;
  double degradeScaleMin = 0.15;
  double degradeScaleMax = 0.5;
  double depotOutageSecMin = 120.0;
  double depotOutageSecMax = 300.0;
  /// Harm weights for scoring a realized future.
  double migrateBackWeight = 3.0;
  double abortPenalty = 1000.0;
  /// Mistrust ledger: bump per realized prediction divergence, multiplicative
  /// decay per prediction that held, and the governor-cooldown extension per
  /// unit of mistrust on the app's last chosen nodes.
  double mistrustBump = 1.0;
  double mistrustDecay = 0.5;
  double mistrustCooldownSec = 120.0;
  std::uint64_t seed = 0x5eedf0c5ULL;
};

/// Per-future realized score inside one decision record.
struct FutureScore {
  Perturbation perturbation;
  ForkOutcome outcome;
  double harm = 0.0;
};

/// Per-candidate aggregate: minimax — the candidate owns its *worst* future.
struct CandidateScore {
  Candidate candidate;
  std::vector<FutureScore> futures;
  double worstHarm = 0.0;
  double worstMakespanSec = 0.0;
  double totalProgressSec = 0.0;
  double totalCheckpointCostSec = 0.0;
};

/// The full audit record of one decision point: candidates, per-future
/// outcomes, the chosen arm, and (when speculation degraded) why. Snapshot-
/// persisted for replay; the chosen arm's summary also lands in the action
/// journal note of the pinned record it commits.
struct DecisionRecord {
  int id = 0;
  std::string app;
  double at = 0.0;
  std::size_t phase = 0;
  bool modelWantedMigrate = false;
  std::vector<grid::NodeId> modelTarget;
  std::vector<CandidateScore> scores;
  int chosen = -1;             ///< index into scores; -1 = fallback
  std::string fallbackReason;  ///< empty when the fork verdict committed
  bool shadow = false;
  double predictedWorstHarm = 0.0;
  bool settled = false;   ///< realized-outcome tracking resolved
  bool diverged = false;  ///< realized outcome defied the prediction
};

struct DriverStats {
  int decisions = 0;
  int forksRun = 0;
  int fallbacks = 0;       ///< degraded to the model-only decision
  int overrides = 0;       ///< fork verdict contradicted the model
  int suppressChosen = 0;  ///< validated-suppress verdicts
  int divergences = 0;     ///< realized-vs-predicted mismatches
};

/// What-if fork driver (ROADMAP "What-if forked rescheduling"). At each
/// governor-approved violation the rescheduler hands it the model decision;
/// the driver snapshots the live control plane, replays each candidate
/// action in sandboxed futures (nominal + a pessimistic chaos ensemble) via
/// the harness-supplied SandboxRunner, scores realized outcomes minimax with
/// deterministic tie-breaks, and returns the arm to commit. A blown budget
/// or missing runner degrades gracefully to the model-only decision.
///
/// Purity contract (the zero-live-state-divergence invariant): decide()
/// never schedules parent-engine events, never consumes any parent RNG
/// stream, and mutates nothing outside this object — forks run on their own
/// engines inside the call. With shadowOnly the parent replay digest is
/// bit-identical to a driver-less run.
class ForkDriver : public core::Snapshottable {
 public:
  ForkDriver(sim::Engine& engine, DriverOptions options);

  void setRunner(SandboxRunner runner) { runner_ = std::move(runner); }
  void setSnapshotSource(SnapshotSource source) { source_ = std::move(source); }
  bool armed() const { return static_cast<bool>(runner_) &&
                              static_cast<bool>(source_); }

  struct DecisionInput {
    std::string app;
    std::vector<grid::NodeId> current;
    std::size_t phase = 0;
    bool modelWantedMigrate = false;
    std::vector<grid::NodeId> modelTarget;
    std::vector<grid::NodeId> alternateTarget;  ///< candidate B; may be empty
  };
  struct Decision {
    CandidateKind kind = CandidateKind::kSuppress;
    std::vector<grid::NodeId> target;
    bool fromForks = false;  ///< false = fall through to the model decision
    int recordId = 0;
    std::string summary;  ///< journal note for the committed pinned action
  };
  Decision decide(const DecisionInput& in);

  /// Realized-outcome feedback: called by the rescheduler on every confirmed
  /// (post-governor) violation. Settles pending predictions — a violation
  /// inside a committed decision's horizon that predicted zero harm is a
  /// divergence and bumps per-node mistrust on the chosen arm's nodes;
  /// predictions that expire clean decay their nodes' mistrust.
  void noteViolation(const std::string& app, double now);

  /// Extra governor cooldown for `app`, derived from the mistrust of the
  /// nodes its last committed fork decision chose. Wire through
  /// ViolationGovernor::setCooldownExtra.
  double cooldownExtraFor(const std::string& app) const;
  double mistrustOf(grid::NodeId node) const;

  /// Fired at each speculation boundary ("decision", "fork-start",
  /// "fork-done", "verdict") — the crash-point sweep kills the control plane
  /// here to prove mid-fork crashes leave the live mapping untouched.
  void setOnFork(std::function<void(const char*)> fn) {
    onFork_ = std::move(fn);
  }

  const std::vector<DecisionRecord>& decisions() const { return log_; }
  const DriverStats& stats() const { return stats_; }
  const DriverOptions& options() const { return opts_; }

  /// Harm of one realized future: violation recurrences, weighted
  /// migrate-backs, and a large penalty for an aborted sandbox. Exposed so
  /// benches score post-hoc with the identical function.
  double harmOf(const ForkOutcome& outcome) const;

  /// Snapshot participation: the decision log (with nested scores), the
  /// mistrust ledger, pending predictions, per-app last-chosen nodes, stats,
  /// and the driver's own Rng stream all round-trip, so a restored control
  /// plane re-speculates bit-identically. The runner/source/hook callbacks
  /// are wiring, re-supplied at construction like every other component.
  const char* snapshotSection() const override { return "reschedule.whatif"; }
  void encodeState(core::SnapshotWriter& w) const override;
  void decodeState(core::SnapshotReader& r) override;

 private:
  struct Pending {
    std::string app;
    int recordId = 0;
    double expiresAt = 0.0;
    double predictedHarm = 0.0;
    std::vector<grid::NodeId> nodes;
  };

  Decision fallback(DecisionRecord rec, const DecisionInput& in,
                    const std::string& why);
  std::vector<Candidate> buildCandidates(const DecisionInput& in) const;
  std::vector<Perturbation> drawFutures();
  void settle(const std::string& app, double now, bool violated);

  sim::Engine* engine_;  // grads: transient(wiring, re-bound at construction)
  DriverOptions opts_;   // grads: transient(construction-time config)
  Rng rng_;
  SandboxRunner runner_;   // grads: transient(fork sandbox machinery, stateless between decisions)
  SnapshotSource source_;  // grads: transient(snapshot-source callback, re-installed by the driver)
  std::function<void(const char*)> onFork_;  // grads: transient(observer callback, re-registered by the driver)
  std::vector<DecisionRecord> log_;
  std::map<grid::NodeId, double> mistrust_;
  std::vector<Pending> pending_;
  std::map<std::string, std::vector<grid::NodeId>> lastChosen_;
  DriverStats stats_;
};

}  // namespace grads::reschedule::whatif

#include "reschedule/whatif/fork_driver.hpp"

#include <algorithm>
#include <iterator>

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::reschedule::whatif {

const char* candidateKindName(CandidateKind kind) {
  switch (kind) {
    case CandidateKind::kSuppress: return "suppress";
    case CandidateKind::kMigrate: return "migrate";
    case CandidateKind::kSwap: return "swap";
  }
  return "?";
}

const char* perturbationKindName(PerturbationKind kind) {
  switch (kind) {
    case PerturbationKind::kNone: return "nominal";
    case PerturbationKind::kTargetSlowdown: return "target-slowdown";
    case PerturbationKind::kLinkDegrade: return "link-degrade";
    case PerturbationKind::kDepotOutage: return "depot-outage";
  }
  return "?";
}

ForkDriver::ForkDriver(sim::Engine& engine, DriverOptions options)
    : engine_(&engine), opts_(options), rng_(options.seed) {
  GRADS_REQUIRE(opts_.budget.maxForks >= 0,
                "ForkDriver: negative fork budget");
  GRADS_REQUIRE(opts_.budget.horizonSec > 0.0,
                "ForkDriver: non-positive horizon");
  GRADS_REQUIRE(opts_.budget.pessimisticFutures >= 0,
                "ForkDriver: negative future count");
  GRADS_REQUIRE(opts_.mistrustDecay >= 0.0 && opts_.mistrustDecay <= 1.0,
                "ForkDriver: mistrust decay must be in [0,1]");
}

double ForkDriver::harmOf(const ForkOutcome& o) const {
  double harm = static_cast<double>(o.violationRecurrences) +
                opts_.migrateBackWeight * static_cast<double>(o.migrateBacks);
  if (o.aborted) harm += opts_.abortPenalty;
  return harm;
}

std::vector<Candidate> ForkDriver::buildCandidates(
    const DecisionInput& in) const {
  std::vector<Candidate> cands;
  cands.push_back({CandidateKind::kSuppress, {}, "suppress"});
  if (in.modelWantedMigrate && !in.modelTarget.empty() &&
      in.modelTarget != in.current) {
    cands.push_back({CandidateKind::kMigrate, in.modelTarget, "model-target"});
  }
  if (!in.alternateTarget.empty() && in.alternateTarget != in.current &&
      in.alternateTarget != in.modelTarget) {
    cands.push_back({CandidateKind::kMigrate, in.alternateTarget, "alternate"});
  }
  return cands;
}

std::vector<Perturbation> ForkDriver::drawFutures() {
  std::vector<Perturbation> futures;
  futures.push_back({PerturbationKind::kNone, 0, 0.0});
  constexpr PerturbationKind kKinds[] = {PerturbationKind::kTargetSlowdown,
                                         PerturbationKind::kLinkDegrade,
                                         PerturbationKind::kDepotOutage};
  for (int i = 0; i < opts_.budget.pessimisticFutures; ++i) {
    Perturbation p;
    p.kind = kKinds[static_cast<std::size_t>(i) % std::size(kKinds)];
    p.seed = rng_.next();
    switch (p.kind) {
      case PerturbationKind::kTargetSlowdown:
        p.severity =
            rng_.uniform(opts_.slowdownSeverityMin, opts_.slowdownSeverityMax);
        break;
      case PerturbationKind::kLinkDegrade:
        p.severity = rng_.uniform(opts_.degradeScaleMin, opts_.degradeScaleMax);
        break;
      case PerturbationKind::kDepotOutage:
        p.severity =
            rng_.uniform(opts_.depotOutageSecMin, opts_.depotOutageSecMax);
        break;
      case PerturbationKind::kNone: break;
    }
    futures.push_back(p);
  }
  return futures;
}

ForkDriver::Decision ForkDriver::fallback(DecisionRecord rec,
                                          const DecisionInput& in,
                                          const std::string& why) {
  ++stats_.fallbacks;
  rec.chosen = -1;
  rec.fallbackReason = why;
  log_.push_back(std::move(rec));
  Decision d;
  d.fromForks = false;
  d.recordId = log_.back().id;
  d.kind = in.modelWantedMigrate ? CandidateKind::kMigrate
                                 : CandidateKind::kSuppress;
  d.target = in.modelTarget;
  d.summary = "whatif fallback: " + why;
  GRADS_INFO("whatif") << log::appAt(in.app, engine_->now())
                       << "decision #" << d.recordId
                       << " degraded to model-only (" << why << ")";
  return d;
}

ForkDriver::Decision ForkDriver::decide(const DecisionInput& in) {
  ++stats_.decisions;
  // Settle anything already past its horizon before deciding again, so the
  // mistrust this decision's cooldown extension reads is current.
  settle(in.app, engine_->now(), false);

  DecisionRecord rec;
  rec.id = static_cast<int>(log_.size()) + 1;
  rec.app = in.app;
  rec.at = engine_->now();
  rec.phase = in.phase;
  rec.modelWantedMigrate = in.modelWantedMigrate;
  rec.modelTarget = in.modelTarget;
  rec.shadow = opts_.shadowOnly;

  if (!armed()) return fallback(std::move(rec), in, "no sandbox runner");
  if (onFork_) onFork_("decision");

  std::vector<Candidate> cands = buildCandidates(in);
  if (cands.size() < 2) {
    return fallback(std::move(rec), in, "no competing candidates");
  }
  // Budget trim degrades gracefully: pessimistic futures are shed first
  // (keeping the nominal future for every candidate), then speculation is
  // abandoned entirely.
  std::vector<Perturbation> futures = drawFutures();
  while (static_cast<int>(cands.size() * futures.size()) >
             opts_.budget.maxForks &&
         futures.size() > 1) {
    futures.pop_back();
  }
  if (static_cast<int>(cands.size() * futures.size()) >
      opts_.budget.maxForks) {
    return fallback(std::move(rec), in, "fork budget exhausted");
  }

  const std::vector<std::uint8_t> image = source_();
  if (image.empty()) return fallback(std::move(rec), in, "empty snapshot");

  for (const Candidate& cand : cands) {
    CandidateScore cs;
    cs.candidate = cand;
    for (const Perturbation& fut : futures) {
      if (onFork_) onFork_("fork-start");
      ForkRequest rq;
      rq.image = &image;
      rq.app = in.app;
      rq.current = in.current;
      rq.candidate = cand;
      rq.perturbation = fut;
      rq.horizonSec = opts_.budget.horizonSec;
      rq.maxEvents = opts_.budget.maxEventsPerFork;
      FutureScore fs;
      fs.perturbation = fut;
      fs.outcome = runner_(rq);
      fs.harm = harmOf(fs.outcome);
      ++stats_.forksRun;
      if (onFork_) onFork_("fork-done");
      cs.worstHarm = std::max(cs.worstHarm, fs.harm);
      cs.worstMakespanSec =
          std::max(cs.worstMakespanSec, fs.outcome.makespanSec);
      cs.totalProgressSec += fs.outcome.progressSec;
      cs.totalCheckpointCostSec += fs.outcome.checkpointCostSec;
      cs.futures.push_back(std::move(fs));
    }
    rec.scores.push_back(std::move(cs));
  }

  // Minimax with deterministic tie-breaks: least worst-case harm, then least
  // worst-case makespan, then most realized progress, then least checkpoint
  // traffic, then candidate order (suppress first — the conservative arm
  // wins exact ties).
  int best = 0;
  for (int i = 1; i < static_cast<int>(rec.scores.size()); ++i) {
    const CandidateScore& a = rec.scores[static_cast<std::size_t>(i)];
    const CandidateScore& b = rec.scores[static_cast<std::size_t>(best)];
    if (a.worstHarm != b.worstHarm) {
      if (a.worstHarm < b.worstHarm) best = i;
    } else if (a.worstMakespanSec != b.worstMakespanSec) {
      if (a.worstMakespanSec < b.worstMakespanSec) best = i;
    } else if (a.totalProgressSec != b.totalProgressSec) {
      if (a.totalProgressSec > b.totalProgressSec) best = i;
    } else if (a.totalCheckpointCostSec < b.totalCheckpointCostSec) {
      best = i;
    }
  }
  rec.chosen = best;
  rec.predictedWorstHarm =
      rec.scores[static_cast<std::size_t>(best)].worstHarm;
  const Candidate chosen = rec.scores[static_cast<std::size_t>(best)].candidate;
  log_.push_back(std::move(rec));
  if (onFork_) onFork_("verdict");

  const bool overrides =
      (chosen.kind == CandidateKind::kMigrate) != in.modelWantedMigrate ||
      (chosen.kind == CandidateKind::kMigrate &&
       chosen.target != in.modelTarget);
  if (overrides) ++stats_.overrides;
  if (chosen.kind == CandidateKind::kSuppress) ++stats_.suppressChosen;
  GRADS_INFO("whatif") << log::appAt(in.app, engine_->now()) << "decision #"
                       << log_.back().id << ": chose "
                       << candidateKindName(chosen.kind) << " ("
                       << chosen.label << "), worst-case harm "
                       << log_.back().predictedWorstHarm << " across "
                       << stats_.forksRun << " cumulative forks"
                       << (opts_.shadowOnly ? " [shadow]" : "")
                       << (overrides ? " [overrides model]" : "");

  Decision d;
  d.recordId = log_.back().id;
  if (opts_.shadowOnly) {
    // Shadow: record the verdict, commit the model decision, leave the
    // mistrust ledger untouched — the parent trajectory must stay
    // bit-identical to a driver-less run.
    d.fromForks = false;
    d.kind = in.modelWantedMigrate ? CandidateKind::kMigrate
                                   : CandidateKind::kSuppress;
    d.target = in.modelTarget;
    d.summary = "whatif shadow verdict: " + chosen.label;
    return d;
  }
  d.fromForks = true;
  d.kind = chosen.kind;
  d.target = chosen.target;
  d.summary = "whatif #" + std::to_string(d.recordId) + ": " + chosen.label +
              " worst-harm=" + std::to_string(log_.back().predictedWorstHarm);
  Pending p;
  p.app = in.app;
  p.recordId = d.recordId;
  p.expiresAt = engine_->now() + opts_.budget.horizonSec;
  p.predictedHarm = log_.back().predictedWorstHarm;
  p.nodes = chosen.kind == CandidateKind::kMigrate ? chosen.target : in.current;
  lastChosen_[in.app] = p.nodes;
  pending_.push_back(std::move(p));
  return d;
}

void ForkDriver::settle(const std::string& app, double now, bool violated) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->app != app) {
      ++it;
      continue;
    }
    if (violated && now <= it->expiresAt) {
      // A confirmed violation landed inside the prediction window. If the
      // fork ensemble promised a clean future, reality diverged: distrust
      // the nodes the chosen arm bet on.
      if (it->predictedHarm <= 0.0) {
        ++stats_.divergences;
        if (it->recordId >= 1 &&
            it->recordId <= static_cast<int>(log_.size())) {
          log_[static_cast<std::size_t>(it->recordId) - 1].diverged = true;
        }
        for (const grid::NodeId n : it->nodes) {
          mistrust_[n] += opts_.mistrustBump;
        }
        GRADS_INFO("whatif")
            << log::appAt(app, now) << "prediction #" << it->recordId
            << " diverged (violation inside horizon); mistrust bumped on "
            << it->nodes.size() << " node(s)";
      }
      if (it->recordId >= 1 && it->recordId <= static_cast<int>(log_.size())) {
        log_[static_cast<std::size_t>(it->recordId) - 1].settled = true;
      }
      it = pending_.erase(it);
      continue;
    }
    if (now > it->expiresAt) {
      // The window closed clean: the prediction held, so the chosen nodes
      // earn trust back.
      for (const grid::NodeId n : it->nodes) {
        auto mit = mistrust_.find(n);
        if (mit != mistrust_.end()) {
          mit->second *= opts_.mistrustDecay;
          if (mit->second < 1e-9) mistrust_.erase(mit);
        }
      }
      if (it->recordId >= 1 && it->recordId <= static_cast<int>(log_.size())) {
        log_[static_cast<std::size_t>(it->recordId) - 1].settled = true;
      }
      it = pending_.erase(it);
      continue;
    }
    ++it;
  }
}

void ForkDriver::noteViolation(const std::string& app, double now) {
  settle(app, now, true);
}

double ForkDriver::mistrustOf(grid::NodeId node) const {
  const auto it = mistrust_.find(node);
  return it == mistrust_.end() ? 0.0 : it->second;
}

double ForkDriver::cooldownExtraFor(const std::string& app) const {
  const auto it = lastChosen_.find(app);
  if (it == lastChosen_.end() || it->second.empty()) return 0.0;
  double sum = 0.0;
  for (const grid::NodeId n : it->second) sum += mistrustOf(n);
  const double avg = sum / static_cast<double>(it->second.size());
  return opts_.mistrustCooldownSec * avg;
}

namespace {

void encodeNodes(core::SnapshotWriter& w, const std::vector<grid::NodeId>& v) {
  w.putU64(v.size());
  for (const grid::NodeId n : v) w.putU64(n);
}

std::vector<grid::NodeId> decodeNodes(core::SnapshotReader& r) {
  std::vector<grid::NodeId> v;
  const std::uint64_t n = r.getU64();
  for (std::uint64_t i = 0; i < n; ++i) {
    v.push_back(static_cast<grid::NodeId>(r.getU64()));
  }
  return v;
}

void encodeOutcome(core::SnapshotWriter& w, const ForkOutcome& o) {
  w.putBool(o.aborted);
  w.putBool(o.completed);
  w.putF64(o.makespanSec);
  w.putF64(o.progressSec);
  w.putF64(o.checkpointCostSec);
  w.putI64(o.violationRecurrences);
  w.putI64(o.migrateBacks);
  w.putU64(o.events);
  w.putU64(o.forkDigest);
}

ForkOutcome decodeOutcome(core::SnapshotReader& r) {
  ForkOutcome o;
  o.aborted = r.getBool();
  o.completed = r.getBool();
  o.makespanSec = r.getF64();
  o.progressSec = r.getF64();
  o.checkpointCostSec = r.getF64();
  o.violationRecurrences = static_cast<int>(r.getI64());
  o.migrateBacks = static_cast<int>(r.getI64());
  o.events = r.getU64();
  o.forkDigest = r.getU64();
  return o;
}

}  // namespace

void ForkDriver::encodeState(core::SnapshotWriter& w) const {
  w.putU64(log_.size());
  for (const DecisionRecord& rec : log_) {
    w.putStr(rec.app);
    w.putF64(rec.at);
    w.putU64(rec.phase);
    w.putBool(rec.modelWantedMigrate);
    encodeNodes(w, rec.modelTarget);
    w.putU64(rec.scores.size());
    for (const CandidateScore& cs : rec.scores) {
      w.putU64(static_cast<std::uint64_t>(cs.candidate.kind));
      encodeNodes(w, cs.candidate.target);
      w.putStr(cs.candidate.label);
      w.putU64(cs.futures.size());
      for (const FutureScore& fs : cs.futures) {
        w.putU64(static_cast<std::uint64_t>(fs.perturbation.kind));
        w.putU64(fs.perturbation.seed);
        w.putF64(fs.perturbation.severity);
        encodeOutcome(w, fs.outcome);
        w.putF64(fs.harm);
      }
      w.putF64(cs.worstHarm);
      w.putF64(cs.worstMakespanSec);
      w.putF64(cs.totalProgressSec);
      w.putF64(cs.totalCheckpointCostSec);
    }
    w.putI64(rec.chosen);
    w.putStr(rec.fallbackReason);
    w.putBool(rec.shadow);
    w.putF64(rec.predictedWorstHarm);
    w.putBool(rec.settled);
    w.putBool(rec.diverged);
  }
  w.putU64(mistrust_.size());
  for (const auto& [node, value] : mistrust_) {
    w.putU64(node);
    w.putF64(value);
  }
  w.putU64(pending_.size());
  for (const Pending& p : pending_) {
    w.putStr(p.app);
    w.putI64(p.recordId);
    w.putF64(p.expiresAt);
    w.putF64(p.predictedHarm);
    encodeNodes(w, p.nodes);
  }
  w.putU64(lastChosen_.size());
  for (const auto& [app, nodes] : lastChosen_) {
    w.putStr(app);
    encodeNodes(w, nodes);
  }
  w.putI64(stats_.decisions);
  w.putI64(stats_.forksRun);
  w.putI64(stats_.fallbacks);
  w.putI64(stats_.overrides);
  w.putI64(stats_.suppressChosen);
  w.putI64(stats_.divergences);
  const RngState rs = rng_.state();
  w.putU64(rs.s[0]);
  w.putU64(rs.s[1]);
  w.putU64(rs.s[2]);
  w.putU64(rs.s[3]);
  w.putBool(rs.haveSpare);
  w.putF64(rs.spare);
}

void ForkDriver::decodeState(core::SnapshotReader& r) {
  log_.clear();
  const std::uint64_t nRecords = r.getU64();
  for (std::uint64_t i = 0; i < nRecords; ++i) {
    DecisionRecord rec;
    rec.id = static_cast<int>(i) + 1;
    rec.app = r.getStr();
    rec.at = r.getF64();
    rec.phase = static_cast<std::size_t>(r.getU64());
    rec.modelWantedMigrate = r.getBool();
    rec.modelTarget = decodeNodes(r);
    const std::uint64_t nScores = r.getU64();
    for (std::uint64_t j = 0; j < nScores; ++j) {
      CandidateScore cs;
      cs.candidate.kind = static_cast<CandidateKind>(r.getU64());
      cs.candidate.target = decodeNodes(r);
      cs.candidate.label = r.getStr();
      const std::uint64_t nFutures = r.getU64();
      for (std::uint64_t k = 0; k < nFutures; ++k) {
        FutureScore fs;
        fs.perturbation.kind = static_cast<PerturbationKind>(r.getU64());
        fs.perturbation.seed = r.getU64();
        fs.perturbation.severity = r.getF64();
        fs.outcome = decodeOutcome(r);
        fs.harm = r.getF64();
        cs.futures.push_back(std::move(fs));
      }
      cs.worstHarm = r.getF64();
      cs.worstMakespanSec = r.getF64();
      cs.totalProgressSec = r.getF64();
      cs.totalCheckpointCostSec = r.getF64();
      rec.scores.push_back(std::move(cs));
    }
    rec.chosen = static_cast<int>(r.getI64());
    rec.fallbackReason = r.getStr();
    rec.shadow = r.getBool();
    rec.predictedWorstHarm = r.getF64();
    rec.settled = r.getBool();
    rec.diverged = r.getBool();
    log_.push_back(std::move(rec));
  }
  mistrust_.clear();
  const std::uint64_t nMistrust = r.getU64();
  for (std::uint64_t i = 0; i < nMistrust; ++i) {
    const grid::NodeId node = static_cast<grid::NodeId>(r.getU64());
    mistrust_[node] = r.getF64();
  }
  pending_.clear();
  const std::uint64_t nPending = r.getU64();
  for (std::uint64_t i = 0; i < nPending; ++i) {
    Pending p;
    p.app = r.getStr();
    p.recordId = static_cast<int>(r.getI64());
    p.expiresAt = r.getF64();
    p.predictedHarm = r.getF64();
    p.nodes = decodeNodes(r);
    pending_.push_back(std::move(p));
  }
  lastChosen_.clear();
  const std::uint64_t nLast = r.getU64();
  for (std::uint64_t i = 0; i < nLast; ++i) {
    const std::string app = r.getStr();
    lastChosen_[app] = decodeNodes(r);
  }
  stats_.decisions = static_cast<int>(r.getI64());
  stats_.forksRun = static_cast<int>(r.getI64());
  stats_.fallbacks = static_cast<int>(r.getI64());
  stats_.overrides = static_cast<int>(r.getI64());
  stats_.suppressChosen = static_cast<int>(r.getI64());
  stats_.divergences = static_cast<int>(r.getI64());
  RngState rs;
  rs.s[0] = r.getU64();
  rs.s[1] = r.getU64();
  rs.s[2] = r.getU64();
  rs.s[3] = r.getU64();
  rs.haveSpare = r.getBool();
  rs.spare = r.getF64();
  rng_.setState(rs);
}

}  // namespace grads::reschedule::whatif

#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace grads::sim {

/// Move-only `void()` callable with a 48-byte small buffer.
///
/// The event engine runs millions of callbacks per simulated experiment;
/// `std::function` costs a heap allocation for anything beyond a couple of
/// captured words. Engine callbacks are overwhelmingly tiny — a coroutine
/// handle, a `this` pointer plus a value or two — so InlineFn stores them in
/// place and the hot path never touches the allocator. Callables larger than
/// the buffer (or without a noexcept move) fall back to a single heap node,
/// keeping the type universal.
class InlineFn {
 public:
  static constexpr std::size_t kInlineSize = 48;
  /// Buffer alignment is pointer-sized (not max_align_t) so an InlineFn is
  /// 56 bytes and an engine event node packs into one cache line. Callables
  /// demanding stricter alignment use the heap fallback.
  static constexpr std::size_t kInlineAlign = alignof(void*);

  InlineFn() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (fitsInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &inlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &heapOps<D>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(other.buf_, buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void operator()() { ops_->call(buf_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// Destroys the held callable (and releases its resources) early.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  /// True when the callable lives in the small buffer (exposed for tests).
  bool isInline() const noexcept {
    return ops_ != nullptr && ops_->inlineStorage;
  }

 private:
  struct Ops {
    void (*call)(void* self);
    /// Move-constructs *src into dst, then destroys *src. Must not throw:
    /// relocation happens inside engine pool maintenance.
    void (*relocate)(void* src, void* dst) noexcept;
    void (*destroy)(void* self) noexcept;
    bool inlineStorage;
  };

  template <typename D>
  static constexpr bool fitsInline =
      sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops inlineOps = {
      [](void* self) { (*std::launder(reinterpret_cast<D*>(self)))(); },
      [](void* src, void* dst) noexcept {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* self) noexcept { std::launder(reinterpret_cast<D*>(self))->~D(); },
      /*inlineStorage=*/true,
  };

  template <typename D>
  static constexpr Ops heapOps = {
      [](void* self) { (**std::launder(reinterpret_cast<D**>(self)))(); },
      [](void* src, void* dst) noexcept {
        // A raw pointer is trivially destructible: relocation is a copy.
        ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
      },
      [](void* self) noexcept { delete *std::launder(reinterpret_cast<D**>(self)); },
      /*inlineStorage=*/false,
  };

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace grads::sim

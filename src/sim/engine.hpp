#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace grads::sim {

class Task;

/// Discrete-event simulation engine.
///
/// Events are (time, sequence) ordered callbacks; sequence numbers make the
/// execution order of same-time events deterministic (FIFO), which is what
/// makes MicroGrid-style experiments exactly repeatable.
///
/// Coroutine processes (sim::Task) are spawned onto the engine and interact
/// with virtual time through awaitables (sleep, Event, Channel, PsResource).
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Cancellable handle to a scheduled event.
  class EventHandle {
   public:
    EventHandle() = default;
    /// Cancels the event if it has not fired yet; safe to call repeatedly.
    void cancel();
    /// True if the event is still pending (not fired, not cancelled).
    bool pending() const;

   private:
    friend class Engine;
    explicit EventHandle(std::shared_ptr<bool> cancelled)
        : cancelled_(std::move(cancelled)) {}
    std::shared_ptr<bool> cancelled_;
  };

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule(Time delay, std::function<void()> fn);
  /// Schedules `fn` at absolute time `t` (t >= now()).
  EventHandle scheduleAt(Time t, std::function<void()> fn);

  /// Daemon events do not keep the run loop alive: run() returns once only
  /// daemon events remain. Periodic services (NWS sampling, swap-policy
  /// ticks, background-load traces) use these so simulations end when the
  /// real work ends.
  EventHandle scheduleDaemon(Time delay, std::function<void()> fn);
  EventHandle scheduleDaemonAt(Time t, std::function<void()> fn);

  /// Schedules a coroutine resume; used by awaitables.
  EventHandle scheduleResume(Time delay, std::coroutine_handle<> h);

  /// Runs until the event queue is empty (or stop() is called).
  void run();
  /// Processes all events with time <= t, then sets now() = t.
  void runUntil(Time t);
  /// Stops the run loop after the current event.
  void stop() { stopped_ = true; }

  std::size_t processedEvents() const { return processed_; }
  std::size_t pendingEvents() const;

  /// Spawns a detached coroutine process; the engine owns it. The first
  /// resume happens as a normal event at the current time.
  void spawn(Task task, std::string name = "");

  /// Number of spawned root processes that have not yet completed.
  std::size_t liveProcesses() const;

  /// If a detached process terminated with an exception, rethrows the first
  /// one recorded. Called automatically at the end of run().
  void rethrowIfFailed();

 private:
  struct Item {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
    bool daemon = false;
  };
  struct ItemCompare {
    bool operator()(const Item& a, const Item& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void reapFinished();

  EventHandle scheduleItem(Time t, std::function<void()> fn, bool daemon);

  Time now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t processed_ = 0;
  std::size_t nonDaemonPending_ = 0;
  bool stopped_ = false;
  std::priority_queue<Item, std::vector<Item>, ItemCompare> queue_;

  struct RootProcess;
  std::vector<std::unique_ptr<RootProcess>> roots_;
  std::vector<std::exception_ptr> failures_;

  friend class Task;
};

/// Awaitable returned by sleepFor(); resumes the coroutine after `delay`.
struct SleepAwaiter {
  Engine& engine;
  Time delay;
  bool await_ready() const noexcept { return delay <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) {
    engine.scheduleResume(delay, h);
  }
  void await_resume() const noexcept {}
};

/// `co_await sleepFor(engine, dt)` — suspend for dt simulated seconds.
inline SleepAwaiter sleepFor(Engine& engine, Time delay) {
  return SleepAwaiter{engine, delay};
}

}  // namespace grads::sim

#pragma once

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace grads::sim {

class Task;

/// Discrete-event simulation engine.
///
/// Events are (time, sequence) ordered callbacks; sequence numbers make the
/// execution order of same-time events deterministic (FIFO), which is what
/// makes MicroGrid-style experiments exactly repeatable.
///
/// The hot path is allocation-free: callbacks live in pooled event nodes
/// (sim::InlineFn small-buffer storage, free-list recycling) and cancellation
/// is a generation check instead of a shared_ptr control block. The heap is
/// only touched when the pool grows or a callable outgrows the inline buffer.
///
/// Coroutine processes (sim::Task) are spawned onto the engine and interact
/// with virtual time through awaitables (sleep, Event, Channel, PsResource).
// grads: affinity(engine)
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  /// Cancellable handle to a scheduled event: a {pool index, generation}
  /// pair. The generation counter makes handles to fired/cancelled events
  /// harmlessly stale once their node is recycled. Handles are passive —
  /// copying or dropping one costs nothing — but cancel()/pending() must not
  /// be called after the engine itself is destroyed.
  class EventHandle {
   public:
    EventHandle() = default;
    /// Cancels the event if it has not fired yet; safe to call repeatedly.
    /// Cancelling a non-daemon event eagerly releases its hold on run(), so
    /// an abandoned far-future timeout cannot keep the simulation grinding
    /// through daemon events until the dead deadline pops.
    void cancel();
    /// True if the event is still pending (not fired, not cancelled).
    bool pending() const;

   private:
    friend class Engine;
    EventHandle(Engine* engine, std::uint32_t index, std::uint32_t generation)
        : engine_(engine), index_(index), generation_(generation) {}
    Engine* engine_ = nullptr;
    std::uint32_t index_ = 0;
    std::uint32_t generation_ = 0;
  };

  /// Schedules `fn` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule(Time delay, InlineFn fn);
  /// Schedules `fn` at absolute time `t` (t >= now()).
  EventHandle scheduleAt(Time t, InlineFn fn);

  /// Daemon events do not keep the run loop alive: run() returns once only
  /// daemon events remain. Periodic services (NWS sampling, swap-policy
  /// ticks, background-load traces) use these so simulations end when the
  /// real work ends.
  EventHandle scheduleDaemon(Time delay, InlineFn fn);
  EventHandle scheduleDaemonAt(Time t, InlineFn fn);

  /// Schedules a coroutine resume; used by awaitables. Never heap-allocates.
  EventHandle scheduleResume(Time delay, std::coroutine_handle<> h);

  /// Runs until the event queue is empty (or stop() is called).
  void run();
  /// Processes all events with time <= t, then sets now() = t.
  void runUntil(Time t);
  /// Stops the run loop after the current event.
  void stop() { stopped_ = true; }

  /// Replay-divergence oracle hook: called for every *live* event the run
  /// loop fires, with the event's (time, key, daemon) identity — `key` packs
  /// the lifetime sequence number and pooled node index, so two runs that
  /// fold identical streams scheduled, recycled, and fired in the identical
  /// order. A raw function pointer (not InlineFn/std::function) keeps the
  /// disabled path to one predictable branch.
  using PopObserver = void (*)(void* ctx, Time t, std::uint64_t key,
                               bool daemon);
  void setPopObserver(PopObserver fn, void* ctx) {
    popObserver_ = fn;
    popObserverCtx_ = ctx;
  }

  std::size_t processedEvents() const { return processed_; }
  /// Number of live (not yet fired, not cancelled) scheduled events.
  /// Cancelled corpses still sitting in the queue are not counted.
  std::size_t pendingEvents() const;
  /// Cancelled events whose queue slots have not been drained yet.
  std::size_t cancelledPending() const { return cancelledPending_; }
  /// Pool occupancy (all nodes ever allocated / currently recyclable); used
  /// by tests to prove recycling works.
  std::size_t poolSize() const { return poolSize_; }
  std::size_t freePoolNodes() const { return freeCount_; }

  /// Spawns a detached coroutine process; the engine owns it. The first
  /// resume happens as a normal event at the current time.
  void spawn(Task task, std::string name = "");

  /// Number of spawned root processes that have not yet completed.
  std::size_t liveProcesses() const;

  /// If a detached process terminated with an exception, rethrows the first
  /// one recorded. Called automatically at the end of run().
  void rethrowIfFailed();

 private:
  static constexpr std::uint32_t kNilNode = 0xffffffffu;

  /// Pooled event node, packed to exactly one cache line: the queue itself
  /// only stores (time, seq⊕index) pairs; the callback and bookkeeping live
  /// here and are recycled through a free list, so steady-state scheduling
  /// allocates nothing. The daemon/cancelled flags share a word with the
  /// generation counter (30 bits — staleness detection wraps only after a
  /// billion reuses of one slot).
  struct Node {
    static constexpr std::uint32_t kDaemonBit = 0x80000000u;
    static constexpr std::uint32_t kCancelledBit = 0x40000000u;
    static constexpr std::uint32_t kGenMask = 0x3fffffffu;

    InlineFn fn;                       // 56 bytes (48 SBO + ops pointer)
    std::uint32_t bits = 0;            // flags | generation
    std::uint32_t nextFree = kNilNode;

    std::uint32_t generation() const { return bits & kGenMask; }
    bool daemon() const { return (bits & kDaemonBit) != 0; }
    bool cancelled() const { return (bits & kCancelledBit) != 0; }
  };
  static_assert(sizeof(Node) == 64, "event node must stay one cache line");

  /// 16-byte queue entry: sequence number and pool index share one word
  /// (seq in the high 40 bits, node index in the low 24), so ordering by
  /// `key` IS FIFO ordering among same-time events and two entries fit in a
  /// cache line. Caps: 2^24 concurrently pending events, 2^40 events per
  /// engine lifetime — both asserted at schedule time.
  struct QueueEntry {
    Time t;
    std::uint64_t key;
    std::uint32_t node() const {
      return static_cast<std::uint32_t>(key & 0xffffffu);
    }
  };
  static constexpr unsigned kNodeBits = 24;
  static constexpr std::uint64_t kMaxSeq = (1ull << (64 - kNodeBits)) - 1;

  /// Two-tier ladder queue on (t, key) order.
  ///
  /// A single heap over 100k+ pending events pays O(log n) cache misses per
  /// operation across a multi-megabyte array; that, per GridSim, is what
  /// bounds a Grid simulator's usable experiment scale. Instead (following
  /// the classic ladder-queue shape — sorted bottom rung, unsorted rungs
  /// above):
  ///
  ///  - `near_` is a slice of entries with t < nearLimit_, kept sorted in
  ///    *descending* (t, key) order so top()/pop() read from the back. A
  ///    sorted run also makes the fire path prefetchable: the node the
  ///    engine will need K pops from now is `near_[size-1-K]`, which no heap
  ///    layout can tell you.
  ///  - `live_` is a small binary min-heap catching pushes that land below
  ///    the current horizon while the near run drains — zero-delay coroutine
  ///    resumes live here and stay cache-hot. top() is the min of the two.
  ///  - `far_` is an unsorted vector for entries at t >= nearLimit_: a push
  ///    is one sequential append. When both low tiers drain, one linear scan
  ///    re-partitions the far tier around an adaptive time horizon and sorts
  ///    the slice that moved down.
  ///
  /// Every ordering decision uses the same strict-weak (t, key) order a
  /// global heap would use — keys are unique, so the total order is unique —
  /// meaning the deterministic FIFO contract is bit-for-bit unchanged; the
  /// tiers only change *when* entries are compared, never how. Degenerate
  /// time distributions (everything at one instant) collapse to one sorted
  /// run.
  class EventQueue {
   public:
    bool empty() const {
      return near_.empty() && live_.empty() && far_.empty();
    }
    std::size_t size() const {
      return near_.size() + live_.size() + far_.size();
    }

    /// May re-partition the far tier (hence non-const).
    const QueueEntry& top() {
      if (near_.empty() && live_.empty()) refill();
      if (live_.empty()) return near_.back();
      if (near_.empty()) return live_.front();
      return before(near_.back(), live_.front()) ? near_.back()
                                                 : live_.front();
    }

    void push(QueueEntry e) {
      if (e.t < nearLimit_) {
        pushLive(e);
      } else {
        far_.push_back(e);
      }
    }

    void pop() {
      if (near_.empty() && live_.empty()) refill();
      if (!near_.empty() &&
          (live_.empty() || before(near_.back(), live_.front()))) {
        near_.pop_back();
      } else {
        popLive();
      }
    }

    /// Entry that will surface k pops from now *if only the near run is
    /// consumed*; a prefetch hint, not a guarantee (live-heap interleaving
    /// shifts it by a few slots, which a hint tolerates).
    const QueueEntry* lookahead(std::size_t k) const {
      return near_.size() > k ? &near_[near_.size() - 1 - k] : nullptr;
    }

   private:
    static constexpr std::size_t kNearTarget = 2048;
    /// Each refill drains at least 1/kDrainShift of the far tier, keeping
    /// total refill work linear in the number of events.
    static constexpr std::size_t kDrainShift = 8;

    static bool before(const QueueEntry& a, const QueueEntry& b) {
      if (a.t != b.t) return a.t < b.t;
      return a.key < b.key;
    }

    void pushLive(QueueEntry e) {
      std::size_t i = live_.size();
      live_.push_back(e);
      while (i > 0) {
        const std::size_t parent = (i - 1) >> 1;
        if (!before(e, live_[parent])) break;
        live_[i] = live_[parent];
        i = parent;
      }
      live_[i] = e;
    }

    void popLive() {
      const QueueEntry last = live_.back();
      live_.pop_back();
      const std::size_t n = live_.size();
      if (n == 0) return;
      std::size_t i = 0;
      for (;;) {
        std::size_t child = (i << 1) + 1;
        if (child >= n) break;
        if (child + 1 < n && before(live_[child + 1], live_[child])) ++child;
        if (!before(live_[child], last)) break;
        live_[i] = live_[child];
        i = child;
      }
      live_[i] = last;
    }

    /// Moves the earliest slice of the far tier into the (drained) near run.
    void refill();

    std::vector<QueueEntry> near_;  // sorted descending, all t < nearLimit_
    std::vector<QueueEntry> live_;  // binary min-heap, all t < nearLimit_
    std::vector<QueueEntry> far_;   // unsorted, all t >= nearLimit_
    Time nearLimit_ = 0.0;
  };

  void reapFinished();

  EventHandle scheduleItem(const char* caller, Time t, InlineFn fn,
                           bool daemon);
  std::uint32_t acquireNode(InlineFn fn, bool daemon);
  void recycleNode(std::uint32_t index);
  /// Pops the top entry and runs it if live; returns false for a drained
  /// cancelled corpse (caller loops without touching the clock).
  bool popAndFire(QueueEntry top);

  /// Node storage grows in place as fixed chunks: addresses are stable for
  /// the engine's lifetime (callbacks run in place, no relocation when the
  /// pool grows) and index -> address is one load from the tiny chunk table
  /// plus arithmetic, which keeps the fire-path prefetch effective.
  static constexpr unsigned kChunkBits = 12;  // 4096 nodes = 256 KiB / chunk
  static constexpr std::uint32_t kChunkMask = (1u << kChunkBits) - 1;
  Node& nodeAt(std::uint32_t index) {
    return chunks_[index >> kChunkBits][index & kChunkMask];
  }
  const Node& nodeAt(std::uint32_t index) const {
    return chunks_[index >> kChunkBits][index & kChunkMask];
  }

  Time now_ = 0.0;
  PopObserver popObserver_ = nullptr;
  void* popObserverCtx_ = nullptr;
  std::uint64_t seq_ = 0;
  std::size_t processed_ = 0;
  std::size_t nonDaemonPending_ = 0;
  std::size_t cancelledPending_ = 0;
  std::size_t freeCount_ = 0;
  bool stopped_ = false;
  std::vector<std::unique_ptr<Node[]>> chunks_;
  std::uint32_t poolSize_ = 0;
  std::uint32_t freeHead_ = kNilNode;
  EventQueue queue_;

  struct RootProcess;
  std::vector<std::unique_ptr<RootProcess>> roots_;
  std::vector<std::exception_ptr> failures_;

  friend class Task;
};

/// Awaitable returned by sleepFor(); resumes the coroutine after `delay`.
struct SleepAwaiter {
  Engine& engine;
  Time delay;
  bool await_ready() const noexcept { return delay <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) {
    engine.scheduleResume(delay, h);
  }
  void await_resume() const noexcept {}
};

/// `co_await sleepFor(engine, dt)` — suspend for dt simulated seconds.
inline SleepAwaiter sleepFor(Engine& engine, Time delay) {
  return SleepAwaiter{engine, delay};
}

}  // namespace grads::sim

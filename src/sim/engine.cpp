#include "sim/engine.hpp"

#include "sim/task.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::sim {

struct Engine::RootProcess {
  Task::Handle handle;
  std::string name;
  Engine* engine = nullptr;
  bool finished = false;

  static void onDone(void* ctx, std::exception_ptr error) {
    auto* self = static_cast<RootProcess*>(ctx);
    self->finished = true;
    if (error) {
      self->engine->failures_.push_back(error);
      GRADS_ERROR("sim") << "process '" << self->name
                         << "' terminated with an exception";
    }
  }

  ~RootProcess() {
    if (handle) handle.destroy();
  }
};

Engine::Engine() = default;

Engine::~Engine() {
  // Destroy remaining root frames before the queue (queued resumes may point
  // into frames; they are never invoked after destruction).
  roots_.clear();
}

void Engine::EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool Engine::EventHandle::pending() const {
  return cancelled_ && !*cancelled_;
}

Engine::EventHandle Engine::schedule(Time delay, std::function<void()> fn) {
  GRADS_REQUIRE(delay >= 0.0, "Engine::schedule: negative delay");
  return scheduleItem(now_ + delay, std::move(fn), /*daemon=*/false);
}

Engine::EventHandle Engine::scheduleAt(Time t, std::function<void()> fn) {
  return scheduleItem(t, std::move(fn), /*daemon=*/false);
}

Engine::EventHandle Engine::scheduleDaemon(Time delay,
                                           std::function<void()> fn) {
  GRADS_REQUIRE(delay >= 0.0, "Engine::scheduleDaemon: negative delay");
  return scheduleItem(now_ + delay, std::move(fn), /*daemon=*/true);
}

Engine::EventHandle Engine::scheduleDaemonAt(Time t, std::function<void()> fn) {
  return scheduleItem(t, std::move(fn), /*daemon=*/true);
}

Engine::EventHandle Engine::scheduleItem(Time t, std::function<void()> fn,
                                         bool daemon) {
  GRADS_REQUIRE(t >= now_, "Engine::scheduleAt: time in the past");
  GRADS_REQUIRE(t < kInfTime, "Engine::scheduleAt: infinite time");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Item{t, seq_++, std::move(fn), cancelled, daemon});
  if (!daemon) ++nonDaemonPending_;
  return EventHandle{std::move(cancelled)};
}

Engine::EventHandle Engine::scheduleResume(Time delay,
                                           std::coroutine_handle<> h) {
  return schedule(delay, [h] { h.resume(); });
}

void Engine::run() {
  stopped_ = false;
  while (!queue_.empty() && nonDaemonPending_ > 0 && !stopped_) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    if (!item.daemon) --nonDaemonPending_;
    if (*item.cancelled) continue;
    GRADS_ASSERT(item.t >= now_, "event queue time went backwards");
    now_ = item.t;
    *item.cancelled = true;  // fired events are no longer pending
    ++processed_;
    item.fn();
  }
  reapFinished();
  rethrowIfFailed();
}

void Engine::runUntil(Time t) {
  GRADS_REQUIRE(t >= now_, "Engine::runUntil: time in the past");
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().t <= t) {
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    if (!item.daemon) --nonDaemonPending_;
    if (*item.cancelled) continue;
    now_ = item.t;
    *item.cancelled = true;
    ++processed_;
    item.fn();
  }
  if (!stopped_) now_ = t;
  reapFinished();
  rethrowIfFailed();
}

std::size_t Engine::pendingEvents() const { return queue_.size(); }

void Engine::spawn(Task task, std::string name) {
  GRADS_REQUIRE(task.valid(), "Engine::spawn: invalid task");
  auto root = std::make_unique<RootProcess>();
  root->handle = task.release();
  root->name = std::move(name);
  root->engine = this;
  auto& promise = root->handle.promise();
  promise.detachedDone = &RootProcess::onDone;
  promise.detachedCtx = root.get();
  // First resume happens as an ordinary event so spawn order == start order.
  auto h = root->handle;
  schedule(0.0, [h] { h.resume(); });
  roots_.push_back(std::move(root));
}

std::size_t Engine::liveProcesses() const {
  std::size_t n = 0;
  for (const auto& r : roots_) {
    if (!r->finished) ++n;
  }
  return n;
}

void Engine::reapFinished() {
  std::erase_if(roots_, [](const std::unique_ptr<RootProcess>& r) {
    return r->finished;
  });
}

void Engine::rethrowIfFailed() {
  if (!failures_.empty()) {
    auto e = failures_.front();
    failures_.clear();
    std::rethrow_exception(e);
  }
}

}  // namespace grads::sim

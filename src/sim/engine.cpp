#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>

#include "sim/task.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::sim {

struct Engine::RootProcess {
  Task::Handle handle;
  std::string name;
  Engine* engine = nullptr;
  bool finished = false;

  static void onDone(void* ctx, std::exception_ptr error) {
    auto* self = static_cast<RootProcess*>(ctx);
    self->finished = true;
    if (error) {
      self->engine->failures_.push_back(error);
      GRADS_ERROR("sim") << "process '" << self->name
                         << "' terminated with an exception";
    }
  }

  ~RootProcess() {
    if (handle) handle.destroy();
  }
};

void Engine::EventQueue::refill() {
  GRADS_ASSERT(!far_.empty(), "EventQueue::refill on empty far tier");
  // One sequential pass to learn the time distribution of the far tier.
  Time minT = far_.front().t;
  Time maxT = minT;
  for (const QueueEntry& e : far_) {
    if (e.t < minT) minT = e.t;
    if (e.t > maxT) maxT = e.t;
  }
  Time limit;
  // Drain a constant *fraction* of the far tier per refill (never less than
  // kNearTarget): with a fixed-size slice each refill rescans nearly the
  // whole tier and total refill work is O(n²/slice); a proportional slice
  // makes the rescans geometric, i.e. O(n) over the simulation.
  const std::size_t take =
      std::max(kNearTarget, far_.size() / kDrainShift);
  if (far_.size() <= take || minT == maxT) {
    // Small or degenerate tier: take everything; future pushes strictly
    // after the current horizon keep landing in the far tier.
    limit = std::nextafter(maxT, kInfTime);
  } else {
    // Adaptive horizon sized so roughly `take` entries move down, assuming
    // times are locally uniform. Guarantee progress even when the
    // distribution is extremely skewed (limit collapses onto minT).
    const Time width = (maxT - minT) * (static_cast<double>(take) /
                                        static_cast<double>(far_.size()));
    limit = minT + width;
    if (limit <= minT) limit = std::nextafter(minT, kInfTime);
  }
  // Partition in place: entries below the horizon move into the near run,
  // the rest compact to the front of the far tier.
  std::size_t keep = 0;
  for (std::size_t i = 0; i < far_.size(); ++i) {
    if (far_[i].t < limit) {
      near_.push_back(far_[i]);
    } else {
      far_[keep++] = far_[i];
    }
  }
  far_.resize(keep);
  // Sort descending so pops are pop_back(); one bulk sort of 16-byte PODs is
  // cheaper than heapifying them one at a time, and the resulting run is
  // what makes the engine's K-ahead node prefetch possible.
  std::sort(near_.begin(), near_.end(),
            [](const QueueEntry& a, const QueueEntry& b) {
              return before(b, a);
            });
  nearLimit_ = limit;
}

Engine::Engine() = default;

Engine::~Engine() {
  // Destroy remaining root frames before the node pool (queued resumes may
  // point into frames; they are never invoked after destruction).
  roots_.clear();
}

void Engine::EventHandle::cancel() {
  if (engine_ == nullptr) return;
  Node& node = engine_->nodeAt(index_);
  if (node.generation() != generation_ || node.cancelled()) return;
  node.bits |= Node::kCancelledBit;
  node.fn.reset();  // release captured resources eagerly
  // Eagerly drop the run()-keepalive: a cancelled timeout at t=1e6 must not
  // keep the loop grinding through daemon events until the dead slot pops.
  if (!node.daemon()) --engine_->nonDaemonPending_;
  ++engine_->cancelledPending_;
}

bool Engine::EventHandle::pending() const {
  if (engine_ == nullptr) return false;
  const Node& node = engine_->nodeAt(index_);
  return node.generation() == generation_ && !node.cancelled();
}

std::uint32_t Engine::acquireNode(InlineFn fn, bool daemon) {
  std::uint32_t index;
  if (freeHead_ != kNilNode) {
    index = freeHead_;
    Node& node = nodeAt(index);
    freeHead_ = node.nextFree;
    --freeCount_;
    node.nextFree = kNilNode;
    node.fn = std::move(fn);
    if (daemon) node.bits |= Node::kDaemonBit;
  } else {
    index = poolSize_;
    GRADS_ASSERT(index < (1u << kNodeBits), "Engine: event pool exhausted");
    if ((index >> kChunkBits) == chunks_.size()) {
      chunks_.emplace_back(new Node[std::size_t{1} << kChunkBits]);
    }
    ++poolSize_;
    Node& node = nodeAt(index);
    node.fn = std::move(fn);
    if (daemon) node.bits |= Node::kDaemonBit;
  }
  return index;
}

void Engine::recycleNode(std::uint32_t index) {
  Node& node = nodeAt(index);
  // Bump the generation (outstanding handles to this slot go stale) and
  // clear the flag bits in one store.
  node.bits = (node.generation() + 1) & Node::kGenMask;
  node.fn.reset();
  node.nextFree = freeHead_;
  freeHead_ = index;
  ++freeCount_;
}

Engine::EventHandle Engine::schedule(Time delay, InlineFn fn) {
  GRADS_REQUIRE(delay >= 0.0, "Engine::schedule: negative delay");
  return scheduleItem("Engine::schedule", now_ + delay, std::move(fn),
                      /*daemon=*/false);
}

Engine::EventHandle Engine::scheduleAt(Time t, InlineFn fn) {
  return scheduleItem("Engine::scheduleAt", t, std::move(fn),
                      /*daemon=*/false);
}

Engine::EventHandle Engine::scheduleDaemon(Time delay, InlineFn fn) {
  GRADS_REQUIRE(delay >= 0.0, "Engine::scheduleDaemon: negative delay");
  return scheduleItem("Engine::scheduleDaemon", now_ + delay, std::move(fn),
                      /*daemon=*/true);
}

Engine::EventHandle Engine::scheduleDaemonAt(Time t, InlineFn fn) {
  return scheduleItem("Engine::scheduleDaemonAt", t, std::move(fn),
                      /*daemon=*/true);
}

Engine::EventHandle Engine::scheduleItem(const char* caller, Time t,
                                         InlineFn fn, bool daemon) {
  GRADS_REQUIRE(t >= now_, std::string(caller) + ": time in the past");
  GRADS_REQUIRE(t < kInfTime, std::string(caller) + ": infinite time");
  const std::uint32_t index = acquireNode(std::move(fn), daemon);
  GRADS_ASSERT(seq_ <= kMaxSeq, "Engine: event sequence space exhausted");
  queue_.push(QueueEntry{t, (seq_++ << kNodeBits) | index});
  if (!daemon) ++nonDaemonPending_;
  return EventHandle{this, index, nodeAt(index).generation()};
}

Engine::EventHandle Engine::scheduleResume(Time delay,
                                           std::coroutine_handle<> h) {
  GRADS_REQUIRE(delay >= 0.0, "Engine::scheduleResume: negative delay");
  return scheduleItem("Engine::scheduleResume", now_ + delay,
                      InlineFn([h] { h.resume(); }), /*daemon=*/false);
}

bool Engine::popAndFire(QueueEntry top) {
  queue_.pop();
  const std::uint32_t index = top.node();
  Node& node = nodeAt(index);
  if (node.cancelled()) {
    --cancelledPending_;
    recycleNode(index);
    return false;
  }
  GRADS_ASSERT(top.t >= now_, "event queue time went backwards");
  now_ = top.t;
  if (popObserver_ != nullptr) {
    popObserver_(popObserverCtx_, top.t, top.key, node.daemon());
  }
  if (!node.daemon()) --nonDaemonPending_;
  // Stale-ify the handle before invoking (a callback cancelling itself is a
  // no-op, matching the old semantics). Chunked node storage is address-
  // stable, so the callback runs IN PLACE — no move of the 48-byte buffer —
  // and is free to schedule new events while it runs; its own node is
  // neither free nor queued until the guard recycles it afterwards.
  node.bits = (node.generation() + 1) & Node::kGenMask;
  // Start pulling a future event's pooled node into cache: with 100k+
  // pending events the pool is far larger than cache and the cold node
  // fetch otherwise dominates the fire path. One prefetch per pop at a
  // fixed depth keeps kPrefetchDepth loads in flight down the sorted near
  // run, enough to cover DRAM latency.
  static constexpr std::size_t kPrefetchDepth = 6;
  if (const QueueEntry* ahead = queue_.lookahead(kPrefetchDepth)) {
    __builtin_prefetch(&nodeAt(ahead->node()));
  }
  ++processed_;
  // Recycle after the callback returns or unwinds (the generation was
  // already bumped above, so no second bump here).
  struct FireGuard {
    Engine* e;
    std::uint32_t i;
    ~FireGuard() {
      Node& n = e->nodeAt(i);
      n.fn.reset();
      n.nextFree = e->freeHead_;
      e->freeHead_ = i;
      ++e->freeCount_;
    }
  } guard{this, index};
  node.fn();
  return true;
}

void Engine::run() {
  stopped_ = false;
  while (!queue_.empty() && nonDaemonPending_ > 0 && !stopped_) {
    popAndFire(queue_.top());
  }
  reapFinished();
  rethrowIfFailed();
}

void Engine::runUntil(Time t) {
  GRADS_REQUIRE(t >= now_, "Engine::runUntil: time in the past");
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.top().t <= t) {
    popAndFire(queue_.top());
  }
  if (!stopped_) now_ = t;
  reapFinished();
  rethrowIfFailed();
}

std::size_t Engine::pendingEvents() const {
  return queue_.size() - cancelledPending_;
}

void Engine::spawn(Task task, std::string name) {
  GRADS_REQUIRE(task.valid(), "Engine::spawn: invalid task");
  auto root = std::make_unique<RootProcess>();
  root->handle = task.release();
  root->name = std::move(name);
  root->engine = this;
  auto& promise = root->handle.promise();
  promise.detachedDone = &RootProcess::onDone;
  promise.detachedCtx = root.get();
  // First resume happens as an ordinary event so spawn order == start order.
  auto h = root->handle;
  schedule(0.0, [h] { h.resume(); });
  roots_.push_back(std::move(root));
}

std::size_t Engine::liveProcesses() const {
  std::size_t n = 0;
  for (const auto& r : roots_) {
    if (!r->finished) ++n;
  }
  return n;
}

void Engine::reapFinished() {
  std::erase_if(roots_, [](const std::unique_ptr<RootProcess>& r) {
    return r->finished;
  });
}

void Engine::rethrowIfFailed() {
  if (!failures_.empty()) {
    auto e = failures_.front();
    failures_.clear();
    std::rethrow_exception(e);
  }
}

}  // namespace grads::sim

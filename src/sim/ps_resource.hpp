#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace grads::sim {

/// Processor-sharing resource with time-varying capacity.
///
/// This single abstraction models both CPUs and network links:
///  - a CPU is a PsResource with capacity = cores × flops/core and
///    maxRatePerUnit = flops/core (one process cannot use two cores);
///  - a link is a PsResource with capacity = bandwidth (bytes/s) and
///    unbounded per-flow rate (flows share fairly).
///
/// Finite jobs (compute bursts, transfers) are submitted with consume(work)
/// and complete when the integral of their share of capacity reaches `work`.
/// External/background load is modelled as *infinite* jobs (addLoad): they
/// never finish but take their fair share, which is exactly how the paper's
/// "artificial load" (competing processes on a node) behaves.
///
/// Shares are weighted: a job of weight w gets
///     rate = w * min(maxRatePerUnit, capacity / totalWeight).
// grads: affinity(engine)
class PsResource {
 public:
  using LoadId = std::uint64_t;

  PsResource(Engine& engine, double capacity,
             double maxRatePerUnit = kInfTime, std::string name = "");
  ~PsResource();
  PsResource(const PsResource&) = delete;
  PsResource& operator=(const PsResource&) = delete;

  const std::string& name() const { return name_; }
  double capacity() const { return capacity_; }
  Engine& engine() const { return *engine_; }

  /// Changes nominal capacity (e.g. NWS-visible bandwidth fluctuation).
  void setCapacity(double capacity);

  /// Adds a perpetual competing job of the given weight; returns its id.
  LoadId addLoad(double weight = 1.0);
  /// Removes a competing job previously added with addLoad().
  void removeLoad(LoadId id);
  /// Total weight of infinite (background-load) jobs.
  double backgroundWeight() const;

  /// Number of active finite jobs.
  std::size_t activeJobs() const;
  /// Total weight across all jobs (finite + infinite).
  double totalWeight() const;
  /// Instantaneous rate a new weight-1 job would receive right now.
  double ratePerUnit() const;

  /// Consumes `work` units (flops / bytes); completes when done.
  /// Cooperative: cannot be aborted once started (callers poll between
  /// bursts, matching the paper's user-level checkpoint/swap points).
  Task consume(double work, double weight = 1.0);

  /// Total finite work completed since construction (for sensors/tests).
  double completedWork() const { return completedWork_; }

 private:
  struct Job {
    double remaining;
    double work;
    double weight;
    bool infinite;
    LoadId id;
    // Owned out-of-line so waiter addresses survive jobs_ reallocation.
    std::unique_ptr<Event> done;  // null for infinite jobs
  };

  void advance();
  void replan();
  double ratePerUnitLocked() const;

  Engine* engine_;
  double capacity_;
  double maxRatePerUnit_;
  std::string name_;
  // Contiguous so the advance()/replan() sweeps (every capacity change and
  // every finish event walks all jobs) stream instead of pointer-chasing.
  std::vector<Job> jobs_;
  Time lastUpdate_ = 0.0;
  Engine::EventHandle pendingFinish_;
  LoadId nextId_ = 1;
  double completedWork_ = 0.0;
};

}  // namespace grads::sim

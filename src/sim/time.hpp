#pragma once

#include <limits>

namespace grads::sim {

/// Virtual (simulated) time, in seconds.
using Time = double;

inline constexpr Time kInfTime = std::numeric_limits<Time>::infinity();

}  // namespace grads::sim

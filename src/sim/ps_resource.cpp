#include "sim/ps_resource.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::sim {

namespace {
// A finite job is complete once its residual drops below this fraction of
// its original work (guards against floating-point residue at the exactly
// scheduled finish instant).
constexpr double kRelativeEps = 1e-9;
}  // namespace

PsResource::PsResource(Engine& engine, double capacity, double maxRatePerUnit,
                       std::string name)
    : engine_(&engine),
      capacity_(capacity),
      maxRatePerUnit_(maxRatePerUnit),
      name_(std::move(name)),
      lastUpdate_(engine.now()) {
  GRADS_REQUIRE(capacity >= 0.0, "PsResource: negative capacity");
  GRADS_REQUIRE(maxRatePerUnit > 0.0, "PsResource: maxRatePerUnit must be > 0");
}

PsResource::~PsResource() { pendingFinish_.cancel(); }

double PsResource::ratePerUnitLocked() const {
  double totalW = 0.0;
  for (const auto& j : jobs_) totalW += j.weight;
  if (totalW <= 0.0) return std::min(maxRatePerUnit_, capacity_);
  return std::min(maxRatePerUnit_, capacity_ / totalW);
}

double PsResource::ratePerUnit() const { return ratePerUnitLocked(); }

double PsResource::totalWeight() const {
  double w = 0.0;
  for (const auto& j : jobs_) w += j.weight;
  return w;
}

double PsResource::backgroundWeight() const {
  double w = 0.0;
  for (const auto& j : jobs_) {
    if (j.infinite) w += j.weight;
  }
  return w;
}

std::size_t PsResource::activeJobs() const {
  std::size_t n = 0;
  for (const auto& j : jobs_) {
    if (!j.infinite) ++n;
  }
  return n;
}

void PsResource::advance() {
  const Time now = engine_->now();
  const double dt = now - lastUpdate_;
  lastUpdate_ = now;
  if (dt <= 0.0 || jobs_.empty()) return;
  const double rate = ratePerUnitLocked();
  if (rate <= 0.0) return;
  for (auto& j : jobs_) {
    if (!j.infinite) j.remaining -= rate * j.weight * dt;
  }
}

void PsResource::replan() {
  pendingFinish_.cancel();
  const double rate = ratePerUnitLocked();
  if (rate <= 0.0) return;
  Time dt = kInfTime;
  for (const auto& j : jobs_) {
    if (j.infinite) continue;
    dt = std::min(dt, std::max(0.0, j.remaining) / (rate * j.weight));
  }
  if (dt == kInfTime) return;
  pendingFinish_ = engine_->schedule(dt, [this] {
    advance();
    // A job is complete when its residual is numerical noise — either
    // relative to its total work, or smaller than what one representable
    // time step can drain (event times are quantized to doubles, so such a
    // residual could otherwise never reach zero and would spin the engine).
    const double rate = ratePerUnitLocked();
    const Time now = engine_->now();
    const Time timeQuantum = std::nextafter(now, kInfTime) - now;
    // Stable in-place compaction (order of survivors preserved, finishers
    // signalled in submission order — Event::set only queues resumes, so no
    // reentrancy can touch jobs_ mid-sweep).
    std::size_t keep = 0;
    for (std::size_t i = 0; i < jobs_.size(); ++i) {
      Job& j = jobs_[i];
      const bool relDone = j.remaining <= kRelativeEps * j.work;
      const bool quantumDone =
          rate > 0.0 && j.remaining <= rate * j.weight * timeQuantum;
      if (!j.infinite && (relDone || quantumDone)) {
        completedWork_ += j.work;
        j.done->set();
      } else {
        if (keep != i) jobs_[keep] = std::move(j);
        ++keep;
      }
    }
    jobs_.resize(keep);
    replan();
  });
}

void PsResource::setCapacity(double capacity) {
  GRADS_REQUIRE(capacity >= 0.0, "PsResource::setCapacity: negative");
  advance();
  capacity_ = capacity;
  replan();
}

PsResource::LoadId PsResource::addLoad(double weight) {
  GRADS_REQUIRE(weight > 0.0, "PsResource::addLoad: weight must be > 0");
  advance();
  const LoadId id = nextId_++;
  jobs_.push_back(Job{0.0, 0.0, weight, true, id, nullptr});
  replan();
  return id;
}

void PsResource::removeLoad(LoadId id) {
  advance();
  const auto before = jobs_.size();
  std::erase_if(jobs_, [id](const Job& j) { return j.infinite && j.id == id; });
  GRADS_REQUIRE(jobs_.size() + 1 == before,
                "PsResource::removeLoad: unknown load id");
  replan();
}

Task PsResource::consume(double work, double weight) {
  GRADS_REQUIRE(work >= 0.0, "PsResource::consume: negative work");
  GRADS_REQUIRE(weight > 0.0, "PsResource::consume: weight must be > 0");
  if (work == 0.0) co_return;
  advance();
  const LoadId id = nextId_++;
  jobs_.push_back(
      Job{work, work, weight, false, id, std::make_unique<Event>(*engine_)});
  Event& done = *jobs_.back().done;
  replan();
  co_await done.wait();
}

}  // namespace grads::sim

#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "util/error.hpp"

namespace grads::sim {

/// One-shot event: coroutines block on wait() until set() is called.
/// Resumptions are scheduled as zero-delay engine events, so wake order is
/// deterministic (registration order) and stacks stay shallow.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(&engine) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void set() {
    if (set_) return;
    set_ = true;
    for (auto h : waiters_) engine_->scheduleResume(0.0, h);
    waiters_.clear();
  }

  bool isSet() const { return set_; }

  /// Re-arms the event. Only legal when no coroutine is waiting.
  void reset() {
    GRADS_REQUIRE(waiters_.empty(), "Event::reset with pending waiters");
    set_ = false;
  }

  auto wait() {
    struct Awaiter {
      Event* ev;
      bool await_ready() const noexcept { return ev->set_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  bool set_ = false;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Unbounded FIFO channel: the message-passing primitive underneath vmpi.
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine) : engine_(&engine) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void send(T value) {
    if (!waiters_.empty()) {
      Waiter w = waiters_.front();
      waiters_.pop_front();
      *w.slot = std::move(value);
      engine_->scheduleResume(0.0, w.handle);
    } else {
      items_.push_back(std::move(value));
    }
  }

  auto recv() {
    struct Awaiter {
      Channel* ch;
      std::optional<T> value;
      bool await_ready() {
        if (!ch->items_.empty()) {
          value = std::move(ch->items_.front());
          ch->items_.pop_front();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch->waiters_.push_back(Waiter{h, &value});
      }
      T await_resume() { return std::move(*value); }
    };
    return Awaiter{this, std::nullopt};
  }

  /// Non-blocking receive.
  std::optional<T> tryRecv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  std::size_t waiting() const { return waiters_.size(); }

 private:
  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;
  };
  Engine* engine_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
};

/// Level-triggered gate: await passes immediately while open, blocks while
/// closed. Used for pause/resume style control (e.g. swap barriers).
class Gate {
 public:
  explicit Gate(Engine& engine, bool open = false)
      : engine_(&engine), open_(open) {}

  void open() {
    open_ = true;
    for (auto h : waiters_) engine_->scheduleResume(0.0, h);
    waiters_.clear();
  }
  void close() { open_ = false; }
  bool isOpen() const { return open_; }

  auto wait() {
    struct Awaiter {
      Gate* gate;
      bool await_ready() const noexcept { return gate->open_; }
      void await_suspend(std::coroutine_handle<> h) {
        gate->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

 private:
  Engine* engine_;
  bool open_;
  std::vector<std::coroutine_handle<>> waiters_;
};

/// Fork/join helper for groups of concurrently running tasks.
///
///   JoinSet js(engine);
///   for (...) js.spawn(worker(...));
///   co_await js.join();   // rethrows the first child exception, if any
class JoinSet {
 public:
  explicit JoinSet(Engine& engine) : engine_(&engine), done_(engine) {}

  void spawn(Task task) {
    ++live_;
    ++total_;
    engine_->spawn(wrap(std::move(task)), "joinset-child");
  }

  Task join() {
    if (live_ > 0) co_await done_.wait();
    if (error_) std::rethrow_exception(error_);
  }

  std::size_t liveChildren() const { return live_; }
  std::size_t totalSpawned() const { return total_; }

 private:
  Task wrap(Task task) {
    // The child frame is owned by this wrapper frame for its whole life.
    try {
      co_await task;
    } catch (...) {
      if (!error_) error_ = std::current_exception();
    }
    if (--live_ == 0) done_.set();
  }

  Engine* engine_;
  Event done_;
  std::size_t live_ = 0;
  std::size_t total_ = 0;
  std::exception_ptr error_;
};

}  // namespace grads::sim

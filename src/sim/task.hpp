#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace grads::sim {

/// A lazily-started coroutine representing a simulated process or sub-step.
///
/// Lifetime rules:
///  - Awaiting a Task (`co_await child()`) starts it and suspends the parent
///    until it completes; the parent's Task object owns the frame (RAII).
///  - `Engine::spawn(std::move(task))` detaches it as a root process; the
///    engine takes ownership and records any escaped exception.
///
/// Tasks return void; simulated processes communicate results through
/// Channels, Events, or shared state — mirroring the message-passing model.
class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  using DetachedDoneFn = void (*)(void* ctx, std::exception_ptr error);

  struct promise_type {
    std::coroutine_handle<> continuation;
    std::exception_ptr error;
    bool completed = false;
    DetachedDoneFn detachedDone = nullptr;
    void* detachedCtx = nullptr;

    Task get_return_object() { return Task{Handle::from_promise(*this)}; }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        auto& p = h.promise();
        p.completed = true;
        if (p.continuation) return p.continuation;
        if (p.detachedDone != nullptr) p.detachedDone(p.detachedCtx, p.error);
        return std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    void unhandled_exception() { error = std::current_exception(); }
  };

  Task() = default;
  explicit Task(Handle h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const { return static_cast<bool>(h_); }
  bool completed() const { return h_ && h_.promise().completed; }

  /// Transfers frame ownership to the caller (used by Engine::spawn).
  Handle release() { return std::exchange(h_, {}); }

  /// Awaiting a task starts it (symmetric transfer) and resumes the awaiter
  /// when the task completes; rethrows any exception from the task body.
  auto operator co_await() const noexcept {
    struct Awaiter {
      Handle h;
      bool await_ready() const noexcept { return !h || h.promise().completed; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) {
        h.promise().continuation = parent;
        return h;
      }
      void await_resume() const {
        if (h && h.promise().error) std::rethrow_exception(h.promise().error);
      }
    };
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  Handle h_;
};

}  // namespace grads::sim

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "util/retry.hpp"

namespace grads::metasched {

/// One tenant of the submission frontend: an open-loop arrival process
/// (Poisson, diurnally modulated, heavy-tailed job sizes) plus the policy
/// knobs admission and fair-share read for its jobs.
struct TenantSpec {
  std::string name;
  int tier = 1;         ///< 0 = batch, 1 = normal, 2 = high priority
  double weight = 1.0;  ///< fair-share stride weight within the tier

  // Arrival process: non-homogeneous Poisson with rate
  //   base * (1 + amplitude * sin(2*pi * (t - phase) / period)).
  double baseRatePerSec = 0.01;
  double diurnalAmplitude = 0.0;  ///< in [0, 1)
  double diurnalPeriodSec = 86400.0;
  double diurnalPhaseSec = 0.0;

  // Job sizes: Pareto(xm, alpha) flops, optionally truncated.
  double paretoXmFlops = 1e9;
  double paretoAlpha = 1.9;
  double maxJobFlops = 0.0;  ///< 0 = uncapped

  /// Resubmission behavior after a shed: the generator waits for
  /// max(admission retry-after hint, policy backoff) and gives up once the
  /// attempt budget is exhausted or the submission horizon has passed.
  util::RetryPolicy resubmit;

  std::uint64_t seed = 1;  ///< arrival/size/jitter stream for this tenant
};

/// Per-tenant accounting. Every job ends in exactly one of completed /
/// failed / abandoned / unserved, so the ledger is auditable:
///   admitted == completed + failed + unserved + still-in-system
/// and the campaign asserts still-in-system == 0 at drain.
struct TenantLedger {
  std::int64_t submitted = 0;   ///< submission attempts (arrivals + resubmits)
  std::int64_t admitted = 0;    ///< accepted into the queue
  std::int64_t shed = 0;        ///< rejected with a retry-after hint
  std::int64_t resubmits = 0;   ///< sheds that scheduled a retry
  std::int64_t abandoned = 0;   ///< sheds past the retry budget or horizon
  std::int64_t dispatched = 0;  ///< handed to the application manager
  std::int64_t completed = 0;
  std::int64_t failed = 0;      ///< manager run threw (launch budget etc.)
  std::int64_t preempted = 0;   ///< checkpoint-and-park requests issued
  std::int64_t parks = 0;       ///< parks that actually reached the gate
  std::int64_t unparked = 0;    ///< re-dispatches of parked jobs
  std::int64_t deferrals = 0;   ///< dispatch opportunities lost to brownout
  std::int64_t unserved = 0;    ///< queued jobs dropped at the hard deadline
  /// (completion - submit) / ideal service time, one entry per completion.
  std::vector<double> slowdowns;

  void encodeState(core::SnapshotWriter& w) const;
  void decodeState(core::SnapshotReader& r);
};

/// Brownout ladder: each rung trades progressively more service for
/// stability. kDeferLow stops dispatching tier-0 work, kPark lets the
/// preemption governor checkpoint-and-park victims for higher tiers, kShed
/// rejects all non-protected arrivals outright.
enum class BrownoutLevel : int {
  kFull = 0,
  kDeferLow = 1,
  kPark = 2,
  kShed = 3,
};

const char* brownoutLevelName(BrownoutLevel level);

struct BrownoutOptions {
  bool enabled = true;
  /// Pressure thresholds to enter rung i+1 from rung i...
  double enterPressure[3] = {0.35, 0.65, 0.90};
  /// ...and to drop back below rung i+1. exit < enter gives the hysteresis
  /// band that keeps the ladder from flapping on a noisy pressure signal.
  double exitPressure[3] = {0.25, 0.50, 0.75};
  /// Minimum dwell on a rung before the next transition (either way).
  double dwellSec = 120.0;
};

/// Hysteresis ladder controller (the ViolationGovernor idiom applied to
/// load): moves at most one rung per update, holds each rung for dwellSec,
/// and enters high / exits low so a pressure signal hovering at a threshold
/// cannot thrash the service level.
class BrownoutController {
 public:
  BrownoutController() = default;
  explicit BrownoutController(BrownoutOptions opts) : opts_(opts) {}

  BrownoutLevel level() const { return static_cast<BrownoutLevel>(level_); }
  std::int64_t escalations() const { return escalations_; }
  std::int64_t deescalations() const { return deescalations_; }

  /// Feeds one pressure sample at virtual time `now`; returns true when the
  /// rung changed.
  bool update(double pressure, double now);

  void encodeState(core::SnapshotWriter& w) const;
  void decodeState(core::SnapshotReader& r);

 private:
  BrownoutOptions opts_;  // grads: transient(construction-time config)
  int level_ = 0;
  double lastChangeAt_ = -1e300;
  std::int64_t escalations_ = 0;
  std::int64_t deescalations_ = 0;
};

/// Governor-mediated preemption knobs (checkpoint-and-park of a running
/// victim to make room for queued higher-tier work).
struct PreemptOptions {
  bool enabled = true;
  /// Victim must have run at least this long — in particular longer than
  /// the launch overheads, so the RSS stop flag lands on a live incarnation
  /// instead of being cleared by the next beginIncarnation().
  double minRunSec = 60.0;
  /// Per victim-tenant cooldown between preemptions (anti-thrash).
  double cooldownSec = 300.0;
  /// Parks in flight (stop requested, gate not yet reached) at once.
  int maxConcurrent = 2;
  /// Even below the kPark rung, a high-tier job queued longer than this
  /// with no free slot triggers a preemption.
  double highTierMaxWaitSec = 600.0;
};

}  // namespace grads::metasched

#pragma once

#include <cstddef>
#include <vector>

#include "grid/grid.hpp"
#include "metasched/types.hpp"
#include "services/gis.hpp"
#include "services/nws.hpp"

namespace grads::metasched {

struct AdmissionOptions {
  /// Off = open admission (the unmitigated ablation): every submission is
  /// queued and nothing is ever shed.
  bool enabled = true;
  std::size_t maxQueuedPerTenant = 256;
  std::size_t maxQueuedTotal = 1024;
  /// Reject when the queued work, at current estimated capacity, already
  /// represents more than this many seconds of backlog.
  double maxBacklogSec = 3600.0;
  /// Retry-after hint: clamp(factor * backlogSec, min, max). Proportional
  /// to the backlog so a deep queue pushes retries further out instead of
  /// inviting a synchronized stampede the moment pressure dips.
  double retryAfterFactor = 0.5;
  double retryAfterMinSec = 30.0;
  double retryAfterMaxSec = 1800.0;
  /// Tiers >= this are admitted even at the kShed brownout rung (queue and
  /// backlog bounds still apply — shedding never unbounds the queue).
  int shedProtectTier = 2;
};

struct AdmissionDecision {
  bool admit = true;
  double retryAfterSec = 0.0;  ///< meaningful when !admit
  const char* reason = "admit";
};

/// Backpressure valve in front of the tenant queues. Capacity estimates
/// come from the same GIS reachability + NWS forecast data the scheduler
/// uses, so admission reacts to dark nodes and load without new plumbing.
class AdmissionController {
 public:
  AdmissionController(const grid::Grid& grid, const services::Gis& gis,
                      const services::Nws* nws,
                      std::vector<grid::NodeId> slots, AdmissionOptions opts)
      : grid_(&grid), gis_(&gis), nws_(nws), slots_(std::move(slots)),
        opts_(opts) {}

  const AdmissionOptions& options() const { return opts_; }

  /// Aggregate effective rate of the reachable slot pool: NWS forecast
  /// where one exists, static node spec otherwise (the NWS degradation
  /// ladder's last rung).
  double capacityFlops() const;

  AdmissionDecision decide(int tier, std::size_t tenantDepth,
                           std::size_t totalDepth, double backlogSec,
                           BrownoutLevel level) const;

 private:
  const grid::Grid* grid_;
  const services::Gis* gis_;
  const services::Nws* nws_;
  std::vector<grid::NodeId> slots_;
  AdmissionOptions opts_;
};

}  // namespace grads::metasched

#include "metasched/types.hpp"

namespace grads::metasched {

const char* brownoutLevelName(BrownoutLevel level) {
  switch (level) {
    case BrownoutLevel::kFull: return "full";
    case BrownoutLevel::kDeferLow: return "defer-low";
    case BrownoutLevel::kPark: return "park";
    case BrownoutLevel::kShed: return "shed";
  }
  return "?";
}

void TenantLedger::encodeState(core::SnapshotWriter& w) const {
  w.putI64(submitted);
  w.putI64(admitted);
  w.putI64(shed);
  w.putI64(resubmits);
  w.putI64(abandoned);
  w.putI64(dispatched);
  w.putI64(completed);
  w.putI64(failed);
  w.putI64(preempted);
  w.putI64(parks);
  w.putI64(unparked);
  w.putI64(deferrals);
  w.putI64(unserved);
  w.putU64(slowdowns.size());
  for (const double s : slowdowns) w.putF64(s);
}

void TenantLedger::decodeState(core::SnapshotReader& r) {
  submitted = r.getI64();
  admitted = r.getI64();
  shed = r.getI64();
  resubmits = r.getI64();
  abandoned = r.getI64();
  dispatched = r.getI64();
  completed = r.getI64();
  failed = r.getI64();
  preempted = r.getI64();
  parks = r.getI64();
  unparked = r.getI64();
  deferrals = r.getI64();
  unserved = r.getI64();
  const std::uint64_t n = r.getU64();
  slowdowns.clear();
  slowdowns.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) slowdowns.push_back(r.getF64());
}

bool BrownoutController::update(double pressure, double now) {
  if (!opts_.enabled) return false;
  if (now - lastChangeAt_ < opts_.dwellSec) return false;
  if (level_ < 3 && pressure >= opts_.enterPressure[level_]) {
    ++level_;
    ++escalations_;
    lastChangeAt_ = now;
    return true;
  }
  if (level_ > 0 && pressure <= opts_.exitPressure[level_ - 1]) {
    --level_;
    ++deescalations_;
    lastChangeAt_ = now;
    return true;
  }
  return false;
}

void BrownoutController::encodeState(core::SnapshotWriter& w) const {
  w.putI64(level_);
  w.putF64(lastChangeAt_);
  w.putI64(escalations_);
  w.putI64(deescalations_);
}

void BrownoutController::decodeState(core::SnapshotReader& r) {
  level_ = static_cast<int>(r.getI64());
  lastChangeAt_ = r.getF64();
  escalations_ = r.getI64();
  deescalations_ = r.getI64();
}

}  // namespace grads::metasched

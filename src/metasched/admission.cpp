#include "metasched/admission.hpp"

#include <algorithm>

namespace grads::metasched {

double AdmissionController::capacityFlops() const {
  double total = 0.0;
  for (const grid::NodeId n : slots_) {
    if (!gis_->isNodeReachable(n)) continue;
    double rate = grid_->node(n).spec().effectiveFlopsPerCpu();
    if (nws_ != nullptr) {
      const auto measured = nws_->tryEffectiveRate(n);
      if (measured && *measured > 0.0) rate = *measured;
    }
    total += rate;
  }
  return total;
}

AdmissionDecision AdmissionController::decide(int tier,
                                              std::size_t tenantDepth,
                                              std::size_t totalDepth,
                                              double backlogSec,
                                              BrownoutLevel level) const {
  if (!opts_.enabled) return {true, 0.0, "open"};
  const double hint =
      std::clamp(opts_.retryAfterFactor * backlogSec, opts_.retryAfterMinSec,
                 opts_.retryAfterMaxSec);
  if (level == BrownoutLevel::kShed && tier < opts_.shedProtectTier) {
    return {false, hint, "brownout-shed"};
  }
  if (tenantDepth >= opts_.maxQueuedPerTenant) {
    return {false, hint, "tenant-queue-full"};
  }
  if (totalDepth >= opts_.maxQueuedTotal) {
    return {false, hint, "global-queue-full"};
  }
  if (backlogSec > opts_.maxBacklogSec) {
    return {false, hint, "backlog"};
  }
  return {true, 0.0, "admit"};
}

}  // namespace grads::metasched

#include "metasched/frontend.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/log.hpp"
#include "vmpi/world.hpp"

namespace grads::metasched {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Dedicated single-rank prediction: the job's remaining flops at the slot
/// node's effective rate (NWS forecast when available).
class SlotPerfModel final : public core::AppPerfModel {
 public:
  SlotPerfModel(const grid::Grid& grid, std::uint64_t phases,
                double flopsPerPhase)
      : grid_(&grid), phases_(phases), flopsPerPhase_(flopsPerPhase) {}

  std::size_t totalPhases() const override {
    return static_cast<std::size_t>(phases_);
  }

  double phaseSeconds(const std::vector<grid::NodeId>& mapping,
                      std::size_t /*phase*/, const services::Nws* nws,
                      core::RateView /*view*/) const override {
    GRADS_REQUIRE(!mapping.empty(), "SlotPerfModel: empty mapping");
    double rate = grid_->node(mapping[0]).spec().effectiveFlopsPerCpu();
    if (nws != nullptr) {
      const auto measured = nws->tryEffectiveRate(mapping[0]);
      if (measured && *measured > 0.0) rate = *measured;
    }
    GRADS_REQUIRE(rate > 0.0, "SlotPerfModel: zero node rate");
    return flopsPerPhase_ / rate;
  }

 private:
  const grid::Grid* grid_;
  std::uint64_t phases_;
  double flopsPerPhase_;
};

/// The frontend owns placement: every (re)launch maps onto whatever slot
/// the frontend pinned last. An unpark re-pins before opening the gate, so
/// the manager's fresh selection lands on the new slot deterministically.
class PinnedMapper final : public core::Mapper {
 public:
  explicit PinnedMapper(std::shared_ptr<PinnedSlot> slot)
      : slot_(std::move(slot)) {}

  std::vector<grid::NodeId> chooseMapping(
      const std::vector<grid::NodeId>& /*available*/,
      const services::Nws* /*nws*/) const override {
    GRADS_REQUIRE(slot_->node != grid::kNoId, "PinnedMapper: no slot pinned");
    return {slot_->node};
  }

 private:
  std::shared_ptr<PinnedSlot> slot_;
};

/// Single-rank job body: compute in checkpoint-quantum phases, polling the
/// RSS stop flag at each boundary (the preemption latency bound). The stop
/// branch is the standard SRS park protocol: checkpoint written by
/// checkIfStop, iteration recorded, incarnation exits stopped.
sim::Task tenantJobBody(core::LaunchContext& ctx, int rank,
                        std::uint64_t phases, double flopsPerPhase) {
  if (ctx.restored && ctx.srs != nullptr) {
    try {
      co_await ctx.srs->restoreCheckpoint(rank);
    } catch (const reschedule::CheckpointUnavailableError&) {
      ctx.stopped = true;
      ctx.restoreFailed = true;
      co_return;
    }
  }
  for (std::uint64_t ph = ctx.startPhase; ph < phases; ++ph) {
    co_await ctx.world->compute(rank, flopsPerPhase);
    ctx.completedPhases = static_cast<std::size_t>(ph) + 1;
    if (ctx.srs == nullptr) continue;
    bool stop = false;
    co_await ctx.srs->checkIfStop(rank, &stop);
    if (stop) {
      ctx.srs->storeIteration(static_cast<std::size_t>(ph) + 1);
      ctx.stopped = true;
      co_return;
    }
  }
}

}  // namespace

MetaScheduler::MetaScheduler(core::AppManager& mgr, grid::Grid& grid,
                             services::Gis& gis, const services::Nws* nws,
                             reschedule::ActionJournal* journal,
                             FrontendOptions opts)
    : mgr_(&mgr),
      grid_(&grid),
      gis_(&gis),
      nws_(nws),
      journal_(journal),
      opts_(std::move(opts)),
      admission_(grid, gis, nws, opts_.slots, opts_.admission),
      brownout_(opts_.brownout) {
  GRADS_REQUIRE(!opts_.tenants.empty(), "MetaScheduler: no tenants");
  GRADS_REQUIRE(!opts_.slots.empty(), "MetaScheduler: no slots");
  GRADS_REQUIRE(opts_.flopsPerPhase > 0.0 && opts_.refFlopsPerSec > 0.0,
                "MetaScheduler: bad flops options");
  ledgers_.resize(opts_.tenants.size());
  tenants_.resize(opts_.tenants.size());
  queues_.resize(opts_.tenants.size());
  for (std::size_t i = 0; i < opts_.tenants.size(); ++i) {
    tenants_[i].rng =
        Rng(opts_.seed ^ (opts_.tenants[i].seed * 0x9e3779b97f4a7c15ULL));
  }
  freeSlots_ = opts_.slots;
}

sim::Engine& MetaScheduler::engine() const { return grid_->engine(); }

std::string MetaScheduler::appName(JobKey key) const {
  return "t" + std::to_string(jobTenant(key)) + ".j" +
         std::to_string(jobSeq(key));
}

double MetaScheduler::idealSeconds(const Job& job) const {
  return job.sizeFlops / opts_.refFlopsPerSec;
}

// --- Arrivals. ---

double MetaScheduler::arrivalRate(const TenantSpec& spec, double t) const {
  const double phase =
      kTwoPi * (t - spec.diurnalPhaseSec) / std::max(spec.diurnalPeriodSec, 1.0);
  const double r =
      spec.baseRatePerSec * (1.0 + spec.diurnalAmplitude * std::sin(phase));
  return r < 0.0 ? 0.0 : r;
}

double MetaScheduler::drawNextArrival(std::size_t tenant, double from) {
  const TenantSpec& spec = opts_.tenants[tenant];
  TenantRuntime& rt = tenants_[tenant];
  // Thinning for the non-homogeneous Poisson process: candidates at the
  // peak rate, accepted with probability rate(t)/rateMax.
  const double rateMax =
      spec.baseRatePerSec * (1.0 + std::abs(spec.diurnalAmplitude));
  if (rateMax <= 0.0) return -1.0;
  double t = from;
  for (int guard = 0; guard < (1 << 20); ++guard) {
    t += rt.rng.exponential(rateMax);
    if (t > opts_.horizonSec) return -1.0;
    if (rt.rng.uniform() * rateMax <= arrivalRate(spec, t)) return t;
  }
  return -1.0;
}

void MetaScheduler::armArrival(std::size_t tenant) {
  const double at = tenants_[tenant].nextArrivalAt;
  if (at < 0.0 || at > opts_.horizonSec) return;
  engine().scheduleDaemonAt(at, [this, tenant] { onArrival(tenant); });
}

void MetaScheduler::onArrival(std::size_t tenant) {
  TenantRuntime& rt = tenants_[tenant];
  const TenantSpec& spec = opts_.tenants[tenant];
  const double now = engine().now();
  double size = rt.rng.pareto(spec.paretoXmFlops, spec.paretoAlpha);
  if (spec.maxJobFlops > 0.0 && size > spec.maxJobFlops) {
    size = spec.maxJobFlops;
  }
  const JobKey key =
      makeJobKey(static_cast<std::uint32_t>(tenant), rt.nextSeq++);
  Job job;
  job.tier = spec.tier;
  job.sizeFlops = size;
  job.phases = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(size / opts_.flopsPerPhase)));
  job.submitAt = now;
  jobs_.emplace(key, job);
  noteInSystem();
  submit(key);
  rt.nextArrivalAt = drawNextArrival(tenant, now);
  armArrival(tenant);
}

void MetaScheduler::submit(JobKey key) {
  Job& job = jobs_.at(key);
  const std::size_t t = jobTenant(key);
  TenantLedger& led = ledgers_[t];
  ++led.submitted;
  const AdmissionDecision d = admission_.decide(
      job.tier, queues_[t].size(), static_cast<std::size_t>(queuedTotal_),
      backlogSeconds(), brownout_.level());
  if (d.admit) {
    job.state = JobState::kQueued;
    queues_[t].push_back(key);
    ++queuedTotal_;
    queuedFlops_ += job.sizeFlops;
    if (queuedTotal_ > peakQueueDepth_) peakQueueDepth_ = queuedTotal_;
    ++led.admitted;
    fire("admit");
    kickDispatch();
  } else {
    ++led.shed;
    ++job.sheds;
    fire("shed");
    scheduleResubmit(key, d.retryAfterSec);
  }
}

void MetaScheduler::scheduleResubmit(JobKey key, double retryAfterSec) {
  Job& job = jobs_.at(key);
  const std::size_t t = jobTenant(key);
  TenantLedger& led = ledgers_[t];
  const util::RetryPolicy& policy = opts_.tenants[t].resubmit;
  const double now = engine().now();
  if (job.attempts >= policy.maxAttempts) {
    ++led.abandoned;
    jobs_.erase(key);
    return;
  }
  // Honor the admission retry-after hint, but never come back sooner than
  // the tenant's own jittered backoff would.
  const double delay = std::max(
      retryAfterSec, policy.delaySec(job.attempts - 1, &tenants_[t].rng));
  if (now + delay > opts_.horizonSec) {
    // Simulated-time deadline: the retry would land past the submission
    // horizon — the generator gives up instead of queueing a ghost.
    ++led.abandoned;
    jobs_.erase(key);
    return;
  }
  ++job.attempts;
  ++led.resubmits;
  job.state = JobState::kRetryWait;
  const double due = now + delay;
  resubmitAt_[key] = due;
  engine().scheduleDaemonAt(due, [this, key] { onResubmit(key); });
}

void MetaScheduler::onResubmit(JobKey key) {
  if (jobs_.find(key) == jobs_.end()) return;  // dropped at the deadline
  resubmitAt_.erase(key);
  submit(key);
}

// --- Dispatch. ---

void MetaScheduler::kickDispatch() {
  if (kickPending_ || !started_) return;
  kickPending_ = true;
  engine().schedule(0.0, [this] {
    kickPending_ = false;
    pump();
  });
}

void MetaScheduler::pump() {
  // Unpark first: parked jobs already paid their checkpoint and hold
  // admitted-work obligations, so they outrank fresh dispatch. An empty
  // queue always unparks regardless of the brownout rung — holding a park
  // with nothing else to serve would strand the job forever.
  while (!freeSlots_.empty() && parkedCount_ > 0 &&
         (queuedTotal_ == 0 || !opts_.brownout.enabled ||
          brownout_.level() < BrownoutLevel::kPark)) {
    bool found = false;
    JobKey pick = 0;
    int bestTier = 0;
    double bestAt = 0.0;
    for (const auto& [key, job] : jobs_) {
      if (job.state != JobState::kParked) continue;
      if (!found || job.tier > bestTier ||
          (job.tier == bestTier && job.parkedAt < bestAt)) {
        found = true;
        pick = key;
        bestTier = job.tier;
        bestAt = job.parkedAt;
      }
    }
    if (!found) break;
    unpark(pick);
  }

  // Strict priority across tiers; stride (fair-share) scheduling within a
  // tier. The brownout ladder's first rung stops dispatching tier 0 — but
  // only while higher-tier work is actually waiting. Deferral reserves
  // capacity; it must never strand it (the deferred backlog itself keeps
  // pressure high, so an unconditional defer would livelock the ladder).
  bool priorityWaiting = false;
  for (std::size_t i = 0; i < opts_.tenants.size(); ++i) {
    if (opts_.tenants[i].tier >= 1 && !queues_[i].empty()) {
      priorityWaiting = true;
      break;
    }
  }
  const int minTier =
      (opts_.brownout.enabled && priorityWaiting &&
       brownout_.level() >= BrownoutLevel::kDeferLow)
          ? 1
          : 0;
  while (!freeSlots_.empty()) {
    int tier = -1;
    for (std::size_t i = 0; i < opts_.tenants.size(); ++i) {
      if (!queues_[i].empty() && opts_.tenants[i].tier >= minTier) {
        tier = std::max(tier, opts_.tenants[i].tier);
      }
    }
    if (tier < 0) break;
    bool found = false;
    std::size_t pick = 0;
    double best = 0.0;
    for (std::size_t i = 0; i < opts_.tenants.size(); ++i) {
      if (opts_.tenants[i].tier != tier || queues_[i].empty()) continue;
      if (!found || tenants_[i].stridePass < best) {
        found = true;
        pick = i;
        best = tenants_[i].stridePass;
      }
    }
    const JobKey key = queues_[pick].front();
    queues_[pick].pop_front();
    --queuedTotal_;
    queuedFlops_ -= jobs_.at(key).sizeFlops;
    tenants_[pick].stridePass +=
        1.0 / std::max(opts_.tenants[pick].weight, 1e-9);
    dispatchJob(key);
  }

  // Deferral accounting: free capacity exists but the ladder holds the
  // tier-0 queue heads back.
  if (minTier > 0 && !freeSlots_.empty()) {
    for (std::size_t i = 0; i < opts_.tenants.size(); ++i) {
      if (opts_.tenants[i].tier >= minTier || queues_[i].empty()) continue;
      ++ledgers_[i].deferrals;
      ++jobs_.at(queues_[i].front()).deferrals;
    }
  }

  maybePreempt();
  armTick();
}

void MetaScheduler::dispatchJob(JobKey key) {
  Job& job = jobs_.at(key);
  const double now = engine().now();
  const grid::NodeId node = freeSlots_.back();
  freeSlots_.pop_back();
  job.state = JobState::kRunning;
  job.node = node;
  job.lastStartAt = now;
  if (job.dispatchAt < 0.0) job.dispatchAt = now;
  ++ledgers_[jobTenant(key)].dispatched;
  integrateBusy();
  ++busyCount_;
  ++runningCount_;
  auto ctrl = std::make_shared<JobControl>(engine(), /*gateOpen=*/true);
  ctrl->slot->node = node;
  controls_[key] = ctrl;
  fire("dispatch");
  engine().spawn(runJob(key, ctrl), appName(key));
}

sim::Task MetaScheduler::runJob(JobKey key, std::shared_ptr<JobControl> ctrl) {
  const Job& job = jobs_.at(key);
  const std::uint64_t phases = job.phases;
  const double perPhase = job.sizeFlops / static_cast<double>(phases);

  core::Cop cop;
  cop.name = appName(key);
  cop.isMpi = false;
  cop.requiredSoftware = {services::software::kLocalBinder,
                          services::software::kSrsLibrary};
  cop.checkpointArrays = {{"state", opts_.checkpointBytes}};
  cop.perfModel = std::make_shared<SlotPerfModel>(*grid_, phases, perPhase);
  cop.mapper = std::make_shared<PinnedMapper>(ctrl->slot);
  cop.code = [phases, perPhase](core::LaunchContext& ctx, int rank) {
    return tenantJobBody(ctx, rank, phases, perPhase);
  };

  core::ManagerOptions mo = opts_.jobOptions;
  mo.journal = journal_;
  mo.relaunchGate = [this, key, ctrl](const std::string& /*app*/) {
    return gateTask(key, ctrl);
  };
  mo.retrySeed = opts_.seed ^ (key * 0x9e3779b97f4a7c15ULL);

  bool failed = false;
  try {
    co_await mgr_->run(cop, nullptr, mo, &ctrl->breakdown);
  } catch (const std::exception& e) {
    GRADS_WARN("metasched") << cop.name << " failed: " << e.what();
    failed = true;
  }
  onJobFinished(key, ctrl, failed);
}

sim::Task MetaScheduler::gateTask(JobKey key,
                                  std::shared_ptr<JobControl> ctrl) {
  if (ctrl->parkPending) onParkedAtGate(key, ctrl);
  co_await ctrl->gate.wait();
}

void MetaScheduler::onJobFinished(JobKey key, std::shared_ptr<JobControl> ctrl,
                                  bool failed) {
  const auto it = jobs_.find(key);
  if (it == jobs_.end()) return;
  const double now = engine().now();
  const Job job = it->second;
  const std::size_t t = jobTenant(key);
  TenantLedger& led = ledgers_[t];
  if (ctrl->parkPending) {
    // The stop flag raced a launch boundary (beginIncarnation cleared it)
    // and the job ran to completion: the preemption is moot. The manager's
    // defensive close already committed the journaled action.
    ctrl->parkPending = false;
    --pendingParks_;
  }
  integrateBusy();
  --busyCount_;
  --runningCount_;
  freeSlots_.push_back(job.node);

  // Surface the frontend's view of this run in its breakdown (satellite:
  // admission/shed/preempt/brownout counters ride RunBreakdown).
  ctrl->breakdown.admissionRetries = job.attempts - 1;
  ctrl->breakdown.admissionSheds = job.sheds;
  ctrl->breakdown.preemptParks = job.parks;
  ctrl->breakdown.brownoutDeferrals = job.deferrals;

  double slowdown = 0.0;
  if (failed) {
    ++led.failed;
  } else {
    ++led.completed;
    slowdown = (now - job.submitAt) / idealSeconds(job);
    led.slowdowns.push_back(slowdown);
  }
  jobs_.erase(it);
  controls_.erase(key);
  if (onJobComplete_) {
    JobStats s;
    s.app = appName(key);
    s.tenant = static_cast<std::uint32_t>(t);
    s.tier = job.tier;
    s.submitAt = job.submitAt;
    s.completeAt = now;
    s.slowdown = slowdown;
    s.failed = failed;
    s.breakdown = ctrl->breakdown;
    onJobComplete_(s);
  }
  kickDispatch();
}

// --- Preemption + brownout. ---

void MetaScheduler::maybePreempt() {
  if (!opts_.preempt.enabled || journal_ == nullptr || !freeSlots_.empty()) {
    return;
  }
  const double now = engine().now();
  while (pendingParks_ < opts_.preempt.maxConcurrent) {
    // Requester: the highest queued tier; only tiers above 0 may preempt.
    int reqTier = -1;
    JobKey reqHead = 0;
    std::int64_t queuedPriority = 0;
    for (std::size_t i = 0; i < opts_.tenants.size(); ++i) {
      if (queues_[i].empty()) continue;
      if (opts_.tenants[i].tier > 0) {
        queuedPriority += static_cast<std::int64_t>(queues_[i].size());
      }
      if (opts_.tenants[i].tier > reqTier) {
        reqTier = opts_.tenants[i].tier;
        reqHead = queues_[i].front();
      }
    }
    if (reqTier <= 0 || queuedPriority <= pendingParks_) return;
    const bool parkRung = opts_.brownout.enabled &&
                          brownout_.level() >= BrownoutLevel::kPark;
    const bool starving = now - jobs_.at(reqHead).submitAt >=
                          opts_.preempt.highTierMaxWaitSec;
    if (!parkRung && !starving) return;

    // Victim: lowest tier first, then most recently (re)started, then
    // lowest key — deterministic, and it evicts the least sunk cost.
    bool found = false;
    JobKey victim = 0;
    int vTier = 0;
    double vStart = 0.0;
    for (const auto& [key, job] : jobs_) {
      if (job.state != JobState::kRunning || job.tier >= reqTier) continue;
      const auto cit = controls_.find(key);
      if (cit == controls_.end() || cit->second->parkPending) continue;
      if (now - job.lastStartAt < opts_.preempt.minRunSec) continue;
      if (now - tenants_[jobTenant(key)].lastPreemptAt <
          opts_.preempt.cooldownSec) {
        continue;
      }
      if (journal_->openAction(appName(key)) != nullptr) continue;
      if (!found || job.tier < vTier ||
          (job.tier == vTier && job.lastStartAt > vStart)) {
        found = true;
        victim = key;
        vTier = job.tier;
        vStart = job.lastStartAt;
      }
    }
    if (!found || !preempt(victim)) return;
  }
}

bool MetaScheduler::preempt(JobKey victim) {
  Job& job = jobs_.at(victim);
  const std::string name = appName(victim);
  // Deliver the stop first: if the app has no live incarnation yet the
  // flag would be cleared by the next beginIncarnation and the park would
  // never happen — skip this victim.
  if (!mgr_->requestStop(name)) return false;
  // The park rides the journal's prepare phase: a crash between here and
  // the park resolves as a rollback (presumed abort) and the job simply
  // keeps its pre-preemption identity after restore.
  journal_->open(name, reschedule::ActionKind::kPreempt, {job.node});
  auto ctrl = controls_.at(victim);
  ctrl->parkPending = true;
  ctrl->gate.close();
  ++pendingParks_;
  tenants_[jobTenant(victim)].lastPreemptAt = engine().now();
  ++ledgers_[jobTenant(victim)].preempted;
  fire("preempt");
  return true;
}

void MetaScheduler::onParkedAtGate(JobKey key,
                                   const std::shared_ptr<JobControl>& ctrl) {
  Job& job = jobs_.at(key);
  ctrl->parkPending = false;
  --pendingParks_;
  job.state = JobState::kParked;
  job.parkedAt = engine().now();
  ++job.parks;
  ++ledgers_[jobTenant(key)].parks;
  integrateBusy();
  --busyCount_;
  --runningCount_;
  ++parkedCount_;
  freeSlots_.push_back(job.node);
  job.node = grid::kNoId;
  fire("park");
  kickDispatch();
}

void MetaScheduler::unpark(JobKey key) {
  Job& job = jobs_.at(key);
  auto ctrl = controls_.at(key);
  const grid::NodeId node = freeSlots_.back();
  freeSlots_.pop_back();
  job.state = JobState::kRunning;
  job.node = node;
  job.lastStartAt = engine().now();
  ctrl->slot->node = node;
  integrateBusy();
  ++busyCount_;
  ++runningCount_;
  --parkedCount_;
  ++ledgers_[jobTenant(key)].unparked;
  fire("unpark");
  ctrl->gate.open();
}

// --- Control loop. ---

void MetaScheduler::start() {
  GRADS_REQUIRE(!started_, "MetaScheduler::start: already started");
  started_ = true;
  busyStamp_ = engine().now();
  for (std::size_t i = 0; i < opts_.tenants.size(); ++i) {
    tenants_[i].nextArrivalAt = drawNextArrival(i, engine().now());
    armArrival(i);
  }
  armTick();
}

void MetaScheduler::resumeAfterRestore() {
  GRADS_REQUIRE(!started_,
                "MetaScheduler::resumeAfterRestore: already started");
  started_ = true;
  // Re-arm generators and pending resubmits from the decoded schedule.
  for (std::size_t i = 0; i < opts_.tenants.size(); ++i) armArrival(i);
  for (const auto& [key, due] : resubmitAt_) {
    const JobKey k = key;
    engine().scheduleDaemonAt(due, [this, k] { onResubmit(k); });
  }
  // Respawn live jobs in key order (restore parity depends only on both
  // arms respawning identically). A parked job waits behind a closed gate;
  // its journaled preempt action was rolled back by recovery, so the
  // eventual unpark relaunches it as a plain restore.
  for (const auto& [key, job] : jobs_) {
    if (job.state != JobState::kRunning && job.state != JobState::kParked) {
      continue;
    }
    auto ctrl = std::make_shared<JobControl>(
        engine(), /*gateOpen=*/job.state == JobState::kRunning);
    ctrl->slot->node = job.node;
    controls_[key] = ctrl;
    engine().spawn(runJob(key, ctrl), appName(key));
  }
  armTick();
  kickDispatch();
}

void MetaScheduler::armTick() {
  if (tickPending_ || !started_) return;
  const double now = engine().now();
  const double endAt = std::max(opts_.horizonSec, opts_.hardDeadlineSec);
  // The tick is a *non-daemon* event: it holds the engine open through the
  // submission window and for as long as queued/parked work or pending
  // resubmits exist — otherwise run() would drain with work stranded
  // behind a brownout deferral or a closed gate.
  const bool liveWork =
      queuedTotal_ > 0 || parkedCount_ > 0 || !resubmitAt_.empty();
  if (now >= endAt && !liveWork) return;
  tickPending_ = true;
  engine().schedule(opts_.controlPeriodSec, [this] { controlTick(); });
}

void MetaScheduler::controlTick() {
  tickPending_ = false;
  const double now = engine().now();
  if (!deadlineFired_ && opts_.hardDeadlineSec > 0.0 &&
      now + 1e-9 >= opts_.hardDeadlineSec) {
    applyDeadline();
  }
  integrateBusy();
  if (opts_.brownout.enabled) {
    const BrownoutLevel before = brownout_.level();
    brownout_.update(pressure(), now);
    if (brownout_.level() != before) {
      GRADS_INFO("metasched")
          << "brownout " << brownoutLevelName(before) << " -> "
          << brownoutLevelName(brownout_.level()) << " at t=" << now
          << " (pressure " << pressure() << ")";
      fire("brownout");
    }
  }
  ++queueSamples_;
  queueDepthSum_ += static_cast<double>(queuedTotal_);
  if (queuedTotal_ > peakQueueDepth_) peakQueueDepth_ = queuedTotal_;
  if (onSample_) {
    onSample_(now, queuedTotal_, runningCount_, parkedCount_, pressure(),
              brownout_.level());
  }
  pump();  // also re-arms the tick
}

void MetaScheduler::applyDeadline() {
  deadlineFired_ = true;
  std::int64_t dropped = 0;
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    for (const JobKey key : queues_[i]) {
      ++ledgers_[i].unserved;
      ++dropped;
      jobs_.erase(key);
    }
    queues_[i].clear();
  }
  queuedTotal_ = 0;
  queuedFlops_ = 0.0;
  for (const auto& [key, due] : resubmitAt_) {
    ++ledgers_[jobTenant(key)].abandoned;
    jobs_.erase(key);
  }
  resubmitAt_.clear();
  if (dropped > 0) {
    GRADS_WARN("metasched") << "hard deadline: dropped " << dropped
                            << " queued jobs as unserved";
  }
}

double MetaScheduler::backlogSeconds() const {
  if (queuedFlops_ <= 0.0) return 0.0;
  const double cap = admission_.capacityFlops();
  if (cap <= 0.0) return opts_.admission.maxBacklogSec * 1e6;
  return queuedFlops_ / cap;
}

double MetaScheduler::pressure() const {
  const AdmissionOptions& a = opts_.admission;
  double p = 0.0;
  if (a.maxQueuedTotal > 0) {
    p = static_cast<double>(queuedTotal_) /
        static_cast<double>(a.maxQueuedTotal);
  }
  if (a.maxBacklogSec > 0.0) {
    p = std::max(p, backlogSeconds() / a.maxBacklogSec);
  }
  return p;
}

void MetaScheduler::integrateBusy() {
  const double now = engine().now();
  busySlotSec_ += static_cast<double>(busyCount_) * (now - busyStamp_);
  busyStamp_ = now;
}

void MetaScheduler::noteInSystem() {
  const auto n = static_cast<std::int64_t>(jobs_.size());
  if (n > peakInSystem_) peakInSystem_ = n;
}

void MetaScheduler::fire(const char* kind) {
  if (onTransition_) onTransition_(kind);
}

// --- Observability. ---

FrontendTotals MetaScheduler::totals() const {
  FrontendTotals t;
  for (const TenantLedger& led : ledgers_) {
    t.submitted += led.submitted;
    t.admitted += led.admitted;
    t.shed += led.shed;
    t.resubmits += led.resubmits;
    t.abandoned += led.abandoned;
    t.dispatched += led.dispatched;
    t.completed += led.completed;
    t.failed += led.failed;
    t.preempted += led.preempted;
    t.parks += led.parks;
    t.unparked += led.unparked;
    t.deferrals += led.deferrals;
    t.unserved += led.unserved;
  }
  t.brownoutEscalations = brownout_.escalations();
  t.brownoutDeescalations = brownout_.deescalations();
  t.peakQueueDepth = peakQueueDepth_;
  t.peakInSystem = peakInSystem_;
  t.busySlotSeconds =
      busySlotSec_ +
      static_cast<double>(busyCount_) * (engine().now() - busyStamp_);
  t.meanQueueDepth =
      queueSamples_ > 0
          ? queueDepthSum_ / static_cast<double>(queueSamples_)
          : 0.0;
  return t;
}

std::vector<double> MetaScheduler::allSlowdowns() const {
  std::vector<double> all;
  for (const TenantLedger& led : ledgers_) {
    all.insert(all.end(), led.slowdowns.begin(), led.slowdowns.end());
  }
  return all;
}

void MetaScheduler::foldDigest(util::DigestStream& ds) const {
  for (const TenantLedger& led : ledgers_) {
    ds.put(static_cast<std::uint64_t>(led.submitted));
    ds.put(static_cast<std::uint64_t>(led.admitted));
    ds.put(static_cast<std::uint64_t>(led.shed));
    ds.put(static_cast<std::uint64_t>(led.resubmits));
    ds.put(static_cast<std::uint64_t>(led.abandoned));
    ds.put(static_cast<std::uint64_t>(led.dispatched));
    ds.put(static_cast<std::uint64_t>(led.completed));
    ds.put(static_cast<std::uint64_t>(led.failed));
    ds.put(static_cast<std::uint64_t>(led.preempted));
    ds.put(static_cast<std::uint64_t>(led.parks));
    ds.put(static_cast<std::uint64_t>(led.unparked));
    ds.put(static_cast<std::uint64_t>(led.deferrals));
    ds.put(static_cast<std::uint64_t>(led.unserved));
    for (const double s : led.slowdowns) ds.put(s);
  }
  ds.put(static_cast<std::uint64_t>(brownout_.level()));
  ds.put(static_cast<std::uint64_t>(brownout_.escalations()));
  ds.put(static_cast<std::uint64_t>(brownout_.deescalations()));
  ds.put(static_cast<std::uint64_t>(peakQueueDepth_));
  ds.put(static_cast<std::uint64_t>(peakInSystem_));
  ds.put(busySlotSec_);
  ds.put(static_cast<std::uint64_t>(queuedTotal_));
  ds.put(static_cast<std::uint64_t>(jobs_.size()));
}

// --- Snapshot participation. ---

void MetaScheduler::encodeJobRecord(core::SnapshotWriter& w,
                                    const Job& job) const {
  w.putI64(job.tier);
  w.putF64(job.sizeFlops);
  w.putU64(job.phases);
  w.putF64(job.submitAt);
  w.putF64(job.dispatchAt);
  w.putF64(job.lastStartAt);
  w.putF64(job.parkedAt);
  w.putI64(job.attempts);
  w.putI64(job.sheds);
  w.putI64(job.parks);
  w.putI64(job.deferrals);
  w.putI64(static_cast<std::int64_t>(job.state));
  w.putU64(static_cast<std::uint64_t>(job.node));
}

MetaScheduler::Job MetaScheduler::decodeJobRecord(
    core::SnapshotReader& r) const {
  Job job;
  job.tier = static_cast<int>(r.getI64());
  job.sizeFlops = r.getF64();
  job.phases = r.getU64();
  job.submitAt = r.getF64();
  job.dispatchAt = r.getF64();
  job.lastStartAt = r.getF64();
  job.parkedAt = r.getF64();
  job.attempts = static_cast<int>(r.getI64());
  job.sheds = static_cast<int>(r.getI64());
  job.parks = static_cast<int>(r.getI64());
  job.deferrals = static_cast<int>(r.getI64());
  job.state = static_cast<JobState>(r.getI64());
  job.node = static_cast<grid::NodeId>(r.getU64());
  return job;
}

void MetaScheduler::encodeState(core::SnapshotWriter& w) const {
  w.putU64(ledgers_.size());
  for (const TenantLedger& led : ledgers_) led.encodeState(w);
  for (const TenantRuntime& rt : tenants_) {
    const RngState st = rt.rng.state();
    w.putU64(st.s[0]);
    w.putU64(st.s[1]);
    w.putU64(st.s[2]);
    w.putU64(st.s[3]);
    w.putBool(st.haveSpare);
    w.putF64(st.spare);
    w.putF64(rt.nextArrivalAt);
    w.putU64(rt.nextSeq);
    w.putF64(rt.stridePass);
    w.putF64(rt.lastPreemptAt);
  }
  w.putU64(jobs_.size());
  for (const auto& [key, job] : jobs_) {
    w.putU64(key);
    encodeJobRecord(w, job);
  }
  for (const auto& q : queues_) {
    w.putU64(q.size());
    for (const JobKey k : q) w.putU64(k);
  }
  w.putU64(resubmitAt_.size());
  for (const auto& [key, due] : resubmitAt_) {
    w.putU64(key);
    w.putF64(due);
  }
  w.putU64(freeSlots_.size());
  for (const grid::NodeId n : freeSlots_) {
    w.putU64(static_cast<std::uint64_t>(n));
  }
  w.putI64(peakQueueDepth_);
  w.putI64(peakInSystem_);
  w.putF64(queueDepthSum_);
  w.putI64(queueSamples_);
  w.putF64(busySlotSec_);
  w.putF64(busyStamp_);
  w.putI64(busyCount_);
  w.putBool(deadlineFired_);
  brownout_.encodeState(w);
}

void MetaScheduler::decodeState(core::SnapshotReader& r) {
  const std::uint64_t nTenants = r.getU64();
  GRADS_REQUIRE(nTenants == ledgers_.size(),
                "MetaScheduler::decodeState: tenant count mismatch");
  for (TenantLedger& led : ledgers_) led.decodeState(r);
  for (TenantRuntime& rt : tenants_) {
    RngState st;
    st.s[0] = r.getU64();
    st.s[1] = r.getU64();
    st.s[2] = r.getU64();
    st.s[3] = r.getU64();
    st.haveSpare = r.getBool();
    st.spare = r.getF64();
    rt.rng.setState(st);
    rt.nextArrivalAt = r.getF64();
    rt.nextSeq = static_cast<std::uint32_t>(r.getU64());
    rt.stridePass = r.getF64();
    rt.lastPreemptAt = r.getF64();
  }
  jobs_.clear();
  const std::uint64_t nJobs = r.getU64();
  for (std::uint64_t i = 0; i < nJobs; ++i) {
    const JobKey key = r.getU64();
    jobs_.emplace(key, decodeJobRecord(r));
  }
  queuedTotal_ = 0;
  queuedFlops_ = 0.0;
  for (auto& q : queues_) {
    q.clear();
    const std::uint64_t n = r.getU64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const JobKey key = r.getU64();
      q.push_back(key);
      ++queuedTotal_;
      queuedFlops_ += jobs_.at(key).sizeFlops;
    }
  }
  resubmitAt_.clear();
  const std::uint64_t nResubmit = r.getU64();
  for (std::uint64_t i = 0; i < nResubmit; ++i) {
    const JobKey key = r.getU64();
    resubmitAt_[key] = r.getF64();
  }
  freeSlots_.clear();
  const std::uint64_t nSlots = r.getU64();
  for (std::uint64_t i = 0; i < nSlots; ++i) {
    freeSlots_.push_back(static_cast<grid::NodeId>(r.getU64()));
  }
  peakQueueDepth_ = r.getI64();
  peakInSystem_ = r.getI64();
  queueDepthSum_ = r.getF64();
  queueSamples_ = r.getI64();
  busySlotSec_ = r.getF64();
  busyStamp_ = r.getF64();
  busyCount_ = r.getI64();
  deadlineFired_ = r.getBool();
  brownout_.decodeState(r);
  // Derived gauges rebuild from the job table; park-pending stops are
  // runtime-only (journal recovery rolled their actions back).
  runningCount_ = 0;
  parkedCount_ = 0;
  for (const auto& [key, job] : jobs_) {
    (void)key;
    if (job.state == JobState::kRunning) ++runningCount_;
    if (job.state == JobState::kParked) ++parkedCount_;
  }
  pendingParks_ = 0;
  controls_.clear();
}

}  // namespace grads::metasched

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/app_manager.hpp"
#include "core/snapshot.hpp"
#include "grid/grid.hpp"
#include "metasched/admission.hpp"
#include "metasched/types.hpp"
#include "reschedule/journal.hpp"
#include "services/gis.hpp"
#include "services/nws.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace grads::metasched {

/// 32:32 packed (tenant, sequence) job identity. Stable across snapshot /
/// restore and cheap to order — every deterministic tie-break in the
/// frontend bottoms out on this key.
using JobKey = std::uint64_t;

inline JobKey makeJobKey(std::uint32_t tenant, std::uint32_t seq) {
  return (static_cast<JobKey>(tenant) << 32) | seq;
}
inline std::uint32_t jobTenant(JobKey key) {
  return static_cast<std::uint32_t>(key >> 32);
}
inline std::uint32_t jobSeq(JobKey key) {
  return static_cast<std::uint32_t>(key & 0xffffffffu);
}

enum class JobState : int {
  kQueued = 0,     ///< admitted, waiting for a slot
  kRetryWait = 1,  ///< shed, resubmission scheduled (retry-after + backoff)
  kRunning = 2,    ///< dispatched to the application manager
  kParked = 3,     ///< preempted: checkpointed, off its node, gate closed
};

/// Shared between a job's control block and its COP mapper: the mapper pins
/// each (re)launch to whatever slot the frontend assigned last, so an
/// unpark lands on the new slot without a fresh selection pass.
struct PinnedSlot {
  grid::NodeId node = grid::kNoId;
};

struct FrontendOptions {
  std::vector<TenantSpec> tenants;
  /// Dedicated single-rank slots the frontend schedules onto. The slot pool
  /// — not GIS reservation — is the unit of capacity here.
  std::vector<grid::NodeId> slots;
  /// Arrivals (and resubmits) stop at this virtual time.
  double horizonSec = 3600.0;
  /// Hard deadline: jobs still queued here are dropped as unserved (the
  /// "timeout collapse" the unmitigated arm exhibits). 0 = run to drain.
  double hardDeadlineSec = 0.0;
  double controlPeriodSec = 60.0;
  /// Checkpoint quantum: jobs poll the RSS stop flag every ~this many flops,
  /// bounding preemption latency to one phase + one checkpoint write.
  double flopsPerPhase = 1e9;
  double checkpointBytes = 1 << 20;
  /// Ideal service rate used as the slowdown denominator.
  double refFlopsPerSec = 1e9;
  AdmissionOptions admission;
  BrownoutOptions brownout;
  PreemptOptions preempt;
  /// Template for each job's manager run; the frontend fills in the journal,
  /// relaunch gate, and per-job retry seed.
  core::ManagerOptions jobOptions;
  std::uint64_t seed = 0x7e47a5cdULL;
};

/// Aggregate counters across all tenants (plus frontend-global gauges).
struct FrontendTotals {
  std::int64_t submitted = 0;
  std::int64_t admitted = 0;
  std::int64_t shed = 0;
  std::int64_t resubmits = 0;
  std::int64_t abandoned = 0;
  std::int64_t dispatched = 0;
  std::int64_t completed = 0;
  std::int64_t failed = 0;
  std::int64_t preempted = 0;
  std::int64_t parks = 0;
  std::int64_t unparked = 0;
  std::int64_t deferrals = 0;
  std::int64_t unserved = 0;
  std::int64_t brownoutEscalations = 0;
  std::int64_t brownoutDeescalations = 0;
  std::int64_t peakQueueDepth = 0;
  std::int64_t peakInSystem = 0;  ///< queued + retry-wait + running + parked
  double busySlotSeconds = 0.0;
  double meanQueueDepth = 0.0;
};

/// Per-job completion report (fed to campaign CSVs and tests).
struct JobStats {
  std::string app;
  std::uint32_t tenant = 0;
  int tier = 0;
  double submitAt = 0.0;
  double completeAt = 0.0;
  double slowdown = 0.0;
  bool failed = false;
  core::RunBreakdown breakdown;
};

/// Multi-tenant submission frontend over core::AppManager: open-loop
/// arrival generators feed per-tenant queues behind an admission valve;
/// a stride (fair-share) scheduler with strict priority tiers dispatches
/// onto a fixed slot pool; a brownout ladder sheds service predictably
/// under overload; and a preemption governor checkpoint-and-parks victims
/// through the ActionJournal prepare->commit path.
///
/// All frontend state (queues, ledgers, RNG streams, brownout rung, busy
/// accounting) is Snapshottable, so control-plane crash-restart extends to
/// the metascheduler: decode rebuilds the data, resumeAfterRestore()
/// re-arms the daemons and respawns live jobs exactly once.
class MetaScheduler : public core::Snapshottable {
 public:
  MetaScheduler(core::AppManager& mgr, grid::Grid& grid, services::Gis& gis,
                const services::Nws* nws, reschedule::ActionJournal* journal,
                FrontendOptions opts);

  /// Fresh start: draws first arrivals and arms the control loop. Once.
  void start();
  /// Restore protocol: after decodeState (and journal recovery), re-arm
  /// generators/ticks and respawn every running/parked job in key order.
  /// Mutually exclusive with start(); also once.
  void resumeAfterRestore();

  // --- Observability. ---
  FrontendTotals totals() const;
  const std::vector<TenantLedger>& ledgers() const { return ledgers_; }
  BrownoutLevel brownoutLevel() const { return brownout_.level(); }
  std::int64_t queueDepth() const { return queuedTotal_; }
  std::int64_t runningJobs() const { return runningCount_; }
  std::int64_t parkedJobs() const { return parkedCount_; }
  std::int64_t jobsInSystem() const {
    return static_cast<std::int64_t>(jobs_.size());
  }
  /// True when every admitted job reached a terminal state (nothing queued,
  /// running, or parked) — the crash sweep's completion criterion.
  bool drained() const {
    return queuedTotal_ == 0 && runningCount_ == 0 && parkedCount_ == 0;
  }
  /// All slowdown samples across tenants (campaign percentile input).
  std::vector<double> allSlowdowns() const;
  /// Deterministic digest of the full frontend outcome (ledgers, gauges,
  /// brownout rung) for the replay-divergence oracle.
  void foldDigest(util::DigestStream& ds) const;

  /// Per-sample hook from the control loop: (now, queued, running, parked,
  /// pressure, brownout rung). Campaign time-series CSV.
  void setOnSample(
      std::function<void(double, std::int64_t, std::int64_t, std::int64_t,
                         double, BrownoutLevel)>
          fn) {
    onSample_ = std::move(fn);
  }
  /// Per-completion hook (stats + the job's RunBreakdown).
  void setOnJobComplete(std::function<void(const JobStats&)> fn) {
    onJobComplete_ = std::move(fn);
  }
  /// Fired on every frontend state transition ("admit", "shed", "dispatch",
  /// "preempt", "park", "unpark", "brownout") — the crash-point sweep's
  /// kill hook, mirroring ActionJournal::setOnTransition.
  void setOnTransition(std::function<void(const char*)> fn) {
    onTransition_ = std::move(fn);
  }

  // --- Snapshot participation. ---
  const char* snapshotSection() const override { return "metasched.frontend"; }
  void encodeState(core::SnapshotWriter& w) const override;
  void decodeState(core::SnapshotReader& r) override;

  /// Current admission pressure in [0, inf): max of queue-depth and
  /// backlog-seconds utilization of their admission bounds.
  double pressure() const;
  double backlogSeconds() const;

 private:
  struct Job {
    int tier = 0;
    double sizeFlops = 0.0;
    std::uint64_t phases = 1;
    double submitAt = 0.0;     ///< first submission attempt
    double dispatchAt = -1.0;  ///< first dispatch
    double lastStartAt = -1.0; ///< latest dispatch or unpark (minRunSec anchor)
    double parkedAt = -1.0;
    int attempts = 1;          ///< submission attempts so far
    int sheds = 0;
    int parks = 0;
    int deferrals = 0;
    JobState state = JobState::kQueued;
    grid::NodeId node = grid::kNoId;
  };

  /// Runtime-only control block (never serialized; rebuilt on restore).
  struct JobControl {
    JobControl(sim::Engine& eng, bool gateOpen) : gate(eng, gateOpen) {}
    sim::Gate gate;
    bool parkPending = false;
    std::shared_ptr<PinnedSlot> slot = std::make_shared<PinnedSlot>();
    core::RunBreakdown breakdown;
  };

  struct TenantRuntime {
    Rng rng{1};
    double nextArrivalAt = -1.0;  ///< < 0 or past horizon = stream exhausted
    std::uint32_t nextSeq = 0;
    double stridePass = 0.0;
    double lastPreemptAt = -1e300;  ///< victim-side cooldown anchor
  };

  sim::Engine& engine() const;
  std::string appName(JobKey key) const;
  double idealSeconds(const Job& job) const;
  void encodeJobRecord(core::SnapshotWriter& w, const Job& job) const;
  Job decodeJobRecord(core::SnapshotReader& r) const;

  // Arrivals.
  double arrivalRate(const TenantSpec& spec, double t) const;
  double drawNextArrival(std::size_t tenant, double from);
  void armArrival(std::size_t tenant);
  void onArrival(std::size_t tenant);
  void submit(JobKey key);
  void scheduleResubmit(JobKey key, double retryAfterSec);
  void onResubmit(JobKey key);

  // Dispatch.
  void kickDispatch();
  void pump();
  void dispatchJob(JobKey key);
  sim::Task runJob(JobKey key, std::shared_ptr<JobControl> ctrl);
  sim::Task gateTask(JobKey key, std::shared_ptr<JobControl> ctrl);
  void onJobFinished(JobKey key, std::shared_ptr<JobControl> ctrl,
                     bool failed);

  // Preemption + brownout.
  void maybePreempt();
  bool preempt(JobKey victim);
  void onParkedAtGate(JobKey key, const std::shared_ptr<JobControl>& ctrl);
  void unpark(JobKey key);

  // Control loop.
  void controlTick();
  void armTick();
  void applyDeadline();
  void integrateBusy();
  void noteInSystem();
  void fire(const char* kind);

  core::AppManager* mgr_;      // grads: transient(wiring, re-bound at construction)
  grid::Grid* grid_;           // grads: transient(wiring, re-bound at construction)
  services::Gis* gis_;         // grads: transient(wiring, re-bound at construction)
  const services::Nws* nws_;   // grads: transient(wiring, re-bound at construction)
  reschedule::ActionJournal* journal_;  // grads: transient(wiring, re-bound at construction)
  FrontendOptions opts_;       // grads: transient(construction-time config)
  AdmissionController admission_;  // grads: transient(stateless policy over wiring + config)
  BrownoutController brownout_;

  std::vector<TenantLedger> ledgers_;
  std::vector<TenantRuntime> tenants_;
  std::map<JobKey, Job> jobs_;  ///< every non-terminal job
  std::vector<std::deque<JobKey>> queues_;
  std::map<JobKey, double> resubmitAt_;
  /// Runtime stop-handles; journal recovery rolls parked actions back.
  // grads: transient(runtime stop-handles, cleared on decode - journal recovery rolls their actions back)
  std::map<JobKey, std::shared_ptr<JobControl>> controls_;
  std::vector<grid::NodeId> freeSlots_;

  std::int64_t queuedTotal_ = 0;   // grads: transient(derived gauge, rebuilt from queues_ on decode)
  double queuedFlops_ = 0.0;       // grads: transient(derived gauge, rebuilt from queues_ on decode)
  std::int64_t runningCount_ = 0;  // grads: transient(derived gauge, rebuilt from jobs_ on decode)
  std::int64_t parkedCount_ = 0;   // grads: transient(derived gauge, rebuilt from jobs_ on decode)
  // grads: transient(runtime only - journal recovery rolled the park actions back)
  std::int64_t pendingParks_ = 0;
  std::int64_t peakQueueDepth_ = 0;
  std::int64_t peakInSystem_ = 0;
  double queueDepthSum_ = 0.0;
  std::int64_t queueSamples_ = 0;
  double busySlotSec_ = 0.0;
  double busyStamp_ = 0.0;
  std::int64_t busyCount_ = 0;
  bool started_ = false;  // grads: transient(arm-once flag - restore re-arms daemons explicitly)
  bool deadlineFired_ = false;
  bool kickPending_ = false;  // grads: transient(pending-event latch, re-armed after restore)
  bool tickPending_ = false;  // grads: transient(pending-event latch, re-armed after restore)

  std::function<void(double, std::int64_t, std::int64_t, std::int64_t, double,
                     BrownoutLevel)>
      onSample_;  // grads: transient(observer callback, re-registered by the driver)
  // grads: transient(observer callback, re-registered by the driver)
  std::function<void(const JobStats&)> onJobComplete_;
  // grads: transient(observer callback, re-registered by the driver)
  std::function<void(const char*)> onTransition_;
};

}  // namespace grads::metasched

#include "autopilot/contract.hpp"

#include <numeric>

#include "util/error.hpp"
#include "util/log.hpp"

namespace grads::autopilot {

PerformanceContract::PerformanceContract(std::string app, Predictor predictor)
    : app_(std::move(app)), predictor_(std::move(predictor)) {
  GRADS_REQUIRE(static_cast<bool>(predictor_),
                "PerformanceContract: empty predictor");
}

double PerformanceContract::predictedPhaseSeconds(std::size_t phase) const {
  const double p = predictor_(phase);
  GRADS_REQUIRE(p > 0.0, "PerformanceContract: non-positive prediction");
  return p;
}

void PerformanceContract::updateTerms(Predictor predictor) {
  GRADS_REQUIRE(static_cast<bool>(predictor),
                "PerformanceContract::updateTerms: empty predictor");
  predictor_ = std::move(predictor);
}

ContractMonitor::ContractMonitor(sim::Engine& engine,
                                 PerformanceContract contract)
    : ContractMonitor(engine, std::move(contract), Options{}) {}

ContractMonitor::ContractMonitor(sim::Engine& engine,
                                 PerformanceContract contract, Options options)
    : engine_(&engine),
      contract_(std::move(contract)),
      opts_(options),
      upper_(options.upperTolerance),
      lower_(options.lowerTolerance) {
  GRADS_REQUIRE(opts_.upperTolerance > 1.0,
                "ContractMonitor: upper tolerance must exceed 1");
  GRADS_REQUIRE(opts_.lowerTolerance > 0.0 && opts_.lowerTolerance < 1.0,
                "ContractMonitor: lower tolerance must be in (0,1)");
  GRADS_REQUIRE(opts_.window >= 1, "ContractMonitor: empty window");
}

void ContractMonitor::attachTo(AutopilotManager& manager,
                               const std::string& channel) {
  manager.attach(channel,
                 [this](const Reading& r) { onPhaseTime(r.value); });
}

void ContractMonitor::restoreRuntimeState(double upper, double lower,
                                          std::size_t phase,
                                          std::size_t violations,
                                          double lastRatio,
                                          std::deque<double> ratios) {
  GRADS_REQUIRE(upper > 1.0 && lower > 0.0 && lower < 1.0,
                "ContractMonitor::restoreRuntimeState: bad tolerance band");
  upper_ = upper;
  lower_ = lower;
  phase_ = phase;
  violations_ = violations;
  lastRatio_ = lastRatio;
  ratios_ = std::move(ratios);
}

double ContractMonitor::averageRatio() const {
  if (ratios_.empty()) return lastRatio_;
  return std::accumulate(ratios_.begin(), ratios_.end(), 0.0) /
         static_cast<double>(ratios_.size());
}

double ContractMonitor::trend() const {
  if (ratios_.size() < 2) return 0.0;
  return (ratios_.back() - ratios_.front()) /
         static_cast<double>(ratios_.size() - 1);
}

void ContractMonitor::confirmAndRaise(double ratio) {
  const double avg = averageRatio();
  bool confirmed = false;
  if (opts_.mode == DecisionMode::kThresholdAverage) {
    // Paper §4.1.1: "the contract monitor calculates the average of the
    // computed ratios. If the average is greater than the upper tolerance
    // limit, it contacts the rescheduler."
    confirmed = avg > upper_;
  } else {
    const double score = fuzzy_.infer({avg, trend()});
    confirmed = score >= opts_.fuzzyThreshold;
  }
  if (!confirmed) return;

  ++violations_;
  ViolationReport report{contract_.app(), phase_, ratio,
                         avg,             engine_->now(), upper_};
  GRADS_INFO("contract") << contract_.app() << ": violation at phase "
                         << phase_ << " ratio=" << ratio << " avg=" << avg;
  RescheduleOutcome outcome = RescheduleOutcome::kDeclined;
  if (request_) outcome = request_(report);
  if (viewer_ != nullptr) {
    viewer_->recordViolation(
        contract_.app(),
        ContractViewer::ViolationRecord{
            engine_->now(), phase_, avg,
            outcome == RescheduleOutcome::kMigrated});
  }
  if (outcome == RescheduleOutcome::kDeclined) {
    // "If the rescheduler chooses not to migrate the application, the
    // contract monitor adjusts its tolerance limits to new values." A
    // governor-suppressed violation is different: the limits stay put so
    // repeated evidence keeps reaching the governor's quorum window.
    upper_ = std::max(upper_ * 1.1, avg * 1.1);
    GRADS_DEBUG("contract") << contract_.app()
                            << ": rescheduler declined; upper tolerance now "
                            << upper_;
  }
}

void ContractMonitor::onPhaseTime(double actualSeconds) {
  if (!enabled_) return;
  GRADS_REQUIRE(actualSeconds >= 0.0, "ContractMonitor: negative phase time");
  const double predicted = contract_.predictedPhaseSeconds(phase_);
  const double ratio = actualSeconds / predicted;
  lastRatio_ = ratio;
  if (viewer_ != nullptr) {
    viewer_->recordPhase(contract_.app(),
                         ContractViewer::PhaseRecord{engine_->now(), phase_,
                                                     predicted, actualSeconds,
                                                     ratio, upper_, lower_});
  }
  ratios_.push_back(ratio);
  if (ratios_.size() > opts_.window) ratios_.pop_front();
  ++phase_;

  if (ratio > upper_) {
    confirmAndRaise(ratio);
  } else if (ratio < lower_) {
    // "when a given ratio is less than the lower tolerance limit, the
    // contract monitor calculates the average of the ratios and lowers the
    // tolerance limits, if necessary."
    const double avg = averageRatio();
    if (avg < lower_) {
      lower_ = std::max(0.05, avg * 0.9);
      upper_ = std::max(1.0 + (upper_ - 1.0) * 0.9, 1.05);
      GRADS_DEBUG("contract") << contract_.app()
                              << ": tightened tolerances to [" << lower_
                              << ", " << upper_ << "]";
    }
  }
}

}  // namespace grads::autopilot

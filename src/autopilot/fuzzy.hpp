#pragma once

#include <map>
#include <string>
#include <vector>

namespace grads::autopilot {

/// Triangular membership function over [a, c] peaking at b.
struct TriangularMf {
  double a = 0.0;
  double b = 0.5;
  double c = 1.0;
  double grade(double x) const;
};

/// A linguistic variable: named fuzzy terms over a crisp range.
struct FuzzyVariable {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
  std::map<std::string, TriangularMf> terms;
};

/// IF in0 is t0 AND in1 is t1 ... THEN out is tOut  (AND = min).
struct FuzzyRule {
  /// antecedents[i] names a term of input variable i; empty string = don't
  /// care.
  std::vector<std::string> antecedents;
  std::string consequent;
};

/// Minimal Mamdani fuzzy-inference system (min-AND, max-aggregation,
/// centroid defuzzification): the decision mechanism Autopilot used for
/// closed-loop control [13]. Small by design; the contract monitor feeds it
/// the contract ratio and its trend.
class FuzzyEngine {
 public:
  FuzzyEngine(std::vector<FuzzyVariable> inputs, FuzzyVariable output,
              std::vector<FuzzyRule> rules);

  /// Crisp output for crisp inputs (clamped to each variable's range).
  double infer(const std::vector<double>& inputs) const;

  /// Firing strength of rule r for the given inputs (for tests/diagnosis).
  double ruleStrength(std::size_t r, const std::vector<double>& inputs) const;

  std::size_t ruleCount() const { return rules_.size(); }

 private:
  std::vector<FuzzyVariable> inputs_;
  FuzzyVariable output_;
  std::vector<FuzzyRule> rules_;
};

/// The contract-violation decision system used by Autopilot-style
/// monitoring: inputs are the contract ratio (actual/predicted) and its
/// recent trend; output is an action score in [0,1] where >= 0.5 means
/// "request rescheduling".
FuzzyEngine makeContractFuzzyEngine();

}  // namespace grads::autopilot

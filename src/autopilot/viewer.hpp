#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace grads::autopilot {

/// Stand-in for GrADS' "Java-based Contract Viewer GUI to visualize the
/// performance contract validation activity in real-time" (paper §1):
/// records every phase's predicted/actual/ratio against the tolerance band
/// plus every violation, renders an ASCII timeline, and exports CSV for
/// plotting.
class ContractViewer {
 public:
  explicit ContractViewer(sim::Engine& engine) : engine_(&engine) {}

  struct PhaseRecord {
    double time = 0.0;
    std::size_t phase = 0;
    double predicted = 0.0;
    double actual = 0.0;
    double ratio = 0.0;
    double upperTolerance = 0.0;
    double lowerTolerance = 0.0;
  };
  struct ViolationRecord {
    double time = 0.0;
    std::size_t phase = 0;
    double avgRatio = 0.0;
    bool migrated = false;
  };

  void recordPhase(const std::string& app, const PhaseRecord& rec);
  void recordViolation(const std::string& app, const ViolationRecord& rec);

  const std::vector<PhaseRecord>& phases(const std::string& app) const;
  const std::vector<ViolationRecord>& violations(const std::string& app) const;

  /// ASCII ratio timeline: one row per bucket of phases, a bar scaled to
  /// the ratio, the tolerance band marked, violations flagged with '!'.
  void renderTimeline(std::ostream& os, const std::string& app,
                      std::size_t maxRows = 40) const;

  /// CSV export (time,phase,predicted,actual,ratio,upper,lower).
  void writeCsv(std::ostream& os, const std::string& app) const;

  std::vector<std::string> apps() const;

 private:
  sim::Engine* engine_;
  std::map<std::string, std::vector<PhaseRecord>> phases_;
  std::map<std::string, std::vector<ViolationRecord>> violations_;
};

}  // namespace grads::autopilot

#include "autopilot/viewer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace grads::autopilot {

void ContractViewer::recordPhase(const std::string& app,
                                 const PhaseRecord& rec) {
  phases_[app].push_back(rec);
}

void ContractViewer::recordViolation(const std::string& app,
                                     const ViolationRecord& rec) {
  violations_[app].push_back(rec);
}

const std::vector<ContractViewer::PhaseRecord>& ContractViewer::phases(
    const std::string& app) const {
  static const std::vector<PhaseRecord> kEmpty;
  const auto it = phases_.find(app);
  return it == phases_.end() ? kEmpty : it->second;
}

const std::vector<ContractViewer::ViolationRecord>&
ContractViewer::violations(const std::string& app) const {
  static const std::vector<ViolationRecord> kEmpty;
  const auto it = violations_.find(app);
  return it == violations_.end() ? kEmpty : it->second;
}

std::vector<std::string> ContractViewer::apps() const {
  std::vector<std::string> out;
  for (const auto& [app, recs] : phases_) {
    (void)recs;
    out.push_back(app);
  }
  return out;
}

void ContractViewer::renderTimeline(std::ostream& os, const std::string& app,
                                    std::size_t maxRows) const {
  const auto& recs = phases(app);
  if (recs.empty()) {
    os << "(no contract activity recorded for " << app << ")\n";
    return;
  }
  os << "contract activity for " << app << " (" << recs.size()
     << " phases; '|' = upper tolerance, '!' = violation raised)\n";
  const std::size_t stride = std::max<std::size_t>(1, recs.size() / maxRows);
  constexpr double kScale = 15.0;  // columns per 1.0 of ratio
  for (std::size_t i = 0; i < recs.size(); i += stride) {
    const auto& r = recs[i];
    const auto bar = static_cast<std::size_t>(
        std::min(4.0, std::max(0.0, r.ratio)) * kScale);
    const auto tol = static_cast<std::size_t>(r.upperTolerance * kScale);
    std::string line(std::max(bar, tol) + 2, ' ');
    for (std::size_t c = 0; c < bar; ++c) line[c] = '#';
    if (tol < line.size()) line[tol] = '|';
    const bool violated = std::any_of(
        violations(app).begin(), violations(app).end(),
        [&](const ViolationRecord& v) {
          return v.phase >= r.phase && v.phase < r.phase + stride;
        });
    char head[64];
    std::snprintf(head, sizeof head, "t=%8.1f p=%4zu r=%5.2f ", r.time,
                  r.phase, r.ratio);
    os << head << line << (violated ? " !" : "") << "\n";
  }
  os << violations(app).size() << " violation(s) raised\n";
}

void ContractViewer::writeCsv(std::ostream& os, const std::string& app) const {
  os << "time,phase,predicted,actual,ratio,upper,lower\n";
  for (const auto& r : phases(app)) {
    os << r.time << ',' << r.phase << ',' << r.predicted << ',' << r.actual
       << ',' << r.ratio << ',' << r.upperTolerance << ','
       << r.lowerTolerance << '\n';
  }
}

}  // namespace grads::autopilot

#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "sim/engine.hpp"

namespace grads::autopilot {

/// One sensor reading: a named channel, a value, and the virtual time it was
/// produced.
struct Reading {
  std::string channel;
  double value = 0.0;
  double time = 0.0;
};

/// The Autopilot manager: a pub/sub registry connecting instrumented
/// application sensors to listeners (contract monitors, loggers, the
/// Contract-Viewer-style trace). The binder "inserts the sensors needed for
/// monitoring a particular application" by giving the app a reporting
/// handle onto this registry (paper §1, §2).
///
/// Snapshot coverage: the reading history and total are serialized; the
/// subscriber list is not (listeners are std::function callbacks owned by
/// application frames — resumed applications re-attach their monitors at
/// relaunch, per the quiescent-boundary rule in DESIGN.md).
class AutopilotManager : public core::Snapshottable {
 public:
  explicit AutopilotManager(sim::Engine& engine) : engine_(&engine) {}

  const char* snapshotSection() const override { return "autopilot.sensor"; }
  void encodeState(core::SnapshotWriter& w) const override;
  void decodeState(core::SnapshotReader& r) override;

  using Listener = std::function<void(const Reading&)>;

  /// Subscribes to a channel; returns a token for detach().
  std::size_t attach(const std::string& channel, Listener fn);
  void detach(std::size_t token);

  /// Publishes a reading on a channel (stamped with current virtual time).
  void report(const std::string& channel, double value);

  /// Full history of a channel (the Contract Viewer's data source).
  const std::vector<Reading>& history(const std::string& channel) const;

  std::size_t totalReadings() const { return total_; }

 private:
  struct Sub {
    std::string channel;
    Listener fn;
    bool active = true;
  };

  sim::Engine* engine_;    // grads: transient(wiring, re-bound at construction)
  std::vector<Sub> subs_;  // grads: transient(subscriptions, re-registered by services as they are rebuilt)
  std::map<std::string, std::vector<Reading>> history_;
  std::size_t total_ = 0;
};

/// Well-known sensor channel name helpers.
std::string phaseTimeChannel(const std::string& app);
std::string iterationChannel(const std::string& app);

}  // namespace grads::autopilot

#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "autopilot/fuzzy.hpp"
#include "autopilot/viewer.hpp"
#include "autopilot/sensor.hpp"

namespace grads::autopilot {

/// A performance contract: the agreement between application demands and
/// resource capabilities [23]. For iterative applications it predicts the
/// duration of each execution phase.
class PerformanceContract {
 public:
  using Predictor = std::function<double(std::size_t phaseIndex)>;

  PerformanceContract(std::string app, Predictor predictor);

  const std::string& app() const { return app_; }
  double predictedPhaseSeconds(std::size_t phase) const;
  /// Replaces the prediction function — "the rescheduler may contact the
  /// contract monitor to update the terms of the contract" (paper §4).
  void updateTerms(Predictor predictor);

 private:
  std::string app_;
  Predictor predictor_;
};

/// Report passed to the rescheduler on a contract violation.
struct ViolationReport {
  std::string app;
  std::size_t phase = 0;
  double ratio = 0.0;     ///< actual / predicted for the triggering phase
  double avgRatio = 0.0;  ///< windowed average that confirmed the violation
  double time = 0.0;      ///< virtual time of detection
  /// Upper tolerance in force when the violation was confirmed — the
  /// governor's hysteresis band is anchored on it.
  double upperTolerance = 0.0;
};

/// Outcome the rescheduler reports back; determines tolerance adjustment.
/// kDeclined widens the tolerance limits (paper §4.1.1); kSuppressed — the
/// violation governor held the request back — must NOT: the governor is
/// waiting for quorum/cooldown, and widening would erase the very signal it
/// is waiting to confirm.
enum class RescheduleOutcome { kMigrated, kDeclined, kSuppressed };

/// Decision procedure used to confirm a violation.
enum class DecisionMode { kThresholdAverage, kFuzzy };

/// The GrADS contract monitor (paper §4.1.1):
///  - takes periodic phase-time data from Autopilot sensors,
///  - computes ratio = actual / predicted,
///  - on ratio > upper tolerance, checks the *average* ratio; only a high
///    average triggers the rescheduler (transient noise is forgiven),
///  - if the rescheduler declines to migrate, widens its tolerance limits,
///  - on ratio < lower tolerance, tightens the limits.
///
/// DecisionMode::kFuzzy instead drives the confirmation step through the
/// Autopilot fuzzy decision engine.
class ContractMonitor {
 public:
  using RescheduleRequest =
      std::function<RescheduleOutcome(const ViolationReport&)>;

  struct Options {
    double upperTolerance = 1.5;
    double lowerTolerance = 0.6;
    std::size_t window = 5;        ///< ratios averaged for confirmation
    DecisionMode mode = DecisionMode::kThresholdAverage;
    double fuzzyThreshold = 0.5;   ///< action score that triggers a request
  };

  ContractMonitor(sim::Engine& engine, PerformanceContract contract);
  ContractMonitor(sim::Engine& engine, PerformanceContract contract,
                  Options options);

  /// Wires the monitor to a sensor channel on the Autopilot manager.
  void attachTo(AutopilotManager& manager, const std::string& channel);

  /// Feeds one measured phase duration (called by the sensor listener).
  void onPhaseTime(double actualSeconds);

  void setRescheduleRequest(RescheduleRequest fn) { request_ = std::move(fn); }

  /// Streams contract-validation activity to a Contract-Viewer recorder.
  void setViewer(ContractViewer* viewer) { viewer_ = viewer; }

  PerformanceContract& contract() { return contract_; }
  double upperTolerance() const { return upper_; }
  double lowerTolerance() const { return lower_; }
  std::size_t phasesSeen() const { return phase_; }
  std::size_t violationsRaised() const { return violations_; }
  double lastRatio() const { return lastRatio_; }
  /// Ratio window currently backing the confirmation average (snapshotted
  /// by the application manager so a restored monitor confirms violations
  /// from the same evidence the pre-crash one held).
  const std::deque<double>& ratioWindow() const { return ratios_; }

  /// Pause/resume monitoring (during migrations the app reports nothing).
  void setEnabled(bool enabled) { enabled_ = enabled; }
  /// Resets phase numbering after a restart on new resources.
  void resetPhase(std::size_t phase) { phase_ = phase; ratios_.clear(); }

  /// Restore-path adoption after a control-plane restart: a freshly
  /// constructed monitor for a resumed application takes over the pre-crash
  /// adaptive tolerance band, phase cursor, violation tally, last ratio, and
  /// confirmation window decoded from the snapshot (the application manager
  /// owns the encoding — see core/app_manager).
  void restoreRuntimeState(double upper, double lower, std::size_t phase,
                           std::size_t violations, double lastRatio,
                           std::deque<double> ratios);

 private:
  double averageRatio() const;
  double trend() const;
  void confirmAndRaise(double ratio);

  sim::Engine* engine_;
  PerformanceContract contract_;
  Options opts_;
  double upper_;
  double lower_;
  std::deque<double> ratios_;
  std::size_t phase_ = 0;
  std::size_t violations_ = 0;
  double lastRatio_ = 1.0;
  bool enabled_ = true;
  RescheduleRequest request_;
  ContractViewer* viewer_ = nullptr;
  FuzzyEngine fuzzy_ = makeContractFuzzyEngine();
};

}  // namespace grads::autopilot

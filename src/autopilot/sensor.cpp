#include "autopilot/sensor.hpp"

#include "util/error.hpp"

namespace grads::autopilot {

std::size_t AutopilotManager::attach(const std::string& channel, Listener fn) {
  GRADS_REQUIRE(static_cast<bool>(fn), "AutopilotManager::attach: empty fn");
  subs_.push_back(Sub{channel, std::move(fn), true});
  return subs_.size() - 1;
}

void AutopilotManager::detach(std::size_t token) {
  GRADS_REQUIRE(token < subs_.size(), "AutopilotManager::detach: bad token");
  subs_[token].active = false;
}

void AutopilotManager::report(const std::string& channel, double value) {
  const Reading r{channel, value, engine_->now()};
  history_[channel].push_back(r);
  ++total_;
  for (const auto& s : subs_) {
    if (s.active && s.channel == channel) s.fn(r);
  }
}

void AutopilotManager::encodeState(core::SnapshotWriter& w) const {
  w.putU64(history_.size());
  for (const auto& [channel, readings] : history_) {
    w.putStr(channel);
    w.putU64(readings.size());
    for (const auto& reading : readings) {
      w.putF64(reading.value);
      w.putF64(reading.time);
    }
  }
  w.putU64(total_);
}

void AutopilotManager::decodeState(core::SnapshotReader& r) {
  history_.clear();
  const auto channels = r.getU64();
  for (std::uint64_t c = 0; c < channels; ++c) {
    const auto channel = r.getStr();
    auto& readings = history_[channel];
    readings.resize(r.getU64());
    for (auto& reading : readings) {
      reading.channel = channel;
      reading.value = r.getF64();
      reading.time = r.getF64();
    }
  }
  total_ = static_cast<std::size_t>(r.getU64());
}

const std::vector<Reading>& AutopilotManager::history(
    const std::string& channel) const {
  static const std::vector<Reading> kEmpty;
  const auto it = history_.find(channel);
  return it == history_.end() ? kEmpty : it->second;
}

std::string phaseTimeChannel(const std::string& app) {
  return app + ".phase-time";
}

std::string iterationChannel(const std::string& app) {
  return app + ".iteration";
}

}  // namespace grads::autopilot

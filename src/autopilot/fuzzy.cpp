#include "autopilot/fuzzy.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace grads::autopilot {

double TriangularMf::grade(double x) const {
  if (x <= a || x >= c) return x == b ? 1.0 : 0.0;  // degenerate spike
  if (x == b) return 1.0;
  if (x < b) return (x - a) / (b - a);
  return (c - x) / (c - b);
}

FuzzyEngine::FuzzyEngine(std::vector<FuzzyVariable> inputs,
                         FuzzyVariable output, std::vector<FuzzyRule> rules)
    : inputs_(std::move(inputs)),
      output_(std::move(output)),
      rules_(std::move(rules)) {
  GRADS_REQUIRE(!inputs_.empty(), "FuzzyEngine: need at least one input");
  GRADS_REQUIRE(!rules_.empty(), "FuzzyEngine: need at least one rule");
  for (const auto& r : rules_) {
    GRADS_REQUIRE(r.antecedents.size() == inputs_.size(),
                  "FuzzyEngine: rule arity mismatch");
    for (std::size_t i = 0; i < r.antecedents.size(); ++i) {
      if (r.antecedents[i].empty()) continue;
      GRADS_REQUIRE(inputs_[i].terms.count(r.antecedents[i]) > 0,
                    "FuzzyEngine: unknown input term " + r.antecedents[i]);
    }
    GRADS_REQUIRE(output_.terms.count(r.consequent) > 0,
                  "FuzzyEngine: unknown output term " + r.consequent);
  }
}

double FuzzyEngine::ruleStrength(std::size_t r,
                                 const std::vector<double>& inputs) const {
  GRADS_REQUIRE(r < rules_.size(), "FuzzyEngine: bad rule index");
  GRADS_REQUIRE(inputs.size() == inputs_.size(),
                "FuzzyEngine: wrong input count");
  double strength = 1.0;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const auto& term = rules_[r].antecedents[i];
    if (term.empty()) continue;
    const double x = std::clamp(inputs[i], inputs_[i].lo, inputs_[i].hi);
    strength = std::min(strength, inputs_[i].terms.at(term).grade(x));
  }
  return strength;
}

double FuzzyEngine::infer(const std::vector<double>& inputs) const {
  // Mamdani: clip each rule's output term at the rule strength, aggregate
  // with max, defuzzify by sampled centroid.
  constexpr int kSamples = 200;
  double num = 0.0;
  double den = 0.0;
  for (int s = 0; s <= kSamples; ++s) {
    const double y = output_.lo + (output_.hi - output_.lo) *
                                      static_cast<double>(s) / kSamples;
    double mu = 0.0;
    for (std::size_t r = 0; r < rules_.size(); ++r) {
      const double strength = ruleStrength(r, inputs);
      if (strength <= 0.0) continue;
      const double termMu = output_.terms.at(rules_[r].consequent).grade(y);
      mu = std::max(mu, std::min(strength, termMu));
    }
    num += mu * y;
    den += mu;
  }
  if (den == 0.0) return 0.5 * (output_.lo + output_.hi);
  return num / den;
}

FuzzyEngine makeContractFuzzyEngine() {
  // ratio = actual / predicted phase time, range [0, 4].
  FuzzyVariable ratio;
  ratio.name = "ratio";
  ratio.lo = 0.0;
  ratio.hi = 4.0;
  ratio.terms["fast"] = TriangularMf{0.0, 0.5, 1.0};
  ratio.terms["nominal"] = TriangularMf{0.7, 1.0, 1.5};
  ratio.terms["slow"] = TriangularMf{1.2, 1.8, 2.5};
  ratio.terms["very-slow"] = TriangularMf{2.0, 4.0, 4.0};

  // trend = recent slope of the ratio series, range [-1, 1] per phase.
  FuzzyVariable trend;
  trend.name = "trend";
  trend.lo = -1.0;
  trend.hi = 1.0;
  trend.terms["improving"] = TriangularMf{-1.0, -1.0, 0.0};
  trend.terms["steady"] = TriangularMf{-0.2, 0.0, 0.2};
  trend.terms["degrading"] = TriangularMf{0.0, 1.0, 1.0};

  // action in [0, 1]: >= 0.5 means request rescheduling.
  FuzzyVariable action;
  action.name = "action";
  action.lo = 0.0;
  action.hi = 1.0;
  action.terms["none"] = TriangularMf{0.0, 0.0, 0.4};
  action.terms["watch"] = TriangularMf{0.2, 0.5, 0.8};
  action.terms["reschedule"] = TriangularMf{0.6, 1.0, 1.0};

  std::vector<FuzzyRule> rules{
      {{"fast", ""}, "none"},
      {{"nominal", ""}, "none"},
      {{"slow", "improving"}, "watch"},
      {{"slow", "steady"}, "reschedule"},
      {{"slow", "degrading"}, "reschedule"},
      {{"very-slow", ""}, "reschedule"},
  };
  return FuzzyEngine({ratio, trend}, action, std::move(rules));
}

}  // namespace grads::autopilot

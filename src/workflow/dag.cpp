#include "workflow/dag.hpp"

#include <deque>

#include "util/error.hpp"

namespace grads::workflow {

ComponentId Dag::add(Component c) {
  GRADS_REQUIRE(c.flops >= 0.0 || c.model != nullptr,
                "Dag::add: component needs work or a model");
  components_.push_back(std::move(c));
  return components_.size() - 1;
}

void Dag::addEdge(ComponentId from, ComponentId to, double bytes) {
  GRADS_REQUIRE(from < components_.size() && to < components_.size(),
                "Dag::addEdge: unknown component");
  GRADS_REQUIRE(from != to, "Dag::addEdge: self edge");
  GRADS_REQUIRE(bytes >= 0.0, "Dag::addEdge: negative volume");
  edges_.push_back(Edge{from, to, bytes});
}

const Component& Dag::component(ComponentId id) const {
  GRADS_REQUIRE(id < components_.size(), "Dag: unknown component");
  return components_[id];
}

Component& Dag::component(ComponentId id) {
  GRADS_REQUIRE(id < components_.size(), "Dag: unknown component");
  return components_[id];
}

std::vector<ComponentId> Dag::predecessors(ComponentId id) const {
  std::vector<ComponentId> out;
  for (const auto& e : edges_) {
    if (e.to == id) out.push_back(e.from);
  }
  return out;
}

std::vector<ComponentId> Dag::successors(ComponentId id) const {
  std::vector<ComponentId> out;
  for (const auto& e : edges_) {
    if (e.from == id) out.push_back(e.to);
  }
  return out;
}

std::vector<Edge> Dag::inEdges(ComponentId id) const {
  std::vector<Edge> out;
  for (const auto& e : edges_) {
    if (e.to == id) out.push_back(e);
  }
  return out;
}

std::vector<ComponentId> Dag::topologicalOrder() const {
  std::vector<std::size_t> indegree(components_.size(), 0);
  for (const auto& e : edges_) ++indegree[e.to];
  std::deque<ComponentId> ready;
  for (ComponentId c = 0; c < components_.size(); ++c) {
    if (indegree[c] == 0) ready.push_back(c);
  }
  std::vector<ComponentId> order;
  while (!ready.empty()) {
    const ComponentId c = ready.front();
    ready.pop_front();
    order.push_back(c);
    for (const auto& e : edges_) {
      if (e.from == c && --indegree[e.to] == 0) ready.push_back(e.to);
    }
  }
  GRADS_REQUIRE(order.size() == components_.size(),
                "Dag::topologicalOrder: graph has a cycle");
  return order;
}

std::vector<ComponentId> Dag::addParallelStage(
    const Component& prototype, int count,
    const std::vector<ComponentId>& preds, double bytesFromEachPred) {
  GRADS_REQUIRE(count >= 1, "Dag::addParallelStage: count must be >= 1");
  std::vector<ComponentId> ids;
  for (int i = 0; i < count; ++i) {
    Component c = prototype;
    c.name = prototype.name + "." + std::to_string(i);
    c.flops = prototype.flops / count;
    c.outputBytes = prototype.outputBytes / count;
    const ComponentId id = add(std::move(c));
    for (const auto p : preds) addEdge(p, id, bytesFromEachPred / count);
    ids.push_back(id);
  }
  return ids;
}

}  // namespace grads::workflow

#pragma once

#include "util/rng.hpp"
#include "workflow/scheduler.hpp"

namespace grads::workflow {

/// Simulated-annealing workflow mapper, after the GrADS metascheduling work
/// of YarKhan & Dongarra ("Experiments with Scheduling Using Simulated
/// Annealing in a Grid Environment"; the paper's scheduler lineage [20]).
/// Where the batch heuristics build a schedule greedily from the rank
/// matrix, annealing searches the full mapping space: start from the
/// min-min schedule, perturb one component's placement at a time, accept
/// uphill moves with Metropolis probability under a geometric cooling
/// schedule.
struct AnnealingOptions {
  int iterations = 4000;
  /// Initial temperature as a fraction of the starting makespan.
  double initialTempFraction = 0.2;
  double coolingRate = 0.998;
  std::uint64_t seed = 1;
  /// Restart from the best-so-far state when stuck this many rejections.
  int restartAfterRejections = 400;
};

struct AnnealingStats {
  double initialMakespan = 0.0;
  double finalMakespan = 0.0;
  int accepted = 0;
  int uphillAccepted = 0;
};

/// Returns a schedule at least as good as min-min on the same estimator
/// (annealing never returns a state worse than its greedy seed).
Schedule scheduleSimulatedAnnealing(const Dag& dag, const Estimator& estimator,
                                    const std::vector<grid::NodeId>& resources,
                                    AnnealingOptions options = {},
                                    AnnealingStats* stats = nullptr);

}  // namespace grads::workflow
